#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pfar::topo {

/// Generators for the direct topologies the paper positions PolarFly
/// against (Sections 1.2-1.3): tori/meshes, hypercubes, HyperX and
/// fully-connected graphs. Used by the comparison benches to contrast
/// multi-tree Allreduce potential (spanning-tree packing) across networks.

/// k-ary n-dimensional torus: dims[i] >= 2; wrap links are added only when
/// dims[i] >= 3 (for dims[i] == 2 the wrap would duplicate the mesh link).
graph::Graph torus(const std::vector<int>& dims);

/// Mesh (torus without wraparound).
graph::Graph mesh(const std::vector<int>& dims);

/// d-dimensional hypercube: 2^d vertices, neighbors differ in one bit.
graph::Graph hypercube(int d);

/// HyperX: vertices are coordinate tuples; each dimension is fully
/// connected (all-to-all among vertices differing only in that axis).
graph::Graph hyperx(const std::vector<int>& dims);

/// Complete graph K_n.
graph::Graph complete(int n);

/// Slim Fly (MMS graph) for a prime power q with q ≡ 1 (mod 4): the other
/// mathematically designed diameter-2 topology the paper cites (Section
/// 1.4). 2q^2 vertices in two groups: (0, x, y) connected within a column
/// when y - y' is a non-zero square, (1, m, c) when c - c' is a
/// non-square, and across groups when y = m*x + c. Network radix
/// (3q - 1) / 2, diameter 2.
graph::Graph slimfly(int q);

/// Upper bound on the number of edge-disjoint spanning trees:
/// floor(E / (N-1)). (Nash-Williams/Tutte give the exact packing number;
/// this edge-count bound is what tree-count comparisons need and is tight
/// for all the regular topologies compared here.)
int tree_packing_bound(const graph::Graph& g);

/// Summary statistics used by the comparison benches.
struct TopologyStats {
  std::string name;
  int nodes = 0;
  int edges = 0;
  int radix = 0;     // max degree
  int diameter = 0;  // -1 if disconnected
  int packing_bound = 0;
};

TopologyStats describe(const std::string& name, const graph::Graph& g);

}  // namespace pfar::topo
