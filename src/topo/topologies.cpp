#include "topo/topologies.hpp"

#include "gf/field.hpp"
#include "util/numeric.hpp"

#include <stdexcept>

namespace pfar::topo {
namespace {

int product(const std::vector<int>& dims) {
  int n = 1;
  for (int d : dims) {
    if (d < 2) throw std::invalid_argument("topology: dimension < 2");
    n *= d;
  }
  return n;
}

// Mixed-radix coordinate <-> id helpers.
std::vector<int> coords_of(int id, const std::vector<int>& dims) {
  std::vector<int> c(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    c[i] = id % dims[i];
    id /= dims[i];
  }
  return c;
}

int id_of(const std::vector<int>& c, const std::vector<int>& dims) {
  int id = 0;
  for (std::size_t i = dims.size(); i-- > 0;) {
    id = id * dims[i] + c[i];
  }
  return id;
}

graph::Graph grid(const std::vector<int>& dims, bool wrap) {
  const int n = product(dims);
  graph::Graph g(n);
  for (int v = 0; v < n; ++v) {
    auto c = coords_of(v, dims);
    for (std::size_t axis = 0; axis < dims.size(); ++axis) {
      // +1 neighbor only (each edge added once).
      if (c[axis] + 1 < dims[axis]) {
        auto u = c;
        ++u[axis];
        g.add_edge(v, id_of(u, dims));
      } else if (wrap && dims[axis] >= 3) {
        auto u = c;
        u[axis] = 0;
        g.add_edge(v, id_of(u, dims));
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace

graph::Graph torus(const std::vector<int>& dims) { return grid(dims, true); }

graph::Graph mesh(const std::vector<int>& dims) { return grid(dims, false); }

graph::Graph hypercube(int d) {
  if (d < 1 || d > 20) throw std::invalid_argument("hypercube: bad d");
  const int n = 1 << d;
  graph::Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int bit = 0; bit < d; ++bit) {
      const int u = v ^ (1 << bit);
      if (u > v) g.add_edge(v, u);
    }
  }
  g.finalize();
  return g;
}

graph::Graph hyperx(const std::vector<int>& dims) {
  const int n = product(dims);
  graph::Graph g(n);
  for (int v = 0; v < n; ++v) {
    auto c = coords_of(v, dims);
    for (std::size_t axis = 0; axis < dims.size(); ++axis) {
      // All-to-all in this axis; add edges toward larger coordinates only.
      for (int k = c[axis] + 1; k < dims[axis]; ++k) {
        auto u = c;
        u[axis] = k;
        g.add_edge(v, id_of(u, dims));
      }
    }
  }
  g.finalize();
  return g;
}

graph::Graph complete(int n) {
  graph::Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  return g;
}

graph::Graph slimfly(int q) {
  int p = 0, a = 0;
  if (!util::is_prime_power(q, &p, &a) || q % 4 != 1) {
    throw std::invalid_argument(
        "slimfly: q must be a prime power with q % 4 == 1");
  }
  const gf::Field f(q);
  // X = non-zero squares (even powers of a primitive element), X' = the
  // non-squares. q == 1 mod 4 makes -1 a square, so both sets are
  // symmetric and the intra-column relations are undirected.
  std::vector<char> is_square(static_cast<std::size_t>(q), 0);
  for (gf::Elem x = 1; x < q; ++x) {
    is_square[static_cast<std::size_t>(f.mul(x, x))] = 1;
  }

  // Vertex ids: (group, x, y) -> group * q^2 + x * q + y.
  const int n = 2 * q * q;
  graph::Graph g(n);
  const auto id = [q](int group, gf::Elem x, gf::Elem y) {
    return group * q * q + x * q + y;
  };
  for (gf::Elem x = 0; x < q; ++x) {
    for (gf::Elem y = 0; y < q; ++y) {
      for (gf::Elem y2 = y + 1; y2 < q; ++y2) {
        const gf::Elem diff = f.sub(y2, y);
        if (is_square[static_cast<std::size_t>(diff)]) g.add_edge(id(0, x, y), id(0, x, y2));
        if (!is_square[static_cast<std::size_t>(diff)]) g.add_edge(id(1, x, y), id(1, x, y2));
      }
    }
  }
  for (gf::Elem x = 0; x < q; ++x) {
    for (gf::Elem y = 0; y < q; ++y) {
      for (gf::Elem m = 0; m < q; ++m) {
        // (0, x, y) ~ (1, m, c) iff y = m x + c.
        const gf::Elem c = f.sub(y, f.mul(m, x));
        g.add_edge(id(0, x, y), id(1, m, c));
      }
    }
  }
  g.finalize();
  return g;
}

int tree_packing_bound(const graph::Graph& g) {
  if (g.num_vertices() < 2) return 0;
  return g.num_edges() / (g.num_vertices() - 1);
}

TopologyStats describe(const std::string& name, const graph::Graph& g) {
  TopologyStats s;
  s.name = name;
  s.nodes = g.num_vertices();
  s.edges = g.num_edges();
  s.radix = g.max_degree();
  s.diameter = g.diameter();
  s.packing_bound = tree_packing_bound(g);
  return s;
}

}  // namespace pfar::topo
