#include "singer/difference_set.hpp"

#include <algorithm>
#include <stdexcept>

#include "gf/cubic_extension.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace pfar::singer {

DifferenceSet build_difference_set(const gf::Field& field) {
  DifferenceSet out;
  out.q = field.q();
  out.n = static_cast<long long>(out.q) * out.q + out.q + 1;

  const gf::CubicExtension ext(field);
  std::vector<long long> elems;
  ext.for_each_power([&](long long l, gf::Elem c2, gf::Elem c1, gf::Elem c0) {
    if (l == 0) {
      elems.push_back(0);  // zeta^0 = 1 spans the constants' class
    } else if (c2 == 0 && c1 == 1) {
      (void)c0;  // zeta^l = zeta + c0
      elems.push_back(l % out.n);
    }
  });
  std::sort(elems.begin(), elems.end());
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  if (static_cast<int>(elems.size()) != out.q + 1) {
    throw std::logic_error("build_difference_set: wrong cardinality");
  }
  out.elements = std::move(elems);
  if (!is_valid_difference_set(out.elements, out.n)) {
    throw std::logic_error("build_difference_set: validation failed");
  }
  // Def 6.2 bookkeeping: q+1 sorted residues in [0, n), and the q(q+1)
  // pairwise differences tile Z_n \ {0} exactly (checked above); the
  // element range is what alternating-path arithmetic depends on.
  PFAR_ENSURE(out.elements.front() >= 0 && out.elements.back() < out.n,
              out.q, out.n, out.elements.front(), out.elements.back());
  PFAR_ENSURE(std::is_sorted(out.elements.begin(), out.elements.end()),
              out.q);
  return out;
}

DifferenceSet build_difference_set(int q) {
  const auto field = gf::shared_field(q);
  return build_difference_set(*field);
}

bool is_valid_difference_set(const std::vector<long long>& d, long long n) {
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < d.size(); ++j) {
      if (i == j) continue;
      long long diff = (d[i] - d[j]) % n;
      if (diff < 0) diff += n;
      if (diff == 0 || seen[static_cast<std::size_t>(diff)]) return false;
      seen[static_cast<std::size_t>(diff)] = 1;
    }
  }
  // Every value 1..n-1 must be hit: counts match iff sizes line up.
  const long long hits =
      static_cast<long long>(d.size()) * (static_cast<long long>(d.size()) - 1);
  return hits == n - 1;
}

std::vector<long long> reflection_points(const DifferenceSet& d) {
  const long long half = util::mod_inverse(2, d.n);
  std::vector<long long> out;
  out.reserve(d.elements.size());
  for (long long e : d.elements) out.push_back(util::mod_mul(half, e, d.n));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pfar::singer
