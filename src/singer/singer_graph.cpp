#include "singer/singer_graph.hpp"

#include <algorithm>

namespace pfar::singer {

SingerGraph::SingerGraph(DifferenceSet d)
    : d_(std::move(d)), graph_(static_cast<int>(d_.n)) {
  build();
}

SingerGraph::SingerGraph(int q) : SingerGraph(build_difference_set(q)) {}

void SingerGraph::build() {
  const long long n = d_.n;
  reflection_ = reflection_points(d_);
  is_reflection_.assign(static_cast<std::size_t>(n), 0);
  for (long long r : reflection_) is_reflection_[static_cast<std::size_t>(r)] = 1;

  const int k = static_cast<int>(d_.elements.size());
  graph_.reserve(static_cast<int>(n) * k / 2, k);
  for (long long i = 0; i < n; ++i) {
    for (long long d : d_.elements) {
      long long j = (d - i) % n;
      if (j < 0) j += n;
      if (j == i) continue;  // self-loop at a reflection point
      if (i < j) {
        graph_.add_edge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  graph_.finalize();
}

}  // namespace pfar::singer
