#pragma once

#include <utility>
#include <vector>

#include "singer/paths.hpp"
#include "util/rng.hpp"

namespace pfar::singer {

/// A set of pairwise edge-disjoint alternating-sum Hamiltonian paths in
/// S_q, each identified by its difference-set element pair. Because every
/// edge's sum is one of the pair's two colors, paths built from pairwise
/// element-disjoint pairs are automatically edge-disjoint (Section 7.2).
struct DisjointHamiltonianSet {
  std::vector<std::pair<long long, long long>> pairs;
  std::vector<AlternatingPath> paths;

  int size() const { return static_cast<int>(paths.size()); }
};

/// Upper bound floor((q+1)/2) on the number of edge-disjoint Hamiltonian
/// paths (Lemma 7.18).
int disjoint_hamiltonian_upper_bound(int q);

/// Exact maximum set via maximum matching on the "element graph" (vertices
/// = difference-set elements, edges = pairs with gcd(d_i - d_j, N) == 1).
/// An element-disjoint pair selection of maximum size is exactly a maximum
/// matching, so this is provably optimal — it attains floor((q+1)/2) for
/// every prime power q < 128, the paper's Section 7.3 empirical claim.
///
/// The O(N) construction of each selected path is independent per pair and
/// fans out over a util::ThreadPool (`threads` <= 0 means
/// util::default_threads()); results land by pair index, so the set is
/// identical for every thread count (pinned by tests).
DisjointHamiltonianSet find_disjoint_hamiltonians(const DifferenceSet& d,
                                                  int threads = 0);

/// The paper's Section 7.3 method: random maximal independent sets on the
/// pair-conflict graph G_S (vertices = Hamiltonian pairs, edges = pairs
/// sharing an element), best of `attempts` instances. Kept for comparison
/// with the exact matching method.
DisjointHamiltonianSet find_disjoint_hamiltonians_random(
    const DifferenceSet& d, util::Rng& rng, int attempts = 30);

}  // namespace pfar::singer
