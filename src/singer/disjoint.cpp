#include "singer/disjoint.hpp"

#include <algorithm>

#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "util/numeric.hpp"

namespace pfar::singer {
namespace {

DisjointHamiltonianSet materialize(
    const DifferenceSet& d,
    std::vector<std::pair<long long, long long>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  DisjointHamiltonianSet out;
  out.pairs = std::move(pairs);
  out.paths.reserve(out.pairs.size());
  for (const auto& [d0, d1] : out.pairs) {
    out.paths.push_back(build_alternating_path(d, d0, d1));
  }
  return out;
}

}  // namespace

int disjoint_hamiltonian_upper_bound(int q) { return (q + 1) / 2; }

DisjointHamiltonianSet find_disjoint_hamiltonians(const DifferenceSet& d) {
  const int k = static_cast<int>(d.elements.size());
  graph::Graph element_graph(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (util::gcd_ll(d.elements[i] - d.elements[j], d.n) == 1) {
        element_graph.add_edge(i, j);
      }
    }
  }
  element_graph.finalize();
  const auto mate = graph::maximum_matching(element_graph);

  std::vector<std::pair<long long, long long>> pairs;
  for (int i = 0; i < k; ++i) {
    if (mate[i] > i) {
      pairs.emplace_back(d.elements[i], d.elements[mate[i]]);
    }
  }
  return materialize(d, std::move(pairs));
}

DisjointHamiltonianSet find_disjoint_hamiltonians_random(
    const DifferenceSet& d, util::Rng& rng, int attempts) {
  const auto ham_pairs = hamiltonian_pairs(d);
  const int m = static_cast<int>(ham_pairs.size());
  // Pair-conflict graph G_S: vertices are Hamiltonian pairs, edges connect
  // pairs sharing a difference-set element.
  graph::Graph conflict(m);
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const bool share = ham_pairs[i].first == ham_pairs[j].first ||
                         ham_pairs[i].first == ham_pairs[j].second ||
                         ham_pairs[i].second == ham_pairs[j].first ||
                         ham_pairs[i].second == ham_pairs[j].second;
      if (share) conflict.add_edge(i, j);
    }
  }
  conflict.finalize();
  const auto chosen = graph::best_random_independent_set(conflict, rng, attempts);

  std::vector<std::pair<long long, long long>> pairs;
  pairs.reserve(chosen.size());
  for (int id : chosen) pairs.push_back(ham_pairs[id]);
  return materialize(d, std::move(pairs));
}

}  // namespace pfar::singer
