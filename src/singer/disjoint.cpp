#include "singer/disjoint.hpp"

#include <algorithm>
#include <set>

#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/thread_pool.hpp"

namespace pfar::singer {
namespace {

DisjointHamiltonianSet materialize(
    const DifferenceSet& d,
    std::vector<std::pair<long long, long long>> pairs, int threads = 1) {
  std::sort(pairs.begin(), pairs.end());
  // Corollary 7.15/7.16 supply: at most floor((q+1)/2) pairs, and no
  // difference-set element may appear in two pairs (element-disjointness is
  // what makes the resulting Hamiltonian paths edge-disjoint).
  PFAR_REQUIRE(static_cast<int>(pairs.size()) <=
                   disjoint_hamiltonian_upper_bound(d.q),
               d.q, pairs.size());
  {
    std::set<long long> used;
    for (const auto& [d0, d1] : pairs) {
      const bool fresh_d0 = used.insert(d0).second;
      const bool fresh_d1 = used.insert(d1).second;
      PFAR_REQUIRE(d0 != d1 && fresh_d0 && fresh_d1, d0, d1, d.q);
    }
  }
  DisjointHamiltonianSet out;
  out.pairs = std::move(pairs);
  // Each O(N) path build depends only on its pair; results land by index.
  out.paths.resize(out.pairs.size());
  util::parallel_for(threads, static_cast<int>(out.pairs.size()), [&](int i) {
    out.paths[static_cast<std::size_t>(i)] =
        build_alternating_path(d, out.pairs[static_cast<std::size_t>(i)].first, out.pairs[static_cast<std::size_t>(i)].second);
  });
  return out;
}

}  // namespace

int disjoint_hamiltonian_upper_bound(int q) { return (q + 1) / 2; }

DisjointHamiltonianSet find_disjoint_hamiltonians(const DifferenceSet& d,
                                                  int threads) {
  const int k = static_cast<int>(d.elements.size());
  graph::Graph element_graph(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (util::gcd_ll(d.elements[static_cast<std::size_t>(i)] - d.elements[static_cast<std::size_t>(j)], d.n) == 1) {
        element_graph.add_edge(i, j);
      }
    }
  }
  element_graph.finalize();
  const auto mate = graph::maximum_matching(element_graph);

  std::vector<std::pair<long long, long long>> pairs;
  for (int i = 0; i < k; ++i) {
    if (mate[static_cast<std::size_t>(i)] > i) {
      pairs.emplace_back(d.elements[static_cast<std::size_t>(i)], d.elements[static_cast<std::size_t>(mate[static_cast<std::size_t>(i)])]);
    }
  }
  return materialize(d, std::move(pairs), threads);
}

DisjointHamiltonianSet find_disjoint_hamiltonians_random(
    const DifferenceSet& d, util::Rng& rng, int attempts) {
  const auto ham_pairs = hamiltonian_pairs(d);
  const int m = static_cast<int>(ham_pairs.size());
  // Pair-conflict graph G_S: vertices are Hamiltonian pairs, edges connect
  // pairs sharing a difference-set element.
  graph::Graph conflict(m);
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const bool share = ham_pairs[static_cast<std::size_t>(i)].first == ham_pairs[static_cast<std::size_t>(j)].first ||
                         ham_pairs[static_cast<std::size_t>(i)].first == ham_pairs[static_cast<std::size_t>(j)].second ||
                         ham_pairs[static_cast<std::size_t>(i)].second == ham_pairs[static_cast<std::size_t>(j)].first ||
                         ham_pairs[static_cast<std::size_t>(i)].second == ham_pairs[static_cast<std::size_t>(j)].second;
      if (share) conflict.add_edge(i, j);
    }
  }
  conflict.finalize();
  const auto chosen = graph::best_random_independent_set(conflict, rng, attempts);

  std::vector<std::pair<long long, long long>> pairs;
  pairs.reserve(chosen.size());
  for (int id : chosen) pairs.push_back(ham_pairs[static_cast<std::size_t>(id)]);
  return materialize(d, std::move(pairs));
}

}  // namespace pfar::singer
