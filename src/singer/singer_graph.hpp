#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "singer/difference_set.hpp"

namespace pfar::singer {

/// The Singer graph S_q (Definition 6.3): vertices 0..N-1, edge (i, j)
/// iff (i + j) mod N is in the difference set D. Isomorphic to ER_q
/// (Theorem 6.6). Self-loops at reflection points are dropped from the
/// graph but tracked separately, mirroring PolarFly.
///
/// The edge sum (i + j) mod N, always an element of D, acts as an edge
/// *color*; alternating-sum paths (Section 7.2) use exactly two colors and
/// paths with disjoint color pairs are automatically edge-disjoint.
class SingerGraph {
 public:
  explicit SingerGraph(DifferenceSet d);
  /// Convenience: derives the difference set for q internally.
  explicit SingerGraph(int q);

  const DifferenceSet& difference_set() const { return d_; }
  const graph::Graph& graph() const { return graph_; }
  long long n() const { return d_.n; }
  int q() const { return d_.q; }

  /// Edge sum (i + j) mod N of an edge; the edge's color in D.
  long long edge_sum(int i, int j) const {
    return (static_cast<long long>(i) + j) % d_.n;
  }

  bool is_reflection_point(int v) const { return is_reflection_[static_cast<std::size_t>(v)]; }
  /// Sorted reflection-point ids (these are PolarFly's quadrics,
  /// Corollary 6.8).
  const std::vector<long long>& reflection() const { return reflection_; }

 private:
  void build();

  DifferenceSet d_;
  graph::Graph graph_;
  std::vector<long long> reflection_;
  std::vector<char> is_reflection_;
};

}  // namespace pfar::singer
