#pragma once

#include <utility>
#include <vector>

#include "singer/difference_set.hpp"

namespace pfar::singer {

/// A maximal alternating-sum non-repeating path in S_q (Definitions
/// 7.9-7.11, Corollary 7.15): edge sums alternate between the two distinct
/// difference-set elements d0 and d1; both endpoints are reflection points.
struct AlternatingPath {
  long long d0 = 0;                // edge sum of (b_{i-1}, b_i) for even i
  long long d1 = 0;                // edge sum for odd i
  std::vector<long long> vertices;  // b_1 .. b_k
  bool hamiltonian = false;        // k == N

  long long length() const {
    return static_cast<long long>(vertices.size()) - 1;  // edges
  }
};

/// Predicted vertex count of the maximal (d0, d1) path:
/// k = N / gcd(d0 - d1, N) (Theorem 7.13).
long long alternating_path_vertex_count(const DifferenceSet& d, long long d0,
                                        long long d1);

/// Constructs the unique maximal alternating-sum non-repeating path for the
/// ordered pair (d0, d1) per Corollary 7.15: b_1 = 2^{-1} d1, then
/// b_i = d0 - b_{i-1} (i even) / d1 - b_{i-1} (i odd).
AlternatingPath build_alternating_path(const DifferenceSet& d, long long d0,
                                       long long d1);

/// Closed-form b_i from Corollary 7.16 (1-indexed); used to cross-check the
/// iterative construction.
long long alternating_path_element(const DifferenceSet& d, long long d0,
                                   long long d1, long long i);

/// All unordered pairs {d0, d1} from D whose maximal path is Hamiltonian,
/// i.e. gcd(d0 - d1, N) == 1 (Corollary 7.15(5)). Pairs are (smaller,
/// larger) and sorted.
std::vector<std::pair<long long, long long>> hamiltonian_pairs(
    const DifferenceSet& d);

/// Number of alternating-sum Hamiltonian paths, counting reversals as
/// distinct; equals Euler's totient phi(N) (Corollary 7.20).
long long count_hamiltonian_paths(const DifferenceSet& d);

}  // namespace pfar::singer
