#include "singer/paths.hpp"

#include <stdexcept>

#include "util/numeric.hpp"

namespace pfar::singer {

long long alternating_path_vertex_count(const DifferenceSet& d, long long d0,
                                        long long d1) {
  if (d0 == d1) throw std::invalid_argument("alternating path: d0 == d1");
  return d.n / util::gcd_ll(d0 - d1, d.n);
}

AlternatingPath build_alternating_path(const DifferenceSet& d, long long d0,
                                       long long d1) {
  const long long n = d.n;
  const long long k = alternating_path_vertex_count(d, d0, d1);
  const long long half = util::mod_inverse(2, n);

  AlternatingPath path;
  path.d0 = d0;
  path.d1 = d1;
  path.vertices.reserve(static_cast<std::size_t>(k));
  long long b = util::mod_mul(half, d1, n);  // b_1 = 2^{-1} d1 (Lemma 7.12)
  path.vertices.push_back(b);
  for (long long i = 2; i <= k; ++i) {
    const long long sum = (i % 2 == 0) ? d0 : d1;
    b = ((sum - b) % n + n) % n;
    path.vertices.push_back(b);
  }
  path.hamiltonian = (k == n);
  return path;
}

long long alternating_path_element(const DifferenceSet& d, long long d0,
                                   long long d1, long long i) {
  const long long n = d.n;
  const long long half = util::mod_inverse(2, n);
  const long long b1 = util::mod_mul(half, d1, n);
  // Closed form derived from the recurrence of Corollary 7.15 (the paper's
  // Corollary 7.16 prints the even/odd cases swapped; this version is
  // verified against the iterative construction by the test suite):
  //   b_i = (i/2)(d0 - d1) + b_1        for even i,
  //   b_i = ((i-1)/2)(d1 - d0) + b_1    for odd i.
  if (i % 2 == 0) {
    const long long t = ((d0 - d1) % n + n) % n;
    return (util::mod_mul(i / 2, t, n) + b1) % n;
  }
  const long long t = ((d1 - d0) % n + n) % n;
  return (util::mod_mul((i - 1) / 2, t, n) + b1) % n;
}

std::vector<std::pair<long long, long long>> hamiltonian_pairs(
    const DifferenceSet& d) {
  std::vector<std::pair<long long, long long>> out;
  const auto& e = d.elements;
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (std::size_t j = i + 1; j < e.size(); ++j) {
      if (util::gcd_ll(e[i] - e[j], d.n) == 1) {
        out.emplace_back(e[i], e[j]);
      }
    }
  }
  return out;
}

long long count_hamiltonian_paths(const DifferenceSet& d) {
  // Ordered pairs (reversals distinct): twice the unordered count.
  return 2 * static_cast<long long>(hamiltonian_pairs(d).size());
}

}  // namespace pfar::singer
