#pragma once

#include <vector>

#include "gf/field.hpp"

namespace pfar::singer {

/// A Singer (perfect) difference set D of order q+1 over Z_N, N = q^2+q+1
/// (Definition 6.2): the q(q+1) pairwise differences (d_i - d_j) mod N hit
/// every value 1..N-1 exactly once.
struct DifferenceSet {
  int q = 0;
  long long n = 0;                    // N = q^2 + q + 1
  std::vector<long long> elements;    // sorted, |elements| == q + 1
};

/// Builds the Singer difference set via the paper's Section 6.2 recipe:
/// enumerate powers of a primitive root zeta of F_{q^3} (lexicographically
/// smallest primitive cubic modulus) and collect the exponents l with
/// zeta^l of the form zeta + k (k in F_q), plus l = 0 (the element 1),
/// reduced mod N. The result is validated against Definition 6.2.
DifferenceSet build_difference_set(const gf::Field& field);

/// Convenience: builds the field internally.
DifferenceSet build_difference_set(int q);

/// Checks Definition 6.2 exhaustively.
bool is_valid_difference_set(const std::vector<long long>& d, long long n);

/// Reflection points (Definition 6.5) = 2^{-1} * d mod N for d in D
/// (Corollary 6.8); these are the quadrics of PolarFly. Sorted.
std::vector<long long> reflection_points(const DifferenceSet& d);

}  // namespace pfar::singer
