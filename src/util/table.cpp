#include "util/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfar::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace pfar::util
