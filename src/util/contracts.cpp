#include "util/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pfar::util::contracts {
namespace {

void abort_handler(const char* /*kind*/, const char* /*expr*/,
                   const std::string& message) {
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

std::atomic<FailHandler> g_handler{&abort_handler};

void throw_handler(const char* kind, const char* expr,
                   const std::string& message) {
  throw ContractViolation(kind, expr, message);
}

}  // namespace

FailHandler set_fail_handler(FailHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &abort_handler);
}

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& operands) {
  std::string message = "pfar contract violation: ";
  message += kind;
  message += '(';
  message += expr;
  message += ")\n  at ";
  message += file;
  message += ':';
  message += std::to_string(line);
  message += operands;
  g_handler.load()(kind, expr, message);
  // A handler must not resume a violated contract.
  std::abort();
}

ScopedThrowHandler::ScopedThrowHandler()
    : previous_(set_fail_handler(&throw_handler)) {}

ScopedThrowHandler::~ScopedThrowHandler() { set_fail_handler(previous_); }

}  // namespace pfar::util::contracts
