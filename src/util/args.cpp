#include "util/args.hpp"

#include <cstdlib>

#include "util/thread_pool.hpp"

namespace pfar::util {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";  // bare flag
    }
  }
}

long long Args::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

int Args::threads() const {
  const long long requested = get_int("threads", 0);
  if (requested > 0) return static_cast<int>(requested);
  return default_threads();  // PFAR_THREADS env, then hardware concurrency
}

}  // namespace pfar::util
