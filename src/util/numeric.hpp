#pragma once

#include <cstdint>
#include <vector>

namespace pfar::util {

/// True iff n is prime (trial division; intended for n <= ~10^9).
bool is_prime(long long n);

/// If q = p^a for prime p and a >= 1, returns true and fills p and a.
bool is_prime_power(int q, int* p_out = nullptr, int* a_out = nullptr);

/// All prime powers q with lo <= q <= hi, ascending.
std::vector<int> prime_powers_in(int lo, int hi);

/// Greatest common divisor of |a| and |b|.
long long gcd_ll(long long a, long long b);

/// Euler's totient function phi(n), n >= 1.
long long totient(long long n);

/// Modular inverse of a mod n (gcd(a, n) must be 1), result in [0, n).
long long mod_inverse(long long a, long long n);

/// (a * b) mod n without overflow for n < 2^31.
inline long long mod_mul(long long a, long long b, long long n) {
  return ((a % n) * (b % n)) % n;
}

/// Splits `total` into `parts` non-negative integers proportional to
/// `weights` (largest-remainder apportionment); the result sums to `total`.
/// Used to realize the optimal sub-vector distribution of Theorem 5.1 with
/// integral element counts.
std::vector<long long> apportion(long long total,
                                 const std::vector<double>& weights);

}  // namespace pfar::util
