#pragma once

// Clang thread-safety-analysis vocabulary for the whole tree
// (docs/static_analysis.md, "Thread-safety annotations").
//
// Every lock-holding seam — util::ThreadPool, the sweep/parallel_for error
// funnel, core::PlanCache, the gf::shared_field memo — declares its mutex
// as util::Mutex and its shared state with PFAR_GUARDED_BY, so Clang's
// -Wthread-safety -Wthread-safety-beta (the PFAR_THREAD_SAFETY CMake
// toggle, enforced as errors by the thread-safety CI job) proves at
// compile time that no guarded field is ever touched without its lock.
// Under GCC every macro expands to nothing and util::Mutex is a plain
// std::mutex wrapper; behavior is identical either way.
//
// Condition variables pair with util::Mutex via
// std::condition_variable_any, waiting on the Mutex itself (a
// BasicLockable). The analysis treats the wait call as opaque — the lock
// is held before and after, which is exactly the invariant the caller
// relies on.
//
// Subsystems that are single-writer BY DESIGN (obsv Tracer/Metrics/
// Recorder, service::AllreduceService's virtual-clock loop, each shard's
// Fabric in simnet's run_sharded) carry no locks on purpose: their
// no-concurrent-access discipline is enforced structurally (sharding
// refuses to split a run that has an observer attached) and checked
// dynamically by the TSan CI job, while tools/pfar_lint's mutex-naming
// rule guarantees any future lock added to them lands on these annotated
// primitives rather than on a bare std::mutex the analysis cannot see.

#include <mutex>

#if defined(__clang__)
#define PFAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PFAR_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// On types: this class is a lockable capability / an RAII lock holder.
#define PFAR_CAPABILITY(x) PFAR_THREAD_ANNOTATION(capability(x))
#define PFAR_SCOPED_CAPABILITY PFAR_THREAD_ANNOTATION(scoped_lockable)

// On data members: reads/writes require the named capability (or, for
// PT_GUARDED_BY, dereferences of the pointee do).
#define PFAR_GUARDED_BY(x) PFAR_THREAD_ANNOTATION(guarded_by(x))
#define PFAR_PT_GUARDED_BY(x) PFAR_THREAD_ANNOTATION(pt_guarded_by(x))

// On functions: capability state demanded, produced or consumed.
#define PFAR_REQUIRES(...) \
  PFAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PFAR_ACQUIRE(...) \
  PFAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PFAR_RELEASE(...) \
  PFAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PFAR_TRY_ACQUIRE(...) \
  PFAR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PFAR_EXCLUDES(...) PFAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PFAR_ASSERT_CAPABILITY(x) \
  PFAR_THREAD_ANNOTATION(assert_capability(x))
#define PFAR_RETURN_CAPABILITY(x) PFAR_THREAD_ANNOTATION(lock_returned(x))
#define PFAR_NO_THREAD_SAFETY_ANALYSIS \
  PFAR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pfar::util {

/// std::mutex carrying the `capability` attribute, so PFAR_GUARDED_BY
/// declarations can name it. BasicLockable: usable directly with
/// std::condition_variable_any::wait. Prefer MutexLock for RAII holds —
/// std::lock_guard acquires inside a system header the analysis does not
/// look into, so a guard over a Mutex would not register as a hold.
class PFAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PFAR_ACQUIRE() { mu_.lock(); }
  void unlock() PFAR_RELEASE() { mu_.unlock(); }
  bool try_lock() PFAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII exclusive hold of a util::Mutex, visible to the analysis
/// (SCOPED_CAPABILITY): the capability is held from construction to the
/// end of the enclosing scope.
class PFAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PFAR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PFAR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace pfar::util
