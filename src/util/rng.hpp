#pragma once

#include <cstdint>

namespace pfar::util {

/// Deterministic 64-bit PRNG (xoshiro256**). All randomized components in
/// this library (e.g. the random maximal-independent-set selector from
/// Section 7.3 of the paper) take an explicit Rng so experiments are
/// reproducible run-to-run.
class Rng {
 public:
  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step: guarantees a well-mixed, non-zero state.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pfar::util
