#include "util/thread_pool.hpp"

#include <cstdlib>
#include <utility>

namespace pfar::util {

int default_threads() {
  if (const char* env = std::getenv("PFAR_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_threads();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace pfar::util
