#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "util/contracts.hpp"

namespace pfar::util {

int default_threads() {
  // getenv/atoi are not reentrant-safe in general, but this runs before
  // any pool exists and nothing in the tree ever calls setenv.
  if (const char* env = std::getenv("PFAR_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
    const int parsed = std::atoi(env);  // NOLINT(cert-err34-c): 0/garbage falls through to hw default
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(int threads, int count, const std::function<void(int)>& fn) {
  PFAR_REQUIRE(static_cast<bool>(fn), threads, count);
  if (count <= 0) return;
  if (threads <= 0) threads = default_threads();
  if (threads == 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  FirstError error;
  {
    ThreadPool pool(std::min(threads, count));
    for (int i = 0; i < count; ++i) {
      pool.submit([i, &fn, &error] {
        try {
          fn(i);
        } catch (...) {
          error.capture();
        }
      });
    }
    pool.wait_idle();
  }
  error.rethrow_if_set();
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_threads();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PFAR_REQUIRE(static_cast<bool>(task), workers_.size());
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace pfar::util
