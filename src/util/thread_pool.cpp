#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <utility>

namespace pfar::util {

int default_threads() {
  if (const char* env = std::getenv("PFAR_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(int threads, int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (threads <= 0) threads = default_threads();
  if (threads == 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  {
    ThreadPool pool(std::min(threads, count));
    for (int i = 0; i < count; ++i) {
      pool.submit([i, &fn, &error_mutex, &first_error] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_threads();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace pfar::util
