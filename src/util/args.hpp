#pragma once

#include <map>
#include <string>

namespace pfar::util {

/// Tiny command-line flag parser for the examples and bench binaries.
/// Accepts `--key=value` and `--key value`; anything else is ignored.
class Args {
 public:
  Args(int argc, char** argv);

  /// Value of --key, or `fallback` if absent.
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool has(const std::string& key) const;

  /// Worker thread count for sweep binaries: --threads N if given, else
  /// the PFAR_THREADS environment variable, else hardware concurrency.
  int threads() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pfar::util
