#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

/// Contract layer: PFAR_REQUIRE / PFAR_ENSURE / PFAR_INVARIANT.
///
/// Three compile-time levels, selected with -DPFAR_CHECKS_LEVEL=<0|1|2>
/// (the CMake cache variable PFAR_CHECKS=off|release|audit maps onto it):
///
///   0 (off)     - every macro compiles to a no-op; the condition and the
///                 operand expressions are still type-checked but never
///                 evaluated.
///   1 (release) - PFAR_REQUIRE (preconditions) and PFAR_ENSURE
///                 (postconditions) are live; PFAR_INVARIANT is compiled
///                 out. This is the default: cheap boundary checks stay on
///                 in production builds.
///   2 (audit)   - all three are live. PFAR_INVARIANT guards the expensive
///                 whole-structure checks (re-validating a spanning tree,
///                 recomputing congestion, field-axiom sweeps) that only an
///                 audit build should pay for.
///
/// A failing contract produces a structured message:
///
///   pfar contract violation: REQUIRE(q >= 2)
///     at src/gf/field.cpp:41
///     q = 1
///
/// then calls the installed failure handler (default: print to stderr and
/// abort). Tests install a throwing handler via ScopedThrowHandler and
/// assert on the ContractViolation message instead of dying.
///
/// Each macro takes the condition plus up to eight optional operand
/// expressions; operands are stringified and formatted `name = value` in
/// the failure message (values print via operator<< when available).

#ifndef PFAR_CHECKS_LEVEL
#define PFAR_CHECKS_LEVEL 1
#endif

namespace pfar::util::contracts {

/// Thrown by the test handler installed with ScopedThrowHandler.
class ContractViolation : public std::runtime_error {
 public:
  ContractViolation(std::string kind, std::string expr, std::string message)
      : std::runtime_error(message),
        kind_(std::move(kind)),
        expr_(std::move(expr)) {}

  /// "REQUIRE", "ENSURE" or "INVARIANT".
  const std::string& kind() const { return kind_; }
  /// The stringified condition.
  const std::string& expr() const { return expr_; }

 private:
  std::string kind_;
  std::string expr_;
};

/// Failure hook. `message` is the fully formatted multi-line report. A
/// handler that returns (rather than throwing or exiting) falls through to
/// std::abort so a violated contract can never be silently resumed.
using FailHandler = void (*)(const char* kind, const char* expr,
                             const std::string& message);

/// Install a new handler; returns the previous one. Pass nullptr to restore
/// the default abort handler.
FailHandler set_fail_handler(FailHandler handler);

/// Format + dispatch a violation; never returns.
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& operands);

/// RAII: while alive, contract violations throw ContractViolation instead
/// of aborting. Not reentrant across threads; meant for single-threaded
/// test bodies.
class ScopedThrowHandler {
 public:
  ScopedThrowHandler();
  ~ScopedThrowHandler();
  ScopedThrowHandler(const ScopedThrowHandler&) = delete;
  ScopedThrowHandler& operator=(const ScopedThrowHandler&) = delete;

 private:
  FailHandler previous_;
};

template <typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};

/// Accumulates `name = value` operand lines for a failure message.
struct Detail {
  std::string text;

  template <typename T>
  Detail& add(const char* name, const T& value) {
    text += "\n  ";
    text += name;
    text += " = ";
    if constexpr (is_streamable<T>::value) {
      std::ostringstream os;
      os << value;
      text += os.str();
    } else {
      text += "<unprintable>";
    }
    return *this;
  }
};

/// Swallows the operand list of a compiled-out contract without evaluating
/// anything (the call itself sits under `if (false)`).
template <typename... Ts>
inline void ignore(const Ts&...) {}

}  // namespace pfar::util::contracts

// Map each stringified operand expression to a Detail::add chain link.
// FOR_EACH supports 0..8 operands; extend the dispatch if a call site ever
// needs more.
#define PFAR_DETAIL_0()
#define PFAR_DETAIL_1(a) .add(#a, (a))
#define PFAR_DETAIL_2(a, b) PFAR_DETAIL_1(a) PFAR_DETAIL_1(b)
#define PFAR_DETAIL_3(a, b, c) PFAR_DETAIL_2(a, b) PFAR_DETAIL_1(c)
#define PFAR_DETAIL_4(a, b, c, d) PFAR_DETAIL_3(a, b, c) PFAR_DETAIL_1(d)
#define PFAR_DETAIL_5(a, b, c, d, e) \
  PFAR_DETAIL_4(a, b, c, d) PFAR_DETAIL_1(e)
#define PFAR_DETAIL_6(a, b, c, d, e, f) \
  PFAR_DETAIL_5(a, b, c, d, e) PFAR_DETAIL_1(f)
#define PFAR_DETAIL_7(a, b, c, d, e, f, g) \
  PFAR_DETAIL_6(a, b, c, d, e, f) PFAR_DETAIL_1(g)
#define PFAR_DETAIL_8(a, b, c, d, e, f, g, h) \
  PFAR_DETAIL_7(a, b, c, d, e, f, g) PFAR_DETAIL_1(h)
#define PFAR_DETAIL_PICK(_0, _1, _2, _3, _4, _5, _6, _7, _8, name, ...) name
#define PFAR_DETAIL_CHAIN(...)                                            \
  PFAR_DETAIL_PICK(_0 __VA_OPT__(, ) __VA_ARGS__, PFAR_DETAIL_8,          \
                   PFAR_DETAIL_7, PFAR_DETAIL_6, PFAR_DETAIL_5,           \
                   PFAR_DETAIL_4, PFAR_DETAIL_3, PFAR_DETAIL_2,           \
                   PFAR_DETAIL_1, PFAR_DETAIL_0)                          \
  (__VA_ARGS__)

#define PFAR_CONTRACT_LIVE(kind, cond, ...)                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pfar::util::contracts::fail(                                      \
          kind, #cond, __FILE__, __LINE__,                                \
          ::pfar::util::contracts::Detail{}                               \
              PFAR_DETAIL_CHAIN(__VA_ARGS__)                              \
                  .text);                                                 \
    }                                                                     \
  } while (0)

// Compiled-out variant: everything stays type-checked but dead; GCC folds
// the whole statement away at -O0 already, and nothing is evaluated.
#define PFAR_CONTRACT_DEAD(kind, cond, ...)                               \
  do {                                                                    \
    if (false) {                                                          \
      static_cast<void>(cond);                                            \
      ::pfar::util::contracts::ignore(__VA_ARGS__);                       \
    }                                                                     \
  } while (0)

#if PFAR_CHECKS_LEVEL >= 1
#define PFAR_REQUIRE(cond, ...) PFAR_CONTRACT_LIVE("REQUIRE", cond, __VA_ARGS__)
#define PFAR_ENSURE(cond, ...) PFAR_CONTRACT_LIVE("ENSURE", cond, __VA_ARGS__)
#else
#define PFAR_REQUIRE(cond, ...) PFAR_CONTRACT_DEAD("REQUIRE", cond, __VA_ARGS__)
#define PFAR_ENSURE(cond, ...) PFAR_CONTRACT_DEAD("ENSURE", cond, __VA_ARGS__)
#endif

#if PFAR_CHECKS_LEVEL >= 2
#define PFAR_INVARIANT(cond, ...) \
  PFAR_CONTRACT_LIVE("INVARIANT", cond, __VA_ARGS__)
#else
#define PFAR_INVARIANT(cond, ...) \
  PFAR_CONTRACT_DEAD("INVARIANT", cond, __VA_ARGS__)
#endif

/// True when PFAR_INVARIANT is live; lets call sites skip building the
/// inputs of an expensive audit check entirely.
#define PFAR_AUDIT_ENABLED (PFAR_CHECKS_LEVEL >= 2)
