#include "util/numeric.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

namespace pfar::util {

bool is_prime(long long n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (long long d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

bool is_prime_power(int q, int* p_out, int* a_out) {
  if (q < 2) return false;
  int p = 0;
  int n = q;
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      p = d;
      break;
    }
  }
  if (p == 0) p = n;  // q itself is prime
  int a = 0;
  while (n % p == 0) {
    n /= p;
    ++a;
  }
  if (n != 1) return false;
  if (p_out != nullptr) *p_out = p;
  if (a_out != nullptr) *a_out = a;
  return true;
}

std::vector<int> prime_powers_in(int lo, int hi) {
  std::vector<int> out;
  for (int q = std::max(lo, 2); q <= hi; ++q) {
    if (is_prime_power(q)) out.push_back(q);
  }
  return out;
}

long long gcd_ll(long long a, long long b) {
  a = std::llabs(a);
  b = std::llabs(b);
  while (b != 0) {
    const long long t = a % b;
    a = b;
    b = t;
  }
  return a;
}

long long totient(long long n) {
  if (n < 1) throw std::invalid_argument("totient: n must be >= 1");
  long long result = n;
  long long m = n;
  for (long long d = 2; d * d <= m; ++d) {
    if (m % d == 0) {
      result -= result / d;
      while (m % d == 0) m /= d;
    }
  }
  if (m > 1) result -= result / m;
  return result;
}

long long mod_inverse(long long a, long long n) {
  // Extended Euclid.
  long long t = 0, new_t = 1;
  long long r = n, new_r = ((a % n) + n) % n;
  while (new_r != 0) {
    const long long quotient = r / new_r;
    long long tmp = t - quotient * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - quotient * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r != 1) throw std::invalid_argument("mod_inverse: not invertible");
  return ((t % n) + n) % n;
}

std::vector<long long> apportion(long long total,
                                 const std::vector<double>& weights) {
  const std::size_t k = weights.size();
  if (k == 0) throw std::invalid_argument("apportion: no weights");
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("apportion: negative weight");
    sum += w;
  }
  std::vector<long long> out(k, 0);
  if (total == 0) return out;
  if (sum <= 0.0) {
    // Degenerate: split evenly.
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = total / static_cast<long long>(k) +
               (static_cast<long long>(i) <
                        total % static_cast<long long>(k)
                    ? 1
                    : 0);
    }
    return out;
  }
  std::vector<double> remainder(k);
  long long assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double exact = static_cast<double>(total) * weights[i] / sum;
    out[i] = static_cast<long long>(exact);
    remainder[i] = exact - static_cast<double>(out[i]);
    assigned += out[i];
  }
  // Hand the leftover units to the largest remainders.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainder[a] > remainder[b];
  });
  for (std::size_t i = 0; assigned < total; ++i) {
    out[order[i % k]] += 1;
    ++assigned;
  }
  return out;
}

}  // namespace pfar::util
