#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pfar::util {

/// Number of worker threads to use by default: the PFAR_THREADS environment
/// variable if set to a positive integer, otherwise the hardware
/// concurrency (at least 1).
int default_threads();

/// Runs fn(i) for every i in [0, count) across up to `threads` workers
/// (<= 0 means default_threads()). Runs inline in index order when one
/// worker suffices; otherwise fans out over a ThreadPool. The first
/// exception thrown by any task is rethrown after all tasks finish.
/// Callers needing determinism must make tasks independent and write
/// results by index (the parallel-construction contract of
/// docs/plan_pipeline.md).
void parallel_for(int threads, int count, const std::function<void(int)>& fn);

/// Funnels the first exception thrown across concurrently running tasks
/// into one slot, to rethrow on the submitting thread once the fan-out
/// joins. Later captures are dropped — with independent tasks any of the
/// failures is representative, and "first to lock" keeps the slot free of
/// ordering assumptions. Shared by parallel_for, core::SweepRunner and
/// anything else that fans work over a ThreadPool.
class FirstError {
 public:
  /// Records std::current_exception() if no earlier task got here first.
  /// Call from inside a catch block, on any thread.
  void capture() noexcept {
    MutexLock lock(mu_);
    if (!error_) error_ = std::current_exception();
  }

  /// Rethrows the captured exception, if any. Call after every task has
  /// finished (e.g. past ThreadPool::wait_idle), when no capture can race.
  void rethrow_if_set() {
    MutexLock lock(mu_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  Mutex mu_;
  std::exception_ptr error_ PFAR_GUARDED_BY(mu_);
};

/// A fixed-size pool of worker threads draining one shared task queue.
/// Tasks are opaque void() callables; ordering across workers is
/// unspecified, so deterministic users (see core::SweepRunner) must make
/// each task independent and collect results by index, not by completion
/// order.
class ThreadPool {
 public:
  /// Spawns `threads` workers (default_threads() when <= 0).
  explicit ThreadPool(int threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including from inside
  /// a running task.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every submitted task has
  /// finished executing.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  // condition_variable_any waits on the annotated Mutex directly; the
  // plain std::condition_variable would force a bare std::mutex the
  // thread-safety analysis cannot track.
  std::condition_variable_any work_available_;
  std::condition_variable_any idle_;
  std::queue<std::function<void()>> queue_ PFAR_GUARDED_BY(mutex_);
  std::size_t in_flight_ PFAR_GUARDED_BY(mutex_) = 0;  // queued + executing
  bool stopping_ PFAR_GUARDED_BY(mutex_) = false;
};

}  // namespace pfar::util
