#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pfar::util {

/// Number of worker threads to use by default: the PFAR_THREADS environment
/// variable if set to a positive integer, otherwise the hardware
/// concurrency (at least 1).
int default_threads();

/// Runs fn(i) for every i in [0, count) across up to `threads` workers
/// (<= 0 means default_threads()). Runs inline in index order when one
/// worker suffices; otherwise fans out over a ThreadPool. The first
/// exception thrown by any task is rethrown after all tasks finish.
/// Callers needing determinism must make tasks independent and write
/// results by index (the parallel-construction contract of
/// docs/plan_pipeline.md).
void parallel_for(int threads, int count, const std::function<void(int)>& fn);

/// A fixed-size pool of worker threads draining one shared task queue.
/// Tasks are opaque void() callables; ordering across workers is
/// unspecified, so deterministic users (see core::SweepRunner) must make
/// each task independent and collect results by index, not by completion
/// order.
class ThreadPool {
 public:
  /// Spawns `threads` workers (default_threads() when <= 0).
  explicit ThreadPool(int threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including from inside
  /// a running task.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every submitted task has
  /// finished executing.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
};

}  // namespace pfar::util
