#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pfar::util {

/// Minimal aligned-column table printer used by the bench binaries to emit
/// the rows of the paper's tables and figure series as plain text.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string-like conversion.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  /// Renders the table with a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as CSV (cells containing commas or quotes are quoted) so
  /// bench output can feed plotting scripts directly.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(bool v) { return v ? "yes" : "no"; }
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4f", static_cast<double>(v));
      return buf;
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pfar::util
