#pragma once

#include <vector>

#include "singer/disjoint.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::trees {

/// Converts an alternating-sum Hamiltonian path into a spanning tree rooted
/// at the path midpoint, which minimizes depth at (N-1)/2 (Lemma 7.17).
SpanningTree hamiltonian_path_tree(const singer::AlternatingPath& path);

/// Converts every path of an edge-disjoint Hamiltonian set (Section 7.2)
/// into midpoint-rooted spanning trees. The resulting set has congestion 1
/// (edge-disjoint), i.e. zero congestion in the paper's sense.
///
/// Conversions are independent per path and fan out over a
/// util::ThreadPool (`threads` <= 0 means util::default_threads());
/// results land by path index, so the output is identical for every
/// thread count.
std::vector<SpanningTree> hamiltonian_trees(
    const singer::DisjointHamiltonianSet& set, int threads = 0);

}  // namespace pfar::trees
