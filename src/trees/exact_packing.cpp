#include "trees/exact_packing.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace pfar::trees {
namespace {

/// Partitions edges of g into k forests of maximum total size via
/// matroid-union augmentation.
class ForestPacker {
 public:
  ForestPacker(const graph::Graph& g, int k)
      : g_(g),
        k_(k),
        n_(g.num_vertices()),
        owner_(static_cast<std::size_t>(g.num_edges()), -1),
        adj_(static_cast<std::size_t>(k), std::vector<std::vector<std::pair<int, int>>>(static_cast<std::size_t>(n_))) {}

  /// Attempts to place every edge; returns the number placed.
  int pack() {
    int placed = 0;
    for (int e = 0; e < g_.num_edges(); ++e) {
      if (insert(e)) ++placed;
    }
    return placed;
  }

  /// Forest i's edge ids.
  std::vector<int> forest_edges(int i) const {
    std::vector<int> out;
    for (int e = 0; e < g_.num_edges(); ++e) {
      if (owner_[static_cast<std::size_t>(e)] == i) out.push_back(e);
    }
    return out;
  }

 private:
  // Path between u and v inside forest i as edge ids; empty if
  // disconnected there.
  std::vector<int> forest_path(int i, int u, int v) const {
    std::vector<int> prev_edge(static_cast<std::size_t>(n_), -1);
    std::vector<int> prev_node(static_cast<std::size_t>(n_), -1);
    std::vector<char> seen(static_cast<std::size_t>(n_), 0);
    std::queue<int> frontier;
    seen[static_cast<std::size_t>(u)] = 1;
    frontier.push(u);
    while (!frontier.empty() && !seen[static_cast<std::size_t>(v)]) {
      const int x = frontier.front();
      frontier.pop();
      for (const auto& [y, eid] : adj_[static_cast<std::size_t>(i)][static_cast<std::size_t>(x)]) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          prev_edge[static_cast<std::size_t>(y)] = eid;
          prev_node[static_cast<std::size_t>(y)] = x;
          frontier.push(y);
        }
      }
    }
    std::vector<int> path;
    if (!seen[static_cast<std::size_t>(v)]) return path;
    for (int x = v; x != u; x = prev_node[static_cast<std::size_t>(x)]) path.push_back(prev_edge[static_cast<std::size_t>(x)]);
    return path;
  }

  bool connected_in_forest(int i, int u, int v) const {
    return !forest_path(i, u, v).empty() || u == v;
  }

  void attach(int e, int i) {
    owner_[static_cast<std::size_t>(e)] = i;
    const auto& edge = g_.edge(e);
    adj_[static_cast<std::size_t>(i)][static_cast<std::size_t>(edge.u)].emplace_back(edge.v, e);
    adj_[static_cast<std::size_t>(i)][static_cast<std::size_t>(edge.v)].emplace_back(edge.u, e);
  }

  void detach(int e) {
    const int i = owner_[static_cast<std::size_t>(e)];
    const auto& edge = g_.edge(e);
    auto scrub = [&](int x) {
      auto& list = adj_[static_cast<std::size_t>(i)][static_cast<std::size_t>(x)];
      list.erase(std::find_if(list.begin(), list.end(),
                              [&](const auto& p) { return p.second == e; }));
    };
    scrub(edge.u);
    scrub(edge.v);
    owner_[static_cast<std::size_t>(e)] = -1;
  }

  // Augmenting insertion: BFS over edges that would have to move.
  bool insert(int e0) {
    const int num_edges = g_.num_edges();
    std::vector<int> parent_edge(static_cast<std::size_t>(num_edges), -2);   // -2 = unvisited
    std::vector<int> parent_forest(static_cast<std::size_t>(num_edges), -1);
    parent_edge[static_cast<std::size_t>(e0)] = -1;
    std::deque<int> frontier{e0};

    while (!frontier.empty()) {
      const int f = frontier.front();
      frontier.pop_front();
      const auto& fe = g_.edge(f);
      for (int i = 0; i < k_; ++i) {
        const auto path = forest_path(i, fe.u, fe.v);
        if (path.empty()) {
          // f fits into forest i: apply the swap chain back to e0.
          int cur = f;
          int target = i;
          for (;;) {
            if (owner_[static_cast<std::size_t>(cur)] >= 0) detach(cur);
            attach(cur, target);
            const int p = parent_edge[static_cast<std::size_t>(cur)];
            if (p < 0) break;
            target = parent_forest[static_cast<std::size_t>(cur)];
            cur = p;
          }
          return true;
        }
        for (int gid : path) {
          if (parent_edge[static_cast<std::size_t>(gid)] == -2) {
            parent_edge[static_cast<std::size_t>(gid)] = f;
            parent_forest[static_cast<std::size_t>(gid)] = i;
            frontier.push_back(gid);
          }
        }
      }
    }
    return false;
  }

  const graph::Graph& g_;
  int k_;
  int n_;
  std::vector<int> owner_;
  // adj_[forest][vertex] = (neighbor, edge id)
  std::vector<std::vector<std::vector<std::pair<int, int>>>> adj_;
};

}  // namespace

bool has_k_disjoint_spanning_trees(const graph::Graph& g, int k) {
  if (k <= 0) return true;
  const long long need =
      static_cast<long long>(k) * (g.num_vertices() - 1);
  if (need > g.num_edges()) return false;
  ForestPacker packer(g, k);
  return packer.pack() >= need;
}

std::vector<SpanningTree> exact_tree_packing(const graph::Graph& g) {
  const int n = g.num_vertices();
  std::vector<SpanningTree> out;
  if (n < 2 || !g.is_connected()) return out;
  const int bound = g.num_edges() / (n - 1);
  for (int k = bound; k >= 1; --k) {
    ForestPacker packer(g, k);
    const long long need = static_cast<long long>(k) * (n - 1);
    if (packer.pack() < need) continue;
    // Each forest has exactly n-1 edges and is acyclic => spanning tree.
    for (int i = 0; i < k; ++i) {
      graph::Graph forest(n);
      for (int e : packer.forest_edges(i)) {
        forest.add_edge(g.edge(e).u, g.edge(e).v);
      }
      forest.finalize();
      // Root at 0; derive parents by BFS.
      std::vector<int> parent(static_cast<std::size_t>(n), -1);
      std::vector<char> seen(static_cast<std::size_t>(n), 0);
      std::queue<int> frontier;
      seen[0] = 1;
      frontier.push(0);
      while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        for (int w : forest.neighbors(u)) {
          if (!seen[static_cast<std::size_t>(w)]) {
            seen[static_cast<std::size_t>(w)] = 1;
            parent[static_cast<std::size_t>(w)] = u;
            frontier.push(w);
          }
        }
      }
      out.emplace_back(0, std::move(parent));
    }
    return out;
  }
  return out;
}

}  // namespace pfar::trees
