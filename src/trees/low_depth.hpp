#pragma once

#include <vector>

#include "polarfly/erq.hpp"
#include "polarfly/layout.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::trees {

/// Algorithm 3 (Section 7.1): builds q spanning trees of PolarFly, one
/// rooted at each cluster center, with depth <= 3 (Theorem 7.5) and
/// worst-case link congestion 2 (Theorem 7.6). The trees additionally
/// satisfy Lemma 7.8: reduction traffic on any shared link flows in
/// opposite directions for the two trees, so a router port carries at most
/// one reduction per direction.
///
/// Tree T_i structure (Figure 3):
///   level 0: center v_i of cluster C_i;
///   level 1: all neighbors of v_i (the rest of C_i, the starter quadric w
///            and the non-starter quadric w_i);
///   level 2: everything reachable from level-1 vertices except via w
///            (remaining quadrics and non-center vertices of other
///            clusters);
///   level 3: the other cluster centers v_j, each attached by an edge
///            popped from the shared available-edge pool E_a.
///
/// Fast path: the per-tree level-1/2 expansion and the final SpanningTree
/// construction are independent across trees and fan out over a
/// util::ThreadPool (`threads` <= 0 means util::default_threads()); only
/// the cheap level-3 attachments, which consume the shared pool E_a, run
/// sequentially in tree order. Deterministic: the result is bit-identical
/// to build_low_depth_trees_reference for every thread count (pinned by
/// tests).
std::vector<SpanningTree> build_low_depth_trees(const polarfly::PolarFly& pf,
                                                const polarfly::Layout& layout,
                                                int threads = 0);

/// The seed single-threaded implementation of Algorithm 3, kept verbatim
/// as the reference the fast path is verified against.
std::vector<SpanningTree> build_low_depth_trees_reference(
    const polarfly::PolarFly& pf, const polarfly::Layout& layout);

/// Even-q analogue of Algorithm 3 (the paper states a "conceptually
/// similar layout and Allreduce solution for even q" exists but does not
/// publish it; this is our reconstruction, verified empirically).
///
/// Even-characteristic structure (see tests/evenq_test.cpp): the q+1
/// quadrics are collinear, a unique nucleus neighbors all of them, and
/// every other non-quadric neighbors exactly one quadric. The starter
/// quadric w therefore has q-1 non-nucleus neighbors, whose closed
/// neighborhoods partition the non-quadric, non-nucleus vertices into
/// q-1 clusters of size q+1 (uniqueness of 2-paths makes them disjoint).
///
/// One tree per cluster center: level 1 covers the cluster and w, level 2
/// expands the non-quadric level-1 vertices, and the leftovers (other
/// centers, the nucleus, remaining quadrics) attach through a shared
/// available-edge pool as in Algorithm 3. The result — verified by tests
/// for q in {4, 8, 16, 32} and by the Figure 5a bench up to q = 128 — is
/// q-1 spanning trees with depth <= 3, congestion <= 2 and the Lemma 7.8
/// opposite-flow property, for aggregate bandwidth >= (q-1)B/2 (optimal
/// is (q+1)B/2).
///
/// Same parallel decomposition and determinism contract as
/// build_low_depth_trees.
std::vector<SpanningTree> build_low_depth_trees_even(
    const polarfly::PolarFly& pf, int starter_index = 0, int threads = 0);

/// The seed single-threaded even-q builder, kept verbatim as the
/// reference the fast path is verified against.
std::vector<SpanningTree> build_low_depth_trees_even_reference(
    const polarfly::PolarFly& pf, int starter_index = 0);

}  // namespace pfar::trees
