#include "trees/spanning_tree.hpp"

#include <stdexcept>

namespace pfar::trees {

SpanningTree::SpanningTree(int root, std::vector<int> parent)
    : root_(root), parent_(std::move(parent)) {
  const int n = static_cast<int>(parent_.size());
  if (root_ < 0 || root_ >= n || parent_[static_cast<std::size_t>(root_)] != -1) {
    throw std::invalid_argument("SpanningTree: bad root");
  }
  // Counting-sort CSR build of the child lists (each row ascending, as
  // children are appended in vertex order).
  child_offsets_.assign(static_cast<std::size_t>(n + 1), 0);
  for (int v = 0; v < n; ++v) {
    if (v == root_) continue;
    if (parent_[static_cast<std::size_t>(v)] < 0 || parent_[static_cast<std::size_t>(v)] >= n) {
      throw std::invalid_argument("SpanningTree: vertex without parent");
    }
    ++child_offsets_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)] + 1)];
  }
  for (int v = 0; v < n; ++v) child_offsets_[static_cast<std::size_t>(v + 1)] += child_offsets_[static_cast<std::size_t>(v)];
  children_.resize(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  std::vector<int> cursor(child_offsets_.begin(), child_offsets_.end() - 1);
  for (int v = 0; v < n; ++v) {
    if (v != root_) children_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])]++)] = v;
  }
  // Levels via BFS from the root; also detects cycles/disconnection
  // (a cycle never gets a level assigned).
  level_.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> frontier;
  frontier.reserve(static_cast<std::size_t>(n));
  level_[static_cast<std::size_t>(root_)] = 0;
  frontier.push_back(root_);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const int u = frontier[head];
    depth_ = std::max(depth_, level_[static_cast<std::size_t>(u)]);
    for (int c : children(u)) {
      level_[static_cast<std::size_t>(c)] = level_[static_cast<std::size_t>(u)] + 1;
      frontier.push_back(c);
    }
  }
  if (static_cast<int>(frontier.size()) != n) {
    throw std::invalid_argument("SpanningTree: parent vector has a cycle");
  }
}

std::vector<graph::Edge> SpanningTree::edges() const {
  std::vector<graph::Edge> out;
  out.reserve(parent_.size() - 1);
  for (int v = 0; v < num_vertices(); ++v) {
    if (v != root_) out.emplace_back(v, parent_[static_cast<std::size_t>(v)]);
  }
  return out;
}

bool SpanningTree::is_spanning_tree_of(const graph::Graph& g) const {
  if (g.num_vertices() != num_vertices()) return false;
  for (int v = 0; v < num_vertices(); ++v) {
    if (v == root_) continue;
    if (!g.has_edge(v, parent_[static_cast<std::size_t>(v)])) return false;
  }
  // Connectivity/acyclicity already guaranteed by the constructor.
  return true;
}

std::vector<int> edge_congestion(const graph::Graph& g,
                                 const std::vector<SpanningTree>& trees) {
  std::vector<int> congestion(static_cast<std::size_t>(g.num_edges()), 0);
  for (const auto& tree : trees) {
    for (const auto& e : tree.edges()) {
      const int id = g.edge_id(e.u, e.v);
      if (id < 0) {
        throw std::invalid_argument("edge_congestion: tree edge not in graph");
      }
      ++congestion[static_cast<std::size_t>(id)];
    }
  }
  return congestion;
}

int max_congestion(const graph::Graph& g,
                   const std::vector<SpanningTree>& trees) {
  int best = 0;
  for (int c : edge_congestion(g, trees)) best = std::max(best, c);
  return best;
}

bool edge_disjoint(const graph::Graph& g,
                   const std::vector<SpanningTree>& trees) {
  return max_congestion(g, trees) <= 1;
}

bool opposite_reduction_flows(const graph::Graph& g,
                              const std::vector<SpanningTree>& trees) {
  // orientation[id]: +1 if reduction flows u->v (v is the parent side),
  // -1 if v->u, for the normalized edge {u < v}; 0 if unused so far.
  std::vector<int> orientation(static_cast<std::size_t>(g.num_edges()), 0);
  std::vector<int> uses(static_cast<std::size_t>(g.num_edges()), 0);
  for (const auto& tree : trees) {
    for (int x = 0; x < tree.num_vertices(); ++x) {
      if (x == tree.root()) continue;
      const int p = tree.parent(x);
      const graph::Edge e(x, p);
      const int id = g.edge_id(e.u, e.v);
      const int dir = (p == e.v) ? +1 : -1;  // child -> parent direction
      ++uses[static_cast<std::size_t>(id)];
      if (uses[static_cast<std::size_t>(id)] > 2) return false;
      if (uses[static_cast<std::size_t>(id)] == 2 && orientation[static_cast<std::size_t>(id)] == dir) return false;
      orientation[static_cast<std::size_t>(id)] = dir;
    }
  }
  return true;
}

}  // namespace pfar::trees
