#include "trees/hamiltonian.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace pfar::trees {

SpanningTree hamiltonian_path_tree(const singer::AlternatingPath& path) {
  if (!path.hamiltonian) {
    throw std::invalid_argument("hamiltonian_path_tree: path not Hamiltonian");
  }
  const auto& vs = path.vertices;
  const int n = static_cast<int>(vs.size());
  // Midpoint of b_1..b_N (N odd): index (N+1)/2, i.e. 0-based (n-1)/2
  // (Lemma 7.17).
  const int mid = (n - 1) / 2;
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int idx = 0; idx < n; ++idx) {
    const int v = static_cast<int>(vs[static_cast<std::size_t>(idx)]);
    if (idx < mid) {
      parent[static_cast<std::size_t>(v)] = static_cast<int>(vs[static_cast<std::size_t>(idx + 1)]);
    } else if (idx > mid) {
      parent[static_cast<std::size_t>(v)] = static_cast<int>(vs[static_cast<std::size_t>(idx - 1)]);
    }
  }
  SpanningTree tree(static_cast<int>(vs[static_cast<std::size_t>(mid)]),
                    std::move(parent));
  // A path split at its midpoint has depth ceil((n-1)/2) (Lemma 7.17's
  // latency bound); anything deeper means the parent wiring above is wrong.
  PFAR_ENSURE(tree.depth() == (n - 1) - mid, n, mid, tree.depth());
  return tree;
}

std::vector<SpanningTree> hamiltonian_trees(
    const singer::DisjointHamiltonianSet& set, int threads) {
  std::vector<std::optional<SpanningTree>> slots(set.paths.size());
  util::parallel_for(threads, static_cast<int>(set.paths.size()), [&](int i) {
    slots[static_cast<std::size_t>(i)].emplace(hamiltonian_path_tree(set.paths[static_cast<std::size_t>(i)]));
  });
  std::vector<SpanningTree> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace pfar::trees
