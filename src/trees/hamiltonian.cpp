#include "trees/hamiltonian.hpp"

#include <stdexcept>

namespace pfar::trees {

SpanningTree hamiltonian_path_tree(const singer::AlternatingPath& path) {
  if (!path.hamiltonian) {
    throw std::invalid_argument("hamiltonian_path_tree: path not Hamiltonian");
  }
  const auto& vs = path.vertices;
  const int n = static_cast<int>(vs.size());
  // Midpoint of b_1..b_N (N odd): index (N+1)/2, i.e. 0-based (n-1)/2
  // (Lemma 7.17).
  const int mid = (n - 1) / 2;
  std::vector<int> parent(n, -1);
  for (int idx = 0; idx < n; ++idx) {
    const int v = static_cast<int>(vs[idx]);
    if (idx < mid) {
      parent[v] = static_cast<int>(vs[idx + 1]);
    } else if (idx > mid) {
      parent[v] = static_cast<int>(vs[idx - 1]);
    }
  }
  return SpanningTree(static_cast<int>(vs[mid]), std::move(parent));
}

std::vector<SpanningTree> hamiltonian_trees(
    const singer::DisjointHamiltonianSet& set) {
  std::vector<SpanningTree> out;
  out.reserve(set.paths.size());
  for (const auto& path : set.paths) {
    out.push_back(hamiltonian_path_tree(path));
  }
  return out;
}

}  // namespace pfar::trees
