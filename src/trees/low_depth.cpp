#include "trees/low_depth.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace pfar::trees {
namespace {

// Moves a slot-per-tree optional buffer into the dense result vector.
std::vector<SpanningTree> collect(std::vector<std::optional<SpanningTree>> slots) {
  std::vector<SpanningTree> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace

std::vector<SpanningTree> build_low_depth_trees(
    const polarfly::PolarFly& pf, const polarfly::Layout& layout,
    int threads) {
  const graph::Graph& g = pf.graph();
  const int n = g.num_vertices();
  const int q = pf.q();
  const int w = layout.starter_quadric;

  // Phase 1 (parallel, independent per tree): levels 0-2 of Algorithm 3
  // (lines 4-8). Only the graph is read; each task writes its own slots.
  std::vector<std::vector<int>> parents(static_cast<std::size_t>(q));
  std::vector<std::vector<char>> in_tree(static_cast<std::size_t>(q));
  util::parallel_for(threads, q, [&](int i) {
    const int root = layout.centers[static_cast<std::size_t>(i)];
    std::vector<int>& parent = parents[static_cast<std::size_t>(i)];
    std::vector<char>& covered = in_tree[static_cast<std::size_t>(i)];
    parent.assign(static_cast<std::size_t>(n), -1);
    covered.assign(static_cast<std::size_t>(n), 0);
    covered[static_cast<std::size_t>(root)] = 1;

    // Level 1: every neighbor of the root (lines 4-5).
    for (int u : g.neighbors(root)) {
      parent[static_cast<std::size_t>(u)] = root;
      covered[static_cast<std::size_t>(u)] = 1;
    }
    // Level 2: expand level-1 vertices except the starter quadric
    // (lines 6-8). Expanding w would pull in the other centers at depth 2
    // but would put q-1 trees' traffic on w's q links; the proof of
    // Theorem 7.6 depends on skipping it.
    for (int u : g.neighbors(root)) {
      if (u == w) continue;
      for (int z : g.neighbors(u)) {
        if (!covered[static_cast<std::size_t>(z)]) {
          parent[static_cast<std::size_t>(z)] = u;
          covered[static_cast<std::size_t>(z)] = 1;
        }
      }
    }
  });

  // Phase 2 (sequential, in tree order): level-3 center attachments
  // (lines 9-12) consume the shared available-edge pool E_a (line 1), so
  // they run in the exact order of the reference implementation.
  std::vector<char> available(static_cast<std::size_t>(g.num_edges()), 1);
  for (int i = 0; i < q; ++i) {
    std::vector<int>& parent = parents[static_cast<std::size_t>(i)];
    std::vector<char>& covered = in_tree[static_cast<std::size_t>(i)];
    for (int j = 0; j < q; ++j) {
      if (j == i) continue;
      const int center = layout.centers[static_cast<std::size_t>(j)];
      if (covered[static_cast<std::size_t>(center)]) {
        throw std::logic_error(
            "build_low_depth_trees: center covered early (layout broken)");
      }
      int chosen = -1;
      const auto nbrs = g.neighbors(center);
      const auto eids = g.neighbor_edge_ids(center);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (available[static_cast<std::size_t>(eids[k])] && covered[static_cast<std::size_t>(nbrs[k])]) {
          chosen = nbrs[k];
          available[static_cast<std::size_t>(eids[k])] = 0;
          break;
        }
      }
      if (chosen < 0) {
        throw std::logic_error(
            "build_low_depth_trees: no available edge for a center "
            "(contradicts Theorem 7.4)");
      }
      parent[static_cast<std::size_t>(center)] = chosen;
      covered[static_cast<std::size_t>(center)] = 1;
    }
  }

  // Phase 3 (parallel): SpanningTree construction (child CSR + level BFS)
  // is independent per tree.
  std::vector<std::optional<SpanningTree>> slots(static_cast<std::size_t>(q));
  util::parallel_for(threads, q, [&](int i) {
    slots[static_cast<std::size_t>(i)].emplace(layout.centers[static_cast<std::size_t>(i)], std::move(parents[static_cast<std::size_t>(i)]));
  });
  auto out = collect(std::move(slots));

  // Theorem 7.6 bounds: q trees, each spanning at depth <= 3.
  PFAR_ENSURE(static_cast<int>(out.size()) == q, q, out.size());
  for (const auto& tree : out) {
    PFAR_ENSURE(tree.depth() <= 3, q, tree.root(), tree.depth());
  }
#if PFAR_AUDIT_ENABLED
  for (const auto& tree : out) {
    PFAR_INVARIANT(tree.is_spanning_tree_of(g), q, tree.root());
  }
  // Lemma 7.8: congestion <= 2 with opposite reduction flows on every
  // doubly-used link.
  PFAR_INVARIANT(max_congestion(g, out) <= 2, q, max_congestion(g, out));
  PFAR_INVARIANT(opposite_reduction_flows(g, out), q);
#endif
  return out;
}

std::vector<SpanningTree> build_low_depth_trees_reference(
    const polarfly::PolarFly& pf, const polarfly::Layout& layout) {
  const graph::Graph& g = pf.graph();
  const int n = g.num_vertices();
  const int q = pf.q();
  const int w = layout.starter_quadric;

  // E_a: availability of each edge for the level-3 center attachments
  // (line 1 of Algorithm 3). Shared across all trees.
  std::vector<char> available(static_cast<std::size_t>(g.num_edges()), 1);

  std::vector<SpanningTree> out;
  out.reserve(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    const int root = layout.centers[static_cast<std::size_t>(i)];
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    std::vector<char> in_tree(static_cast<std::size_t>(n), 0);
    in_tree[static_cast<std::size_t>(root)] = 1;

    // Level 1: every neighbor of the root (lines 4-5).
    for (int u : g.neighbors(root)) {
      parent[static_cast<std::size_t>(u)] = root;
      in_tree[static_cast<std::size_t>(u)] = 1;
    }
    // Level 2: expand level-1 vertices except the starter quadric
    // (lines 6-8).
    for (int u : g.neighbors(root)) {
      if (u == w) continue;
      for (int z : g.neighbors(u)) {
        if (!in_tree[static_cast<std::size_t>(z)]) {
          parent[static_cast<std::size_t>(z)] = u;
          in_tree[static_cast<std::size_t>(z)] = 1;
        }
      }
    }
    // Level 3: attach every other cluster center via an edge still in E_a
    // (lines 9-12).
    for (int j = 0; j < q; ++j) {
      if (j == i) continue;
      const int center = layout.centers[static_cast<std::size_t>(j)];
      if (in_tree[static_cast<std::size_t>(center)]) {
        throw std::logic_error(
            "build_low_depth_trees: center covered early (layout broken)");
      }
      int chosen = -1;
      for (int u : g.neighbors(center)) {
        const int id = g.edge_id(u, center);
        if (available[static_cast<std::size_t>(id)] && in_tree[static_cast<std::size_t>(u)]) {
          chosen = u;
          break;
        }
      }
      if (chosen < 0) {
        throw std::logic_error(
            "build_low_depth_trees: no available edge for a center "
            "(contradicts Theorem 7.4)");
      }
      parent[static_cast<std::size_t>(center)] = chosen;
      in_tree[static_cast<std::size_t>(center)] = 1;
      available[static_cast<std::size_t>(g.edge_id(chosen, center))] = 0;
    }

    out.emplace_back(root, std::move(parent));
  }
  return out;
}

std::vector<SpanningTree> build_low_depth_trees_even(
    const polarfly::PolarFly& pf, int starter_index, int threads) {
  if (pf.q() % 2 != 0) {
    throw std::invalid_argument(
        "build_low_depth_trees_even: even prime power q required");
  }
  const graph::Graph& g = pf.graph();
  const int n = g.num_vertices();
  const auto& quadrics = pf.quadrics();
  if (starter_index < 0 ||
      starter_index >= static_cast<int>(quadrics.size())) {
    throw std::out_of_range("build_low_depth_trees_even: starter_index");
  }
  const int w = quadrics[static_cast<std::size_t>(starter_index)];
  // The nucleus is the unique vertex adjacent to every quadric; in the
  // canonical coordinates it is [1,1,1] (characteristic 2).
  const int nucleus = pf.vertex_of(polarfly::Point{1, 1, 1});

  std::vector<int> centers;
  for (int u : g.neighbors(w)) {
    if (u != nucleus) centers.push_back(u);
  }
  const int num_trees = static_cast<int>(centers.size());

  // Phase 1 (parallel, independent per tree): levels 0-2.
  std::vector<std::vector<int>> parents(static_cast<std::size_t>(num_trees));
  std::vector<std::vector<int>> levels(static_cast<std::size_t>(num_trees));
  util::parallel_for(threads, num_trees, [&](int i) {
    const int root = centers[static_cast<std::size_t>(i)];
    std::vector<int>& parent = parents[static_cast<std::size_t>(i)];
    std::vector<int>& level = levels[static_cast<std::size_t>(i)];
    parent.assign(static_cast<std::size_t>(n), -1);
    level.assign(static_cast<std::size_t>(n), -1);
    level[static_cast<std::size_t>(root)] = 0;
    // Level 1: the whole cluster of `root` plus the starter quadric.
    for (int u : g.neighbors(root)) {
      parent[static_cast<std::size_t>(u)] = root;
      level[static_cast<std::size_t>(u)] = 1;
    }
    // Level 2: expand the non-quadric level-1 vertices (expanding w would
    // concentrate all trees' traffic on w's q links, as in Algorithm 3).
    for (int u : g.neighbors(root)) {
      if (pf.is_quadric(u)) continue;
      for (int z : g.neighbors(u)) {
        if (level[static_cast<std::size_t>(z)] < 0) {
          parent[static_cast<std::size_t>(z)] = u;
          level[static_cast<std::size_t>(z)] = 2;
        }
      }
    }
  });

  // Phase 2 (sequential, in tree order): leftover attachments through the
  // shared edge pool, exactly as the reference.
  std::vector<char> available(static_cast<std::size_t>(g.num_edges()), 1);
  for (int i = 0; i < num_trees; ++i) {
    std::vector<int>& parent = parents[static_cast<std::size_t>(i)];
    std::vector<int>& level = levels[static_cast<std::size_t>(i)];
    int covered = 0;
    for (int v = 0; v < n; ++v) covered += level[static_cast<std::size_t>(v)] >= 0;
    bool progress = true;
    while (covered < n && progress) {
      progress = false;
      for (int v = 0; v < n; ++v) {
        if (level[static_cast<std::size_t>(v)] >= 0) continue;
        int best = -1;
        int best_eid = -1;
        const auto nbrs = g.neighbors(v);
        const auto eids = g.neighbor_edge_ids(v);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          if (level[static_cast<std::size_t>(nbrs[k])] < 0 || !available[static_cast<std::size_t>(eids[k])]) continue;
          if (best < 0 || level[static_cast<std::size_t>(nbrs[k])] < level[static_cast<std::size_t>(best)]) {
            best = nbrs[k];
            best_eid = eids[k];
          }
        }
        if (best < 0) continue;
        parent[static_cast<std::size_t>(v)] = best;
        level[static_cast<std::size_t>(v)] = level[static_cast<std::size_t>(best)] + 1;
        available[static_cast<std::size_t>(best_eid)] = 0;
        ++covered;
        progress = true;
      }
    }
    if (covered < n) {
      throw std::logic_error(
          "build_low_depth_trees_even: attachment pool exhausted");
    }
  }

  // Phase 3 (parallel): SpanningTree construction.
  std::vector<std::optional<SpanningTree>> slots(static_cast<std::size_t>(num_trees));
  util::parallel_for(threads, num_trees, [&](int i) {
    slots[static_cast<std::size_t>(i)].emplace(centers[static_cast<std::size_t>(i)], std::move(parents[static_cast<std::size_t>(i)]));
  });
  auto out = collect(std::move(slots));

  // Even q: q-1 trees (the starter's neighbors minus the nucleus).
  PFAR_ENSURE(static_cast<int>(out.size()) == num_trees, num_trees,
              out.size());
#if PFAR_AUDIT_ENABLED
  for (const auto& tree : out) {
    PFAR_INVARIANT(tree.is_spanning_tree_of(g), tree.root());
  }
#endif
  return out;
}

std::vector<SpanningTree> build_low_depth_trees_even_reference(
    const polarfly::PolarFly& pf, int starter_index) {
  if (pf.q() % 2 != 0) {
    throw std::invalid_argument(
        "build_low_depth_trees_even: even prime power q required");
  }
  const graph::Graph& g = pf.graph();
  const int n = g.num_vertices();
  const auto& quadrics = pf.quadrics();
  if (starter_index < 0 ||
      starter_index >= static_cast<int>(quadrics.size())) {
    throw std::out_of_range("build_low_depth_trees_even: starter_index");
  }
  const int w = quadrics[static_cast<std::size_t>(starter_index)];
  // The nucleus is the unique vertex adjacent to every quadric; in the
  // canonical coordinates it is [1,1,1] (characteristic 2).
  const int nucleus = pf.vertex_of(polarfly::Point{1, 1, 1});

  std::vector<int> centers;
  for (int u : g.neighbors(w)) {
    if (u != nucleus) centers.push_back(u);
  }

  std::vector<char> available(static_cast<std::size_t>(g.num_edges()), 1);
  std::vector<SpanningTree> out;
  out.reserve(centers.size());
  for (int root : centers) {
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    std::vector<int> level(static_cast<std::size_t>(n), -1);
    level[static_cast<std::size_t>(root)] = 0;
    // Level 1: the whole cluster of `root` plus the starter quadric.
    for (int u : g.neighbors(root)) {
      parent[static_cast<std::size_t>(u)] = root;
      level[static_cast<std::size_t>(u)] = 1;
    }
    // Level 2: expand the non-quadric level-1 vertices (expanding w would
    // concentrate all trees' traffic on w's q links, as in Algorithm 3).
    for (int u : g.neighbors(root)) {
      if (pf.is_quadric(u)) continue;
      for (int z : g.neighbors(u)) {
        if (level[static_cast<std::size_t>(z)] < 0) {
          parent[static_cast<std::size_t>(z)] = u;
          level[static_cast<std::size_t>(z)] = 2;
        }
      }
    }
    // Attach the leftovers (other centers, the nucleus, remaining
    // quadrics) through the shared edge pool, each under its shallowest
    // covered neighbor; repeat while progress is made so chains like
    // quadric -> nucleus resolve.
    int covered = 0;
    for (int v = 0; v < n; ++v) covered += level[static_cast<std::size_t>(v)] >= 0;
    bool progress = true;
    while (covered < n && progress) {
      progress = false;
      for (int v = 0; v < n; ++v) {
        if (level[static_cast<std::size_t>(v)] >= 0) continue;
        int best = -1;
        for (int u : g.neighbors(v)) {
          if (level[static_cast<std::size_t>(u)] < 0 || !available[static_cast<std::size_t>(g.edge_id(u, v))]) continue;
          if (best < 0 || level[static_cast<std::size_t>(u)] < level[static_cast<std::size_t>(best)]) best = u;
        }
        if (best < 0) continue;
        parent[static_cast<std::size_t>(v)] = best;
        level[static_cast<std::size_t>(v)] = level[static_cast<std::size_t>(best)] + 1;
        available[static_cast<std::size_t>(g.edge_id(best, v))] = 0;
        ++covered;
        progress = true;
      }
    }
    if (covered < n) {
      throw std::logic_error(
          "build_low_depth_trees_even: attachment pool exhausted");
    }
    out.emplace_back(root, std::move(parent));
  }
  return out;
}

}  // namespace pfar::trees
