#include "trees/packing.hpp"

#include <vector>

namespace pfar::trees {

std::vector<SpanningTree> greedy_tree_packing(const graph::Graph& g,
                                              int max_trees) {
  const int n = g.num_vertices();
  std::vector<SpanningTree> out;
  if (n < 2) return out;
  std::vector<char> used(static_cast<std::size_t>(g.num_edges()), 0);

  for (;;) {
    if (max_trees >= 0 && static_cast<int>(out.size()) >= max_trees) break;
    // DFS over unused edges. DFS trees are path-heavy (at most two tree
    // edges per vertex along the spine), so they spread edge usage evenly
    // across vertices — a BFS tree would be a star on dense graphs and
    // exhaust the root's links after one round. The root and the neighbor
    // scan offset rotate per tree to diversify shapes further.
    const int round = static_cast<int>(out.size());
    const int root = static_cast<int>((static_cast<unsigned>(round) * 2654435761u) % static_cast<unsigned>(n));
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::vector<int> stack{root};
    seen[static_cast<std::size_t>(root)] = 1;
    int covered = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      const auto& nbrs = g.neighbors(u);
      const int deg = static_cast<int>(nbrs.size());
      int next = -1;
      for (int i = 0; i < deg; ++i) {
        const int w = nbrs[static_cast<std::size_t>((i + round + u) % deg)];
        if (!seen[static_cast<std::size_t>(w)] && !used[static_cast<std::size_t>(g.edge_id(u, w))]) {
          next = w;
          break;
        }
      }
      if (next < 0) {
        stack.pop_back();
        continue;
      }
      seen[static_cast<std::size_t>(next)] = 1;
      parent[static_cast<std::size_t>(next)] = u;
      ++covered;
      stack.push_back(next);
    }
    if (covered < n) break;  // residual graph no longer spans
    for (int v = 0; v < n; ++v) {
      if (v != root) used[static_cast<std::size_t>(g.edge_id(v, parent[static_cast<std::size_t>(v)]))] = 1;
    }
    out.emplace_back(root, std::move(parent));
  }
  return out;
}

}  // namespace pfar::trees
