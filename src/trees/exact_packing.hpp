#pragma once

#include <vector>

#include "trees/spanning_tree.hpp"

namespace pfar::trees {

/// Exact maximum edge-disjoint spanning-tree packing (the Tutte /
/// Nash-Williams number), computed by matroid-union augmentation over k
/// graphic matroids (Roskind-Tarjan style): edges are inserted into k
/// forests, and when an edge is spanned everywhere an augmenting sequence
/// of forest swaps is searched breadth-first. k spanning trees exist iff
/// the k forests can absorb k(N-1) edges.
///
/// This gives an *independent* verification of the paper's Section 7.3
/// result: the exact packing number of ER_q equals floor((q+1)/2), the
/// same count the Hamiltonian construction achieves — and it upgrades the
/// generic-topology comparisons from the greedy heuristic to ground truth.
///
/// Returns the packed spanning trees (rooted at vertex 0). O(k E (E + N))
/// worst case; intended for graphs up to a few thousand edges.
std::vector<SpanningTree> exact_tree_packing(const graph::Graph& g);

/// True iff g contains k edge-disjoint spanning trees.
bool has_k_disjoint_spanning_trees(const graph::Graph& g, int k);

}  // namespace pfar::trees
