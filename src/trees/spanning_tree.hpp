#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pfar::trees {

/// A rooted spanning tree embedded in a network graph, stored as a parent
/// vector. This is the unit the paper's whole optimization problem is
/// phrased in (Section 3): an Allreduce instance reduces up the tree and
/// broadcasts back down it.
///
/// Child lists live in one flat CSR array (offsets + children), so
/// construction does O(1) allocations instead of one vector per vertex —
/// plan construction builds thousands of trees for large radices.
class SpanningTree {
 public:
  /// parent[v] = parent vertex, -1 exactly at the root.
  SpanningTree(int root, std::vector<int> parent);

  int root() const { return root_; }
  int num_vertices() const { return static_cast<int>(parent_.size()); }
  int parent(int v) const { return parent_[static_cast<std::size_t>(v)]; }
  const std::vector<int>& parents() const { return parent_; }
  graph::IntSpan children(int v) const {
    return graph::IntSpan(children_.data() + child_offsets_[static_cast<std::size_t>(v)],
                          children_.data() + child_offsets_[static_cast<std::size_t>(v + 1)]);
  }

  /// Distance of v from the root (levels computed once at construction).
  int level(int v) const { return level_[static_cast<std::size_t>(v)]; }
  /// Tree depth = max level (the paper's latency proxy).
  int depth() const { return depth_; }

  /// The n-1 tree edges as normalized graph edges.
  std::vector<graph::Edge> edges() const;

  /// True iff every tree edge exists in g, the tree spans all of g's
  /// vertices and is connected/acyclic (Theorem 7.4-style validation).
  bool is_spanning_tree_of(const graph::Graph& g) const;

 private:
  int root_;
  int depth_ = 0;
  std::vector<int> parent_;
  std::vector<int> child_offsets_;  // n+1 row offsets into children_
  std::vector<int> children_;       // n-1 entries, grouped by parent
  std::vector<int> level_;
};

/// Congestion per graph edge id: the number of trees containing that edge
/// (Section 5.1). Edges absent from every tree get 0.
std::vector<int> edge_congestion(const graph::Graph& g,
                                 const std::vector<SpanningTree>& trees);

/// Worst-case congestion over all links.
int max_congestion(const graph::Graph& g,
                   const std::vector<SpanningTree>& trees);

/// True iff all trees are pairwise edge-disjoint (congestion <= 1).
bool edge_disjoint(const graph::Graph& g,
                   const std::vector<SpanningTree>& trees);

/// Lemma 7.8 property: for every physical link shared by exactly two
/// trees, the reduction traffic flows in opposite directions (the edge is
/// oriented towards the root differently in the two trees). Returns true
/// if the property holds for every shared link, and also requires
/// congestion <= 2.
bool opposite_reduction_flows(const graph::Graph& g,
                              const std::vector<SpanningTree>& trees);

}  // namespace pfar::trees
