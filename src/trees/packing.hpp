#pragma once

#include <vector>

#include "trees/spanning_tree.hpp"

namespace pfar::trees {

/// Greedy edge-disjoint spanning-tree packing: repeatedly extracts a BFS
/// spanning tree from the remaining edges until none exists. Returns the
/// trees found (each pairwise edge-disjoint with the others).
///
/// This is a heuristic lower bound on the packing number (the exact value
/// is given by Nash-Williams/Tutte and needs matroid union); it is used
/// by the topology-comparison benches to show how many concurrent
/// Allreduce trees generic topologies support, contrasted with PolarFly's
/// *constructive, provably optimal* Hamiltonian set. On the dense regular
/// topologies compared it typically attains floor(E/(N-1)) or comes
/// within one tree of it.
std::vector<SpanningTree> greedy_tree_packing(const graph::Graph& g,
                                              int max_trees = -1);

}  // namespace pfar::trees
