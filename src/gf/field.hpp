#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace pfar::gf {

/// An element of a finite field F_q, q = p^a, encoded as an integer in
/// [0, q): the base-p digit expansion of the element's coordinate vector
/// over F_p. Digit i is the coefficient of x^i in the polynomial
/// representative, so 0 is the field zero and 1 the field one for every q.
using Elem = int;

/// Finite field F_q for a prime power q = p^a (2 <= q <= 4096).
///
/// For a >= 2 the field is realized as F_p[x] / (f) where f is the
/// lexicographically smallest monic degree-a polynomial over F_p whose root
/// x is a *primitive* element (generator of F_q^*); such f is automatically
/// irreducible. Arithmetic is table-based (q x q add/mul tables plus
/// exp/log tables), so every operation is O(1).
///
/// This is the substrate for both ER_q constructions in the paper (Section
/// 6): the projective-geometry construction works directly over F_q, and
/// the Singer construction needs the cubic extension F_{q^3} built on top
/// of this class (see CubicExtension).
class Field {
 public:
  explicit Field(int q);

  int q() const { return q_; }
  int p() const { return p_; }
  /// Extension degree a (q = p^a).
  int degree() const { return a_; }

  Elem zero() const { return 0; }
  Elem one() const { return 1; }

  Elem add(Elem x, Elem y) const { return add_[static_cast<std::size_t>(idx(x, y))]; }
  Elem sub(Elem x, Elem y) const { return add_[static_cast<std::size_t>(idx(x, neg_[static_cast<std::size_t>(y)]))]; }
  Elem neg(Elem x) const { return neg_[static_cast<std::size_t>(x)]; }
  Elem mul(Elem x, Elem y) const { return mul_[static_cast<std::size_t>(idx(x, y))]; }
  /// Multiplicative inverse; x must be non-zero.
  Elem inv(Elem x) const;
  Elem div(Elem x, Elem y) const { return mul(x, inv(y)); }
  Elem pow(Elem x, long long e) const;

  /// A fixed generator g of the multiplicative group F_q^*.
  Elem generator() const { return exp_[1]; }
  /// Discrete log base generator(): exp(log(x)) == x for x != 0.
  int log(Elem x) const;
  /// g^e for any integer e (reduced mod q-1).
  Elem exp(long long e) const;

  /// Monic modulus polynomial f used for the extension, as coefficient list
  /// c_0..c_a (c_a == 1). Empty when q is prime (a == 1).
  const std::vector<int>& modulus() const { return modulus_; }

  /// Digit i (coefficient of x^i over F_p) of element x.
  int digit(Elem x, int i) const;

  bool is_valid(Elem x) const { return x >= 0 && x < q_; }

 private:
  int idx(Elem x, Elem y) const { return x * q_ + y; }

  int q_ = 0, p_ = 0, a_ = 0;
  std::vector<Elem> add_;   // q*q
  std::vector<Elem> mul_;   // q*q
  std::vector<Elem> neg_;   // q
  std::vector<Elem> inv_;   // q (inv_[0] unused)
  std::vector<Elem> exp_;   // q-1 entries: exp_[i] = g^i
  std::vector<int> log_;    // q entries: log_[0] unused
  std::vector<int> modulus_;
};

/// Process-wide memoized field table, keyed by q: repeated constructions in
/// benches and sweeps reuse one immutable Field instead of re-running the
/// primitive-root / primitive-polynomial searches and table builds per
/// instance. Thread-safe. Fields with small tables (q <= 1024) are cached
/// for the process lifetime; larger ones are held weakly and rebuilt only
/// after every user has released them.
std::shared_ptr<const Field> shared_field(int q);

}  // namespace pfar::gf
