#pragma once

#include <array>
#include <cstdint>

#include "gf/field.hpp"

namespace pfar::gf {

/// The cubic extension F_{q^3} = F_q[x] / (g), where g is the
/// lexicographically smallest monic degree-3 polynomial over F_q whose root
/// zeta = x is primitive (generates F_{q^3}^*). Primitivity implies
/// irreducibility, so this matches the paper's Section 6.2 construction
/// recipe ("degree-3 primitive polynomial f(x) over F_q with root zeta"),
/// with the lexicographic tie-break the authors state they used.
///
/// Elements are coefficient triples (c2, c1, c0) over F_q representing
/// c2*zeta^2 + c1*zeta + c0. The class exposes a streaming iteration over
/// the powers zeta^l for l in [0, q^3 - 2], which is all the Singer
/// difference-set construction needs.
class CubicExtension {
 public:
  explicit CubicExtension(const Field& base);

  const Field& base() const { return *base_; }

  /// q^3 - 1, the multiplicative order of zeta.
  long long order() const { return order_; }

  /// Low coefficients (g0, g1, g2) of the monic modulus
  /// g(x) = x^3 + g2 x^2 + g1 x + g0.
  std::array<Elem, 3> modulus() const { return {g0_, g1_, g2_}; }

  /// Coefficient triple of zeta^l stepped in-place: given (c2, c1, c0) for
  /// zeta^l, overwrites it with the triple for zeta^{l+1}.
  void step(Elem& c2, Elem& c1, Elem& c0) const {
    const Field& f = *base_;
    // zeta * (c2 z^2 + c1 z + c0) = c2 z^3 + c1 z^2 + c0 z, and
    // z^3 = -(g2 z^2 + g1 z + g0).
    const Elem carry = c2;
    c2 = f.sub(c1, f.mul(carry, g2_));
    c1 = f.sub(c0, f.mul(carry, g1_));
    c0 = f.neg(f.mul(carry, g0_));
  }

  /// Calls visitor(l, c2, c1, c0) for every power zeta^l, l in [0, order).
  template <typename Visitor>
  void for_each_power(Visitor&& visit) const {
    Elem c2 = 0, c1 = 0, c0 = 1;  // zeta^0 == 1
    for (long long l = 0; l < order_; ++l) {
      visit(l, c2, c1, c0);
      step(c2, c1, c0);
    }
  }

 private:
  const Field* base_;
  Elem g0_ = 0, g1_ = 0, g2_ = 0;
  long long order_ = 0;
};

}  // namespace pfar::gf
