#include "gf/field.hpp"

#include <map>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/thread_annotations.hpp"

namespace pfar::gf {
namespace {

// Digit-vector helpers over F_p used only during construction.
using Digits = std::vector<int>;

Digits to_digits(int value, int p, int len) {
  Digits d(static_cast<std::size_t>(len), 0);
  for (int i = 0; i < len; ++i) {
    d[static_cast<std::size_t>(i)] = value % p;
    value /= p;
  }
  return d;
}

int from_digits(const Digits& d, int p) {
  int value = 0;
  for (int i = static_cast<int>(d.size()) - 1; i >= 0; --i) {
    value = value * p + d[static_cast<std::size_t>(i)];
  }
  return value;
}

// Multiplies the degree-(a-1) element `d` by x and reduces modulo the monic
// polynomial with low coefficients `mod` (mod has a entries c_0..c_{a-1};
// the leading coefficient c_a == 1 is implicit).
Digits mul_by_x_mod(const Digits& d, const Digits& mod, int p) {
  const int a = static_cast<int>(d.size());
  Digits out(static_cast<std::size_t>(a), 0);
  const int carry = d[static_cast<std::size_t>(a - 1)];  // coefficient that overflows into x^a
  for (int i = a - 1; i >= 1; --i) out[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i - 1)];
  out[0] = 0;
  if (carry != 0) {
    // x^a == -mod (mod f), so subtract carry * mod.
    for (int i = 0; i < a; ++i) {
      out[static_cast<std::size_t>(i)] = (out[static_cast<std::size_t>(i)] - carry * mod[static_cast<std::size_t>(i)]) % p;
      if (out[static_cast<std::size_t>(i)] < 0) out[static_cast<std::size_t>(i)] += p;
    }
  }
  return out;
}

// Order of x in (F_p[x]/f)^*, bounded by `bound`; returns 0 if x never
// returns to 1 within `bound` steps (i.e. x is not a unit or order > bound).
long long order_of_x(const Digits& mod, int p, long long bound) {
  const int a = static_cast<int>(mod.size());
  Digits cur(static_cast<std::size_t>(a), 0);
  if (a == 1) {
    // Degenerate: handled by the prime-field path; not used.
    return 0;
  }
  cur[1] = 1;  // the element x (== x^1)
  Digits one(static_cast<std::size_t>(a), 0);
  one[0] = 1;
  long long k = 1;  // invariant: cur == x^k
  while (cur != one) {
    if (k >= bound) return 0;
    cur = mul_by_x_mod(cur, mod, p);
    ++k;
  }
  return k;
}

}  // namespace

Field::Field(int q) {
  int p = 0, a = 0;
  if (q < 2 || q > 4096 || !util::is_prime_power(q, &p, &a)) {
    throw std::invalid_argument("Field: q must be a prime power in [2, 4096]");
  }
  q_ = q;
  p_ = p;
  a_ = a;

  neg_.resize(static_cast<std::size_t>(q_));
  inv_.assign(static_cast<std::size_t>(q_), 0);
  add_.resize(static_cast<std::size_t>(q_) * static_cast<std::size_t>(q_));
  mul_.resize(static_cast<std::size_t>(q_) * static_cast<std::size_t>(q_));
  exp_.resize(static_cast<std::size_t>(q_ - 1));
  log_.assign(static_cast<std::size_t>(q_), -1);

  // Addition is digit-wise mod p regardless of the modulus polynomial.
  for (Elem x = 0; x < q_; ++x) {
    for (Elem y = 0; y < q_; ++y) {
      int value = 0;
      int xv = x, yv = y, scale = 1;
      for (int i = 0; i < a_; ++i) {
        value += ((xv % p_) + (yv % p_)) % p_ * scale;
        xv /= p_;
        yv /= p_;
        scale *= p_;
      }
      add_[static_cast<std::size_t>(idx(x, y))] = value;
    }
  }
  for (Elem x = 0; x < q_; ++x) {
    int value = 0;
    int xv = x, scale = 1;
    for (int i = 0; i < a_; ++i) {
      value += ((p_ - (xv % p_)) % p_) * scale;
      xv /= p_;
      scale *= p_;
    }
    neg_[static_cast<std::size_t>(x)] = value;
  }

  if (a_ == 1) {
    // Prime field: pick the smallest primitive root as generator.
    int g = 0;
    for (int cand = 1; cand < p_ && g == 0; ++cand) {
      long long ord = 1;
      long long cur = cand;
      while (cur != 1) {
        cur = (cur * cand) % p_;
        ++ord;
        if (ord > p_) break;
      }
      if (ord == p_ - 1) g = cand;
    }
    if (g == 0 && p_ == 2) g = 1;
    if (g == 0) throw std::logic_error("Field: no primitive root found");
    long long cur = 1;
    for (int i = 0; i < q_ - 1; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<Elem>(cur);
      log_[static_cast<std::size_t>(cur)] = i;
      cur = (cur * g) % p_;
    }
    for (Elem x = 0; x < q_; ++x) {
      for (Elem y = 0; y < q_; ++y) {
        mul_[static_cast<std::size_t>(idx(x, y))] = static_cast<Elem>((1LL * x * y) % p_);
      }
    }
  } else {
    // Extension field: find the lexicographically smallest monic degree-a
    // polynomial f over F_p whose root x is primitive. Candidates are
    // ordered by their coefficient encoding (c_{a-1}, ..., c_0).
    Digits mod;
    bool found = false;
    for (int enc = 1; enc < q_ && !found; ++enc) {
      Digits cand = to_digits(enc, p_, a_);
      if (cand[0] == 0) continue;  // x | f => x not a unit
      if (order_of_x(cand, p_, q_ - 1) == q_ - 1) {
        mod = cand;
        found = true;
      }
    }
    if (!found) throw std::logic_error("Field: no primitive polynomial found");
    modulus_ = mod;
    modulus_.push_back(1);  // record the monic leading coefficient

    // exp table: successive powers of the root x.
    Digits cur(static_cast<std::size_t>(a_), 0);
    cur[0] = 1;  // x^0
    for (int i = 0; i < q_ - 1; ++i) {
      const Elem e = static_cast<Elem>(from_digits(cur, p_));
      exp_[static_cast<std::size_t>(i)] = e;
      log_[static_cast<std::size_t>(e)] = i;
      cur = mul_by_x_mod(cur, mod, p_);
    }
    // Multiplication via logs.
    for (Elem x = 0; x < q_; ++x) {
      for (Elem y = 0; y < q_; ++y) {
        if (x == 0 || y == 0) {
          mul_[static_cast<std::size_t>(idx(x, y))] = 0;
        } else {
          mul_[static_cast<std::size_t>(idx(x, y))] = exp_[static_cast<std::size_t>(
              (log_[static_cast<std::size_t>(x)] +
               log_[static_cast<std::size_t>(y)]) %
              (q_ - 1))];
        }
      }
    }
  }

  for (Elem x = 1; x < q_; ++x) {
    inv_[static_cast<std::size_t>(x)] = exp_[static_cast<std::size_t>(
        (q_ - 1 - log_[static_cast<std::size_t>(x)]) % (q_ - 1))];
  }

  // Every non-zero element must have landed in the exp/log bijection, and 1
  // must be the multiplicative identity we claim it is.
  PFAR_ENSURE(log_[1] == 0, q_, p_, a_);
  for (Elem x = 1; x < q_; ++x) {
    PFAR_ENSURE(log_[static_cast<std::size_t>(x)] >= 0, x, q_);
  }

#if PFAR_AUDIT_ENABLED
  // Field-axiom sweep (audit builds only; O(q^2) table reads): identities,
  // inverses, commutativity and sampled distributivity.
  for (Elem x = 0; x < q_; ++x) {
    PFAR_INVARIANT(add(x, zero()) == x, x, q_);
    PFAR_INVARIANT(mul(x, one()) == x, x, q_);
    PFAR_INVARIANT(add(x, neg(x)) == zero(), x, q_);
    if (x != 0) PFAR_INVARIANT(mul(x, inv_[static_cast<std::size_t>(x)]) == one(), x, q_);
    for (Elem y = 0; y < q_; ++y) {
      PFAR_INVARIANT(add(x, y) == add(y, x), x, y, q_);
      PFAR_INVARIANT(mul(x, y) == mul(y, x), x, y, q_);
    }
    // Distributivity sampled along one row per x to keep the sweep O(q^2).
    const Elem y = static_cast<Elem>((x * 7 + 3) % q_);
    const Elem z = static_cast<Elem>((x * 5 + 1) % q_);
    PFAR_INVARIANT(mul(x, add(y, z)) == add(mul(x, y), mul(x, z)), x, y, z);
  }
#endif
}

Elem Field::inv(Elem x) const {
  if (x == 0) throw std::domain_error("Field::inv: zero has no inverse");
  return inv_[static_cast<std::size_t>(x)];
}

Elem Field::pow(Elem x, long long e) const {
  if (x == 0) {
    if (e == 0) return 1;
    if (e < 0) throw std::domain_error("Field::pow: zero to negative power");
    return 0;
  }
  const long long m = q_ - 1;
  long long r = (static_cast<long long>(log_[static_cast<std::size_t>(x)]) * (e % m)) % m;
  if (r < 0) r += m;
  return exp_[static_cast<std::size_t>(r)];
}

int Field::log(Elem x) const {
  if (x == 0) throw std::domain_error("Field::log: log of zero");
  return log_[static_cast<std::size_t>(x)];
}

Elem Field::exp(long long e) const {
  const long long m = q_ - 1;
  long long r = e % m;
  if (r < 0) r += m;
  return exp_[static_cast<std::size_t>(r)];
}

int Field::digit(Elem x, int i) const {
  for (int k = 0; k < i; ++k) x /= p_;
  return x % p_;
}

namespace {

// Process-wide memo behind shared_field. Strong entries pin small fields
// (tables are O(q^2): ~8 MiB at the q = 1024 cutoff); weak entries let
// the largest tables be reclaimed. A named struct (rather than three
// function-local statics) so the maps can carry PFAR_GUARDED_BY and the
// thread-safety analysis proves every access holds the mutex.
struct FieldCache {
  util::Mutex mu;
  std::map<int, std::shared_ptr<const Field>> strong PFAR_GUARDED_BY(mu);
  std::map<int, std::weak_ptr<const Field>> weak PFAR_GUARDED_BY(mu);
};

}  // namespace

std::shared_ptr<const Field> shared_field(int q) {
  static FieldCache cache;
  constexpr int kStrongCacheMaxQ = 1024;

  util::MutexLock lock(cache.mu);
  if (q <= kStrongCacheMaxQ) {
    auto& slot = cache.strong[q];
    if (!slot) slot = std::make_shared<const Field>(q);
    return slot;
  }
  auto& slot = cache.weak[q];
  if (auto alive = slot.lock()) return alive;
  auto fresh = std::make_shared<const Field>(q);
  slot = fresh;
  return fresh;
}

}  // namespace pfar::gf
