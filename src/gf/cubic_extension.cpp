#include "gf/cubic_extension.hpp"

#include <stdexcept>

namespace pfar::gf {
namespace {

// Order of zeta = x in F_q[x]/(x^3 + g2 x^2 + g1 x + g0), capped at `bound`.
// Returns 0 if zeta does not return to 1 within `bound` steps.
long long order_of_zeta(const Field& f, Elem g0, Elem g1, Elem g2,
                        long long bound) {
  Elem c2 = 0, c1 = 1, c0 = 0;  // zeta^1
  long long k = 1;
  while (!(c2 == 0 && c1 == 0 && c0 == 1)) {
    if (k >= bound) return 0;
    const Elem carry = c2;
    c2 = f.sub(c1, f.mul(carry, g2));
    c1 = f.sub(c0, f.mul(carry, g1));
    c0 = f.neg(f.mul(carry, g0));
    ++k;
  }
  return k;
}

}  // namespace

CubicExtension::CubicExtension(const Field& base) : base_(&base) {
  const int q = base.q();
  order_ = static_cast<long long>(q) * q * q - 1;

  // Lexicographic order over (g2, g1, g0): smaller leading coefficients
  // first, matching the coefficient-tuple ordering of the paper's
  // "lexicographically smallest" polynomial choice.
  bool found = false;
  for (Elem g2 = 0; g2 < q && !found; ++g2) {
    for (Elem g1 = 0; g1 < q && !found; ++g1) {
      for (Elem g0 = 1; g0 < q && !found; ++g0) {  // g0 != 0 or x | g
        // A monic cubic is irreducible iff it has no roots in F_q; check
        // roots first since it is far cheaper than the order test.
        bool has_root = false;
        for (Elem r = 0; r < q && !has_root; ++r) {
          // g(r) = r^3 + g2 r^2 + g1 r + g0
          const Elem r2 = base.mul(r, r);
          const Elem r3 = base.mul(r2, r);
          Elem val = base.add(r3, base.mul(g2, r2));
          val = base.add(val, base.mul(g1, r));
          val = base.add(val, g0);
          has_root = (val == 0);
        }
        if (has_root) continue;
        if (order_of_zeta(base, g0, g1, g2, order_) == order_) {
          g0_ = g0;
          g1_ = g1;
          g2_ = g2;
          found = true;
        }
      }
    }
  }
  if (!found) {
    throw std::logic_error("CubicExtension: no primitive cubic found");
  }
}

}  // namespace pfar::gf
