#pragma once

#include <vector>

#include "collectives/innetwork.hpp"
#include "graph/graph.hpp"
#include "model/congestion_model.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::obsv {
class Metrics;
}

namespace pfar::adapt {

/// One directed link's congestion measurement over a probe window.
struct LinkCongestion {
  /// Collective flits the window moved on the link (payload + headers).
  long long flits = 0;
  /// Background-traffic flits drained on the link.
  long long bg_flits = 0;
  /// Peak receiver-buffer occupancy (packets) on the link.
  long long queue_hwm = 0;
  /// (flits + bg_flits) / (link_bandwidth * window cycles): total
  /// occupancy of the link's capacity, in [0, ~1].
  double busy = 0.0;
  /// bg_flits / (link_bandwidth * window cycles): the share of capacity
  /// background traffic claims — the part the collective cannot use, and
  /// the controller's primary congestion signal.
  double bg_busy = 0.0;
};

/// Per-directed-link congestion over one probe window, indexed by the
/// engines' directed-link id `2 * edge_id + (src > dst)`. Build it from a
/// SimResult (works in PFAR_TRACE=off builds — the fields are maintained
/// unconditionally) or from a Recorder's metrics registry via the obsv
/// probe-window counters (docs/congestion_adaptation.md).
struct CongestionMap {
  long long cycles = 0;
  int link_bandwidth = 1;
  std::vector<LinkCongestion> dlinks;  // 2 * num_edges entries

  static CongestionMap from_sim_result(const graph::Graph& topology,
                                       const simnet::SimResult& result,
                                       int link_bandwidth);
  static CongestionMap from_metrics(const graph::Graph& topology,
                                    const obsv::Metrics& metrics,
                                    int link_bandwidth);

  /// Background occupancy of undirected edge e: the max over its two
  /// directions (the collective needs both — reduce up, broadcast down).
  double edge_bg_busy(int edge_id) const;
  /// Peak queue HWM of undirected edge e over its two directions.
  long long edge_queue_hwm(int edge_id) const;
};

/// Controller knobs. The defaults are what the congested-allreduce bench
/// regresses against; see docs/congestion_adaptation.md for how each was
/// picked.
struct ControllerConfig {
  /// A link whose background occupancy exceeds this fraction of capacity
  /// is *hot*: trees are re-planned away from it when possible.
  double hot_threshold = 0.55;
  /// Floor of the per-edge capacity scale fed to the capacitated
  /// Algorithm 1, so a fully saturated link still carries a sliver of
  /// weight instead of dividing by zero.
  double min_capacity_scale = 0.05;
  /// Master switch for the re-planning stage; re-weighting always runs.
  bool replan = true;
  /// Elements of the probe collective run_adaptive_allreduce executes to
  /// measure the network before committing the real vector.
  long long probe_elements = 512;
};

/// The controller's output: the (possibly re-planned) tree set, the
/// congestion-aware Algorithm 1 bandwidths to split by, and what changed.
struct AdaptedPlan {
  std::vector<trees::SpanningTree> trees;
  /// Capacitated Algorithm 1 over `trees` with `capacity_scale`.
  model::TreeBandwidths bandwidths;
  /// Per undirected edge id: fraction of the link's bandwidth left for
  /// the collective, in [min_capacity_scale, 1].
  std::vector<double> capacity_scale;
  /// The hot links the re-planner routed around (after relaxing the raw
  /// hot set until the residual topology stayed connected).
  std::vector<graph::Edge> hot_links;
  /// Indices of trees that were replaced; un-replannable hot trees stay
  /// and the re-weighting de-emphasizes them.
  std::vector<int> replanned;
};

/// Closes the control loop's planning half: derives per-edge capacity
/// scales from the congestion map, re-plans trees off hot links (reusing
/// the resilience machinery: core::remove_links connectivity checks,
/// greedy re-packing on the residual), and re-runs Algorithm 1 on the
/// capacitated network. With a quiet-network map this is the identity:
/// same trees, scales all 1.0, bandwidths bit-identical to
/// compute_tree_bandwidths_reference.
AdaptedPlan adapt_plan(const graph::Graph& topology,
                       const std::vector<trees::SpanningTree>& trees,
                       const CongestionMap& congestion,
                       const ControllerConfig& ctrl = {});

/// End-to-end outcome of one adaptive Allreduce.
struct AdaptiveResult {
  AdaptedPlan plan;
  /// The probe window's raw measurement.
  simnet::SimResult probe;
  CongestionMap congestion;
  /// The adapted run: re-planned trees, congestion-aware split.
  collectives::InNetworkResult adaptive;
  /// The static baseline (original trees, Theorem 5.1 split), executed
  /// under the same background traffic; only filled when requested.
  collectives::InNetworkResult static_run;
  bool compared = false;
};

/// The full control loop (docs/congestion_adaptation.md): run a short
/// probe collective through the live background traffic (serial, no
/// recorder — the probe must not perturb the caller's artifacts), read
/// the per-link measurements, adapt the plan, then run the m-element
/// collective on the adapted plan under `config`. With
/// `compare_static` the original static plan runs too, under identical
/// traffic, so callers (and the bench) can report the adaptation win.
AdaptiveResult run_adaptive_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees, long long m,
    const simnet::SimConfig& config, const ControllerConfig& ctrl = {},
    bool compare_static = false);

}  // namespace pfar::adapt
