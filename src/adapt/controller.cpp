#include "adapt/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/resilience.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "trees/packing.hpp"
#include "util/contracts.hpp"

namespace pfar::adapt {
namespace {

/// Occupancy of `flits` on a directed link of `bandwidth` over `cycles`.
double occupancy(long long flits, int bandwidth, long long cycles) {
  if (cycles <= 0) return 0.0;
  return static_cast<double>(flits) /
         (static_cast<double>(bandwidth) * static_cast<double>(cycles));
}

/// Builds the graph spanned by the edges of `topology` whose id is marked
/// available. Same vertex set, so any spanning tree of the result is a
/// spanning tree of `topology`.
graph::Graph subgraph(const graph::Graph& topology,
                      const std::vector<char>& avail) {
  graph::Graph g(topology.num_vertices());
  const auto& edges = topology.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (avail[e]) g.add_edge(edges[e].u, edges[e].v);
  }
  g.finalize();
  return g;
}

/// Runs the capacitated Algorithm 1 over the plan's final tree set and
/// capacity scales — the re-weighting half of the controller, shared by
/// every exit path of adapt_plan.
AdaptedPlan finalize_plan(AdaptedPlan plan, const graph::Graph& topology,
                          const CongestionMap& congestion) {
  plan.bandwidths = model::compute_tree_bandwidths_capacitated(
      topology, plan.trees, static_cast<double>(congestion.link_bandwidth),
      plan.capacity_scale);
  return plan;
}

}  // namespace

CongestionMap CongestionMap::from_sim_result(const graph::Graph& topology,
                                             const simnet::SimResult& result,
                                             int link_bandwidth) {
  PFAR_REQUIRE(link_bandwidth >= 1, link_bandwidth);
  const std::size_t num_dlinks =
      static_cast<std::size_t>(2 * topology.num_edges());
  PFAR_REQUIRE(result.link_flits.size() == num_dlinks,
               result.link_flits.size(), num_dlinks);
  CongestionMap map;
  map.cycles = result.cycles;
  map.link_bandwidth = link_bandwidth;
  map.dlinks.assign(num_dlinks, {});
  for (std::size_t d = 0; d < num_dlinks; ++d) {
    LinkCongestion& lc = map.dlinks[d];
    lc.flits = result.link_flits[d];
    if (d < result.link_bg_flits.size()) lc.bg_flits = result.link_bg_flits[d];
    if (d < result.link_queue_hwm.size()) {
      lc.queue_hwm = result.link_queue_hwm[d];
    }
    lc.busy = occupancy(lc.flits + lc.bg_flits, link_bandwidth, map.cycles);
    lc.bg_busy = occupancy(lc.bg_flits, link_bandwidth, map.cycles);
  }
  return map;
}

CongestionMap CongestionMap::from_metrics(const graph::Graph& topology,
                                          const obsv::Metrics& metrics,
                                          int link_bandwidth) {
  PFAR_REQUIRE(link_bandwidth >= 1, link_bandwidth);
  CongestionMap map;
  map.link_bandwidth = link_bandwidth;
  map.dlinks.assign(static_cast<std::size_t>(2 * topology.num_edges()), {});
  const obsv::LinkWindow window = obsv::extract_link_windows(metrics);
  map.cycles = window.cycles;
  for (const obsv::LinkWindowStats& s : window.links) {
    int u = -1, v = -1;
    if (std::sscanf(s.name.c_str(), "%d->%d", &u, &v) != 2) continue;
    const int e = topology.edge_id(u, v);
    PFAR_REQUIRE(e >= 0, u, v);  // probe window must match the topology
    const std::size_t d = static_cast<std::size_t>(2 * e + (u > v ? 1 : 0));
    LinkCongestion& lc = map.dlinks[d];
    lc.flits = s.flits;
    lc.bg_flits = s.bg_flits;
    lc.queue_hwm = s.queue_hwm;
    lc.busy = occupancy(lc.flits + lc.bg_flits, link_bandwidth, map.cycles);
    lc.bg_busy = occupancy(lc.bg_flits, link_bandwidth, map.cycles);
  }
  return map;
}

double CongestionMap::edge_bg_busy(int edge_id) const {
  const std::size_t d = static_cast<std::size_t>(2 * edge_id);
  PFAR_REQUIRE(d + 1 < dlinks.size(), edge_id, dlinks.size());
  return std::max(dlinks[d].bg_busy, dlinks[d + 1].bg_busy);
}

long long CongestionMap::edge_queue_hwm(int edge_id) const {
  const std::size_t d = static_cast<std::size_t>(2 * edge_id);
  PFAR_REQUIRE(d + 1 < dlinks.size(), edge_id, dlinks.size());
  return std::max(dlinks[d].queue_hwm, dlinks[d + 1].queue_hwm);
}

AdaptedPlan adapt_plan(const graph::Graph& topology,
                       const std::vector<trees::SpanningTree>& trees,
                       const CongestionMap& congestion,
                       const ControllerConfig& ctrl) {
  PFAR_REQUIRE(!trees.empty(), trees.size());
  PFAR_REQUIRE(ctrl.hot_threshold > 0.0 && ctrl.hot_threshold < 1.0,
               ctrl.hot_threshold);
  PFAR_REQUIRE(ctrl.min_capacity_scale > 0.0 && ctrl.min_capacity_scale <= 1.0,
               ctrl.min_capacity_scale);
  const int num_edges = topology.num_edges();
  PFAR_REQUIRE(congestion.dlinks.size() ==
                   static_cast<std::size_t>(2 * num_edges),
               congestion.dlinks.size(), num_edges);

  AdaptedPlan plan;
  plan.trees = trees;

  // Re-weighting input: what is left of each edge once background traffic
  // took its share. A quiet edge scales by exactly 1.0, so a quiet map
  // reproduces the uncapacitated Algorithm 1 bit-for-bit.
  plan.capacity_scale.assign(static_cast<std::size_t>(num_edges), 1.0);
  for (int e = 0; e < num_edges; ++e) {
    const double bg = congestion.edge_bg_busy(e);
    if (bg > 0.0) {
      plan.capacity_scale[static_cast<std::size_t>(e)] =
          std::max(1.0 - bg, ctrl.min_capacity_scale);
    }
  }

  // Hot set: edges background traffic dominates. Sorted hottest-first
  // (queue pressure breaks ties) and relaxed from the coolest end until
  // removing the set keeps the topology connected — the same invariant
  // the resilience replanner enforces for failed links.
  std::vector<int> hot_ids;
  for (int e = 0; e < num_edges; ++e) {
    if (congestion.edge_bg_busy(e) > ctrl.hot_threshold) hot_ids.push_back(e);
  }
  std::stable_sort(hot_ids.begin(), hot_ids.end(), [&](int a, int b) {
    const double ba = congestion.edge_bg_busy(a);
    const double bb = congestion.edge_bg_busy(b);
    if (ba != bb) return ba > bb;
    return congestion.edge_queue_hwm(a) > congestion.edge_queue_hwm(b);
  });
  if (!ctrl.replan || hot_ids.empty()) return finalize_plan(plan, topology, congestion);

  std::size_t keep = hot_ids.size();
  while (keep > 0) {
    std::vector<graph::Edge> candidate;
    candidate.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      candidate.push_back(
          topology.edges()[static_cast<std::size_t>(hot_ids[i])]);
    }
    try {
      core::remove_links(topology, candidate);  // connectivity check
      plan.hot_links = std::move(candidate);
      break;
    } catch (const std::runtime_error&) {
      --keep;  // residual disconnected: tolerate the least-hot link
    }
  }
  if (plan.hot_links.empty()) {
    return finalize_plan(plan, topology, congestion);
  }

  std::vector<char> is_hot(static_cast<std::size_t>(num_edges), 0);
  for (std::size_t i = 0; i < keep; ++i) {
    is_hot[static_cast<std::size_t>(hot_ids[i])] = 1;
  }
  const auto tree_is_hot = [&](const trees::SpanningTree& t) {
    for (const auto& e : t.edges()) {
      if (is_hot[static_cast<std::size_t>(topology.edge_id(e.u, e.v))]) {
        return true;
      }
    }
    return false;
  };

  if (trees::edge_disjoint(topology, trees)) {
    // Disjoint plans stay disjoint: replacements may only use edges no
    // current tree occupies. Each hot tree first releases its own edges
    // (its replacement may reuse the cool ones), then either a packed
    // replacement claims its edges or the original re-reserves them.
    std::vector<char> avail(static_cast<std::size_t>(num_edges), 1);
    for (int e = 0; e < num_edges; ++e) {
      if (is_hot[static_cast<std::size_t>(e)]) avail[static_cast<std::size_t>(e)] = 0;
    }
    for (const auto& t : trees) {
      for (const auto& e : t.edges()) {
        avail[static_cast<std::size_t>(topology.edge_id(e.u, e.v))] = 0;
      }
    }
    for (std::size_t t = 0; t < plan.trees.size(); ++t) {
      if (!tree_is_hot(plan.trees[t])) continue;
      const auto old_edges = plan.trees[t].edges();
      for (const auto& e : old_edges) {
        const int id = topology.edge_id(e.u, e.v);
        if (!is_hot[static_cast<std::size_t>(id)]) {
          avail[static_cast<std::size_t>(id)] = 1;
        }
      }
      auto packed = trees::greedy_tree_packing(subgraph(topology, avail),
                                               /*max_trees=*/1);
      if (!packed.empty()) {
        plan.trees[t] = std::move(packed.front());
        plan.replanned.push_back(static_cast<int>(t));
        for (const auto& e : plan.trees[t].edges()) {
          avail[static_cast<std::size_t>(topology.edge_id(e.u, e.v))] = 0;
        }
      } else {
        for (const auto& e : old_edges) {  // keep: re-reserve its edges
          avail[static_cast<std::size_t>(topology.edge_id(e.u, e.v))] = 0;
        }
      }
    }
  } else {
    // Shared-edge plans (e.g. the paper's congestion-2 low-depth trees):
    // rebuild each hot tree as a BFS tree of the hot-free residual at its
    // original root. The relaxation above guarantees the residual is
    // connected, so every rebuild succeeds.
    std::vector<char> avail(static_cast<std::size_t>(num_edges), 1);
    for (int e = 0; e < num_edges; ++e) {
      if (is_hot[static_cast<std::size_t>(e)]) avail[static_cast<std::size_t>(e)] = 0;
    }
    const graph::Graph residual = subgraph(topology, avail);
    for (std::size_t t = 0; t < plan.trees.size(); ++t) {
      if (!tree_is_hot(plan.trees[t])) continue;
      plan.trees[t] =
          collectives::bfs_tree(residual, plan.trees[t].root());
      plan.replanned.push_back(static_cast<int>(t));
    }
  }

  // Commit the replan only if the capacitated model predicts it beats the
  // reweighted original plan. Routing around a hot region can be a net
  // loss — e.g. a saturated hotspot node forces every rebuilt tree
  // through its one tolerated cool link, trading q moderately-slow trees
  // for q trees serialized behind a single link — and the controller must
  // never adapt into a predictably worse plan.
  if (!plan.replanned.empty()) {
    const model::TreeBandwidths original_bw =
        model::compute_tree_bandwidths_capacitated(
            topology, trees, static_cast<double>(congestion.link_bandwidth),
            plan.capacity_scale);
    plan.bandwidths = model::compute_tree_bandwidths_capacitated(
        topology, plan.trees, static_cast<double>(congestion.link_bandwidth),
        plan.capacity_scale);
    if (plan.bandwidths.aggregate <= original_bw.aggregate) {
      plan.trees = trees;
      plan.replanned.clear();
      plan.bandwidths = original_bw;
    }
    PFAR_ENSURE(plan.bandwidths.aggregate >= original_bw.aggregate,
                plan.bandwidths.aggregate, original_bw.aggregate);
    return plan;
  }

  return finalize_plan(plan, topology, congestion);
}

AdaptiveResult run_adaptive_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees, long long m,
    const simnet::SimConfig& config, const ControllerConfig& ctrl,
    bool compare_static) {
  PFAR_REQUIRE(m >= 0, m);
  PFAR_REQUIRE(ctrl.probe_elements > 0, ctrl.probe_elements);
  PFAR_REQUIRE(!trees.empty(), trees.size());

  AdaptiveResult out;

  // Probe: a short static collective through the live traffic, serial and
  // recorder-free so it neither races the caller's shards nor pollutes
  // the caller's artifacts.
  simnet::SimConfig probe_cfg = config;
  probe_cfg.shard_threads = 1;
  probe_cfg.recorder = nullptr;
  const model::TreeBandwidths quiet = model::compute_tree_bandwidths(
      topology, trees, static_cast<double>(config.link_bandwidth));
  simnet::AllreduceSimulator probe_sim(
      topology, collectives::to_embeddings(trees), probe_cfg);
  out.probe = probe_sim.run(model::optimal_split(ctrl.probe_elements, quiet));

  out.congestion = CongestionMap::from_sim_result(topology, out.probe,
                                                  config.link_bandwidth);
  out.plan = adapt_plan(topology, trees, out.congestion, ctrl);

  if constexpr (obsv::kTraceCompiled) {
    if (config.recorder != nullptr) {
      obsv::Recorder* rec = config.recorder;
      rec->metrics.add("adapt.probe_cycles", out.probe.cycles);
      rec->metrics.add("adapt.hot_links",
                       static_cast<long long>(out.plan.hot_links.size()));
      rec->metrics.add("adapt.replanned_trees",
                       static_cast<long long>(out.plan.replanned.size()));
      rec->trace.name_track(obsv::kTrackAdapt, "adapt");
      rec->trace.complete(0, out.probe.cycles,
                          rec->trace.intern("probe window"),
                          obsv::kTrackAdapt);
      rec->trace.instant(
          out.probe.cycles, rec->trace.intern("replan"), obsv::kTrackAdapt,
          {"hot_links", static_cast<long long>(out.plan.hot_links.size())},
          {"replanned",
           static_cast<long long>(out.plan.replanned.size())});
    }
  }

  out.adaptive = collectives::run_innetwork_allreduce_split(
      topology, out.plan.trees,
      model::optimal_split(m, out.plan.bandwidths), config);

  if (compare_static) {
    simnet::SimConfig static_cfg = config;
    static_cfg.recorder = nullptr;  // one run per single-writer Recorder
    out.static_run = collectives::run_innetwork_allreduce(
        topology, trees, m, static_cfg, collectives::SplitPolicy::kOptimal);
    out.compared = true;
  }
  return out;
}

}  // namespace pfar::adapt
