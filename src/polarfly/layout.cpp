#include "polarfly/layout.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::polarfly {

Layout build_layout(const PolarFly& pf, int starter_index) {
  if (pf.q() % 2 == 0) {
    throw std::invalid_argument(
        "build_layout: the published layout requires odd prime power q");
  }
  const auto& quadrics = pf.quadrics();
  if (starter_index < 0 || starter_index >= static_cast<int>(quadrics.size())) {
    throw std::out_of_range("build_layout: starter_index");
  }
  Layout layout;
  layout.starter_quadric = quadrics[static_cast<std::size_t>(starter_index)];
  layout.quadric_cluster = quadrics;
  layout.cluster_of.assign(static_cast<std::size_t>(pf.n()), -1);

  const graph::Graph& g = pf.graph();
  // Each neighbor v_i of the starter quadric seeds cluster C_i; C_i is v_i
  // plus all non-quadric neighbors of v_i (Algorithm 2).
  for (int center : g.neighbors(layout.starter_quadric)) {
    const int i = static_cast<int>(layout.centers.size());
    layout.centers.push_back(center);
    std::vector<int> cluster{center};
    layout.cluster_of[static_cast<std::size_t>(center)] = i;
    for (int u : g.neighbors(center)) {
      if (!pf.is_quadric(u)) {
        cluster.push_back(u);
        layout.cluster_of[static_cast<std::size_t>(u)] = i;
      }
    }
    layout.clusters.push_back(std::move(cluster));
  }

  // Corollary 7.3: each center has exactly two quadric neighbors, the
  // starter w and a unique non-starter w_i.
  layout.nonstarter_quadric.assign(layout.centers.size(), -1);
  for (std::size_t i = 0; i < layout.centers.size(); ++i) {
    for (int u : g.neighbors(layout.centers[i])) {
      if (pf.is_quadric(u) && u != layout.starter_quadric) {
        if (layout.nonstarter_quadric[i] != -1) {
          throw std::logic_error(
              "build_layout: center with >2 quadric neighbors");
        }
        layout.nonstarter_quadric[i] = u;
      }
    }
    if (layout.nonstarter_quadric[i] == -1) {
      throw std::logic_error("build_layout: center missing non-starter quadric");
    }
  }

  // Layout Properties 1-3: q clusters (one per starter neighbor), each of
  // size q (the center plus its q-1 non-quadric neighbors), and together
  // with the q+1 quadrics they partition all N = q^2+q+1 vertices.
  const int q = pf.q();
  PFAR_ENSURE(static_cast<int>(layout.clusters.size()) == q, q,
              layout.clusters.size());
  int covered = static_cast<int>(layout.quadric_cluster.size());
  for (const auto& cluster : layout.clusters) {
    PFAR_ENSURE(static_cast<int>(cluster.size()) == q, q, cluster.size());
    covered += static_cast<int>(cluster.size());
  }
  PFAR_ENSURE(covered == pf.n(), covered, pf.n(), q);

#if PFAR_AUDIT_ENABLED
  // Partition is genuine: every non-quadric lies in exactly the cluster
  // cluster_of says it does, and quadrics are in none.
  for (int v = 0; v < pf.n(); ++v) {
    const int c = layout.cluster_of[static_cast<std::size_t>(v)];
    if (pf.is_quadric(v)) {
      PFAR_INVARIANT(c == -1, v, c);
    } else {
      PFAR_INVARIANT(c >= 0 && c < q, v, c, q);
      const auto& cluster = layout.clusters[static_cast<std::size_t>(c)];
      PFAR_INVARIANT(
          std::find(cluster.begin(), cluster.end(), v) != cluster.end(), v,
          c);
    }
  }
#endif
  return layout;
}

int edges_within(const graph::Graph& g, const std::vector<int>& a) {
  int count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      if (g.has_edge(a[i], a[j])) ++count;
    }
  }
  return count;
}

int edges_between(const graph::Graph& g, const std::vector<int>& a,
                  const std::vector<int>& b) {
  int count = 0;
  for (int u : a) {
    for (int v : b) {
      if (g.has_edge(u, v)) ++count;
    }
  }
  return count;
}

}  // namespace pfar::polarfly
