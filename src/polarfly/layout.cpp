#include "polarfly/layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfar::polarfly {

Layout build_layout(const PolarFly& pf, int starter_index) {
  if (pf.q() % 2 == 0) {
    throw std::invalid_argument(
        "build_layout: the published layout requires odd prime power q");
  }
  const auto& quadrics = pf.quadrics();
  if (starter_index < 0 || starter_index >= static_cast<int>(quadrics.size())) {
    throw std::out_of_range("build_layout: starter_index");
  }
  Layout layout;
  layout.starter_quadric = quadrics[starter_index];
  layout.quadric_cluster = quadrics;
  layout.cluster_of.assign(pf.n(), -1);

  const graph::Graph& g = pf.graph();
  // Each neighbor v_i of the starter quadric seeds cluster C_i; C_i is v_i
  // plus all non-quadric neighbors of v_i (Algorithm 2).
  for (int center : g.neighbors(layout.starter_quadric)) {
    const int i = static_cast<int>(layout.centers.size());
    layout.centers.push_back(center);
    std::vector<int> cluster{center};
    layout.cluster_of[center] = i;
    for (int u : g.neighbors(center)) {
      if (!pf.is_quadric(u)) {
        cluster.push_back(u);
        layout.cluster_of[u] = i;
      }
    }
    layout.clusters.push_back(std::move(cluster));
  }

  // Corollary 7.3: each center has exactly two quadric neighbors, the
  // starter w and a unique non-starter w_i.
  layout.nonstarter_quadric.assign(layout.centers.size(), -1);
  for (std::size_t i = 0; i < layout.centers.size(); ++i) {
    for (int u : g.neighbors(layout.centers[i])) {
      if (pf.is_quadric(u) && u != layout.starter_quadric) {
        if (layout.nonstarter_quadric[i] != -1) {
          throw std::logic_error(
              "build_layout: center with >2 quadric neighbors");
        }
        layout.nonstarter_quadric[i] = u;
      }
    }
    if (layout.nonstarter_quadric[i] == -1) {
      throw std::logic_error("build_layout: center missing non-starter quadric");
    }
  }
  return layout;
}

int edges_within(const graph::Graph& g, const std::vector<int>& a) {
  int count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      if (g.has_edge(a[i], a[j])) ++count;
    }
  }
  return count;
}

int edges_between(const graph::Graph& g, const std::vector<int>& a,
                  const std::vector<int>& b) {
  int count = 0;
  for (int u : a) {
    for (int v : b) {
      if (g.has_edge(u, v)) ++count;
    }
  }
  return count;
}

}  // namespace pfar::polarfly
