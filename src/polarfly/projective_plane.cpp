#include "polarfly/projective_plane.hpp"

#include <algorithm>
#include <stdexcept>

namespace pfar::polarfly {
namespace {

// Left-normalized triple -> dense id, mirroring PolarFly's vertex map.
int id_of(const Point& pt, int q) {
  if (pt.x == 1) return pt.y * q + pt.z;
  if (pt.x == 0 && pt.y == 1) return q * q + pt.z;
  return q * q + q;  // [0,0,1]
}

}  // namespace

ProjectivePlane::ProjectivePlane(int q)
    : q_(q), n_(q * q + q + 1), field_(q) {
  points_.resize(static_cast<std::size_t>(n_));
  for (gf::Elem y = 0; y < q_; ++y) {
    for (gf::Elem z = 0; z < q_; ++z) points_[static_cast<std::size_t>(y * q_ + z)] = Point{1, y, z};
  }
  for (gf::Elem z = 0; z < q_; ++z) points_[static_cast<std::size_t>(q_ * q_ + z)] = Point{0, 1, z};
  points_[static_cast<std::size_t>(q_ * q_ + q_)] = Point{0, 0, 1};

  // Enumerate each line's points via the orthogonal-complement basis, the
  // same parametrization PolarFly uses for neighbors (but keeping the
  // point equal to the line coefficients when it is self-incident).
  const gf::Field& f = field_;
  line_points_.resize(static_cast<std::size_t>(n_));
  point_lines_.resize(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    const Point& coeff = points_[static_cast<std::size_t>(j)];
    Point b1, b2;
    if (coeff.x != 0) {
      const gf::Elem ix = f.inv(coeff.x);
      b1 = Point{f.neg(f.mul(coeff.y, ix)), 1, 0};
      b2 = Point{f.neg(f.mul(coeff.z, ix)), 0, 1};
    } else if (coeff.y != 0) {
      const gf::Elem iy = f.inv(coeff.y);
      b1 = Point{1, 0, 0};
      b2 = Point{0, f.neg(f.mul(coeff.z, iy)), 1};
    } else {
      b1 = Point{1, 0, 0};
      b2 = Point{0, 1, 0};
    }
    auto add_point = [&](gf::Elem x, gf::Elem y, gf::Elem z) {
      // Normalize to the left-normalized representative.
      Point p;
      if (x != 0) {
        const gf::Elem ix = f.inv(x);
        p = Point{1, f.mul(y, ix), f.mul(z, ix)};
      } else if (y != 0) {
        const gf::Elem iy = f.inv(y);
        p = Point{0, 1, f.mul(z, iy)};
      } else {
        p = Point{0, 0, 1};
      }
      line_points_[static_cast<std::size_t>(j)].push_back(id_of(p, q_));
    };
    add_point(b2.x, b2.y, b2.z);
    for (gf::Elem t = 0; t < q_; ++t) {
      add_point(f.add(b1.x, f.mul(t, b2.x)), f.add(b1.y, f.mul(t, b2.y)),
                f.add(b1.z, f.mul(t, b2.z)));
    }
    std::sort(line_points_[static_cast<std::size_t>(j)].begin(), line_points_[static_cast<std::size_t>(j)].end());
    for (int p : line_points_[static_cast<std::size_t>(j)]) point_lines_[static_cast<std::size_t>(p)].push_back(j);
  }
  for (auto& lines : point_lines_) std::sort(lines.begin(), lines.end());
}

bool ProjectivePlane::incident(int point_id, int line_id) const {
  const auto& pts = line_points_[static_cast<std::size_t>(line_id)];
  return std::binary_search(pts.begin(), pts.end(), point_id);
}

int ProjectivePlane::line_through(int p1, int p2) const {
  if (p1 == p2) throw std::invalid_argument("line_through: equal points");
  const auto& a = point_lines_[static_cast<std::size_t>(p1)];
  const auto& b = point_lines_[static_cast<std::size_t>(p2)];
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return a[i];
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  throw std::logic_error("line_through: no common line (axiom violation)");
}

int ProjectivePlane::meet(int l1, int l2) const {
  if (l1 == l2) throw std::invalid_argument("meet: equal lines");
  const auto& a = line_points_[static_cast<std::size_t>(l1)];
  const auto& b = line_points_[static_cast<std::size_t>(l2)];
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return a[i];
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  throw std::logic_error("meet: no common point (axiom violation)");
}

graph::Graph polarity_graph(const ProjectivePlane& plane) {
  graph::Graph g(plane.size());
  for (int v = 0; v < plane.size(); ++v) {
    for (int u : plane.points_on_line(plane.polar(v))) {
      if (u > v) g.add_edge(u, v);
    }
  }
  g.finalize();
  return g;
}

bool polarfly_matches_polarity_graph(const PolarFly& pf) {
  const ProjectivePlane plane(pf.q());
  const graph::Graph pg = polarity_graph(plane);
  if (pg.num_edges() != pf.graph().num_edges()) return false;
  for (const auto& e : pg.edges()) {
    if (!pf.graph().has_edge(e.u, e.v)) return false;
  }
  return true;
}

}  // namespace pfar::polarfly
