#pragma once

#include <vector>

#include "polarfly/erq.hpp"

namespace pfar::polarfly {

/// The modular PolarFly layout of Algorithm 2 (Section 6.1.1): the quadric
/// cluster W plus q non-quadric clusters C_0..C_{q-1}, each anchored at a
/// center v_i adjacent to the starter quadric. Valid for odd prime powers q
/// (the paper restricts its published layout and low-depth trees to odd q).
struct Layout {
  int starter_quadric = -1;             // vertex id of w
  std::vector<int> quadric_cluster;     // W: all quadrics, ascending
  std::vector<int> centers;             // centers[i] = v_i
  std::vector<std::vector<int>> clusters;  // clusters[i]: members of C_i
                                           // (centers[i] first)
  /// cluster_of[v]: index i of the C_i containing v, or -1 for quadrics.
  std::vector<int> cluster_of;
  /// nonstarter_quadric[i] = w_i, the unique non-starter quadric adjacent
  /// to center v_i (Corollary 7.3).
  std::vector<int> nonstarter_quadric;
};

/// Runs Algorithm 2. `starter_index` selects which quadric (by rank in
/// PolarFly::quadrics()) is the starter w. Throws for even q.
Layout build_layout(const PolarFly& pf, int starter_index = 0);

/// Counts edges with both endpoints inside the vertex set `a`.
int edges_within(const graph::Graph& g, const std::vector<int>& a);

/// Counts edges with one endpoint in `a` and the other in `b` (disjoint).
int edges_between(const graph::Graph& g, const std::vector<int>& a,
                  const std::vector<int>& b);

}  // namespace pfar::polarfly
