#pragma once

#include <vector>

#include "gf/field.hpp"
#include "polarfly/erq.hpp"

namespace pfar::polarfly {

/// The projective plane PG(2, q) underlying the ER_q construction
/// (Section 6.1): q^2+q+1 points and q^2+q+1 lines with the classical
/// incidence structure, plus the orthogonal polarity (point [a,b,c] <->
/// line {x : ax+by+cz = 0}) whose polarity graph *is* ER_q.
///
/// This class makes the paper's geometric background executable: the
/// incidence axioms (two points span one line, two lines meet in one
/// point, every line has q+1 points, ...) are tested directly, and the
/// polarity-graph derivation cross-checks the PolarFly adjacency.
class ProjectivePlane {
 public:
  explicit ProjectivePlane(int q);

  int q() const { return q_; }
  /// Number of points (= number of lines) = q^2 + q + 1.
  int size() const { return n_; }

  const gf::Field& field() const { return field_; }

  /// Point i as a left-normalized homogeneous coordinate triple.
  const Point& point(int i) const { return points_[static_cast<std::size_t>(i)]; }
  /// Line j's coefficient triple [a,b,c]: the line {x : a x0 + b x1 +
  /// c x2 = 0}. Lines are indexed by the normalized coefficient triple,
  /// so line j has the same coordinates as point j (self-duality).
  const Point& line(int j) const { return points_[static_cast<std::size_t>(j)]; }

  /// True iff point i lies on line j.
  bool incident(int point_id, int line_id) const;

  /// The q+1 points on line j, ascending.
  const std::vector<int>& points_on_line(int line_id) const {
    return line_points_[static_cast<std::size_t>(line_id)];
  }
  /// The q+1 lines through point i, ascending.
  const std::vector<int>& lines_through_point(int point_id) const {
    return point_lines_[static_cast<std::size_t>(point_id)];
  }

  /// The unique line through two distinct points.
  int line_through(int p1, int p2) const;
  /// The unique intersection point of two distinct lines.
  int meet(int l1, int l2) const;

  /// The orthogonal polarity: maps point i to the line with the same
  /// coordinates (and vice versa). An absolute point of the polarity
  /// (incident with its polar line) is exactly a quadric of ER_q.
  int polar(int id) const { return id; }
  bool is_absolute(int point_id) const {
    return incident(point_id, polar(point_id));
  }

 private:
  int q_;
  int n_;
  gf::Field field_;
  std::vector<Point> points_;
  std::vector<std::vector<int>> line_points_;
  std::vector<std::vector<int>> point_lines_;
};

/// Builds the polarity graph of the plane: vertices are points, u ~ v iff
/// u lies on v's polar line (u != v). By Section 6.1 this equals ER_q;
/// `polarfly_matches_polarity_graph` asserts it.
graph::Graph polarity_graph(const ProjectivePlane& plane);

/// True iff the polarity graph of PG(2, q) has exactly the PolarFly
/// adjacency (vertex ids coincide by construction).
bool polarfly_matches_polarity_graph(const PolarFly& pf);

}  // namespace pfar::polarfly
