#pragma once

#include <memory>
#include <vector>

#include "gf/field.hpp"
#include "graph/graph.hpp"

namespace pfar::polarfly {

/// A projective point of PG(2, q) in left-normalized form: the leftmost
/// non-zero coordinate is 1 (Section 6.1 of the paper).
struct Point {
  gf::Elem x = 0;
  gf::Elem y = 0;
  gf::Elem z = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Vertex classification of ER_q (Section 6.1, Table 1).
enum class VertexType {
  kQuadric,  // self-orthogonal (W(q))
  kV1,       // adjacent to a quadric
  kV2,       // not adjacent to any quadric
};

/// The Erdős–Rényi polarity graph ER_q — the PolarFly topology — built via
/// the projective-geometry construction: vertices are left-normalized
/// vectors in F_q^3 and edges join orthogonal vectors (dot product 0 in
/// F_q). Self-loops on quadrics are dropped, as PolarFly does.
///
/// N = q^2 + q + 1 vertices; quadrics have degree q, all other vertices
/// degree q + 1; diameter 2 with at most one 2-path between any pair
/// (Theorem 6.1).
class PolarFly {
 public:
  /// Builds ER_q for prime power q. Adjacency is enumerated analytically
  /// (each vertex's orthogonal complement is a projective line with q+1
  /// points), so construction is O(N * q).
  explicit PolarFly(int q);

  int q() const { return q_; }
  /// Number of vertices N = q^2 + q + 1.
  int n() const { return n_; }
  /// Network radix (max degree) = q + 1.
  int radix() const { return q_ + 1; }

  const gf::Field& field() const { return *field_; }
  const graph::Graph& graph() const { return graph_; }

  const Point& point(int v) const { return points_[static_cast<std::size_t>(v)]; }
  /// Vertex id of a left-normalized point.
  int vertex_of(const Point& pt) const;
  /// Left-normalizes an arbitrary non-zero vector.
  Point normalize(gf::Elem x, gf::Elem y, gf::Elem z) const;
  /// Dot product of two points over F_q.
  gf::Elem dot(const Point& a, const Point& b) const;

  bool is_quadric(int v) const { return type_[static_cast<std::size_t>(v)] == VertexType::kQuadric; }
  VertexType type(int v) const { return type_[static_cast<std::size_t>(v)]; }
  /// All quadric vertex ids (|W(q)| = q + 1), ascending.
  const std::vector<int>& quadrics() const { return quadrics_; }

  int count(VertexType t) const;

 private:
  int q_;
  int n_;
  // Shared process-wide table (gf::shared_field): constructing many
  // PolarFly instances for the same q runs the field search once.
  std::shared_ptr<const gf::Field> field_;
  graph::Graph graph_;
  std::vector<Point> points_;
  std::vector<VertexType> type_;
  std::vector<int> quadrics_;
};

}  // namespace pfar::polarfly
