#include "polarfly/erq.hpp"

#include <stdexcept>

namespace pfar::polarfly {

PolarFly::PolarFly(int q)
    : q_(q), n_(q * q + q + 1), field_(q), graph_(n_) {
  points_.resize(n_);
  // Vertex ids: [1,y,z] -> y*q + z; [0,1,z] -> q^2 + z; [0,0,1] -> q^2 + q.
  for (gf::Elem y = 0; y < q_; ++y) {
    for (gf::Elem z = 0; z < q_; ++z) {
      points_[y * q_ + z] = Point{1, y, z};
    }
  }
  for (gf::Elem z = 0; z < q_; ++z) {
    points_[q_ * q_ + z] = Point{0, 1, z};
  }
  points_[q_ * q_ + q_] = Point{0, 0, 1};

  // For each vertex, its neighbors are the projective points of the 2-dim
  // orthogonal complement of its vector: a line with q+1 points.
  const gf::Field& f = field_;
  for (int v = 0; v < n_; ++v) {
    const Point& pt = points_[v];
    Point b1, b2;  // basis of { u : u . pt == 0 }
    if (pt.x != 0) {
      // x = -(y*pt.y + z*pt.z)/pt.x with free (y, z).
      const gf::Elem ix = f.inv(pt.x);
      b1 = Point{f.neg(f.mul(pt.y, ix)), 1, 0};
      b2 = Point{f.neg(f.mul(pt.z, ix)), 0, 1};
    } else if (pt.y != 0) {
      const gf::Elem iy = f.inv(pt.y);
      b1 = Point{1, 0, 0};
      b2 = Point{0, f.neg(f.mul(pt.z, iy)), 1};
    } else {
      b1 = Point{1, 0, 0};
      b2 = Point{0, 1, 0};
    }
    // Projective points of span{b1, b2}: b2 and b1 + t*b2 for t in F_q.
    auto visit = [&](gf::Elem ux, gf::Elem uy, gf::Elem uz) {
      const Point u = normalize(ux, uy, uz);
      const int w = vertex_of(u);
      if (w > v) graph_.add_edge(v, w);  // each undirected edge added once
    };
    visit(b2.x, b2.y, b2.z);
    for (gf::Elem t = 0; t < q_; ++t) {
      visit(f.add(b1.x, f.mul(t, b2.x)), f.add(b1.y, f.mul(t, b2.y)),
            f.add(b1.z, f.mul(t, b2.z)));
    }
  }
  graph_.finalize();

  // Classification: quadrics first, then V1 = neighbors of quadrics.
  type_.assign(n_, VertexType::kV2);
  for (int v = 0; v < n_; ++v) {
    if (dot(points_[v], points_[v]) == 0) {
      type_[v] = VertexType::kQuadric;
      quadrics_.push_back(v);
    }
  }
  for (int w : quadrics_) {
    for (int u : graph_.neighbors(w)) {
      if (type_[u] != VertexType::kQuadric) type_[u] = VertexType::kV1;
    }
  }
}

int PolarFly::vertex_of(const Point& pt) const {
  if (pt.x == 1) return pt.y * q_ + pt.z;
  if (pt.x == 0 && pt.y == 1) return q_ * q_ + pt.z;
  if (pt.x == 0 && pt.y == 0 && pt.z == 1) return q_ * q_ + q_;
  throw std::invalid_argument("PolarFly::vertex_of: point not normalized");
}

Point PolarFly::normalize(gf::Elem x, gf::Elem y, gf::Elem z) const {
  const gf::Field& f = field_;
  if (x != 0) {
    const gf::Elem ix = f.inv(x);
    return Point{1, f.mul(y, ix), f.mul(z, ix)};
  }
  if (y != 0) {
    const gf::Elem iy = f.inv(y);
    return Point{0, 1, f.mul(z, iy)};
  }
  if (z != 0) return Point{0, 0, 1};
  throw std::invalid_argument("PolarFly::normalize: zero vector");
}

gf::Elem PolarFly::dot(const Point& a, const Point& b) const {
  const gf::Field& f = field_;
  gf::Elem s = f.mul(a.x, b.x);
  s = f.add(s, f.mul(a.y, b.y));
  s = f.add(s, f.mul(a.z, b.z));
  return s;
}

int PolarFly::count(VertexType t) const {
  int c = 0;
  for (int v = 0; v < n_; ++v) {
    if (type_[v] == t) ++c;
  }
  return c;
}

}  // namespace pfar::polarfly
