#include "polarfly/erq.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::polarfly {

PolarFly::PolarFly(int q)
    : q_(q), n_(q * q + q + 1), field_(gf::shared_field(q)), graph_(n_) {
  points_.resize(static_cast<std::size_t>(n_));
  // Vertex ids: [1,y,z] -> y*q + z; [0,1,z] -> q^2 + z; [0,0,1] -> q^2 + q.
  for (gf::Elem y = 0; y < q_; ++y) {
    for (gf::Elem z = 0; z < q_; ++z) {
      points_[static_cast<std::size_t>(y * q_ + z)] = Point{1, y, z};
    }
  }
  for (gf::Elem z = 0; z < q_; ++z) {
    points_[static_cast<std::size_t>(q_ * q_ + z)] = Point{0, 1, z};
  }
  points_[static_cast<std::size_t>(q_ * q_ + q_)] = Point{0, 0, 1};

  // For each vertex, its neighbors are the projective points of the 2-dim
  // orthogonal complement of its vector: a line with q+1 points. Solving
  // the incidence equation per normalized shape ([1,a,b], [0,1,c],
  // [0,0,1]) yields every neighbor already in canonical coordinates, so
  // the hot loop needs no inversions or renormalization — just one
  // multiply-add per point and the vertex-id arithmetic.
  const gf::Field& f = *field_;
  graph_.reserve(n_ * (q_ + 1) / 2, q_ + 1);
  for (int v = 0; v < n_; ++v) {
    const Point& pt = points_[static_cast<std::size_t>(v)];
    auto link = [&](int w) {
      if (w > v) graph_.add_edge(v, w);  // each undirected edge added once
    };
    if (pt.z != 0) {
      const gf::Elem niz = f.neg(f.inv(pt.z));
      // [1,a,b]: x + a*y + b*z = 0  ->  b = -(x + a*y)/z, one per a.
      for (gf::Elem a = 0; a < q_; ++a) {
        const gf::Elem b = f.mul(f.add(pt.x, f.mul(a, pt.y)), niz);
        link(a * q_ + b);
      }
      // [0,1,c]: y + c*z = 0  ->  c = -y/z.
      link(q_ * q_ + f.mul(pt.y, niz));
    } else if (pt.y != 0) {
      // [1,a,b]: x + a*y = 0 fixes a; b is free. [0,0,1] always works.
      const gf::Elem a = f.mul(pt.x, f.neg(f.inv(pt.y)));
      for (gf::Elem b = 0; b < q_; ++b) link(a * q_ + b);
      link(q_ * q_ + q_);
    } else {
      // pt = [1,0,0]: the polar line is x = 0, i.e. [0,1,c] and [0,0,1].
      for (gf::Elem c = 0; c < q_; ++c) link(q_ * q_ + c);
      link(q_ * q_ + q_);
    }
  }
  graph_.finalize();

  // Classification: quadrics first, then V1 = neighbors of quadrics.
  type_.assign(static_cast<std::size_t>(n_), VertexType::kV2);
  for (int v = 0; v < n_; ++v) {
    if (dot(points_[static_cast<std::size_t>(v)], points_[static_cast<std::size_t>(v)]) == 0) {
      type_[static_cast<std::size_t>(v)] = VertexType::kQuadric;
      quadrics_.push_back(v);
    }
  }
  for (int w : quadrics_) {
    for (int u : graph_.neighbors(w)) {
      if (type_[static_cast<std::size_t>(u)] != VertexType::kQuadric) type_[static_cast<std::size_t>(u)] = VertexType::kV1;
    }
  }

  // Brown-graph structure (Section 6 / Table 1): |W| = q+1 quadrics, and
  // for odd q the non-quadrics split into |V1| = q(q+1)/2 neighbors of
  // quadrics and |V2| = q(q-1)/2 others. Even q degenerates: every
  // non-quadric is adjacent to a quadric, so V2 is empty.
  PFAR_ENSURE(static_cast<int>(quadrics_.size()) == q_ + 1, q_,
              quadrics_.size());
  const int v1 = count(VertexType::kV1);
  const int v2 = count(VertexType::kV2);
  PFAR_ENSURE(v1 + v2 + static_cast<int>(quadrics_.size()) == n_, q_, v1, v2,
              n_);
  if (q_ % 2 == 1) {
    PFAR_ENSURE(v1 == q_ * (q_ + 1) / 2, q_, v1);
    PFAR_ENSURE(v2 == q_ * (q_ - 1) / 2, q_, v2);
  } else {
    PFAR_ENSURE(v2 == 0, q_, v2);
  }

#if PFAR_AUDIT_ENABLED
  // Degree law: quadrics are the self-orthogonal points with degree q
  // (their polar line contains themselves); every other vertex has degree
  // q+1 (Erdos-Renyi polarity graph).
  for (int v = 0; v < n_; ++v) {
    const bool quad = type_[static_cast<std::size_t>(v)] == VertexType::kQuadric;
    PFAR_INVARIANT(graph_.degree(v) == (quad ? q_ : q_ + 1), v, q_,
                   graph_.degree(v));
  }
#endif
}

int PolarFly::vertex_of(const Point& pt) const {
  if (pt.x == 1) return pt.y * q_ + pt.z;
  if (pt.x == 0 && pt.y == 1) return q_ * q_ + pt.z;
  if (pt.x == 0 && pt.y == 0 && pt.z == 1) return q_ * q_ + q_;
  throw std::invalid_argument("PolarFly::vertex_of: point not normalized");
}

Point PolarFly::normalize(gf::Elem x, gf::Elem y, gf::Elem z) const {
  const gf::Field& f = *field_;
  if (x != 0) {
    const gf::Elem ix = f.inv(x);
    return Point{1, f.mul(y, ix), f.mul(z, ix)};
  }
  if (y != 0) {
    const gf::Elem iy = f.inv(y);
    return Point{0, 1, f.mul(z, iy)};
  }
  if (z != 0) return Point{0, 0, 1};
  throw std::invalid_argument("PolarFly::normalize: zero vector");
}

gf::Elem PolarFly::dot(const Point& a, const Point& b) const {
  const gf::Field& f = *field_;
  gf::Elem s = f.mul(a.x, b.x);
  s = f.add(s, f.mul(a.y, b.y));
  s = f.add(s, f.mul(a.z, b.z));
  return s;
}

int PolarFly::count(VertexType t) const {
  int c = 0;
  for (int v = 0; v < n_; ++v) {
    if (type_[static_cast<std::size_t>(v)] == t) ++c;
  }
  return c;
}

}  // namespace pfar::polarfly
