#include "obsv/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "obsv/trace.hpp"  // json_escape

namespace pfar::obsv {
namespace {

const char* kind_name(int k) {
  switch (k) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

// Shortest round-trip decimal for a double, C locale, no locale surprises.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shorter %g forms when they round-trip exactly.
  for (int prec = 1; prec <= 16; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

}  // namespace

Metrics::Entry& Metrics::touch(std::string_view name, Kind kind) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    return entries_.emplace(std::string(name), e).first->second;
  }
  if (it->second.kind != kind) {
    throw std::logic_error("obsv::Metrics: '" + std::string(name) +
                           "' already registered as " +
                           kind_name(static_cast<int>(it->second.kind)) +
                           ", touched as " +
                           kind_name(static_cast<int>(kind)));
  }
  return it->second;
}

const Metrics::Entry* Metrics::find(std::string_view name, Kind kind) const {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

void Metrics::add(std::string_view name, long long delta) {
  touch(name, Kind::kCounter).value += delta;
}

void Metrics::hwm(std::string_view name, long long value) {
  Entry& e = touch(name, Kind::kGauge);
  if (e.count == 0 || value > e.value) e.value = value;
  ++e.count;
}

void Metrics::observe(std::string_view name, double value) {
  Entry& e = touch(name, Kind::kHistogram);
  if (e.count == 0) {
    e.min = value;
    e.max = value;
  } else {
    if (value < e.min) e.min = value;
    if (value > e.max) e.max = value;
  }
  e.sum += value;
  ++e.count;
}

long long Metrics::counter(std::string_view name) const {
  const Entry* e = find(name, Kind::kCounter);
  return e == nullptr ? 0 : e->value;
}

long long Metrics::gauge(std::string_view name) const {
  const Entry* e = find(name, Kind::kGauge);
  return e == nullptr ? 0 : e->value;
}

long long Metrics::histogram_count(std::string_view name) const {
  const Entry* e = find(name, Kind::kHistogram);
  return e == nullptr ? 0 : e->count;
}

bool Metrics::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> Metrics::names(std::string_view prefix) const {
  std::vector<std::string> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void Metrics::write_jsonl(std::ostream& os) const {
  for (const auto& [name, e] : entries_) {
    os << "{\"name\":\"" << json_escape(name) << "\",\"type\":\""
       << kind_name(static_cast<int>(e.kind)) << "\"";
    switch (e.kind) {
      case Kind::kCounter:
        os << ",\"value\":" << e.value;
        break;
      case Kind::kGauge:
        os << ",\"value\":" << e.value;
        break;
      case Kind::kHistogram:
        os << ",\"count\":" << e.count << ",\"sum\":" << format_double(e.sum)
           << ",\"min\":" << format_double(e.min)
           << ",\"max\":" << format_double(e.max);
        break;
    }
    os << "}\n";
  }
}

}  // namespace pfar::obsv
