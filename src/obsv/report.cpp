#include "obsv/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "obsv/metrics.hpp"
#include "obsv/trace.hpp"

namespace pfar::obsv {
namespace {

// --- JSON parsing ----------------------------------------------------------

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos) + ": " + what);
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The artifacts this parser consumes only escape control chars;
          // encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      v.type = JsonValue::Type::kObject;
      ++pos;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = JsonValue::Type::kArray;
      ++pos;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      while (true) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) fail("unexpected character");
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                           nullptr);
    return v;
  }
};

// Splits "link.3->17.flits" into ("3->17", "flits"); empty middle on
// mismatch. `prefix` includes the trailing dot.
bool split_metric(std::string_view name, std::string_view prefix,
                  std::string* middle, std::string* field) {
  if (name.substr(0, prefix.size()) != prefix) return false;
  const std::string_view rest = name.substr(prefix.size());
  const std::size_t dot = rest.rfind('.');
  if (dot == std::string_view::npos) return false;
  *middle = std::string(rest.substr(0, dot));
  *field = std::string(rest.substr(dot + 1));
  return true;
}

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::num(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
}

std::string JsonValue::str(std::string_view key,
                           std::string_view fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->type == Type::kString ? v->string
                                                  : std::string(fallback);
}

JsonValue parse_json(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing content");
  return v;
}

std::vector<ReportEvent> parse_trace(
    std::string_view trace_json, long long* dropped,
    std::map<long long, std::string>* track_names) {
  std::vector<ReportEvent> out;
  if (trace_json.empty()) return out;
  const JsonValue doc = parse_json(trace_json);
  if (dropped != nullptr) {
    const JsonValue* other = doc.get("otherData");
    *dropped = other != nullptr
                   ? static_cast<long long>(other->num("dropped_events"))
                   : 0;
  }
  const JsonValue* events = doc.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("trace: missing traceEvents array");
  }
  out.reserve(events->array.size());
  for (const JsonValue& ev : events->array) {
    const std::string ph = ev.str("ph", "?");
    if (ph == "M") {  // metadata
      if (track_names != nullptr && ev.str("name") == "thread_name") {
        if (const JsonValue* margs = ev.get("args"); margs != nullptr) {
          (*track_names)[static_cast<long long>(ev.num("tid"))] =
              margs->str("name");
        }
      }
      continue;
    }
    ReportEvent re;
    re.ph = ph.empty() ? '?' : ph[0];
    re.ts = static_cast<long long>(ev.num("ts"));
    re.dur = static_cast<long long>(ev.num("dur"));
    re.track = static_cast<long long>(ev.num("tid"));
    re.name = ev.str("name");
    if (const JsonValue* args = ev.get("args");
        args != nullptr && args->is_object()) {
      for (const auto& [k, v] : args->object) {
        if (v.type == JsonValue::Type::kNumber) {
          re.args[k] = static_cast<long long>(v.number);
        }
      }
    }
    out.push_back(std::move(re));
  }
  return out;
}

RunReport build_report(std::string_view trace_json,
                       std::string_view metrics_jsonl) {
  RunReport report;

  // --- Metrics: one JSON object per line. ---------------------------------
  std::map<std::string, RunReport::Link> links;
  std::map<int, RunReport::Tree> trees;
  std::size_t line_start = 0;
  while (line_start < metrics_jsonl.size()) {
    std::size_t line_end = metrics_jsonl.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = metrics_jsonl.size();
    const std::string_view line =
        metrics_jsonl.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty()) continue;
    const JsonValue m = parse_json(line);
    const std::string name = m.str("name");
    const std::string type = m.str("type");
    const long long value = static_cast<long long>(m.num("value"));
    if (type == "counter") report.counters[name] = value;

    std::string middle, field;
    if (split_metric(name, "link.", &middle, &field)) {
      RunReport::Link& link = links[middle];
      link.name = middle;
      if (field == "flits") link.flits = value;
      else if (field == "dropped_flits") link.dropped_flits = value;
      else if (field == "queue_hwm") link.queue_hwm = value;
      else if (field == "bg_flits") link.bg_flits = value;
      else if (field == "busy_cycles") link.busy_cycles = value;
    } else if (split_metric(name, "tree.", &middle, &field)) {
      const int id = std::atoi(middle.c_str());
      RunReport::Tree& tree = trees[id];
      tree.id = id;
      if (field == "finish_cycle") tree.finish_cycle = value;
      else if (field == "first_delivery") tree.first_delivery = value;
      else if (field == "failed") tree.failed = value != 0;
    } else if (name.substr(0, 8) == "planner." && type == "histogram") {
      report.planner_ms[name.substr(8)] = m.num("sum");
    } else if (name.substr(0, 5) == "flow." && type == "histogram") {
      report.flow[name.substr(5)] = m.num("sum");
    } else if (name == "sim.cycles") {
      report.cycles = value;
    } else if (name == "sim.total_elements") {
      report.total_elements = value;
    } else if (name == "recovery.total_cycles") {
      // End-to-end timeline beats the per-attempt maximum when present.
      report.cycles = value;
    }
  }

  // --- Trace: busy spans and the fault/recovery timeline. Busy spans are
  // joined to their link via the track-name metadata ("link u->v").
  std::map<long long, std::string> track_names;
  const std::vector<ReportEvent> events =
      parse_trace(trace_json, &report.trace_dropped, &track_names);
  report.trace_events = static_cast<long long>(events.size());
  std::map<std::string, long long> trace_busy;
  for (const ReportEvent& ev : events) {
    if (ev.track >= 100000 && ev.ph == 'X') {  // kTrackLinkBase
      std::string key;
      if (const auto it = track_names.find(ev.track);
          it != track_names.end() && it->second.substr(0, 5) == "link ") {
        key = it->second.substr(5);
      } else {
        key = "dlink" + std::to_string(ev.track - 100000);
      }
      trace_busy[key] += ev.dur;
    } else if (ev.track <= 1) {  // kTrackSim / kTrackRecovery
      report.timeline.push_back(ev);
    } else if (ev.track == kTrackAdapt) {  // congestion controller
      report.adapt.push_back(ev);
    } else if (ev.track == kTrackWorkload) {  // training replay
      report.workload.push_back(ev);
    }
  }
  // The busy_cycles counter (emitted since the controller landed) is
  // authoritative; summed trace spans back-fill reports built from older
  // artifacts that only carried the spans.
  for (const auto& [key, busy] : trace_busy) {
    RunReport::Link& link = links[key];
    if (link.name.empty()) link.name = key;
    if (link.busy_cycles == 0) link.busy_cycles = busy;
  }
  const auto by_ts = [](const ReportEvent& a, const ReportEvent& b) {
    return a.ts < b.ts;
  };
  std::stable_sort(report.timeline.begin(), report.timeline.end(), by_ts);
  std::stable_sort(report.adapt.begin(), report.adapt.end(), by_ts);
  std::stable_sort(report.workload.begin(), report.workload.end(), by_ts);

  for (auto& [key, link] : links) report.links.push_back(link);
  std::stable_sort(report.links.begin(), report.links.end(),
                   [](const RunReport::Link& a, const RunReport::Link& b) {
                     return a.flits > b.flits;
                   });
  for (auto& [id, tree] : trees) report.trees.push_back(tree);
  return report;
}

void render_report(const RunReport& report, std::ostream& os, int top_k) {
  char buf[256];
  os << "== pfar run report ==\n";
  std::snprintf(buf, sizeof buf,
                "cycles: %lld   elements: %lld   trace: %lld events "
                "(%lld dropped)\n",
                report.cycles, report.total_elements, report.trace_events,
                report.trace_dropped);
  os << buf;

  if (!report.flow.empty()) {
    os << "\n-- flow tier --\n";
    for (const auto& [name, value] : report.flow) {
      std::snprintf(buf, sizeof buf, "%-24s %12.4f\n", name.c_str(), value);
      os << buf;
    }
    const auto bw = report.flow.find("sim_bw");
    const auto bound = report.flow.find("rate_upper_bound");
    if (bw != report.flow.end() && bound != report.flow.end() &&
        bound->second > 0) {
      std::snprintf(buf, sizeof buf,
                    "sim_bw / rate upper bound = %.4f (Zhou & Sun "
                    "aggregation ceiling)\n",
                    bw->second / bound->second);
      os << buf;
    }
  }

  if (!report.links.empty()) {
    os << "\n-- top " << top_k << " congested links (by flits) --\n";
    std::snprintf(buf, sizeof buf, "%-12s %10s %10s %7s %10s %9s\n", "link",
                  "flits", "bg_flits", "busy%", "queue_hwm", "dropped");
    os << buf;
    int shown = 0;
    for (const RunReport::Link& link : report.links) {
      if (shown++ >= top_k) break;
      const double busy_pct =
          report.cycles > 0
              ? 100.0 * static_cast<double>(link.busy_cycles) /
                    static_cast<double>(report.cycles)
              : 0.0;
      std::snprintf(buf, sizeof buf,
                    "%-12s %10lld %10lld %6.1f%% %10lld %9lld\n",
                    link.name.c_str(), link.flits, link.bg_flits, busy_pct,
                    link.queue_hwm, link.dropped_flits);
      os << buf;
    }
  }

  if (!report.trees.empty()) {
    os << "\n-- tree completion skew --\n";
    std::snprintf(buf, sizeof buf, "%-6s %15s %13s %7s\n", "tree",
                  "first_delivery", "finish_cycle", "failed");
    os << buf;
    long long min_finish = -1, max_finish = -1;
    for (const RunReport::Tree& tree : report.trees) {
      std::snprintf(buf, sizeof buf, "%-6d %15lld %13lld %7s\n", tree.id,
                    tree.first_delivery, tree.finish_cycle,
                    tree.failed ? "yes" : "no");
      os << buf;
      if (tree.failed || tree.finish_cycle < 0) continue;
      if (min_finish < 0 || tree.finish_cycle < min_finish) {
        min_finish = tree.finish_cycle;
      }
      max_finish = std::max(max_finish, tree.finish_cycle);
    }
    if (min_finish > 0) {
      std::snprintf(buf, sizeof buf,
                    "skew: max/min finish = %.3f (max %lld, min %lld)\n",
                    static_cast<double>(max_finish) /
                        static_cast<double>(min_finish),
                    max_finish, min_finish);
      os << buf;
    }
  }

  if (!report.timeline.empty()) {
    os << "\n-- fault / recovery timeline --\n";
    for (const ReportEvent& ev : report.timeline) {
      if (ev.ph == 'X') {
        std::snprintf(buf, sizeof buf, "cycle %lld..%lld: %s", ev.ts,
                      ev.ts + ev.dur, ev.name.c_str());
      } else {
        std::snprintf(buf, sizeof buf, "cycle %lld: %s", ev.ts,
                      ev.name.c_str());
      }
      os << buf;
      bool first = true;
      for (const auto& [k, v] : ev.args) {
        os << (first ? " (" : ", ") << k << "=" << v;
        first = false;
      }
      if (!first) os << ")";
      os << "\n";
    }
  }

  const bool any_adapt_counter = [&] {
    for (const auto& [name, value] : report.counters) {
      if (name.substr(0, 6) == "adapt.") return true;
    }
    return false;
  }();
  if (!report.adapt.empty() || any_adapt_counter) {
    os << "\n-- congestion adaptation timeline --\n";
    for (const ReportEvent& ev : report.adapt) {
      if (ev.ph == 'X') {
        std::snprintf(buf, sizeof buf, "cycle %lld..%lld: %s", ev.ts,
                      ev.ts + ev.dur, ev.name.c_str());
      } else {
        std::snprintf(buf, sizeof buf, "cycle %lld: %s", ev.ts,
                      ev.name.c_str());
      }
      os << buf;
      bool first = true;
      for (const auto& [k, v] : ev.args) {
        os << (first ? " (" : ", ") << k << "=" << v;
        first = false;
      }
      if (!first) os << ")";
      os << "\n";
    }
    for (const auto& [name, value] : report.counters) {
      if (name.substr(0, 6) != "adapt.") continue;
      std::snprintf(buf, sizeof buf, "%-24s %12lld\n", name.c_str(), value);
      os << buf;
    }
  }

  const bool any_workload_counter = [&] {
    for (const auto& [name, value] : report.counters) {
      if (name.substr(0, 9) == "workload.") return true;
    }
    return false;
  }();
  if (!report.workload.empty() || any_workload_counter) {
    os << "\n-- training replay timeline --\n";
    for (const ReportEvent& ev : report.workload) {
      if (ev.ph == 'X') {
        std::snprintf(buf, sizeof buf, "cycle %lld..%lld: %s", ev.ts,
                      ev.ts + ev.dur, ev.name.c_str());
      } else {
        std::snprintf(buf, sizeof buf, "cycle %lld: %s", ev.ts,
                      ev.name.c_str());
      }
      os << buf;
      bool first = true;
      for (const auto& [k, v] : ev.args) {
        os << (first ? " (" : ", ") << k << "=" << v;
        first = false;
      }
      if (!first) os << ")";
      os << "\n";
    }
    for (const auto& [name, value] : report.counters) {
      if (name.substr(0, 9) != "workload.") continue;
      std::snprintf(buf, sizeof buf, "%-28s %12lld\n", name.c_str(), value);
      os << buf;
    }
  }

  if (!report.planner_ms.empty()) {
    os << "\n-- planner phases --\n";
    for (const auto& [phase, ms] : report.planner_ms) {
      std::snprintf(buf, sizeof buf, "%-16s %10.3f ms\n", phase.c_str(), ms);
      os << buf;
    }
  }

  if (!report.counters.empty()) {
    const auto show = [&](const char* name) {
      const auto it = report.counters.find(name);
      if (it == report.counters.end()) return;
      std::snprintf(buf, sizeof buf, "%-24s %12lld\n", name,
                    it->second);
      os << buf;
    };
    os << "\n-- accounting --\n";
    show("sim.credit_stalls");
    show("sim.dropped_packets");
    show("sim.dropped_flits");
    show("sim.canceled_packets");
    show("sim.canceled_flits");
    show("sim.fault_events");
    show("recovery.attempts");
    show("recovery.chunks_replayed");
  }
}

LinkWindow extract_link_windows(const Metrics& metrics) {
  LinkWindow window;
  window.cycles = metrics.gauge("sim.cycles");
  if (metrics.contains("recovery.total_cycles")) {
    window.cycles = metrics.counter("recovery.total_cycles");
  }
  std::map<std::string, LinkWindowStats> stats;
  for (const std::string& name : metrics.names("link.")) {
    std::string middle, field;
    if (!split_metric(name, "link.", &middle, &field)) continue;
    LinkWindowStats& s = stats[middle];
    s.name = middle;
    if (field == "flits") s.flits = metrics.counter(name);
    else if (field == "bg_flits") s.bg_flits = metrics.counter(name);
    else if (field == "busy_cycles") s.busy_cycles = metrics.counter(name);
    else if (field == "queue_hwm") s.queue_hwm = metrics.gauge(name);
    else if (field == "dropped_flits") s.dropped_flits = metrics.counter(name);
  }
  window.links.reserve(stats.size());
  for (auto& [key, s] : stats) {
    if (window.cycles > 0) {
      s.busy_fraction = std::min(
          1.0, static_cast<double>(s.busy_cycles) /
                   static_cast<double>(window.cycles));
    }
    window.links.push_back(std::move(s));
  }
  return window;
}

}  // namespace pfar::obsv
