#include "obsv/recorder.hpp"

#include <fstream>
#include <stdexcept>

namespace pfar::obsv {

void Recorder::write_files(const std::string& trace_path,
                           const std::string& metrics_path) const {
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      throw std::runtime_error("obsv: cannot open trace output '" +
                               trace_path + "'");
    }
    trace.write_chrome_json(os);
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      throw std::runtime_error("obsv: cannot open metrics output '" +
                               metrics_path + "'");
    }
    metrics.write_jsonl(os);
  }
}

}  // namespace pfar::obsv
