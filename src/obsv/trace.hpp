#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// Observability compile-time gate, mirroring PFAR_CHECKS_LEVEL (see
/// src/util/contracts.hpp): -DPFAR_TRACE_LEVEL=<0|1>, driven by the CMake
/// cache variable PFAR_TRACE=off|on.
///
///   0 (off) - every instrumentation call site in simnet/collectives/core
///             is compiled out; the hot paths carry no tracing code at all
///             (the CI bench-regression gate runs against this build).
///   1 (on)  - instrumentation is compiled in but dormant: it costs one
///             null-pointer test per hook until a Recorder is attached to
///             the run (SimConfig::recorder / AllreducePlanner::observer).
///
/// The obsv library itself (Tracer, Metrics, report machinery) always
/// compiles at both levels; only the call sites threaded through the
/// simulator and planner are gated.
#ifndef PFAR_TRACE_LEVEL
#define PFAR_TRACE_LEVEL 1
#endif

namespace pfar::obsv {

/// True when instrumentation call sites are compiled in.
inline constexpr bool kTraceCompiled = PFAR_TRACE_LEVEL >= 1;

/// Track (Chrome "tid") layout of the traces this repo emits. Perfetto
/// renders one horizontal track per tid; the constants keep the layout
/// stable so pfar_report can classify events without string matching.
inline constexpr std::uint32_t kTrackSim = 0;       // run-wide instants
inline constexpr std::uint32_t kTrackRecovery = 1;  // resilient driver
inline constexpr std::uint32_t kTrackPlanner = 2;   // planner phases
inline constexpr std::uint32_t kTrackAdapt = 3;     // congestion controller
inline constexpr std::uint32_t kTrackWorkload = 4;  // training replay
inline constexpr std::uint32_t kTrackTreeBase = 10;       // + tree id
inline constexpr std::uint32_t kTrackLinkBase = 100000;   // + directed link
inline constexpr std::uint32_t kTrackServiceBase = 200000;  // + service lane

/// One named integer argument attached to a trace event.
struct TraceArg {
  const char* key = nullptr;
  long long value = 0;
};

/// Bounded-memory event tracer emitting Chrome trace_event JSON.
///
/// Design constraints (see docs/observability.md):
///  * deterministic: timestamps are virtual simulation cycles, never wall
///    clock, and export order is insertion order — two runs of the same
///    deterministic simulation serialize byte-identical traces;
///  * bounded: events land in a fixed-capacity buffer; once full, new
///    events are counted in dropped() and discarded (the timeline prefix
///    stays coherent, which Perfetto handles better than a hole at the
///    start);
///  * cheap: event names are interned once and events are 64-byte PODs, so
///    recording is an id lookup plus a vector append.
///
/// A Tracer is single-writer: one simulation run (itself single-threaded)
/// owns it for the duration of the run. Concurrent sweeps must use one
/// Recorder per task or none.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1u << 16);

  /// Interns `s`, returning a stable id. Id 0 is reserved (empty name).
  std::uint32_t intern(std::string_view s);

  /// Added to every subsequently recorded timestamp. The resilient driver
  /// uses this to place each retry attempt's (0-based) simulation on the
  /// global recovery timeline.
  void set_time_offset(long long offset) { time_offset_ = offset; }
  long long time_offset() const { return time_offset_; }

  /// Complete event ("ph":"X"): a span [ts, ts + dur) on `track`.
  void complete(long long ts, long long dur, std::uint32_t name,
                std::uint32_t track, TraceArg a = {}, TraceArg b = {});
  /// Instant event ("ph":"i").
  void instant(long long ts, std::uint32_t name, std::uint32_t track,
               TraceArg a = {}, TraceArg b = {});

  /// Names a track; exported as "thread_name" metadata, sorted by track id.
  void name_track(std::uint32_t track, std::string_view name);

  std::size_t size() const { return events_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dropped() const { return dropped_; }

  /// Serializes the buffer as Chrome trace_event JSON ("JSON Object
  /// Format": traceEvents array plus otherData). Deterministic: metadata
  /// sorted by track id, events in insertion order, integers only.
  void write_chrome_json(std::ostream& os) const;

  /// Drops every event, track name and interned string (ids invalidate).
  void clear();

 private:
  struct Event {
    long long ts = 0;
    long long dur = 0;
    long long a_value = 0;
    long long b_value = 0;
    std::uint32_t name = 0;
    std::uint32_t track = 0;
    std::uint32_t a_key = 0;
    std::uint32_t b_key = 0;
    char ph = 'X';
  };

  void push(const Event& ev);
  std::uint32_t intern_key(const char* key);

  std::size_t capacity_;
  std::size_t dropped_ = 0;
  long long time_offset_ = 0;
  std::vector<Event> events_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> track_names_;
};

/// Escapes `s` for inclusion inside a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace pfar::obsv
