#include "obsv/trace.hpp"

#include <algorithm>
#include <ostream>

namespace pfar::obsv {

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  strings_.emplace_back();  // id 0 reserved
  events_.reserve(std::min<std::size_t>(capacity_, 1024));
}

std::uint32_t Tracer::intern(std::string_view s) {
  const auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

std::uint32_t Tracer::intern_key(const char* key) {
  return key == nullptr ? 0 : intern(key);
}

void Tracer::push(const Event& ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

void Tracer::complete(long long ts, long long dur, std::uint32_t name,
                      std::uint32_t track, TraceArg a, TraceArg b) {
  Event ev;
  ev.ts = ts + time_offset_;
  ev.dur = dur;
  ev.name = name;
  ev.track = track;
  ev.ph = 'X';
  ev.a_key = intern_key(a.key);
  ev.a_value = a.value;
  ev.b_key = intern_key(b.key);
  ev.b_value = b.value;
  push(ev);
}

void Tracer::instant(long long ts, std::uint32_t name, std::uint32_t track,
                     TraceArg a, TraceArg b) {
  Event ev;
  ev.ts = ts + time_offset_;
  ev.name = name;
  ev.track = track;
  ev.ph = 'i';
  ev.a_key = intern_key(a.key);
  ev.a_value = a.value;
  ev.b_key = intern_key(b.key);
  ev.b_value = b.value;
  push(ev);
}

void Tracer::name_track(std::uint32_t track, std::string_view name) {
  const std::uint32_t id = intern(name);
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = id;
      return;
    }
  }
  track_names_.emplace_back(track, id);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\n\"displayTimeUnit\": \"ms\",\n";
  os << "\"otherData\": {\"time_unit\": \"cycle\", \"dropped_events\": "
     << dropped_ << "},\n";
  os << "\"traceEvents\": [";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    os << (first ? "\n" : ",\n");
    first = false;
    return os;
  };
  auto sorted_tracks = track_names_;
  std::sort(sorted_tracks.begin(), sorted_tracks.end());
  for (const auto& [track, name] : sorted_tracks) {
    sep() << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << json_escape(strings_[name]) << "\"}}";
  }
  for (const Event& ev : events_) {
    sep() << "{\"ph\":\"" << ev.ph << "\",\"pid\":0,\"tid\":" << ev.track
          << ",\"ts\":" << ev.ts;
    if (ev.ph == 'X') os << ",\"dur\":" << ev.dur;
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"name\":\"" << json_escape(strings_[ev.name]) << "\"";
    if (ev.a_key != 0 || ev.b_key != 0) {
      os << ",\"args\":{";
      if (ev.a_key != 0) {
        os << "\"" << json_escape(strings_[ev.a_key])
           << "\":" << ev.a_value;
      }
      if (ev.b_key != 0) {
        if (ev.a_key != 0) os << ",";
        os << "\"" << json_escape(strings_[ev.b_key])
           << "\":" << ev.b_value;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

void Tracer::clear() {
  events_.clear();
  track_names_.clear();
  strings_.clear();
  strings_.emplace_back();
  ids_.clear();
  dropped_ = 0;
  time_offset_ = 0;
}

}  // namespace pfar::obsv
