#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pfar::obsv {

class Metrics;

/// Minimal JSON value for consuming this repo's own artifacts (traces,
/// metrics snapshots, BENCH_*.json). Full RFC 8259 grammar minus exotic
/// number forms; throws std::runtime_error with an offset on bad input.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;
  /// Numeric member with fallback.
  double num(std::string_view key, double fallback = 0.0) const;
  /// String member with fallback.
  std::string str(std::string_view key, std::string_view fallback = "") const;
};

/// Parses one JSON document (object, array or scalar).
JsonValue parse_json(std::string_view text);

// --- Run reports -----------------------------------------------------------

/// One trace event, decoded from the Chrome JSON this repo emits.
struct ReportEvent {
  char ph = 'X';
  long long ts = 0;
  long long dur = 0;
  long long track = 0;
  std::string name;
  std::map<std::string, long long> args;
};

/// Everything pfar_report extracts from a trace + metrics pair. Either
/// input may be empty; sections derived from the missing half are empty.
struct RunReport {
  struct Link {
    std::string name;        // "u->v"
    long long flits = 0;
    long long dropped_flits = 0;
    long long queue_hwm = 0;
    long long bg_flits = 0;     // background traffic drained on the link
    long long busy_cycles = 0;  // busy_cycles counter, else trace spans
  };
  struct Tree {
    int id = 0;
    long long finish_cycle = -1;
    long long first_delivery = -1;
    bool failed = false;
  };

  long long cycles = 0;
  long long total_elements = 0;
  long long trace_events = 0;
  long long trace_dropped = 0;
  std::vector<Link> links;            // sorted by flits, descending
  std::vector<Tree> trees;            // sorted by id
  std::vector<ReportEvent> timeline;  // fault/recovery events, by ts
  std::vector<ReportEvent> adapt;     // congestion-controller events, by ts
  std::vector<ReportEvent> workload;  // training-replay events, by ts
  std::map<std::string, double> planner_ms;  // phase -> total ms
  std::map<std::string, long long> counters;  // every counter metric
  /// Flow-tier observations ("flow."-prefixed histograms): sim_bw and the
  /// Zhou & Sun rate_upper_bound, rendered next to the cycle summary so a
  /// flow run's bandwidth is read against its analytic ceiling.
  std::map<std::string, double> flow;
};

/// Decodes a Chrome trace JSON document into events. thread_name metadata
/// records are not returned as events; when `track_names` is non-null they
/// land there as track id -> name instead.
std::vector<ReportEvent> parse_trace(
    std::string_view trace_json, long long* dropped = nullptr,
    std::map<long long, std::string>* track_names = nullptr);

/// Builds a report from raw artifact text. Either argument may be empty.
RunReport build_report(std::string_view trace_json,
                       std::string_view metrics_jsonl);

/// Renders the human-readable run report (top-k congested links, tree
/// skew, recovery timeline, planner phases).
void render_report(const RunReport& report, std::ostream& os, int top_k = 10);

// --- Probe-window link statistics -----------------------------------------

/// Per-directed-link congestion statistics over one probe window — the
/// counters SimObserver::finalize emits, re-keyed by link name and joined
/// with the window length. This is the congestion controller's sensor
/// input when it reads a live Metrics registry instead of a SimResult
/// (docs/congestion_adaptation.md, "Probe windows").
struct LinkWindowStats {
  std::string name;  // "u->v", the emitted link label
  long long flits = 0;
  long long bg_flits = 0;
  long long busy_cycles = 0;
  long long queue_hwm = 0;
  long long dropped_flits = 0;
  /// busy_cycles / window cycles, in [0, 1]; 0 when the window length is
  /// unknown (no sim.cycles gauge in the registry).
  double busy_fraction = 0.0;
};

/// The whole probe window: its length in cycles (the sim.cycles gauge; the
/// resilient driver's recovery.total_cycles wins when present, matching
/// build_report) and one entry per link that moved or dropped any flit,
/// sorted by name.
struct LinkWindow {
  long long cycles = 0;
  std::vector<LinkWindowStats> links;
};

/// Extracts per-link window statistics from a metrics registry.
LinkWindow extract_link_windows(const Metrics& metrics);

}  // namespace pfar::obsv
