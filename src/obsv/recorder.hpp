#pragma once

#include <string>

#include "obsv/metrics.hpp"
#include "obsv/trace.hpp"

namespace pfar::obsv {

/// The observability sink one run writes into: a trace (virtual-time event
/// timeline) plus a metrics registry. Attach one to a simulation via
/// SimConfig::recorder and/or to a planner via AllreducePlanner::observer;
/// a null recorder (the default everywhere) records nothing and costs one
/// pointer test per hook in a PFAR_TRACE=on build, and nothing at all in a
/// PFAR_TRACE=off build.
///
/// Single-writer, like its parts: never share one Recorder between
/// concurrently running simulations (a sweep uses one per task or none).
struct Recorder {
  Tracer trace;
  Metrics metrics;

  explicit Recorder(std::size_t trace_capacity = 1u << 16)
      : trace(trace_capacity) {}

  /// Writes the Chrome trace JSON and the metrics JSONL snapshot. Either
  /// path may be empty to skip that output. Throws std::runtime_error when
  /// a path cannot be opened.
  void write_files(const std::string& trace_path,
                   const std::string& metrics_path) const;

  void clear() {
    trace.clear();
    metrics.clear();
  }
};

}  // namespace pfar::obsv
