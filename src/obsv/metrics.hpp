#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pfar::obsv {

/// Registry of named metrics with a deterministic JSONL snapshot export.
///
/// Three kinds, chosen by the first touch of a name (mixing kinds on one
/// name throws):
///  * counter   - monotonically accumulated int64 (`add`);
///  * gauge     - int64 high-water mark (`hwm`), e.g. queue depths;
///  * histogram - double summary (count/sum/min/max) via `observe`, used
///                for wall-clock phase timers and other real-valued samples.
///
/// `write_jsonl` emits one JSON object per line, sorted by metric name, so
/// a snapshot of purely simulation-derived metrics is byte-stable across
/// runs (histograms fed from wall clocks are deterministic in shape, not in
/// value). Like Tracer, a Metrics instance is single-writer.
class Metrics {
 public:
  void add(std::string_view name, long long delta = 1);
  void hwm(std::string_view name, long long value);
  void observe(std::string_view name, double value);

  /// Introspection (0 / empty-histogram defaults when absent).
  long long counter(std::string_view name) const;
  long long gauge(std::string_view name) const;
  long long histogram_count(std::string_view name) const;
  bool contains(std::string_view name) const;
  std::size_t size() const { return entries_.size(); }

  /// Names of every registered metric starting with `prefix` (all names
  /// when empty), in sorted order — the registry's iteration order, so the
  /// result is deterministic.
  std::vector<std::string> names(std::string_view prefix = "") const;

  /// One `{"name":...,"type":"counter|gauge|histogram",...}` object per
  /// line, sorted by name.
  void write_jsonl(std::ostream& os) const;

  void clear() { entries_.clear(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    long long value = 0;     // counter sum / gauge high-water
    long long count = 0;     // histogram samples
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  Entry& touch(std::string_view name, Kind kind);
  const Entry* find(std::string_view name, Kind kind) const;

  std::map<std::string, Entry, std::less<>> entries_;
};

/// RAII wall-clock phase timer: records elapsed milliseconds into a
/// histogram metric on destruction. Null-safe: a null registry makes the
/// timer (and the instrumented scope) free.
class ScopedTimerMs {
 public:
  ScopedTimerMs(Metrics* metrics, std::string_view name)
      : metrics_(metrics),
        name_(name),
        start_(metrics ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimerMs() {
    if (metrics_ == nullptr) return;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    metrics_->observe(name_, ms);
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Metrics* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pfar::obsv
