#include "graph/matching.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace pfar::graph {
namespace {

/// Edmonds blossom matching, array-based contraction variant.
class Blossom {
 public:
  explicit Blossom(const Graph& g)
      : g_(g),
        n_(g.num_vertices()),
        mate_(n_, -1),
        parent_(n_),
        base_(n_),
        q_(),
        used_(n_),
        blossom_(n_) {}

  std::vector<int> solve() {
    for (int v = 0; v < n_; ++v) {
      if (mate_[v] == -1) augment_from(v);
    }
    return mate_;
  }

 private:
  int lowest_common_ancestor(int a, int b) {
    std::vector<char> seen(n_, 0);
    for (;;) {
      a = base_[a];
      seen[a] = 1;
      if (mate_[a] == -1) break;
      a = parent_[mate_[a]];
    }
    for (;;) {
      b = base_[b];
      if (seen[b]) return b;
      b = parent_[mate_[b]];
    }
  }

  void mark_path(int v, int b, int child) {
    while (base_[v] != b) {
      blossom_[base_[v]] = 1;
      blossom_[base_[mate_[v]]] = 1;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  void contract(int root, int u, int v) {
    const int b = lowest_common_ancestor(u, v);
    std::fill(blossom_.begin(), blossom_.end(), 0);
    mark_path(u, b, v);
    mark_path(v, b, u);
    for (int i = 0; i < n_; ++i) {
      if (blossom_[base_[i]]) {
        base_[i] = b;
        if (!used_[i]) {
          used_[i] = 1;
          q_.push(i);
        }
      }
    }
    (void)root;
  }

  int find_augmenting_path(int root) {
    std::fill(used_.begin(), used_.end(), 0);
    std::fill(parent_.begin(), parent_.end(), -1);
    std::iota(base_.begin(), base_.end(), 0);
    while (!q_.empty()) q_.pop();
    used_[root] = 1;
    q_.push(root);
    while (!q_.empty()) {
      const int u = q_.front();
      q_.pop();
      for (int w : g_.neighbors(u)) {
        if (base_[u] == base_[w] || mate_[u] == w) continue;
        if (w == root || (mate_[w] != -1 && parent_[mate_[w]] != -1)) {
          contract(root, u, w);
        } else if (parent_[w] == -1) {
          parent_[w] = u;
          if (mate_[w] == -1) return w;  // augmenting path found
          used_[mate_[w]] = 1;
          q_.push(mate_[w]);
        }
      }
    }
    return -1;
  }

  void augment_from(int root) {
    const int leaf = find_augmenting_path(root);
    if (leaf == -1) return;
    // Flip matched/unmatched edges along the path back to the root.
    int v = leaf;
    while (v != -1) {
      const int pv = parent_[v];
      const int ppv = mate_[pv];
      mate_[v] = pv;
      mate_[pv] = v;
      v = ppv;
    }
  }

  const Graph& g_;
  int n_;
  std::vector<int> mate_;
  std::vector<int> parent_;
  std::vector<int> base_;
  std::queue<int> q_;
  std::vector<char> used_;
  std::vector<char> blossom_;
};

}  // namespace

std::vector<int> maximum_matching(const Graph& g) {
  return Blossom(g).solve();
}

std::vector<int> random_maximal_independent_set(const Graph& g,
                                                util::Rng& rng) {
  const int n = g.num_vertices();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with the deterministic Rng.
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.next_below(i + 1));
    std::swap(order[i], order[j]);
  }
  std::vector<char> blocked(n, 0);
  std::vector<int> chosen;
  for (int v : order) {
    if (blocked[v]) continue;
    chosen.push_back(v);
    blocked[v] = 1;
    for (int w : g.neighbors(v)) blocked[w] = 1;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<int> best_random_independent_set(const Graph& g, util::Rng& rng,
                                             int attempts) {
  std::vector<int> best;
  for (int i = 0; i < attempts; ++i) {
    auto cand = random_maximal_independent_set(g, rng);
    if (cand.size() > best.size()) best = std::move(cand);
  }
  return best;
}

}  // namespace pfar::graph
