#include "graph/matching.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace pfar::graph {
namespace {

/// Edmonds blossom matching, array-based contraction variant.
class Blossom {
 public:
  explicit Blossom(const Graph& g)
      : g_(g),
        n_(g.num_vertices()),
        mate_(static_cast<std::size_t>(n_), -1),
        parent_(static_cast<std::size_t>(n_)),
        base_(static_cast<std::size_t>(n_)),
        q_(),
        used_(static_cast<std::size_t>(n_)),
        blossom_(static_cast<std::size_t>(n_)) {}

  std::vector<int> solve() {
    for (int v = 0; v < n_; ++v) {
      if (mate_[static_cast<std::size_t>(v)] == -1) augment_from(v);
    }
    return mate_;
  }

 private:
  int lowest_common_ancestor(int a, int b) {
    std::vector<char> seen(static_cast<std::size_t>(n_), 0);
    for (;;) {
      a = base_[static_cast<std::size_t>(a)];
      seen[static_cast<std::size_t>(a)] = 1;
      if (mate_[static_cast<std::size_t>(a)] == -1) break;
      a = parent_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(a)])];
    }
    for (;;) {
      b = base_[static_cast<std::size_t>(b)];
      if (seen[static_cast<std::size_t>(b)]) return b;
      b = parent_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(b)])];
    }
  }

  void mark_path(int v, int b, int child) {
    while (base_[static_cast<std::size_t>(v)] != b) {
      blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(v)])] = 1;
      blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(v)])])] = 1;
      parent_[static_cast<std::size_t>(v)] = child;
      child = mate_[static_cast<std::size_t>(v)];
      v = parent_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(v)])];
    }
  }

  void contract(int root, int u, int v) {
    const int b = lowest_common_ancestor(u, v);
    std::fill(blossom_.begin(), blossom_.end(), 0);
    mark_path(u, b, v);
    mark_path(v, b, u);
    for (int i = 0; i < n_; ++i) {
      if (blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(i)])]) {
        base_[static_cast<std::size_t>(i)] = b;
        if (!used_[static_cast<std::size_t>(i)]) {
          used_[static_cast<std::size_t>(i)] = 1;
          q_.push(i);
        }
      }
    }
    (void)root;
  }

  int find_augmenting_path(int root) {
    std::fill(used_.begin(), used_.end(), 0);
    std::fill(parent_.begin(), parent_.end(), -1);
    std::iota(base_.begin(), base_.end(), 0);
    while (!q_.empty()) q_.pop();
    used_[static_cast<std::size_t>(root)] = 1;
    q_.push(root);
    while (!q_.empty()) {
      const int u = q_.front();
      q_.pop();
      for (int w : g_.neighbors(u)) {
        if (base_[static_cast<std::size_t>(u)] == base_[static_cast<std::size_t>(w)] || mate_[static_cast<std::size_t>(u)] == w) continue;
        if (w == root || (mate_[static_cast<std::size_t>(w)] != -1 && parent_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(w)])] != -1)) {
          contract(root, u, w);
        } else if (parent_[static_cast<std::size_t>(w)] == -1) {
          parent_[static_cast<std::size_t>(w)] = u;
          if (mate_[static_cast<std::size_t>(w)] == -1) return w;  // augmenting path found
          used_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(w)])] = 1;
          q_.push(mate_[static_cast<std::size_t>(w)]);
        }
      }
    }
    return -1;
  }

  void augment_from(int root) {
    const int leaf = find_augmenting_path(root);
    if (leaf == -1) return;
    // Flip matched/unmatched edges along the path back to the root.
    int v = leaf;
    while (v != -1) {
      const int pv = parent_[static_cast<std::size_t>(v)];
      const int ppv = mate_[static_cast<std::size_t>(pv)];
      mate_[static_cast<std::size_t>(v)] = pv;
      mate_[static_cast<std::size_t>(pv)] = v;
      v = ppv;
    }
  }

  const Graph& g_;
  int n_;
  std::vector<int> mate_;
  std::vector<int> parent_;
  std::vector<int> base_;
  std::queue<int> q_;
  std::vector<char> used_;
  std::vector<char> blossom_;
};

}  // namespace

std::vector<int> maximum_matching(const Graph& g) {
  return Blossom(g).solve();
}

std::vector<int> random_maximal_independent_set(const Graph& g,
                                                util::Rng& rng) {
  const int n = g.num_vertices();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with the deterministic Rng.
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);
  std::vector<int> chosen;
  for (int v : order) {
    if (blocked[static_cast<std::size_t>(v)]) continue;
    chosen.push_back(v);
    blocked[static_cast<std::size_t>(v)] = 1;
    for (int w : g.neighbors(v)) blocked[static_cast<std::size_t>(w)] = 1;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<int> best_random_independent_set(const Graph& g, util::Rng& rng,
                                             int attempts) {
  std::vector<int> best;
  for (int i = 0; i < attempts; ++i) {
    auto cand = random_maximal_independent_set(g, rng);
    if (cand.size() > best.size()) best = std::move(cand);
  }
  return best;
}

}  // namespace pfar::graph
