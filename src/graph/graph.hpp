#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pfar::graph {

/// Undirected edge with normalized endpoint order (u < v).
struct Edge {
  int u = 0;
  int v = 0;

  Edge() = default;
  Edge(int a, int b) : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Simple undirected graph on vertices [0, n). Self-loops are rejected
/// (PolarFly drops quadric self-loops; callers track them separately).
/// Adjacency lists are kept sorted once `finalize()` is called, giving
/// O(log d) `has_edge` and stable edge ids usable as array indices by the
/// congestion model and the simulator.
class Graph {
 public:
  explicit Graph(int n);

  int num_vertices() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds edge {u, v}; duplicate additions are idempotent after finalize()
  /// only if the caller avoided them — adding the same edge twice throws.
  void add_edge(int u, int v);

  /// Sorts adjacency and builds the edge-id index. Must be called after the
  /// last add_edge and before queries that need edge ids.
  void finalize();

  bool has_edge(int u, int v) const;

  /// Dense id of edge {u, v} in [0, num_edges()); -1 if absent.
  int edge_id(int u, int v) const;

  const Edge& edge(int id) const { return edges_[id]; }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<int>& neighbors(int v) const { return adj_[v]; }
  int degree(int v) const { return static_cast<int>(adj_[v].size()); }

  int min_degree() const;
  int max_degree() const;

  /// BFS hop distances from `src` (-1 for unreachable).
  std::vector<int> bfs_distances(int src) const;

  bool is_connected() const;

  /// Exact diameter via all-sources BFS; -1 if disconnected. O(V*E).
  int diameter() const;

  /// Number of common neighbors of distinct u, v (the number of 2-paths
  /// between them). ER_q must have at most one (Theorem 6.1).
  int common_neighbor_count(int u, int v) const;

 private:
  int n_;
  bool finalized_ = false;
  std::vector<std::vector<int>> adj_;
  std::vector<Edge> edges_;
  // edge -> id lookup: per-u sorted vector of (v, id).
  std::vector<std::vector<std::pair<int, int>>> edge_index_;
};

/// Disjoint-set union with path halving; used for spanning-tree validation.
class UnionFind {
 public:
  explicit UnionFind(int n);
  int find(int x);
  /// Returns false if x and y were already in the same set.
  bool unite(int x, int y);
  int num_components() const { return components_; }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  int components_;
};

}  // namespace pfar::graph
