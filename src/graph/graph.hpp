#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pfar::graph {

/// Undirected edge with normalized endpoint order (u < v).
struct Edge {
  int u = 0;
  int v = 0;

  Edge() = default;
  Edge(int a, int b) : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Lightweight contiguous view over ints (a neighbor row, an edge-id row,
/// a child list). Iterable, indexable, sized — the subset of the
/// std::vector interface the planning code uses.
class IntSpan {
 public:
  IntSpan() = default;
  IntSpan(const int* begin, const int* end) : begin_(begin), end_(end) {}

  const int* begin() const { return begin_; }
  const int* end() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  int operator[](std::size_t i) const { return begin_[i]; }
  int front() const { return *begin_; }
  int back() const { return *(end_ - 1); }

 private:
  const int* begin_ = nullptr;
  const int* end_ = nullptr;
};

/// Simple undirected graph on vertices [0, n). Self-loops are rejected
/// (PolarFly drops quadric self-loops; callers track them separately).
///
/// Storage is two-stage. Before `finalize()` the graph is a mutable edge
/// list plus per-vertex builder adjacency. `finalize()` compacts it into a
/// flat CSR layout — row offsets, a sorted neighbor array, and an aligned
/// per-neighbor edge-id array — plus, when the memory budget allows, a
/// packed bitset adjacency matrix (one cache-friendly row of n bits per
/// vertex). Queries then cost: O(1) `has_edge`, O(log d) `edge_id`,
/// O(n/64) word-parallel `common_neighbor_count`, and stable edge ids
/// (lexicographic rank of the normalized edge) usable as array indices by
/// the congestion model and the simulator.
class Graph {
 public:
  explicit Graph(int n);

  int num_vertices() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Pre-sizes builder storage for `edge_count` more edges of
  /// `degree_hint` expected degree. Purely an optimization — generators
  /// that know their degree (PolarFly: q+1) skip the push_back regrowth.
  void reserve(int edge_count, int degree_hint);

  /// Adds edge {u, v}; duplicate additions are idempotent after finalize()
  /// only if the caller avoided them — adding the same edge twice throws.
  void add_edge(int u, int v);

  /// Builds the CSR layout, the edge-id index and the bitset adjacency.
  /// Must be called after the last add_edge and before queries that need
  /// edge ids. Throws std::logic_error on duplicate edges.
  void finalize();

  bool has_edge(int u, int v) const;

  /// Dense id of edge {u, v} in [0, num_edges()); -1 if absent. Ids are
  /// the lexicographic rank of the normalized edge, as in the seed
  /// implementation (pinned by tests).
  int edge_id(int u, int v) const;

  const Edge& edge(int id) const { return edges_[static_cast<std::size_t>(id)]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Sorted (ascending) neighbor row of v once finalized; insertion-order
  /// builder list before that.
  IntSpan neighbors(int v) const;

  /// Edge ids aligned index-for-index with neighbors(v): the id of edge
  /// {v, neighbors(v)[i]}. Lets hot loops retire the O(log d) edge_id
  /// lookup. Finalized graphs only.
  IntSpan neighbor_edge_ids(int v) const;

  int degree(int v) const;

  int min_degree() const;
  int max_degree() const;

  /// BFS hop distances from `src` (-1 for unreachable).
  std::vector<int> bfs_distances(int src) const;

  bool is_connected() const;

  /// Exact diameter via all-sources BFS; -1 if disconnected. O(V*E).
  int diameter() const;

  /// Number of common neighbors of distinct u, v (the number of 2-paths
  /// between them). ER_q must have at most one (Theorem 6.1). Word-parallel
  /// (AND + popcount over packed rows) when the bitset is resident.
  int common_neighbor_count(int u, int v) const;

  /// True once finalize() materialized the packed adjacency matrix.
  bool has_adjacency_bitset() const { return !bits_.empty(); }

  /// Memory budget for the packed adjacency matrix (process-wide). Graphs
  /// whose n*n bit matrix would exceed the budget skip it and fall back to
  /// binary-search `has_edge` / merge-scan `common_neighbor_count`.
  /// Affects graphs finalized after the call. Returns the previous budget.
  static std::size_t set_max_bitset_bytes(std::size_t bytes);

 private:
  bool bit(int u, int v) const {
    return (bits_[static_cast<std::size_t>(u) * words_per_row_ +
                  static_cast<std::size_t>(v >> 6)] >>
            (v & 63)) &
           1u;
  }

  int n_;
  bool finalized_ = false;
  std::vector<Edge> edges_;
  // Builder stage only; released by finalize().
  std::vector<std::vector<int>> build_adj_;
  // CSR stage: row offsets (n+1), neighbors sorted ascending per row, and
  // the edge id of each (row, neighbor) slot.
  std::vector<int> offsets_;
  std::vector<int> csr_adj_;
  std::vector<int> csr_eid_;
  // Packed adjacency rows (n rows of words_per_row_ 64-bit words); empty
  // when over budget.
  std::vector<std::uint64_t> bits_;
  std::size_t words_per_row_ = 0;
};

/// Disjoint-set union with path halving; used for spanning-tree validation.
class UnionFind {
 public:
  explicit UnionFind(int n);
  int find(int x);
  /// Returns false if x and y were already in the same set.
  bool unite(int x, int y);
  int num_components() const { return components_; }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  int components_;
};

}  // namespace pfar::graph
