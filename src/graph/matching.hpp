#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pfar::graph {

/// Maximum cardinality matching on a general graph (Edmonds' blossom
/// algorithm, O(V^3)). Returns mate[v] = matched partner or -1.
///
/// Used for the edge-disjoint Hamiltonian-path selection of Section 7.3:
/// picking pairwise element-disjoint (d_i, d_j) pairs whose difference is
/// coprime to N is exactly a maximum matching on the "element graph" whose
/// vertices are the q+1 difference-set elements.
std::vector<int> maximum_matching(const Graph& g);

/// A *maximal* (not maximum) independent set chosen greedily in a random
/// vertex order — the paper's Section 7.3 method ("random maximal
/// independent sets ... within 30 random instances"). Returns the chosen
/// vertex ids.
std::vector<int> random_maximal_independent_set(const Graph& g,
                                                util::Rng& rng);

/// Repeats random_maximal_independent_set up to `attempts` times and
/// returns the largest set found (ties: first found).
std::vector<int> best_random_independent_set(const Graph& g, util::Rng& rng,
                                             int attempts);

}  // namespace pfar::graph
