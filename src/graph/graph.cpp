#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pfar::graph {

Graph::Graph(int n) : n_(n), adj_(n), edge_index_(n) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
}

void Graph::add_edge(int u, int v) {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  }
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (finalized_) throw std::logic_error("Graph::add_edge after finalize");
  const Edge e(u, v);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  edges_.push_back(e);
}

void Graph::finalize() {
  for (auto& list : adj_) {
    std::sort(list.begin(), list.end());
    if (std::adjacent_find(list.begin(), list.end()) != list.end()) {
      throw std::logic_error("Graph::finalize: duplicate edge");
    }
  }
  std::sort(edges_.begin(), edges_.end());
  for (int id = 0; id < static_cast<int>(edges_.size()); ++id) {
    edge_index_[edges_[id].u].emplace_back(edges_[id].v, id);
  }
  for (auto& list : edge_index_) std::sort(list.begin(), list.end());
  finalized_ = true;
}

bool Graph::has_edge(int u, int v) const {
  if (u == v) return false;
  const auto& list = adj_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

int Graph::edge_id(int u, int v) const {
  if (!finalized_) throw std::logic_error("Graph::edge_id before finalize");
  const Edge e(u, v);
  const auto& list = edge_index_[e.u];
  const auto it = std::lower_bound(
      list.begin(), list.end(), std::make_pair(e.v, -1));
  if (it != list.end() && it->first == e.v) return it->second;
  return -1;
}

int Graph::min_degree() const {
  int best = n_ == 0 ? 0 : degree(0);
  for (int v = 1; v < n_; ++v) best = std::min(best, degree(v));
  return best;
}

int Graph::max_degree() const {
  int best = 0;
  for (int v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

std::vector<int> Graph::bfs_distances(int src) const {
  std::vector<int> dist(n_, -1);
  std::queue<int> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int w : adj_[u]) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  const auto dist = bfs_distances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int Graph::diameter() const {
  int best = 0;
  for (int v = 0; v < n_; ++v) {
    const auto dist = bfs_distances(v);
    for (int d : dist) {
      if (d < 0) return -1;
      best = std::max(best, d);
    }
  }
  return best;
}

int Graph::common_neighbor_count(int u, int v) const {
  const auto& a = adj_[u];
  const auto& b = adj_[v];
  int count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

UnionFind::UnionFind(int n) : parent_(n), rank_(n, 0), components_(n) {
  for (int i = 0; i < n; ++i) parent_[i] = i;
}

int UnionFind::find(int x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(int x, int y) {
  int rx = find(x), ry = find(y);
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  if (rank_[rx] == rank_[ry]) ++rank_[rx];
  --components_;
  return true;
}

}  // namespace pfar::graph
