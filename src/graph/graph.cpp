#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <queue>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::graph {
namespace {

// Default 64 MiB: enough for the packed rows of every PolarFly radix the
// benches sweep (q = 128 -> n = 16513 -> ~34 MiB) without surprising
// callers that build many graphs at once.
std::atomic<std::size_t> g_max_bitset_bytes{64u << 20};

}  // namespace

std::size_t Graph::set_max_bitset_bytes(std::size_t bytes) {
  return g_max_bitset_bytes.exchange(bytes);
}

Graph::Graph(int n) : n_(n), build_adj_(static_cast<std::size_t>(n)) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
}

void Graph::reserve(int edge_count, int degree_hint) {
  if (finalized_) return;
  if (edge_count > 0) {
    edges_.reserve(edges_.size() + static_cast<std::size_t>(edge_count));
  }
  if (degree_hint > 0) {
    for (auto& row : build_adj_) {
      row.reserve(static_cast<std::size_t>(degree_hint));
    }
  }
}

void Graph::add_edge(int u, int v) {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  }
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (finalized_) throw std::logic_error("Graph::add_edge after finalize");
  build_adj_[static_cast<std::size_t>(u)].push_back(v);
  build_adj_[static_cast<std::size_t>(v)].push_back(u);
  edges_.emplace_back(u, v);
}

void Graph::finalize() {
  // Edge ids are the lexicographic rank of the normalized edge, exactly as
  // in the seed implementation; duplicate edges collide here. Generators
  // that emit edges grouped by ascending first endpoint (PolarFly polar
  // lines, Singer difference sets, ...) only need their short per-vertex
  // runs sorted, which beats a full O(E log E) sort on the hot path.
  const bool grouped = std::is_sorted(
      edges_.begin(), edges_.end(),
      [](const Edge& a, const Edge& b) { return a.u < b.u; });
  if (grouped) {
    auto run = edges_.begin();
    while (run != edges_.end()) {
      auto end = run + 1;
      while (end != edges_.end() && end->u == run->u) ++end;
      std::sort(run, end);
      run = end;
    }
  } else {
    std::sort(edges_.begin(), edges_.end());
  }
  if (std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::logic_error("Graph::finalize: duplicate edge");
  }

  // Counting-sort CSR build. Appending both endpoints of the id-sorted edge
  // list leaves every row sorted ascending: all edges {w, u} with w < u
  // precede all edges {u, v} with v > u in lexicographic order, and each
  // group arrives in increasing order of the other endpoint.
  offsets_.assign(static_cast<std::size_t>(n_ + 1), 0);
  for (const Edge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u + 1)];
    ++offsets_[static_cast<std::size_t>(e.v + 1)];
  }
  for (int v = 0; v < n_; ++v) offsets_[static_cast<std::size_t>(v + 1)] += offsets_[static_cast<std::size_t>(v)];
  csr_adj_.resize(static_cast<std::size_t>(offsets_[static_cast<std::size_t>(n_)]));
  csr_eid_.resize(static_cast<std::size_t>(offsets_[static_cast<std::size_t>(n_)]));
  std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int id = 0; id < static_cast<int>(edges_.size()); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    csr_adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)])] = e.v;
    csr_eid_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = id;
    csr_adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)])] = e.u;
    csr_eid_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = id;
  }

  // Packed adjacency matrix, budget permitting.
  words_per_row_ = static_cast<std::size_t>((n_ + 63) / 64);
  const std::size_t words = words_per_row_ * static_cast<std::size_t>(n_);
  if (n_ > 0 && words * sizeof(std::uint64_t) <= g_max_bitset_bytes.load()) {
    bits_.assign(words, 0);
    for (const Edge& e : edges_) {
      bits_[static_cast<std::size_t>(e.u) * words_per_row_ + static_cast<std::size_t>((e.v >> 6))] |=
          1ull << (e.v & 63);
      bits_[static_cast<std::size_t>(e.v) * words_per_row_ + static_cast<std::size_t>((e.u >> 6))] |=
          1ull << (e.u & 63);
    }
  }

  build_adj_.clear();
  build_adj_.shrink_to_fit();
  finalized_ = true;

  // CSR shape contract: offsets are monotone, cover 2|E| endpoint slots,
  // and every cursor ran exactly to the start of the next row.
  PFAR_ENSURE(offsets_[0] == 0, n_);
  for (int v = 0; v < n_; ++v) {
    PFAR_ENSURE(offsets_[static_cast<std::size_t>(v)] <=
                    offsets_[static_cast<std::size_t>(v + 1)],
                v, n_);
    PFAR_ENSURE(cursor[static_cast<std::size_t>(v)] ==
                    offsets_[static_cast<std::size_t>(v + 1)],
                v, n_);
  }
  PFAR_ENSURE(offsets_[static_cast<std::size_t>(n_)] ==
                  2 * static_cast<int>(edges_.size()),
              n_, edges_.size());

#if PFAR_AUDIT_ENABLED
  for (int v = 0; v < n_; ++v) {
    const auto row = neighbors(v);
    const auto eids = neighbor_edge_ids(v);
    PFAR_INVARIANT(std::is_sorted(row.begin(), row.end()), v);
    PFAR_INVARIANT(
        std::adjacent_find(row.begin(), row.end()) == row.end(), v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      // Edge-id rank contract: eid is the lexicographic rank of the
      // normalized edge, so edges_[eid] must be exactly {min, max}.
      const int w = row[i];
      const int eid = eids[i];
      PFAR_INVARIANT(eid >= 0 && eid < static_cast<int>(edges_.size()), v, w,
                     eid);
      const Edge& e = edges_[static_cast<std::size_t>(eid)];
      PFAR_INVARIANT(e.u == std::min(v, w) && e.v == std::max(v, w), v, w,
                     eid, e.u, e.v);
      // Bitset fast path must agree with the sorted-row fallback.
      if (!bits_.empty()) PFAR_INVARIANT(bit(v, w), v, w);
    }
  }
#endif
}

IntSpan Graph::neighbors(int v) const {
  if (!finalized_) {
    const auto& list = build_adj_[static_cast<std::size_t>(v)];
    return IntSpan(list.data(), list.data() + list.size());
  }
  return IntSpan(csr_adj_.data() + offsets_[static_cast<std::size_t>(v)], csr_adj_.data() + offsets_[static_cast<std::size_t>(v + 1)]);
}

IntSpan Graph::neighbor_edge_ids(int v) const {
  if (!finalized_) {
    throw std::logic_error("Graph::neighbor_edge_ids before finalize");
  }
  return IntSpan(csr_eid_.data() + offsets_[static_cast<std::size_t>(v)], csr_eid_.data() + offsets_[static_cast<std::size_t>(v + 1)]);
}

int Graph::degree(int v) const {
  if (!finalized_) return static_cast<int>(build_adj_[static_cast<std::size_t>(v)].size());
  return offsets_[static_cast<std::size_t>(v + 1)] - offsets_[static_cast<std::size_t>(v)];
}

bool Graph::has_edge(int u, int v) const {
  if (u == v) return false;
  if (!finalized_) {
    const auto& list = build_adj_[static_cast<std::size_t>(u)];
    return std::find(list.begin(), list.end(), v) != list.end();
  }
  if (!bits_.empty()) return bit(u, v);
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

int Graph::edge_id(int u, int v) const {
  if (!finalized_) throw std::logic_error("Graph::edge_id before finalize");
  if (u == v || u < 0 || v < 0 || u >= n_ || v >= n_) return -1;
  const auto row = neighbors(u);
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return -1;
  return csr_eid_[static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]) + static_cast<std::size_t>(it - row.begin())];
}

int Graph::min_degree() const {
  int best = n_ == 0 ? 0 : degree(0);
  for (int v = 1; v < n_; ++v) best = std::min(best, degree(v));
  return best;
}

int Graph::max_degree() const {
  int best = 0;
  for (int v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

std::vector<int> Graph::bfs_distances(int src) const {
  std::vector<int> dist(static_cast<std::size_t>(n_), -1);
  std::vector<int> frontier;
  frontier.reserve(static_cast<std::size_t>(n_));
  dist[static_cast<std::size_t>(src)] = 0;
  frontier.push_back(src);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const int u = frontier[head];
    for (int w : neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  const auto dist = bfs_distances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int Graph::diameter() const {
  int best = 0;
  for (int v = 0; v < n_; ++v) {
    const auto dist = bfs_distances(v);
    for (int d : dist) {
      if (d < 0) return -1;
      best = std::max(best, d);
    }
  }
  return best;
}

int Graph::common_neighbor_count(int u, int v) const {
  if (finalized_ && !bits_.empty()) {
    const std::uint64_t* a = bits_.data() + static_cast<std::size_t>(u) * words_per_row_;
    const std::uint64_t* b = bits_.data() + static_cast<std::size_t>(v) * words_per_row_;
    int count = 0;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      count += std::popcount(a[w] & b[w]);
    }
    return count;
  }
  const auto a = neighbors(u);
  const auto b = neighbors(v);
  int count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

UnionFind::UnionFind(int n) : parent_(static_cast<std::size_t>(n)), rank_(static_cast<std::size_t>(n), 0), components_(n) {
  for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
}

int UnionFind::find(int x) {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    parent_[static_cast<std::size_t>(x)] = parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

bool UnionFind::unite(int x, int y) {
  int rx = find(x), ry = find(y);
  if (rx == ry) return false;
  if (rank_[static_cast<std::size_t>(rx)] < rank_[static_cast<std::size_t>(ry)]) std::swap(rx, ry);
  parent_[static_cast<std::size_t>(ry)] = rx;
  if (rank_[static_cast<std::size_t>(rx)] == rank_[static_cast<std::size_t>(ry)]) ++rank_[static_cast<std::size_t>(rx)];
  --components_;
  return true;
}

}  // namespace pfar::graph
