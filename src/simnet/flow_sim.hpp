#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"

namespace pfar::simnet {

/// Flow-level fluid tier (SimEngine::kFlow, docs/simulation_engine.md).
///
/// Instead of moving flits, the run is integrated analytically in three
/// phases, following the warmup/measure/drain methodology of booksim-style
/// simulators:
///  * warmup — the pipeline-fill latency of each tree (depth hops of link
///    latency) before its stream reaches steady state;
///  * measure — a fluid timeline in which every active tree streams at its
///    max-min fair share of the directed links its VCs cross; whenever a
///    tree exhausts its elements it retires and the remaining rates are
///    recomputed on the freed capacity;
///  * drain — the retired stream's tail still needs depth hops to reach the
///    farthest receiver, which sets the per-tree finish cycle.
///
/// What is exact: per-directed-link flit totals (the same packets cross the
/// same tree links as in the cycle engines), num_vcs and the per-link /
/// per-port VC maxima, total_elements. What is approximate: cycles,
/// per-tree finish/first-delivery cycles and therefore aggregate_bandwidth
/// — validated against the cycle-accurate engines on small q within the
/// tolerances pinned by tests/flow_engine_test.cpp. values_correct is
/// vacuously true (no payloads are simulated). Fault scripts are rejected
/// with std::invalid_argument: losses and recovery are cycle-level
/// phenomena this tier cannot honor.
///
/// This tier never builds the per-VC fabric, so its memory footprint is
/// O(E + trees * N) and it reaches q >= 243 (N ~ 59k routers) where the
/// cycle engines are out of budget.
SimResult run_flow_allreduce(const graph::Graph& topology,
                             const std::vector<TreeEmbedding>& trees,
                             const SimConfig& config,
                             const std::vector<long long>& elements_per_tree);

}  // namespace pfar::simnet
