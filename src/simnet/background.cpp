#include "simnet/background.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace pfar::simnet {
namespace {

constexpr long long kPpm = 1'000'000;

/// Directed link id of hop u -> v, matching the allreduce engines.
std::size_t dlink(const graph::Graph& g, int u, int v) {
  const int e = g.edge_id(u, v);
  return static_cast<std::size_t>(2 * e + (u > v ? 1 : 0));
}

/// The fixed permutation of TrafficConfig/TrafficSimulator, reproduced
/// byte-for-byte (Fisher-Yates over util::Rng, then self-targets bumped to
/// the next node) so a BackgroundTraffic and a TrafficSimulator run with
/// the same seed describe the same pattern.
std::vector<int> pattern_permutation(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(i + 1)))]);
  }
  for (int i = 0; i < n; ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) {
      perm[static_cast<std::size_t>(i)] = (i + 1) % n;
    }
  }
  return perm;
}

}  // namespace

std::vector<long long> background_link_rates_ppm(const graph::Graph& topology,
                                                 const BackgroundTraffic& bg,
                                                 int link_bandwidth) {
  const int n = topology.num_vertices();
  PFAR_REQUIRE(n >= 2, n);
  PFAR_REQUIRE(bg.load >= 0.0 && bg.load < 1.0, bg.load);
  PFAR_REQUIRE(bg.packet_flits >= 1, bg.packet_flits);
  PFAR_REQUIRE(link_bandwidth >= 1, link_bandwidth);
  if (bg.pattern == TrafficPattern::kHotspot) {
    PFAR_REQUIRE(bg.hotspot_node >= 0 && bg.hotspot_node < n, bg.hotspot_node,
                 n);
    PFAR_REQUIRE(bg.hotspot_fraction >= 0.0 && bg.hotspot_fraction <= 1.0,
                 bg.hotspot_fraction);
  }

  std::vector<long long> rates(
      static_cast<std::size_t>(2 * topology.num_edges()), 0);
  if (!bg.active()) return rates;

  // Offered load per source in ppm-flits/cycle, scaled by link bandwidth
  // so load = 0.5 always means "half of one link's capacity".
  const long long load_ppm =
      std::llround(bg.load * static_cast<double>(kPpm)) * link_bandwidth;
  const long long hf_ppm =
      std::llround(bg.hotspot_fraction * static_cast<double>(kPpm));

  std::vector<int> perm;
  if (bg.pattern == TrafficPattern::kPermutation) {
    perm = pattern_permutation(n, bg.seed);
  }

  // Rate src sends toward dst, in ppm-flits/cycle. Integer division of the
  // uniform share drops a sub-ppm remainder per destination — a bounded,
  // deterministic underestimate.
  const auto flow_ppm = [&](int src, int dst) -> long long {
    switch (bg.pattern) {
      case TrafficPattern::kPermutation:
        return perm[static_cast<std::size_t>(src)] == dst ? load_ppm : 0;
      case TrafficPattern::kHotspot: {
        if (src == bg.hotspot_node) return load_ppm / (n - 1);
        const long long hs = load_ppm * hf_ppm / kPpm;
        const long long rest = (load_ppm - hs) / (n - 1);
        return dst == bg.hotspot_node ? hs + rest : rest;
      }
      case TrafficPattern::kUniform:
        return load_ppm / (n - 1);
    }
    return 0;
  };

  // Route every flow over the deterministic minimal next-hop forest toward
  // each destination, accumulating whole subtrees in one pass: after the
  // BFS from dst, process vertices farthest-first and push each vertex's
  // accumulated rate one hop closer to dst.
  std::vector<int> hop(static_cast<std::size_t>(n));
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<int> order(static_cast<std::size_t>(n));
  std::vector<long long> acc(static_cast<std::size_t>(n));
  for (int dst = 0; dst < n; ++dst) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(hop.begin(), hop.end(), -1);
    std::queue<int> frontier;
    dist[static_cast<std::size_t>(dst)] = 0;
    frontier.push(dst);
    int visited = 0;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      order[static_cast<std::size_t>(visited++)] = u;
      for (int w : topology.neighbors(u)) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(u)] + 1;
          hop[static_cast<std::size_t>(w)] = u;
          frontier.push(w);
        }
      }
    }
    PFAR_REQUIRE(visited == n, visited, n);  // connected fabric
    for (int v = 0; v < n; ++v) {
      acc[static_cast<std::size_t>(v)] = v == dst ? 0 : flow_ppm(v, dst);
    }
    // BFS order is nondecreasing in distance, so the reverse is a valid
    // farthest-first schedule: every vertex is finalized before its next
    // hop is read.
    for (int i = n - 1; i >= 1; --i) {
      const int u = order[static_cast<std::size_t>(i)];
      const long long a = acc[static_cast<std::size_t>(u)];
      if (a == 0) continue;
      const int h = hop[static_cast<std::size_t>(u)];
      rates[dlink(topology, u, h)] += a;
      acc[static_cast<std::size_t>(h)] += a;
    }
  }

  // Leave headroom for the collective on every link.
  const long long cap = 900'000LL * link_bandwidth;
  for (auto& r : rates) r = std::min(r, cap);
  return rates;
}

long long background_packets_in(long long cycles, long long rate_ppm,
                                int packet_flits) {
  PFAR_REQUIRE(cycles >= 0 && rate_ppm >= 0 && packet_flits >= 1, cycles,
               rate_ppm, packet_flits);
  return cycles * rate_ppm / (static_cast<long long>(packet_flits) * kPpm);
}

}  // namespace pfar::simnet
