#include <cstdlib>
#include <stdexcept>
#include <string>

#include "simnet/config.hpp"

namespace pfar::simnet {

int default_shard_threads() {
  if (const char* env = std::getenv("PFAR_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

const char* to_string(SimEngine engine) {
  switch (engine) {
    case SimEngine::kFastForward: return "horizon";
    case SimEngine::kReference: return "reference";
    case SimEngine::kFlow: return "flow";
  }
  return "?";
}

SimEngine engine_from_string(const std::string& name) {
  if (name == "horizon" || name == "fastforward") {
    return SimEngine::kFastForward;
  }
  if (name == "reference") return SimEngine::kReference;
  if (name == "flow") return SimEngine::kFlow;
  throw std::invalid_argument(
      "unknown engine '" + name + "' (expected reference|horizon|flow)");
}

}  // namespace pfar::simnet
