#include <cstdlib>
#include <stdexcept>
#include <string>

#include "simnet/config.hpp"

namespace pfar::simnet {

// pfar-lint: allow(contract-coverage) environment query: any value of PFAR_THREADS (or none) is legal; non-positive falls back to 1
int default_shard_threads() {
  if (const char* env = std::getenv("PFAR_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
    const int n = std::atoi(env);  // NOLINT(cert-err34-c)
    if (n > 0) return n;
  }
  return 1;
}

// pfar-lint: allow(contract-coverage) total switch over the enum; the "?" fallthrough is the documented answer for out-of-range values
const char* to_string(SimEngine engine) {
  switch (engine) {
    case SimEngine::kFastForward: return "horizon";
    case SimEngine::kReference: return "reference";
    case SimEngine::kFlow: return "flow";
  }
  return "?";
}

// pfar-lint: allow(contract-coverage) parser: rejecting an unknown name via std::invalid_argument IS the contract (CLI flags arrive here raw)
SimEngine engine_from_string(const std::string& name) {
  if (name == "horizon" || name == "fastforward") {
    return SimEngine::kFastForward;
  }
  if (name == "reference") return SimEngine::kReference;
  if (name == "flow") return SimEngine::kFlow;
  throw std::invalid_argument(
      "unknown engine '" + name + "' (expected reference|horizon|flow)");
}

}  // namespace pfar::simnet
