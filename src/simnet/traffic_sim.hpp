#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "simnet/config.hpp"  // TrafficPattern (shared with BackgroundTraffic)
#include "util/rng.hpp"

namespace pfar::simnet {

/// Routing discipline.
enum class Routing {
  /// Deterministic shortest path (on PolarFly the 2-hop path is *unique*
  /// by Theorem 6.1, so minimal routing has no path diversity at all).
  kMinimal,
  /// Valiant load balancing: route minimally to a uniformly random
  /// intermediate node, then minimally to the destination. Doubles the
  /// path length but spreads adversarial patterns.
  kValiant,
};

/// Configuration of the packet-granularity virtual cut-through network
/// simulator (Section 4.4's router substrate, exercised with ordinary
/// unicast traffic instead of collective dataflow; supports the Section
/// 1.3 positioning of PolarFly as a low-diameter network).
struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniform;
  Routing routing = Routing::kMinimal;
  /// Offered load: packet-generation probability per node per cycle.
  double injection_rate = 0.1;
  /// Packet length in flits; a packet occupies a link for this many cycles.
  int packet_flits = 4;
  /// Input buffer capacity per port, in packets (credit-based).
  int buffer_packets = 8;
  /// Wire latency per hop in cycles.
  int link_latency = 1;
  /// Target of the concentrated fraction under kHotspot. Must name a
  /// vertex of the simulated topology; run() rejects out-of-range ids
  /// through the contract layer instead of wrapping silently.
  int hotspot_node = 0;
  /// Fraction of traffic aimed at hotspot_node under kHotspot.
  double hotspot_fraction = 0.2;
  long long warmup_cycles = 3000;
  /// Stop after this many packets have been delivered post-warmup.
  long long measure_packets = 20000;
  long long max_cycles = 2'000'000;
  std::uint64_t seed = 1;
};

/// Measured behaviour at one offered load.
struct TrafficResult {
  /// Delivered packets per node per cycle during measurement (throughput).
  double throughput = 0.0;
  /// Average end-to-end packet latency (generation to ejection), cycles.
  double avg_latency = 0.0;
  /// 99th-percentile latency.
  long long p99_latency = 0;
  /// Average hop count of delivered packets.
  double avg_hops = 0.0;
  long long delivered = 0;
  /// True if the run hit max_cycles before delivering measure_packets —
  /// the network is saturated at this load.
  bool saturated = false;
};

/// Cycle-level simulator of an input-queued virtual cut-through router
/// network on an arbitrary topology: per-input-port packet FIFOs with
/// credit flow control, round-robin output arbitration, deterministic
/// shortest-path routing (lowest-id next hop; on PolarFly the 2-hop path
/// is unique by Theorem 6.1, so minimal routing is structural).
class TrafficSimulator {
 public:
  explicit TrafficSimulator(const graph::Graph& topology);

  TrafficResult run(const TrafficConfig& config) const;

 private:
  const graph::Graph& topology_;
  // next_hop_[dst * n + src]: neighbor of src toward dst.
  std::vector<int> next_hop_;
};

}  // namespace pfar::simnet
