#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "simnet/config.hpp"

namespace pfar::simnet {

/// Steady-state background load per *directed* link, in parts-per-million
/// of a flit per cycle (1'000'000 = one flit/cycle). Index: directed link
/// id `2 * edge_id + (src > dst)`, the same encoding the allreduce engines
/// use for their token buckets.
///
/// The pattern's (src, dst) flow matrix is routed over deterministic
/// minimal paths — the identical per-destination BFS next-hop choice
/// TrafficSimulator builds (first discovery in ascending-neighbor order) —
/// and each flow's offered rate accumulates onto every directed link of
/// its path. All arithmetic is integer (ppm), so the result is exact and
/// machine-independent; the engines replay it as a deterministic drain
/// sequence (docs/congestion_adaptation.md, "Determinism").
///
/// Per-link rates are clamped to 90% of the directed link's capacity
/// (`900'000 * link_bandwidth` ppm) so an oversubscribed pattern degrades
/// the collective instead of starving it outright.
std::vector<long long> background_link_rates_ppm(const graph::Graph& topology,
                                                 const BackgroundTraffic& bg,
                                                 int link_bandwidth);

/// Whole background packets drained by a link of rate `rate_ppm` over its
/// first `cycles` serviced cycles: floor(cycles * rate_ppm / (packet_flits
/// * 1e6)). This closed form telescopes exactly over the engines' per-cycle
/// accumulator (acc += rate; drain acc / pkt_ppm packets), which is what
/// makes sharded and fast-forwarded runs agree bit-for-bit with the
/// reference engine on background accounting.
long long background_packets_in(long long cycles, long long rate_ppm,
                                int packet_flits);

}  // namespace pfar::simnet
