#include "simnet/deadlock_check.hpp"

#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::simnet {
namespace {

// Resource node kinds in the dependency graph, per (tree, vertex):
//   reduce VC (toward parent), bcast VC (from parent), root turnaround.
enum Kind { kReduceVc = 0, kBcastVc = 1, kTurnaround = 2 };

}  // namespace

DeadlockCheckResult check_deadlock_free(
    const graph::Graph& topology, const std::vector<TreeEmbedding>& trees,
    Collective collective) {
  const int n = topology.num_vertices();
  const int num_trees = static_cast<int>(trees.size());
  // The dense (tree, vertex, kind) id space must fit in int.
  PFAR_REQUIRE(3LL * n * num_trees <= std::numeric_limits<int>::max(), n,
               num_trees);
  const bool want_reduce = collective != Collective::kBroadcast;
  const bool want_bcast = collective != Collective::kReduce;

  // Dense ids: (tree, vertex, kind) -> 3 * (t * n + v) + kind.
  const auto rid = [n](int t, int v, Kind k) {
    return 3 * (static_cast<int>(t) * n + v) + static_cast<int>(k);
  };
  const int total = 3 * n * num_trees;
  std::vector<std::vector<int>> wait_for(static_cast<std::size_t>(total));
  std::vector<char> present(static_cast<std::size_t>(total), 0);

  DeadlockCheckResult result;
  for (int t = 0; t < num_trees; ++t) {
    const auto& tree = trees[static_cast<std::size_t>(t)];
    if (static_cast<int>(tree.parent.size()) != n) {
      throw std::invalid_argument("check_deadlock_free: tree size mismatch");
    }
    for (int v = 0; v < n; ++v) {
      const int parent = tree.parent[static_cast<std::size_t>(v)];
      if (v == tree.root) {
        if (want_reduce && want_bcast) present[static_cast<std::size_t>(rid(t, v, kTurnaround))] = 1;
        continue;
      }
      if (want_reduce) present[static_cast<std::size_t>(rid(t, v, kReduceVc))] = 1;
      if (want_bcast) present[static_cast<std::size_t>(rid(t, v, kBcastVc))] = 1;
      // Draining v's reduce VC (held at parent) requires emitting into the
      // parent's own upward VC — or the turnaround at the root.
      if (want_reduce) {
        if (parent == tree.root) {
          if (want_bcast) {
            wait_for[static_cast<std::size_t>(rid(t, v, kReduceVc))].push_back(
                rid(t, parent, kTurnaround));
          }
        } else {
          wait_for[static_cast<std::size_t>(rid(t, v, kReduceVc))].push_back(
              rid(t, parent, kReduceVc));
        }
      }
      // Draining the broadcast VC into v requires credit on each of v's
      // children's broadcast VCs.
      if (want_bcast) {
        for (int c = 0; c < n; ++c) {
          if (tree.parent[static_cast<std::size_t>(c)] == v) {
            wait_for[static_cast<std::size_t>(rid(t, v, kBcastVc))].push_back(rid(t, c, kBcastVc));
          }
        }
      }
    }
    // The turnaround drains into the root's children's broadcast VCs.
    if (want_reduce && want_bcast) {
      for (int c = 0; c < n; ++c) {
        if (tree.parent[static_cast<std::size_t>(c)] == tree.root) {
          wait_for[static_cast<std::size_t>(rid(t, tree.root, kTurnaround))].push_back(
              rid(t, c, kBcastVc));
        }
      }
    }
  }

  for (int r = 0; r < total; ++r) {
    if (present[static_cast<std::size_t>(r)]) ++result.resources;
    result.dependencies += static_cast<int>(wait_for[static_cast<std::size_t>(r)].size());
  }

  // Cycle detection via iterative three-color DFS.
  std::vector<char> color(static_cast<std::size_t>(total), 0);  // 0 white, 1 gray, 2 black
  for (int start = 0; start < total; ++start) {
    if (!present[static_cast<std::size_t>(start)] || color[static_cast<std::size_t>(start)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack{{start, 0}};
    color[static_cast<std::size_t>(start)] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx < wait_for[static_cast<std::size_t>(node)].size()) {
        const int next = wait_for[static_cast<std::size_t>(node)][idx++];
        if (color[static_cast<std::size_t>(next)] == 1) {
          result.cycle_witness = next;
          result.deadlock_free = false;
          return result;
        }
        if (color[static_cast<std::size_t>(next)] == 0) {
          color[static_cast<std::size_t>(next)] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        color[static_cast<std::size_t>(node)] = 2;
        stack.pop_back();
      }
    }
  }
  result.deadlock_free = true;
  return result;
}

}  // namespace pfar::simnet
