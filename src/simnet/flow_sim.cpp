#include "simnet/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/congestion_model.hpp"
#include "obsv/recorder.hpp"
#include "simnet/background.hpp"

namespace pfar::simnet {
namespace {

// Depth (hops from the root) of every node of one tree, by memoized
// parent-chain walking; returns the tree depth (deepest node).
int tree_depth(const std::vector<int>& parent, int root, int n,
               std::vector<int>& depth_scratch) {
  std::vector<int>& depth = depth_scratch;
  depth.assign(static_cast<std::size_t>(n), -1);
  depth[static_cast<std::size_t>(root)] = 0;
  int deepest = 0;
  std::vector<int> chain;
  for (int v = 0; v < n; ++v) {
    int u = v;
    chain.clear();
    while (depth[static_cast<std::size_t>(u)] < 0) {
      chain.push_back(u);
      u = parent[static_cast<std::size_t>(u)];
      if (u < 0) {
        throw std::invalid_argument("flow tier: node with no path to root");
      }
    }
    int d = depth[static_cast<std::size_t>(u)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[static_cast<std::size_t>(*it)] = ++d;
    }
    deepest = std::max(deepest, d);
  }
  return deepest;
}

}  // namespace

// pfar-lint: allow(contract-coverage) fault-script and tree validation happens via the std::invalid_argument throws below (tests/flow_engine_test.cpp pins the messages)
SimResult run_flow_allreduce(const graph::Graph& topology,
                             const std::vector<TreeEmbedding>& trees,
                             const SimConfig& config,
                             const std::vector<long long>& elements_per_tree) {
  if (!config.faults.empty()) {
    // Contract message names every offending SimConfig::faults field so the
    // caller knows exactly what to clear (tests/flow_engine_test.cpp).
    std::string offending;
    if (!config.faults.events.empty()) {
      offending += "faults.events (" +
                   std::to_string(config.faults.events.size()) +
                   " scheduled link event" +
                   (config.faults.events.size() == 1 ? "" : "s") + ")";
    }
    if (!config.faults.flaky_links.empty()) {
      if (!offending.empty()) offending += ", ";
      offending += "faults.flaky_links (" +
                   std::to_string(config.faults.flaky_links.size()) +
                   " link" + (config.faults.flaky_links.size() == 1 ? "" : "s") +
                   ", flaky_drop_permille=" +
                   std::to_string(config.faults.flaky_drop_permille) + ")";
    }
    throw std::invalid_argument(
        "SimEngine::kFlow cannot honor fault scripts (faults are cycle-level "
        "phenomena); offending SimConfig fields: " + offending +
        "; clear them or use the reference or horizon engine");
  }
  const int n = topology.num_vertices();
  const int num_trees = static_cast<int>(trees.size());
  const int num_dlinks = 2 * topology.num_edges();
  const Collective mode = config.collective;
  const bool want_reduce = mode != Collective::kBroadcast;
  const bool want_bcast = mode != Collective::kReduce;

  SimResult result;
  result.values_correct = true;
  result.tree_finish_cycle.assign(static_cast<std::size_t>(num_trees), 0);
  result.tree_first_delivery.assign(static_cast<std::size_t>(num_trees), -1);
  result.tree_failed.assign(static_cast<std::size_t>(num_trees), 0);
  result.tree_fail_cycle.assign(static_cast<std::size_t>(num_trees), -1);
  result.tree_completed.assign(static_cast<std::size_t>(num_trees), 0);
  result.link_flits.assign(static_cast<std::size_t>(num_dlinks), 0);
  result.link_queue_hwm.assign(static_cast<std::size_t>(num_dlinks), 0);
  result.link_bg_flits.assign(static_cast<std::size_t>(num_dlinks), 0);
  result.link_dropped_flits.assign(static_cast<std::size_t>(num_dlinks), 0);

  const auto dlink_of = [&](int src, int dst) {
    return 2 * topology.edge_id(src, dst) + (src > dst ? 1 : 0);
  };

  // Structural pass: the VC each tree would place on each directed link.
  // Exactly build_fabric's VC population, without the per-VC buffers —
  // num_vcs and the per-link / per-port maxima come out identical to the
  // cycle engines (pinned by tests/flow_engine_test.cpp).
  const int vcs_per_tree =
      ((want_reduce ? 1 : 0) + (want_bcast ? 1 : 0)) * (n - 1);
  std::vector<std::int64_t> tree_dlink_base(
      static_cast<std::size_t>(num_trees) + 1, 0);
  for (int t = 0; t < num_trees; ++t) {
    tree_dlink_base[static_cast<std::size_t>(t) + 1] =
        tree_dlink_base[static_cast<std::size_t>(t)] + vcs_per_tree;
  }
  std::vector<std::int32_t> tree_dlinks(
      static_cast<std::size_t>(tree_dlink_base[static_cast<std::size_t>(num_trees)]));
  std::vector<std::int32_t> vcs_on_dlink(static_cast<std::size_t>(num_dlinks),
                                         0);
  std::vector<std::int32_t> reduces_on_dlink(
      static_cast<std::size_t>(num_dlinks), 0);
  std::vector<int> depth(static_cast<std::size_t>(num_trees), 0);
  std::vector<int> depth_scratch;
  for (int t = 0; t < num_trees; ++t) {
    const auto& tree = trees[static_cast<std::size_t>(t)];
    depth[static_cast<std::size_t>(t)] =
        tree_depth(tree.parent, tree.root, n, depth_scratch);
    std::int64_t out = tree_dlink_base[static_cast<std::size_t>(t)];
    for (int v = 0; v < n; ++v) {
      const int p = tree.parent[static_cast<std::size_t>(v)];
      if (p < 0) continue;
      if (want_reduce) {
        const int d = dlink_of(v, p);
        tree_dlinks[static_cast<std::size_t>(out++)] =
            static_cast<std::int32_t>(d);
        ++vcs_on_dlink[static_cast<std::size_t>(d)];
        ++reduces_on_dlink[static_cast<std::size_t>(d)];
      }
      if (want_bcast) {
        const int d = dlink_of(p, v);
        tree_dlinks[static_cast<std::size_t>(out++)] =
            static_cast<std::int32_t>(d);
        ++vcs_on_dlink[static_cast<std::size_t>(d)];
      }
    }
  }
  result.num_vcs = static_cast<int>(
      static_cast<long long>(vcs_per_tree) * num_trees);
  for (int d = 0; d < num_dlinks; ++d) {
    result.max_vcs_per_link =
        std::max(result.max_vcs_per_link,
                 static_cast<int>(vcs_on_dlink[static_cast<std::size_t>(d)]));
    result.max_reductions_per_input_port = std::max(
        result.max_reductions_per_input_port,
        static_cast<int>(reduces_on_dlink[static_cast<std::size_t>(d)]));
  }

  // Exact flit accounting: every VC of tree t carries its full stream once
  // — m_t payload flits plus one header per packet — exactly as in the
  // cycle engines.
  const int header = config.packet_header_flits;
  const int payload = config.packet_payload;
  long long total_target = 0;
  for (int t = 0; t < num_trees; ++t) {
    const long long m = elements_per_tree[static_cast<std::size_t>(t)];
    if (m < 0) throw std::invalid_argument("run: negative element count");
    result.total_elements += m;
    total_target += m;
    result.tree_completed[static_cast<std::size_t>(t)] = m;
    if (m == 0) continue;
    const long long flits = m + (m + payload - 1) / payload * header;
    for (std::int64_t i = tree_dlink_base[static_cast<std::size_t>(t)];
         i < tree_dlink_base[static_cast<std::size_t>(t) + 1]; ++i) {
      result.link_flits[static_cast<std::size_t>(
          tree_dlinks[static_cast<std::size_t>(i)])] += flits;
    }
  }
  if (total_target == 0) return result;

  // --- Measure phase: fluid timeline. Each active tree streams at its
  // max-min fair flit rate (progressive filling: all rates rise together,
  // a saturated link freezes the trees crossing it, the rest continue on
  // the residual capacity — the fluid limit of the engines' round-robin
  // link arbitration). When a tree runs out of elements it retires and the
  // survivors' rates are recomputed on the freed links.
  const double bandwidth = static_cast<double>(config.link_bandwidth);
  const double efficiency =
      static_cast<double>(payload) / static_cast<double>(payload + header);
  // Background traffic (SimConfig::background) occupies part of each
  // directed link's capacity: the fluid limit of the cycle engines'
  // deterministic drain is simply a per-link capacity reduction by the
  // steady-state rate. On a quiet network every entry equals `bandwidth`
  // exactly, so the floating-point trajectory below is bit-identical to
  // the pre-background flow tier.
  std::vector<long long> bg_rates_ppm;
  if (config.background.active()) {
    bg_rates_ppm = background_link_rates_ppm(topology, config.background,
                                             config.link_bandwidth);
  }
  std::vector<double> cap(static_cast<std::size_t>(num_dlinks), bandwidth);
  if (!bg_rates_ppm.empty()) {
    for (int d = 0; d < num_dlinks; ++d) {
      cap[static_cast<std::size_t>(d)] =
          bandwidth -
          static_cast<double>(bg_rates_ppm[static_cast<std::size_t>(d)]) / 1e6;
    }
  }
  std::vector<std::int32_t> users(static_cast<std::size_t>(num_dlinks), 0);
  std::vector<double> fixed_load(static_cast<std::size_t>(num_dlinks), 0.0);
  std::vector<std::int32_t> touched;
  std::vector<char> done;
  const auto maxmin_rates = [&](const std::vector<int>& act,
                                std::vector<double>& rate) {
    touched.clear();
    for (int t : act) {
      for (std::int64_t i = tree_dlink_base[static_cast<std::size_t>(t)];
           i < tree_dlink_base[static_cast<std::size_t>(t) + 1]; ++i) {
        const std::int32_t d = tree_dlinks[static_cast<std::size_t>(i)];
        if (users[static_cast<std::size_t>(d)]++ == 0) touched.push_back(d);
      }
    }
    done.assign(act.size(), 0);
    int remaining = static_cast<int>(act.size());
    // A tree with no links (single-node topology) streams at link rate.
    for (std::size_t i = 0; i < act.size(); ++i) {
      const int t = act[i];
      if (tree_dlink_base[static_cast<std::size_t>(t)] ==
          tree_dlink_base[static_cast<std::size_t>(t) + 1]) {
        rate[static_cast<std::size_t>(t)] = bandwidth;
        done[i] = 1;
        --remaining;
      }
    }
    double level = 0.0;
    const double eps = 1e-9 * bandwidth;
    while (remaining > 0) {
      double delta = std::numeric_limits<double>::infinity();
      for (std::int32_t d : touched) {
        const std::size_t di = static_cast<std::size_t>(d);
        if (users[di] == 0) continue;
        delta = std::min(delta, (cap[di] - fixed_load[di]) /
                                        static_cast<double>(users[di]) -
                                    level);
      }
      level += std::max(delta, 0.0);
      int fixed_this_round = 0;
      for (std::size_t i = 0; i < act.size(); ++i) {
        if (done[i]) continue;
        const int t = act[i];
        bool saturated = false;
        for (std::int64_t k = tree_dlink_base[static_cast<std::size_t>(t)];
             k < tree_dlink_base[static_cast<std::size_t>(t) + 1]; ++k) {
          const std::size_t di = static_cast<std::size_t>(
              tree_dlinks[static_cast<std::size_t>(k)]);
          if (cap[di] - fixed_load[di] -
                  level * static_cast<double>(users[di]) <=
              eps * static_cast<double>(users[di])) {
            saturated = true;
            break;
          }
        }
        if (!saturated) continue;
        done[i] = 1;
        --remaining;
        ++fixed_this_round;
        rate[static_cast<std::size_t>(t)] = level;
        for (std::int64_t k = tree_dlink_base[static_cast<std::size_t>(t)];
             k < tree_dlink_base[static_cast<std::size_t>(t) + 1]; ++k) {
          const std::size_t di = static_cast<std::size_t>(
              tree_dlinks[static_cast<std::size_t>(k)]);
          --users[di];
          fixed_load[di] += level;
        }
      }
      if (fixed_this_round == 0) {
        // Numerical fallback: freeze everything left at the current level.
        for (std::size_t i = 0; i < act.size(); ++i) {
          if (!done[i]) rate[static_cast<std::size_t>(act[i])] = level;
        }
        remaining = 0;
      }
    }
    for (std::int32_t d : touched) {
      users[static_cast<std::size_t>(d)] = 0;
      fixed_load[static_cast<std::size_t>(d)] = 0.0;
    }
  };

  std::vector<double> rate(static_cast<std::size_t>(num_trees), 0.0);
  std::vector<double> rem(static_cast<std::size_t>(num_trees), 0.0);
  std::vector<double> stream_end(static_cast<std::size_t>(num_trees), 0.0);
  std::vector<int> active, still_active;
  for (int t = 0; t < num_trees; ++t) {
    const long long m = elements_per_tree[static_cast<std::size_t>(t)];
    if (m > 0) {
      rem[static_cast<std::size_t>(t)] = static_cast<double>(m);
      active.push_back(t);
    }
  }
  double clock = 0.0;
  while (!active.empty()) {
    maxmin_rates(active, rate);
    double dt = std::numeric_limits<double>::infinity();
    for (int t : active) {
      dt = std::min(dt, rem[static_cast<std::size_t>(t)] /
                            (rate[static_cast<std::size_t>(t)] * efficiency));
    }
    still_active.clear();
    for (int t : active) {
      const std::size_t ti = static_cast<std::size_t>(t);
      const double need = rem[ti] / (rate[ti] * efficiency);
      if (need <= dt * (1.0 + 1e-12)) {
        stream_end[ti] = clock + need;  // retired: stream fully injected
      } else {
        rem[ti] -= rate[ti] * efficiency * dt;
        still_active.push_back(t);
      }
    }
    clock += dt;
    active.swap(still_active);
  }

  // --- Warmup + drain: at full pipeline the per-hop lead of a packet is
  // the wire latency (serialization of the next hop overlaps it; the
  // engines forward an arrival in the same cycle it lands), never less
  // than one cycle. The stream tail therefore drains through `depth` hops
  // per phase after the last element leaves the injection frontier, plus
  // one root-turnaround cycle; the first element shows the same per-hop
  // lead on its way to the root.
  const long long hop_lead =
      static_cast<long long>(std::max(config.link_latency, 1));
  const int drain_phases =
      (mode == Collective::kAllreduce) ? 2 : 1;
  for (int t = 0; t < num_trees; ++t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    if (elements_per_tree[ti] == 0) continue;
    const long long fill =
        static_cast<long long>(depth[ti]) * hop_lead * drain_phases;
    const long long finish =
        static_cast<long long>(std::ceil(stream_end[ti])) + fill + 1;
    result.tree_finish_cycle[ti] = finish;
    result.tree_first_delivery[ti] =
        mode == Collective::kBroadcast
            ? 0
            : static_cast<long long>(depth[ti]) * hop_lead;
    result.cycles = std::max(result.cycles, finish);
  }
  if (result.cycles > config.max_cycles) {
    throw std::runtime_error("AllreduceSimulator: cycle limit exceeded");
  }
  result.aggregate_bandwidth = static_cast<double>(result.total_elements) /
                               static_cast<double>(result.cycles);
  if (!bg_rates_ppm.empty()) {
    // Same closed form the cycle engines telescope to (background.hpp).
    for (int d = 0; d < num_dlinks; ++d) {
      const long long flits =
          background_packets_in(result.cycles,
                                bg_rates_ppm[static_cast<std::size_t>(d)],
                                config.background.packet_flits) *
          config.background.packet_flits;
      result.link_bg_flits[static_cast<std::size_t>(d)] = flits;
      result.background_flits += flits;
    }
    result.background_packets =
        result.background_flits / config.background.packet_flits;
  }

  // Flow-tier observability: the run-level metrics the report renders,
  // including the Zhou & Sun rate bound as the optimality yardstick.
  if constexpr (obsv::kTraceCompiled) {
    if (config.recorder != nullptr) {
      obsv::Recorder* rec = config.recorder;
      obsv::Metrics& m = rec->metrics;
      m.hwm("sim.cycles", result.cycles);
      m.add("sim.total_elements", result.total_elements);
      m.observe("flow.sim_bw", result.aggregate_bandwidth);
      m.observe("flow.rate_upper_bound",
                model::allreduce_rate_upper_bound(topology, bandwidth));
      rec->trace.name_track(obsv::kTrackSim, "sim");
      const std::uint32_t n_flow = rec->trace.intern("flow");
      for (int t = 0; t < num_trees; ++t) {
        const std::size_t ti = static_cast<std::size_t>(t);
        const std::uint32_t track =
            obsv::kTrackTreeBase + static_cast<std::uint32_t>(t);
        rec->trace.name_track(track, "tree " + std::to_string(t));
        const std::string prefix = "tree." + std::to_string(t);
        m.hwm(prefix + ".finish_cycle", result.tree_finish_cycle[ti]);
        if (result.tree_first_delivery[ti] >= 0) {
          m.hwm(prefix + ".first_delivery", result.tree_first_delivery[ti]);
          rec->trace.complete(
              result.tree_first_delivery[ti],
              result.tree_finish_cycle[ti] - result.tree_first_delivery[ti] +
                  1,
              n_flow, track);
        }
        m.add(prefix + ".completed", result.tree_completed[ti]);
      }
    }
  }
  return result;
}

}  // namespace pfar::simnet
