#include "simnet/traffic_sim.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::simnet {
namespace {

struct Packet {
  int dst = 0;
  int via = -1;  // Valiant intermediate; -1 once (or if never) reached
  long long generated = 0;
  int hops = 0;
  bool measured = false;
};

// One input port: a FIFO of parked packets plus the in-flight pipeline of
// packets still traversing the upstream link.
struct Port {
  std::deque<Packet> fifo;
  std::deque<std::pair<long long, Packet>> inflight;
};

}  // namespace

TrafficSimulator::TrafficSimulator(const graph::Graph& topology)
    : topology_(topology) {
  const int n = topology_.num_vertices();
  if (n < 2 || !topology_.is_connected()) {
    throw std::invalid_argument("TrafficSimulator: need a connected graph");
  }
  next_hop_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
  for (int dst = 0; dst < n; ++dst) {
    auto* hop = &next_hop_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n)];
    std::queue<int> frontier;
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    dist[static_cast<std::size_t>(dst)] = 0;
    frontier.push(dst);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int w : topology_.neighbors(u)) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
          hop[w] = u;
          frontier.push(w);
        }
      }
    }
  }
  // Connectivity (checked above) means every src != dst pair routed: the
  // only -1 entries left are the dst == src diagonal.
  for (std::size_t i = 0; i < next_hop_.size(); ++i) {
    PFAR_ENSURE(next_hop_[i] >= 0 ||
                    i % static_cast<std::size_t>(n) ==
                        i / static_cast<std::size_t>(n),
                i, n);
  }
}

// pfar-lint: allow(contract-coverage) the config is validated via the std::invalid_argument throw on entry; rate/size bounds are the API contract
TrafficResult TrafficSimulator::run(const TrafficConfig& config) const {
  if (config.injection_rate < 0.0 || config.injection_rate > 1.0 ||
      config.packet_flits < 1 || config.buffer_packets < 1 ||
      config.link_latency < 0) {
    throw std::invalid_argument("TrafficSimulator: bad config");
  }
  const int n = topology_.num_vertices();
  // The hotspot target must name a vertex; a wrapped or clamped id would
  // silently measure a different hotspot, so reject through the contract
  // layer (regression-tested in tests/traffic_test.cpp).
  if (config.pattern == TrafficPattern::kHotspot) {
    PFAR_REQUIRE(config.hotspot_node >= 0 && config.hotspot_node < n,
                 config.hotspot_node, n);
  }
  util::Rng rng(config.seed);

  // Fixed permutation targets (derangement-ish: re-draw self-targets).
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i + 1)))]);
  }
  for (int i = 0; i < n; ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) perm[static_cast<std::size_t>(i)] = (i + 1) % n;
  }

  const auto pick_destination = [&](int src) {
    switch (config.pattern) {
      case TrafficPattern::kPermutation:
        return perm[static_cast<std::size_t>(src)];
      case TrafficPattern::kHotspot:
        if (src != config.hotspot_node &&
            rng.next_double() < config.hotspot_fraction) {
          return config.hotspot_node;
        }
        [[fallthrough]];
      case TrafficPattern::kUniform: {
        int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
        if (dst >= src) ++dst;  // uniform over others
        return dst;
      }
    }
    return (src + 1) % n;
  };

  // Ports: for each node, one input port per incoming neighbor link plus
  // one injection port (index = degree). Port lookup by (node, from).
  std::vector<std::vector<Port>> ports(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> from_index(static_cast<std::size_t>(n));  // neighbor rank lookup
  // Flat port ids (port_base[v] + p) for the event wheel.
  std::vector<int> port_base(static_cast<std::size_t>(n + 1), 0);
  for (int v = 0; v < n; ++v) {
    ports[static_cast<std::size_t>(v)].resize(static_cast<std::size_t>(topology_.degree(v) + 1));
    port_base[static_cast<std::size_t>(v + 1)] = port_base[static_cast<std::size_t>(v)] + static_cast<int>(ports[static_cast<std::size_t>(v)].size());
    from_index[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(n), -1);
    const auto& nbrs = topology_.neighbors(v);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      from_index[static_cast<std::size_t>(v)][static_cast<std::size_t>(nbrs[static_cast<std::size_t>(i)])] = i;
    }
  }
  std::vector<int> port_owner(static_cast<std::size_t>(port_base[static_cast<std::size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    for (int p = port_base[static_cast<std::size_t>(v)]; p < port_base[static_cast<std::size_t>(v + 1)]; ++p) port_owner[static_cast<std::size_t>(p)] = v;
  }
  // Unbounded source queues (latency includes source queueing, the
  // standard open-loop measurement methodology).
  std::vector<std::deque<Packet>> source(static_cast<std::size_t>(n));
  // Credits toward each (node, input port).
  std::vector<std::vector<int>> credits(static_cast<std::size_t>(n));
  std::vector<std::vector<std::deque<long long>>> credit_return(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    credits[static_cast<std::size_t>(v)].assign(ports[static_cast<std::size_t>(v)].size(), config.buffer_packets);
    credit_return[static_cast<std::size_t>(v)].resize(ports[static_cast<std::size_t>(v)].size());
  }
  // Output-link occupancy token buckets and round-robin pointers. Token
  // accumulation for a router that sat idle (no parked packets) is caught
  // up lazily from last_tick when the router next does work — the closed
  // form min(t + delta, cap) equals delta per-cycle updates.
  std::vector<std::vector<long long>> tokens(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> rr(static_cast<std::size_t>(n));
  std::vector<long long> last_tick(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    tokens[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(topology_.degree(v)), 0);
    rr[static_cast<std::size_t>(v)].assign(static_cast<std::size_t>(topology_.degree(v)), 0);
  }
  // Packets parked in any of node v's FIFOs: a router with zero parked
  // packets can neither eject nor forward, so step 3 skips it entirely.
  std::vector<long long> parked(static_cast<std::size_t>(n), 0);

  // Event wheel over flat port ids. Arrivals land at now + link_latency +
  // packet_flits, credit returns at now + link_latency; both deltas are
  // constant so pending wake-ups live within the next wheel_size cycles.
  const int wheel_size = config.link_latency + config.packet_flits + 1;
  std::vector<std::vector<int>> wheel(static_cast<std::size_t>(wheel_size));
  long long now = 0;
  // Clamp to now + 1: an event stamped `now` (zero link latency) is only
  // ever observed on the next cycle, and the current cycle's bucket has
  // already been drained.
  const auto schedule_wakeup = [&](int flat_port, long long t) {
    wheel[static_cast<std::size_t>(std::max(t, now + 1) % wheel_size)].push_back(flat_port);
  };

  TrafficResult result;
  std::vector<long long> latencies;
  latencies.reserve(static_cast<std::size_t>(config.measure_packets));
  long long total_hops = 0;
  long long measured_start = -1;

  while (static_cast<long long>(latencies.size()) < config.measure_packets) {
    if (now >= config.max_cycles) {
      result.saturated = true;
      break;
    }

    // 1. Arrivals and credit returns: only ports with due wake-ups.
    {
      auto& bucket = wheel[static_cast<std::size_t>(now % wheel_size)];
      for (int flat : bucket) {
        const int v = port_owner[static_cast<std::size_t>(flat)];
        const std::size_t p = static_cast<std::size_t>(flat - port_base[static_cast<std::size_t>(v)]);
        Port& port = ports[static_cast<std::size_t>(v)][p];
        while (!port.inflight.empty() &&
               port.inflight.front().first <= now) {
          port.fifo.push_back(port.inflight.front().second);
          port.inflight.pop_front();
          ++parked[static_cast<std::size_t>(v)];
        }
        auto& returns = credit_return[static_cast<std::size_t>(v)][p];
        while (!returns.empty() && returns.front() <= now) {
          returns.pop_front();
          ++credits[static_cast<std::size_t>(v)][p];
        }
      }
      bucket.clear();
    }

    // 2. Injection: generated packets enter the source queue; the source
    // queue feeds the injection port when it has buffer room. (Bernoulli
    // injection draws from the RNG for every node on every cycle, which is
    // why this loop — unlike the allreduce simulator's — cannot skip idle
    // cycle ranges without changing the random stream.)
    for (int v = 0; v < n; ++v) {
      if (rng.next_double() < config.injection_rate) {
        Packet pkt;
        pkt.dst = pick_destination(v);
        if (config.routing == Routing::kValiant) {
          const int via = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
          if (via != v && via != pkt.dst) pkt.via = via;
        }
        pkt.generated = now;
        pkt.measured = now >= config.warmup_cycles;
        source[static_cast<std::size_t>(v)].push_back(pkt);
      }
      const std::size_t inj = ports[static_cast<std::size_t>(v)].size() - 1;
      while (!source[static_cast<std::size_t>(v)].empty() &&
             static_cast<int>(ports[static_cast<std::size_t>(v)][inj].fifo.size()) <
                 config.buffer_packets) {
        ports[static_cast<std::size_t>(v)][inj].fifo.push_back(source[static_cast<std::size_t>(v)].front());
        source[static_cast<std::size_t>(v)].pop_front();
        ++parked[static_cast<std::size_t>(v)];
      }
    }

    // 3. Switch allocation + traversal: each output link grants one input
    // port per free slot (round-robin), consuming link occupancy tokens.
    for (int v = 0; v < n; ++v) {
      if (parked[static_cast<std::size_t>(v)] == 0) continue;
      const auto& nbrs = topology_.neighbors(v);
      const int num_ports = static_cast<int>(ports[static_cast<std::size_t>(v)].size());
      // Catch up token accumulation for the cycles this router sat idle.
      const long long delta = now - last_tick[static_cast<std::size_t>(v)];
      last_tick[static_cast<std::size_t>(v)] = now;
      for (int out = 0; out < static_cast<int>(nbrs.size()); ++out) {
        tokens[static_cast<std::size_t>(v)][static_cast<std::size_t>(out)] = std::min<long long>(tokens[static_cast<std::size_t>(v)][static_cast<std::size_t>(out)] + delta,
                                             config.packet_flits);
      }
      // Ejection first: heads destined here leave immediately. A head that
      // reached its Valiant intermediate sheds it and keeps routing.
      for (int p = 0; p < num_ports; ++p) {
        Port& port = ports[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
        while (!port.fifo.empty()) {
          Packet& head = port.fifo.front();
          if (head.via == v) head.via = -1;
          if (head.dst != v || head.via >= 0) break;
          if (head.measured) {
            if (measured_start < 0) measured_start = now;
            latencies.push_back(now - head.generated);
            total_hops += head.hops;
          }
          port.fifo.pop_front();
          --parked[static_cast<std::size_t>(v)];
          if (p < num_ports - 1) {  // network port: return a credit upstream
            credit_return[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)].push_back(now + config.link_latency);
            schedule_wakeup(port_base[static_cast<std::size_t>(v)] + p, now + config.link_latency);
          }
        }
      }
      for (int out = 0; out < static_cast<int>(nbrs.size()); ++out) {
        if (tokens[static_cast<std::size_t>(v)][static_cast<std::size_t>(out)] <= 0) continue;
        const int next = nbrs[static_cast<std::size_t>(out)];
        const int in_port_at_next = from_index[static_cast<std::size_t>(next)][static_cast<std::size_t>(v)];
        if (credits[static_cast<std::size_t>(next)][static_cast<std::size_t>(in_port_at_next)] <= 0) continue;
        // Round-robin over this router's input ports for this output.
        int granted = -1;
        for (int probe = 0; probe < num_ports; ++probe) {
          const int p = (rr[static_cast<std::size_t>(v)][static_cast<std::size_t>(out)] + probe) % num_ports;
          Port& port = ports[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
          if (port.fifo.empty()) continue;
          const Packet& head = port.fifo.front();
          const int target = head.via >= 0 ? head.via : head.dst;
          if (target == v) continue;  // ejection handled above
          const int hop =
              next_hop_[static_cast<std::size_t>(target) * static_cast<std::size_t>(n) + static_cast<std::size_t>(v)];
          if (hop != next) continue;
          granted = p;
          break;
        }
        if (granted < 0) continue;
        rr[static_cast<std::size_t>(v)][static_cast<std::size_t>(out)] = (granted + 1) % num_ports;
        Port& port = ports[static_cast<std::size_t>(v)][static_cast<std::size_t>(granted)];
        Packet pkt = port.fifo.front();
        port.fifo.pop_front();
        --parked[static_cast<std::size_t>(v)];
        if (granted < num_ports - 1) {
          credit_return[static_cast<std::size_t>(v)][static_cast<std::size_t>(granted)].push_back(now + config.link_latency);
          schedule_wakeup(port_base[static_cast<std::size_t>(v)] + granted, now + config.link_latency);
        }
        ++pkt.hops;
        tokens[static_cast<std::size_t>(v)][static_cast<std::size_t>(out)] -= config.packet_flits;
        --credits[static_cast<std::size_t>(next)][static_cast<std::size_t>(in_port_at_next)];
        const long long arrival =
            now + config.link_latency + config.packet_flits;
        ports[static_cast<std::size_t>(next)][static_cast<std::size_t>(in_port_at_next)].inflight.emplace_back(arrival, pkt);
        schedule_wakeup(port_base[static_cast<std::size_t>(next)] + in_port_at_next, arrival);
      }
    }

    ++now;
  }

  result.delivered = static_cast<long long>(latencies.size());
  if (result.delivered > 0) {
    double sum = 0.0;
    for (long long l : latencies) sum += static_cast<double>(l);
    result.avg_latency = sum / static_cast<double>(result.delivered);
    result.avg_hops =
        static_cast<double>(total_hops) / static_cast<double>(result.delivered);
    std::sort(latencies.begin(), latencies.end());
    result.p99_latency = latencies[latencies.size() * 99 / 100];
    const long long span = now - (measured_start < 0 ? now : measured_start);
    if (span > 0) {
      result.throughput = static_cast<double>(result.delivered) /
                          static_cast<double>(span) / n;
    }
  } else {
    result.saturated = true;
  }
  return result;
}

}  // namespace pfar::simnet
