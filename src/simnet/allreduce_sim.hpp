#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "simnet/config.hpp"

namespace pfar::simnet {

/// A spanning tree embedded on the physical topology, given as a parent
/// vector (-1 at the root). Each tree edge is a physical link; reduction
/// traffic flows child -> parent, broadcast traffic parent -> child
/// (Section 4.3).
struct TreeEmbedding {
  int root = 0;
  std::vector<int> parent;
};

/// Outcome of one simulated multi-tree in-network Allreduce.
struct SimResult {
  /// Cycle at which the last node received the last broadcast element.
  long long cycles = 0;
  /// Completion cycle per tree (last broadcast delivery of that tree).
  std::vector<long long> tree_finish_cycle;
  /// Cycle of the first delivered element per tree — the pipeline-fill
  /// latency, proportional to tree depth (the paper's latency metric).
  std::vector<long long> tree_first_delivery;
  /// Total elements reduced across all trees (sum of the per-tree counts).
  long long total_elements = 0;
  /// total_elements / cycles, in elements per cycle — directly comparable
  /// with Algorithm 1's aggregate bandwidth when link_bandwidth = 1.
  double aggregate_bandwidth = 0.0;
  /// True iff every delivered element matched the exact expected
  /// reduction value at every node (integer arithmetic, no tolerance).
  bool values_correct = false;
  /// Peak receiver-buffer occupancy observed over all VCs — must stay
  /// within SimConfig::vc_credits (flow-control safety).
  int max_vc_occupancy = 0;
  /// Number of virtual channels instantiated (per-tree-per-direction link
  /// state, the hardware cost Section 5.1 discusses).
  int num_vcs = 0;
  /// Highest number of VCs on any single directed link (worst-case per-link
  /// state requirement; 1 for edge-disjoint trees).
  int max_vcs_per_link = 0;
  /// Highest number of distinct trees whose reduction consumes the same
  /// router input port. Lemma 7.8 implies this is 1 for the paper's
  /// low-depth trees: a single wide-radix arithmetic engine per router
  /// suffices.
  int max_reductions_per_input_port = 0;
  /// Flits moved per directed link (utilization diagnostics), including
  /// packet header flits.
  std::vector<long long> link_flits;
  /// Peak receiver-buffer occupancy (packets) per directed link — the max
  /// over the link's VCs of their buffer high-water marks. Maintained by
  /// both cycle engines unconditionally (zero on the flow tier), so the
  /// congestion controller can read queue pressure without tracing.
  std::vector<long long> link_queue_hwm;

  // --- Background traffic accounting (all zero on a quiet network) --------

  /// Background flits drained per directed link while the collective ran
  /// (SimConfig::background). For fault-free runs this is the closed-form
  /// steady-state count over [0, cycles); with faults it counts only the
  /// cycles each link was up.
  std::vector<long long> link_bg_flits;
  /// Totals of the above.
  long long background_packets = 0;
  long long background_flits = 0;

  // --- Fault / recovery observability (all zero on a healthy run) ---------

  /// Per tree: 1 iff the tree was declared failed by the per-tree progress
  /// timeout and canceled mid-collective.
  std::vector<char> tree_failed;
  /// Per tree: cycle at which the failure was detected, -1 if healthy.
  std::vector<long long> tree_fail_cycle;
  /// Per tree: the complete element prefix — elements delivered at every
  /// receiver (at the root for Collective::kReduce). For healthy trees
  /// this equals the tree's element count; for failed trees it is the
  /// high-water mark recovery must replay beyond.
  std::vector<long long> tree_completed;
  /// Packets lost on the wire (in flight at a link_down, or eaten by a
  /// flaky link) and their flits (payload + header), total and per
  /// directed link. These flits appear in link_flits (they did cross the
  /// link) but were never delivered.
  long long dropped_packets = 0;
  long long dropped_flits = 0;
  std::vector<long long> link_dropped_flits;
  /// Packets retracted when a failed tree was canceled (receiver buffers,
  /// fork stages, root queues and in-flight pipelines drained), and their
  /// flits. Together with dropped_*, every non-delivered packet is
  /// accounted — nothing vanishes silently.
  long long canceled_packets = 0;
  long long canceled_flits = 0;
  /// Links still down when the run ended (the set recovery must replan
  /// around), as topology edges.
  std::vector<graph::Edge> links_down;
};

/// Partition of `trees` into link-disjoint groups: trees sharing any
/// physical edge always land in the same group (union-find over edge
/// ownership), so two groups never place a VC on the same directed link and
/// exchange no packets, credits or arbitration grants. Groups are returned
/// in order of their lowest tree index; every tree appears exactly once.
/// This is both the intra-run sharding unit (SimConfig::shard_threads) and
/// the allocation unit of the multi-tenant service scheduler
/// (service::AllreduceService): runs on different groups are independent,
/// so their virtual timelines compose exactly.
std::vector<std::vector<int>> link_disjoint_tree_groups(
    const graph::Graph& topology, const std::vector<TreeEmbedding>& trees);

/// Cycle-accurate simulator of pipelined in-network Allreduce over a set
/// of concurrently active tree embeddings sharing physical links.
///
/// Model (Sections 4.4 / 5.1):
///  * every node contributes one operand per element per tree and receives
///    every broadcast element (global vector Allreduce, data-parallel over
///    trees);
///  * each router has a per-tree reduction engine: when one operand from
///    each child and the local operand are available, it emits their sum
///    toward the parent (streaming aggregation at link rate);
///  * the root turns the final sums around into a broadcast that forks to
///    all children and is delivered locally at every hop;
///  * each directed physical link has `link_bandwidth` flits/cycle shared
///    round-robin between the VCs of all trees crossing it — congested
///    links divide bandwidth exactly as the paper's congestion model
///    assumes;
///  * every VC has a private receiver buffer governed by credits, so
///    backpressure propagates hop-by-hop and no buffer ever overflows.
///
/// Values are int64 and the expected reductions are checked exactly.
class AllreduceSimulator {
 public:
  AllreduceSimulator(const graph::Graph& topology,
                     std::vector<TreeEmbedding> trees, SimConfig config);

  /// Runs one Allreduce with `elements_per_tree[t]` vector elements
  /// assigned to tree t (the m_i of Theorem 5.1). Throws on deadlock or
  /// cycle-limit overrun.
  SimResult run(const std::vector<long long>& elements_per_tree);

 private:
  const graph::Graph& topology_;
  std::vector<TreeEmbedding> trees_;
  SimConfig config_;
};

}  // namespace pfar::simnet
