#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "simnet/allreduce_sim.hpp"

namespace pfar::simnet {

/// Static deadlock-freedom verification for a set of tree embeddings, by
/// the classic channel-dependency argument (Dally-Seitz): build the
/// directed graph whose nodes are virtual channels (plus per-node
/// turnaround/fork resources) and whose edges are "holding X may wait for
/// Y"; the configuration is deadlock-free iff this graph is acyclic.
///
/// For the paper's embeddings the dependencies are:
///  * reduction: the VC from child c to node v is drained only when v's
///    engine can emit into v's parent reduce VC (or the root turnaround
///    queue), so child-VC -> parent-VC edges follow each tree upward;
///  * broadcast: the VC into node v is drained into the fork stages,
///    which drain into each child's broadcast VC — edges follow the tree
///    downward;
///  * the root turnaround couples the reduce root to the broadcast root.
/// Trees are cycle-free in both directions and different trees share no
/// VC state, so the union must be acyclic — this check mechanizes that
/// argument and guards future embedding generators (e.g. degraded plans,
/// greedy packings) against regressions.
struct DeadlockCheckResult {
  bool deadlock_free = false;
  /// Number of resource nodes in the dependency graph.
  int resources = 0;
  /// Number of wait-for edges.
  int dependencies = 0;
  /// If a cycle exists, one resource on it (index into the internal
  /// numbering; for diagnostics only).
  int cycle_witness = -1;
};

DeadlockCheckResult check_deadlock_free(const graph::Graph& topology,
                                        const std::vector<TreeEmbedding>& trees,
                                        Collective collective = Collective::kAllreduce);

}  // namespace pfar::simnet
