#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pfar::obsv {
struct Recorder;
}

namespace pfar::simnet {

/// Which collective dataflow the embedded trees execute (Section 4.3:
/// Allreduce = reduction up the tree followed by a broadcast down it; the
/// two halves are also useful on their own).
enum class Collective {
  kAllreduce,  // reduce to the root, then broadcast the result
  kReduce,     // reduce to the root only (result lands at the root)
  kBroadcast,  // root streams its vector down the tree (no reduction)
};

/// Which execution engine drives the simulation (docs/simulation_engine.md,
/// "The three engine tiers"). The two cycle-accurate tiers produce
/// bit-identical results (cycles, link_flits, occupancy maxima,
/// correctness); the fast-forward engine is the default and the reference
/// engine exists as the oracle the determinism test compares against. The
/// flow tier trades cycle accuracy for two-orders-of-magnitude scale.
enum class SimEngine {
  /// Event-horizon engine: arrivals/credits land via a time-indexed wheel,
  /// broadcast engines run off active lists, hot state lives in flat
  /// structure-of-arrays form, and provably idle cycle ranges are skipped
  /// in one jump (token buckets are advanced in closed form). With
  /// SimConfig::shard_threads != 1 a single run additionally shards
  /// link-disjoint tree groups across a thread pool, bit-identically.
  kFastForward,
  /// The original cycle-by-cycle loop: every VC, engine and link is scanned
  /// on every cycle. Kept as the behavioural oracle.
  kReference,
  /// Flow-level fluid tier: per-tree max-min fair rates over the shared
  /// directed links, integrated through warmup (pipeline fill), measure
  /// (steady fluid timeline with trees retiring and freeing bandwidth) and
  /// drain phases, in the spirit of booksim's warmup/measure/drain
  /// methodology. Not cycle-accurate: sim_bw is validated against the
  /// cycle tiers on small q within a pinned tolerance
  /// (tests/flow_engine_test.cpp) and is the only tier that reaches
  /// q >= 243 (N ~ 59k routers). Per-link flit totals are exact (the same
  /// packets cross the same tree links); values_correct is vacuously true
  /// (no payloads are simulated); fault scripts are rejected.
  kFlow,
};

/// Canonical CLI/JSON names: "horizon" (kFastForward), "reference", "flow".
const char* to_string(SimEngine engine);
/// Parses to_string names plus the "fastforward" alias; throws
/// std::invalid_argument on anything else.
SimEngine engine_from_string(const std::string& name);

/// Default for SimConfig::shard_threads: the PFAR_THREADS environment
/// variable if set to a positive integer (the same knob the sweep benches
/// honor for sweep parallelism, so intra-run sharding matches), else 1
/// (serial). Read on every call so tests can toggle the environment.
int default_shard_threads();

/// Synthetic traffic patterns shared by the general-purpose router
/// simulator (TrafficSimulator) and the allreduce engines' background
/// traffic (BackgroundTraffic below). Lives here so SimConfig can name a
/// pattern without dragging in the packet simulator.
enum class TrafficPattern {
  kUniform,      // destination uniform over all other nodes
  kPermutation,  // fixed random permutation (seeded), each node one target
  kHotspot,      // a fraction of traffic targets one node, rest uniform
};

/// Deterministic background packet traffic the collective shares the
/// fabric with (ROADMAP open item 2 / docs/congestion_adaptation.md).
///
/// Instead of co-simulating a second packet world, the allreduce engines
/// drain link bandwidth at the *steady-state rate* the pattern would
/// impose on each directed link under deterministic minimal routing (the
/// same per-destination BFS next-hop choice TrafficSimulator uses). Rates
/// are exact rationals in parts-per-million of a flit per cycle, so both
/// cycle engines — and any shard count — replay bit-identical drain
/// sequences. `load == 0` (the default) compiles down to the quiet
/// network: no background code path executes at all, which the zero-load
/// differential tests pin against the pre-background goldens.
struct BackgroundTraffic {
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// Offered load per node in flits/cycle as a fraction of one link's
  /// bandwidth, in [0, 1). 0 disables background traffic entirely.
  double load = 0.0;
  /// Background packet length in flits (drains are packet-granular).
  int packet_flits = 4;
  /// Target of the concentrated fraction under kHotspot. Must name a
  /// vertex of the simulated topology — validated, never wrapped.
  int hotspot_node = 0;
  /// Fraction of traffic aimed at hotspot_node under kHotspot.
  double hotspot_fraction = 0.2;
  /// Seed of the permutation pattern (same construction as
  /// TrafficConfig::seed).
  std::uint64_t seed = 1;

  bool active() const { return load > 0.0; }
};

/// What a scripted fault does to a physical link.
enum class FaultType {
  kLinkDown,  // both directions of the link stop moving flits
  kLinkUp,    // the link resumes service
};

/// One scheduled fault event, applied at the top of `cycle` before any
/// arrival, engine or arbitration step of that cycle runs. `u`/`v` name
/// the endpoints of a physical link of the simulated topology.
struct FaultEvent {
  long long cycle = 0;
  int u = 0;
  int v = 0;
  FaultType type = FaultType::kLinkDown;
};

/// Deterministic fault-injection script for the Allreduce simulator.
///
/// Semantics (identical in both engines, see docs/resilience.md):
///  * `kLinkDown` kills both directed halves of the link. Packets and
///    credits in flight on the link at that cycle are lost; lost packets
///    are counted in SimResult::dropped_* and the sender's credits are
///    reclaimed immediately, so credit conservation holds through the
///    failure. A loss leaves a sequence gap, so the receiving VC is
///    poisoned: it stops presenting data and its tree can only finish via
///    recovery. A down link moves no flits until a matching `kLinkUp`.
///  * `kLinkUp` restores the link. Traffic that merely stalled (nothing
///    was in flight at the down instant) resumes loss-free.
///  * Flaky mode: every packet crossing a link in `flaky_links` is
///    dropped iff a hash of (flaky_seed, directed link, per-link packet
///    ordinal) lands below `flaky_drop_permille` — a deterministic subset
///    independent of engine choice.
struct FaultScript {
  std::vector<FaultEvent> events;
  /// Links (by endpoints) whose packets are dropped pseudo-randomly.
  std::vector<std::pair<int, int>> flaky_links;
  /// Seed of the deterministic drop decision.
  std::uint64_t flaky_seed = 0;
  /// Drop probability in 1/1000 units, in [0, 1000].
  int flaky_drop_permille = 0;

  bool empty() const { return events.empty() && flaky_links.empty(); }
};

/// Parameters of the cycle-level router/link model (Section 4.4). The
/// defaults model a PIUMA/SHARP-like device: pipelined reduction engines
/// able to sustain link rate, credit-based flow control, and one virtual
/// channel per (tree, direction) crossing a link — the per-tree state the
/// paper's Section 5.1 discusses.
struct SimConfig {
  /// Flits a directed link can move per cycle (one element per flit).
  int link_bandwidth = 1;
  /// Wire/pipeline latency of a link in cycles.
  int link_latency = 4;
  /// Receiver buffer slots (packets) per virtual channel. Must cover the
  /// credit round trip (2 * link_latency / packet duration) to sustain
  /// full rate.
  int vc_credits = 16;
  /// Per-child staging slots (packets) used when a broadcast packet forks
  /// to several children inside a router.
  int fork_buffer = 4;
  /// Vector elements carried per packet. Streams are chunked into packets
  /// of this size (plus a final partial packet).
  int packet_payload = 1;
  /// Header/control flits prepended to each packet; models protocol
  /// overhead: link efficiency = payload / (payload + header).
  int packet_header_flits = 0;
  /// Which collective to execute.
  Collective collective = Collective::kAllreduce;
  /// Which engine to use. The two cycle tiers are bit-identical; the flow
  /// tier is approximate (see SimEngine).
  SimEngine engine = SimEngine::kFastForward;
  /// Intra-run parallel sharding for the fast-forward engine: the run is
  /// partitioned into link-disjoint tree groups (trees sharing any
  /// physical edge always land in the same shard) which are simulated
  /// concurrently on a util::ThreadPool and merged deterministically.
  /// 1 = serial; 0 = util::default_threads(); N > 1 = at most N workers.
  /// Defaults to default_shard_threads(): PFAR_THREADS when set, else
  /// serial. Results are bit-identical for every value — including
  /// the serial engine — because shards are closed under link sharing and
  /// therefore exchange no events (docs/simulation_engine.md). Ignored by
  /// kReference and kFlow. Runs with a Recorder attached execute serially
  /// (the trace is single-writer), still bit-identically.
  int shard_threads = default_shard_threads();
  /// Safety valve: abort if the collective has not completed by this cycle.
  long long max_cycles = 500'000'000;
  /// Cycles without any flit movement before declaring deadlock.
  long long stall_limit = 100'000;
  /// Scheduled faults (empty = healthy network, the default).
  FaultScript faults;
  /// Background packet traffic the collective contends with (quiet
  /// network by default). Honored exactly by both cycle engines and by
  /// sharded runs; the flow tier approximates it by reducing per-link
  /// capacity. When combined with a non-empty fault script the run
  /// executes serially (background drain accounting is windowed per
  /// shard otherwise).
  BackgroundTraffic background;
  /// Per-tree loss detection: if > 0, a tree that delivers nothing for
  /// this many cycles while work remains is declared failed and canceled —
  /// its undelivered suffix is retracted so the surviving trees finish and
  /// the caller (collectives::run_resilient_allreduce) can replay the lost
  /// chunks on a degraded plan. Must stay below stall_limit so per-tree
  /// detection fires before the global deadlock check. 0 disables
  /// detection: an unrecovered loss then ends in the deadlock exception.
  long long progress_timeout = 0;
  /// Observability sink (see src/obsv, docs/observability.md). Null (the
  /// default) records nothing; attaching a Recorder never perturbs the
  /// simulation — the determinism goldens pin this. In a PFAR_TRACE=off
  /// build the field is ignored entirely.
  obsv::Recorder* recorder = nullptr;
};

}  // namespace pfar::simnet
