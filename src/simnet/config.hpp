#pragma once

namespace pfar::simnet {

/// Which collective dataflow the embedded trees execute (Section 4.3:
/// Allreduce = reduction up the tree followed by a broadcast down it; the
/// two halves are also useful on their own).
enum class Collective {
  kAllreduce,  // reduce to the root, then broadcast the result
  kReduce,     // reduce to the root only (result lands at the root)
  kBroadcast,  // root streams its vector down the tree (no reduction)
};

/// Which execution engine drives the cycle loop. Both produce bit-identical
/// results (cycles, link_flits, occupancy maxima, correctness); the
/// fast-forward engine is the default and the reference engine exists as the
/// oracle the determinism test compares against.
enum class SimEngine {
  /// Event-horizon engine: arrivals/credits land via a time-indexed wheel,
  /// broadcast engines run off active lists, and provably idle cycle ranges
  /// are skipped in one jump (token buckets are advanced in closed form).
  kFastForward,
  /// The original cycle-by-cycle loop: every VC, engine and link is scanned
  /// on every cycle. Kept as the behavioural oracle.
  kReference,
};

/// Parameters of the cycle-level router/link model (Section 4.4). The
/// defaults model a PIUMA/SHARP-like device: pipelined reduction engines
/// able to sustain link rate, credit-based flow control, and one virtual
/// channel per (tree, direction) crossing a link — the per-tree state the
/// paper's Section 5.1 discusses.
struct SimConfig {
  /// Flits a directed link can move per cycle (one element per flit).
  int link_bandwidth = 1;
  /// Wire/pipeline latency of a link in cycles.
  int link_latency = 4;
  /// Receiver buffer slots (packets) per virtual channel. Must cover the
  /// credit round trip (2 * link_latency / packet duration) to sustain
  /// full rate.
  int vc_credits = 16;
  /// Per-child staging slots (packets) used when a broadcast packet forks
  /// to several children inside a router.
  int fork_buffer = 4;
  /// Vector elements carried per packet. Streams are chunked into packets
  /// of this size (plus a final partial packet).
  int packet_payload = 1;
  /// Header/control flits prepended to each packet; models protocol
  /// overhead: link efficiency = payload / (payload + header).
  int packet_header_flits = 0;
  /// Which collective to execute.
  Collective collective = Collective::kAllreduce;
  /// Which cycle-loop engine to use (results are identical either way).
  SimEngine engine = SimEngine::kFastForward;
  /// Safety valve: abort if the collective has not completed by this cycle.
  long long max_cycles = 500'000'000;
  /// Cycles without any flit movement before declaring deadlock.
  long long stall_limit = 100'000;
};

}  // namespace pfar::simnet
