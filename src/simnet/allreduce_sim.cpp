#include "simnet/allreduce_sim.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

namespace pfar::simnet {
namespace {

// Deterministic per-operand values so every result is checkable exactly:
// node v's operand for element k of tree t.
constexpr std::int64_t kNodeStride = 1000003;
constexpr std::int64_t kTreeStride = 7919;
constexpr std::int64_t kElemStride = 31;

std::int64_t local_value(int node, int tree, long long k) {
  return static_cast<std::int64_t>(node + 1) * kNodeStride +
         static_cast<std::int64_t>(tree) * kTreeStride +
         static_cast<std::int64_t>(k) * kElemStride;
}

std::int64_t sum_over_nodes(int num_nodes, int tree, long long k) {
  const std::int64_t n = num_nodes;
  return n * (n + 1) / 2 * kNodeStride +
         n * (static_cast<std::int64_t>(tree) * kTreeStride +
              static_cast<std::int64_t>(k) * kElemStride);
}

enum class Phase { kReduce, kBcast };

// A packet: a contiguous chunk of one tree's element stream.
using Packet = std::vector<std::int64_t>;

// One virtual channel: the unidirectional, per-tree, per-phase logical
// datapath on a physical link, with its own receiver buffer and credits
// (Section 5.1's "VCs have disjoint resources").
struct VcState {
  int tree = -1;
  Phase phase = Phase::kReduce;
  int src = -1;
  int dst = -1;
  int dlink = -1;
  int fork_index = -1;  // bcast only: child slot at src feeding this VC

  std::deque<Packet> recv;  // receiver buffer, <= credits cap packets
  int credits = 0;
  std::deque<std::pair<long long, Packet>> data_inflight;
  std::deque<long long> credit_inflight;
};

// Per-(router, tree) state: reduction engine inputs/outputs and the
// broadcast fork stage.
struct NodeTreeState {
  int parent = -1;
  std::vector<int> children;
  std::vector<int> child_reduce_vc;
  int parent_reduce_vc = -1;
  int parent_bcast_vc = -1;
  std::vector<int> child_bcast_vc;
  std::vector<std::deque<Packet>> fork_stage;
  std::deque<Packet> root_queue;  // root only: reduce -> bcast turnaround
  long long injected = 0;   // local elements consumed by the engine
  long long delivered = 0;  // elements delivered locally
};

}  // namespace

AllreduceSimulator::AllreduceSimulator(const graph::Graph& topology,
                                       std::vector<TreeEmbedding> trees,
                                       SimConfig config)
    : topology_(topology), trees_(std::move(trees)), config_(config) {
  if (config_.link_bandwidth < 1 || config_.link_latency < 0 ||
      config_.vc_credits < 1 || config_.fork_buffer < 1 ||
      config_.packet_payload < 1 || config_.packet_header_flits < 0) {
    throw std::invalid_argument("AllreduceSimulator: bad config");
  }
  const int n = topology_.num_vertices();
  for (const auto& tree : trees_) {
    if (static_cast<int>(tree.parent.size()) != n) {
      throw std::invalid_argument("AllreduceSimulator: tree size mismatch");
    }
    for (int v = 0; v < n; ++v) {
      if (v == tree.root) {
        if (tree.parent[v] != -1) {
          throw std::invalid_argument("AllreduceSimulator: root has parent");
        }
        continue;
      }
      if (!topology_.has_edge(v, tree.parent[v])) {
        throw std::invalid_argument(
            "AllreduceSimulator: tree edge not a physical link");
      }
    }
  }
}

SimResult AllreduceSimulator::run(
    const std::vector<long long>& elements_per_tree) {
  const int n = topology_.num_vertices();
  const int num_trees = static_cast<int>(trees_.size());
  if (static_cast<int>(elements_per_tree.size()) != num_trees) {
    throw std::invalid_argument("run: elements_per_tree size mismatch");
  }
  const Collective mode = config_.collective;
  const bool want_reduce = mode != Collective::kBroadcast;
  const bool want_bcast = mode != Collective::kReduce;

  const auto dlink_of = [&](int src, int dst) {
    const int eid = topology_.edge_id(src, dst);
    return 2 * eid + (src > dst ? 1 : 0);
  };
  const int num_dlinks = 2 * topology_.num_edges();

  // ---- Build VCs and per-(node, tree) engine state. ----
  std::vector<VcState> vcs;
  std::vector<std::vector<int>> link_vcs(num_dlinks);
  std::vector<NodeTreeState> state(static_cast<std::size_t>(n) * num_trees);
  const auto st = [&](int node, int tree) -> NodeTreeState& {
    return state[static_cast<std::size_t>(tree) * n + node];
  };

  const auto new_vc = [&](int tree, Phase phase, int src, int dst) {
    VcState vc;
    vc.tree = tree;
    vc.phase = phase;
    vc.src = src;
    vc.dst = dst;
    vc.dlink = dlink_of(src, dst);
    vc.credits = config_.vc_credits;
    vcs.push_back(std::move(vc));
    const int id = static_cast<int>(vcs.size()) - 1;
    link_vcs[vcs[id].dlink].push_back(id);
    return id;
  };

  for (int t = 0; t < num_trees; ++t) {
    const auto& tree = trees_[t];
    for (int v = 0; v < n; ++v) {
      st(v, t).parent = tree.parent[v];
      if (tree.parent[v] >= 0) st(tree.parent[v], t).children.push_back(v);
    }
    for (int v = 0; v < n; ++v) {
      NodeTreeState& s = st(v, t);
      if (s.parent >= 0) {
        if (want_reduce) {
          s.parent_reduce_vc = new_vc(t, Phase::kReduce, v, s.parent);
        }
        if (want_bcast) {
          s.parent_bcast_vc = new_vc(t, Phase::kBcast, s.parent, v);
        }
      }
      s.fork_stage.resize(s.children.size());
      s.child_bcast_vc.assign(s.children.size(), -1);
      s.child_reduce_vc.assign(s.children.size(), -1);
    }
    for (int v = 0; v < n; ++v) {
      NodeTreeState& s = st(v, t);
      for (std::size_t c = 0; c < s.children.size(); ++c) {
        const int child = s.children[c];
        s.child_reduce_vc[c] = st(child, t).parent_reduce_vc;
        s.child_bcast_vc[c] = st(child, t).parent_bcast_vc;
        if (s.child_bcast_vc[c] >= 0) {
          vcs[s.child_bcast_vc[c]].fork_index = static_cast<int>(c);
        }
      }
    }
  }

  SimResult result;
  result.num_vcs = static_cast<int>(vcs.size());
  for (const auto& lv : link_vcs) {
    result.max_vcs_per_link =
        std::max(result.max_vcs_per_link, static_cast<int>(lv.size()));
  }
  // Lemma 7.8 accounting: distinct trees consuming each input port as a
  // reduction input.
  if (want_reduce) {
    std::vector<int> reductions_per_port(num_dlinks, 0);
    for (const auto& vc : vcs) {
      if (vc.phase == Phase::kReduce) ++reductions_per_port[vc.dlink];
    }
    for (int c : reductions_per_port) {
      result.max_reductions_per_input_port =
          std::max(result.max_reductions_per_input_port, c);
    }
  }
  result.link_flits.assign(num_dlinks, 0);
  result.tree_finish_cycle.assign(num_trees, 0);
  result.tree_first_delivery.assign(num_trees, -1);
  result.values_correct = true;

  // Deliveries expected per tree: at every node for Allreduce/Broadcast,
  // at the root only for Reduce.
  long long total_target = 0;
  std::vector<long long> tree_remaining(num_trees);
  for (int t = 0; t < num_trees; ++t) {
    if (elements_per_tree[t] < 0) {
      throw std::invalid_argument("run: negative element count");
    }
    result.total_elements += elements_per_tree[t];
    const long long receivers = (mode == Collective::kReduce) ? 1 : n;
    tree_remaining[t] = elements_per_tree[t] * receivers;
    total_target += tree_remaining[t];
  }
  if (total_target == 0) return result;

  const auto expected_value = [&](int tree, long long k) {
    return mode == Collective::kBroadcast
               ? local_value(trees_[tree].root, tree, k)
               : sum_over_nodes(n, tree, k);
  };

  long long delivered_total = 0;
  long long now = 0;
  long long last_progress = 0;
  std::vector<int> rr(num_dlinks, 0);
  // Token-bucket link occupancy: `tokens` flit-slots accumulate at
  // link_bandwidth per cycle (bounded burst); a packet consumes
  // payload + header flits and may borrow, modeling multi-cycle packets.
  std::vector<long long> tokens(num_dlinks, 0);
  const int header = config_.packet_header_flits;

  const auto vc_ready = [&](const VcState& vc) -> bool {
    const NodeTreeState& s = st(vc.src, vc.tree);
    if (vc.phase == Phase::kReduce) {
      if (s.injected >= elements_per_tree[vc.tree]) return false;
      for (int cvc : s.child_reduce_vc) {
        if (vcs[cvc].recv.empty()) return false;
      }
      return true;
    }
    return !s.fork_stage[vc.fork_index].empty();
  };

  // Assembles the next reduction packet at node `src` for tree `tree`:
  // local chunk combined with one packet from each child. Chunk sizes are
  // aligned across children because every stream chunks the same way.
  const auto make_reduce_packet = [&](int src, int tree) -> Packet {
    NodeTreeState& s = st(src, tree);
    const long long remaining = elements_per_tree[tree] - s.injected;
    long long size = std::min<long long>(config_.packet_payload, remaining);
    for (int cvc : s.child_reduce_vc) {
      if (static_cast<long long>(vcs[cvc].recv.front().size()) != size) {
        throw std::logic_error("reduce packet misalignment");
      }
    }
    Packet packet(size);
    for (long long i = 0; i < size; ++i) {
      packet[i] = local_value(src, tree, s.injected + i);
    }
    s.injected += size;
    for (int cvc : s.child_reduce_vc) {
      const Packet& head = vcs[cvc].recv.front();
      for (long long i = 0; i < size; ++i) packet[i] += head[i];
      vcs[cvc].recv.pop_front();
      vcs[cvc].credit_inflight.push_back(now + config_.link_latency);
    }
    return packet;
  };

  const auto deliver = [&](int node, int tree, const Packet& packet) {
    NodeTreeState& s = st(node, tree);
    if (result.tree_first_delivery[tree] < 0) {
      result.tree_first_delivery[tree] = now;
    }
    for (std::int64_t value : packet) {
      if (value != expected_value(tree, s.delivered)) {
        result.values_correct = false;
      }
      ++s.delivered;
      ++delivered_total;
      if (--tree_remaining[tree] == 0) result.tree_finish_cycle[tree] = now;
    }
    last_progress = now;
  };

  while (delivered_total < total_target) {
    if (now > config_.max_cycles) {
      throw std::runtime_error("AllreduceSimulator: cycle limit exceeded");
    }
    if (now - last_progress > config_.stall_limit) {
      throw std::runtime_error(
          "AllreduceSimulator: deadlock detected at cycle " +
          std::to_string(now));
    }

    // 1. Arrivals: land in-flight packets and returned credits.
    for (auto& vc : vcs) {
      while (!vc.data_inflight.empty() &&
             vc.data_inflight.front().first <= now) {
        vc.recv.push_back(std::move(vc.data_inflight.front().second));
        vc.data_inflight.pop_front();
        result.max_vc_occupancy = std::max(
            result.max_vc_occupancy, static_cast<int>(vc.recv.size()));
        last_progress = now;
      }
      while (!vc.credit_inflight.empty() &&
             vc.credit_inflight.front() <= now) {
        vc.credit_inflight.pop_front();
        ++vc.credits;
      }
    }

    // 2. Root engines. Allreduce/Reduce: final sums materialize at the
    // root (into the turnaround queue or straight to local delivery).
    // Broadcast: the root sources its own stream into the queue.
    for (int t = 0; t < num_trees; ++t) {
      NodeTreeState& s = st(trees_[t].root, t);
      for (int fire = 0; fire < config_.link_bandwidth; ++fire) {
        if (s.injected >= elements_per_tree[t]) break;
        if (mode != Collective::kReduce &&
            static_cast<int>(s.root_queue.size()) >= config_.vc_credits) {
          break;
        }
        Packet packet;
        if (mode == Collective::kBroadcast) {
          const long long remaining = elements_per_tree[t] - s.injected;
          const long long size =
              std::min<long long>(config_.packet_payload, remaining);
          packet.resize(size);
          for (long long i = 0; i < size; ++i) {
            packet[i] = local_value(trees_[t].root, t, s.injected + i);
          }
          s.injected += size;
        } else {
          bool inputs_ready = true;
          for (int cvc : s.child_reduce_vc) {
            if (vcs[cvc].recv.empty()) {
              inputs_ready = false;
              break;
            }
          }
          if (!inputs_ready) break;
          packet = make_reduce_packet(trees_[t].root, t);
        }
        if (mode == Collective::kReduce) {
          deliver(trees_[t].root, t, packet);
        } else {
          s.root_queue.push_back(std::move(packet));
        }
        last_progress = now;
      }
    }

    // 3. Broadcast replication: parent VC (or root queue) -> all fork
    // stages + local delivery. Fork-stage room is required for all
    // children, which bounds buffering and stays deadlock-free.
    if (want_bcast) {
      for (int t = 0; t < num_trees; ++t) {
        for (int v = 0; v < n; ++v) {
          NodeTreeState& s = st(v, t);
          const bool is_root = (v == trees_[t].root);
          if (!is_root && s.parent_bcast_vc < 0) continue;
          for (int moves = 0; moves < config_.link_bandwidth; ++moves) {
            bool room = true;
            for (const auto& stage : s.fork_stage) {
              if (static_cast<int>(stage.size()) >= config_.fork_buffer) {
                room = false;
                break;
              }
            }
            if (!room) break;
            Packet packet;
            if (is_root) {
              if (s.root_queue.empty()) break;
              packet = std::move(s.root_queue.front());
              s.root_queue.pop_front();
            } else {
              VcState& pvc = vcs[s.parent_bcast_vc];
              if (pvc.recv.empty()) break;
              packet = std::move(pvc.recv.front());
              pvc.recv.pop_front();
              pvc.credit_inflight.push_back(now + config_.link_latency);
            }
            deliver(v, t, packet);
            for (auto& stage : s.fork_stage) stage.push_back(packet);
          }
        }
      }
    }

    // 4. Link arbitration: round-robin over each directed link's VCs,
    // consuming token-bucket flit slots (payload + header per packet).
    for (int dl = 0; dl < num_dlinks; ++dl) {
      const auto& ids = link_vcs[dl];
      if (ids.empty()) continue;
      tokens[dl] = std::min<long long>(
          tokens[dl] + config_.link_bandwidth,
          static_cast<long long>(config_.link_bandwidth) *
              (config_.packet_payload + header));
      const int count = static_cast<int>(ids.size());
      const int probes = count * config_.link_bandwidth;
      const int base = rr[dl];
      for (int probe = 0; probe < probes && tokens[dl] > 0; ++probe) {
        const int slot = (base + probe) % count;
        VcState& vc = vcs[ids[slot]];
        if (vc.credits <= 0 || !vc_ready(vc)) continue;
        // True round-robin: rotate past the granted VC so competing trees
        // alternate even when packets occupy the link for several cycles.
        rr[dl] = (slot + 1) % count;
        Packet packet;
        if (vc.phase == Phase::kReduce) {
          packet = make_reduce_packet(vc.src, vc.tree);
        } else {
          NodeTreeState& s = st(vc.src, vc.tree);
          packet = std::move(s.fork_stage[vc.fork_index].front());
          s.fork_stage[vc.fork_index].pop_front();
        }
        const long long flits =
            static_cast<long long>(packet.size()) + header;
        tokens[dl] -= flits;
        result.link_flits[dl] += flits;
        --vc.credits;
        vc.data_inflight.emplace_back(now + config_.link_latency,
                                      std::move(packet));
        last_progress = now;
      }
    }

    ++now;
  }

  result.cycles = now;
  result.aggregate_bandwidth =
      static_cast<double>(result.total_elements) / static_cast<double>(now);
  return result;
}

}  // namespace pfar::simnet
