#include "simnet/allreduce_sim.hpp"

#include <algorithm>
#include <bit>
#include <climits>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>

namespace pfar::simnet {
namespace {

// Deterministic per-operand values so every result is checkable exactly:
// node v's operand for element k of tree t.
constexpr std::int64_t kNodeStride = 1000003;
constexpr std::int64_t kTreeStride = 7919;
constexpr std::int64_t kElemStride = 31;

std::int64_t local_value(int node, int tree, long long k) {
  return static_cast<std::int64_t>(node + 1) * kNodeStride +
         static_cast<std::int64_t>(tree) * kTreeStride +
         static_cast<std::int64_t>(k) * kElemStride;
}

std::int64_t sum_over_nodes(int num_nodes, int tree, long long k) {
  const std::int64_t n = num_nodes;
  return n * (n + 1) / 2 * kNodeStride +
         n * (static_cast<std::int64_t>(tree) * kTreeStride +
              static_cast<std::int64_t>(k) * kElemStride);
}

enum class Phase { kReduce, kBcast };

// A packet: a contiguous chunk of one tree's element stream.
using Packet = std::vector<std::int64_t>;

// One virtual channel: the unidirectional, per-tree, per-phase logical
// datapath on a physical link, with its own receiver buffer and credits
// (Section 5.1's "VCs have disjoint resources").
struct VcState {
  int tree = -1;
  Phase phase = Phase::kReduce;
  int src = -1;
  int dst = -1;
  int dlink = -1;
  int fork_index = -1;  // bcast only: child slot at src feeding this VC

  std::deque<Packet> recv;  // receiver buffer, <= credits cap packets
  int credits = 0;
  std::deque<std::pair<long long, Packet>> data_inflight;
  std::deque<long long> credit_inflight;
};

// Per-(router, tree) state: reduction engine inputs/outputs and the
// broadcast fork stage.
struct NodeTreeState {
  int parent = -1;
  std::vector<int> children;
  std::vector<int> child_reduce_vc;
  int parent_reduce_vc = -1;
  int parent_bcast_vc = -1;
  std::vector<int> child_bcast_vc;
  std::vector<std::deque<Packet>> fork_stage;
  std::deque<Packet> root_queue;  // root only: reduce -> bcast turnaround
  long long injected = 0;   // local elements consumed by the engine
  long long delivered = 0;  // elements delivered locally
};

// The VC fabric and per-(node, tree) engine state both cycle-loop engines
// run on, plus the tree roots.
struct Fabric {
  int n = 0;
  int num_trees = 0;
  int num_dlinks = 0;
  std::vector<int> roots;
  std::vector<VcState> vcs;
  std::vector<std::vector<int>> link_vcs;
  std::vector<NodeTreeState> state;

  NodeTreeState& st(int node, int tree) {
    return state[static_cast<std::size_t>(tree) * n + node];
  }
};

Fabric build_fabric(const graph::Graph& topology,
                    const std::vector<TreeEmbedding>& trees,
                    const SimConfig& config, SimResult& result) {
  Fabric f;
  f.n = topology.num_vertices();
  f.num_trees = static_cast<int>(trees.size());
  f.num_dlinks = 2 * topology.num_edges();
  f.roots.resize(f.num_trees);
  f.link_vcs.resize(f.num_dlinks);
  f.state.resize(static_cast<std::size_t>(f.n) * f.num_trees);

  const Collective mode = config.collective;
  const bool want_reduce = mode != Collective::kBroadcast;
  const bool want_bcast = mode != Collective::kReduce;

  const auto dlink_of = [&](int src, int dst) {
    const int eid = topology.edge_id(src, dst);
    return 2 * eid + (src > dst ? 1 : 0);
  };
  const auto new_vc = [&](int tree, Phase phase, int src, int dst) {
    VcState vc;
    vc.tree = tree;
    vc.phase = phase;
    vc.src = src;
    vc.dst = dst;
    vc.dlink = dlink_of(src, dst);
    vc.credits = config.vc_credits;
    f.vcs.push_back(std::move(vc));
    const int id = static_cast<int>(f.vcs.size()) - 1;
    f.link_vcs[f.vcs[id].dlink].push_back(id);
    return id;
  };

  for (int t = 0; t < f.num_trees; ++t) {
    const auto& tree = trees[t];
    f.roots[t] = tree.root;
    for (int v = 0; v < f.n; ++v) {
      f.st(v, t).parent = tree.parent[v];
      if (tree.parent[v] >= 0) f.st(tree.parent[v], t).children.push_back(v);
    }
    for (int v = 0; v < f.n; ++v) {
      NodeTreeState& s = f.st(v, t);
      if (s.parent >= 0) {
        if (want_reduce) {
          s.parent_reduce_vc = new_vc(t, Phase::kReduce, v, s.parent);
        }
        if (want_bcast) {
          s.parent_bcast_vc = new_vc(t, Phase::kBcast, s.parent, v);
        }
      }
      s.fork_stage.resize(s.children.size());
      s.child_bcast_vc.assign(s.children.size(), -1);
      s.child_reduce_vc.assign(s.children.size(), -1);
    }
    for (int v = 0; v < f.n; ++v) {
      NodeTreeState& s = f.st(v, t);
      for (std::size_t c = 0; c < s.children.size(); ++c) {
        const int child = s.children[c];
        s.child_reduce_vc[c] = f.st(child, t).parent_reduce_vc;
        s.child_bcast_vc[c] = f.st(child, t).parent_bcast_vc;
        if (s.child_bcast_vc[c] >= 0) {
          f.vcs[s.child_bcast_vc[c]].fork_index = static_cast<int>(c);
        }
      }
    }
  }

  result.num_vcs = static_cast<int>(f.vcs.size());
  for (const auto& lv : f.link_vcs) {
    result.max_vcs_per_link =
        std::max(result.max_vcs_per_link, static_cast<int>(lv.size()));
  }
  // Lemma 7.8 accounting: distinct trees consuming each input port as a
  // reduction input.
  if (want_reduce) {
    std::vector<int> reductions_per_port(f.num_dlinks, 0);
    for (const auto& vc : f.vcs) {
      if (vc.phase == Phase::kReduce) ++reductions_per_port[vc.dlink];
    }
    for (int c : reductions_per_port) {
      result.max_reductions_per_input_port =
          std::max(result.max_reductions_per_input_port, c);
    }
  }
  result.link_flits.assign(f.num_dlinks, 0);
  result.tree_finish_cycle.assign(f.num_trees, 0);
  result.tree_first_delivery.assign(f.num_trees, -1);
  result.values_correct = true;
  return f;
}

// ---------------------------------------------------------------------------
// Reference engine: the original cycle-by-cycle loop. Every VC is scanned
// for arrivals, every (node, tree) broadcast engine is visited and every
// link arbitrated on every cycle. Kept verbatim as the oracle the
// fast-forward engine is tested against (determinism_test).
// ---------------------------------------------------------------------------
long long run_reference_loop(Fabric& f, const SimConfig& config,
                             const std::vector<long long>& elements_per_tree,
                             SimResult& result,
                             std::vector<long long>& tree_remaining,
                             long long total_target) {
  const int n = f.n;
  const int num_trees = f.num_trees;
  const Collective mode = config.collective;
  const bool want_bcast = mode != Collective::kReduce;
  auto& vcs = f.vcs;

  const auto expected_value = [&](int tree, long long k) {
    return mode == Collective::kBroadcast
               ? local_value(f.roots[tree], tree, k)
               : sum_over_nodes(n, tree, k);
  };

  long long delivered_total = 0;
  long long now = 0;
  long long last_progress = 0;
  std::vector<int> rr(f.num_dlinks, 0);
  // Token-bucket link occupancy: `tokens` flit-slots accumulate at
  // link_bandwidth per cycle (bounded burst); a packet consumes
  // payload + header flits and may borrow, modeling multi-cycle packets.
  std::vector<long long> tokens(f.num_dlinks, 0);
  const int header = config.packet_header_flits;

  const auto vc_ready = [&](const VcState& vc) -> bool {
    const NodeTreeState& s = f.st(vc.src, vc.tree);
    if (vc.phase == Phase::kReduce) {
      if (s.injected >= elements_per_tree[vc.tree]) return false;
      for (int cvc : s.child_reduce_vc) {
        if (vcs[cvc].recv.empty()) return false;
      }
      return true;
    }
    return !s.fork_stage[vc.fork_index].empty();
  };

  // Assembles the next reduction packet at node `src` for tree `tree`:
  // local chunk combined with one packet from each child. Chunk sizes are
  // aligned across children because every stream chunks the same way.
  const auto make_reduce_packet = [&](int src, int tree) -> Packet {
    NodeTreeState& s = f.st(src, tree);
    const long long remaining = elements_per_tree[tree] - s.injected;
    long long size = std::min<long long>(config.packet_payload, remaining);
    for (int cvc : s.child_reduce_vc) {
      if (static_cast<long long>(vcs[cvc].recv.front().size()) != size) {
        throw std::logic_error("reduce packet misalignment");
      }
    }
    Packet packet(size);
    for (long long i = 0; i < size; ++i) {
      packet[i] = local_value(src, tree, s.injected + i);
    }
    s.injected += size;
    for (int cvc : s.child_reduce_vc) {
      const Packet& head = vcs[cvc].recv.front();
      for (long long i = 0; i < size; ++i) packet[i] += head[i];
      vcs[cvc].recv.pop_front();
      vcs[cvc].credit_inflight.push_back(now + config.link_latency);
    }
    return packet;
  };

  const auto deliver = [&](int node, int tree, const Packet& packet) {
    NodeTreeState& s = f.st(node, tree);
    if (result.tree_first_delivery[tree] < 0) {
      result.tree_first_delivery[tree] = now;
    }
    for (std::int64_t value : packet) {
      if (value != expected_value(tree, s.delivered)) {
        result.values_correct = false;
      }
      ++s.delivered;
      ++delivered_total;
      if (--tree_remaining[tree] == 0) result.tree_finish_cycle[tree] = now;
    }
    last_progress = now;
  };

  while (delivered_total < total_target) {
    if (now > config.max_cycles) {
      throw std::runtime_error("AllreduceSimulator: cycle limit exceeded");
    }
    if (now - last_progress > config.stall_limit) {
      throw std::runtime_error(
          "AllreduceSimulator: deadlock detected at cycle " +
          std::to_string(now));
    }

    // 1. Arrivals: land in-flight packets and returned credits.
    for (auto& vc : vcs) {
      while (!vc.data_inflight.empty() &&
             vc.data_inflight.front().first <= now) {
        vc.recv.push_back(std::move(vc.data_inflight.front().second));
        vc.data_inflight.pop_front();
        result.max_vc_occupancy = std::max(
            result.max_vc_occupancy, static_cast<int>(vc.recv.size()));
        last_progress = now;
      }
      while (!vc.credit_inflight.empty() &&
             vc.credit_inflight.front() <= now) {
        vc.credit_inflight.pop_front();
        ++vc.credits;
      }
    }

    // 2. Root engines. Allreduce/Reduce: final sums materialize at the
    // root (into the turnaround queue or straight to local delivery).
    // Broadcast: the root sources its own stream into the queue.
    for (int t = 0; t < num_trees; ++t) {
      NodeTreeState& s = f.st(f.roots[t], t);
      for (int fire = 0; fire < config.link_bandwidth; ++fire) {
        if (s.injected >= elements_per_tree[t]) break;
        if (mode != Collective::kReduce &&
            static_cast<int>(s.root_queue.size()) >= config.vc_credits) {
          break;
        }
        Packet packet;
        if (mode == Collective::kBroadcast) {
          const long long remaining = elements_per_tree[t] - s.injected;
          const long long size =
              std::min<long long>(config.packet_payload, remaining);
          packet.resize(size);
          for (long long i = 0; i < size; ++i) {
            packet[i] = local_value(f.roots[t], t, s.injected + i);
          }
          s.injected += size;
        } else {
          bool inputs_ready = true;
          for (int cvc : s.child_reduce_vc) {
            if (vcs[cvc].recv.empty()) {
              inputs_ready = false;
              break;
            }
          }
          if (!inputs_ready) break;
          packet = make_reduce_packet(f.roots[t], t);
        }
        if (mode == Collective::kReduce) {
          deliver(f.roots[t], t, packet);
        } else {
          s.root_queue.push_back(std::move(packet));
        }
        last_progress = now;
      }
    }

    // 3. Broadcast replication: parent VC (or root queue) -> all fork
    // stages + local delivery. Fork-stage room is required for all
    // children, which bounds buffering and stays deadlock-free.
    if (want_bcast) {
      for (int t = 0; t < num_trees; ++t) {
        for (int v = 0; v < n; ++v) {
          NodeTreeState& s = f.st(v, t);
          const bool is_root = (v == f.roots[t]);
          if (!is_root && s.parent_bcast_vc < 0) continue;
          for (int moves = 0; moves < config.link_bandwidth; ++moves) {
            bool room = true;
            for (const auto& stage : s.fork_stage) {
              if (static_cast<int>(stage.size()) >= config.fork_buffer) {
                room = false;
                break;
              }
            }
            if (!room) break;
            Packet packet;
            if (is_root) {
              if (s.root_queue.empty()) break;
              packet = std::move(s.root_queue.front());
              s.root_queue.pop_front();
            } else {
              VcState& pvc = vcs[s.parent_bcast_vc];
              if (pvc.recv.empty()) break;
              packet = std::move(pvc.recv.front());
              pvc.recv.pop_front();
              pvc.credit_inflight.push_back(now + config.link_latency);
            }
            deliver(v, t, packet);
            const std::size_t forks = s.fork_stage.size();
            for (std::size_t c = 0; c + 1 < forks; ++c) {
              s.fork_stage[c].push_back(packet);
            }
            if (forks > 0) {
              s.fork_stage[forks - 1].push_back(std::move(packet));
            }
          }
        }
      }
    }

    // 4. Link arbitration: round-robin over each directed link's VCs,
    // consuming token-bucket flit slots (payload + header per packet).
    for (int dl = 0; dl < f.num_dlinks; ++dl) {
      const auto& ids = f.link_vcs[dl];
      if (ids.empty()) continue;
      tokens[dl] = std::min<long long>(
          tokens[dl] + config.link_bandwidth,
          static_cast<long long>(config.link_bandwidth) *
              (config.packet_payload + header));
      const int count = static_cast<int>(ids.size());
      const int probes = count * config.link_bandwidth;
      const int base = rr[dl];
      for (int probe = 0; probe < probes && tokens[dl] > 0; ++probe) {
        const int slot = (base + probe) % count;
        VcState& vc = vcs[ids[slot]];
        if (vc.credits <= 0 || !vc_ready(vc)) continue;
        // True round-robin: rotate past the granted VC so competing trees
        // alternate even when packets occupy the link for several cycles.
        rr[dl] = (slot + 1) % count;
        Packet packet;
        if (vc.phase == Phase::kReduce) {
          packet = make_reduce_packet(vc.src, vc.tree);
        } else {
          NodeTreeState& s = f.st(vc.src, vc.tree);
          packet = std::move(s.fork_stage[vc.fork_index].front());
          s.fork_stage[vc.fork_index].pop_front();
        }
        const long long flits =
            static_cast<long long>(packet.size()) + header;
        tokens[dl] -= flits;
        result.link_flits[dl] += flits;
        --vc.credits;
        vc.data_inflight.emplace_back(now + config.link_latency,
                                      std::move(packet));
        last_progress = now;
      }
    }

    ++now;
  }
  return now;
}

// ---------------------------------------------------------------------------
// Fast-forward engine. Bit-identical to the reference loop, with four
// structural changes:
//
//  * arrivals and credit returns are scheduled on a time-indexed wheel (all
//    landing times are `now + link_latency`, so the wheel has latency + 1
//    buckets and each cycle drains exactly one) instead of scanning every
//    VC every cycle, with at most one wake-up per (VC, cycle);
//  * broadcast replication visits only (node, tree) engines that an event
//    re-armed (packet arrival, root-queue push, fork-slot drain) instead of
//    all n * num_trees engines, and reduce readiness is an incrementally
//    maintained ready-children counter instead of a per-probe child scan;
//  * packet payloads live in a slab arena (fixed stride = packet_payload,
//    free-list recycling) and every queue — receive buffer + in-flight
//    pipeline (one combined ring per VC), credit returns, fork stages, root
//    turnaround — is a fixed-capacity power-of-two ring over flat arrays.
//    All of them are bounded by the credit/fork-buffer limits, so nothing
//    allocates after setup;
//  * a cycle in which nothing moved and no event landed is provably
//    followed by identical no-op cycles until the next in-flight landing or
//    token-bucket recharge, so `now` jumps there in one step. Token buckets
//    advance over the skipped range in closed form (min(t + k*B, cap) is
//    the k-fold composition of the per-cycle update), and the jump is
//    clamped to the stall and max_cycles deadlines so even the throwing
//    paths report the same cycle numbers as the reference loop.
// ---------------------------------------------------------------------------
long long run_fast_loop(Fabric& f, const SimConfig& config,
                        const std::vector<long long>& elements_per_tree,
                        SimResult& result,
                        std::vector<long long>& tree_remaining,
                        long long total_target) {
  const int n = f.n;
  const int num_trees = f.num_trees;
  const int num_vcs = static_cast<int>(f.vcs.size());
  const Collective mode = config.collective;
  const bool want_bcast = mode != Collective::kReduce;

  const auto expected_value = [&](int tree, long long k) {
    return mode == Collective::kBroadcast
               ? local_value(f.roots[tree], tree, k)
               : sum_over_nodes(n, tree, k);
  };

  long long delivered_total = 0;
  long long now = 0;
  long long last_progress = 0;
  std::vector<int> rr(f.num_dlinks, 0);
  std::vector<long long> tokens(f.num_dlinks, 0);
  const int header = config.packet_header_flits;
  const int bw = config.link_bandwidth;
  const long long token_cap =
      static_cast<long long>(bw) * (config.packet_payload + header);
  const int latency = config.link_latency;

  // --- Slab arena. Every packet's payload occupies one fixed-stride slab;
  // a consumed packet's slab goes on the free list for immediate reuse.
  const int stride = config.packet_payload;
  struct Ref {
    std::int32_t slab;
    std::int32_t size;
  };
  std::vector<std::int64_t> arena;
  std::vector<std::int32_t> free_slabs;
  std::int32_t num_slabs = 0;
  const auto alloc_slab = [&]() -> std::int32_t {
    if (!free_slabs.empty()) {
      const std::int32_t s = free_slabs.back();
      free_slabs.pop_back();
      return s;
    }
    arena.resize(arena.size() + static_cast<std::size_t>(stride));
    return num_slabs++;
  };

  // --- Per-VC rings. The receive buffer and the in-flight pipeline share
  // one FIFO ring: entries [0, ready) have landed (the reference loop's
  // `recv`), entries [ready, total) are still on the wire with their
  // landing times in ring_time. recv + in-flight together never exceed
  // vc_credits (a send consumes a credit that only returns after the pop),
  // so a bit_ceil(vc_credits) ring never overflows; same for the credit-
  // return ring.
  const std::uint32_t pcap =
      std::bit_ceil(static_cast<std::uint32_t>(config.vc_credits));
  const std::uint32_t pmask = pcap - 1;
  std::vector<long long> ring_time(static_cast<std::size_t>(num_vcs) * pcap);
  std::vector<Ref> ring_ref(static_cast<std::size_t>(num_vcs) * pcap);
  std::vector<long long> credit_time(static_cast<std::size_t>(num_vcs) *
                                     pcap);
  std::vector<std::uint32_t> rhead(num_vcs, 0), rtotal(num_vcs, 0),
      rready(num_vcs, 0);
  std::vector<std::uint32_t> chead(num_vcs, 0), ccount(num_vcs, 0);
  std::vector<std::int32_t> credits(num_vcs, config.vc_credits);

  // --- Per-VC metadata flattened out of VcState for the hot paths.
  std::vector<char> vc_is_reduce(num_vcs);
  std::vector<std::int32_t> vc_src_state(num_vcs), vc_dst_state(num_vcs);

  // --- Per-(node, tree) engine state: ready-children counter plus flat
  // fork-stage rings (global stage id = stage_base[state] + child slot).
  const std::size_t num_states = f.state.size();
  std::vector<std::int32_t> eng_ready(num_states, 0);
  std::vector<std::int32_t> eng_nchild(num_states);
  std::vector<long long> eng_target(num_states);
  std::vector<std::int32_t> stage_base(num_states + 1, 0);
  for (std::size_t i = 0; i < num_states; ++i) {
    eng_nchild[i] = static_cast<std::int32_t>(f.state[i].children.size());
    eng_target[i] = elements_per_tree[i / n];
    stage_base[i + 1] = stage_base[i] + eng_nchild[i];
  }
  const int num_stages = stage_base[num_states];
  const std::uint32_t fcap =
      std::bit_ceil(static_cast<std::uint32_t>(config.fork_buffer));
  const std::uint32_t fmask = fcap - 1;
  std::vector<Ref> fork_ring(static_cast<std::size_t>(num_stages) * fcap);
  std::vector<std::uint32_t> fhead(num_stages, 0), fcount(num_stages, 0);
  std::vector<std::int32_t> vc_stage(num_vcs, -1);
  for (int id = 0; id < num_vcs; ++id) {
    const VcState& vc = f.vcs[id];
    vc_is_reduce[id] = vc.phase == Phase::kReduce ? 1 : 0;
    vc_src_state[id] = vc.tree * n + vc.src;
    vc_dst_state[id] = vc.tree * n + vc.dst;
    if (vc.phase == Phase::kBcast) {
      vc_stage[id] = stage_base[vc_src_state[id]] + vc.fork_index;
    }
  }

  // --- Root turnaround queues, one ring per tree.
  std::vector<Ref> root_ring(static_cast<std::size_t>(num_trees) * pcap);
  std::vector<std::uint32_t> rq_head(num_trees, 0), rq_count(num_trees, 0);

  // Event wheel: every data landing and credit return is scheduled at
  // now + latency, so pending wake-ups live in (now, now + latency] and a
  // bit_ceil(latency + 1)-bucket wheel indexed by time & mask is
  // collision-free. All events scheduled within one cycle land in the same
  // bucket (`sched_bucket`, re-aimed at each cycle top); last_wake dedupes
  // to one entry per (VC, cycle).
  const std::uint32_t wheel_size =
      std::bit_ceil(static_cast<std::uint32_t>(latency) + 1u);
  const std::uint32_t wmask = wheel_size - 1;
  std::vector<std::vector<std::int32_t>> wheel(wheel_size);
  std::vector<long long> last_wake(num_vcs, -1);
  long long pending_events = 0;
  std::vector<std::int32_t>* sched_bucket = &wheel[latency & wmask];
  const auto schedule_wakeup = [&](int vc_id) {
    if (last_wake[vc_id] == now) return;
    last_wake[vc_id] = now;
    sched_bucket->push_back(vc_id);
    ++pending_events;
  };

  // Incremental operand/expected-value generators: local_value and
  // expected_value are linear in the element index, so each engine keeps
  // the next value and bumps it by the constant stride per element —
  // exactly the same integers as recomputing from scratch.
  const std::int64_t exp_slope =
      mode == Collective::kBroadcast
          ? kElemStride
          : static_cast<std::int64_t>(n) * kElemStride;
  std::vector<std::int64_t> inj_next(num_states), exp_next(num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    const int tree = static_cast<int>(i) / n;
    inj_next[i] = local_value(static_cast<int>(i) % n, tree, 0);
    exp_next[i] = expected_value(tree, 0);
  }

  // Active broadcast engines: (node, tree) pairs that an event may have
  // unblocked since they last ran.
  std::vector<char> bcast_active(num_states, 0);
  std::vector<std::int32_t> bcast_list, bcast_current;
  const auto activate_bcast = [&](std::int32_t state_idx) {
    if (!bcast_active[state_idx]) {
      bcast_active[state_idx] = 1;
      bcast_list.push_back(state_idx);
    }
  };

  // True whenever this cycle changed any state besides token accumulation
  // (which the jump replays in closed form) — cleared at each cycle top.
  bool progressed = false;

  // Pops the ready head packet of a reduce child VC and schedules its
  // credit return; keeps the consumer's ready-children counter in sync.
  const auto pop_child = [&](int cvc, std::int32_t consumer_state) -> Ref {
    const Ref head = ring_ref[cvc * pcap + (rhead[cvc] & pmask)];
    rhead[cvc] = (rhead[cvc] + 1) & pmask;
    --rtotal[cvc];
    if (--rready[cvc] == 0) --eng_ready[consumer_state];
    credit_time[cvc * pcap + ((chead[cvc] + ccount[cvc]) & pmask)] =
        now + latency;
    ++ccount[cvc];
    schedule_wakeup(cvc);
    return head;
  };

  const auto make_reduce_packet = [&](std::int32_t state_idx) -> Ref {
    NodeTreeState& s = f.state[state_idx];
    const long long remaining = eng_target[state_idx] - s.injected;
    const long long size =
        std::min<long long>(config.packet_payload, remaining);
    const std::int32_t slab = alloc_slab();
    std::int64_t* out = &arena[static_cast<std::size_t>(slab) * stride];
    std::int64_t value = inj_next[state_idx];
    for (long long i = 0; i < size; ++i) {
      out[i] = value;
      value += kElemStride;
    }
    inj_next[state_idx] = value;
    s.injected += size;
    for (int cvc : s.child_reduce_vc) {
      const Ref head = pop_child(cvc, state_idx);
      if (head.size != size) {
        throw std::logic_error("reduce packet misalignment");
      }
      const std::int64_t* in =
          &arena[static_cast<std::size_t>(head.slab) * stride];
      for (long long i = 0; i < size; ++i) out[i] += in[i];
      free_slabs.push_back(head.slab);
    }
    return Ref{slab, static_cast<std::int32_t>(size)};
  };

  const auto deliver = [&](int tree, std::int32_t state_idx, Ref packet) {
    if (result.tree_first_delivery[tree] < 0) {
      result.tree_first_delivery[tree] = now;
    }
    const std::int64_t* p =
        &arena[static_cast<std::size_t>(packet.slab) * stride];
    std::int64_t expected = exp_next[state_idx];
    for (std::int32_t i = 0; i < packet.size; ++i) {
      if (p[i] != expected) result.values_correct = false;
      expected += exp_slope;
      ++delivered_total;
      if (--tree_remaining[tree] == 0) result.tree_finish_cycle[tree] = now;
    }
    exp_next[state_idx] = expected;
    last_progress = now;
    progressed = true;
  };

  while (delivered_total < total_target) {
    if (now > config.max_cycles) {
      throw std::runtime_error("AllreduceSimulator: cycle limit exceeded");
    }
    if (now - last_progress > config.stall_limit) {
      throw std::runtime_error(
          "AllreduceSimulator: deadlock detected at cycle " +
          std::to_string(now));
    }

    progressed = false;
    sched_bucket = &wheel[(now + latency) & wmask];

    // 1. Arrivals: only VCs with a wake-up scheduled for this cycle. A
    // landing advances the ready boundary of the combined ring; a matured
    // credit return bumps the sender-side credit count.
    {
      auto& bucket = wheel[now & wmask];
      if (!bucket.empty()) {
        pending_events -= static_cast<long long>(bucket.size());
        for (std::int32_t id : bucket) {
          const std::size_t base = static_cast<std::size_t>(id) * pcap;
          const std::uint32_t before = rready[id];
          while (rready[id] < rtotal[id] &&
                 ring_time[base + ((rhead[id] + rready[id]) & pmask)] <=
                     now) {
            ++rready[id];
          }
          if (rready[id] != before) {
            result.max_vc_occupancy =
                std::max(result.max_vc_occupancy,
                         static_cast<int>(rready[id]));
            last_progress = now;
            progressed = true;
            if (vc_is_reduce[id]) {
              if (before == 0) ++eng_ready[vc_dst_state[id]];
            } else {
              activate_bcast(vc_dst_state[id]);
            }
          }
          while (ccount[id] > 0 &&
                 credit_time[base + (chead[id] & pmask)] <= now) {
            chead[id] = (chead[id] + 1) & pmask;
            --ccount[id];
            ++credits[id];
            progressed = true;
          }
        }
        bucket.clear();
      }
    }

    // 2. Root engines (O(num_trees), cheap enough to visit every cycle).
    for (int t = 0; t < num_trees; ++t) {
      const std::int32_t si = t * n + f.roots[t];
      NodeTreeState& s = f.state[si];
      for (int fire = 0; fire < bw; ++fire) {
        if (s.injected >= eng_target[si]) break;
        if (mode != Collective::kReduce &&
            static_cast<int>(rq_count[t]) >= config.vc_credits) {
          break;
        }
        Ref packet;
        if (mode == Collective::kBroadcast) {
          const long long remaining = eng_target[si] - s.injected;
          const long long size =
              std::min<long long>(config.packet_payload, remaining);
          const std::int32_t slab = alloc_slab();
          std::int64_t* out =
              &arena[static_cast<std::size_t>(slab) * stride];
          std::int64_t value = inj_next[si];
          for (long long i = 0; i < size; ++i) {
            out[i] = value;
            value += kElemStride;
          }
          inj_next[si] = value;
          s.injected += size;
          packet = Ref{slab, static_cast<std::int32_t>(size)};
        } else {
          if (eng_ready[si] != eng_nchild[si]) break;
          packet = make_reduce_packet(si);
        }
        if (mode == Collective::kReduce) {
          deliver(t, si, packet);
          free_slabs.push_back(packet.slab);
        } else {
          root_ring[t * pcap + ((rq_head[t] + rq_count[t]) & pmask)] =
              packet;
          ++rq_count[t];
          activate_bcast(si);
        }
        last_progress = now;
        progressed = true;
      }
    }

    // 3. Broadcast replication, active engines only. Processing order
    // within a cycle does not affect any state the engines share, so the
    // activation order is as good as the reference loop's (t, v) order.
    if (want_bcast && !bcast_list.empty()) {
      bcast_current.clear();
      bcast_current.swap(bcast_list);
      for (std::int32_t idx : bcast_current) bcast_active[idx] = 0;
      for (std::int32_t idx : bcast_current) {
        const int t = idx / n;
        const int v = idx % n;
        NodeTreeState& s = f.state[idx];
        const bool is_root = (v == f.roots[t]);
        if (!is_root && s.parent_bcast_vc < 0) continue;
        const std::int32_t sb = stage_base[idx];
        const std::int32_t forks = eng_nchild[idx];
        bool blocked = false;
        int moves = 0;
        for (; moves < bw; ++moves) {
          bool room = true;
          for (std::int32_t c = 0; c < forks; ++c) {
            if (static_cast<int>(fcount[sb + c]) >= config.fork_buffer) {
              room = false;
              break;
            }
          }
          if (!room) {
            blocked = true;  // re-armed by a fork-slot drain in step 4
            break;
          }
          Ref packet;
          if (is_root) {
            if (rq_count[t] == 0) {
              blocked = true;  // re-armed by the next root-queue push
              break;
            }
            packet = root_ring[t * pcap + (rq_head[t] & pmask)];
            rq_head[t] = (rq_head[t] + 1) & pmask;
            --rq_count[t];
          } else {
            const int pvc = s.parent_bcast_vc;
            if (rready[pvc] == 0) {
              blocked = true;  // re-armed by the next arrival
              break;
            }
            packet = ring_ref[pvc * pcap + (rhead[pvc] & pmask)];
            rhead[pvc] = (rhead[pvc] + 1) & pmask;
            --rtotal[pvc];
            --rready[pvc];
            credit_time[pvc * pcap +
                        ((chead[pvc] + ccount[pvc]) & pmask)] =
                now + latency;
            ++ccount[pvc];
            schedule_wakeup(pvc);
          }
          deliver(t, idx, packet);
          if (forks == 0) {
            free_slabs.push_back(packet.slab);
          } else {
            for (std::int32_t c = 0; c + 1 < forks; ++c) {
              const std::int32_t slab = alloc_slab();
              std::copy_n(
                  &arena[static_cast<std::size_t>(packet.slab) * stride],
                  packet.size,
                  &arena[static_cast<std::size_t>(slab) * stride]);
              const std::int32_t sid = sb + c;
              fork_ring[sid * fcap + ((fhead[sid] + fcount[sid]) & fmask)] =
                  Ref{slab, packet.size};
              ++fcount[sid];
            }
            const std::int32_t sid = sb + forks - 1;
            fork_ring[sid * fcap + ((fhead[sid] + fcount[sid]) & fmask)] =
                packet;
            ++fcount[sid];
          }
        }
        // Used its full per-cycle budget without blocking: it may have more
        // work next cycle with no new event to re-arm it, so stay active.
        if (!blocked && moves == bw) activate_bcast(idx);
      }
    }

    // 4. Link arbitration, identical to the reference loop except that a
    // token-starved link contributes its recharge time to the event
    // horizon instead of being probed.
    long long recharge_offset = LLONG_MAX;
    for (int dl = 0; dl < f.num_dlinks; ++dl) {
      const auto& ids = f.link_vcs[dl];
      if (ids.empty()) continue;
      tokens[dl] = std::min<long long>(tokens[dl] + bw, token_cap);
      if (tokens[dl] <= 0) {
        // Cycles until the bucket is positive again: smallest k >= 1 with
        // tokens + k * bw >= 1.
        recharge_offset =
            std::min(recharge_offset, (1 - tokens[dl] + bw - 1) / bw);
        continue;
      }
      const int count = static_cast<int>(ids.size());
      const int probes = count * bw;
      int slot = rr[dl];
      for (int probe = 0; probe < probes && tokens[dl] > 0;
           ++probe, slot = slot + 1 == count ? 0 : slot + 1) {
        const int id = ids[slot];
        if (credits[id] <= 0) continue;
        Ref packet;
        if (vc_is_reduce[id]) {
          const std::int32_t si = vc_src_state[id];
          if (f.state[si].injected >= eng_target[si] ||
              eng_ready[si] != eng_nchild[si]) {
            continue;
          }
          rr[dl] = slot + 1 == count ? 0 : slot + 1;
          packet = make_reduce_packet(si);
        } else {
          const std::int32_t sid = vc_stage[id];
          if (fcount[sid] == 0) continue;
          rr[dl] = slot + 1 == count ? 0 : slot + 1;
          packet = fork_ring[sid * fcap + (fhead[sid] & fmask)];
          fhead[sid] = (fhead[sid] + 1) & fmask;
          --fcount[sid];
          activate_bcast(vc_src_state[id]);  // fork slot drained
        }
        const long long flits = packet.size + header;
        tokens[dl] -= flits;
        result.link_flits[dl] += flits;
        --credits[id];
        ring_time[id * pcap + ((rhead[id] + rtotal[id]) & pmask)] =
            now + latency;
        ring_ref[id * pcap + ((rhead[id] + rtotal[id]) & pmask)] = packet;
        ++rtotal[id];
        schedule_wakeup(id);
        last_progress = now;
        progressed = true;
      }
    }

    if (progressed) {
      ++now;
      continue;
    }

    // Idle cycle: nothing can move until an in-flight landing, a token
    // recharge, or one of the abort deadlines. Jump there directly.
    long long target = LLONG_MAX;
    if (pending_events > 0) {
      for (int d = 1; d <= latency; ++d) {
        if (!wheel[(now + d) & wmask].empty()) {
          target = now + d;
          break;
        }
      }
    }
    if (recharge_offset != LLONG_MAX) {
      target = std::min(target, now + recharge_offset);
    }
    target = std::min(target, last_progress + config.stall_limit + 1);
    target = std::min(target, config.max_cycles + 1);
    const long long skip = target - now - 1;
    if (skip > 0) {
      for (int dl = 0; dl < f.num_dlinks; ++dl) {
        if (f.link_vcs[dl].empty()) continue;
        tokens[dl] = std::min<long long>(tokens[dl] + skip * bw, token_cap);
      }
    }
    now = target;
  }
  return now;
}

}  // namespace

AllreduceSimulator::AllreduceSimulator(const graph::Graph& topology,
                                       std::vector<TreeEmbedding> trees,
                                       SimConfig config)
    : topology_(topology), trees_(std::move(trees)), config_(config) {
  if (config_.link_bandwidth < 1 || config_.link_latency < 0 ||
      config_.vc_credits < 1 || config_.fork_buffer < 1 ||
      config_.packet_payload < 1 || config_.packet_header_flits < 0) {
    throw std::invalid_argument("AllreduceSimulator: bad config");
  }
  const int n = topology_.num_vertices();
  for (const auto& tree : trees_) {
    if (static_cast<int>(tree.parent.size()) != n) {
      throw std::invalid_argument("AllreduceSimulator: tree size mismatch");
    }
    for (int v = 0; v < n; ++v) {
      if (v == tree.root) {
        if (tree.parent[v] != -1) {
          throw std::invalid_argument("AllreduceSimulator: root has parent");
        }
        continue;
      }
      if (!topology_.has_edge(v, tree.parent[v])) {
        throw std::invalid_argument(
            "AllreduceSimulator: tree edge not a physical link");
      }
    }
  }
}

SimResult AllreduceSimulator::run(
    const std::vector<long long>& elements_per_tree) {
  const int num_trees = static_cast<int>(trees_.size());
  if (static_cast<int>(elements_per_tree.size()) != num_trees) {
    throw std::invalid_argument("run: elements_per_tree size mismatch");
  }

  SimResult result;
  Fabric fabric = build_fabric(topology_, trees_, config_, result);

  // Deliveries expected per tree: at every node for Allreduce/Broadcast,
  // at the root only for Reduce.
  const Collective mode = config_.collective;
  long long total_target = 0;
  std::vector<long long> tree_remaining(num_trees);
  for (int t = 0; t < num_trees; ++t) {
    if (elements_per_tree[t] < 0) {
      throw std::invalid_argument("run: negative element count");
    }
    result.total_elements += elements_per_tree[t];
    const long long receivers =
        (mode == Collective::kReduce) ? 1 : fabric.n;
    tree_remaining[t] = elements_per_tree[t] * receivers;
    total_target += tree_remaining[t];
  }
  if (total_target == 0) return result;

  const long long cycles =
      config_.engine == SimEngine::kReference
          ? run_reference_loop(fabric, config_, elements_per_tree, result,
                               tree_remaining, total_target)
          : run_fast_loop(fabric, config_, elements_per_tree, result,
                          tree_remaining, total_target);

  result.cycles = cycles;
  result.aggregate_bandwidth = static_cast<double>(result.total_elements) /
                               static_cast<double>(cycles);
  return result;
}

}  // namespace pfar::simnet
