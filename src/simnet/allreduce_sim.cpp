#include "simnet/allreduce_sim.hpp"

#include <algorithm>
#include <bit>
#include <climits>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>

#include "obsv/recorder.hpp"
#include "simnet/background.hpp"
#include "simnet/flow_sim.hpp"
#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace pfar::simnet {
namespace {

// Deterministic per-operand values so every result is checkable exactly:
// node v's operand for element k of tree t.
constexpr std::int64_t kNodeStride = 1000003;
constexpr std::int64_t kTreeStride = 7919;
constexpr std::int64_t kElemStride = 31;

std::int64_t local_value(int node, int tree, long long k) {
  return static_cast<std::int64_t>(node + 1) * kNodeStride +
         static_cast<std::int64_t>(tree) * kTreeStride +
         static_cast<std::int64_t>(k) * kElemStride;
}

std::int64_t sum_over_nodes(int num_nodes, int tree, long long k) {
  const std::int64_t n = num_nodes;
  return n * (n + 1) / 2 * kNodeStride +
         n * (static_cast<std::int64_t>(tree) * kTreeStride +
              static_cast<std::int64_t>(k) * kElemStride);
}

enum class Phase { kReduce, kBcast };

// A packet: a contiguous chunk of one tree's element stream.
using Packet = std::vector<std::int64_t>;

// ---------------------------------------------------------------------------
// Fault injection. One FaultState instance drives a single run; both
// engines consume it through the same entry points in the same per-cycle
// order, so a given script is honored bit-identically (the differential
// fault tests pin this). See docs/resilience.md for the model.
// ---------------------------------------------------------------------------

// SplitMix64 finalizer: the deterministic hash behind flaky-link drops.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A FaultEvent resolved against the topology: undirected edge id + kind.
struct PreparedFault {
  long long cycle = 0;
  int edge = 0;
  bool down = true;
};

struct FaultState {
  std::vector<PreparedFault> events;  // stable-sorted by cycle
  std::size_t next = 0;
  std::vector<char> edge_down;        // per undirected edge id
  std::vector<char> dlink_flaky;      // per directed link (empty if none)
  std::vector<long long> dlink_sent;  // flaky drop ordinal per directed link
  std::uint64_t seed = 0;
  int drop_permille = 0;
  bool flaky = false;
  bool active = false;  // any events or flaky links configured

  bool edge_ok(int dlink) const {
    return edge_down[static_cast<std::size_t>(dlink >> 1)] == 0;
  }

  /// Deterministic drop decision for a flaky directed link. Must be called
  /// exactly once per packet granted on the link: the per-link ordinal is
  /// part of the hash input, so both engines (which grant identical packet
  /// sequences) reach identical decisions.
  bool drop_now(int dlink) {
    if (!flaky || !dlink_flaky[static_cast<std::size_t>(dlink)]) return false;
    const std::uint64_t ordinal = static_cast<std::uint64_t>(
        dlink_sent[static_cast<std::size_t>(dlink)]++);
    const std::uint64_t h =
        mix64(seed ^ mix64(static_cast<std::uint64_t>(dlink) *
                               0x9e3779b97f4a7c15ULL +
                           ordinal));
    return static_cast<int>(h % 1000) < drop_permille;
  }
};

FaultState prepare_faults(const graph::Graph& topology,
                          const FaultScript& script) {
  const int n = topology.num_vertices();
  const auto resolve = [&](int u, int v) {
    if (u < 0 || u >= n || v < 0 || v >= n || !topology.has_edge(u, v)) {
      throw std::invalid_argument(
          "FaultScript: (" + std::to_string(u) + "," + std::to_string(v) +
          ") is not a link of the topology");
    }
    return topology.edge_id(u, v);
  };
  FaultState fs;
  fs.edge_down.assign(static_cast<std::size_t>(topology.num_edges()), 0);
  fs.seed = script.flaky_seed;
  fs.drop_permille = script.flaky_drop_permille;
  if (script.flaky_drop_permille < 0 || script.flaky_drop_permille > 1000) {
    throw std::invalid_argument(
        "FaultScript: flaky_drop_permille outside [0, 1000]");
  }
  fs.events.reserve(script.events.size());
  for (const auto& ev : script.events) {
    if (ev.cycle < 0) {
      throw std::invalid_argument("FaultScript: negative event cycle");
    }
    fs.events.push_back(PreparedFault{ev.cycle, resolve(ev.u, ev.v),
                                      ev.type == FaultType::kLinkDown});
  }
  std::stable_sort(fs.events.begin(), fs.events.end(),
                   [](const PreparedFault& a, const PreparedFault& b) {
                     return a.cycle < b.cycle;
                   });
  if (!script.flaky_links.empty() && script.flaky_drop_permille > 0) {
    fs.dlink_flaky.assign(static_cast<std::size_t>(2 * topology.num_edges()),
                          0);
    fs.dlink_sent.assign(static_cast<std::size_t>(2 * topology.num_edges()),
                         0);
    for (const auto& [u, v] : script.flaky_links) {
      const int eid = resolve(u, v);
      fs.dlink_flaky[static_cast<std::size_t>(2 * eid)] = 1;
      fs.dlink_flaky[static_cast<std::size_t>(2 * eid + 1)] = 1;
    }
    fs.flaky = true;
  } else {
    for (const auto& [u, v] : script.flaky_links) {
      static_cast<void>(resolve(u, v));  // validate even when permille == 0
    }
  }
  fs.active = !fs.events.empty() || fs.flaky;
  return fs;
}

// One virtual channel: the unidirectional, per-tree, per-phase logical
// datapath on a physical link, with its own receiver buffer and credits
// (Section 5.1's "VCs have disjoint resources").
struct VcState {
  int tree = -1;
  Phase phase = Phase::kReduce;
  int src = -1;
  int dst = -1;
  int dlink = -1;
  int fork_index = -1;  // bcast only: child slot at src feeding this VC

  std::deque<Packet> recv;  // receiver buffer, <= credits cap packets
  int credits = 0;
  std::deque<std::pair<long long, Packet>> data_inflight;
  std::deque<long long> credit_inflight;
  // A packet destined for this VC was lost, so its stream has a sequence
  // gap: the VC stops presenting data (consuming past the gap would feed
  // wrong operands into a reduction). Cleared only by tree cancellation.
  bool poisoned = false;
};

// Per-(router, tree) state: reduction engine inputs/outputs and the
// broadcast fork stage.
struct NodeTreeState {
  int parent = -1;
  std::vector<int> children;
  std::vector<int> child_reduce_vc;
  int parent_reduce_vc = -1;
  int parent_bcast_vc = -1;
  std::vector<int> child_bcast_vc;
  std::vector<std::deque<Packet>> fork_stage;
  std::deque<Packet> root_queue;  // root only: reduce -> bcast turnaround
  long long injected = 0;   // local elements consumed by the engine
  long long delivered = 0;  // elements delivered locally
};

// The VC fabric and per-(node, tree) engine state both cycle-loop engines
// run on, plus the tree roots.
struct Fabric {
  int n = 0;
  int num_trees = 0;
  int num_dlinks = 0;
  std::vector<int> roots;
  // Global tree index per local tree. Identity in a whole-run fabric; a
  // sharded sub-run (see link_disjoint_groups) carries the parent run's
  // indices so operand/expected values — functions of the tree index —
  // match the serial run bit-exactly.
  std::vector<int> tree_gid;
  std::vector<VcState> vcs;
  std::vector<std::vector<int>> link_vcs;
  std::vector<NodeTreeState> state;

  NodeTreeState& st(int node, int tree) {
    return state[static_cast<std::size_t>(tree) * static_cast<std::size_t>(n) + static_cast<std::size_t>(node)];
  }
};

Fabric build_fabric(const graph::Graph& topology,
                    const std::vector<TreeEmbedding>& trees,
                    const SimConfig& config, SimResult& result,
                    const std::vector<int>* tree_gids = nullptr) {
  Fabric f;
  f.n = topology.num_vertices();
  f.num_trees = static_cast<int>(trees.size());
  f.num_dlinks = 2 * topology.num_edges();
  f.roots.resize(static_cast<std::size_t>(f.num_trees));
  f.tree_gid.resize(static_cast<std::size_t>(f.num_trees));
  for (int t = 0; t < f.num_trees; ++t) {
    f.tree_gid[static_cast<std::size_t>(t)] =
        tree_gids != nullptr ? (*tree_gids)[static_cast<std::size_t>(t)] : t;
  }
  f.link_vcs.resize(static_cast<std::size_t>(f.num_dlinks));
  f.state.resize(static_cast<std::size_t>(f.n) * static_cast<std::size_t>(f.num_trees));

  const Collective mode = config.collective;
  const bool want_reduce = mode != Collective::kBroadcast;
  const bool want_bcast = mode != Collective::kReduce;

  const auto dlink_of = [&](int src, int dst) {
    const int eid = topology.edge_id(src, dst);
    return 2 * eid + (src > dst ? 1 : 0);
  };
  const auto new_vc = [&](int tree, Phase phase, int src, int dst) {
    VcState vc;
    vc.tree = tree;
    vc.phase = phase;
    vc.src = src;
    vc.dst = dst;
    vc.dlink = dlink_of(src, dst);
    vc.credits = config.vc_credits;
    f.vcs.push_back(std::move(vc));
    const int id = static_cast<int>(f.vcs.size()) - 1;
    f.link_vcs[static_cast<std::size_t>(f.vcs[static_cast<std::size_t>(id)].dlink)].push_back(id);
    return id;
  };

  for (int t = 0; t < f.num_trees; ++t) {
    const auto& tree = trees[static_cast<std::size_t>(t)];
    f.roots[static_cast<std::size_t>(t)] = tree.root;
    for (int v = 0; v < f.n; ++v) {
      f.st(v, t).parent = tree.parent[static_cast<std::size_t>(v)];
      if (tree.parent[static_cast<std::size_t>(v)] >= 0) f.st(tree.parent[static_cast<std::size_t>(v)], t).children.push_back(v);
    }
    for (int v = 0; v < f.n; ++v) {
      NodeTreeState& s = f.st(v, t);
      if (s.parent >= 0) {
        if (want_reduce) {
          s.parent_reduce_vc = new_vc(t, Phase::kReduce, v, s.parent);
        }
        if (want_bcast) {
          s.parent_bcast_vc = new_vc(t, Phase::kBcast, s.parent, v);
        }
      }
      s.fork_stage.resize(s.children.size());
      s.child_bcast_vc.assign(s.children.size(), -1);
      s.child_reduce_vc.assign(s.children.size(), -1);
    }
    for (int v = 0; v < f.n; ++v) {
      NodeTreeState& s = f.st(v, t);
      for (std::size_t c = 0; c < s.children.size(); ++c) {
        const int child = s.children[c];
        s.child_reduce_vc[c] = f.st(child, t).parent_reduce_vc;
        s.child_bcast_vc[c] = f.st(child, t).parent_bcast_vc;
        if (s.child_bcast_vc[c] >= 0) {
          f.vcs[static_cast<std::size_t>(s.child_bcast_vc[c])].fork_index =
              static_cast<int>(c);
        }
      }
    }
  }

  result.num_vcs = static_cast<int>(f.vcs.size());
  for (const auto& lv : f.link_vcs) {
    result.max_vcs_per_link =
        std::max(result.max_vcs_per_link, static_cast<int>(lv.size()));
  }
  // Lemma 7.8 accounting: distinct trees consuming each input port as a
  // reduction input.
  if (want_reduce) {
    std::vector<int> reductions_per_port(static_cast<std::size_t>(f.num_dlinks), 0);
    for (const auto& vc : f.vcs) {
      if (vc.phase == Phase::kReduce) ++reductions_per_port[static_cast<std::size_t>(vc.dlink)];
    }
    for (int c : reductions_per_port) {
      result.max_reductions_per_input_port =
          std::max(result.max_reductions_per_input_port, c);
    }
  }
  result.link_flits.assign(static_cast<std::size_t>(f.num_dlinks), 0);
  result.link_queue_hwm.assign(static_cast<std::size_t>(f.num_dlinks), 0);
  result.link_bg_flits.assign(static_cast<std::size_t>(f.num_dlinks), 0);
  result.tree_finish_cycle.assign(static_cast<std::size_t>(f.num_trees), 0);
  result.tree_first_delivery.assign(static_cast<std::size_t>(f.num_trees), -1);
  result.tree_failed.assign(static_cast<std::size_t>(f.num_trees), 0);
  result.tree_fail_cycle.assign(static_cast<std::size_t>(f.num_trees), -1);
  result.tree_completed.assign(static_cast<std::size_t>(f.num_trees), 0);
  result.link_dropped_flits.assign(static_cast<std::size_t>(f.num_dlinks), 0);
  result.values_correct = true;
  return f;
}

// ---------------------------------------------------------------------------
// Observability (PFAR_TRACE, see src/obsv and docs/observability.md). One
// SimObserver drives a single run when SimConfig::recorder is attached;
// both engines call the same hooks at the same per-cycle points, so the
// virtual-time trace a run emits is a pure function of the (deterministic)
// simulation. The observer only reads simulation state — attaching it can
// never perturb results, which the determinism goldens pin under
// PFAR_TRACE=on. With PFAR_TRACE=off every hook call site below is
// compiled out (obs is a constant nullptr).
//
// Trace vocabulary: per-directed-link "busy" complete-events (maximal runs
// of consecutive cycles with at least one grant), per-tree "reduce" /
// "broadcast" phase spans, and instant events on the sim track for fault
// down/up and tree cancellation. Metrics vocabulary: see the catalog in
// docs/observability.md; drop/cancel accounting is accumulated at the hook
// sites so the obsv tests can cross-check conservation against SimResult.
// ---------------------------------------------------------------------------
struct SimObserver {
  obsv::Recorder* rec = nullptr;
  const graph::Graph* topo = nullptr;
  Collective mode = Collective::kAllreduce;
  int n = 0;
  int num_trees = 0;
  int num_dlinks = 0;

  std::vector<long long> busy_start;   // open busy span start, -1 if none
  std::vector<long long> busy_last;    // last cycle with a grant, -1 if none
  std::vector<long long> busy_total;   // accumulated busy cycles per dlink
  std::vector<long long> queue_hwm;    // receiver-buffer high water per dlink
  std::vector<long long> link_dropped; // dropped flits per dlink
  std::vector<long long> reduce_first; // first reduce packet per tree
  std::vector<long long> reduce_done;  // root consumed its last element
  long long credit_stalls = 0;
  long long dropped_packets = 0;
  long long dropped_flits = 0;
  long long canceled_packets = 0;
  long long canceled_flits = 0;
  long long fault_events = 0;

  std::uint32_t n_busy = 0, n_reduce = 0, n_bcast = 0;
  std::uint32_t n_fault_down = 0, n_fault_up = 0, n_canceled = 0;

  void init(obsv::Recorder* recorder, const graph::Graph& topology,
            const Fabric& f, Collective m) {
    rec = recorder;
    topo = &topology;
    mode = m;
    n = f.n;
    num_trees = f.num_trees;
    num_dlinks = f.num_dlinks;
    busy_start.assign(static_cast<std::size_t>(num_dlinks), -1);
    busy_last.assign(static_cast<std::size_t>(num_dlinks), -1);
    busy_total.assign(static_cast<std::size_t>(num_dlinks), 0);
    queue_hwm.assign(static_cast<std::size_t>(num_dlinks), 0);
    link_dropped.assign(static_cast<std::size_t>(num_dlinks), 0);
    reduce_first.assign(static_cast<std::size_t>(num_trees), -1);
    reduce_done.assign(static_cast<std::size_t>(num_trees), -1);
    n_busy = rec->trace.intern("busy");
    n_reduce = rec->trace.intern("reduce");
    n_bcast = rec->trace.intern("broadcast");
    n_fault_down = rec->trace.intern("link_down");
    n_fault_up = rec->trace.intern("link_up");
    n_canceled = rec->trace.intern("tree_canceled");
  }

  // "u->v" of a directed link (dlink 2e runs low->high endpoint).
  std::string dlink_name(int dlink) const {
    const graph::Edge e = topo->edges()[static_cast<std::size_t>(dlink / 2)];
    const int src = (dlink & 1) != 0 ? e.v : e.u;
    const int dst = (dlink & 1) != 0 ? e.u : e.v;
    return std::to_string(src) + "->" + std::to_string(dst);
  }

  void close_busy_span(int dlink) {
    const std::size_t d = static_cast<std::size_t>(dlink);
    if (busy_start[d] < 0) return;
    busy_total[d] += busy_last[d] - busy_start[d] + 1;
    rec->trace.complete(busy_start[d], busy_last[d] - busy_start[d] + 1,
                        n_busy,
                        obsv::kTrackLinkBase + static_cast<std::uint32_t>(dlink));
    busy_start[d] = -1;
  }

  void on_grant(int dlink, long long now) {
    const std::size_t d = static_cast<std::size_t>(dlink);
    if (busy_last[d] == now) return;  // several grants in one cycle
    if (busy_start[d] >= 0 && now != busy_last[d] + 1) close_busy_span(dlink);
    if (busy_start[d] < 0) busy_start[d] = now;
    busy_last[d] = now;
  }

  void on_queue_depth(int dlink, int depth) {
    const std::size_t d = static_cast<std::size_t>(dlink);
    if (depth > queue_hwm[d]) queue_hwm[d] = depth;
  }

  // The `ready` argument lets call sites evaluate readiness lazily inside
  // the hook expansion (only when an observer is attached).
  void on_credit_stall_if(bool ready) {
    if (ready) ++credit_stalls;
  }

  void on_reduce_packet(int tree, bool root_done, long long now) {
    const std::size_t t = static_cast<std::size_t>(tree);
    if (reduce_first[t] < 0) reduce_first[t] = now;
    if (root_done) reduce_done[t] = now;
  }

  void on_fault(long long now, int edge, bool down) {
    ++fault_events;
    const graph::Edge e = topo->edges()[static_cast<std::size_t>(edge)];
    rec->trace.instant(now, down ? n_fault_down : n_fault_up,
                       obsv::kTrackSim, {"u", e.u}, {"v", e.v});
  }

  void on_drop(int dlink, long long flits) {
    ++dropped_packets;
    dropped_flits += flits;
    link_dropped[static_cast<std::size_t>(dlink)] += flits;
  }

  void on_cancel(int tree, long long now, long long completed) {
    rec->trace.instant(now, n_canceled, obsv::kTrackSim, {"tree", tree},
                       {"completed", completed});
  }

  void on_retract(long long flits) {
    ++canceled_packets;
    canceled_flits += flits;
  }

  // Emits the deferred spans, track names and the metrics snapshot. Called
  // once per run; when one Recorder spans several runs (the resilient
  // driver's attempts), counters accumulate and gauges keep their maxima.
  void finalize(long long cycles, const SimResult& result) {
    for (int d = 0; d < num_dlinks; ++d) close_busy_span(d);
    rec->trace.name_track(obsv::kTrackSim, "sim");
    obsv::Metrics& m = rec->metrics;
    m.hwm("sim.cycles", cycles);
    m.add("sim.total_elements", result.total_elements);
    m.hwm("sim.max_vc_occupancy", result.max_vc_occupancy);
    m.add("sim.credit_stalls", credit_stalls);
    m.add("sim.fault_events", fault_events);
    if (dropped_packets > 0) {
      m.add("sim.dropped_packets", dropped_packets);
      m.add("sim.dropped_flits", dropped_flits);
    }
    if (canceled_packets > 0) {
      m.add("sim.canceled_packets", canceled_packets);
      m.add("sim.canceled_flits", canceled_flits);
    }
    if (result.background_flits > 0) {
      m.add("sim.background_packets", result.background_packets);
      m.add("sim.background_flits", result.background_flits);
    }
    for (int t = 0; t < num_trees; ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      const std::uint32_t track =
          obsv::kTrackTreeBase + static_cast<std::uint32_t>(t);
      rec->trace.name_track(track, "tree " + std::to_string(t));
      if (reduce_first[ti] >= 0 && reduce_done[ti] >= reduce_first[ti]) {
        rec->trace.complete(reduce_first[ti],
                            reduce_done[ti] - reduce_first[ti] + 1, n_reduce,
                            track);
      }
      const long long first = result.tree_first_delivery[ti];
      const long long last = result.tree_failed[ti] != 0
                                 ? result.tree_fail_cycle[ti]
                                 : result.tree_finish_cycle[ti];
      if (mode != Collective::kReduce && first >= 0 && last >= first) {
        rec->trace.complete(first, last - first + 1, n_bcast, track);
      }
      const std::string prefix = "tree." + std::to_string(t);
      if (result.tree_finish_cycle[ti] >= 0) {
        m.hwm(prefix + ".finish_cycle", result.tree_finish_cycle[ti]);
      }
      if (first >= 0) m.hwm(prefix + ".first_delivery", first);
      m.add(prefix + ".completed", result.tree_completed[ti]);
      if (result.tree_failed[ti] != 0) m.add(prefix + ".failed");
    }
    for (int d = 0; d < num_dlinks; ++d) {
      const std::size_t di = static_cast<std::size_t>(d);
      if (result.link_flits[di] == 0 && link_dropped[di] == 0 &&
          result.link_bg_flits[di] == 0) {
        continue;
      }
      const std::string name = dlink_name(d);
      rec->trace.name_track(
          obsv::kTrackLinkBase + static_cast<std::uint32_t>(d),
          "link " + name);
      const std::string prefix = "link." + name;
      m.add(prefix + ".flits", result.link_flits[di]);
      m.hwm(prefix + ".queue_hwm", queue_hwm[di]);
      // Busy spans cover collective and background grants alike; the
      // congestion controller reads utilization from these two counters
      // (docs/congestion_adaptation.md).
      m.add(prefix + ".busy_cycles", busy_total[di]);
      if (result.link_bg_flits[di] > 0) {
        m.add(prefix + ".bg_flits", result.link_bg_flits[di]);
      }
      if (link_dropped[di] > 0) {
        m.add(prefix + ".dropped_flits", link_dropped[di]);
      }
    }
  }
};

// Hook call site: one null test when PFAR_TRACE=on, nothing at all when
// off (the expansion still names `obs` so the parameter stays used).
#if PFAR_TRACE_LEVEL
#define PFAR_OBS(call)             \
  do {                             \
    if (obs != nullptr) obs->call; \
  } while (0)
#else
#define PFAR_OBS(call) static_cast<void>(obs)
#endif

// ---------------------------------------------------------------------------
// Reference engine: the original cycle-by-cycle loop. Every VC is scanned
// for arrivals, every (node, tree) broadcast engine is visited and every
// link arbitrated on every cycle. Kept verbatim as the oracle the
// fast-forward engine is tested against (determinism_test).
// ---------------------------------------------------------------------------
long long run_reference_loop(Fabric& f, const SimConfig& config,
                             const std::vector<long long>& elements_per_tree,
                             SimResult& result,
                             std::vector<long long>& tree_remaining,
                             long long total_target, FaultState& fault,
                             const std::vector<long long>& bg_rates_ppm,
                             SimObserver* obs) {
  const int n = f.n;
  const int num_trees = f.num_trees;
  const Collective mode = config.collective;
  const bool want_bcast = mode != Collective::kReduce;
  auto& vcs = f.vcs;
  const bool faults_active = fault.active;
  const long long timeout = config.progress_timeout;
  std::vector<char> tree_canceled(static_cast<std::size_t>(num_trees), 0);
  std::vector<long long> tree_progress(static_cast<std::size_t>(num_trees), 0);

  const auto expected_value = [&](int tree, long long k) {
    return mode == Collective::kBroadcast
               ? local_value(f.roots[static_cast<std::size_t>(tree)], tree, k)
               : sum_over_nodes(n, tree, k);
  };

  long long delivered_total = 0;
  long long now = 0;
  long long last_progress = 0;
  std::vector<int> rr(static_cast<std::size_t>(f.num_dlinks), 0);
  // Token-bucket link occupancy: `tokens` flit-slots accumulate at
  // link_bandwidth per cycle (bounded burst); a packet consumes
  // payload + header flits and may borrow, modeling multi-cycle packets.
  std::vector<long long> tokens(static_cast<std::size_t>(f.num_dlinks), 0);
  const int header = config.packet_header_flits;

  // Background traffic (SimConfig::background): per VC-carrying directed
  // link, a ppm accumulator gains bg_rates_ppm[dl] per serviced (up)
  // cycle; each time it crosses a packet boundary the link drains one
  // whole background packet's flits from its token bucket. Zero load =
  // empty rate vector = none of this code runs (the quiet-network goldens
  // pin bit-identity).
  const bool bg_active = !bg_rates_ppm.empty();
  const long long bg_pkt_flits = config.background.packet_flits;
  const long long bg_pkt_ppm = bg_pkt_flits * 1'000'000;
  std::vector<long long> bg_acc(
      bg_active ? static_cast<std::size_t>(f.num_dlinks) : 0, 0);

  const auto vc_ready = [&](const VcState& vc) -> bool {
    const NodeTreeState& s = f.st(vc.src, vc.tree);
    if (vc.phase == Phase::kReduce) {
      if (s.injected >= elements_per_tree[static_cast<std::size_t>(vc.tree)]) return false;
      for (int cvc : s.child_reduce_vc) {
        const VcState& child = vcs[static_cast<std::size_t>(cvc)];
        if (child.poisoned || child.recv.empty()) return false;
      }
      return true;
    }
    return !s.fork_stage[static_cast<std::size_t>(vc.fork_index)].empty();
  };

  // Returns a consumed packet's credit to the child VC's sender. Normally
  // the credit travels back over the link (landing after link_latency);
  // while the link is down it cannot, so it is restored immediately —
  // conservation must hold through an outage, and a later drop_edge on
  // this link must not double-restore it.
  const auto return_credit = [&](VcState& child) {
    if (faults_active && !fault.edge_ok(child.dlink)) {
      ++child.credits;
    } else {
      child.credit_inflight.push_back(now + config.link_latency);
    }
  };

  // Assembles the next reduction packet at node `src` for tree `tree`:
  // local chunk combined with one packet from each child. Chunk sizes are
  // aligned across children because every stream chunks the same way.
  const auto make_reduce_packet = [&](int src, int tree) -> Packet {
    NodeTreeState& s = f.st(src, tree);
    const long long remaining = elements_per_tree[static_cast<std::size_t>(tree)] - s.injected;
    long long size = std::min<long long>(config.packet_payload, remaining);
    for (int cvc : s.child_reduce_vc) {
      if (static_cast<long long>(vcs[static_cast<std::size_t>(cvc)].recv.front().size()) != size) {
        throw std::logic_error("reduce packet misalignment");
      }
    }
    Packet packet(static_cast<std::size_t>(size));
    for (long long i = 0; i < size; ++i) {
      packet[static_cast<std::size_t>(i)] = local_value(src, tree, s.injected + i);
    }
    s.injected += size;
    for (int cvc : s.child_reduce_vc) {
      const Packet& head = vcs[static_cast<std::size_t>(cvc)].recv.front();
      for (long long i = 0; i < size; ++i) packet[static_cast<std::size_t>(i)] += head[static_cast<std::size_t>(i)];
      vcs[static_cast<std::size_t>(cvc)].recv.pop_front();
      return_credit(vcs[static_cast<std::size_t>(cvc)]);
    }
    PFAR_OBS(on_reduce_packet(
        tree,
        src == f.roots[static_cast<std::size_t>(tree)] &&
            s.injected >= elements_per_tree[static_cast<std::size_t>(tree)],
        now));
    return packet;
  };

  const auto deliver = [&](int node, int tree, const Packet& packet) {
    NodeTreeState& s = f.st(node, tree);
    if (result.tree_first_delivery[static_cast<std::size_t>(tree)] < 0) {
      result.tree_first_delivery[static_cast<std::size_t>(tree)] = now;
    }
    for (std::int64_t value : packet) {
      if (value != expected_value(tree, s.delivered)) {
        result.values_correct = false;
      }
      ++s.delivered;
      ++delivered_total;
      if (--tree_remaining[static_cast<std::size_t>(tree)] == 0) result.tree_finish_cycle[static_cast<std::size_t>(tree)] = now;
    }
    last_progress = now;
    tree_progress[static_cast<std::size_t>(tree)] = now;
  };

  // Kills an edge: every packet in flight on either directed half is lost
  // (counted in dropped_*, the sender's credit reclaimed immediately, the
  // receiving VC poisoned) and every credit in flight is restored. Credit
  // conservation is checked across the event.
  const auto drop_edge = [&](int eid) {
    for (int d : {2 * eid, 2 * eid + 1}) {
      for (int id : f.link_vcs[static_cast<std::size_t>(d)]) {
        VcState& vc = vcs[static_cast<std::size_t>(id)];
        PFAR_ENSURE(vc.credits +
                            static_cast<int>(vc.credit_inflight.size() +
                                             vc.data_inflight.size() +
                                             vc.recv.size()) ==
                        config.vc_credits,
                    vc.tree, vc.src, vc.dst, vc.credits);
        for (const auto& [when, packet] : vc.data_inflight) {
          static_cast<void>(when);
          ++result.dropped_packets;
          const long long flits =
              static_cast<long long>(packet.size()) + header;
          result.dropped_flits += flits;
          result.link_dropped_flits[static_cast<std::size_t>(d)] += flits;
          PFAR_OBS(on_drop(d, flits));
          ++vc.credits;
          vc.poisoned = true;
        }
        vc.data_inflight.clear();
        vc.credits += static_cast<int>(vc.credit_inflight.size());
        vc.credit_inflight.clear();
        PFAR_ENSURE(vc.credits + static_cast<int>(vc.recv.size()) ==
                        config.vc_credits,
                    vc.tree, vc.src, vc.dst, vc.credits, vc.recv.size());
      }
    }
  };

  // Declares tree t failed: record the detection cycle and the complete
  // element prefix, then retract every queued/in-flight packet of the tree
  // (counted in canceled_*) and reset its VCs to empty-with-full-credits so
  // the quiesce contracts still hold for the surviving run.
  const auto cancel_tree = [&](int t) {
    tree_canceled[static_cast<std::size_t>(t)] = 1;
    result.tree_failed[static_cast<std::size_t>(t)] = 1;
    result.tree_fail_cycle[static_cast<std::size_t>(t)] = now;
    result.tree_finish_cycle[static_cast<std::size_t>(t)] = -1;
    long long prefix = LLONG_MAX;
    if (mode == Collective::kReduce) {
      prefix = f.st(f.roots[static_cast<std::size_t>(t)], t).delivered;
    } else {
      for (int v = 0; v < n; ++v) {
        prefix = std::min(prefix, f.st(v, t).delivered);
      }
    }
    result.tree_completed[static_cast<std::size_t>(t)] = prefix;
    PFAR_OBS(on_cancel(t, now, prefix));
    const auto retract = [&](const Packet& p) {
      ++result.canceled_packets;
      result.canceled_flits += static_cast<long long>(p.size()) + header;
      PFAR_OBS(on_retract(static_cast<long long>(p.size()) + header));
    };
    for (auto& vc : vcs) {
      if (vc.tree != t) continue;
      for (const auto& p : vc.recv) retract(p);
      for (const auto& [when, p] : vc.data_inflight) {
        static_cast<void>(when);
        retract(p);
      }
      vc.recv.clear();
      vc.data_inflight.clear();
      vc.credit_inflight.clear();
      vc.credits = config.vc_credits;
      vc.poisoned = false;
    }
    for (int v = 0; v < n; ++v) {
      NodeTreeState& s = f.st(v, t);
      for (const auto& p : s.root_queue) retract(p);
      s.root_queue.clear();
      for (auto& stage : s.fork_stage) {
        for (const auto& p : stage) retract(p);
        stage.clear();
      }
    }
    total_target -= tree_remaining[static_cast<std::size_t>(t)];
    tree_remaining[static_cast<std::size_t>(t)] = 0;
    last_progress = now;
  };

  while (delivered_total < total_target) {
    if (now > config.max_cycles) {
      throw std::runtime_error("AllreduceSimulator: cycle limit exceeded");
    }
    if (now - last_progress > config.stall_limit) {
      throw std::runtime_error(
          "AllreduceSimulator: deadlock detected at cycle " +
          std::to_string(now));
    }

    // 0a. Scripted fault events scheduled for this cycle, before anything
    // else moves (a packet landing this very cycle is still in flight at
    // the down instant and is lost).
    if (faults_active) {
      while (fault.next < fault.events.size() &&
             fault.events[fault.next].cycle <= now) {
        const PreparedFault& ev = fault.events[fault.next++];
        if (ev.down) {
          if (!fault.edge_down[static_cast<std::size_t>(ev.edge)]) {
            fault.edge_down[static_cast<std::size_t>(ev.edge)] = 1;
            drop_edge(ev.edge);
          }
        } else {
          fault.edge_down[static_cast<std::size_t>(ev.edge)] = 0;
        }
        PFAR_OBS(on_fault(now, ev.edge, ev.down));
      }
    }

    // 0b. Per-tree loss detection: a tree with work remaining that has
    // delivered nothing for more than `progress_timeout` cycles is failed
    // and canceled so the surviving trees can quiesce.
    if (timeout > 0) {
      for (int t = 0; t < num_trees; ++t) {
        if (!tree_canceled[static_cast<std::size_t>(t)] &&
            tree_remaining[static_cast<std::size_t>(t)] > 0 &&
            now - tree_progress[static_cast<std::size_t>(t)] > timeout) {
          cancel_tree(t);
        }
      }
    }

    // 1. Arrivals: land in-flight packets and returned credits.
    for (auto& vc : vcs) {
      while (!vc.data_inflight.empty() &&
             vc.data_inflight.front().first <= now) {
        vc.recv.push_back(std::move(vc.data_inflight.front().second));
        vc.data_inflight.pop_front();
        result.max_vc_occupancy = std::max(
            result.max_vc_occupancy, static_cast<int>(vc.recv.size()));
        result.link_queue_hwm[static_cast<std::size_t>(vc.dlink)] =
            std::max(result.link_queue_hwm[static_cast<std::size_t>(vc.dlink)],
                     static_cast<long long>(vc.recv.size()));
        PFAR_OBS(on_queue_depth(vc.dlink, static_cast<int>(vc.recv.size())));
        last_progress = now;
      }
      while (!vc.credit_inflight.empty() &&
             vc.credit_inflight.front() <= now) {
        vc.credit_inflight.pop_front();
        ++vc.credits;
      }
    }

    // 2. Root engines. Allreduce/Reduce: final sums materialize at the
    // root (into the turnaround queue or straight to local delivery).
    // Broadcast: the root sources its own stream into the queue.
    for (int t = 0; t < num_trees; ++t) {
      if (tree_canceled[static_cast<std::size_t>(t)]) continue;
      NodeTreeState& s = f.st(f.roots[static_cast<std::size_t>(t)], t);
      for (int fire = 0; fire < config.link_bandwidth; ++fire) {
        if (s.injected >= elements_per_tree[static_cast<std::size_t>(t)]) break;
        if (mode != Collective::kReduce &&
            static_cast<int>(s.root_queue.size()) >= config.vc_credits) {
          break;
        }
        Packet packet;
        if (mode == Collective::kBroadcast) {
          const long long remaining = elements_per_tree[static_cast<std::size_t>(t)] - s.injected;
          const long long size =
              std::min<long long>(config.packet_payload, remaining);
          packet.resize(static_cast<std::size_t>(size));
          for (long long i = 0; i < size; ++i) {
            packet[static_cast<std::size_t>(i)] = local_value(f.roots[static_cast<std::size_t>(t)], t, s.injected + i);
          }
          s.injected += size;
        } else {
          bool inputs_ready = true;
          for (int cvc : s.child_reduce_vc) {
            const VcState& child = vcs[static_cast<std::size_t>(cvc)];
            if (child.poisoned || child.recv.empty()) {
              inputs_ready = false;
              break;
            }
          }
          if (!inputs_ready) break;
          packet = make_reduce_packet(f.roots[static_cast<std::size_t>(t)], t);
        }
        if (mode == Collective::kReduce) {
          deliver(f.roots[static_cast<std::size_t>(t)], t, packet);
        } else {
          s.root_queue.push_back(std::move(packet));
        }
        last_progress = now;
      }
    }

    // 3. Broadcast replication: parent VC (or root queue) -> all fork
    // stages + local delivery. Fork-stage room is required for all
    // children, which bounds buffering and stays deadlock-free.
    if (want_bcast) {
      for (int t = 0; t < num_trees; ++t) {
        if (tree_canceled[static_cast<std::size_t>(t)]) continue;
        for (int v = 0; v < n; ++v) {
          NodeTreeState& s = f.st(v, t);
          const bool is_root = (v == f.roots[static_cast<std::size_t>(t)]);
          if (!is_root && s.parent_bcast_vc < 0) continue;
          for (int moves = 0; moves < config.link_bandwidth; ++moves) {
            bool room = true;
            for (const auto& stage : s.fork_stage) {
              if (static_cast<int>(stage.size()) >= config.fork_buffer) {
                room = false;
                break;
              }
            }
            if (!room) break;
            Packet packet;
            if (is_root) {
              if (s.root_queue.empty()) break;
              packet = std::move(s.root_queue.front());
              s.root_queue.pop_front();
            } else {
              VcState& pvc = vcs[static_cast<std::size_t>(s.parent_bcast_vc)];
              if (pvc.poisoned || pvc.recv.empty()) break;
              packet = std::move(pvc.recv.front());
              pvc.recv.pop_front();
              return_credit(pvc);
            }
            deliver(v, t, packet);
            const std::size_t forks = s.fork_stage.size();
            for (std::size_t c = 0; c + 1 < forks; ++c) {
              s.fork_stage[c].push_back(packet);
            }
            if (forks > 0) {
              s.fork_stage[forks - 1].push_back(std::move(packet));
            }
          }
        }
      }
    }

    // 4. Link arbitration: round-robin over each directed link's VCs,
    // consuming token-bucket flit slots (payload + header per packet).
    for (int dl = 0; dl < f.num_dlinks; ++dl) {
      const auto& ids = f.link_vcs[static_cast<std::size_t>(dl)];
      if (ids.empty()) continue;
      tokens[static_cast<std::size_t>(dl)] = std::min<long long>(
          tokens[static_cast<std::size_t>(dl)] + config.link_bandwidth,
          static_cast<long long>(config.link_bandwidth) *
              (config.packet_payload + header));
      // Tokens accumulate on a down link (the bucket models the physical
      // pipe, which recharges regardless), but nothing is granted on it.
      // The background accumulator also freezes: a down link carries no
      // background packets, and service resumes at the same phase.
      if (faults_active && !fault.edge_ok(dl)) continue;
      if (bg_active) {
        long long& acc = bg_acc[static_cast<std::size_t>(dl)];
        acc += bg_rates_ppm[static_cast<std::size_t>(dl)];
        if (acc >= bg_pkt_ppm) {
          const long long pkts = acc / bg_pkt_ppm;
          acc -= pkts * bg_pkt_ppm;
          tokens[static_cast<std::size_t>(dl)] -= pkts * bg_pkt_flits;
          result.link_bg_flits[static_cast<std::size_t>(dl)] +=
              pkts * bg_pkt_flits;
          PFAR_OBS(on_grant(dl, now));
        }
      }
      const int count = static_cast<int>(ids.size());
      const int probes = count * config.link_bandwidth;
      const int base = rr[static_cast<std::size_t>(dl)];
      for (int probe = 0; probe < probes && tokens[static_cast<std::size_t>(dl)] > 0; ++probe) {
        const int slot = (base + probe) % count;
        VcState& vc = vcs[static_cast<std::size_t>(ids[static_cast<std::size_t>(slot)])];
        if (tree_canceled[static_cast<std::size_t>(vc.tree)]) continue;
        if (vc.credits <= 0) {
          // Credit stall: data is ready but flow control blocks the grant.
          // vc_ready is side-effect-free, so probing it here cannot change
          // the simulation.
          PFAR_OBS(on_credit_stall_if(vc_ready(vc)));
          continue;
        }
        if (!vc_ready(vc)) continue;
        // True round-robin: rotate past the granted VC so competing trees
        // alternate even when packets occupy the link for several cycles.
        rr[static_cast<std::size_t>(dl)] = (slot + 1) % count;
        Packet packet;
        if (vc.phase == Phase::kReduce) {
          packet = make_reduce_packet(vc.src, vc.tree);
        } else {
          NodeTreeState& s = f.st(vc.src, vc.tree);
          packet = std::move(s.fork_stage[static_cast<std::size_t>(vc.fork_index)].front());
          s.fork_stage[static_cast<std::size_t>(vc.fork_index)].pop_front();
        }
        const long long flits =
            static_cast<long long>(packet.size()) + header;
        tokens[static_cast<std::size_t>(dl)] -= flits;
        result.link_flits[static_cast<std::size_t>(dl)] += flits;
        PFAR_OBS(on_grant(dl, now));
        --vc.credits;
        if (faults_active && fault.drop_now(dl)) {
          // Flaky link ate the packet: flits crossed (accounted above) but
          // nothing lands. The credit still returns normally; the gap
          // poisons the receiver.
          ++result.dropped_packets;
          result.dropped_flits += flits;
          result.link_dropped_flits[static_cast<std::size_t>(dl)] += flits;
          PFAR_OBS(on_drop(dl, flits));
          vc.poisoned = true;
          vc.credit_inflight.push_back(now + config.link_latency);
        } else {
          vc.data_inflight.emplace_back(now + config.link_latency,
                                        std::move(packet));
        }
        last_progress = now;
      }
    }

    ++now;
  }

  // Quiesce: once every element is delivered, no packet may remain queued
  // or on the wire, and each VC's credits (held + still returning) must
  // conserve the configured budget.
  for (const auto& vc : vcs) {
    PFAR_ENSURE(vc.recv.empty() && vc.data_inflight.empty(), vc.tree, vc.src,
                vc.dst, vc.recv.size(), vc.data_inflight.size());
    PFAR_ENSURE(vc.credits + static_cast<int>(vc.credit_inflight.size()) ==
                    config.vc_credits,
                vc.tree, vc.src, vc.dst, vc.credits,
                vc.credit_inflight.size());
  }
  for (const auto& s : f.state) {
    PFAR_ENSURE(s.root_queue.empty(), s.parent, s.root_queue.size());
    for (const auto& stage : s.fork_stage) {
      PFAR_ENSURE(stage.empty(), s.parent, stage.size());
    }
  }
  return now;
}

// ---------------------------------------------------------------------------
// Fast-forward engine. Bit-identical to the reference loop, with four
// structural changes:
//
//  * arrivals and credit returns are scheduled on a time-indexed wheel (all
//    landing times are `now + link_latency`, so the wheel has latency + 1
//    buckets and each cycle drains exactly one) instead of scanning every
//    VC every cycle, with at most one wake-up per (VC, cycle);
//  * broadcast replication visits only (node, tree) engines that an event
//    re-armed (packet arrival, root-queue push, fork-slot drain) instead of
//    all n * num_trees engines, and reduce readiness is an incrementally
//    maintained ready-children counter instead of a per-probe child scan;
//  * packet payloads live in a slab arena (fixed stride = packet_payload,
//    free-list recycling) and every queue — receive buffer + in-flight
//    pipeline (one combined ring per VC), credit returns, fork stages, root
//    turnaround — is a fixed-capacity power-of-two ring over flat arrays.
//    All of them are bounded by the credit/fork-buffer limits, so nothing
//    allocates after setup;
//  * a cycle in which nothing moved and no event landed is provably
//    followed by identical no-op cycles until the next in-flight landing or
//    token-bucket recharge, so `now` jumps there in one step. Token buckets
//    advance over the skipped range in closed form (min(t + k*B, cap) is
//    the k-fold composition of the per-cycle update), and the jump is
//    clamped to the stall and max_cycles deadlines so even the throwing
//    paths report the same cycle numbers as the reference loop.
// ---------------------------------------------------------------------------
long long run_fast_loop(Fabric& f, const SimConfig& config,
                        const std::vector<long long>& elements_per_tree,
                        SimResult& result,
                        std::vector<long long>& tree_remaining,
                        long long total_target, FaultState& fault,
                        const std::vector<long long>& bg_rates_ppm,
                        SimObserver* obs) {
  const int n = f.n;
  const int num_trees = f.num_trees;
  const int num_vcs = static_cast<int>(f.vcs.size());
  const Collective mode = config.collective;
  const bool want_bcast = mode != Collective::kReduce;

  // Values are functions of the GLOBAL tree index, so a sharded sub-run
  // (tree_gid != identity) moves the very same integers as the serial run.
  const auto expected_value = [&](int tree, long long k) {
    const int gid = f.tree_gid[static_cast<std::size_t>(tree)];
    return mode == Collective::kBroadcast
               ? local_value(f.roots[static_cast<std::size_t>(tree)], gid, k)
               : sum_over_nodes(n, gid, k);
  };

  long long delivered_total = 0;
  long long now = 0;
  long long last_progress = 0;
  std::vector<int> rr(static_cast<std::size_t>(f.num_dlinks), 0);
  std::vector<long long> tokens(static_cast<std::size_t>(f.num_dlinks), 0);
  const int header = config.packet_header_flits;
  const int bw = config.link_bandwidth;
  const long long token_cap =
      static_cast<long long>(bw) * (config.packet_payload + header);
  const int latency = config.link_latency;

  // Background traffic, identical per-cycle mechanics to the reference
  // loop. The accumulator update is linear between drains, so the idle
  // jump treats the next drain cycle of every live link as a wake point
  // and replays skipped (provably drain-free) ranges in closed form.
  const bool bg_active = !bg_rates_ppm.empty();
  const long long bg_pkt_flits = config.background.packet_flits;
  const long long bg_pkt_ppm = bg_pkt_flits * 1'000'000;
  std::vector<long long> bg_acc(
      bg_active ? static_cast<std::size_t>(f.num_dlinks) : 0, 0);

  // --- Slab arena. Every packet's payload occupies one fixed-stride slab;
  // a consumed packet's slab goes on the free list for immediate reuse.
  const int stride = config.packet_payload;
  struct Ref {
    std::int32_t slab;
    std::int32_t size;
  };
  std::vector<std::int64_t> arena;
  std::vector<std::int32_t> free_slabs;
  std::int32_t num_slabs = 0;
  const auto alloc_slab = [&]() -> std::int32_t {
    if (!free_slabs.empty()) {
      const std::int32_t s = free_slabs.back();
      free_slabs.pop_back();
      return s;
    }
    arena.resize(arena.size() + static_cast<std::size_t>(stride));
    return num_slabs++;
  };

  // --- Per-VC rings. The receive buffer and the in-flight pipeline share
  // one FIFO ring: entries [0, ready) have landed (the reference loop's
  // `recv`), entries [ready, total) are still on the wire with their
  // landing times in ring_time. recv + in-flight together never exceed
  // vc_credits (a send consumes a credit that only returns after the pop),
  // so a bit_ceil(vc_credits) ring never overflows; same for the credit-
  // return ring.
  const std::uint32_t pcap =
      std::bit_ceil(static_cast<std::uint32_t>(config.vc_credits));
  const std::uint32_t pmask = pcap - 1;
  std::vector<long long> ring_time(static_cast<std::size_t>(num_vcs) * pcap);
  std::vector<Ref> ring_ref(static_cast<std::size_t>(num_vcs) * pcap);
  std::vector<long long> credit_time(static_cast<std::size_t>(num_vcs) *
                                     pcap);
  std::vector<std::uint32_t> rhead(static_cast<std::size_t>(num_vcs), 0), rtotal(static_cast<std::size_t>(num_vcs), 0),
      rready(static_cast<std::size_t>(num_vcs), 0);
  std::vector<std::uint32_t> chead(static_cast<std::size_t>(num_vcs), 0), ccount(static_cast<std::size_t>(num_vcs), 0);
  std::vector<std::int32_t> credits(static_cast<std::size_t>(num_vcs), config.vc_credits);

  // --- Per-VC metadata flattened out of VcState for the hot paths.
  std::vector<char> vc_is_reduce(static_cast<std::size_t>(num_vcs));
  std::vector<std::int32_t> vc_src_state(static_cast<std::size_t>(num_vcs)), vc_dst_state(static_cast<std::size_t>(num_vcs));
  std::vector<std::int32_t> vc_dlink(static_cast<std::size_t>(num_vcs));

  // --- Fault bookkeeping, mirroring the reference loop's VcState::poisoned
  // and per-tree cancel/progress tracking onto flat arrays.
  const bool faults_active = fault.active;
  const long long timeout = config.progress_timeout;
  std::vector<char> vc_poisoned(static_cast<std::size_t>(num_vcs), 0);
  std::vector<char> tree_canceled(static_cast<std::size_t>(num_trees), 0);
  std::vector<long long> tree_progress(static_cast<std::size_t>(num_trees), 0);
  // Elements delivered per (node, tree), to compute a canceled tree's
  // complete prefix (the reference loop reads NodeTreeState::delivered,
  // which this engine does not maintain).
  std::vector<long long> eng_delivered(f.state.size(), 0);

  // --- Per-(node, tree) engine state: ready-children counter plus flat
  // fork-stage rings (global stage id = stage_base[state] + child slot).
  const std::size_t num_states = f.state.size();
  std::vector<std::int32_t> eng_ready(num_states, 0);
  std::vector<std::int32_t> eng_nchild(num_states);
  std::vector<long long> eng_target(num_states);
  std::vector<std::int32_t> stage_base(num_states + 1, 0);
  for (std::size_t i = 0; i < num_states; ++i) {
    eng_nchild[i] = static_cast<std::int32_t>(f.state[i].children.size());
    eng_target[i] = elements_per_tree[i / static_cast<std::size_t>(n)];
    stage_base[i + 1] = stage_base[i] + eng_nchild[i];
  }
  const int num_stages = stage_base[num_states];

  // --- Remaining hot engine state flattened out of NodeTreeState: elements
  // injected so far, the reduce-input VC ids (CSR, stage_base doubling as
  // the per-state child base), the parent-side broadcast VC and each root's
  // state index. After setup the loop below never touches f.state, f.vcs or
  // f.link_vcs again — every per-cycle access is a flat array indexed by
  // state, VC or directed-link id.
  std::vector<long long> eng_injected(num_states, 0);
  std::vector<std::int32_t> child_vcs(static_cast<std::size_t>(num_stages));
  std::vector<std::int32_t> eng_parent_vc(num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    eng_parent_vc[i] = f.state[i].parent_bcast_vc;
    for (std::size_t c = 0; c < f.state[i].child_reduce_vc.size(); ++c) {
      child_vcs[static_cast<std::size_t>(stage_base[i]) + c] =
          f.state[i].child_reduce_vc[c];
    }
  }
  std::vector<std::int32_t> root_state(static_cast<std::size_t>(num_trees));
  for (int t = 0; t < num_trees; ++t) {
    root_state[static_cast<std::size_t>(t)] =
        t * n + f.roots[static_cast<std::size_t>(t)];
  }

  // --- Directed-link CSR plus the list of links carrying at least one VC:
  // arbitration and the idle-jump token replay walk only populated links.
  std::vector<std::int32_t> lv_base(static_cast<std::size_t>(f.num_dlinks) + 1,
                                    0);
  for (int dl = 0; dl < f.num_dlinks; ++dl) {
    lv_base[static_cast<std::size_t>(dl) + 1] =
        lv_base[static_cast<std::size_t>(dl)] +
        static_cast<std::int32_t>(
            f.link_vcs[static_cast<std::size_t>(dl)].size());
  }
  std::vector<std::int32_t> lv_ids(static_cast<std::size_t>(num_vcs));
  std::vector<std::int32_t> active_dlinks;
  for (int dl = 0; dl < f.num_dlinks; ++dl) {
    const auto& ids = f.link_vcs[static_cast<std::size_t>(dl)];
    if (ids.empty()) continue;
    active_dlinks.push_back(dl);
    std::int32_t out = lv_base[static_cast<std::size_t>(dl)];
    for (int id : ids) lv_ids[static_cast<std::size_t>(out++)] = id;
  }
  const std::uint32_t fcap =
      std::bit_ceil(static_cast<std::uint32_t>(config.fork_buffer));
  const std::uint32_t fmask = fcap - 1;
  std::vector<Ref> fork_ring(static_cast<std::size_t>(num_stages) * fcap);
  std::vector<std::uint32_t> fhead(static_cast<std::size_t>(num_stages), 0), fcount(static_cast<std::size_t>(num_stages), 0);
  std::vector<std::int32_t> vc_stage(static_cast<std::size_t>(num_vcs), -1);
  for (int id = 0; id < num_vcs; ++id) {
    const VcState& vc = f.vcs[static_cast<std::size_t>(id)];
    vc_is_reduce[static_cast<std::size_t>(id)] = vc.phase == Phase::kReduce ? 1 : 0;
    vc_src_state[static_cast<std::size_t>(id)] = vc.tree * n + vc.src;
    vc_dst_state[static_cast<std::size_t>(id)] = vc.tree * n + vc.dst;
    vc_dlink[static_cast<std::size_t>(id)] = vc.dlink;
    if (vc.phase == Phase::kBcast) {
      vc_stage[static_cast<std::size_t>(id)] =
          stage_base[static_cast<std::size_t>(
              vc_src_state[static_cast<std::size_t>(id)])] +
          vc.fork_index;
    }
  }

  // --- Root turnaround queues, one ring per tree.
  std::vector<Ref> root_ring(static_cast<std::size_t>(num_trees) * pcap);
  std::vector<std::uint32_t> rq_head(static_cast<std::size_t>(num_trees), 0), rq_count(static_cast<std::size_t>(num_trees), 0);

  // Event wheel: every data landing and credit return is scheduled at
  // now + latency, so pending wake-ups live in (now, now + latency] and a
  // bit_ceil(latency + 1)-bucket wheel indexed by time & mask is
  // collision-free. All events scheduled within one cycle land in the same
  // bucket (`sched_bucket`, re-aimed at each cycle top); last_wake dedupes
  // to one entry per (VC, cycle).
  const std::uint32_t wheel_size =
      std::bit_ceil(static_cast<std::uint32_t>(latency) + 1u);
  const std::uint32_t wmask = wheel_size - 1;
  std::vector<std::vector<std::int32_t>> wheel(wheel_size);
  std::vector<long long> last_wake(static_cast<std::size_t>(num_vcs), -1);
  long long pending_events = 0;
  std::vector<std::int32_t>* sched_bucket = &wheel[static_cast<unsigned>(latency) & wmask];
  const auto schedule_wakeup = [&](int vc_id) {
    if (last_wake[static_cast<std::size_t>(vc_id)] == now) return;
    last_wake[static_cast<std::size_t>(vc_id)] = now;
    sched_bucket->push_back(vc_id);
    ++pending_events;
  };

  // Incremental operand/expected-value generators: local_value and
  // expected_value are linear in the element index, so each engine keeps
  // the next value and bumps it by the constant stride per element —
  // exactly the same integers as recomputing from scratch.
  const std::int64_t exp_slope =
      mode == Collective::kBroadcast
          ? kElemStride
          : static_cast<std::int64_t>(n) * kElemStride;
  std::vector<std::int64_t> inj_next(num_states), exp_next(num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    const int tree = static_cast<int>(i) / n;
    inj_next[i] = local_value(static_cast<int>(i) % n,
                              f.tree_gid[static_cast<std::size_t>(tree)], 0);
    exp_next[i] = expected_value(tree, 0);
  }

  // Active broadcast engines: (node, tree) pairs that an event may have
  // unblocked since they last ran.
  std::vector<char> bcast_active(num_states, 0);
  std::vector<std::int32_t> bcast_list, bcast_current;
  const auto activate_bcast = [&](std::int32_t state_idx) {
    if (!bcast_active[static_cast<std::size_t>(state_idx)]) {
      bcast_active[static_cast<std::size_t>(state_idx)] = 1;
      bcast_list.push_back(state_idx);
    }
  };

  // True whenever this cycle changed any state besides token accumulation
  // (which the jump replays in closed form) — cleared at each cycle top.
  bool progressed = false;

  // Returns a consumed packet's credit to VC `id`'s sender — immediately if
  // the link is down (mirrors the reference loop's return_credit), else via
  // the credit-return ring after link_latency.
  const auto return_credit = [&](int id) {
    if (faults_active && !fault.edge_ok(vc_dlink[static_cast<std::size_t>(id)])) {
      ++credits[static_cast<std::size_t>(id)];
    } else {
      credit_time[static_cast<unsigned>(id) * pcap +
                  ((chead[static_cast<std::size_t>(id)] + ccount[static_cast<std::size_t>(id)]) & pmask)] =
          now + latency;
      ++ccount[static_cast<std::size_t>(id)];
      schedule_wakeup(id);
    }
  };

  // Readiness of VC `id` exactly as the grant path below tests it. Used
  // only by the credit-stall observability probe, so it must stay
  // side-effect-free.
  [[maybe_unused]] const auto fast_vc_ready = [&](int id) -> bool {
    const std::size_t i = static_cast<std::size_t>(id);
    if (vc_is_reduce[i]) {
      const std::size_t si = static_cast<std::size_t>(vc_src_state[i]);
      return eng_injected[si] < eng_target[si] &&
             eng_ready[si] == eng_nchild[si];
    }
    return fcount[static_cast<std::size_t>(vc_stage[i])] > 0;
  };

  // Marks VC `id` poisoned, withdrawing it from its consumer's ready count
  // (the reference loop's vc_ready/inputs_ready treat a poisoned VC as
  // never ready).
  const auto poison_vc = [&](int id) {
    if (vc_poisoned[static_cast<std::size_t>(id)]) return;
    vc_poisoned[static_cast<std::size_t>(id)] = 1;
    if (vc_is_reduce[static_cast<std::size_t>(id)] &&
        rready[static_cast<std::size_t>(id)] > 0) {
      --eng_ready[static_cast<std::size_t>(
          vc_dst_state[static_cast<std::size_t>(id)])];
    }
  };

  // Pops the ready head packet of a reduce child VC and schedules its
  // credit return; keeps the consumer's ready-children counter in sync.
  const auto pop_child = [&](int cvc, std::int32_t consumer_state) -> Ref {
    const Ref head = ring_ref[static_cast<unsigned>(cvc) * pcap + (rhead[static_cast<std::size_t>(cvc)] & pmask)];
    rhead[static_cast<std::size_t>(cvc)] = (rhead[static_cast<std::size_t>(cvc)] + 1) & pmask;
    --rtotal[static_cast<std::size_t>(cvc)];
    if (--rready[static_cast<std::size_t>(cvc)] == 0) --eng_ready[static_cast<std::size_t>(consumer_state)];
    return_credit(cvc);
    return head;
  };

  const auto make_reduce_packet = [&](std::int32_t state_idx) -> Ref {
    const std::size_t si = static_cast<std::size_t>(state_idx);
    const long long remaining = eng_target[si] - eng_injected[si];
    const long long size =
        std::min<long long>(config.packet_payload, remaining);
    const std::int32_t slab = alloc_slab();
    std::int64_t* out = &arena[static_cast<std::size_t>(slab) * static_cast<std::size_t>(stride)];
    std::int64_t value = inj_next[si];
    for (long long i = 0; i < size; ++i) {
      out[i] = value;
      value += kElemStride;
    }
    inj_next[si] = value;
    eng_injected[si] += size;
    const std::int32_t cb = stage_base[si];
    for (std::int32_t c = 0; c < eng_nchild[si]; ++c) {
      const int cvc = child_vcs[static_cast<std::size_t>(cb + c)];
      const Ref head = pop_child(cvc, state_idx);
      if (head.size != size) {
        throw std::logic_error("reduce packet misalignment");
      }
      const std::int64_t* in =
          &arena[static_cast<std::size_t>(head.slab) * static_cast<std::size_t>(stride)];
      for (long long i = 0; i < size; ++i) out[i] += in[i];
      free_slabs.push_back(head.slab);
    }
    PFAR_OBS(on_reduce_packet(
        state_idx / n,
        state_idx == root_state[static_cast<std::size_t>(state_idx / n)] &&
            eng_injected[si] >= eng_target[si],
        now));
    return Ref{slab, static_cast<std::int32_t>(size)};
  };

  const auto deliver = [&](int tree, std::int32_t state_idx, Ref packet) {
    if (result.tree_first_delivery[static_cast<std::size_t>(tree)] < 0) {
      result.tree_first_delivery[static_cast<std::size_t>(tree)] = now;
    }
    const std::int64_t* p =
        &arena[static_cast<std::size_t>(packet.slab) * static_cast<std::size_t>(stride)];
    std::int64_t expected = exp_next[static_cast<std::size_t>(state_idx)];
    for (std::int32_t i = 0; i < packet.size; ++i) {
      if (p[i] != expected) result.values_correct = false;
      expected += exp_slope;
      ++delivered_total;
      if (--tree_remaining[static_cast<std::size_t>(tree)] == 0) result.tree_finish_cycle[static_cast<std::size_t>(tree)] = now;
    }
    exp_next[static_cast<std::size_t>(state_idx)] = expected;
    eng_delivered[static_cast<std::size_t>(state_idx)] += packet.size;
    last_progress = now;
    tree_progress[static_cast<std::size_t>(tree)] = now;
    progressed = true;
  };

  // Fault handlers, mirroring the reference loop's drop_edge/cancel_tree
  // onto the flat rings. Retraction counts are order-independent, so both
  // engines account identical totals.
  const auto drop_edge = [&](int eid) {
    for (int d : {2 * eid, 2 * eid + 1}) {
      for (std::int32_t lk = lv_base[static_cast<std::size_t>(d)];
           lk < lv_base[static_cast<std::size_t>(d) + 1]; ++lk) {
        const int id = lv_ids[static_cast<std::size_t>(lk)];
        const std::size_t i = static_cast<std::size_t>(id);
        const std::size_t base = i * pcap;
        PFAR_ENSURE(credits[i] + static_cast<std::int32_t>(ccount[i]) +
                            static_cast<std::int32_t>(rtotal[i]) ==
                        config.vc_credits,
                    id, credits[i], ccount[i], rtotal[i]);
        const std::uint32_t inflight = rtotal[i] - rready[i];
        if (inflight > 0) {
          for (std::uint32_t k = rready[i]; k < rtotal[i]; ++k) {
            const Ref r = ring_ref[base + ((rhead[i] + k) & pmask)];
            ++result.dropped_packets;
            const long long flits = r.size + header;
            result.dropped_flits += flits;
            result.link_dropped_flits[static_cast<std::size_t>(d)] += flits;
            PFAR_OBS(on_drop(d, flits));
            free_slabs.push_back(r.slab);
          }
          rtotal[i] = rready[i];
          credits[i] += static_cast<std::int32_t>(inflight);
          poison_vc(id);
        }
        credits[i] += static_cast<std::int32_t>(ccount[i]);
        ccount[i] = 0;
        PFAR_ENSURE(credits[i] + static_cast<std::int32_t>(rready[i]) ==
                        config.vc_credits,
                    id, credits[i], rready[i]);
      }
    }
  };

  const auto cancel_tree = [&](int t) {
    tree_canceled[static_cast<std::size_t>(t)] = 1;
    result.tree_failed[static_cast<std::size_t>(t)] = 1;
    result.tree_fail_cycle[static_cast<std::size_t>(t)] = now;
    result.tree_finish_cycle[static_cast<std::size_t>(t)] = -1;
    long long prefix = LLONG_MAX;
    if (mode == Collective::kReduce) {
      prefix = eng_delivered[static_cast<std::size_t>(
          t * n + f.roots[static_cast<std::size_t>(t)])];
    } else {
      for (int v = 0; v < n; ++v) {
        prefix =
            std::min(prefix, eng_delivered[static_cast<std::size_t>(t * n + v)]);
      }
    }
    result.tree_completed[static_cast<std::size_t>(t)] = prefix;
    PFAR_OBS(on_cancel(t, now, prefix));
    const auto retract = [&](Ref r) {
      ++result.canceled_packets;
      result.canceled_flits += static_cast<long long>(r.size) + header;
      PFAR_OBS(on_retract(static_cast<long long>(r.size) + header));
      free_slabs.push_back(r.slab);
    };
    for (int id = 0; id < num_vcs; ++id) {
      if (vc_src_state[static_cast<std::size_t>(id)] / n != t) continue;
      const std::size_t i = static_cast<std::size_t>(id);
      const std::size_t base = i * pcap;
      for (std::uint32_t k = 0; k < rtotal[i]; ++k) {
        retract(ring_ref[base + ((rhead[i] + k) & pmask)]);
      }
      // Withdraw from the consumer's ready count before clearing, exactly
      // once, matching the poisoned/ready bookkeeping.
      if (vc_is_reduce[i] && rready[i] > 0 && !vc_poisoned[i]) {
        --eng_ready[static_cast<std::size_t>(vc_dst_state[i])];
      }
      rtotal[i] = 0;
      rready[i] = 0;
      ccount[i] = 0;
      credits[i] = config.vc_credits;
      vc_poisoned[i] = 0;
    }
    for (int v = 0; v < n; ++v) {
      const std::size_t si = static_cast<std::size_t>(t * n + v);
      const std::int32_t sb = stage_base[si];
      for (std::int32_t c = 0; c < eng_nchild[si]; ++c) {
        const std::size_t sid = static_cast<std::size_t>(sb + c);
        for (std::uint32_t k = 0; k < fcount[sid]; ++k) {
          retract(fork_ring[sid * fcap + ((fhead[sid] + k) & fmask)]);
        }
        fcount[sid] = 0;
      }
    }
    const std::size_t ti = static_cast<std::size_t>(t);
    for (std::uint32_t k = 0; k < rq_count[ti]; ++k) {
      retract(root_ring[ti * pcap + ((rq_head[ti] + k) & pmask)]);
    }
    rq_count[ti] = 0;
    total_target -= tree_remaining[ti];
    tree_remaining[ti] = 0;
    last_progress = now;
    progressed = true;
  };

  while (delivered_total < total_target) {
    if (now > config.max_cycles) {
      throw std::runtime_error("AllreduceSimulator: cycle limit exceeded");
    }
    if (now - last_progress > config.stall_limit) {
      throw std::runtime_error(
          "AllreduceSimulator: deadlock detected at cycle " +
          std::to_string(now));
    }

    progressed = false;
    sched_bucket = &wheel[static_cast<std::size_t>((now + latency) & wmask)];

    // 0a/0b. Fault events and per-tree loss detection, in the same order
    // and at the same point in the cycle as the reference loop. Either one
    // counts as progress so the idle-jump below never skips its effects.
    if (faults_active) {
      while (fault.next < fault.events.size() &&
             fault.events[fault.next].cycle <= now) {
        const PreparedFault& ev = fault.events[fault.next++];
        if (ev.down) {
          if (!fault.edge_down[static_cast<std::size_t>(ev.edge)]) {
            fault.edge_down[static_cast<std::size_t>(ev.edge)] = 1;
            drop_edge(ev.edge);
          }
        } else {
          fault.edge_down[static_cast<std::size_t>(ev.edge)] = 0;
        }
        PFAR_OBS(on_fault(now, ev.edge, ev.down));
        progressed = true;
      }
    }
    if (timeout > 0) {
      for (int t = 0; t < num_trees; ++t) {
        if (!tree_canceled[static_cast<std::size_t>(t)] &&
            tree_remaining[static_cast<std::size_t>(t)] > 0 &&
            now - tree_progress[static_cast<std::size_t>(t)] > timeout) {
          cancel_tree(t);
        }
      }
    }

    // 1. Arrivals: only VCs with a wake-up scheduled for this cycle. A
    // landing advances the ready boundary of the combined ring; a matured
    // credit return bumps the sender-side credit count.
    {
      auto& bucket = wheel[static_cast<std::size_t>(now & wmask)];
      if (!bucket.empty()) {
        pending_events -= static_cast<long long>(bucket.size());
        for (std::int32_t id : bucket) {
          const std::size_t base = static_cast<std::size_t>(id) * pcap;
          const std::uint32_t before = rready[static_cast<std::size_t>(id)];
          while (rready[static_cast<std::size_t>(id)] < rtotal[static_cast<std::size_t>(id)] &&
                 ring_time[base + ((rhead[static_cast<std::size_t>(id)] + rready[static_cast<std::size_t>(id)]) & pmask)] <=
                     now) {
            ++rready[static_cast<std::size_t>(id)];
          }
          if (rready[static_cast<std::size_t>(id)] != before) {
            result.max_vc_occupancy =
                std::max(result.max_vc_occupancy,
                         static_cast<int>(rready[static_cast<std::size_t>(id)]));
            const std::size_t qd =
                static_cast<std::size_t>(vc_dlink[static_cast<std::size_t>(id)]);
            result.link_queue_hwm[qd] = std::max(
                result.link_queue_hwm[qd],
                static_cast<long long>(rready[static_cast<std::size_t>(id)]));
            PFAR_OBS(on_queue_depth(
                vc_dlink[static_cast<std::size_t>(id)],
                static_cast<int>(rready[static_cast<std::size_t>(id)])));
            last_progress = now;
            progressed = true;
            // A poisoned VC's landings still occupy the buffer (occupancy
            // above) but never make it ready (its consumer must not fire).
            if (vc_is_reduce[static_cast<std::size_t>(id)]) {
              if (before == 0 && !vc_poisoned[static_cast<std::size_t>(id)]) {
              ++eng_ready[static_cast<std::size_t>(
                  vc_dst_state[static_cast<std::size_t>(id)])];
            }
            } else if (!vc_poisoned[static_cast<std::size_t>(id)]) {
              activate_bcast(vc_dst_state[static_cast<std::size_t>(id)]);
            }
          }
          while (ccount[static_cast<std::size_t>(id)] > 0 &&
                 credit_time[base + (chead[static_cast<std::size_t>(id)] & pmask)] <= now) {
            chead[static_cast<std::size_t>(id)] = (chead[static_cast<std::size_t>(id)] + 1) & pmask;
            --ccount[static_cast<std::size_t>(id)];
            ++credits[static_cast<std::size_t>(id)];
            progressed = true;
          }
        }
        bucket.clear();
      }
    }

    // 2. Root engines (O(num_trees), cheap enough to visit every cycle).
    for (int t = 0; t < num_trees; ++t) {
      if (tree_canceled[static_cast<std::size_t>(t)]) continue;
      const std::int32_t si = root_state[static_cast<std::size_t>(t)];
      for (int fire = 0; fire < bw; ++fire) {
        if (eng_injected[static_cast<std::size_t>(si)] >=
            eng_target[static_cast<std::size_t>(si)]) {
          break;
        }
        if (mode != Collective::kReduce &&
            static_cast<int>(rq_count[static_cast<std::size_t>(t)]) >= config.vc_credits) {
          break;
        }
        Ref packet;
        if (mode == Collective::kBroadcast) {
          const long long remaining =
              eng_target[static_cast<std::size_t>(si)] -
              eng_injected[static_cast<std::size_t>(si)];
          const long long size =
              std::min<long long>(config.packet_payload, remaining);
          const std::int32_t slab = alloc_slab();
          std::int64_t* out =
              &arena[static_cast<std::size_t>(slab) * static_cast<std::size_t>(stride)];
          std::int64_t value = inj_next[static_cast<std::size_t>(si)];
          for (long long i = 0; i < size; ++i) {
            out[i] = value;
            value += kElemStride;
          }
          inj_next[static_cast<std::size_t>(si)] = value;
          eng_injected[static_cast<std::size_t>(si)] += size;
          packet = Ref{slab, static_cast<std::int32_t>(size)};
        } else {
          if (eng_ready[static_cast<std::size_t>(si)] != eng_nchild[static_cast<std::size_t>(si)]) break;
          packet = make_reduce_packet(si);
        }
        if (mode == Collective::kReduce) {
          deliver(t, si, packet);
          free_slabs.push_back(packet.slab);
        } else {
          root_ring[static_cast<unsigned>(t) * pcap + ((rq_head[static_cast<std::size_t>(t)] + rq_count[static_cast<std::size_t>(t)]) & pmask)] =
              packet;
          ++rq_count[static_cast<std::size_t>(t)];
          activate_bcast(si);
        }
        last_progress = now;
        progressed = true;
      }
    }

    // 3. Broadcast replication, active engines only. Processing order
    // within a cycle does not affect any state the engines share, so the
    // activation order is as good as the reference loop's (t, v) order.
    if (want_bcast && !bcast_list.empty()) {
      bcast_current.clear();
      bcast_current.swap(bcast_list);
      for (std::int32_t idx : bcast_current) bcast_active[static_cast<std::size_t>(idx)] = 0;
      for (std::int32_t idx : bcast_current) {
        const int t = idx / n;
        if (tree_canceled[static_cast<std::size_t>(t)]) continue;
        const bool is_root = (idx == root_state[static_cast<std::size_t>(t)]);
        if (!is_root && eng_parent_vc[static_cast<std::size_t>(idx)] < 0) {
          continue;
        }
        const std::int32_t sb = stage_base[static_cast<std::size_t>(idx)];
        const std::int32_t forks = eng_nchild[static_cast<std::size_t>(idx)];
        bool blocked = false;
        int moves = 0;
        for (; moves < bw; ++moves) {
          bool room = true;
          for (std::int32_t c = 0; c < forks; ++c) {
            if (static_cast<int>(fcount[static_cast<std::size_t>(sb + c)]) >= config.fork_buffer) {
              room = false;
              break;
            }
          }
          if (!room) {
            blocked = true;  // re-armed by a fork-slot drain in step 4
            break;
          }
          Ref packet;
          if (is_root) {
            if (rq_count[static_cast<std::size_t>(t)] == 0) {
              blocked = true;  // re-armed by the next root-queue push
              break;
            }
            packet = root_ring[static_cast<unsigned>(t) * pcap + (rq_head[static_cast<std::size_t>(t)] & pmask)];
            rq_head[static_cast<std::size_t>(t)] = (rq_head[static_cast<std::size_t>(t)] + 1) & pmask;
            --rq_count[static_cast<std::size_t>(t)];
          } else {
            const int pvc = eng_parent_vc[static_cast<std::size_t>(idx)];
            if (vc_poisoned[static_cast<std::size_t>(pvc)] ||
                rready[static_cast<std::size_t>(pvc)] == 0) {
              blocked = true;  // re-armed by the next arrival
              break;
            }
            packet = ring_ref[static_cast<unsigned>(pvc) * pcap + (rhead[static_cast<std::size_t>(pvc)] & pmask)];
            rhead[static_cast<std::size_t>(pvc)] = (rhead[static_cast<std::size_t>(pvc)] + 1) & pmask;
            --rtotal[static_cast<std::size_t>(pvc)];
            --rready[static_cast<std::size_t>(pvc)];
            return_credit(pvc);
          }
          deliver(t, idx, packet);
          if (forks == 0) {
            free_slabs.push_back(packet.slab);
          } else {
            for (std::int32_t c = 0; c + 1 < forks; ++c) {
              const std::int32_t slab = alloc_slab();
              std::copy_n(
                  &arena[static_cast<std::size_t>(packet.slab) * static_cast<std::size_t>(stride)],
                  packet.size,
                  &arena[static_cast<std::size_t>(slab) * static_cast<std::size_t>(stride)]);
              const std::int32_t sid = sb + c;
              fork_ring[static_cast<unsigned>(sid) * fcap + ((fhead[static_cast<std::size_t>(sid)] + fcount[static_cast<std::size_t>(sid)]) & fmask)] =
                  Ref{slab, packet.size};
              ++fcount[static_cast<std::size_t>(sid)];
            }
            const std::int32_t sid = sb + forks - 1;
            fork_ring[static_cast<unsigned>(sid) * fcap + ((fhead[static_cast<std::size_t>(sid)] + fcount[static_cast<std::size_t>(sid)]) & fmask)] =
                packet;
            ++fcount[static_cast<std::size_t>(sid)];
          }
        }
        // Used its full per-cycle budget without blocking: it may have more
        // work next cycle with no new event to re-arm it, so stay active.
        if (!blocked && moves == bw) activate_bcast(idx);
      }
    }

    // 4. Link arbitration, identical to the reference loop except that a
    // token-starved link contributes its recharge time to the event
    // horizon instead of being probed.
    long long recharge_offset = LLONG_MAX;
    for (const std::int32_t dl : active_dlinks) {
      tokens[static_cast<std::size_t>(dl)] = std::min<long long>(tokens[static_cast<std::size_t>(dl)] + bw, token_cap);
      // Down link: tokens recharge (reference loop ditto) but no grants,
      // and it contributes nothing to the recharge horizon — resumption is
      // driven by the link_up fault event, which is its own wake point.
      // The background accumulator freezes too (reference loop ditto).
      if (faults_active && !fault.edge_ok(dl)) continue;
      if (bg_active) {
        long long& acc = bg_acc[static_cast<std::size_t>(dl)];
        acc += bg_rates_ppm[static_cast<std::size_t>(dl)];
        if (acc >= bg_pkt_ppm) {
          const long long pkts = acc / bg_pkt_ppm;
          acc -= pkts * bg_pkt_ppm;
          tokens[static_cast<std::size_t>(dl)] -= pkts * bg_pkt_flits;
          result.link_bg_flits[static_cast<std::size_t>(dl)] +=
              pkts * bg_pkt_flits;
          PFAR_OBS(on_grant(dl, now));
        }
      }
      if (tokens[static_cast<std::size_t>(dl)] <= 0) {
        // Cycles until the bucket is positive again: smallest k >= 1 with
        // tokens + k * bw >= 1.
        recharge_offset =
            std::min(recharge_offset, (1 - tokens[static_cast<std::size_t>(dl)] + bw - 1) / bw);
        continue;
      }
      const std::int32_t lb = lv_base[static_cast<std::size_t>(dl)];
      const int count =
          static_cast<int>(lv_base[static_cast<std::size_t>(dl) + 1] - lb);
      const int probes = count * bw;
      int slot = rr[static_cast<std::size_t>(dl)];
      for (int probe = 0; probe < probes && tokens[static_cast<std::size_t>(dl)] > 0;
           ++probe, slot = slot + 1 == count ? 0 : slot + 1) {
        const int id = lv_ids[static_cast<std::size_t>(lb + slot)];
        if (tree_canceled[static_cast<std::size_t>(
                vc_src_state[static_cast<std::size_t>(id)] / n)]) {
          continue;
        }
        if (credits[static_cast<std::size_t>(id)] <= 0) {
          // Credit stall, counted at the same probe point as the reference
          // loop. Stall totals are engine-relative: this engine never
          // probes the cycles it fast-forwards over.
          PFAR_OBS(on_credit_stall_if(fast_vc_ready(id)));
          continue;
        }
        Ref packet;
        if (vc_is_reduce[static_cast<std::size_t>(id)]) {
          const std::int32_t si = vc_src_state[static_cast<std::size_t>(id)];
          if (eng_injected[static_cast<std::size_t>(si)] >= eng_target[static_cast<std::size_t>(si)] ||
              eng_ready[static_cast<std::size_t>(si)] != eng_nchild[static_cast<std::size_t>(si)]) {
            continue;
          }
          rr[static_cast<std::size_t>(dl)] = slot + 1 == count ? 0 : slot + 1;
          packet = make_reduce_packet(si);
        } else {
          const std::int32_t sid = vc_stage[static_cast<std::size_t>(id)];
          if (fcount[static_cast<std::size_t>(sid)] == 0) continue;
          rr[static_cast<std::size_t>(dl)] = slot + 1 == count ? 0 : slot + 1;
          packet = fork_ring[static_cast<unsigned>(sid) * fcap + (fhead[static_cast<std::size_t>(sid)] & fmask)];
          fhead[static_cast<std::size_t>(sid)] = (fhead[static_cast<std::size_t>(sid)] + 1) & fmask;
          --fcount[static_cast<std::size_t>(sid)];
          activate_bcast(vc_src_state[static_cast<std::size_t>(id)]);  // fork slot drained
        }
        const long long flits = packet.size + header;
        tokens[static_cast<std::size_t>(dl)] -= flits;
        result.link_flits[static_cast<std::size_t>(dl)] += flits;
        PFAR_OBS(on_grant(dl, now));
        --credits[static_cast<std::size_t>(id)];
        if (faults_active && fault.drop_now(dl)) {
          // Flaky link ate the packet (same decision sequence as the
          // reference loop): account the loss, poison the receiver, and
          // schedule the normal credit return.
          ++result.dropped_packets;
          result.dropped_flits += flits;
          result.link_dropped_flits[static_cast<std::size_t>(dl)] += flits;
          PFAR_OBS(on_drop(dl, flits));
          free_slabs.push_back(packet.slab);
          poison_vc(id);
          credit_time[static_cast<unsigned>(id) * pcap +
                      ((chead[static_cast<std::size_t>(id)] + ccount[static_cast<std::size_t>(id)]) & pmask)] =
              now + latency;
          ++ccount[static_cast<std::size_t>(id)];
          schedule_wakeup(id);
        } else {
          ring_time[static_cast<unsigned>(id) * pcap + ((rhead[static_cast<std::size_t>(id)] + rtotal[static_cast<std::size_t>(id)]) & pmask)] =
              now + latency;
          ring_ref[static_cast<unsigned>(id) * pcap + ((rhead[static_cast<std::size_t>(id)] + rtotal[static_cast<std::size_t>(id)]) & pmask)] = packet;
          ++rtotal[static_cast<std::size_t>(id)];
          schedule_wakeup(id);
        }
        last_progress = now;
        progressed = true;
      }
    }

    if (progressed) {
      ++now;
      continue;
    }

    // Idle cycle: nothing can move until an in-flight landing, a token
    // recharge, or one of the abort deadlines. Jump there directly.
    long long target = LLONG_MAX;
    if (pending_events > 0) {
      for (int d = 1; d <= latency; ++d) {
        if (!wheel[static_cast<std::size_t>((now + d) & wmask)].empty()) {
          target = now + d;
          break;
        }
      }
    }
    if (recharge_offset != LLONG_MAX) {
      target = std::min(target, now + recharge_offset);
    }
    // Fault cycles are wake points: the jump may never skip a scheduled
    // event or a per-tree timeout expiry (both checked at cycle tops, so
    // the expiry cycle progress + timeout + 1 must be visited).
    if (faults_active && fault.next < fault.events.size()) {
      target = std::min(target, fault.events[fault.next].cycle);
    }
    if (timeout > 0) {
      for (int t = 0; t < num_trees; ++t) {
        if (!tree_canceled[static_cast<std::size_t>(t)] &&
            tree_remaining[static_cast<std::size_t>(t)] > 0) {
          target = std::min(
              target, tree_progress[static_cast<std::size_t>(t)] + timeout + 1);
        }
      }
    }
    // Background drains mutate token buckets, so the next drain cycle of
    // every live (up, loaded) link is a wake point: the jump may only
    // skip cycles in which no link drains, which keeps the closed-form
    // token advance below exact. Down links freeze and resume via their
    // link_up fault event, itself a wake point.
    if (bg_active) {
      for (const std::int32_t dl : active_dlinks) {
        const long long rate = bg_rates_ppm[static_cast<std::size_t>(dl)];
        if (rate <= 0) continue;
        if (faults_active && !fault.edge_ok(dl)) continue;
        // Smallest k >= 1 with acc + k * rate >= bg_pkt_ppm (acc stays
        // below bg_pkt_ppm between drains, so need >= 1).
        const long long need =
            bg_pkt_ppm - bg_acc[static_cast<std::size_t>(dl)];
        target = std::min(target, now + (need + rate - 1) / rate);
      }
    }
    target = std::min(target, last_progress + config.stall_limit + 1);
    target = std::min(target, config.max_cycles + 1);
    const long long skip = target - now - 1;
    if (skip > 0) {
      for (const std::int32_t dl : active_dlinks) {
        tokens[static_cast<std::size_t>(dl)] = std::min<long long>(tokens[static_cast<std::size_t>(dl)] + skip * bw, token_cap);
        if (bg_active && !(faults_active && !fault.edge_ok(dl))) {
          // Drain-free range (see the wake point above): the accumulator
          // advances linearly, exactly as skip per-cycle updates would.
          bg_acc[static_cast<std::size_t>(dl)] +=
              skip * bg_rates_ppm[static_cast<std::size_t>(dl)];
        }
      }
    }
    now = target;
  }

  // Quiesce, mirrored from the reference loop onto the flat rings: empty
  // receive/in-flight rings, drained fork stages and root queues, and
  // credit conservation per VC (held + still returning == budget).
  for (int id = 0; id < num_vcs; ++id) {
    PFAR_ENSURE(rtotal[static_cast<std::size_t>(id)] == 0, id,
                rtotal[static_cast<std::size_t>(id)]);
    PFAR_ENSURE(credits[static_cast<std::size_t>(id)] +
                        static_cast<std::int32_t>(
                            ccount[static_cast<std::size_t>(id)]) ==
                    config.vc_credits,
                id, credits[static_cast<std::size_t>(id)],
                ccount[static_cast<std::size_t>(id)]);
  }
  for (int sid = 0; sid < num_stages; ++sid) {
    PFAR_ENSURE(fcount[static_cast<std::size_t>(sid)] == 0, sid,
                fcount[static_cast<std::size_t>(sid)]);
  }
  for (int t = 0; t < num_trees; ++t) {
    PFAR_ENSURE(rq_count[static_cast<std::size_t>(t)] == 0, t,
                rq_count[static_cast<std::size_t>(t)]);
  }
  return now;
}

}  // namespace

// ---------------------------------------------------------------------------
// Intra-run sharding (SimConfig::shard_threads, fast-forward engine only).
// Trees are grouped into link-disjoint components: trees sharing any
// physical edge always land in the same group, so two groups never have a
// VC on the same directed link and exchange no packets, credits, grants or
// token-bucket state. Each group therefore runs in its own Fabric (built on
// the FULL topology, preserving global directed-link ids and — via
// Fabric::tree_gid — global packet values) and the per-group results merge
// into exactly the serial run's: per-tree fields scatter by global index,
// per-link counters add over disjoint supports, maxima/sums combine, and
// the run's exit cycle is the max of the group exit cycles (each engine
// exits at its last delivery cycle + 1). Bit-identity across every thread
// count is pinned by tests/sharded_determinism_test.cpp. The one documented
// divergence: a deadlock/cycle-limit *exception* reports the failing
// group's own clock, which may differ from the serial cycle number.
//
// Public (docs/service_layer.md): the same partition is the allocation
// unit of the multi-tenant service scheduler — two jobs on different
// groups time nothing of each other, so the service may run them on
// independent virtual timelines exactly.
// ---------------------------------------------------------------------------
std::vector<std::vector<int>> link_disjoint_tree_groups(
    const graph::Graph& topology, const std::vector<TreeEmbedding>& trees) {
  const int num_trees = static_cast<int>(trees.size());
  const int n = topology.num_vertices();
  std::vector<int> uf(static_cast<std::size_t>(num_trees));
  for (int t = 0; t < num_trees; ++t) uf[static_cast<std::size_t>(t)] = t;
  const auto find = [&](int x) {
    while (uf[static_cast<std::size_t>(x)] != x) {
      uf[static_cast<std::size_t>(x)] =
          uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
      x = uf[static_cast<std::size_t>(x)];
    }
    return x;
  };
  std::vector<int> edge_owner(static_cast<std::size_t>(topology.num_edges()),
                              -1);
  for (int t = 0; t < num_trees; ++t) {
    const auto& parent = trees[static_cast<std::size_t>(t)].parent;
    for (int v = 0; v < n; ++v) {
      const int p = parent[static_cast<std::size_t>(v)];
      if (p < 0) continue;
      const std::size_t e =
          static_cast<std::size_t>(topology.edge_id(v, p));
      if (edge_owner[e] < 0) {
        edge_owner[e] = t;
      } else {
        const int a = find(edge_owner[e]);
        const int b = find(t);
        if (a != b) uf[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
      }
    }
  }
  std::vector<int> group_of(static_cast<std::size_t>(num_trees), -1);
  std::vector<std::vector<int>> groups;
  for (int t = 0; t < num_trees; ++t) {
    const std::size_t r = static_cast<std::size_t>(find(t));
    if (group_of[r] < 0) {
      group_of[r] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[r])].push_back(t);
  }
  // The groups partition the tree set: every tree lands in exactly one.
  std::size_t grouped = 0;
  for (const auto& g : groups) grouped += g.size();
  PFAR_ENSURE(grouped == static_cast<std::size_t>(num_trees), grouped,
              num_trees);
  return groups;
}

namespace {

long long run_sharded(const graph::Graph& topology,
                      const std::vector<TreeEmbedding>& trees,
                      const SimConfig& config,
                      const std::vector<long long>& elements_per_tree,
                      const std::vector<std::vector<int>>& groups,
                      const std::vector<long long>& bg_rates_ppm,
                      SimResult& result) {
  const int num_groups = static_cast<int>(groups.size());
  std::vector<SimResult> sub(static_cast<std::size_t>(num_groups));
  std::vector<long long> sub_cycles(static_cast<std::size_t>(num_groups), 0);
  // Every group receives the FULL fault script: an event on another
  // group's edge flips a link no local VC crosses, which is a no-op (the
  // serial run behaves identically for that group's trees), and flaky-drop
  // ordinals are per directed link, whose packets all belong to the one
  // group owning that edge — so decisions match the serial sequence.
  util::parallel_for(
      config.shard_threads, num_groups, [&](int g) {
        const std::vector<int>& gids =
            groups[static_cast<std::size_t>(g)];
        std::vector<TreeEmbedding> sub_trees;
        std::vector<long long> sub_elements;
        sub_trees.reserve(gids.size());
        sub_elements.reserve(gids.size());
        for (int t : gids) {
          sub_trees.push_back(trees[static_cast<std::size_t>(t)]);
          sub_elements.push_back(
              elements_per_tree[static_cast<std::size_t>(t)]);
        }
        SimResult& r = sub[static_cast<std::size_t>(g)];
        Fabric fabric = build_fabric(topology, sub_trees, config, r, &gids);
        const long long receivers =
            config.collective == Collective::kReduce ? 1 : fabric.n;
        long long target = 0;
        std::vector<long long> remaining(gids.size());
        for (std::size_t i = 0; i < gids.size(); ++i) {
          r.total_elements += sub_elements[i];
          remaining[i] = sub_elements[i] * receivers;
          target += remaining[i];
        }
        if (target == 0) return;
        FaultState fault = prepare_faults(topology, config.faults);
        sub_cycles[static_cast<std::size_t>(g)] = run_fast_loop(
            fabric, config, sub_elements, r, remaining, target, fault,
            bg_rates_ppm, nullptr);
      });

  // Deterministic merge, in group order (though every combiner below is
  // order-independent: scatter to disjoint indices, sums, maxima, ANDs).
  long long cycles = 0;
  for (int g = 0; g < num_groups; ++g) {
    const std::size_t gi = static_cast<std::size_t>(g);
    cycles = std::max(cycles, sub_cycles[gi]);
    const SimResult& r = sub[gi];
    const std::vector<int>& gids = groups[gi];
    for (std::size_t i = 0; i < gids.size(); ++i) {
      const std::size_t t = static_cast<std::size_t>(gids[i]);
      result.tree_finish_cycle[t] = r.tree_finish_cycle[i];
      result.tree_first_delivery[t] = r.tree_first_delivery[i];
      result.tree_failed[t] = r.tree_failed[i];
      result.tree_fail_cycle[t] = r.tree_fail_cycle[i];
      result.tree_completed[t] = r.tree_completed[i];
    }
    result.max_vc_occupancy =
        std::max(result.max_vc_occupancy, r.max_vc_occupancy);
    result.values_correct = result.values_correct && r.values_correct;
    result.dropped_packets += r.dropped_packets;
    result.dropped_flits += r.dropped_flits;
    result.canceled_packets += r.canceled_packets;
    result.canceled_flits += r.canceled_flits;
    for (std::size_t d = 0; d < r.link_flits.size(); ++d) {
      result.link_flits[d] += r.link_flits[d];
      result.link_dropped_flits[d] += r.link_dropped_flits[d];
      // Disjoint supports: exactly one group touches each VC-carrying
      // link, so max == sum here. Background counts are windowed per
      // group and normalized to the global exit cycle by the closed-form
      // pass in run() (background + faults forces a serial run).
      result.link_queue_hwm[d] =
          std::max(result.link_queue_hwm[d], r.link_queue_hwm[d]);
      result.link_bg_flits[d] += r.link_bg_flits[d];
    }
  }
  return cycles;
}

}  // namespace

// pfar-lint: allow(contract-coverage) every config field, fault script and tree is validated via std::invalid_argument throws below
AllreduceSimulator::AllreduceSimulator(const graph::Graph& topology,
                                       std::vector<TreeEmbedding> trees,
                                       SimConfig config)
    : topology_(topology), trees_(std::move(trees)), config_(config) {
  if (config_.link_bandwidth < 1 || config_.link_latency < 0 ||
      config_.vc_credits < 1 || config_.fork_buffer < 1 ||
      config_.packet_payload < 1 || config_.packet_header_flits < 0) {
    throw std::invalid_argument("AllreduceSimulator: bad config");
  }
  if (config_.progress_timeout < 0) {
    throw std::invalid_argument(
        "AllreduceSimulator: negative progress_timeout");
  }
  if (config_.progress_timeout > 0 &&
      config_.progress_timeout >= config_.stall_limit) {
    throw std::invalid_argument(
        "AllreduceSimulator: progress_timeout must be below stall_limit so "
        "per-tree detection fires before the global deadlock check");
  }
  if (config_.background.load < 0.0 || config_.background.load >= 1.0 ||
      config_.background.packet_flits < 1) {
    throw std::invalid_argument(
        "AllreduceSimulator: background load must be in [0, 1) and "
        "packet_flits >= 1");
  }
  if (config_.background.active() &&
      config_.background.pattern == TrafficPattern::kHotspot &&
      (config_.background.hotspot_node < 0 ||
       config_.background.hotspot_node >= topology_.num_vertices() ||
       config_.background.hotspot_fraction < 0.0 ||
       config_.background.hotspot_fraction > 1.0)) {
    throw std::invalid_argument(
        "AllreduceSimulator: hotspot_node must name a vertex and "
        "hotspot_fraction lie in [0, 1]");
  }
  // Validate the fault script eagerly (edge existence, cycle/permille
  // ranges) so a bad script fails at construction, not mid-run.
  static_cast<void>(prepare_faults(topology_, config_.faults));
  const int n = topology_.num_vertices();
  for (const auto& tree : trees_) {
    if (static_cast<int>(tree.parent.size()) != n) {
      throw std::invalid_argument("AllreduceSimulator: tree size mismatch");
    }
    for (int v = 0; v < n; ++v) {
      if (v == tree.root) {
        if (tree.parent[static_cast<std::size_t>(v)] != -1) {
          throw std::invalid_argument("AllreduceSimulator: root has parent");
        }
        continue;
      }
      if (!topology_.has_edge(v, tree.parent[static_cast<std::size_t>(v)])) {
        throw std::invalid_argument(
            "AllreduceSimulator: tree edge not a physical link");
      }
    }
  }
}

// pfar-lint: allow(contract-coverage) the split vector is validated via std::invalid_argument throws (size and sign), matching the constructor
SimResult AllreduceSimulator::run(
    const std::vector<long long>& elements_per_tree) {
  const int num_trees = static_cast<int>(trees_.size());
  if (static_cast<int>(elements_per_tree.size()) != num_trees) {
    throw std::invalid_argument("run: elements_per_tree size mismatch");
  }

  // The flow tier never builds the per-VC fabric — that is the point: its
  // footprint is O(E + trees * N), which is what lets it reach q >= 243.
  if (config_.engine == SimEngine::kFlow) {
    return run_flow_allreduce(topology_, trees_, config_, elements_per_tree);
  }

  SimResult result;
  Fabric fabric = build_fabric(topology_, trees_, config_, result);

  // Deliveries expected per tree: at every node for Allreduce/Broadcast,
  // at the root only for Reduce.
  const Collective mode = config_.collective;
  long long total_target = 0;
  std::vector<long long> tree_remaining(static_cast<std::size_t>(num_trees));
  for (int t = 0; t < num_trees; ++t) {
    if (elements_per_tree[static_cast<std::size_t>(t)] < 0) {
      throw std::invalid_argument("run: negative element count");
    }
    result.total_elements += elements_per_tree[static_cast<std::size_t>(t)];
    const long long receivers =
        (mode == Collective::kReduce) ? 1 : fabric.n;
    tree_remaining[static_cast<std::size_t>(t)] = elements_per_tree[static_cast<std::size_t>(t)] * receivers;
    total_target += tree_remaining[static_cast<std::size_t>(t)];
  }
  if (total_target == 0) return result;

  FaultState fault = prepare_faults(topology_, config_.faults);

  // Background traffic: steady-state per-directed-link drain rates,
  // computed once per run (empty vector = quiet network, and none of the
  // engines' background code executes).
  std::vector<long long> bg_rates;
  if (config_.background.active()) {
    bg_rates = background_link_rates_ppm(topology_, config_.background,
                                         config_.link_bandwidth);
  }

  // Observability: attach only when compiled in and a Recorder is supplied;
  // both engines then see the same (possibly null) observer pointer.
  SimObserver observer;
  SimObserver* obs = nullptr;
  if constexpr (obsv::kTraceCompiled) {
    if (config_.recorder != nullptr) {
      observer.init(config_.recorder, topology_, fabric, mode);
      obs = &observer;
    }
  }

  // Intra-run sharding: fast-forward engine, more than one link-disjoint
  // tree group, and no observer (the trace is single-writer; a run with a
  // Recorder attached executes serially, still bit-identically).
  long long cycles = 0;
  bool sharded = false;
  // Background + faults runs execute serially: each shard would count
  // background drains over its own exit window and the per-link up-time
  // accounting could not be normalized afterwards (fault-free runs are
  // normalized in closed form below, so they shard freely).
  if (config_.engine == SimEngine::kFastForward &&
      config_.shard_threads != 1 && num_trees > 1 && obs == nullptr &&
      (bg_rates.empty() || config_.faults.empty())) {
    const auto groups = link_disjoint_tree_groups(topology_, trees_);
    if (groups.size() > 1) {
      cycles = run_sharded(topology_, trees_, config_, elements_per_tree,
                           groups, bg_rates, result);
      sharded = true;
      // Each group consumed its own FaultState copy up to its own exit
      // cycle. The serial engines apply every scripted event with
      // cycle <= exit - 1 (event cycles are wake points the idle jump
      // never skips), so replaying those events here reproduces the
      // serial run's final down set exactly.
      for (const auto& ev : fault.events) {
        if (ev.cycle < cycles) {
          fault.edge_down[static_cast<std::size_t>(ev.edge)] =
              ev.down ? 1 : 0;
        }
      }
    }
  }
  if (!sharded) {
    cycles = config_.engine == SimEngine::kReference
                 ? run_reference_loop(fabric, config_, elements_per_tree,
                                      result, tree_remaining, total_target,
                                      fault, bg_rates, obs)
                 : run_fast_loop(fabric, config_, elements_per_tree, result,
                                 tree_remaining, total_target, fault,
                                 bg_rates, obs);
  }

  result.cycles = cycles;
  result.aggregate_bandwidth = static_cast<double>(result.total_elements) /
                               static_cast<double>(cycles);
  // Healthy trees completed their whole assignment; failed trees recorded
  // their complete prefix at cancel time.
  for (int t = 0; t < num_trees; ++t) {
    if (!result.tree_failed[static_cast<std::size_t>(t)]) {
      result.tree_completed[static_cast<std::size_t>(t)] =
          elements_per_tree[static_cast<std::size_t>(t)];
    }
  }
  // Links still down at run end: the set recovery must replan around.
  const auto& edges = topology_.edges();
  for (std::size_t e = 0; e < fault.edge_down.size(); ++e) {
    if (fault.edge_down[e]) result.links_down.push_back(edges[e]);
  }
  if (!bg_rates.empty()) {
    // Every link was up for the whole run when no down/up events exist
    // (flaky links drop packets but keep serving), so each link's drain
    // count telescopes to the closed form over [0, cycles). Writing it
    // here (a) extends the accounting to links the engines never touch
    // (no VCs — the engines skip them, yet their background load is real
    // and the congestion controller wants it) and (b) normalizes sharded
    // runs, whose groups stop counting at their own exit cycles. With
    // down events the engine-maintained per-up-cycle counts stand, and
    // only VC-carrying links are accounted (the run was serial).
    if (config_.faults.events.empty()) {
      for (std::size_t d = 0; d < result.link_bg_flits.size(); ++d) {
        result.link_bg_flits[d] =
            background_packets_in(cycles, bg_rates[d],
                                  config_.background.packet_flits) *
            config_.background.packet_flits;
      }
    }
    for (long long flits : result.link_bg_flits) {
      result.background_flits += flits;
    }
    result.background_packets =
        result.background_flits / config_.background.packet_flits;
  }
  if (obs != nullptr) obs->finalize(cycles, result);
  return result;
}

}  // namespace pfar::simnet
