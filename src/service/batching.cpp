#include "service/batching.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pfar::service {

std::vector<std::size_t> collect_batch(const std::vector<QueuedJob>& queue,
                                       std::size_t seed,
                                       const ServiceConfig& config) {
  PFAR_REQUIRE(seed < queue.size());
  std::vector<std::size_t> batch{seed};
  if (config.policy != SchedulerPolicy::kPartitionedBatched) return batch;

  const QueuedJob& lead = queue[seed];
  long long elements = lead.elements;
  // Scan companions in deterministic queue-arrival order, not queue
  // position (positions shuffle as jobs dispatch; (queued_cycle, seq)
  // never does).
  std::vector<std::size_t> order(queue.size());
  for (std::size_t i = 0; i < queue.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return queue[a].queued_cycle != queue[b].queued_cycle
               ? queue[a].queued_cycle < queue[b].queued_cycle
               : queue[a].seq < queue[b].seq;
  });
  for (std::size_t i : order) {
    if (static_cast<int>(batch.size()) >= config.batch_max_jobs) break;
    if (i == seed) continue;
    const QueuedJob& job = queue[i];
    if (job.group != lead.group || job.op != lead.op) continue;
    if (elements + job.elements > config.batch_max_elements) continue;
    elements += job.elements;
    batch.push_back(i);
  }
  return batch;
}

}  // namespace pfar::service
