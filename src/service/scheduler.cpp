#include "service/scheduler.hpp"

#include "collectives/innetwork.hpp"
#include "simnet/allreduce_sim.hpp"
#include "util/contracts.hpp"

namespace pfar::service {

std::vector<Lane> build_lanes(const graph::Graph& topology,
                              const std::vector<trees::SpanningTree>& trees,
                              SchedulerPolicy policy) {
  PFAR_REQUIRE(!trees.empty());
  std::vector<Lane> lanes;
  if (policy == SchedulerPolicy::kSerial) {
    Lane all;
    for (int t = 0; t < static_cast<int>(trees.size()); ++t) {
      all.tree_ids.push_back(t);
    }
    all.trees = trees;
    lanes.push_back(std::move(all));
    return lanes;
  }
  const auto groups = simnet::link_disjoint_tree_groups(
      topology, collectives::to_embeddings(trees));
  lanes.reserve(groups.size());
  for (const auto& group : groups) {
    Lane lane;
    lane.tree_ids = group;
    for (int t : group) {
      lane.trees.push_back(trees[static_cast<std::size_t>(t)]);
    }
    lanes.push_back(std::move(lane));
  }
  // Every tree lands in exactly one lane (the partition property the
  // exact-concurrency argument rests on).
  std::size_t covered = 0;
  for (const auto& lane : lanes) covered += lane.tree_ids.size();
  PFAR_ENSURE(covered == trees.size(), covered, trees.size());
  return lanes;
}

std::size_t pick_seed(const std::vector<QueuedJob>& queue,
                      const std::map<int, long long>& served_elements) {
  PFAR_REQUIRE(!queue.empty());
  const auto served = [&](int tenant) {
    const auto it = served_elements.find(tenant);
    return it == served_elements.end() ? 0LL : it->second;
  };
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const QueuedJob& a = queue[i];
    const QueuedJob& b = queue[best];
    // Tenant choice: least served, then smaller tenant id.
    if (a.tenant != b.tenant) {
      const long long sa = served(a.tenant);
      const long long sb = served(b.tenant);
      if (sa != sb ? sa < sb : a.tenant < b.tenant) best = i;
      continue;
    }
    // Within the tenant: priority, then earliest (queued_cycle, seq).
    if (a.priority != b.priority) {
      if (a.priority > b.priority) best = i;
      continue;
    }
    if (a.queued_cycle != b.queued_cycle
            ? a.queued_cycle < b.queued_cycle
            : a.seq < b.seq) {
      best = i;
    }
  }
  return best;
}

}  // namespace pfar::service
