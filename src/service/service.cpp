#include "service/service.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "collectives/bucket_schedule.hpp"
#include "obsv/recorder.hpp"
#include "util/contracts.hpp"

namespace pfar::service {
namespace {

constexpr long long kNever = std::numeric_limits<long long>::max();

bool queued_before(const QueuedJob& a, const QueuedJob& b) {
  return a.queued_cycle != b.queued_cycle ? a.queued_cycle < b.queued_cycle
                                          : a.seq < b.seq;
}

}  // namespace

// pfar-lint: allow(contract-coverage) total switch over the enum; the "?" fallthrough is the documented answer for out-of-range values
const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kSerial: return "serial";
    case SchedulerPolicy::kPartitioned: return "partitioned";
    case SchedulerPolicy::kPartitionedBatched: return "batched";
  }
  return "?";
}

// pfar-lint: allow(contract-coverage) parser: rejecting an unknown name via std::invalid_argument IS the contract (CLI flags arrive here raw)
SchedulerPolicy policy_from_string(const std::string& name) {
  if (name == "serial") return SchedulerPolicy::kSerial;
  if (name == "partitioned") return SchedulerPolicy::kPartitioned;
  if (name == "batched") return SchedulerPolicy::kPartitionedBatched;
  throw std::invalid_argument("unknown scheduler policy '" + name +
                              "' (expected serial|partitioned|batched)");
}

AllreduceService::AllreduceService(core::AllreducePlan plan,
                                   ServiceConfig config)
    : plan_(std::move(plan)), config_(config) {
  PFAR_REQUIRE(config_.max_queue_jobs >= 1, config_.max_queue_jobs);
  PFAR_REQUIRE(config_.batch_max_jobs >= 1, config_.batch_max_jobs);
  PFAR_REQUIRE(config_.batch_max_elements >= 1, config_.batch_max_elements);
  PFAR_REQUIRE(config_.replan_cycles >= 0, config_.replan_cycles);
  PFAR_REQUIRE(config_.replay_backoff_cycles >= 0,
               config_.replay_backoff_cycles);
  lanes_ = build_lanes(plan_.topology(), plan_.trees(), config_.policy);
  lane_state_.assign(lanes_.size(), LaneState{});
  // Group 0: the implicit all-nodes group.
  Group all;
  for (int v = 0; v < plan_.num_nodes(); ++v) all.members.push_back(v);
  groups_.emplace(0, std::move(all));
  if constexpr (obsv::kTraceCompiled) {
    if (config_.sim.recorder != nullptr) {
      for (std::size_t l = 0; l < lanes_.size(); ++l) {
        config_.sim.recorder->trace.name_track(
            obsv::kTrackServiceBase + static_cast<std::uint32_t>(l),
            "lane " + std::to_string(l));
      }
    }
  }
}

int AllreduceService::create_group(const std::vector<int>& members) {
  PFAR_REQUIRE(!members.empty());
  Group g;
  g.members = members;
  std::sort(g.members.begin(), g.members.end());
  g.members.erase(std::unique(g.members.begin(), g.members.end()),
                  g.members.end());
  PFAR_REQUIRE(g.members.size() == members.size(), members.size());
  PFAR_REQUIRE(g.members.front() >= 0 && g.members.back() < plan_.num_nodes(),
               g.members.front(), g.members.back(), plan_.num_nodes());
  const int id = next_group_++;
  groups_.emplace(id, std::move(g));
  return id;
}

void AllreduceService::join(int group, int node, long long cycle) {
  PFAR_REQUIRE(groups_.count(group) == 1, group);
  PFAR_REQUIRE(node >= 0 && node < plan_.num_nodes(), node);
  member_pending_.push_back(
      MemberEvent{std::max(cycle, clock_), next_seq_++, group, node, true});
}

void AllreduceService::leave(int group, int node, long long cycle) {
  PFAR_REQUIRE(groups_.count(group) == 1, group);
  PFAR_REQUIRE(node >= 0 && node < plan_.num_nodes(), node);
  member_pending_.push_back(
      MemberEvent{std::max(cycle, clock_), next_seq_++, group, node, false});
}

int AllreduceService::submit(const JobSpec& spec) {
  PFAR_REQUIRE(spec.elements >= 0, spec.elements);
  PFAR_REQUIRE(spec.tenant >= 0, spec.tenant);
  PFAR_REQUIRE(groups_.count(spec.group) == 1, spec.group);
  const int id = static_cast<int>(records_.size());
  JobRecord record;
  record.spec = spec;
  record.spec.arrival_cycle = std::max(spec.arrival_cycle, clock_);
  records_.push_back(record);
  QueuedJob qj;
  qj.job_id = id;
  qj.tenant = spec.tenant;
  qj.group = spec.group;
  qj.elements = spec.elements;
  qj.op = spec.op;
  qj.priority = spec.priority;
  qj.queued_cycle = record.spec.arrival_cycle;
  qj.seq = next_seq_++;
  pending_.push_back(qj);
  return id;
}

void AllreduceService::drain() {
  std::stable_sort(pending_.begin(), pending_.end(), queued_before);
  std::stable_sort(member_pending_.begin(), member_pending_.end(),
                   [](const MemberEvent& a, const MemberEvent& b) {
                     return a.cycle != b.cycle ? a.cycle < b.cycle
                                               : a.seq < b.seq;
                   });
  for (;;) {
    long long t = kNever;
    if (!pending_.empty()) t = std::min(t, pending_.front().queued_cycle);
    if (!member_pending_.empty()) {
      t = std::min(t, member_pending_.front().cycle);
    }
    for (const LaneState& lane : lane_state_) {
      if (lane.busy) t = std::min(t, lane.free_at);
    }
    if (t == kNever) break;
    process(t);
  }
  PFAR_ENSURE(pending_.empty() && member_pending_.empty(), queue_.size());
}

/// Deterministic ordering at one event instant t: (1) batches finishing at
/// or before t deliver, (2) membership events at or before t apply (a
/// batch finishing exactly when a member leaves delivered first), (3)
/// arrivals at or before t are admitted (a job arriving at the event sees
/// the post-change group), (4) freed lanes dispatch.
void AllreduceService::process(long long t) {
  PFAR_REQUIRE(t >= 0, t, clock_);
  clock_ = std::max(clock_, t);
  complete_lanes(t);
  apply_member_events(t);
  admit_arrivals(t);
  dispatch_free_lanes();
}

void AllreduceService::complete_lanes(long long t) {
  PFAR_REQUIRE(t <= clock_, t, clock_);
  for (std::size_t l = 0; l < lane_state_.size(); ++l) {
    LaneState& lane = lane_state_[l];
    if (!lane.busy || lane.free_at > t) continue;
    const Batch& b = lane.batch;
    for (int id : b.job_ids) {
      finish_job(id, b.finish, static_cast<int>(l),
                 static_cast<int>(b.job_ids.size()));
    }
    total_flits_ += b.flits;
    if constexpr (obsv::kTraceCompiled) {
      if (obsv::Recorder* rec = config_.sim.recorder) {
        rec->trace.complete(
            b.start, b.finish - b.start,
            rec->trace.intern("g" + std::to_string(b.group) + " x" +
                              std::to_string(b.job_ids.size())),
            obsv::kTrackServiceBase + static_cast<std::uint32_t>(l),
            {"jobs", static_cast<long long>(b.job_ids.size())},
            {"elements", b.total_elements});
      }
    }
    lane.busy = false;
  }
}

void AllreduceService::apply_member_events(long long t) {
  std::size_t applied = 0;
  for (const MemberEvent& ev : member_pending_) {
    if (ev.cycle > t) break;
    ++applied;
    Group& g = groups_.at(ev.group);
    const auto it =
        std::lower_bound(g.members.begin(), g.members.end(), ev.node);
    if (ev.is_join) {
      PFAR_REQUIRE(it == g.members.end() || *it != ev.node, ev.group, ev.node);
      g.members.insert(it, ev.node);
      // A registering leaf participates from the next reduction on; work
      // in flight predates it and stands.
    } else {
      PFAR_REQUIRE(it != g.members.end() && *it == ev.node, ev.group, ev.node);
      PFAR_REQUIRE(g.members.size() > 1, ev.group);
      g.members.erase(it);
      // A leaving member invalidates its in-flight contributions: the
      // delivered prefix survives, the remainder replays.
      interrupt_group(ev.group, ev.cycle);
    }
    g.needs_replan = true;
    ++replans_;
    if constexpr (obsv::kTraceCompiled) {
      if (obsv::Recorder* rec = config_.sim.recorder) {
        rec->metrics.add("service.replans");
        rec->trace.instant(ev.cycle,
                           rec->trace.intern(ev.is_join ? "join" : "leave"),
                           obsv::kTrackSim, {"group", ev.group},
                           {"node", ev.node});
      }
    }
  }
  member_pending_.erase(member_pending_.begin(),
                        member_pending_.begin() +
                            static_cast<std::ptrdiff_t>(applied));
}

void AllreduceService::interrupt_group(int group, long long t) {
  for (std::size_t l = 0; l < lane_state_.size(); ++l) {
    LaneState& lane = lane_state_[l];
    if (!lane.busy || lane.batch.group != group) continue;
    const Batch& b = lane.batch;
    // complete_lanes already retired anything with finish <= t, so this
    // batch is genuinely mid-flight: 0 <= elapsed < duration.
    const long long duration = b.finish - b.data_start;
    const long long elapsed = std::max(0LL, t - b.data_start);
    PFAR_REQUIRE(elapsed < duration, elapsed, duration);
    long long delivered_total = 0;
    for (std::size_t j = 0; j < b.job_ids.size(); ++j) {
      const long long m = b.job_elements[j];
      const long long delivered = m * elapsed / duration;  // floor, < m
      const long long remainder = m - delivered;
      delivered_total += delivered;
      JobRecord& record = records_[static_cast<std::size_t>(b.job_ids[j])];
      record.replayed_elements += remainder;
      replayed_elements_ += remainder;
      QueuedJob replay;
      replay.job_id = b.job_ids[j];
      replay.tenant = record.spec.tenant;
      replay.group = group;
      replay.elements = remainder;
      replay.op = record.spec.op;
      replay.priority = record.spec.priority;
      replay.queued_cycle = t;
      replay.seq = next_seq_++;
      replay.replay = true;
      queue_.push_back(replay);  // replays bypass admission control
    }
    // The fabric work actually spent before the cut, pro rata.
    total_flits_ += b.total_elements == 0
                        ? 0
                        : b.flits * delivered_total / b.total_elements;
    if constexpr (obsv::kTraceCompiled) {
      if (obsv::Recorder* rec = config_.sim.recorder) {
        rec->metrics.add("service.interrupted_batches");
        rec->trace.complete(
            b.start, t - b.start,
            rec->trace.intern("g" + std::to_string(group) + " cut"),
            obsv::kTrackServiceBase + static_cast<std::uint32_t>(l),
            {"jobs", static_cast<long long>(b.job_ids.size())},
            {"delivered", delivered_total});
      }
    }
    lane.busy = false;
    lane.free_at = t;
  }
}

void AllreduceService::admit_arrivals(long long t) {
  PFAR_REQUIRE(t <= clock_, t, clock_);
  std::size_t taken = 0;
  for (const QueuedJob& job : pending_) {
    if (job.queued_cycle > t) break;
    ++taken;
    JobRecord& record = records_[static_cast<std::size_t>(job.job_id)];
    if (static_cast<int>(queue_.size()) >= config_.max_queue_jobs) {
      record.rejected = true;
      if constexpr (obsv::kTraceCompiled) {
        if (obsv::Recorder* rec = config_.sim.recorder) {
          rec->metrics.add("service.jobs.rejected");
        }
      }
      continue;
    }
    record.admit_cycle = job.queued_cycle;
    queue_.push_back(job);
    if constexpr (obsv::kTraceCompiled) {
      if (obsv::Recorder* rec = config_.sim.recorder) {
        rec->metrics.add("service.jobs.admitted");
        rec->metrics.hwm("service.queue_depth",
                         static_cast<long long>(queue_.size()));
      }
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(taken));
}

void AllreduceService::dispatch_free_lanes() {
  for (std::size_t l = 0; l < lane_state_.size(); ++l) {
    if (lane_state_[l].busy) continue;
    while (!queue_.empty()) {
      const std::size_t seed = pick_seed(queue_, served_elements_);
      const QueuedJob seed_job = queue_[seed];
      const Group& g = groups_.at(seed_job.group);
      // Degenerate jobs need no fabric: a single-member group reduces
      // locally, a zero-element job has nothing to move.
      if (g.members.size() == 1 || seed_job.elements == 0) {
        finish_job(seed_job.job_id, clock_, -1, 1);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(seed));
        continue;
      }
      const auto batch_indices = collect_batch(queue_, seed, config_);
      Batch b;
      b.group = seed_job.group;
      bool any_replay = false;
      for (std::size_t i : batch_indices) {
        const QueuedJob& job = queue_[i];
        b.job_ids.push_back(job.job_id);
        b.job_elements.push_back(job.elements);
        b.total_elements += job.elements;
        any_replay = any_replay || job.replay;
        served_elements_[job.tenant] += job.elements;
        JobRecord& record = records_[static_cast<std::size_t>(job.job_id)];
        if (record.start_cycle < 0) record.start_cycle = clock_;
      }
      const RunCost cost =
          run_cost(static_cast<int>(l), b.total_elements);
      values_correct_ = values_correct_ && cost.correct;
      long long charges = 0;
      if (groups_.at(b.group).needs_replan) {
        charges += config_.replan_cycles;
        groups_.at(b.group).needs_replan = false;
      }
      if (any_replay) charges += config_.replay_backoff_cycles;
      b.start = clock_;
      b.data_start = clock_ + charges;
      b.finish = b.data_start + cost.cycles;
      b.flits = cost.flits;
      ++batches_;
      if (batch_indices.size() > 1) {
        coalesced_jobs_ += static_cast<int>(batch_indices.size());
      }
      if constexpr (obsv::kTraceCompiled) {
        if (obsv::Recorder* rec = config_.sim.recorder) {
          rec->metrics.add("service.batches");
          rec->metrics.add("service.batched_elements", b.total_elements);
        }
      }
      // Remove the batch from the queue, highest index first.
      std::vector<std::size_t> doomed = batch_indices;
      std::sort(doomed.begin(), doomed.end());
      for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
      }
      lane_state_[l].busy = true;
      lane_state_[l].free_at = b.finish;
      lane_state_[l].batch = std::move(b);
      break;  // lane occupied; try the next one
    }
  }
  // A non-empty queue may only remain because every lane is occupied.
  PFAR_ENSURE(queue_.empty() ||
                  std::all_of(lane_state_.begin(), lane_state_.end(),
                              [](const LaneState& s) { return s.busy; }),
              queue_.size(), lane_state_.size());
}

AllreduceService::RunCost AllreduceService::run_cost(int lane,
                                                     long long total_elements) {
  const auto key = std::make_pair(lane, total_elements);
  const auto hit = run_cache_.find(key);
  if (hit != run_cache_.end()) return hit->second;
  simnet::SimConfig run_config = config_.sim;
  // Inner runs are un-instrumented: each starts its private timeline at
  // cycle 0 and would interleave meaninglessly in the service trace.
  run_config.recorder = nullptr;
  const auto result = collectives::run_bucketed_allreduce(
      plan_.topology(), lanes_[static_cast<std::size_t>(lane)].trees,
      {total_elements}, run_config, collectives::BucketStrategy::kFused);
  RunCost cost;
  cost.cycles = result.total_cycles;
  cost.flits = result.total_flits;
  cost.correct = result.correct;
  PFAR_ENSURE(cost.cycles > 0, lane, total_elements);
  run_cache_.emplace(key, cost);
  return cost;
}

void AllreduceService::finish_job(int job_id, long long cycle, int lane,
                                  int batch_jobs) {
  PFAR_REQUIRE(job_id >= 0 &&
                   job_id < static_cast<int>(records_.size()) &&
                   batch_jobs >= 1,
               job_id, records_.size(), batch_jobs);
  JobRecord& record = records_[static_cast<std::size_t>(job_id)];
  record.completed = true;
  record.finish_cycle = cycle;
  record.lane = lane;
  record.batch_jobs = batch_jobs;
  if (record.start_cycle < 0) record.start_cycle = cycle;
  if (record.admit_cycle < 0) record.admit_cycle = record.spec.arrival_cycle;
  if constexpr (obsv::kTraceCompiled) {
    if (obsv::Recorder* rec = config_.sim.recorder) {
      rec->metrics.add("service.jobs.completed");
      rec->metrics.observe(
          "service.sojourn_cycles",
          static_cast<double>(record.finish_cycle - record.admit_cycle));
    }
  }
}

ServiceStats AllreduceService::stats() const {
  ServiceStats s;
  s.submitted = static_cast<int>(records_.size());
  s.batches = batches_;
  s.coalesced_jobs = coalesced_jobs_;
  s.replans = replans_;
  s.replayed_elements = replayed_elements_;
  s.total_flits = total_flits_;
  s.values_correct = values_correct_;
  std::vector<long long> sojourns;
  for (const JobRecord& record : records_) {
    if (record.rejected) {
      ++s.rejected;
      continue;
    }
    if (record.admit_cycle >= 0) ++s.admitted;
    if (!record.completed) continue;
    ++s.completed;
    s.makespan_cycles = std::max(s.makespan_cycles, record.finish_cycle);
    sojourns.push_back(record.finish_cycle - record.admit_cycle);
  }
  if (!sojourns.empty()) {
    std::sort(sojourns.begin(), sojourns.end());
    // Nearest-rank percentiles (ceil(p/100 * n), 1-based).
    const auto rank = [&](int p) {
      const std::size_t r =
          (static_cast<std::size_t>(p) * sojourns.size() + 99) / 100;
      return sojourns[std::max<std::size_t>(r, 1) - 1];
    };
    s.p50_cycles = rank(50);
    s.p99_cycles = rank(99);
  }
  if (s.makespan_cycles > 0) {
    s.jobs_per_kcycle = 1000.0 * static_cast<double>(s.completed) /
                        static_cast<double>(s.makespan_cycles);
    const double capacity =
        static_cast<double>(2 * plan_.topology().num_edges()) *
        static_cast<double>(config_.sim.link_bandwidth) *
        static_cast<double>(s.makespan_cycles);
    s.utilization = static_cast<double>(s.total_flits) / capacity;
  }
  PFAR_ENSURE(s.admitted + s.rejected <= s.submitted && s.completed <= s.admitted,
              s.submitted, s.admitted, s.rejected, s.completed);
  return s;
}

}  // namespace pfar::service
