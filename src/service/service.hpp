#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "service/batching.hpp"
#include "service/job.hpp"
#include "service/scheduler.hpp"

namespace pfar::service {

/// Persistent, event-driven multi-tenant allreduce service over one
/// planned PolarFly fabric (docs/service_layer.md — the ROADMAP's
/// "millions of users" layer).
///
/// The service owns a virtual clock and an admission queue. Link-disjoint
/// tree groups of the plan become scheduling lanes with independent
/// timelines (exact, not approximate: lanes share no physical link, the
/// same property that makes intra-run sharding bit-identical). A
/// tenant-fair scheduler assigns queued jobs to freed lanes; under the
/// batched policy, queued jobs of the same (group, op) coalesce into one
/// fused sub-vector run (collectives::run_bucketed_allreduce). Each
/// dispatched batch's duration and fabric work come from a cycle-accurate
/// (or flow-tier) simulation of exactly that run on exactly that lane's
/// trees, memoized by (lane, fused size).
///
/// Reduction groups have dynamic membership in the HPX-5 allreduce_tree
/// style: join() registers a leaf for future reductions; leave()
/// invalidates in-flight contributions, so a batch of that group running
/// at the event cycle is interrupted — its delivered prefix survives and
/// the remainder re-enqueues as a replay (charged replay_backoff_cycles),
/// mirroring run_resilient_allreduce's replay-exactly-the-lost-chunks
/// path. Either event marks the group for an incremental replan charge
/// (replan_cycles) on its next dispatch.
///
/// The loop is resumable: drain() runs until idle, after which more jobs
/// and membership events may be submitted and drained again; the clock and
/// statistics persist. Everything is integer virtual-cycle arithmetic over
/// deterministic simulator results, so a given submission history yields
/// bit-identical records for every SimConfig::shard_threads value and
/// every wall-clock interleaving.
class AllreduceService {
 public:
  AllreduceService(core::AllreducePlan plan, ServiceConfig config);

  /// Registers a reduction group over `members` (sorted-unique node ids in
  /// the fabric) and returns its id. Group 0 always exists and holds every
  /// node. A single-member group needs no fabric: its jobs complete at
  /// dispatch with zero cycles.
  int create_group(const std::vector<int>& members);

  /// Membership events, effective at `cycle` (clamped to the current
  /// clock, like submissions). join() requires the node not to be a
  /// member yet; leave() requires it to be one and to not empty the group.
  void join(int group, int node, long long cycle);
  void leave(int group, int node, long long cycle);

  /// Submits a job and returns its id (index into records()). Jobs dated
  /// in the past are admitted at the current clock. Admission control
  /// applies at the job's arrival instant, not at submit() time.
  int submit(const JobSpec& spec);

  /// Runs the event loop until no arrivals, membership events, queued
  /// jobs or in-flight batches remain.
  void drain();

  /// Current virtual cycle (the last processed event).
  long long now() const { return clock_; }
  /// Lifecycle record per submitted job, indexed by submit() id.
  const std::vector<JobRecord>& records() const { return records_; }
  /// Cumulative statistics derived from the records.
  ServiceStats stats() const;

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  /// Global tree indices of one lane.
  const std::vector<int>& lane_trees(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)].tree_ids;
  }
  const core::AllreducePlan& plan() const { return plan_; }

 private:
  struct Group {
    std::vector<int> members;  // sorted unique
    bool needs_replan = false;
  };
  struct MemberEvent {
    long long cycle = 0;
    long long seq = 0;
    int group = 0;
    int node = 0;
    bool is_join = true;
  };
  struct Batch {
    std::vector<int> job_ids;
    std::vector<long long> job_elements;
    int group = 0;
    long long total_elements = 0;
    long long start = 0;       // dispatch cycle (charges begin)
    long long data_start = 0;  // streaming begins (after charges)
    long long finish = 0;
    long long flits = 0;
  };
  struct LaneState {
    long long free_at = 0;
    bool busy = false;
    Batch batch;
  };
  struct RunCost {
    long long cycles = 0;
    long long flits = 0;
    bool correct = true;
  };

  void process(long long t);
  void complete_lanes(long long t);
  void apply_member_events(long long t);
  void admit_arrivals(long long t);
  void dispatch_free_lanes();
  void interrupt_group(int group, long long t);
  RunCost run_cost(int lane, long long total_elements);
  void finish_job(int job_id, long long cycle, int lane, int batch_jobs);

  core::AllreducePlan plan_;
  ServiceConfig config_;
  std::vector<Lane> lanes_;
  std::vector<LaneState> lane_state_;
  std::map<int, Group> groups_;
  int next_group_ = 1;

  long long clock_ = 0;
  long long next_seq_ = 0;
  std::vector<JobRecord> records_;
  std::vector<QueuedJob> pending_;        // submitted, arrival in the future
  std::vector<MemberEvent> member_pending_;
  std::vector<QueuedJob> queue_;          // admitted, awaiting dispatch
  std::map<int, long long> served_elements_;  // fairness ledger per tenant
  std::map<std::pair<int, long long>, RunCost> run_cache_;

  // Incrementally maintained slices of ServiceStats.
  int batches_ = 0;
  int coalesced_jobs_ = 0;
  int replans_ = 0;
  long long replayed_elements_ = 0;
  long long total_flits_ = 0;
  bool values_correct_ = true;
};

}  // namespace pfar::service
