#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/config.hpp"

namespace pfar::service {

/// How the service maps concurrently admitted jobs onto the plan's trees
/// (docs/service_layer.md, "Scheduler policies").
enum class SchedulerPolicy {
  /// One job at a time on the full tree set — the one-shot baseline the
  /// throughput bench compares against.
  kSerial,
  /// The plan's link-disjoint tree groups become independent lanes; each
  /// admitted job runs on one lane, so as many jobs proceed concurrently
  /// as there are lanes (exact: lanes share no physical link).
  kPartitioned,
  /// kPartitioned plus coalescing: when a lane frees, queued jobs of the
  /// same (group, op) fuse into one sub-vector run, paying the tree
  /// pipeline fill once for the whole batch
  /// (collectives::run_bucketed_allreduce, BucketStrategy::kFused).
  kPartitionedBatched,
};

/// Canonical CLI/JSON names: "serial", "partitioned", "batched".
const char* to_string(SchedulerPolicy policy);
/// Parses to_string names; throws std::invalid_argument on anything else.
SchedulerPolicy policy_from_string(const std::string& name);

/// Reduction operator tag. The cycle simulator checks integer sums
/// exactly; the other operators time identically (one streaming ALU op per
/// element) but are tracked because only jobs with the SAME operator may
/// coalesce into one fused run.
enum class ReduceOp {
  kSum,
  kMax,
  kMin,
  kProd,
};

/// One allreduce job submitted to the service.
struct JobSpec {
  /// Owning tenant, the unit of fairness accounting (>= 0).
  int tenant = 0;
  /// Reduction group the job runs over (see AllreduceService::create_group;
  /// group 0 is the implicit all-nodes group).
  int group = 0;
  /// Vector elements to reduce (m). Zero-element jobs complete at
  /// admission without touching the fabric.
  long long elements = 0;
  ReduceOp op = ReduceOp::kSum;
  /// Larger = more urgent. Breaks ties within a tenant's queue only —
  /// fairness across tenants dominates priority, so one tenant cannot
  /// starve another with high-priority floods.
  int priority = 0;
  /// Virtual cycle the job arrives at. Submissions dated before the
  /// service's current clock are admitted at the clock instead.
  long long arrival_cycle = 0;
};

/// Lifecycle record of one submitted job (indexed by the id submit()
/// returned).
struct JobRecord {
  JobSpec spec;
  /// Admission control turned the job away (queue full at arrival).
  bool rejected = false;
  /// Every element delivered (possibly across membership-replay attempts).
  bool completed = false;
  /// Cycle the job was admitted to the queue (== clamped arrival).
  long long admit_cycle = -1;
  /// Cycle its first batch started streaming, -1 if never dispatched.
  long long start_cycle = -1;
  /// Cycle its last element was delivered everywhere, -1 if not completed.
  long long finish_cycle = -1;
  /// Lane of the final (successful) dispatch, -1 if never dispatched.
  int lane = -1;
  /// Jobs fused into the same final run, 1 if it ran alone.
  int batch_jobs = 1;
  /// Elements re-run because a membership change invalidated an in-flight
  /// batch (the resilient-replay semantics of docs/service_layer.md).
  long long replayed_elements = 0;
};

/// Service-wide configuration.
struct ServiceConfig {
  SchedulerPolicy policy = SchedulerPolicy::kPartitionedBatched;
  /// Knobs of the underlying per-run simulations (engine choice, link
  /// model, shard_threads...). SimConfig::recorder here is the SERVICE's
  /// observability sink: the service emits job/batch/queue telemetry on
  /// the service virtual timeline; inner simulator runs always execute
  /// un-instrumented (their private timelines all start at cycle 0 and
  /// would interleave meaninglessly in one trace).
  simnet::SimConfig sim;
  /// Admission control: jobs arriving while this many are queued are
  /// rejected (records keep the evidence; the bench plots the drop rate
  /// under overload). Dispatched batches no longer count against it.
  int max_queue_jobs = 1024;
  /// Coalescer limits: a fused batch holds at most this many jobs /
  /// total elements.
  int batch_max_jobs = 16;
  long long batch_max_elements = 1'000'000;
  /// Cycles a group's next dispatch is charged after a membership change
  /// (HPX-5-style add/register-leaves replan of the group's logical
  /// schedule).
  long long replan_cycles = 256;
  /// Cycles charged before re-streaming the surviving remainder of a
  /// batch that a leave() invalidated mid-flight — the backoff of the
  /// run_resilient_allreduce replay path.
  long long replay_backoff_cycles = 256;
};

/// Cumulative service statistics, derived from the records at call time.
struct ServiceStats {
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  int completed = 0;
  /// Fused runs issued (a solo job counts as a batch of one).
  int batches = 0;
  /// Jobs that shared a fused run with at least one other job.
  int coalesced_jobs = 0;
  /// Membership-change replans and the elements they forced to re-run.
  int replans = 0;
  long long replayed_elements = 0;
  /// Virtual cycle of the last delivery (0 when nothing completed).
  long long makespan_cycles = 0;
  /// Completed jobs per 1000 virtual cycles.
  double jobs_per_kcycle = 0.0;
  /// Nearest-rank percentiles of completion latency (finish - admit) over
  /// completed jobs; -1 when nothing completed.
  long long p50_cycles = -1;
  long long p99_cycles = -1;
  /// Fabric work: flits moved across all runs, and the fraction of the
  /// fabric's directed-link-cycle capacity they filled up to the makespan.
  long long total_flits = 0;
  double utilization = 0.0;
  /// AND of values_correct over every simulated run.
  bool values_correct = true;
};

}  // namespace pfar::service
