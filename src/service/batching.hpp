#pragma once

#include <cstddef>
#include <vector>

#include "service/job.hpp"
#include "service/scheduler.hpp"

namespace pfar::service {

/// Coalescer (docs/service_layer.md, "Batching semantics"): starting from
/// the fairness-chosen seed job, collects queued jobs that may share one
/// fused sub-vector run — same reduction group AND same operator — in
/// (queued_cycle, seq) order, until ServiceConfig::batch_max_jobs /
/// batch_max_elements would be exceeded. Returns indices into `queue`,
/// seed first. The seed alone is returned when the policy does not batch.
/// All jobs of a batch finish together at the fused run's completion
/// (BucketStrategy::kFused reaction-latency trade, stated in
/// collectives/bucket_schedule.hpp).
std::vector<std::size_t> collect_batch(const std::vector<QueuedJob>& queue,
                                       std::size_t seed,
                                       const ServiceConfig& config);

}  // namespace pfar::service
