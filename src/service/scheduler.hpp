#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "service/job.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::service {

/// A scheduling lane: a link-disjoint subset of the plan's trees with its
/// own virtual timeline. Lanes share no physical link (they come from
/// simnet::link_disjoint_tree_groups), so a run on one lane neither slows
/// nor is slowed by runs on any other — concurrency across lanes is exact,
/// the same argument that makes intra-run sharding bit-identical.
struct Lane {
  /// Indices into the plan's tree set (ascending).
  std::vector<int> tree_ids;
  /// The subset itself, in tree_ids order.
  std::vector<trees::SpanningTree> trees;
};

/// Partitions the tree set into scheduling lanes. kSerial yields one lane
/// holding every tree; the partitioned policies yield one lane per
/// link-disjoint tree group (edge-disjoint Hamiltonian plans: one lane per
/// tree; low-depth congestion-2 plans typically collapse into one lane, in
/// which case the partitioned policies degrade gracefully to time-sharing).
std::vector<Lane> build_lanes(const graph::Graph& topology,
                              const std::vector<trees::SpanningTree>& trees,
                              SchedulerPolicy policy);

/// One admitted, not-yet-dispatched job in the service queue.
struct QueuedJob {
  int job_id = 0;  // index into the service's record table
  int tenant = 0;
  int group = 0;
  long long elements = 0;
  ReduceOp op = ReduceOp::kSum;
  int priority = 0;
  /// Admission (or replay-creation) cycle and a global submission ordinal;
  /// together the deterministic tie-breaker everywhere.
  long long queued_cycle = 0;
  long long seq = 0;
  /// Re-run of the remainder a membership change invalidated mid-flight.
  bool replay = false;
};

/// Deterministic tenant-fair pick of the next job to dispatch: the tenant
/// with the fewest elements served so far goes first (ties to the smaller
/// tenant id), and within that tenant the highest priority job (ties to
/// the earliest (queued_cycle, seq)). Fairness across tenants dominates
/// priority by design: priority expresses urgency within a tenant's own
/// traffic, not a way to crowd out neighbors. Returns an index into
/// `queue`; requires a non-empty queue.
std::size_t pick_seed(const std::vector<QueuedJob>& queue,
                      const std::map<int, long long>& served_elements);

}  // namespace pfar::service
