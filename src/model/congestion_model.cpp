#include "model/congestion_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/numeric.hpp"

namespace pfar::model {

TreeBandwidths compute_tree_bandwidths(
    const graph::Graph& g, const std::vector<trees::SpanningTree>& trees,
    double link_bandwidth) {
  if (link_bandwidth <= 0.0) {
    throw std::invalid_argument("compute_tree_bandwidths: bandwidth <= 0");
  }
  const int num_edges = g.num_edges();
  const int num_trees = static_cast<int>(trees.size());

  // Per-tree edge-id lists (flat: num_trees rows of n-1 ids) and per-edge
  // congestion C(e).
  const int n = num_trees > 0 ? trees[0].num_vertices() : 0;
  for (const auto& tree : trees) {
    if (tree.num_vertices() != n) {
      // Heterogeneous tree sizes: the flat layout does not apply.
      return compute_tree_bandwidths_reference(g, trees, link_bandwidth);
    }
  }
  if (n > g.num_vertices()) {
    // Tree vertices outside the graph: let the reference path report it.
    return compute_tree_bandwidths_reference(g, trees, link_bandwidth);
  }
  // Per-tree edge ids, resolved without per-edge binary searches: each
  // parent's children list (sorted ascending, SpanningTree CSR) merges
  // against its sorted CSR neighbor row, whose aligned edge-id row then
  // yields the id — O(children + degree) per parent. Row order differs
  // from the reference's per-vertex order, but every edge is touched at
  // most once per tree with the same share, so the float results are
  // unchanged.
  std::vector<int> tree_edges(static_cast<std::size_t>(num_trees) *
                              static_cast<std::size_t>((n > 0 ? n - 1 : 0)));
  std::vector<int> congestion(static_cast<std::size_t>(num_edges), 0);
  for (int t = 0; t < num_trees; ++t) {
    const auto& tree = trees[static_cast<std::size_t>(t)];
    int* row = tree_edges.data() + static_cast<std::size_t>(t) * static_cast<std::size_t>((n - 1));
    int slot = 0;
    for (int u = 0; u < n; ++u) {
      const auto kids = tree.children(u);
      if (kids.empty()) continue;
      const auto nbrs = g.neighbors(u);
      const auto eids = g.neighbor_edge_ids(u);
      std::size_t j = 0;
      for (int c : kids) {
        while (j < nbrs.size() && nbrs[j] < c) ++j;
        if (j == nbrs.size() || nbrs[j] != c) {
          throw std::invalid_argument(
              "compute_tree_bandwidths: tree edge not in graph");
        }
        const int id = eids[j];
        row[slot++] = id;
        ++congestion[static_cast<std::size_t>(id)];
      }
    }
  }

  // Edge -> tree incidence in CSR form (rows ascending in tree id), so a
  // bottleneck edge reaches exactly the trees through it.
  std::vector<int> inc_offsets(static_cast<std::size_t>(num_edges + 1), 0);
  for (int id : tree_edges) ++inc_offsets[static_cast<std::size_t>(id + 1)];
  for (int e = 0; e < num_edges; ++e) inc_offsets[static_cast<std::size_t>(e + 1)] += inc_offsets[static_cast<std::size_t>(e)];
  std::vector<int> incidence(tree_edges.size());
  {
    std::vector<int> cursor(inc_offsets.begin(), inc_offsets.end() - 1);
    for (int t = 0; t < num_trees; ++t) {
      const int* row = tree_edges.data() + static_cast<std::size_t>(t) * static_cast<std::size_t>((n - 1));
      for (int s = 0; s < n - 1; ++s) incidence[static_cast<std::size_t>(cursor[static_cast<std::size_t>(row[s])]++)] = t;
    }
  }

  std::vector<char> tree_done(static_cast<std::size_t>(num_trees), 0);

  // Argmin segment tree over the cached ratios L(e)/C(e). A bottleneck
  // round touches only the edges of the trees it finalizes, so each round
  // is O(k * n * log E) for k finalized trees instead of a full O(E)
  // rescan. Descending left-first on ties returns the lowest edge id
  // among the minima — exactly what the reference's ascending strict-<
  // scan keeps. Ratios are cached from the identical division the
  // reference performs, so the selected bottlenecks (and thus every
  // share) are bit-identical. Per-edge state (L(e), C(e), and the cached
  // ratio leaf) shares one cache line; the solve loop is memory-bound, so
  // an edge touch costing one line instead of three is the difference.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct EdgeState {
    double remaining;
    double ratio;
    int congestion;
  };
  std::vector<EdgeState> state(static_cast<std::size_t>(num_edges));
  for (int e = 0; e < num_edges; ++e) {
    state[static_cast<std::size_t>(e)].remaining = link_bandwidth;
    state[static_cast<std::size_t>(e)].congestion = congestion[static_cast<std::size_t>(e)];
    state[static_cast<std::size_t>(e)].ratio =
        congestion[static_cast<std::size_t>(e)] > 0 ? link_bandwidth / congestion[static_cast<std::size_t>(e)] : kInf;
  }
  int leaves = 1;
  while (leaves < num_edges) leaves <<= 1;
  // Internal nodes only; node c's value is inner[c] for c < leaves and
  // state[c - leaves].ratio (kInf past num_edges) at the leaf level.
  std::vector<double> inner(static_cast<std::size_t>(leaves), kInf);
  const auto val = [&](int c) {
    if (c < leaves) return inner[static_cast<std::size_t>(c)];
    const int e = c - leaves;
    return e < num_edges ? state[static_cast<std::size_t>(e)].ratio : kInf;
  };
  for (int i = leaves - 1; i >= 1; --i) {
    inner[static_cast<std::size_t>(i)] = std::min(val(2 * i), val(2 * i + 1));
  }
  const auto update = [&](int e) {
    const double nv =
        state[static_cast<std::size_t>(e)].congestion > 0 ? state[static_cast<std::size_t>(e)].remaining / state[static_cast<std::size_t>(e)].congestion
                                : kInf;
    if (state[static_cast<std::size_t>(e)].ratio == nv) return;
    state[static_cast<std::size_t>(e)].ratio = nv;
    // Climb only while the subtree minimum actually changes — in the
    // paper's near-uniform tree sets most updates stop at the first level.
    for (int i = (leaves + e) / 2; i >= 1; i /= 2) {
      const double m = std::min(val(2 * i), val(2 * i + 1));
      if (inner[static_cast<std::size_t>(i)] == m) break;
      inner[static_cast<std::size_t>(i)] = m;
    }
  };

  TreeBandwidths out;
  out.per_tree.assign(static_cast<std::size_t>(num_trees), 0.0);

  int active = num_trees;
  while (active > 0) {
    if (val(1) == kInf) {
      throw std::logic_error(
          "compute_tree_bandwidths: active trees but no congested edge");
    }
    int i = 1;
    while (i < leaves) i = val(2 * i) <= val(2 * i + 1) ? 2 * i : 2 * i + 1;
    const int e_min = i - leaves;
    const double share = state[static_cast<std::size_t>(e_min)].remaining / state[static_cast<std::size_t>(e_min)].congestion;
    for (int k = inc_offsets[static_cast<std::size_t>(e_min)]; k < inc_offsets[static_cast<std::size_t>(e_min + 1)]; ++k) {
      const int t = incidence[static_cast<std::size_t>(k)];
      if (tree_done[static_cast<std::size_t>(t)]) continue;
      out.per_tree[static_cast<std::size_t>(t)] = share;
      const int* row = tree_edges.data() + static_cast<std::size_t>(t) * static_cast<std::size_t>((n - 1));
      for (int s = 0; s < n - 1; ++s) {
        const int e = row[s];
        state[static_cast<std::size_t>(e)].remaining = std::max(0.0, state[static_cast<std::size_t>(e)].remaining - share);
        --state[static_cast<std::size_t>(e)].congestion;
        update(e);
      }
      tree_done[static_cast<std::size_t>(t)] = 1;
      --active;
    }
    state[static_cast<std::size_t>(e_min)].congestion = 0;  // removed from the residual network
    update(e_min);
  }

  for (double b : out.per_tree) out.aggregate += b;
  return out;
}

TreeBandwidths compute_tree_bandwidths_reference(
    const graph::Graph& g, const std::vector<trees::SpanningTree>& trees,
    double link_bandwidth) {
  if (link_bandwidth <= 0.0) {
    throw std::invalid_argument("compute_tree_bandwidths: bandwidth <= 0");
  }
  const int num_edges = g.num_edges();
  const int num_trees = static_cast<int>(trees.size());

  // Per-tree edge-id lists and per-edge congestion C(e).
  std::vector<std::vector<int>> tree_edges(static_cast<std::size_t>(num_trees));
  std::vector<int> congestion(static_cast<std::size_t>(num_edges), 0);
  for (int t = 0; t < num_trees; ++t) {
    for (const auto& e : trees[static_cast<std::size_t>(t)].edges()) {
      const int id = g.edge_id(e.u, e.v);
      if (id < 0) {
        throw std::invalid_argument(
            "compute_tree_bandwidths: tree edge not in graph");
      }
      tree_edges[static_cast<std::size_t>(t)].push_back(id);
      ++congestion[static_cast<std::size_t>(id)];
    }
  }

  std::vector<double> remaining(static_cast<std::size_t>(num_edges), link_bandwidth);  // L(e)
  std::vector<char> edge_removed(static_cast<std::size_t>(num_edges), 0);
  std::vector<char> tree_done(static_cast<std::size_t>(num_trees), 0);

  TreeBandwidths out;
  out.per_tree.assign(static_cast<std::size_t>(num_trees), 0.0);

  int active = num_trees;
  while (active > 0) {
    // Bottleneck edge: argmin L(e)/C(e) among edges still carrying trees.
    int e_min = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int e = 0; e < num_edges; ++e) {
      if (edge_removed[static_cast<std::size_t>(e)] || congestion[static_cast<std::size_t>(e)] == 0) continue;
      const double ratio = remaining[static_cast<std::size_t>(e)] / congestion[static_cast<std::size_t>(e)];
      if (ratio < best) {
        best = ratio;
        e_min = e;
      }
    }
    if (e_min < 0) {
      throw std::logic_error(
          "compute_tree_bandwidths: active trees but no congested edge");
    }
    const double share = remaining[static_cast<std::size_t>(e_min)] / congestion[static_cast<std::size_t>(e_min)];
    for (int t = 0; t < num_trees; ++t) {
      if (tree_done[static_cast<std::size_t>(t)]) continue;
      const bool contains =
          std::find(tree_edges[static_cast<std::size_t>(t)].begin(), tree_edges[static_cast<std::size_t>(t)].end(), e_min) !=
          tree_edges[static_cast<std::size_t>(t)].end();
      if (!contains) continue;
      out.per_tree[static_cast<std::size_t>(t)] = share;
      for (int e : tree_edges[static_cast<std::size_t>(t)]) {
        remaining[static_cast<std::size_t>(e)] = std::max(0.0, remaining[static_cast<std::size_t>(e)] - share);
        --congestion[static_cast<std::size_t>(e)];
      }
      tree_done[static_cast<std::size_t>(t)] = 1;
      --active;
    }
    edge_removed[static_cast<std::size_t>(e_min)] = 1;
  }

  for (double b : out.per_tree) out.aggregate += b;
  return out;
}

TreeBandwidths compute_tree_bandwidths_capacitated(
    const graph::Graph& g, const std::vector<trees::SpanningTree>& trees,
    double link_bandwidth, const std::vector<double>& capacity_scale) {
  if (link_bandwidth <= 0.0) {
    throw std::invalid_argument("compute_tree_bandwidths: bandwidth <= 0");
  }
  const int num_edges = g.num_edges();
  const int num_trees = static_cast<int>(trees.size());
  if (capacity_scale.size() != static_cast<std::size_t>(num_edges)) {
    throw std::invalid_argument(
        "compute_tree_bandwidths_capacitated: capacity_scale size != edges");
  }
  for (double s : capacity_scale) {
    if (!(s > 0.0) || s > 1.0) {
      throw std::invalid_argument(
          "compute_tree_bandwidths_capacitated: scale outside (0, 1]");
    }
  }

  // Identical to compute_tree_bandwidths_reference except for the initial
  // per-edge budget: L(e) = link_bandwidth * scale[e]. With all scales 1.0
  // the multiplication is exact and the runs are bit-identical (pinned by
  // tests/adapt_test.cpp).
  std::vector<std::vector<int>> tree_edges(static_cast<std::size_t>(num_trees));
  std::vector<int> congestion(static_cast<std::size_t>(num_edges), 0);
  for (int t = 0; t < num_trees; ++t) {
    for (const auto& e : trees[static_cast<std::size_t>(t)].edges()) {
      const int id = g.edge_id(e.u, e.v);
      if (id < 0) {
        throw std::invalid_argument(
            "compute_tree_bandwidths: tree edge not in graph");
      }
      tree_edges[static_cast<std::size_t>(t)].push_back(id);
      ++congestion[static_cast<std::size_t>(id)];
    }
  }

  std::vector<double> remaining(static_cast<std::size_t>(num_edges));
  for (int e = 0; e < num_edges; ++e) {
    remaining[static_cast<std::size_t>(e)] =
        link_bandwidth * capacity_scale[static_cast<std::size_t>(e)];
  }
  std::vector<char> edge_removed(static_cast<std::size_t>(num_edges), 0);
  std::vector<char> tree_done(static_cast<std::size_t>(num_trees), 0);

  TreeBandwidths out;
  out.per_tree.assign(static_cast<std::size_t>(num_trees), 0.0);

  int active = num_trees;
  while (active > 0) {
    int e_min = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int e = 0; e < num_edges; ++e) {
      if (edge_removed[static_cast<std::size_t>(e)] || congestion[static_cast<std::size_t>(e)] == 0) continue;
      const double ratio = remaining[static_cast<std::size_t>(e)] / congestion[static_cast<std::size_t>(e)];
      if (ratio < best) {
        best = ratio;
        e_min = e;
      }
    }
    if (e_min < 0) {
      throw std::logic_error(
          "compute_tree_bandwidths: active trees but no congested edge");
    }
    const double share = remaining[static_cast<std::size_t>(e_min)] / congestion[static_cast<std::size_t>(e_min)];
    for (int t = 0; t < num_trees; ++t) {
      if (tree_done[static_cast<std::size_t>(t)]) continue;
      const bool contains =
          std::find(tree_edges[static_cast<std::size_t>(t)].begin(), tree_edges[static_cast<std::size_t>(t)].end(), e_min) !=
          tree_edges[static_cast<std::size_t>(t)].end();
      if (!contains) continue;
      out.per_tree[static_cast<std::size_t>(t)] = share;
      for (int e : tree_edges[static_cast<std::size_t>(t)]) {
        remaining[static_cast<std::size_t>(e)] = std::max(0.0, remaining[static_cast<std::size_t>(e)] - share);
        --congestion[static_cast<std::size_t>(e)];
      }
      tree_done[static_cast<std::size_t>(t)] = 1;
      --active;
    }
    edge_removed[static_cast<std::size_t>(e_min)] = 1;
  }

  for (double b : out.per_tree) out.aggregate += b;
  return out;
}

std::vector<long long> optimal_split(long long m, const TreeBandwidths& bw) {
  return util::apportion(m, bw.per_tree);
}

double optimal_polarfly_bandwidth(int q, double link_bandwidth) {
  return (q + 1) * link_bandwidth / 2.0;
}

double allreduce_rate_upper_bound(const graph::Graph& g,
                                  double link_bandwidth) {
  const int n = g.num_vertices();
  if (n < 2) {
    throw std::invalid_argument(
        "allreduce_rate_upper_bound: need at least 2 vertices");
  }
  if (link_bandwidth <= 0.0) {
    throw std::invalid_argument(
        "allreduce_rate_upper_bound: non-positive bandwidth");
  }
  int deg_min = std::numeric_limits<int>::max();
  for (int v = 0; v < n; ++v) {
    deg_min = std::min(deg_min, g.degree(v));
  }
  if (deg_min <= 0) {
    throw std::invalid_argument(
        "allreduce_rate_upper_bound: graph has an isolated vertex");
  }
  const double spanning =
      static_cast<double>(g.num_edges()) / static_cast<double>(n - 1);
  return link_bandwidth * std::min(static_cast<double>(deg_min), spanning);
}

double predicted_allreduce_time(long long m, double latency,
                                const TreeBandwidths& bw) {
  if (bw.aggregate <= 0.0) {
    throw std::invalid_argument("predicted_allreduce_time: zero bandwidth");
  }
  return latency + static_cast<double>(m) / bw.aggregate;
}

}  // namespace pfar::model
