#include "model/congestion_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/numeric.hpp"

namespace pfar::model {

TreeBandwidths compute_tree_bandwidths(
    const graph::Graph& g, const std::vector<trees::SpanningTree>& trees,
    double link_bandwidth) {
  if (link_bandwidth <= 0.0) {
    throw std::invalid_argument("compute_tree_bandwidths: bandwidth <= 0");
  }
  const int num_edges = g.num_edges();
  const int num_trees = static_cast<int>(trees.size());

  // Per-tree edge-id lists and per-edge congestion C(e).
  std::vector<std::vector<int>> tree_edges(num_trees);
  std::vector<int> congestion(num_edges, 0);
  for (int t = 0; t < num_trees; ++t) {
    for (const auto& e : trees[t].edges()) {
      const int id = g.edge_id(e.u, e.v);
      if (id < 0) {
        throw std::invalid_argument(
            "compute_tree_bandwidths: tree edge not in graph");
      }
      tree_edges[t].push_back(id);
      ++congestion[id];
    }
  }

  std::vector<double> remaining(num_edges, link_bandwidth);  // L(e)
  std::vector<char> edge_removed(num_edges, 0);
  std::vector<char> tree_done(num_trees, 0);

  TreeBandwidths out;
  out.per_tree.assign(num_trees, 0.0);

  int active = num_trees;
  while (active > 0) {
    // Bottleneck edge: argmin L(e)/C(e) among edges still carrying trees.
    int e_min = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int e = 0; e < num_edges; ++e) {
      if (edge_removed[e] || congestion[e] == 0) continue;
      const double ratio = remaining[e] / congestion[e];
      if (ratio < best) {
        best = ratio;
        e_min = e;
      }
    }
    if (e_min < 0) {
      throw std::logic_error(
          "compute_tree_bandwidths: active trees but no congested edge");
    }
    const double share = remaining[e_min] / congestion[e_min];
    for (int t = 0; t < num_trees; ++t) {
      if (tree_done[t]) continue;
      const bool contains =
          std::find(tree_edges[t].begin(), tree_edges[t].end(), e_min) !=
          tree_edges[t].end();
      if (!contains) continue;
      out.per_tree[t] = share;
      for (int e : tree_edges[t]) {
        remaining[e] = std::max(0.0, remaining[e] - share);
        --congestion[e];
      }
      tree_done[t] = 1;
      --active;
    }
    edge_removed[e_min] = 1;
  }

  for (double b : out.per_tree) out.aggregate += b;
  return out;
}

std::vector<long long> optimal_split(long long m, const TreeBandwidths& bw) {
  return util::apportion(m, bw.per_tree);
}

double optimal_polarfly_bandwidth(int q, double link_bandwidth) {
  return (q + 1) * link_bandwidth / 2.0;
}

double predicted_allreduce_time(long long m, double latency,
                                const TreeBandwidths& bw) {
  if (bw.aggregate <= 0.0) {
    throw std::invalid_argument("predicted_allreduce_time: zero bandwidth");
  }
  return latency + static_cast<double>(m) / bw.aggregate;
}

}  // namespace pfar::model
