#include "model/alpha_beta.hpp"

#include <cmath>
#include <stdexcept>

namespace pfar::model {
namespace {

int floor_log2(int p) {
  int l = 0;
  while ((1 << (l + 1)) <= p) ++l;
  return l;
}

bool is_pow2(int p) { return (p & (p - 1)) == 0; }

void check(int p, long long m) {
  if (p < 1 || m < 0) {
    throw std::invalid_argument("alpha-beta model: bad p or m");
  }
}

}  // namespace

double ring_allreduce_time(int p, long long m, const AlphaBeta& c) {
  check(p, m);
  if (p == 1) return 0.0;
  const double md = static_cast<double>(m);
  return 2.0 * (p - 1) * c.alpha + 2.0 * md * (p - 1) / p * c.beta;
}

double recursive_doubling_time(int p, long long m, const AlphaBeta& c) {
  check(p, m);
  if (p == 1) return 0.0;
  const double md = static_cast<double>(m);
  const int lg = floor_log2(p);
  double t = lg * (c.alpha + md * c.beta);
  if (!is_pow2(p)) t += 2.0 * (c.alpha + md * c.beta);  // fold in + out
  return t;
}

double recursive_halving_doubling_time(int p, long long m,
                                       const AlphaBeta& c) {
  check(p, m);
  if (p == 1) return 0.0;
  const double md = static_cast<double>(m);
  const int lg = floor_log2(p);
  const int p2 = 1 << lg;
  double t = 2.0 * lg * c.alpha + 2.0 * md * (p2 - 1) / p2 * c.beta;
  if (!is_pow2(p)) t += 2.0 * (c.alpha + md * c.beta);
  return t;
}

double single_tree_innetwork_time(int depth, long long m, const AlphaBeta& c) {
  if (depth < 0 || m < 0) {
    throw std::invalid_argument("single_tree_innetwork_time: bad args");
  }
  return 2.0 * depth * c.alpha + static_cast<double>(m) * c.beta;
}

double multi_tree_innetwork_time(int depth, long long m, double alpha,
                                 double aggregate_bandwidth) {
  if (depth < 0 || m < 0 || aggregate_bandwidth <= 0.0) {
    throw std::invalid_argument("multi_tree_innetwork_time: bad args");
  }
  return 2.0 * depth * alpha + static_cast<double>(m) / aggregate_bandwidth;
}

}  // namespace pfar::model
