#pragma once

namespace pfar::model {

/// Classic alpha-beta (latency-bandwidth) cost models for the host-based
/// Allreduce algorithms the paper positions against (Section 4.2) plus the
/// in-network variants. `alpha` is per-message latency, `beta` time per
/// vector element, `p` process count, `m` vector elements. Formulas follow
/// Thakur/Rabenseifner; the non-power-of-two penalty is modeled as the
/// standard extra full-vector exchange.
struct AlphaBeta {
  double alpha = 1.0;
  double beta = 1.0;
};

/// Ring Allreduce (reduce-scatter + all-gather): 2(p-1) messages of m/p.
double ring_allreduce_time(int p, long long m, const AlphaBeta& c);

/// Recursive doubling on full vectors: ceil(log2 p) rounds (+ fold-in /
/// fold-out for non-powers of two).
double recursive_doubling_time(int p, long long m, const AlphaBeta& c);

/// Rabenseifner recursive halving + doubling: 2 log2(p) alpha +
/// 2 m beta (p-1)/p (+ non-power-of-two penalty).
double recursive_halving_doubling_time(int p, long long m, const AlphaBeta& c);

/// Single-tree in-network Allreduce: pipelined, so m*beta transfer plus a
/// 2*depth hop latency (reduce up + broadcast down).
double single_tree_innetwork_time(int depth, long long m, const AlphaBeta& c);

/// Multi-tree in-network Allreduce with aggregate bandwidth
/// `aggregate_bandwidth` in elements per unit time (Theorem 5.1):
/// t = 2*depth*alpha + m / sum(B_i).
double multi_tree_innetwork_time(int depth, long long m, double alpha,
                                 double aggregate_bandwidth);

}  // namespace pfar::model
