#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::model {

/// Output of Algorithm 1 (Performance under Congestion, Section 5.2).
struct TreeBandwidths {
  /// B_i for each input tree, in elements (or bytes) per unit time.
  std::vector<double> per_tree;
  /// Sum of B_i — the maximum achievable Allreduce bandwidth of the
  /// embedding (Theorem 5.1).
  double aggregate = 0.0;
};

/// Runs Algorithm 1 on a set of embedded Allreduce trees. `link_bandwidth`
/// is the physical bandwidth B of every link. The bottleneck edge (lowest
/// available-bandwidth/congestion ratio) fixes the bandwidth of every tree
/// through it; the algorithm then iterates on the residual network. The
/// result is independent of tie-breaking among bottleneck edges (asserted
/// by tests).
///
/// Fast path: edge -> tree incidence is prebuilt in CSR form and the
/// bottleneck scan walks only still-congested edges, so each round costs
/// O(live edges) instead of O(edges + trees * n). Bit-identical to
/// compute_tree_bandwidths_reference (same float-op order and bottleneck
/// tie-breaking), pinned by tests.
TreeBandwidths compute_tree_bandwidths(const graph::Graph& g,
                                       const std::vector<trees::SpanningTree>& trees,
                                       double link_bandwidth);

/// The seed implementation of Algorithm 1, kept verbatim as the reference
/// the fast path is verified against (per-edge linear scans, per-tree
/// membership via std::find).
TreeBandwidths compute_tree_bandwidths_reference(
    const graph::Graph& g, const std::vector<trees::SpanningTree>& trees,
    double link_bandwidth);

/// Algorithm 1 over a *capacitated* network: edge e starts from
/// `link_bandwidth * capacity_scale[e]` (indexed by graph edge id, every
/// entry in (0, 1]) instead of the uniform link_bandwidth. This is the
/// congestion-aware generalization the adaptive controller runs — the
/// scale vector encodes how much of each link background traffic has
/// already claimed (src/adapt/controller.hpp) — and it degenerates to
/// compute_tree_bandwidths_reference bit-for-bit when every scale is 1.0
/// (same bottleneck tie-breaking, same float-op order).
TreeBandwidths compute_tree_bandwidths_capacitated(
    const graph::Graph& g, const std::vector<trees::SpanningTree>& trees,
    double link_bandwidth, const std::vector<double>& capacity_scale);

/// Theorem 5.1 optimal sub-vector distribution: m_i = m * B_i / sum(B),
/// rounded to integers summing to m by largest remainder.
std::vector<long long> optimal_split(long long m, const TreeBandwidths& bw);

/// Corollary 7.1: the optimal bidirectional in-network Allreduce bandwidth
/// of PolarFly ER_q is (q + 1) * B / 2.
double optimal_polarfly_bandwidth(int q, double link_bandwidth);

/// Topology-generic Allreduce computation-rate upper bound in the style of
/// Zhou & Sun ("On the Computation Rate of All-Reduce", PAPERS.md), for
/// link-uniform bidirectional bandwidth B. Two cut arguments, the minimum
/// of which bounds any in-network aggregation schedule:
///  * per-node cut: node v's own operand stream must leave v at full rate
///    and the reduced result must re-enter it, so the rate cannot exceed
///    deg(v) * B for any v — in particular min-degree * B;
///  * spanning-flow: every reduced-and-broadcast element crosses at least
///    N - 1 directed links on the way up and N - 1 on the way down, while
///    the fabric moves at most 2 * E * B flits per cycle, giving
///    E * B / (N - 1).
/// On PolarFly the second term is (q+1)/2 * N/(N-1) * B — Corollary 7.1's
/// (q+1)B/2 asymptotically — and it upper-bounds Algorithm 1's aggregate
/// on every topology (pfar_audit checks this). Reported next to
/// alg1_bw/sim_bw for flow-tier runs as the optimality yardstick.
double allreduce_rate_upper_bound(const graph::Graph& g,
                                  double link_bandwidth);

/// Theorem 5.1 execution-time model: t = L + m / sum(B_i), with per-tree
/// latency L (a function of tree depth handled by the caller).
double predicted_allreduce_time(long long m, double latency,
                                const TreeBandwidths& bw);

}  // namespace pfar::model
