#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::model {

/// Output of Algorithm 1 (Performance under Congestion, Section 5.2).
struct TreeBandwidths {
  /// B_i for each input tree, in elements (or bytes) per unit time.
  std::vector<double> per_tree;
  /// Sum of B_i — the maximum achievable Allreduce bandwidth of the
  /// embedding (Theorem 5.1).
  double aggregate = 0.0;
};

/// Runs Algorithm 1 on a set of embedded Allreduce trees. `link_bandwidth`
/// is the physical bandwidth B of every link. The bottleneck edge (lowest
/// available-bandwidth/congestion ratio) fixes the bandwidth of every tree
/// through it; the algorithm then iterates on the residual network. The
/// result is independent of tie-breaking among bottleneck edges (asserted
/// by tests).
///
/// Fast path: edge -> tree incidence is prebuilt in CSR form and the
/// bottleneck scan walks only still-congested edges, so each round costs
/// O(live edges) instead of O(edges + trees * n). Bit-identical to
/// compute_tree_bandwidths_reference (same float-op order and bottleneck
/// tie-breaking), pinned by tests.
TreeBandwidths compute_tree_bandwidths(const graph::Graph& g,
                                       const std::vector<trees::SpanningTree>& trees,
                                       double link_bandwidth);

/// The seed implementation of Algorithm 1, kept verbatim as the reference
/// the fast path is verified against (per-edge linear scans, per-tree
/// membership via std::find).
TreeBandwidths compute_tree_bandwidths_reference(
    const graph::Graph& g, const std::vector<trees::SpanningTree>& trees,
    double link_bandwidth);

/// Theorem 5.1 optimal sub-vector distribution: m_i = m * B_i / sum(B),
/// rounded to integers summing to m by largest remainder.
std::vector<long long> optimal_split(long long m, const TreeBandwidths& bw);

/// Corollary 7.1: the optimal bidirectional in-network Allreduce bandwidth
/// of PolarFly ER_q is (q + 1) * B / 2.
double optimal_polarfly_bandwidth(int q, double link_bandwidth);

/// Theorem 5.1 execution-time model: t = L + m / sum(B_i), with per-tree
/// latency L (a function of tree depth handled by the caller).
double predicted_allreduce_time(long long m, double latency,
                                const TreeBandwidths& bw);

}  // namespace pfar::model
