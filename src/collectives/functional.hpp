#pragma once

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "model/congestion_model.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::collectives {

/// Functional (non-timed) execution of the multi-tree Allreduce dataflow:
/// given one input vector per node, computes what the in-network offload
/// computes — per-tree sub-vectors reduced up each tree in child order and
/// broadcast back — and returns each node's output vector.
///
/// This is the library's user-facing collective API: it exercises exactly
/// the reduction association the hardware would produce (leaf-to-root,
/// children combined in port order at every router), which matters for
/// non-commutative or floating-point operators. Use AllreducePlan::simulate
/// for timing; use this to process real data.
///
/// T must be a value type; `op` must be associative (Section 4.2's
/// requirement). The vector is split across trees proportionally to the
/// Algorithm 1 bandwidths, mirroring the paper's optimal distribution.
template <typename T>
class FunctionalAllreduce {
 public:
  using Op = std::function<T(const T&, const T&)>;

  FunctionalAllreduce(const graph::Graph& topology,
                      std::vector<trees::SpanningTree> forest, Op op)
      : topology_(&topology), forest_(std::move(forest)), op_(std::move(op)) {
    if (forest_.empty()) {
      throw std::invalid_argument("FunctionalAllreduce: no trees");
    }
    for (const auto& t : forest_) {
      if (!t.is_spanning_tree_of(topology)) {
        throw std::invalid_argument(
            "FunctionalAllreduce: tree does not span the topology");
      }
    }
    bandwidths_ = model::compute_tree_bandwidths(topology, forest_, 1.0);
  }

  /// inputs[v] is node v's m-element vector; returns the m-element
  /// reduction, identical at every node (so returned once).
  std::vector<T> run(const std::vector<std::vector<T>>& inputs) const {
    const int n = topology_->num_vertices();
    if (static_cast<int>(inputs.size()) != n) {
      throw std::invalid_argument("FunctionalAllreduce: need one vector per node");
    }
    const long long m = static_cast<long long>(inputs[0].size());
    for (const auto& vec : inputs) {
      if (static_cast<long long>(vec.size()) != m) {
        throw std::invalid_argument("FunctionalAllreduce: ragged inputs");
      }
    }
    if (m == 0) return {};
    const auto split = model::optimal_split(m, bandwidths_);

    std::vector<T> out(inputs[0]);  // sized m; overwritten below
    long long offset = 0;
    std::vector<T> acc(static_cast<std::size_t>(n), inputs[0][0]);
    for (std::size_t t = 0; t < forest_.size(); ++t) {
      const auto order = bottom_up_order(forest_[t]);
      for (long long k = offset; k < offset + split[t]; ++k) {
        // Reduction exactly as the router dataflow associates it: node
        // value first, then children in port order, each child's subtree
        // already reduced. Iterative (Hamiltonian trees are ~N/2 deep).
        for (int v = 0; v < n; ++v) acc[static_cast<std::size_t>(v)] = inputs[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)];
        for (int v : order) {
          for (int c : forest_[t].children(v)) acc[static_cast<std::size_t>(v)] = op_(acc[static_cast<std::size_t>(v)], acc[static_cast<std::size_t>(c)]);
        }
        out[static_cast<std::size_t>(k)] = acc[static_cast<std::size_t>(forest_[t].root())];
      }
      offset += split[t];
    }
    return out;
  }

  const model::TreeBandwidths& bandwidths() const { return bandwidths_; }

 private:
  // Vertices ordered so every child precedes its parent (reversed BFS).
  static std::vector<int> bottom_up_order(const trees::SpanningTree& tree) {
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(tree.num_vertices()));
    order.push_back(tree.root());
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (int c : tree.children(order[i])) order.push_back(c);
    }
    std::reverse(order.begin(), order.end());
    return order;
  }

  const graph::Graph* topology_;
  std::vector<trees::SpanningTree> forest_;
  Op op_;
  model::TreeBandwidths bandwidths_;
};

}  // namespace pfar::collectives
