#pragma once

#include <cstdint>
#include <vector>

#include "collectives/routed.hpp"

namespace pfar::collectives {

/// Host-based Allreduce baselines (Section 4.2): the algorithms the paper
/// contrasts in-network computing against. Each algorithm is expressed
/// once over an abstract transport; a recording transport yields the
/// communication schedule (for routed alpha-beta costing) and an executing
/// transport moves real data (for exact correctness verification).
enum class HostAlgorithm {
  kRing,               // bandwidth-optimal reduce-scatter + all-gather ring
  kRecursiveDoubling,  // latency-optimal full-vector exchanges
  kHalvingDoubling,    // Rabenseifner reduce-scatter + all-gather
};

/// Transport abstraction: `transfer` moves the current contents of
/// rank src's vector range [lo, hi) to rank dst (accumulating when
/// `reduce`, overwriting otherwise); `next_round` marks a synchronization
/// boundary. Ranks are logical 0..p-1.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void transfer(int src_rank, int dst_rank, long long lo,
                        long long hi, bool reduce) = 0;
  virtual void next_round() = 0;
};

/// Runs the chosen algorithm's communication pattern for p ranks and an
/// m-element vector over the given transport.
void run_host_allreduce(HostAlgorithm algo, int p, long long m,
                        Transport& transport);

/// Records the schedule, mapping logical ranks to physical nodes via
/// `placement` (rank r lives on node placement[r]).
class ScheduleRecorder : public Transport {
 public:
  explicit ScheduleRecorder(std::vector<int> placement);
  void transfer(int src_rank, int dst_rank, long long lo, long long hi,
                bool reduce) override;
  void next_round() override;
  /// Finalized schedule (trailing empty rounds dropped).
  std::vector<Round> take_schedule();

 private:
  std::vector<int> placement_;
  std::vector<Round> rounds_;
};

/// Executes the data movement on real int64 vectors and verifies that
/// every rank ends with the exact elementwise sum. Intended for small m.
class DataExecutor : public Transport {
 public:
  DataExecutor(int p, long long m);
  void transfer(int src_rank, int dst_rank, long long lo, long long hi,
                bool reduce) override;
  /// Applies all transfers staged this round (synchronous-round semantics:
  /// every transfer reads pre-round source state).
  void next_round() override;
  /// True iff all p vectors equal the expected reduction.
  bool verify() const;

 private:
  struct Pending {
    int dst = 0;
    long long lo = 0;
    bool reduce = false;
    std::vector<std::int64_t> payload;
  };

  int p_;
  long long m_;
  std::vector<std::vector<std::int64_t>> data_;
  std::vector<Pending> pending_;
};

/// Convenience: schedule + routed cost + (small-m) correctness in one call.
struct HostAllreduceResult {
  ScheduleCost cost;
  bool correct = false;
};

HostAllreduceResult run_host_baseline(HostAlgorithm algo,
                                      const RoutedNetwork& net,
                                      const std::vector<int>& placement,
                                      long long m, double alpha, double beta,
                                      long long verify_m = 64);

}  // namespace pfar::collectives
