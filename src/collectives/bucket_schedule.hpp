#pragma once

#include <vector>

#include "collectives/innetwork.hpp"

namespace pfar::collectives {

/// Bucketed-gradient execution strategies. Deep-learning frameworks issue
/// gradients as a sequence of fused buckets; how the buckets map onto the
/// in-network trees changes the pipeline behaviour:
///  * kSerialized: one full Allreduce per bucket, back to back. Each
///    bucket pays the full pipeline fill/drain of the tree set.
///  * kFused: concatenate all buckets into one stream per tree — the
///    hardware pipeline never drains between buckets, so fills are paid
///    once. (Results become available only at the end; frameworks trade
///    this against reaction latency.)
enum class BucketStrategy {
  kSerialized,
  kFused,
};

struct BucketScheduleResult {
  long long total_cycles = 0;
  bool correct = true;
  /// Per-bucket completion cycle (cumulative). For kFused there is a
  /// single entry: everything lands together.
  std::vector<long long> bucket_finish;
  /// Flits moved across all directed links over all runs (payload +
  /// headers) — the fabric work the schedule cost. The service layer's
  /// utilization accounting sums this over every run it issues.
  long long total_flits = 0;
};

/// Executes a sequence of gradient-bucket Allreduces over one tree set and
/// reports the end-to-end cycle count under the chosen strategy.
///
/// Zero-length buckets are legal and free: they consume no fabric time or
/// flits (their finish cycle is wherever the schedule already stands), and
/// a bucket list that is entirely zero completes at cycle 0. The bucket
/// count is independent of the tree count — buckets are a time-axis
/// partition of the stream, not a tree-axis one, so more buckets than
/// trees is the common case for DL gradient schedules.
BucketScheduleResult run_bucketed_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees,
    const std::vector<long long>& bucket_sizes, const simnet::SimConfig& config,
    BucketStrategy strategy);

}  // namespace pfar::collectives
