#include "collectives/routed.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::collectives {

RoutedNetwork::RoutedNetwork(const graph::Graph& g)
    : g_(&g), n_(g.num_vertices()) {
  PFAR_REQUIRE(n_ >= 1, n_);
  next_hop_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1);
  dist_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1);
  // BFS from each destination; neighbors are scanned in ascending id so the
  // chosen next hop is deterministic.
  for (int dst = 0; dst < n_; ++dst) {
    auto* dist = &dist_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_)];
    auto* hop = &next_hop_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_)];
    std::queue<int> frontier;
    dist[dst] = 0;
    frontier.push(dst);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int w : g.neighbors(u)) {
        if (dist[w] < 0) {
          dist[w] = dist[u] + 1;
          hop[w] = u;  // from w, step to u to get closer to dst
          frontier.push(w);
        }
      }
    }
  }
}

int RoutedNetwork::hops(int src, int dst) const {
  PFAR_REQUIRE(src >= 0 && src < n_ && dst >= 0 && dst < n_, src, dst, n_);
  const int d = dist_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) + static_cast<std::size_t>(src)];
  if (d < 0) throw std::invalid_argument("RoutedNetwork: unreachable");
  return d;
}

std::vector<int> RoutedNetwork::path(int src, int dst) const {
  PFAR_REQUIRE(src >= 0 && src < n_ && dst >= 0 && dst < n_, src, dst, n_);
  std::vector<int> out{src};
  int cur = src;
  while (cur != dst) {
    cur = next_hop_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) + static_cast<std::size_t>(cur)];
    if (cur < 0) throw std::invalid_argument("RoutedNetwork: unreachable");
    out.push_back(cur);
  }
  return out;
}

ScheduleCost schedule_cost(const RoutedNetwork& net,
                           const std::vector<Round>& schedule, double alpha,
                           double beta) {
  PFAR_REQUIRE(alpha >= 0.0 && beta >= 0.0, alpha, beta);
  ScheduleCost cost;
  const int n = net.graph().num_vertices();
  std::vector<long long> load(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  for (const auto& round : schedule) {
    if (round.empty()) continue;
    ++cost.rounds;
    int max_hops = 0;
    std::vector<std::pair<int, int>> touched;
    for (const auto& msg : round) {
      if (msg.src == msg.dst || msg.elements == 0) continue;
      const auto path = net.path(msg.src, msg.dst);
      max_hops = std::max(max_hops, static_cast<int>(path.size()) - 1);
      cost.total_elements_moved += msg.elements;
      for (std::size_t i = 1; i < path.size(); ++i) {
        const std::size_t key =
            static_cast<std::size_t>(path[i - 1]) * static_cast<std::size_t>(n) + static_cast<std::size_t>(path[i]);
        if (load[key] == 0) touched.emplace_back(path[i - 1], path[i]);
        load[key] += msg.elements;
      }
    }
    long long max_load = 0;
    for (const auto& [a, b] : touched) {
      const std::size_t key = static_cast<std::size_t>(a) * static_cast<std::size_t>(n) + static_cast<std::size_t>(b);
      max_load = std::max(max_load, load[key]);
      load[key] = 0;  // reset for the next round
    }
    cost.max_link_elements = std::max(cost.max_link_elements, max_load);
    cost.total_time += alpha * max_hops + beta * static_cast<double>(max_load);
  }
  return cost;
}

}  // namespace pfar::collectives
