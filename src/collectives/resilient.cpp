#include "collectives/resilient.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "collectives/innetwork.hpp"
#include "core/resilience.hpp"
#include "model/congestion_model.hpp"
#include "obsv/recorder.hpp"
#include "util/contracts.hpp"

namespace pfar::collectives {
namespace {

[[noreturn]] void fail_unrecoverable(const std::string& why) {
  PFAR_REQUIRE(false && "run_resilient_allreduce: unrecoverable failure",
               why);
  // Contracts compiled out (PFAR_CHECKS=off): still fail loudly.
  throw std::runtime_error("run_resilient_allreduce: unrecoverable failure: " +
                           why);
}

std::uint64_t remix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The fault script an attempt that starts `elapsed` global cycles into the
/// original script sees: pending events shifted into the attempt's local
/// clock (clamped at 0), restricted to links the residual topology still
/// has. Flaky links that survive stay flaky, with the attempt index mixed
/// into the seed so a replay does not replicate the old drop pattern
/// packet-for-packet.
simnet::FaultScript shift_script(const simnet::FaultScript& script,
                                 long long elapsed,
                                 const graph::Graph& residual, int attempt) {
  simnet::FaultScript out;
  const int n = residual.num_vertices();
  const auto still_a_link = [&](int u, int v) {
    return u >= 0 && u < n && v >= 0 && v < n && residual.has_edge(u, v);
  };
  for (const auto& ev : script.events) {
    if (!still_a_link(ev.u, ev.v)) continue;
    simnet::FaultEvent shifted = ev;
    shifted.cycle = std::max<long long>(0, ev.cycle - elapsed);
    out.events.push_back(shifted);
  }
  for (const auto& [u, v] : script.flaky_links) {
    if (still_a_link(u, v)) out.flaky_links.emplace_back(u, v);
  }
  out.flaky_drop_permille = script.flaky_drop_permille;
  out.flaky_seed =
      attempt == 0 ? script.flaky_seed
                   : remix(script.flaky_seed +
                           static_cast<std::uint64_t>(attempt));
  return out;
}

}  // namespace

// pfar-lint: allow(contract-coverage) every input is validated below via std::invalid_argument throws, which callers catch as part of the API
RecoveryStats run_resilient_allreduce(const graph::Graph& topology,
                                      const std::vector<trees::SpanningTree>&
                                          spanning_trees,
                                      long long m,
                                      const simnet::SimConfig& config,
                                      const ResilienceConfig& resilience) {
  if (spanning_trees.empty()) {
    throw std::invalid_argument("run_resilient_allreduce: no trees");
  }
  if (m < 0) {
    throw std::invalid_argument("run_resilient_allreduce: negative m");
  }
  if (config.progress_timeout <= 0) {
    throw std::invalid_argument(
        "run_resilient_allreduce: progress_timeout must be > 0 (loss "
        "detection is driven by the per-tree timeout)");
  }
  if (resilience.max_retries < 0 || resilience.backoff_cycles < 0) {
    throw std::invalid_argument("run_resilient_allreduce: bad resilience "
                                "config");
  }

  RecoveryStats stats;
  stats.values_correct = true;

  // Observability: the recorder travels to each attempt's simulator via the
  // copied config; the driver adds its own global-timeline events. Folds to
  // null when PFAR_TRACE=off.
  obsv::Recorder* rec = obsv::kTraceCompiled ? config.recorder : nullptr;
  std::uint32_t n_attempt = 0, n_replan = 0;
  if (rec != nullptr) {
    n_attempt = rec->trace.intern("attempt");
    n_replan = rec->trace.intern("replan");
    rec->trace.name_track(obsv::kTrackRecovery, "recovery");
  }

  // Current plan: starts as the caller's, replaced by degraded plans. The
  // shared_ptr keeps a residual topology alive across loop iterations.
  std::shared_ptr<graph::Graph> residual;
  const graph::Graph* cur_topology = &topology;
  std::vector<trees::SpanningTree> cur_trees = spanning_trees;

  std::vector<graph::Edge> accumulated_failed;
  long long remaining = m;
  long long backoff = resilience.backoff_cycles;

  const int max_attempts = 1 + resilience.max_retries;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const model::TreeBandwidths bw = model::compute_tree_bandwidths(
        *cur_topology, cur_trees,
        static_cast<double>(config.link_bandwidth));
    const std::vector<long long> split = model::optimal_split(remaining, bw);

    simnet::SimConfig attempt_config = config;
    attempt_config.faults = shift_script(config.faults, stats.total_cycles,
                                         *cur_topology, attempt);

    // Place this attempt's simulation events on the global recovery
    // timeline (cycle 0 of the attempt = total_cycles so far).
    if (rec != nullptr) rec->trace.set_time_offset(stats.total_cycles);

    simnet::AllreduceSimulator sim(*cur_topology, to_embeddings(cur_trees),
                                   attempt_config);
    simnet::SimResult res = sim.run(split);

    ++stats.attempts;
    if (rec != nullptr) rec->metrics.add("recovery.attempts");
    if (!res.values_correct) stats.values_correct = false;

    AttemptStats log;
    log.start_cycle = stats.total_cycles;
    log.cycles = res.cycles;
    log.trees = static_cast<int>(cur_trees.size());
    log.elements = remaining;
    log.model_bandwidth = bw.aggregate;
    if (attempt > 0) {
      stats.chunks_replayed += remaining;
      if (rec != nullptr) {
        rec->metrics.add("recovery.chunks_replayed", remaining);
      }
    }

    // Tally what the failed trees did not finish and when the first
    // failure of this attempt was detected.
    long long lost = 0;
    long long first_detect = -1;
    for (std::size_t t = 0; t < res.tree_failed.size(); ++t) {
      if (!res.tree_failed[t]) continue;
      lost += split[t] - res.tree_completed[t];
      if (first_detect < 0 || res.tree_fail_cycle[t] < first_detect) {
        first_detect = res.tree_fail_cycle[t];
      }
    }
    log.elements_lost = lost;
    log.detection_cycle = first_detect;
    stats.attempt_log.push_back(log);
    if (first_detect >= 0 && stats.detection_cycle < 0) {
      stats.detection_cycle = stats.total_cycles + first_detect;
    }
    stats.total_cycles += res.cycles;

    if (rec != nullptr) {
      rec->trace.set_time_offset(0);
      rec->trace.complete(log.start_cycle, res.cycles, n_attempt,
                          obsv::kTrackRecovery, {"attempt", attempt},
                          {"lost", lost});
    }

    if (lost == 0) {
      stats.recovered = true;
      stats.degraded_aggregate_bandwidth = bw.aggregate;
      stats.final_sim = std::move(res);
      if (rec != nullptr) {
        rec->metrics.hwm("recovery.total_cycles", stats.total_cycles);
        if (stats.detection_cycle >= 0) {
          rec->metrics.hwm("recovery.detection_cycle", stats.detection_cycle);
        }
      }
      return stats;
    }

    // Exclude every link implicated in this attempt: scripted downs still
    // in effect plus links whose flaky mode actually ate packets.
    for (const auto& e : res.links_down) accumulated_failed.push_back(e);
    for (std::size_t d = 0; d < res.link_dropped_flits.size(); ++d) {
      if (res.link_dropped_flits[d] > 0) {
        accumulated_failed.push_back(
            cur_topology->edges()[d / 2]);
      }
    }
    std::sort(accumulated_failed.begin(), accumulated_failed.end());
    accumulated_failed.erase(
        std::unique(accumulated_failed.begin(), accumulated_failed.end()),
        accumulated_failed.end());

    if (attempt + 1 >= max_attempts) break;

    // Replan on the original topology minus everything failed so far.
    try {
      if (resilience.policy == RecoveryPolicy::kKeepSurviving) {
        core::DegradedPlan plan = core::degrade_keep_surviving(
            topology, spanning_trees, accumulated_failed);
        if (plan.trees.empty()) {
          fail_unrecoverable("no surviving trees after " +
                             std::to_string(accumulated_failed.size()) +
                             " failed links");
        }
        residual = plan.topology;
        cur_trees = std::move(plan.trees);
      } else {
        core::DegradedPlan plan =
            core::degrade_repack(topology, accumulated_failed);
        residual = plan.topology;
        cur_trees = std::move(plan.trees);
      }
    } catch (const std::runtime_error& e) {
      // remove_links: residual graph disconnected.
      fail_unrecoverable(e.what());
    }
    cur_topology = residual.get();
    remaining = lost;
    stats.failed_links = accumulated_failed;
    if (rec != nullptr) {
      rec->trace.instant(
          stats.total_cycles, n_replan, obsv::kTrackRecovery,
          {"failed_links",
           static_cast<long long>(accumulated_failed.size())},
          {"trees", static_cast<long long>(cur_trees.size())});
    }
    stats.total_cycles += backoff;
    backoff *= 2;
  }

  stats.failed_links = accumulated_failed;
  fail_unrecoverable("retries exhausted with " +
                     std::to_string(remaining) + " elements undelivered");
}

}  // namespace pfar::collectives
