#include "collectives/innetwork.hpp"

#include <queue>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace pfar::collectives {

// pfar-lint: allow(contract-coverage) pure shape-preserving transform; SpanningTree enforces its own invariants
std::vector<simnet::TreeEmbedding> to_embeddings(
    const std::vector<trees::SpanningTree>& trees) {
  std::vector<simnet::TreeEmbedding> out;
  out.reserve(trees.size());
  for (const auto& t : trees) {
    out.push_back(simnet::TreeEmbedding{t.root(), t.parents()});
  }
  return out;
}

trees::SpanningTree bfs_tree(const graph::Graph& g, int root) {
  PFAR_REQUIRE(root >= 0 && root < g.num_vertices(), root, g.num_vertices());
  std::vector<int> parent(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  std::queue<int> frontier;
  seen[static_cast<std::size_t>(root)] = 1;
  frontier.push(root);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int w : g.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        parent[static_cast<std::size_t>(w)] = u;
        frontier.push(w);
      }
    }
  }
  return trees::SpanningTree(root, std::move(parent));
}

InNetworkResult run_innetwork_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& spanning_trees, long long m,
    const simnet::SimConfig& config, SplitPolicy policy) {
  if (spanning_trees.empty()) {
    throw std::invalid_argument("run_innetwork_allreduce: no trees");
  }
  PFAR_REQUIRE(m >= 0, m);
  InNetworkResult out;
  out.m = m;
  out.predicted = model::compute_tree_bandwidths(
      topology, spanning_trees, static_cast<double>(config.link_bandwidth));
  for (const auto& t : spanning_trees) {
    out.max_depth = std::max(out.max_depth, t.depth());
  }

  if (policy == SplitPolicy::kOptimal) {
    out.split = model::optimal_split(m, out.predicted);
  } else {
    out.split = util::apportion(
        m, std::vector<double>(spanning_trees.size(), 1.0));
  }

  simnet::AllreduceSimulator sim(topology, to_embeddings(spanning_trees),
                                 config);
  out.sim = sim.run(out.split);
  out.efficiency_vs_model =
      out.sim.aggregate_bandwidth / out.predicted.aggregate;
  return out;
}

InNetworkResult run_innetwork_allreduce_split(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& spanning_trees,
    const std::vector<long long>& split, const simnet::SimConfig& config) {
  if (spanning_trees.empty()) {
    throw std::invalid_argument("run_innetwork_allreduce_split: no trees");
  }
  PFAR_REQUIRE(split.size() == spanning_trees.size(), split.size(),
               spanning_trees.size());
  for (long long s : split) PFAR_REQUIRE(s >= 0, s);

  InNetworkResult out;
  out.split = split;
  for (long long s : split) out.m += s;
  out.predicted = model::compute_tree_bandwidths(
      topology, spanning_trees, static_cast<double>(config.link_bandwidth));
  for (const auto& t : spanning_trees) {
    out.max_depth = std::max(out.max_depth, t.depth());
  }

  simnet::AllreduceSimulator sim(topology, to_embeddings(spanning_trees),
                                 config);
  out.sim = sim.run(out.split);
  out.efficiency_vs_model =
      out.sim.aggregate_bandwidth / out.predicted.aggregate;
  return out;
}

}  // namespace pfar::collectives
