#pragma once

#include <vector>

#include "collectives/routed.hpp"
#include "util/rng.hpp"

namespace pfar::collectives {

/// A *logically defined* aggregation tree (Section 4.4, SHARP-style): the
/// parent/child relation is declared over arbitrary node pairs and each
/// logical edge is realized at runtime by the routing algorithm as a
/// (possibly multi-hop) physical path. Unlike the paper's physically
/// embedded trees, nothing guarantees low congestion.
struct LogicalTree {
  int root = 0;
  std::vector<int> parent;  // -1 at root; parents need NOT be neighbors
};

/// Per-tree bandwidth of concurrently active logical trees, by Algorithm 1
/// style waterfilling over *directed physical links*. Each logical edge of
/// tree t contributes one reduction flow (child -> parent path) and one
/// broadcast flow (parent -> child path) at the tree's stream rate; a
/// link's congestion is the total flow multiplicity crossing it. With
/// physically embedded trees this reproduces Algorithm 1's results
/// exactly: e.g. a link shared by two of the paper's low-depth trees
/// carries one tree's reduction plus the other's broadcast per direction
/// (Lemma 7.8), giving each tree B/2.
struct LogicalBandwidths {
  std::vector<double> per_tree;
  double aggregate = 0.0;
  /// Worst flow multiplicity on any directed link — the per-link state a
  /// SHARP-like device would need to track.
  int max_link_flows = 0;
};

LogicalBandwidths logical_tree_bandwidths(const RoutedNetwork& net,
                                          const std::vector<LogicalTree>& trees,
                                          double link_bandwidth);

/// Builds `count` logically defined aggregation trees the way a
/// topology-agnostic collective library would: each tree is a complete
/// `arity`-ary tree over a random permutation of the nodes (SHARP-style
/// logical hierarchy, oblivious to the physical topology).
std::vector<LogicalTree> random_logical_trees(int num_nodes, int count,
                                              int arity, util::Rng& rng);

/// Depth of a logical tree in *physical hops* (each logical edge costs its
/// routed path length).
int logical_depth(const RoutedNetwork& net, const LogicalTree& tree);

}  // namespace pfar::collectives
