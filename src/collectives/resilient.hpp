#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::collectives {

/// How run_resilient_allreduce replans after a detected failure (the two
/// static degrade paths of core/resilience, see docs/resilience.md).
enum class RecoveryPolicy {
  kKeepSurviving,  // drop trees touched by failed links, keep the rest
  kRepack,         // repack trees greedily on the residual topology
};

/// Retry/backoff knobs of the resilient driver. Loss detection itself is
/// configured on the simulator side (SimConfig::progress_timeout, which
/// must be > 0 for the driver to work).
struct ResilienceConfig {
  RecoveryPolicy policy = RecoveryPolicy::kRepack;
  /// Replay attempts after the initial run (attempt count <= 1 + retries).
  int max_retries = 3;
  /// Cycles charged between a failed attempt and its replay (re-planning /
  /// re-synchronization cost), doubled on every further retry.
  long long backoff_cycles = 256;
};

/// One simulated attempt (the initial run or a replay) in the recovery log.
struct AttemptStats {
  long long start_cycle = 0;      // global cycle the attempt began at
  long long cycles = 0;           // simulated cycles of this attempt
  int trees = 0;                  // trees in this attempt's plan
  long long elements = 0;         // elements assigned to this attempt
  long long elements_lost = 0;    // elements its failed trees did not finish
  double model_bandwidth = 0.0;   // Algorithm 1 aggregate of this plan
  long long detection_cycle = -1; // attempt-local first detection, -1 healthy
};

/// Outcome of a resilient Allreduce: what was lost, when it was detected,
/// what it cost to replay, and how much bandwidth the degraded plan keeps.
struct RecoveryStats {
  bool recovered = false;       // every element delivered in some attempt
  bool values_correct = false;  // all delivered values exact in all attempts
  int attempts = 0;
  /// Global cycle of the first loss detection, -1 if the run stayed healthy.
  long long detection_cycle = -1;
  /// Elements replayed on degraded plans (sum of replay assignments).
  long long chunks_replayed = 0;
  /// End-to-end cycles: all attempts plus retry backoff.
  long long total_cycles = 0;
  /// Algorithm 1 aggregate bandwidth of the final (successful) plan — the
  /// degradation benches plot this against the number of failed links.
  double degraded_aggregate_bandwidth = 0.0;
  /// Every link excluded by recovery (scripted downs and flaky droppers).
  std::vector<graph::Edge> failed_links;
  std::vector<AttemptStats> attempt_log;
  /// Simulator result of the final attempt.
  simnet::SimResult final_sim;
};

/// Runs an m-element Allreduce over `trees`, reacting to failures injected
/// via `config.faults`: when the per-tree progress timeout cancels trees,
/// the driver consults core/resilience for a degraded plan on the original
/// topology minus every failed link, replays exactly the lost elements on
/// it (bounded retries with exponential backoff), and reports RecoveryStats.
///
/// Requires `config.progress_timeout > 0` (detection) and non-empty trees.
/// Unrecoverable situations — residual topology disconnected, no surviving
/// trees, retries exhausted — fail loudly through a PFAR_REQUIRE contract
/// violation (std::runtime_error when contracts are compiled out); the
/// driver never hangs past the simulator's max_cycles.
RecoveryStats run_resilient_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees, long long m,
    const simnet::SimConfig& config,
    const ResilienceConfig& resilience = {});

}  // namespace pfar::collectives
