#include "collectives/bucket_schedule.hpp"

#include <numeric>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::collectives {

BucketScheduleResult run_bucketed_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees,
    const std::vector<long long>& bucket_sizes,
    const simnet::SimConfig& config, BucketStrategy strategy) {
  if (bucket_sizes.empty()) {
    throw std::invalid_argument("run_bucketed_allreduce: no buckets");
  }
  for (long long m : bucket_sizes) {
    if (m < 0) {
      throw std::invalid_argument("run_bucketed_allreduce: negative bucket");
    }
  }
  const auto sum_flits = [](const simnet::SimResult& sim) {
    return std::accumulate(sim.link_flits.begin(), sim.link_flits.end(), 0LL);
  };
  BucketScheduleResult out;
  switch (strategy) {
    case BucketStrategy::kSerialized: {
      for (long long m : bucket_sizes) {
        // A zero-length bucket moves nothing: no run, no cycles, no flits.
        if (m == 0) {
          out.bucket_finish.push_back(out.total_cycles);
          continue;
        }
        const auto res = run_innetwork_allreduce(topology, trees, m, config);
        out.total_cycles += res.sim.cycles;
        out.correct = out.correct && res.sim.values_correct;
        out.total_flits += sum_flits(res.sim);
        out.bucket_finish.push_back(out.total_cycles);
      }
      break;
    }
    case BucketStrategy::kFused: {
      const long long total = std::accumulate(bucket_sizes.begin(),
                                              bucket_sizes.end(), 0LL);
      if (total == 0) {
        out.bucket_finish.push_back(0);
        break;
      }
      const auto res = run_innetwork_allreduce(topology, trees, total, config);
      out.total_cycles = res.sim.cycles;
      out.correct = res.sim.values_correct;
      out.total_flits = sum_flits(res.sim);
      out.bucket_finish.push_back(out.total_cycles);
      break;
    }
  }
  PFAR_ENSURE(out.total_cycles >= 0 && out.total_flits >= 0,
              out.total_cycles, out.total_flits);
  return out;
}

}  // namespace pfar::collectives
