#include "collectives/bucket_schedule.hpp"

#include <numeric>
#include <stdexcept>

namespace pfar::collectives {

BucketScheduleResult run_bucketed_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees,
    const std::vector<long long>& bucket_sizes,
    const simnet::SimConfig& config, BucketStrategy strategy) {
  if (bucket_sizes.empty()) {
    throw std::invalid_argument("run_bucketed_allreduce: no buckets");
  }
  BucketScheduleResult out;
  switch (strategy) {
    case BucketStrategy::kSerialized: {
      for (long long m : bucket_sizes) {
        const auto res = run_innetwork_allreduce(topology, trees, m, config);
        out.total_cycles += res.sim.cycles;
        out.correct = out.correct && res.sim.values_correct;
        out.bucket_finish.push_back(out.total_cycles);
      }
      break;
    }
    case BucketStrategy::kFused: {
      const long long total = std::accumulate(bucket_sizes.begin(),
                                              bucket_sizes.end(), 0LL);
      const auto res = run_innetwork_allreduce(topology, trees, total, config);
      out.total_cycles = res.sim.cycles;
      out.correct = res.sim.values_correct;
      out.bucket_finish.push_back(out.total_cycles);
      break;
    }
  }
  return out;
}

}  // namespace pfar::collectives
