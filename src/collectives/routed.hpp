#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pfar::collectives {

/// Deterministic shortest-path routing on a topology (lowest-id next hop),
/// used to cost host-based baselines whose point-to-point messages must
/// traverse physical links. PolarFly's diameter-2 keeps every path at 1-2
/// hops.
class RoutedNetwork {
 public:
  explicit RoutedNetwork(const graph::Graph& g);

  const graph::Graph& graph() const { return *g_; }
  int hops(int src, int dst) const;
  /// Vertex sequence src..dst along the deterministic shortest path.
  std::vector<int> path(int src, int dst) const;

 private:
  const graph::Graph* g_;
  // next_hop_[dst * n + src]: neighbor of src on the path toward dst.
  std::vector<int> next_hop_;
  std::vector<int> dist_;
  int n_;
};

/// One point-to-point message of a host-based collective schedule.
struct Message {
  int src = 0;  // physical node
  int dst = 0;
  long long elements = 0;
};

/// A communication round: messages that proceed concurrently.
using Round = std::vector<Message>;

/// Alpha-beta cost of a routed schedule. Round time =
/// alpha * (max hops in the round) + beta * (max per-directed-link element
/// load after routing); rounds are serialized (host-based algorithms
/// synchronize between rounds).
struct ScheduleCost {
  double total_time = 0.0;
  long long rounds = 0;
  long long total_elements_moved = 0;  // sum over messages
  long long max_link_elements = 0;     // worst single-link load in a round
};

ScheduleCost schedule_cost(const RoutedNetwork& net,
                           const std::vector<Round>& schedule, double alpha,
                           double beta);

}  // namespace pfar::collectives
