#include "collectives/logical.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::collectives {

LogicalBandwidths logical_tree_bandwidths(
    const RoutedNetwork& net, const std::vector<LogicalTree>& trees,
    double link_bandwidth) {
  if (link_bandwidth <= 0.0) {
    throw std::invalid_argument("logical_tree_bandwidths: bandwidth <= 0");
  }
  const int n = net.graph().num_vertices();
  const int num_trees = static_cast<int>(trees.size());

  // Directed link key (u -> v) => dense index, built lazily over used links.
  std::vector<int> link_index(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
  std::vector<double> remaining;     // L(l)
  std::vector<double> congestion;    // C(l) = sum of flow multiplicities
  // flows[t]: (link, multiplicity) pairs for tree t's reduction direction.
  std::vector<std::vector<std::pair<int, double>>> flows(static_cast<std::size_t>(num_trees));

  auto link_id = [&](int u, int v) {
    const std::size_t key = static_cast<std::size_t>(u) * static_cast<std::size_t>(n) + static_cast<std::size_t>(v);
    if (link_index[key] < 0) {
      link_index[key] = static_cast<int>(remaining.size());
      remaining.push_back(link_bandwidth);
      congestion.push_back(0.0);
    }
    return link_index[key];
  };

  for (int t = 0; t < num_trees; ++t) {
    const auto& tree = trees[static_cast<std::size_t>(t)];
    if (static_cast<int>(tree.parent.size()) != n) {
      throw std::invalid_argument("logical_tree_bandwidths: tree size");
    }
    std::vector<double> multiplicity;  // per dense link id, this tree
    auto add_path = [&](int src, int dst) {
      const auto path = net.path(src, dst);
      for (std::size_t i = 1; i < path.size(); ++i) {
        const int l = link_id(path[i - 1], path[i]);
        if (l >= static_cast<int>(multiplicity.size())) {
          multiplicity.resize(static_cast<std::size_t>(l + 1), 0.0);
        }
        multiplicity[static_cast<std::size_t>(l)] += 1.0;
      }
    };
    for (int v = 0; v < n; ++v) {
      if (v == tree.root) continue;
      add_path(v, tree.parent[static_cast<std::size_t>(v)]);  // reduction: child -> parent
      add_path(tree.parent[static_cast<std::size_t>(v)], v);  // broadcast: parent -> child
    }
    for (int l = 0; l < static_cast<int>(multiplicity.size()); ++l) {
      if (multiplicity[static_cast<std::size_t>(l)] > 0.0) {
        flows[static_cast<std::size_t>(t)].emplace_back(l, multiplicity[static_cast<std::size_t>(l)]);
        congestion[static_cast<std::size_t>(l)] += multiplicity[static_cast<std::size_t>(l)];
      }
    }
  }

  LogicalBandwidths out;
  out.per_tree.assign(static_cast<std::size_t>(num_trees), 0.0);
  for (double c : congestion) {
    out.max_link_flows = std::max(out.max_link_flows,
                                  static_cast<int>(c + 0.5));
  }

  std::vector<char> done(static_cast<std::size_t>(num_trees), 0);
  int active = num_trees;
  while (active > 0) {
    int l_min = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int l = 0; l < static_cast<int>(remaining.size()); ++l) {
      if (congestion[static_cast<std::size_t>(l)] <= 1e-12) continue;
      const double ratio = remaining[static_cast<std::size_t>(l)] / congestion[static_cast<std::size_t>(l)];
      if (ratio < best) {
        best = ratio;
        l_min = l;
      }
    }
    if (l_min < 0) {
      throw std::logic_error("logical_tree_bandwidths: no bottleneck link");
    }
    const double rate = remaining[static_cast<std::size_t>(l_min)] / congestion[static_cast<std::size_t>(l_min)];
    for (int t = 0; t < num_trees; ++t) {
      if (done[static_cast<std::size_t>(t)]) continue;
      const bool uses = std::any_of(
          flows[static_cast<std::size_t>(t)].begin(), flows[static_cast<std::size_t>(t)].end(),
          [&](const auto& f) { return f.first == l_min; });
      if (!uses) continue;
      out.per_tree[static_cast<std::size_t>(t)] = rate;
      for (const auto& [l, mult] : flows[static_cast<std::size_t>(t)]) {
        remaining[static_cast<std::size_t>(l)] = std::max(0.0, remaining[static_cast<std::size_t>(l)] - rate * mult);
        congestion[static_cast<std::size_t>(l)] -= mult;
      }
      done[static_cast<std::size_t>(t)] = 1;
      --active;
    }
    congestion[static_cast<std::size_t>(l_min)] = 0.0;  // remove the bottleneck link
  }

  out.aggregate = std::accumulate(out.per_tree.begin(), out.per_tree.end(),
                                  0.0);
  PFAR_ENSURE(static_cast<int>(out.per_tree.size()) == num_trees, num_trees);
  return out;
}

std::vector<LogicalTree> random_logical_trees(int num_nodes, int count,
                                              int arity, util::Rng& rng) {
  if (num_nodes < 1 || count < 0 || arity < 1) {
    throw std::invalid_argument("random_logical_trees: bad args");
  }
  std::vector<LogicalTree> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    std::vector<int> perm(static_cast<std::size_t>(num_nodes));
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = num_nodes - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
    }
    LogicalTree tree;
    tree.root = perm[0];
    tree.parent.assign(static_cast<std::size_t>(num_nodes), -1);
    for (int i = 1; i < num_nodes; ++i) {
      tree.parent[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
          perm[static_cast<std::size_t>((i - 1) / arity)];
    }
    out.push_back(std::move(tree));
  }
  PFAR_ENSURE(static_cast<int>(out.size()) == count, count);
  return out;
}

int logical_depth(const RoutedNetwork& net, const LogicalTree& tree) {
  const int n = static_cast<int>(tree.parent.size());
  PFAR_REQUIRE(tree.root >= 0 && tree.root < n, tree.root, n);
  std::vector<int> depth(static_cast<std::size_t>(n), -1);
  depth[static_cast<std::size_t>(tree.root)] = 0;
  int best = 0;
  // Parents always precede children in hop distance; resolve iteratively.
  for (int pass = 0, resolved = 1; pass < n && resolved < n; ++pass) {
    for (int v = 0; v < n; ++v) {
      if (v == tree.root || depth[static_cast<std::size_t>(v)] >= 0 ||
          depth[static_cast<std::size_t>(
              tree.parent[static_cast<std::size_t>(v)])] < 0) {
        continue;
      }
      depth[static_cast<std::size_t>(v)] =
          depth[static_cast<std::size_t>(
              tree.parent[static_cast<std::size_t>(v)])] +
          net.hops(v, tree.parent[static_cast<std::size_t>(v)]);
      best = std::max(best, depth[static_cast<std::size_t>(v)]);
      ++resolved;
    }
  }
  return best;
}

}  // namespace pfar::collectives
