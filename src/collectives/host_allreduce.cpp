#include "collectives/host_allreduce.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pfar::collectives {
namespace {

constexpr std::int64_t kNodeStride = 1000003;
constexpr std::int64_t kElemStride = 31;

std::int64_t rank_value(int rank, long long k) {
  return static_cast<std::int64_t>(rank + 1) * kNodeStride +
         static_cast<std::int64_t>(k) * kElemStride;
}

int floor_log2(int p) {
  int l = 0;
  while ((1 << (l + 1)) <= p) ++l;
  return l;
}

// Ring chunk boundary c of p chunks over m elements.
long long chunk_lo(long long m, int p, int c) {
  return static_cast<long long>(c) * m / p;
}

void ring(int p, long long m, Transport& tr) {
  // Reduce-scatter: p-1 rounds; rank i sends chunk (i - r) mod p to i+1.
  for (int r = 0; r < p - 1; ++r) {
    for (int i = 0; i < p; ++i) {
      const int c = ((i - r) % p + p) % p;
      tr.transfer(i, (i + 1) % p, chunk_lo(m, p, c), chunk_lo(m, p, c + 1),
                  /*reduce=*/true);
    }
    tr.next_round();
  }
  // All-gather: rank i sends chunk (i + 1 - r) mod p to i+1.
  for (int r = 0; r < p - 1; ++r) {
    for (int i = 0; i < p; ++i) {
      const int c = ((i + 1 - r) % p + p) % p;
      tr.transfer(i, (i + 1) % p, chunk_lo(m, p, c), chunk_lo(m, p, c + 1),
                  /*reduce=*/false);
    }
    tr.next_round();
  }
}

// Maps participant index (0..p2-1) to the original rank after folding the
// first 2*rem ranks pairwise (MPICH-style non-power-of-two handling).
int participant_rank(int idx, int rem) {
  return idx < rem ? 2 * idx : idx + rem;
}

void fold_in(long long m, int rem, Transport& tr) {
  if (rem == 0) return;
  for (int k = 0; k < rem; ++k) {
    tr.transfer(2 * k + 1, 2 * k, 0, m, /*reduce=*/true);
  }
  tr.next_round();
}

void fold_out(long long m, int rem, Transport& tr) {
  if (rem == 0) return;
  for (int k = 0; k < rem; ++k) {
    tr.transfer(2 * k, 2 * k + 1, 0, m, /*reduce=*/false);
  }
  tr.next_round();
}

void recursive_doubling(int p, long long m, Transport& tr) {
  const int lg = floor_log2(p);
  const int p2 = 1 << lg;
  const int rem = p - p2;
  fold_in(m, rem, tr);
  for (int bit = 0; bit < lg; ++bit) {
    for (int idx = 0; idx < p2; ++idx) {
      const int partner = idx ^ (1 << bit);
      // Both directions of the pairwise exchange, staged concurrently.
      tr.transfer(participant_rank(idx, rem), participant_rank(partner, rem),
                  0, m, /*reduce=*/true);
    }
    tr.next_round();
  }
  fold_out(m, rem, tr);
}

void halving_doubling(int p, long long m, Transport& tr) {
  const int lg = floor_log2(p);
  const int p2 = 1 << lg;
  const int rem = p - p2;
  fold_in(m, rem, tr);

  // Per-participant range trajectory through the recursive halving.
  std::vector<long long> lo(static_cast<std::size_t>(p2), 0), hi(static_cast<std::size_t>(p2), m);
  // ranges[step][idx] = (lo, hi) at entry of halving step `step`.
  std::vector<std::vector<std::pair<long long, long long>>> entry(
      static_cast<std::size_t>(lg), std::vector<std::pair<long long, long long>>(static_cast<std::size_t>(p2)));

  for (int step = 0; step < lg; ++step) {
    const int half = p2 >> (step + 1);
    for (int idx = 0; idx < p2; ++idx) {
      entry[static_cast<std::size_t>(step)][static_cast<std::size_t>(idx)] = {lo[static_cast<std::size_t>(idx)], hi[static_cast<std::size_t>(idx)]};
    }
    for (int idx = 0; idx < p2; ++idx) {
      const int partner = idx ^ half;
      const long long mid = lo[static_cast<std::size_t>(idx)] + (hi[static_cast<std::size_t>(idx)] - lo[static_cast<std::size_t>(idx)]) / 2;
      if ((idx & half) == 0) {
        // Keep the low half; ship the high half to the partner.
        tr.transfer(participant_rank(idx, rem),
                    participant_rank(partner, rem), mid, hi[static_cast<std::size_t>(idx)],
                    /*reduce=*/true);
      } else {
        tr.transfer(participant_rank(idx, rem),
                    participant_rank(partner, rem), lo[static_cast<std::size_t>(idx)], mid,
                    /*reduce=*/true);
      }
    }
    for (int idx = 0; idx < p2; ++idx) {
      const long long mid = lo[static_cast<std::size_t>(idx)] + (hi[static_cast<std::size_t>(idx)] - lo[static_cast<std::size_t>(idx)]) / 2;
      if ((idx & half) == 0) {
        hi[static_cast<std::size_t>(idx)] = mid;
      } else {
        lo[static_cast<std::size_t>(idx)] = mid;
      }
    }
    tr.next_round();
  }

  // All-gather by recursive doubling: undo the splits in reverse order.
  for (int step = lg - 1; step >= 0; --step) {
    const int half = p2 >> (step + 1);
    for (int idx = 0; idx < p2; ++idx) {
      const int partner = idx ^ half;
      tr.transfer(participant_rank(idx, rem),
                  participant_rank(partner, rem), lo[static_cast<std::size_t>(idx)], hi[static_cast<std::size_t>(idx)],
                  /*reduce=*/false);
    }
    for (int idx = 0; idx < p2; ++idx) {
      lo[static_cast<std::size_t>(idx)] = entry[static_cast<std::size_t>(step)][static_cast<std::size_t>(idx)].first;
      hi[static_cast<std::size_t>(idx)] = entry[static_cast<std::size_t>(step)][static_cast<std::size_t>(idx)].second;
    }
    tr.next_round();
  }
  fold_out(m, rem, tr);
}

}  // namespace

// pfar-lint: allow(contract-coverage) p and m are validated via the std::invalid_argument throw below, which callers rely on
void run_host_allreduce(HostAlgorithm algo, int p, long long m,
                        Transport& transport) {
  if (p < 1 || m < 0) {
    throw std::invalid_argument("run_host_allreduce: bad p or m");
  }
  if (p == 1 || m == 0) return;
  switch (algo) {
    case HostAlgorithm::kRing:
      ring(p, m, transport);
      break;
    case HostAlgorithm::kRecursiveDoubling:
      recursive_doubling(p, m, transport);
      break;
    case HostAlgorithm::kHalvingDoubling:
      halving_doubling(p, m, transport);
      break;
  }
}

ScheduleRecorder::ScheduleRecorder(std::vector<int> placement)
    : placement_(std::move(placement)) {
  rounds_.emplace_back();
}

void ScheduleRecorder::transfer(int src_rank, int dst_rank, long long lo,
                                long long hi, bool reduce) {
  (void)reduce;
  PFAR_REQUIRE(src_rank >= 0 &&
                   src_rank < static_cast<int>(placement_.size()) &&
                   dst_rank >= 0 &&
                   dst_rank < static_cast<int>(placement_.size()),
               src_rank, dst_rank, placement_.size());
  if (hi <= lo) return;
  rounds_.back().push_back(
      Message{placement_[static_cast<std::size_t>(src_rank)], placement_[static_cast<std::size_t>(dst_rank)], hi - lo});
}

void ScheduleRecorder::next_round() { rounds_.emplace_back(); }

std::vector<Round> ScheduleRecorder::take_schedule() {
  while (!rounds_.empty() && rounds_.back().empty()) rounds_.pop_back();
  PFAR_ENSURE(rounds_.empty() || !rounds_.back().empty(), rounds_.size());
  return std::move(rounds_);
}

DataExecutor::DataExecutor(int p, long long m) : p_(p), m_(m) {
  PFAR_REQUIRE(p >= 1 && m >= 0, p, m);
  data_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    data_[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(m));
    for (long long k = 0; k < m; ++k) data_[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] = rank_value(r, k);
  }
  pending_.clear();
}

void DataExecutor::transfer(int src_rank, int dst_rank, long long lo,
                            long long hi, bool reduce) {
  PFAR_REQUIRE(src_rank >= 0 && src_rank < p_ && dst_rank >= 0 &&
                   dst_rank < p_,
               src_rank, dst_rank, p_);
  if (hi <= lo) return;
  // Snapshot the source now: all transfers within a round see pre-round
  // state (synchronous-round semantics), applied at next_round().
  Pending p;
  p.dst = dst_rank;
  p.lo = lo;
  p.reduce = reduce;
  p.payload.assign(data_[static_cast<std::size_t>(src_rank)].begin() + lo, data_[static_cast<std::size_t>(src_rank)].begin() + hi);
  pending_.push_back(std::move(p));
}

void DataExecutor::next_round() {
  for (auto& p : pending_) {
    PFAR_REQUIRE(p.lo >= 0 &&
                     p.lo + static_cast<long long>(p.payload.size()) <= m_,
                 p.lo, p.payload.size(), m_);
    auto& vec = data_[static_cast<std::size_t>(p.dst)];
    for (std::size_t i = 0; i < p.payload.size(); ++i) {
      if (p.reduce) {
        vec[static_cast<std::size_t>(p.lo) + i] += p.payload[i];
      } else {
        vec[static_cast<std::size_t>(p.lo) + i] = p.payload[i];
      }
    }
  }
  pending_.clear();
}

// pfar-lint: allow(contract-coverage) pure query; a wrong result is the legitimate false return, not a contract violation
bool DataExecutor::verify() const {
  if (!pending_.empty()) return false;  // algorithm forgot a round barrier
  for (long long k = 0; k < m_; ++k) {
    std::int64_t expected = 0;
    for (int r = 0; r < p_; ++r) expected += rank_value(r, k);
    for (int r = 0; r < p_; ++r) {
      if (data_[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] != expected) return false;
    }
  }
  return true;
}

HostAllreduceResult run_host_baseline(HostAlgorithm algo,
                                      const RoutedNetwork& net,
                                      const std::vector<int>& placement,
                                      long long m, double alpha, double beta,
                                      long long verify_m) {
  PFAR_REQUIRE(verify_m >= 0 && alpha >= 0.0 && beta >= 0.0, verify_m, alpha,
               beta);
  const int p = static_cast<int>(placement.size());
  HostAllreduceResult out;

  ScheduleRecorder recorder(placement);
  run_host_allreduce(algo, p, m, recorder);
  out.cost = schedule_cost(net, recorder.take_schedule(), alpha, beta);

  DataExecutor executor(p, std::min(m, verify_m));
  run_host_allreduce(algo, p, std::min(m, verify_m), executor);
  out.correct = executor.verify();
  return out;
}

}  // namespace pfar::collectives
