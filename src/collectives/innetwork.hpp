#pragma once

#include <vector>

#include "model/congestion_model.hpp"
#include "simnet/allreduce_sim.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::collectives {

/// How the m vector elements are distributed across trees.
enum class SplitPolicy {
  /// m_i = m * B_i / sum(B) — the optimal distribution of Theorem 5.1.
  kOptimal,
  /// m_i = m / r, ignoring per-tree bandwidth; used as an ablation to show
  /// why the bandwidth-proportional split matters.
  kUniform,
};

/// Everything measured and predicted for one in-network Allreduce run.
struct InNetworkResult {
  simnet::SimResult sim;
  model::TreeBandwidths predicted;   // Algorithm 1
  std::vector<long long> split;      // m_i actually used
  long long m = 0;                   // total vector elements
  int max_depth = 0;                 // deepest tree (latency proxy)
  /// Simulated aggregate bandwidth / Algorithm 1 aggregate — approaches
  /// 1.0 as m grows (pipeline fill/drain amortizes away).
  double efficiency_vs_model = 0.0;
};

/// Plans and simulates a multi-tree in-network Allreduce of an m-element
/// vector over the given spanning trees (Sections 4.3, 5.2 end-to-end):
/// computes Algorithm 1 bandwidths, splits the vector per `policy`, runs
/// the cycle-level simulator and reports both measurement and prediction.
InNetworkResult run_innetwork_allreduce(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees, long long m,
    const simnet::SimConfig& config, SplitPolicy policy = SplitPolicy::kOptimal);

/// As run_innetwork_allreduce, but with a caller-supplied per-tree split —
/// the entry point the congestion controller uses after re-weighting the
/// Theorem 5.1 distribution with live link measurements (src/adapt).
/// `split` needs one non-negative entry per tree; `m` and the simulated
/// run follow it verbatim, while `predicted` (and efficiency_vs_model)
/// still report the quiet-network Algorithm 1 so callers can read the
/// adaptation against the static model.
InNetworkResult run_innetwork_allreduce_split(
    const graph::Graph& topology,
    const std::vector<trees::SpanningTree>& trees,
    const std::vector<long long>& split, const simnet::SimConfig& config);

/// Converts library spanning trees into simulator embeddings.
std::vector<simnet::TreeEmbedding> to_embeddings(
    const std::vector<trees::SpanningTree>& trees);

/// A single-tree in-network baseline: a BFS tree rooted at `root` (the
/// SHARP-like topology-agnostic embedding whose Allreduce bandwidth is
/// capped at one link, Section 1.1).
trees::SpanningTree bfs_tree(const graph::Graph& g, int root);

}  // namespace pfar::collectives
