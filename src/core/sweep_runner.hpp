#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace pfar::core {

/// One design point of a sweep: its grid index plus a deterministic seed
/// derived from (base_seed, index) only — never from thread identity or
/// completion order — so any RNG a task creates from `seed` draws the same
/// stream no matter how many workers execute the sweep.
struct SweepTask {
  int index = 0;
  std::uint64_t seed = 0;
};

/// Fans independent design points out across a util::ThreadPool and
/// collects results in grid order. Determinism contract: tasks must not
/// communicate, every task's randomness must come from task.seed, and
/// results are stored by task.index — so 1 thread and N threads produce
/// identical result vectors (asserted by determinism_test).
class SweepRunner {
 public:
  /// `threads` <= 0 means util::default_threads() (PFAR_THREADS env or
  /// hardware concurrency).
  explicit SweepRunner(int threads = 0, std::uint64_t base_seed = 0);

  int threads() const { return threads_; }
  std::uint64_t base_seed() const { return base_seed_; }

  /// splitmix64 over (base_seed, index): well-spread, collision-free per
  /// index, and independent of thread count.
  static std::uint64_t task_seed(std::uint64_t base_seed, int index);

  /// Runs fn(task) for indices 0..count-1. With 1 thread runs inline in
  /// index order; otherwise tasks run concurrently. The first exception
  /// thrown by any task is rethrown after all tasks finish.
  void for_each(int count, const std::function<void(const SweepTask&)>& fn);

  /// for_each that collects fn's return values into results[task.index].
  template <typename R, typename Fn>
  std::vector<R> map(int count, Fn&& fn) {
    std::vector<R> results(static_cast<std::size_t>(count > 0 ? count : 0));
    for_each(count, [&results, &fn](const SweepTask& task) {
      results[static_cast<std::size_t>(task.index)] = fn(task);
    });
    return results;
  }

 private:
  int threads_;
  std::uint64_t base_seed_;
};

}  // namespace pfar::core
