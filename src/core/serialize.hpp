#pragma once

#include <string>
#include <vector>

#include "trees/spanning_tree.hpp"

namespace pfar::core {

/// Serialized form of a planned tree set: a small line-oriented text
/// format so a control plane can compute trees once and distribute them
/// to router configuration agents.
///
///   pfar-trees 1
///   q <q>
///   n <vertices>
///   trees <count>
///   tree <root> <parent_0> ... <parent_{n-1}>     (repeated)
///
/// Parents use -1 at the root. Parsing validates structure (counts,
/// ranges, single root) and SpanningTree's own acyclicity check.
std::string serialize_trees(int q, const std::vector<trees::SpanningTree>& ts);

struct ParsedTrees {
  int q = 0;
  std::vector<trees::SpanningTree> trees;
};

/// Inverse of serialize_trees; throws std::invalid_argument with a
/// line-specific message on malformed input.
ParsedTrees parse_trees(const std::string& text);

}  // namespace pfar::core
