#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::core {

/// Serialized form of a planned tree set: a small line-oriented text
/// format so a control plane can compute trees once and distribute them
/// to router configuration agents.
///
///   pfar-trees 1
///   q <q>
///   n <vertices>
///   trees <count>
///   tree <root> <parent_0> ... <parent_{n-1}>     (repeated)
///
/// Parents use -1 at the root. Parsing validates structure (counts,
/// ranges, single root) and SpanningTree's own acyclicity check.
std::string serialize_trees(int q, const std::vector<trees::SpanningTree>& ts);

struct ParsedTrees {
  int q = 0;
  std::vector<trees::SpanningTree> trees;
};

/// Inverse of serialize_trees; throws std::invalid_argument with a
/// line-specific message on malformed input.
ParsedTrees parse_trees(const std::string& text);

/// Version tag of the plan-construction pipeline. Baked into every
/// serialized plan and into core::PlanCache keys: bump it whenever a
/// change makes previously built plans stale (tree construction order,
/// edge-id assignment, bandwidth solver semantics, ...). Old cache
/// entries are then rejected at parse time instead of being silently
/// reused.
extern const char kBuilderVersion[];

/// FNV-1a 64-bit hash, the checksum used by the plan format.
std::uint64_t fnv1a64(const std::string& data);

/// Serialized form of a complete AllreducePlan — topology edge list,
/// trees, and the Algorithm 1 bandwidth solution — so a plan can be
/// memoized on disk and reloaded without re-running any construction.
///
///   pfar-plan 1
///   builder <kBuilderVersion>
///   q <q>
///   solution <0|1|2>
///   starter <index>
///   n <vertices>
///   edges <count>
///   e <u> <v>                                  (repeated, edge-id order)
///   trees <count>
///   tree <root> <parent_0> ... <parent_{n-1}>  (repeated)
///   bw <aggregate> <bw_0> ... <bw_{t-1}>       (C99 %a hex floats)
///   checksum <fnv1a64 of everything above, lowercase hex>
///
/// Doubles round-trip exactly (hex floats); the checksum line rejects
/// truncated or corrupted payloads.
std::string serialize_plan(const AllreducePlan& plan, int starter);

struct ParsedPlan {
  AllreducePlan plan;
  int starter = 0;
};

/// Inverse of serialize_plan. Throws std::invalid_argument on malformed
/// input, checksum mismatch, or a builder-version tag that differs from
/// this binary's kBuilderVersion.
ParsedPlan parse_plan(const std::string& text);

}  // namespace pfar::core
