#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "util/thread_annotations.hpp"

namespace pfar::core {

/// Identity of a fully built plan: everything AllreducePlanner consumes.
/// Together with serialize.hpp's kBuilderVersion (baked into every
/// serialized payload and into the on-disk filename) this is the full
/// cache key — a builder-version bump invalidates old entries.
struct PlanKey {
  int q = 0;
  Solution solution = Solution::kLowDepth;
  int starter = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;
};

/// Memoizes fully built AllreducePlans (topology + trees + Algorithm 1
/// bandwidths) in memory and, optionally, on disk via the checksummed
/// serialize_plan format. Design sweeps construct each (q, solution,
/// starter) point exactly once per process — and, with a disk directory,
/// once per machine until the builder version is bumped.
///
/// Thread-safe: concurrent get_or_build calls for the same key build at
/// most once each (first insert wins; construction is deterministic, so a
/// lost race returns an identical plan).
class PlanCache {
 public:
  struct Stats {
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t misses = 0;   // full builds
    std::uint64_t stores = 0;   // files written to disk
  };

  /// Memory-only cache.
  PlanCache() = default;
  /// Cache backed by `disk_dir` (created on first store). Empty string
  /// means memory-only.
  explicit PlanCache(std::string disk_dir);

  /// Returns the cached plan for `key`, loading it from disk or building
  /// it (with `threads` construction workers) on a miss. Never returns
  /// null. Corrupted, truncated, or stale (wrong builder version) disk
  /// entries are ignored and rebuilt, never trusted.
  std::shared_ptr<const AllreducePlan> get_or_build(const PlanKey& key,
                                                    int threads = 0);

  /// Memory/disk lookup without building; nullptr on miss.
  std::shared_ptr<const AllreducePlan> lookup(const PlanKey& key);

  /// Drops every in-memory entry (disk files are kept).
  void clear();

  Stats stats() const;
  const std::string& disk_dir() const { return disk_dir_; }

  /// On-disk filename for a key (relative to disk_dir); embeds the
  /// builder version so stale entries are never even opened.
  static std::string file_name(const PlanKey& key);

  /// One on-disk entry as classified by scan_disk().
  struct DiskEntry {
    enum class State {
      kCurrent,  // a plan file named with this binary's builder version
      kStale,    // older builder version, or an orphaned .tmp writer file
      kForeign,  // not a cache file at all; never touched by the cache
    };
    std::string file;  // filename within disk_dir (no directory part)
    State state = State::kForeign;
  };

  /// Classifies every entry of disk_dir, sorted by filename — directory
  /// iteration order is filesystem-dependent, so the scan sorts before
  /// classifying to keep eviction/rebuild logs and purge order
  /// deterministic across machines and runs. Empty when memory-only or
  /// the directory does not exist.
  std::vector<DiskEntry> scan_disk() const;

  /// Deletes every kStale entry (in scan_disk order) and returns how many
  /// files were removed. kForeign files are never deleted.
  int purge_stale();

  /// Process-wide cache. Honors the PFAR_PLAN_CACHE environment variable
  /// (read once, at first use) as its disk directory.
  static PlanCache& process_cache();

 private:
  // Disk I/O happens outside mu_ (a slow filesystem must not serialize
  // memory hits); only the stats_ update inside store_to_disk takes it.
  std::shared_ptr<const AllreducePlan> load_from_disk(const PlanKey& key);
  void store_to_disk(const PlanKey& key, const AllreducePlan& plan)
      PFAR_EXCLUDES(mu_);

  mutable util::Mutex mu_;
  std::map<PlanKey, std::shared_ptr<const AllreducePlan>> memory_
      PFAR_GUARDED_BY(mu_);
  Stats stats_ PFAR_GUARDED_BY(mu_);
  std::string disk_dir_;  // immutable after construction
};

}  // namespace pfar::core
