#include "core/plan_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/serialize.hpp"
#include "util/contracts.hpp"

namespace pfar::core {

namespace fs = std::filesystem;

PlanCache::PlanCache(std::string disk_dir) : disk_dir_(std::move(disk_dir)) {}

std::string PlanCache::file_name(const PlanKey& key) {
  std::ostringstream os;
  os << "plan_q" << key.q << "_s" << static_cast<int>(key.solution) << "_st"
     << key.starter << "_" << kBuilderVersion << ".pfar";
  return os.str();
}

std::shared_ptr<const AllreducePlan> PlanCache::load_from_disk(
    const PlanKey& key) {
  if (disk_dir_.empty()) return nullptr;
  const fs::path path = fs::path(disk_dir_) / file_name(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return nullptr;
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    ParsedPlan parsed = parse_plan(buf.str());
    // The filename encodes the key, but never trust it: a renamed or
    // hand-edited file must not alias a different design point.
    if (parsed.plan.q() != key.q || parsed.plan.solution() != key.solution ||
        parsed.starter != key.starter) {
      return nullptr;
    }
    // Staleness contract: a disk hit that reaches this point must describe
    // exactly the requested design point (the guard above) and carry a
    // non-empty tree set -- parse_plan rejects empty plans, so a violation
    // here means the parser and cache disagree about the format.
    PFAR_ENSURE(parsed.plan.num_trees() > 0, key.q,
                static_cast<int>(key.solution), key.starter);
    return std::make_shared<const AllreducePlan>(std::move(parsed.plan));
  } catch (const std::invalid_argument&) {
    return nullptr;  // corrupted or stale: rebuild instead
  }
}

void PlanCache::store_to_disk(const PlanKey& key, const AllreducePlan& plan) {
  if (disk_dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(disk_dir_, ec);
  if (ec) return;
  const fs::path path = fs::path(disk_dir_) / file_name(key);
  // Write-then-rename so a crashed writer never leaves a torn file under
  // the final name (readers would reject it via checksum anyway).
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << serialize_plan(plan, key.starter);
    if (!out) return;
  }
  fs::rename(tmp, path, ec);
  if (!ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
  }
}

std::shared_ptr<const AllreducePlan> PlanCache::lookup(const PlanKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.memory_hits;
      return it->second;
    }
  }
  auto plan = load_from_disk(key);
  if (!plan) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_hits;
  auto [it, inserted] = memory_.emplace(key, std::move(plan));
  return it->second;
}

std::shared_ptr<const AllreducePlan> PlanCache::get_or_build(
    const PlanKey& key, int threads) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.memory_hits;
      return it->second;
    }
  }
  if (auto plan = load_from_disk(key)) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = memory_.emplace(key, std::move(plan));
    if (inserted) ++stats_.disk_hits;
    else ++stats_.memory_hits;  // lost a race to an identical entry
    return it->second;
  }

  // Build outside the lock: construction is deterministic, so a racing
  // duplicate build yields an identical plan and the first insert wins.
  auto built = std::make_shared<const AllreducePlan>(
      AllreducePlanner(key.q)
          .solution(key.solution)
          .starter_quadric(key.starter)
          .threads(threads)
          .build());
  bool fresh = false;
  std::shared_ptr<const AllreducePlan> result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = memory_.emplace(key, std::move(built));
    fresh = inserted;
    if (inserted) ++stats_.misses;
    else ++stats_.memory_hits;
    result = it->second;
  }
  if (fresh) store_to_disk(key, *result);
  return result;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  memory_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PlanCache& PlanCache::process_cache() {
  static PlanCache cache = [] {
    const char* dir = std::getenv("PFAR_PLAN_CACHE");
    return PlanCache(dir ? dir : "");
  }();
  return cache;
}

}  // namespace pfar::core
