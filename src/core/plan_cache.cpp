#include "core/plan_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/serialize.hpp"
#include "util/contracts.hpp"

namespace pfar::core {

namespace fs = std::filesystem;

PlanCache::PlanCache(std::string disk_dir) : disk_dir_(std::move(disk_dir)) {}

std::string PlanCache::file_name(const PlanKey& key) {
  PFAR_REQUIRE(key.q >= 2, key.q);
  std::ostringstream os;
  os << "plan_q" << key.q << "_s" << static_cast<int>(key.solution) << "_st"
     << key.starter << "_" << kBuilderVersion << ".pfar";
  return os.str();
}

std::vector<PlanCache::DiskEntry> PlanCache::scan_disk() const {
  std::vector<DiskEntry> entries;
  if (disk_dir_.empty()) return entries;
  std::error_code ec;
  fs::directory_iterator it(disk_dir_, ec);
  if (ec) return entries;
  for (const auto& de : it) {
    if (!de.is_regular_file(ec) || ec) continue;
    entries.push_back(DiskEntry{de.path().filename().string(),
                                DiskEntry::State::kForeign});
  }
  // Filesystem order is arbitrary (and differs across machines); sort
  // before classifying so every consumer sees one canonical order.
  std::sort(entries.begin(), entries.end(),
            [](const DiskEntry& a, const DiskEntry& b) {
              return a.file < b.file;
            });
  const std::string current_suffix =
      std::string("_") + kBuilderVersion + ".pfar";
  for (DiskEntry& e : entries) {
    const bool cache_name =
        e.file.rfind("plan_q", 0) == 0 &&
        (e.file.size() >= 5 &&
         e.file.compare(e.file.size() - 5, 5, ".pfar") == 0);
    const bool tmp_name =
        e.file.rfind("plan_q", 0) == 0 &&
        (e.file.size() >= 4 &&
         e.file.compare(e.file.size() - 4, 4, ".tmp") == 0);
    if (tmp_name) {
      e.state = DiskEntry::State::kStale;  // orphaned write-then-rename
    } else if (cache_name) {
      e.state = e.file.size() >= current_suffix.size() &&
                        e.file.compare(e.file.size() - current_suffix.size(),
                                       current_suffix.size(),
                                       current_suffix) == 0
                    ? DiskEntry::State::kCurrent
                    : DiskEntry::State::kStale;
    }
  }
  PFAR_ENSURE(std::is_sorted(entries.begin(), entries.end(),
                             [](const DiskEntry& a, const DiskEntry& b) {
                               return a.file < b.file;
                             }),
              entries.size());
  return entries;
}

// pfar-lint: allow(contract-coverage) best-effort janitor: a missing dir or an unlink race is a legitimate zero, not a violation
int PlanCache::purge_stale() {
  int removed = 0;
  for (const DiskEntry& e : scan_disk()) {
    if (e.state != DiskEntry::State::kStale) continue;
    std::error_code ec;
    if (fs::remove(fs::path(disk_dir_) / e.file, ec) && !ec) ++removed;
  }
  return removed;
}

std::shared_ptr<const AllreducePlan> PlanCache::load_from_disk(
    const PlanKey& key) {
  if (disk_dir_.empty()) return nullptr;
  const fs::path path = fs::path(disk_dir_) / file_name(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return nullptr;
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    ParsedPlan parsed = parse_plan(buf.str());
    // The filename encodes the key, but never trust it: a renamed or
    // hand-edited file must not alias a different design point.
    if (parsed.plan.q() != key.q || parsed.plan.solution() != key.solution ||
        parsed.starter != key.starter) {
      return nullptr;
    }
    // Staleness contract: a disk hit that reaches this point must describe
    // exactly the requested design point (the guard above) and carry a
    // non-empty tree set -- parse_plan rejects empty plans, so a violation
    // here means the parser and cache disagree about the format.
    PFAR_ENSURE(parsed.plan.num_trees() > 0, key.q,
                static_cast<int>(key.solution), key.starter);
    return std::make_shared<const AllreducePlan>(std::move(parsed.plan));
  } catch (const std::invalid_argument&) {
    return nullptr;  // corrupted or stale: rebuild instead
  }
}

void PlanCache::store_to_disk(const PlanKey& key, const AllreducePlan& plan) {
  // Only non-empty plans round-trip: parse_plan rejects empty tree sets, so
  // writing one would plant a permanently-unreadable cache entry.
  PFAR_REQUIRE(plan.num_trees() > 0, key.q, static_cast<int>(key.solution));
  if (disk_dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(disk_dir_, ec);
  if (ec) return;
  const fs::path path = fs::path(disk_dir_) / file_name(key);
  // Write-then-rename so a crashed writer never leaves a torn file under
  // the final name (readers would reject it via checksum anyway).
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << serialize_plan(plan, key.starter);
    if (!out) return;
  }
  fs::rename(tmp, path, ec);
  if (!ec) {
    util::MutexLock lock(mu_);
    ++stats_.stores;
  }
}

std::shared_ptr<const AllreducePlan> PlanCache::lookup(const PlanKey& key) {
  PFAR_REQUIRE(key.q >= 2, key.q);
  {
    util::MutexLock lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.memory_hits;
      return it->second;
    }
  }
  auto plan = load_from_disk(key);
  if (!plan) return nullptr;
  util::MutexLock lock(mu_);
  ++stats_.disk_hits;
  auto [it, inserted] = memory_.emplace(key, std::move(plan));
  return it->second;
}

std::shared_ptr<const AllreducePlan> PlanCache::get_or_build(
    const PlanKey& key, int threads) {
  PFAR_REQUIRE(key.q >= 2 && threads >= 0, key.q, threads);
  {
    util::MutexLock lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.memory_hits;
      return it->second;
    }
  }
  if (auto plan = load_from_disk(key)) {
    util::MutexLock lock(mu_);
    auto [it, inserted] = memory_.emplace(key, std::move(plan));
    if (inserted) ++stats_.disk_hits;
    else ++stats_.memory_hits;  // lost a race to an identical entry
    return it->second;
  }

  // Build outside the lock: construction is deterministic, so a racing
  // duplicate build yields an identical plan and the first insert wins.
  auto built = std::make_shared<const AllreducePlan>(
      AllreducePlanner(key.q)
          .solution(key.solution)
          .starter_quadric(key.starter)
          .threads(threads)
          .build());
  bool fresh = false;
  std::shared_ptr<const AllreducePlan> result;
  {
    util::MutexLock lock(mu_);
    auto [it, inserted] = memory_.emplace(key, std::move(built));
    fresh = inserted;
    if (inserted) ++stats_.misses;
    else ++stats_.memory_hits;
    result = it->second;
  }
  if (fresh) store_to_disk(key, *result);
  return result;
}

void PlanCache::clear() {
  util::MutexLock lock(mu_);
  memory_.clear();
  PFAR_ENSURE(memory_.empty());
}

// pfar-lint: allow(contract-coverage) lock-protected copy-out accessor; takes no inputs
PlanCache::Stats PlanCache::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

// pfar-lint: allow(contract-coverage) process-wide singleton accessor; its only input is the PFAR_PLAN_CACHE environment variable
PlanCache& PlanCache::process_cache() {
  static PlanCache cache = [] {
    // Read once, before any worker thread can exist (static init of the
    // process-wide cache).
    const char* dir = std::getenv("PFAR_PLAN_CACHE");  // NOLINT(concurrency-mt-unsafe)
    return PlanCache(dir ? dir : "");
  }();
  return cache;
}

}  // namespace pfar::core
