#include "core/resilience.hpp"

#include <algorithm>
#include <stdexcept>

#include "trees/packing.hpp"
#include "util/contracts.hpp"

namespace pfar::core {

std::shared_ptr<graph::Graph> remove_links(
    const graph::Graph& original, const std::vector<graph::Edge>& failed) {
  for (const auto& e : failed) {
    if (!original.has_edge(e.u, e.v)) {
      throw std::invalid_argument("remove_links: link not in topology");
    }
  }
  auto residual = std::make_shared<graph::Graph>(original.num_vertices());
  for (const auto& e : original.edges()) {
    const bool is_failed =
        std::find(failed.begin(), failed.end(), e) != failed.end();
    if (!is_failed) residual->add_edge(e.u, e.v);
  }
  residual->finalize();
  if (!residual->is_connected()) {
    throw std::runtime_error("remove_links: residual topology disconnected");
  }
  PFAR_ENSURE(residual->num_vertices() == original.num_vertices(),
              residual->num_vertices(), original.num_vertices());
  return residual;
}

std::vector<trees::SpanningTree> surviving_trees(
    const graph::Graph& original,
    const std::vector<trees::SpanningTree>& original_trees,
    const std::vector<graph::Edge>& failed) {
  (void)original;
  std::vector<trees::SpanningTree> out;
  for (const auto& tree : original_trees) {
    const auto edges = tree.edges();
    const bool hit = std::any_of(failed.begin(), failed.end(),
                                 [&](const graph::Edge& f) {
                                   return std::find(edges.begin(),
                                                    edges.end(),
                                                    f) != edges.end();
                                 });
    if (!hit) out.push_back(tree);
  }
  PFAR_ENSURE(out.size() <= original_trees.size(), out.size(),
              original_trees.size());
  return out;
}

DegradedPlan degrade_keep_surviving(
    const graph::Graph& original,
    const std::vector<trees::SpanningTree>& original_trees,
    const std::vector<graph::Edge>& failed) {
  DegradedPlan plan;
  plan.topology = remove_links(original, failed);
  plan.trees = surviving_trees(original, original_trees, failed);
  if (plan.trees.empty()) {
    throw std::runtime_error(
        "degrade_keep_surviving: no tree survived; use degrade_repack");
  }
  plan.bandwidths = model::compute_tree_bandwidths(*plan.topology,
                                                   plan.trees, 1.0);
  PFAR_ENSURE(plan.topology != nullptr && !plan.trees.empty(),
              plan.trees.size());
  return plan;
}

DegradedPlan degrade_repack(const graph::Graph& original,
                            const std::vector<graph::Edge>& failed,
                            int max_trees) {
  DegradedPlan plan;
  plan.topology = remove_links(original, failed);
  plan.trees = trees::greedy_tree_packing(*plan.topology, max_trees);
  if (plan.trees.empty()) {
    throw std::runtime_error("degrade_repack: no spanning tree found");
  }
  plan.bandwidths = model::compute_tree_bandwidths(*plan.topology,
                                                   plan.trees, 1.0);
  PFAR_ENSURE(plan.topology != nullptr && !plan.trees.empty(),
              plan.trees.size());
  return plan;
}

}  // namespace pfar::core
