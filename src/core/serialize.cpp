#include "core/serialize.hpp"

#include <sstream>
#include <stdexcept>

namespace pfar::core {

std::string serialize_trees(int q,
                            const std::vector<trees::SpanningTree>& ts) {
  if (ts.empty()) throw std::invalid_argument("serialize_trees: no trees");
  const int n = ts.front().num_vertices();
  std::ostringstream os;
  os << "pfar-trees 1\n";
  os << "q " << q << "\n";
  os << "n " << n << "\n";
  os << "trees " << ts.size() << "\n";
  for (const auto& t : ts) {
    if (t.num_vertices() != n) {
      throw std::invalid_argument("serialize_trees: inconsistent sizes");
    }
    os << "tree " << t.root();
    for (int v = 0; v < n; ++v) os << ' ' << t.parent(v);
    os << "\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("parse_trees: " + what);
}

}  // namespace

ParsedTrees parse_trees(const std::string& text) {
  std::istringstream is(text);
  std::string token;

  if (!(is >> token) || token != "pfar-trees") fail("missing magic");
  int version = 0;
  if (!(is >> version) || version != 1) fail("unsupported version");

  ParsedTrees out;
  int n = 0;
  std::size_t count = 0;
  if (!(is >> token) || token != "q" || !(is >> out.q) || out.q < 2) {
    fail("bad q line");
  }
  if (!(is >> token) || token != "n" || !(is >> n) || n < 2) {
    fail("bad n line");
  }
  if (!(is >> token) || token != "trees" || !(is >> count) || count == 0) {
    fail("bad trees line");
  }
  for (std::size_t t = 0; t < count; ++t) {
    int root = 0;
    if (!(is >> token) || token != "tree" || !(is >> root)) {
      fail("bad tree header at tree " + std::to_string(t));
    }
    std::vector<int> parent(n);
    for (int v = 0; v < n; ++v) {
      if (!(is >> parent[v])) fail("short parent list");
      if (parent[v] < -1 || parent[v] >= n) fail("parent out of range");
    }
    try {
      out.trees.emplace_back(root, std::move(parent));
    } catch (const std::exception& e) {
      fail(std::string("invalid tree: ") + e.what());
    }
  }
  if (is >> token) fail("trailing content");
  return out;
}

}  // namespace pfar::core
