#include "core/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "graph/graph.hpp"
#include "util/contracts.hpp"

namespace pfar::core {

const char kBuilderVersion[] = "pfar-builder-2";

// pfar-lint: allow(contract-coverage) total hash over arbitrary bytes; every input is valid
std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string serialize_trees(int q,
                            const std::vector<trees::SpanningTree>& ts) {
  if (ts.empty()) throw std::invalid_argument("serialize_trees: no trees");
  PFAR_REQUIRE(q >= 2, q);
  const int n = ts.front().num_vertices();
  std::ostringstream os;
  os << "pfar-trees 1\n";
  os << "q " << q << "\n";
  os << "n " << n << "\n";
  os << "trees " << ts.size() << "\n";
  for (const auto& t : ts) {
    if (t.num_vertices() != n) {
      throw std::invalid_argument("serialize_trees: inconsistent sizes");
    }
    os << "tree " << t.root();
    for (int v = 0; v < n; ++v) os << ' ' << t.parent(v);
    os << "\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("parse_trees: " + what);
}

}  // namespace

// pfar-lint: allow(contract-coverage) parser: rejecting malformed text via std::invalid_argument IS the contract (any byte string is a legal input)
ParsedTrees parse_trees(const std::string& text) {
  std::istringstream is(text);
  std::string token;

  if (!(is >> token) || token != "pfar-trees") fail("missing magic");
  int version = 0;
  if (!(is >> version) || version != 1) fail("unsupported version");

  ParsedTrees out;
  int n = 0;
  std::size_t count = 0;
  if (!(is >> token) || token != "q" || !(is >> out.q) || out.q < 2) {
    fail("bad q line");
  }
  if (!(is >> token) || token != "n" || !(is >> n) || n < 2) {
    fail("bad n line");
  }
  if (!(is >> token) || token != "trees" || !(is >> count) || count == 0) {
    fail("bad trees line");
  }
  for (std::size_t t = 0; t < count; ++t) {
    int root = 0;
    if (!(is >> token) || token != "tree" || !(is >> root)) {
      fail("bad tree header at tree " + std::to_string(t));
    }
    std::vector<int> parent(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      if (!(is >> parent[static_cast<std::size_t>(v)])) fail("short parent list");
      if (parent[static_cast<std::size_t>(v)] < -1 || parent[static_cast<std::size_t>(v)] >= n) fail("parent out of range");
    }
    try {
      out.trees.emplace_back(root, std::move(parent));
    } catch (const std::exception& e) {
      fail(std::string("invalid tree: ") + e.what());
    }
  }
  if (is >> token) fail("trailing content");
  return out;
}

/// Private-member accessor for AllreducePlan (befriended in planner.hpp)
/// so plans can be reconstructed without re-running any builder.
struct PlanIO {
  static std::string write(const AllreducePlan& plan, int starter);
  static ParsedPlan read(const std::string& text);
};

namespace {

[[noreturn]] void pfail(const std::string& what) {
  throw std::invalid_argument("parse_plan: " + what);
}

// C99 hex-float formatting: exact binary round-trip, locale-independent,
// single whitespace-free token.
void append_hex_double(std::ostringstream& os, double x) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", x);
  os << buf;
}

double read_hex_double(std::istringstream& is, const char* what) {
  std::string token;
  if (!(is >> token)) pfail(std::string("missing double in ") + what);
  char* end = nullptr;
  const double x = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    pfail(std::string("bad double in ") + what);
  }
  return x;
}

}  // namespace

std::string PlanIO::write(const AllreducePlan& plan, int starter) {
  // A plan must be fully built before it can be written: topology present,
  // at least one tree, and one bandwidth entry per tree.
  PFAR_REQUIRE(plan.topology_ != nullptr, plan.q_);
  PFAR_REQUIRE(!plan.trees_.empty(), plan.q_);
  PFAR_REQUIRE(plan.bandwidths_.per_tree.size() == plan.trees_.size(),
               plan.q_, plan.bandwidths_.per_tree.size(), plan.trees_.size());
  PFAR_REQUIRE(starter >= 0, starter);
  const graph::Graph& g = *plan.topology_;
  const int n = g.num_vertices();
  std::ostringstream os;
  os << "pfar-plan 1\n";
  os << "builder " << kBuilderVersion << "\n";
  os << "q " << plan.q_ << "\n";
  os << "solution " << static_cast<int>(plan.solution_) << "\n";
  os << "starter " << starter << "\n";
  os << "n " << n << "\n";
  os << "edges " << g.num_edges() << "\n";
  for (const auto& e : g.edges()) os << "e " << e.u << ' ' << e.v << "\n";
  os << "trees " << plan.trees_.size() << "\n";
  for (const auto& t : plan.trees_) {
    os << "tree " << t.root();
    for (int v = 0; v < n; ++v) os << ' ' << t.parent(v);
    os << "\n";
  }
  os << "bw ";
  append_hex_double(os, plan.bandwidths_.aggregate);
  for (double b : plan.bandwidths_.per_tree) {
    os << ' ';
    append_hex_double(os, b);
  }
  os << "\n";
  std::string body = os.str();
  std::ostringstream cs;
  cs << "checksum " << std::hex << fnv1a64(body) << "\n";
  return body + cs.str();
}

// pfar-lint: allow(contract-coverage) parser: rejecting malformed text via std::invalid_argument IS the contract (any byte string is a legal input)
ParsedPlan PlanIO::read(const std::string& text) {
  // Split off and verify the trailing checksum line first: any corruption
  // of the body (including truncation) is caught before field parsing.
  const auto pos = text.rfind("checksum ");
  if (pos == std::string::npos || (pos != 0 && text[pos - 1] != '\n')) {
    pfail("missing checksum line");
  }
  const std::string body = text.substr(0, pos);
  {
    const std::string tail = text.substr(pos);
    std::istringstream cs(tail);
    std::string token, hex;
    if (!(cs >> token >> hex)) pfail("bad checksum line");
    std::uint64_t stored = 0;
    try {
      std::size_t used = 0;
      stored = std::stoull(hex, &used, 16);
      if (used != hex.size()) pfail("bad checksum value");
    } catch (const std::invalid_argument&) {
      pfail("bad checksum value");
    } catch (const std::out_of_range&) {
      pfail("bad checksum value");
    }
    // Strict framing: the checksum line is the byte-exact final line of
    // the artifact. Anything after its newline -- including bytes that are
    // only whitespace -- means the file was appended to or damaged, and a
    // reader that shrugs it off would silently accept a tampered plan.
    if (tail != "checksum " + hex + "\n") {
      pfail("trailing content after checksum");
    }
    if (stored != fnv1a64(body)) pfail("checksum mismatch");
  }

  std::istringstream is(body);
  std::string token;
  if (!(is >> token) || token != "pfar-plan") pfail("missing magic");
  int version = 0;
  if (!(is >> version) || version != 1) pfail("unsupported version");
  if (!(is >> token) || token != "builder" || !(is >> token)) {
    pfail("bad builder line");
  }
  if (token != kBuilderVersion) {
    pfail("builder version mismatch (plan built by '" + token +
          "', this binary is '" + kBuilderVersion + "')");
  }

  ParsedPlan out;
  AllreducePlan& plan = out.plan;
  int solution = -1;
  int n = 0;
  int num_edges = 0;
  std::size_t num_trees = 0;
  if (!(is >> token) || token != "q" || !(is >> plan.q_) || plan.q_ < 2) {
    pfail("bad q line");
  }
  if (!(is >> token) || token != "solution" || !(is >> solution) ||
      solution < 0 || solution > 2) {
    pfail("bad solution line");
  }
  plan.solution_ = static_cast<Solution>(solution);
  if (!(is >> token) || token != "starter" || !(is >> out.starter) ||
      out.starter < 0) {
    pfail("bad starter line");
  }
  if (!(is >> token) || token != "n" || !(is >> n) || n < 2) {
    pfail("bad n line");
  }
  if (!(is >> token) || token != "edges" || !(is >> num_edges) ||
      num_edges < 1) {
    pfail("bad edges line");
  }
  auto g = std::make_shared<graph::Graph>(n);
  for (int i = 0; i < num_edges; ++i) {
    int u = 0, v = 0;
    if (!(is >> token) || token != "e" || !(is >> u >> v)) {
      pfail("bad edge at index " + std::to_string(i));
    }
    if (u < 0 || u >= n || v < 0 || v >= n || u == v) {
      pfail("edge endpoint out of range");
    }
    g->add_edge(u, v);
  }
  try {
    g->finalize();
  } catch (const std::exception& e) {
    pfail(std::string("invalid topology: ") + e.what());
  }
  if (!(is >> token) || token != "trees" || !(is >> num_trees) ||
      num_trees == 0) {
    pfail("bad trees line");
  }
  for (std::size_t t = 0; t < num_trees; ++t) {
    int root = 0;
    if (!(is >> token) || token != "tree" || !(is >> root)) {
      pfail("bad tree header at tree " + std::to_string(t));
    }
    std::vector<int> parent(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      if (!(is >> parent[static_cast<std::size_t>(v)])) pfail("short parent list");
      if (parent[static_cast<std::size_t>(v)] < -1 || parent[static_cast<std::size_t>(v)] >= n) pfail("parent out of range");
      if (parent[static_cast<std::size_t>(v)] >= 0 && !g->has_edge(v, parent[static_cast<std::size_t>(v)])) {
        pfail("tree edge not in topology");
      }
    }
    try {
      plan.trees_.emplace_back(root, std::move(parent));
    } catch (const std::exception& e) {
      pfail(std::string("invalid tree: ") + e.what());
    }
  }
  if (!(is >> token) || token != "bw") pfail("bad bw line");
  plan.bandwidths_.aggregate = read_hex_double(is, "bw aggregate");
  plan.bandwidths_.per_tree.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    plan.bandwidths_.per_tree.push_back(read_hex_double(is, "bw entry"));
  }
  if (is >> token) pfail("trailing content");

  plan.topology_ = g;
  plan.owner_ = g;
  return out;
}

std::string serialize_plan(const AllreducePlan& plan, int starter) {
  return PlanIO::write(plan, starter);
}

ParsedPlan parse_plan(const std::string& text) { return PlanIO::read(text); }

}  // namespace pfar::core
