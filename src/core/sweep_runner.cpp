#include "core/sweep_runner.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace pfar::core {

SweepRunner::SweepRunner(int threads, std::uint64_t base_seed)
    : threads_(threads <= 0 ? util::default_threads() : threads),
      base_seed_(base_seed) {}

// pfar-lint: allow(contract-coverage) splitmix64 is total; every (seed, index) pair is a valid input
std::uint64_t SweepRunner::task_seed(std::uint64_t base_seed, int index) {
  // splitmix64 of the index'th point after the base seed.
  std::uint64_t z =
      base_seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void SweepRunner::for_each(int count,
                           const std::function<void(const SweepTask&)>& fn) {
  PFAR_REQUIRE(static_cast<bool>(fn), count, threads_);
  if (count <= 0) return;
  if (threads_ == 1 || count == 1) {
    for (int i = 0; i < count; ++i) {
      fn(SweepTask{i, task_seed(base_seed_, i)});
    }
    return;
  }
  util::FirstError error;
  {
    util::ThreadPool pool(std::min(threads_, count));
    for (int i = 0; i < count; ++i) {
      pool.submit([this, i, &fn, &error] {
        try {
          fn(SweepTask{i, task_seed(base_seed_, i)});
        } catch (...) {
          error.capture();
        }
      });
    }
    pool.wait_idle();
  }
  error.rethrow_if_set();
}

}  // namespace pfar::core
