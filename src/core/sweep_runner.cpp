#include "core/sweep_runner.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

#include "util/thread_pool.hpp"

namespace pfar::core {

SweepRunner::SweepRunner(int threads, std::uint64_t base_seed)
    : threads_(threads <= 0 ? util::default_threads() : threads),
      base_seed_(base_seed) {}

std::uint64_t SweepRunner::task_seed(std::uint64_t base_seed, int index) {
  // splitmix64 of the index'th point after the base seed.
  std::uint64_t z =
      base_seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void SweepRunner::for_each(int count,
                           const std::function<void(const SweepTask&)>& fn) {
  if (count <= 0) return;
  if (threads_ == 1 || count == 1) {
    for (int i = 0; i < count; ++i) {
      fn(SweepTask{i, task_seed(base_seed_, i)});
    }
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  {
    util::ThreadPool pool(std::min(threads_, count));
    for (int i = 0; i < count; ++i) {
      pool.submit([this, i, &fn, &error_mutex, &first_error] {
        try {
          fn(SweepTask{i, task_seed(base_seed_, i)});
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pfar::core
