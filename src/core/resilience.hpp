#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "model/congestion_model.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::core {

/// Degraded-mode operation after link failures. The paper's constructions
/// assume a healthy ER_q; when links fail an operator has two options,
/// both provided here:
///  * keep the surviving subset of the original trees (zero replanning
///    cost, bandwidth drops by one link-share per lost tree), or
///  * repack spanning trees on the residual topology greedily (recovers
///    more bandwidth, loses the paper's congestion guarantees).
struct DegradedPlan {
  /// Residual topology (original vertices, failed links removed).
  std::shared_ptr<graph::Graph> topology;
  std::vector<trees::SpanningTree> trees;
  model::TreeBandwidths bandwidths;
};

/// Copy of `original` without the `failed` links. Throws if a failed link
/// does not exist or the residual graph is disconnected (an ER_q survives
/// far more failures than tree counts ever need — diameter-2, min degree q).
std::shared_ptr<graph::Graph> remove_links(const graph::Graph& original,
                                           const std::vector<graph::Edge>& failed);

/// The subset of `original_trees` untouched by the failures.
std::vector<trees::SpanningTree> surviving_trees(
    const graph::Graph& original,
    const std::vector<trees::SpanningTree>& original_trees,
    const std::vector<graph::Edge>& failed);

/// Degraded plan keeping surviving original trees.
DegradedPlan degrade_keep_surviving(
    const graph::Graph& original,
    const std::vector<trees::SpanningTree>& original_trees,
    const std::vector<graph::Edge>& failed);

/// Degraded plan repacking trees greedily on the residual topology, with
/// at most `max_trees` trees (-1 = as many as found).
DegradedPlan degrade_repack(const graph::Graph& original,
                            const std::vector<graph::Edge>& failed,
                            int max_trees = -1);

}  // namespace pfar::core
