#include "core/planner.hpp"

#include <stdexcept>

#include "obsv/recorder.hpp"
#include "singer/disjoint.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace pfar::core {

// pfar-lint: allow(contract-coverage) pure query over an already-validated plan; zero is the legitimate empty answer
int AllreducePlan::max_depth() const {
  int d = 0;
  for (const auto& t : trees_) d = std::max(d, t.depth());
  return d;
}

int AllreducePlan::max_congestion() const {
  return trees::max_congestion(*topology_, trees_);
}

double AllreducePlan::optimal_bandwidth() const {
  return model::optimal_polarfly_bandwidth(q_, 1.0);
}

std::vector<long long> AllreducePlan::split(long long m) const {
  return model::optimal_split(m, bandwidths_);
}

collectives::InNetworkResult AllreducePlan::simulate(
    long long m, const simnet::SimConfig& config) const {
  return collectives::run_innetwork_allreduce(*topology_, trees_, m, config);
}

// pfar-lint: allow(contract-coverage) thin delegation; simnet::link_disjoint_tree_groups carries the contracts
std::vector<std::vector<int>> AllreducePlan::link_disjoint_tree_groups() const {
  return simnet::link_disjoint_tree_groups(*topology_,
                                           collectives::to_embeddings(trees_));
}

// pfar-lint: allow(contract-coverage) q is validated via the std::invalid_argument throw, which callers rely on to probe prime powers
AllreducePlanner::AllreducePlanner(int q) : q_(q) {
  if (!util::is_prime_power(q)) {
    throw std::invalid_argument("AllreducePlanner: q must be a prime power");
  }
}

AllreducePlan AllreducePlanner::build() const {
  AllreducePlan plan;
  plan.q_ = q_;
  plan.solution_ = solution_;

  // Phase timers land in the recorder's metrics only (wall-clock values
  // must never enter a trace, which is pinned byte-deterministic).
  obsv::Metrics* pm = obsv::kTraceCompiled && observer_ != nullptr
                          ? &observer_->metrics
                          : nullptr;

  switch (solution_) {
    case Solution::kLowDepth: {
      std::shared_ptr<polarfly::PolarFly> pf;
      {
        obsv::ScopedTimerMs timer(pm, "planner.topology_ms");
        pf = std::make_shared<polarfly::PolarFly>(q_);
      }
      {
        obsv::ScopedTimerMs timer(pm, "planner.trees_ms");
        if (q_ % 2 == 1) {
          const auto layout = polarfly::build_layout(*pf, starter_);
          plan.trees_ = trees::build_low_depth_trees(*pf, layout, threads_);
        } else {
          // Even q: the paper's unpublished analogue, reconstructed in
          // build_low_depth_trees_even (q-1 trees, depth <= 3,
          // congestion 2).
          plan.trees_ =
              trees::build_low_depth_trees_even(*pf, starter_, threads_);
        }
      }
      plan.topology_ =
          std::shared_ptr<const graph::Graph>(pf, &pf->graph());
      plan.owner_ = pf;
      break;
    }
    case Solution::kSingleTree: {
      std::shared_ptr<polarfly::PolarFly> pf;
      {
        obsv::ScopedTimerMs timer(pm, "planner.topology_ms");
        pf = std::make_shared<polarfly::PolarFly>(q_);
      }
      {
        obsv::ScopedTimerMs timer(pm, "planner.trees_ms");
        plan.trees_.push_back(collectives::bfs_tree(pf->graph(), 0));
      }
      plan.topology_ =
          std::shared_ptr<const graph::Graph>(pf, &pf->graph());
      plan.owner_ = pf;
      break;
    }
    case Solution::kEdgeDisjoint: {
      std::shared_ptr<singer::SingerGraph> sg;
      {
        obsv::ScopedTimerMs timer(pm, "planner.topology_ms");
        sg = std::make_shared<singer::SingerGraph>(q_);
      }
      {
        obsv::ScopedTimerMs timer(pm, "planner.trees_ms");
        const auto set = singer::find_disjoint_hamiltonians(
            sg->difference_set(), threads_);
        plan.trees_ = trees::hamiltonian_trees(set, threads_);
      }
      plan.topology_ =
          std::shared_ptr<const graph::Graph>(sg, &sg->graph());
      plan.owner_ = sg;
      break;
    }
  }
  {
    obsv::ScopedTimerMs timer(pm, "planner.bandwidths_ms");
    plan.bandwidths_ =
        model::compute_tree_bandwidths(*plan.topology_, plan.trees_, 1.0);
  }

  // Every built plan ships the same shape regardless of solution: a
  // topology on q^2+q+1 vertices, >= 1 tree and one bandwidth per tree.
  PFAR_ENSURE(plan.topology_->num_vertices() == q_ * q_ + q_ + 1, q_,
              plan.topology_->num_vertices());
  PFAR_ENSURE(!plan.trees_.empty(), q_, static_cast<int>(solution_));
  PFAR_ENSURE(plan.bandwidths_.per_tree.size() == plan.trees_.size(), q_,
              plan.bandwidths_.per_tree.size(), plan.trees_.size());
#if PFAR_AUDIT_ENABLED
  // Solution-specific guarantees the rest of the stack leans on:
  // edge-disjoint plans must actually be edge-disjoint (Cor. 7.15/7.16),
  // and every tree must span the topology.
  for (const auto& t : plan.trees_) {
    PFAR_INVARIANT(t.is_spanning_tree_of(*plan.topology_), q_, t.root());
  }
  if (solution_ == Solution::kEdgeDisjoint) {
    PFAR_INVARIANT(trees::edge_disjoint(*plan.topology_, plan.trees_), q_,
                   plan.trees_.size());
  }
#endif
  return plan;
}

// pfar-lint: allow(contract-coverage) total switch over the enum; the "?" fallthrough is the documented answer for out-of-range values
std::string to_string(Solution s) {
  switch (s) {
    case Solution::kLowDepth: return "low-depth (Alg. 3)";
    case Solution::kEdgeDisjoint: return "edge-disjoint Hamiltonian";
    case Solution::kSingleTree: return "single BFS tree";
  }
  return "?";
}

}  // namespace pfar::core
