#pragma once

#include <memory>
#include <string>
#include <vector>

#include "collectives/innetwork.hpp"
#include "model/congestion_model.hpp"
#include "polarfly/erq.hpp"
#include "polarfly/layout.hpp"
#include "singer/singer_graph.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::obsv {
struct Recorder;
}

namespace pfar::core {

/// Which of the paper's two Allreduce solutions to build (Section 7).
enum class Solution {
  /// Algorithm 3: q trees, depth <= 3, congestion 2 — lowest latency.
  kLowDepth,
  /// Section 7.2: floor((q+1)/2) edge-disjoint Hamiltonian-path trees —
  /// zero congestion, one VC per link, optimal bandwidth for odd q.
  kEdgeDisjoint,
  /// Single BFS tree (SHARP-like baseline, bandwidth capped at one link).
  kSingleTree,
};

/// A fully planned in-network Allreduce on PolarFly: topology, spanning
/// trees, analytic performance (Algorithm 1 / Theorem 5.1), and an
/// optional cycle-level simulation. This is the library's front door.
class AllreducePlan {
 public:
  const graph::Graph& topology() const { return *topology_; }
  const std::vector<trees::SpanningTree>& trees() const { return trees_; }
  const model::TreeBandwidths& bandwidths() const { return bandwidths_; }

  int q() const { return q_; }
  Solution solution() const { return solution_; }
  int num_nodes() const { return topology_->num_vertices(); }
  int num_trees() const { return static_cast<int>(trees_.size()); }
  int max_depth() const;
  int max_congestion() const;

  /// Aggregate Allreduce bandwidth under Algorithm 1 (per unit link
  /// bandwidth B = 1).
  double aggregate_bandwidth() const { return bandwidths_.aggregate; }
  /// Optimal bandwidth (q+1)/2 from Corollary 7.1, for normalization.
  double optimal_bandwidth() const;

  /// Theorem 5.1 optimal split of an m-element vector.
  std::vector<long long> split(long long m) const;

  /// Partition of this plan's trees into link-disjoint groups (tree indices;
  /// simnet::link_disjoint_tree_groups). Edge-disjoint Hamiltonian plans
  /// yield one singleton group per tree; low-depth plans (congestion 2)
  /// typically collapse into fewer, larger groups. These groups are the
  /// allocation unit of both intra-run sharding and the multi-tenant
  /// service scheduler (docs/service_layer.md).
  std::vector<std::vector<int>> link_disjoint_tree_groups() const;

  /// Cycle-level simulation of an m-element Allreduce on this plan.
  collectives::InNetworkResult simulate(
      long long m, const simnet::SimConfig& config = {}) const;

 private:
  friend class AllreducePlanner;
  friend struct PlanIO;  // serialize_plan / parse_plan (core/serialize)
  int q_ = 0;
  Solution solution_ = Solution::kLowDepth;
  std::shared_ptr<const graph::Graph> topology_;  // owns via aliasing
  std::shared_ptr<const void> owner_;  // keeps PolarFly/SingerGraph alive
  std::vector<trees::SpanningTree> trees_;
  model::TreeBandwidths bandwidths_;
};

/// Builder for AllreducePlan.
///
///   auto plan = AllreducePlanner(11).solution(Solution::kEdgeDisjoint)
///                   .build();
///   auto result = plan.simulate(100000);
class AllreducePlanner {
 public:
  explicit AllreducePlanner(int q);

  AllreducePlanner& solution(Solution s) {
    solution_ = s;
    return *this;
  }
  /// Starter quadric index for the low-depth layout (default 0).
  AllreducePlanner& starter_quadric(int index) {
    starter_ = index;
    return *this;
  }
  /// Worker threads for the parallel construction phases (per-tree
  /// Algorithm 3 levels, Hamiltonian path materialization). <= 0 means
  /// util::default_threads(); the result is identical for every value.
  AllreducePlanner& threads(int t) {
    threads_ = t;
    return *this;
  }
  /// Observability sink: build() records per-phase wall-clock timers
  /// (planner.*_ms histograms) into the recorder's metrics. Null (the
  /// default) records nothing; plans are identical either way. Ignored
  /// entirely in a PFAR_TRACE=off build.
  AllreducePlanner& observer(obsv::Recorder* rec) {
    observer_ = rec;
    return *this;
  }

  AllreducePlan build() const;

 private:
  int q_;
  Solution solution_ = Solution::kLowDepth;
  int starter_ = 0;
  int threads_ = 0;
  obsv::Recorder* observer_ = nullptr;
};

/// Human-readable name of a solution.
std::string to_string(Solution s);

}  // namespace pfar::core
