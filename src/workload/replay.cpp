#include "workload/replay.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "collectives/bucket_schedule.hpp"
#include "collectives/innetwork.hpp"
#include "model/congestion_model.hpp"
#include "obsv/recorder.hpp"
#include "service/service.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace pfar::workload {
namespace {

/// Cost of reducing one bucket size, memoized: the replay issues the same
/// bucket sizes every iteration and simulator runs are pure functions of
/// (topology, trees, m, config).
struct CommCost {
  long long cycles = 0;
  long long flits = 0;
  long long replayed = 0;  // resilient-driver replays (faulty runs only)
  bool correct = true;
};

long long sum_flits(const simnet::SimResult& sim) {
  return std::accumulate(sim.link_flits.begin(), sim.link_flits.end(), 0LL);
}

/// One collective in flight: [start, finish) on some lane.
struct CommInterval {
  long long start = 0;
  long long finish = 0;
};

/// Union length of a set of (possibly overlapping, unsorted) intervals.
long long union_length(std::vector<CommInterval> intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const CommInterval& a, const CommInterval& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.finish < b.finish;
            });
  long long total = 0;
  long long cover_end = 0;
  bool open = false;
  for (const CommInterval& iv : intervals) {
    if (iv.finish <= iv.start) continue;  // zero-length: degenerate bucket
    if (!open || iv.start > cover_end) {
      total += iv.finish - iv.start;
      cover_end = iv.finish;
      open = true;
    } else if (iv.finish > cover_end) {
      total += iv.finish - cover_end;
      cover_end = iv.finish;
    }
  }
  PFAR_ENSURE(total >= 0, total);
  return total;
}

/// Shared per-iteration bookkeeping: folds one iteration's comm intervals
/// into its IterationRecord and the epoch totals.
void close_iteration(IterationRecord* iter, ReplayResult* out,
                     std::vector<CommInterval> intervals) {
  PFAR_REQUIRE(iter->compute_done >= iter->start, iter->start,
               iter->compute_done);
  iter->finish = std::max(iter->compute_done, iter->comm_done);
  iter->comm_wall_cycles = union_length(std::move(intervals));
  iter->exposed_comm_cycles =
      std::max(0LL, iter->comm_done - iter->compute_done);
  out->compute_cycles += iter->compute_done - iter->start;
  out->comm_wall_cycles += iter->comm_wall_cycles;
  out->comm_busy_cycles += iter->comm_busy_cycles;
  out->exposed_comm_cycles += iter->exposed_comm_cycles;
  out->iterations.push_back(*iter);
}

}  // namespace

std::vector<int> node_multipliers(const SkewSpec& skew, int num_nodes) {
  PFAR_REQUIRE(num_nodes >= 1, num_nodes);
  PFAR_REQUIRE(skew.skew_permille >= 0, skew.skew_permille);
  PFAR_REQUIRE(skew.straggler_permille >= 1000, skew.straggler_permille);
  PFAR_REQUIRE(skew.straggler_nodes >= 0 && skew.straggler_nodes <= num_nodes,
               skew.straggler_nodes, num_nodes);
  std::vector<int> mult(static_cast<std::size_t>(num_nodes), 1000);
  util::Rng jitter_rng(skew.seed);
  if (skew.skew_permille > 0) {
    for (int& m : mult) {
      m = 1000 + static_cast<int>(jitter_rng.next_below(
                     static_cast<std::uint64_t>(skew.skew_permille) + 1));
    }
  }
  if (skew.straggler_nodes > 0 && skew.straggler_permille > 1000) {
    // Distinct straggler picks from an independent stream so toggling the
    // jitter does not reshuffle which nodes straggle.
    util::Rng pick_rng(skew.seed ^ 0xdeadbeefcafef00dULL);
    std::vector<int> pool(static_cast<std::size_t>(num_nodes));
    std::iota(pool.begin(), pool.end(), 0);
    for (int i = 0; i < skew.straggler_nodes; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          static_cast<std::size_t>(pick_rng.next_below(
              static_cast<std::uint64_t>(num_nodes - i)));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
      const std::size_t node = static_cast<std::size_t>(
          pool[static_cast<std::size_t>(i)]);
      mult[node] = std::max(mult[node], skew.straggler_permille);
    }
  }
  PFAR_ENSURE(static_cast<int>(mult.size()) == num_nodes, mult.size());
  return mult;
}

ReplayResult replay_training(const core::AllreducePlan& plan,
                             const ReplayConfig& config) {
  PFAR_REQUIRE(!config.trace.layers.empty(), config.trace.layers.size());
  PFAR_REQUIRE(config.trace.iterations >= 1, config.trace.iterations);
  // Fault scripts and the adaptive controller ride the single-job pipeline
  // (run_resilient_allreduce / src/adapt); the service backend rejects
  // them instead of silently mis-modeling recovery inside lane runs.
  PFAR_REQUIRE(config.mode == CommMode::kSingle || config.sim.faults.empty());
  PFAR_REQUIRE(config.mode == CommMode::kSingle || !config.adaptive);

  const graph::Graph& topology = plan.topology();
  const std::vector<trees::SpanningTree>& trees = plan.trees();
  ReplayResult out;
  out.buckets = bucketize(config.trace, config.min_bucket_elements);

  const std::vector<int> mult =
      node_multipliers(config.skew, plan.num_nodes());
  const auto slow_it = std::max_element(mult.begin(), mult.end());
  out.slow_permille = *slow_it;
  out.slowest_node = static_cast<int>(slow_it - mult.begin());
  const auto scale = [&](long long cycles) {
    return cycles * out.slow_permille / 1000;
  };
  const long long compute_total = scale(config.trace.total_compute_cycles());

  obsv::Recorder* recorder = nullptr;
  if constexpr (obsv::kTraceCompiled) {
    recorder = config.sim.recorder;
    if (recorder != nullptr) {
      recorder->trace.name_track(obsv::kTrackWorkload, "training replay");
      recorder->metrics.hwm("workload.buckets_per_iteration",
                            static_cast<long long>(out.buckets.size()));
      recorder->metrics.hwm("workload.slow_permille", out.slow_permille);
    }
  }

  // --- Communication backends ----------------------------------------------

  // kSingle: memoized per-bucket-size cost on the full tree set; under
  // faults the resilient driver replays lost chunks, under `adaptive` the
  // plan is probed and adapted once per epoch.
  std::map<long long, CommCost> cost_cache;
  std::vector<trees::SpanningTree> adapted_trees;
  model::TreeBandwidths adapted_bw;
  simnet::SimConfig inner = config.sim;
  inner.recorder = nullptr;  // inner runs own private timelines
  if (config.mode == CommMode::kSingle && config.adaptive) {
    // Probe the live background once (serial, uninstrumented — mirroring
    // adapt::run_adaptive_allreduce) and keep the adapted plan for every
    // bucket of the epoch.
    simnet::SimConfig probe_config = inner;
    probe_config.shard_threads = 1;
    const auto probe = collectives::run_innetwork_allreduce(
        topology, trees, config.adapt_ctrl.probe_elements, probe_config);
    const auto congestion = adapt::CongestionMap::from_sim_result(
        topology, probe.sim, config.sim.link_bandwidth);
    auto adapted = adapt::adapt_plan(topology, trees, congestion,
                                     config.adapt_ctrl);
    out.probe_cycles = probe.sim.cycles;
    out.total_flits += sum_flits(probe.sim);
    adapted_trees = std::move(adapted.trees);
    adapted_bw = std::move(adapted.bandwidths);
    if constexpr (obsv::kTraceCompiled) {
      if (recorder != nullptr) {
        recorder->metrics.add("workload.probe_cycles", out.probe_cycles);
        recorder->trace.instant(
            0, recorder->trace.intern("workload adapt"), obsv::kTrackWorkload,
            {"hot_links", static_cast<long long>(adapted.hot_links.size())},
            {"replanned", static_cast<long long>(adapted.replanned.size())});
      }
    }
  }
  const auto single_cost = [&](long long elements) {
    const auto hit = cost_cache.find(elements);
    if (hit != cost_cache.end()) return hit->second;
    CommCost cost;
    if (elements == 0) {
      cost_cache.emplace(elements, cost);
      return cost;
    }
    if (!config.sim.faults.empty()) {
      const auto recovery = collectives::run_resilient_allreduce(
          topology, trees, elements, inner, config.resilience);
      cost.cycles = recovery.total_cycles;
      cost.flits = sum_flits(recovery.final_sim);
      cost.replayed = recovery.chunks_replayed;
      cost.correct = recovery.recovered && recovery.values_correct;
    } else if (config.adaptive) {
      const auto run = collectives::run_innetwork_allreduce_split(
          topology, adapted_trees, model::optimal_split(elements, adapted_bw),
          inner);
      cost.cycles = run.sim.cycles;
      cost.flits = sum_flits(run.sim);
      cost.correct = run.sim.values_correct;
    } else {
      const auto run = collectives::run_bucketed_allreduce(
          topology, trees, {elements}, inner,
          collectives::BucketStrategy::kFused);
      cost.cycles = run.total_cycles;
      cost.flits = run.total_flits;
      cost.correct = run.correct;
    }
    PFAR_ENSURE(cost.cycles > 0 && cost.flits >= 0, cost.cycles, cost.flits);
    cost_cache.emplace(elements, cost);
    return cost;
  };

  // kService: one persistent service whose virtual clock IS the training
  // timeline; buckets become jobs with arrival = release cycle.
  std::unique_ptr<service::AllreduceService> svc;
  if (config.mode == CommMode::kService) {
    service::ServiceConfig svc_config;
    svc_config.policy = config.policy;
    svc_config.sim = config.sim;  // recorder = service lane spans
    // Every bucket of an iteration must be admissible at once.
    svc_config.max_queue_jobs = std::max(
        1024, static_cast<int>(out.buckets.size()) * 2);
    svc = std::make_unique<service::AllreduceService>(plan, svc_config);
  }

  // --- The replay loop ------------------------------------------------------

  long long clock = 0;            // global virtual time (BSP barriers)
  long long lane_free = out.probe_cycles;  // kSingle comm pipeline
  for (int k = 0; k < config.trace.iterations; ++k) {
    IterationRecord iter;
    iter.start = clock;
    iter.compute_done = clock + compute_total;
    std::vector<CommInterval> intervals;

    if (config.mode == CommMode::kService) {
      std::vector<int> job_ids;
      job_ids.reserve(out.buckets.size());
      for (const Bucket& bucket : out.buckets) {
        service::JobSpec spec;
        spec.elements = bucket.elements;
        spec.arrival_cycle = config.overlap
                                 ? iter.start + scale(bucket.ready_offset)
                                 : iter.compute_done;
        job_ids.push_back(svc->submit(spec));
      }
      svc->drain();
      // One interval per distinct dispatched batch (coalesced jobs share
      // one (lane, start, finish) triple and must not double-count).
      std::vector<std::pair<std::pair<int, long long>, long long>> batches;
      for (int id : job_ids) {
        const service::JobRecord& record =
            svc->records()[static_cast<std::size_t>(id)];
        PFAR_ENSURE(record.completed && !record.rejected, id);
        iter.comm_done = std::max(iter.comm_done, record.finish_cycle);
        if (record.lane < 0) continue;  // degenerate: no fabric touched
        batches.push_back({{record.lane, record.start_cycle},
                           record.finish_cycle});
      }
      std::sort(batches.begin(), batches.end());
      batches.erase(std::unique(batches.begin(), batches.end()),
                    batches.end());
      for (const auto& [lane_start, finish] : batches) {
        intervals.push_back(CommInterval{lane_start.second, finish});
        iter.comm_busy_cycles += finish - lane_start.second;
      }
    } else {
      lane_free = std::max(lane_free, iter.start);
      for (const Bucket& bucket : out.buckets) {
        const long long release = config.overlap
                                      ? iter.start + scale(bucket.ready_offset)
                                      : iter.compute_done;
        const CommCost cost = single_cost(bucket.elements);
        if (cost.cycles == 0) continue;  // zero-element bucket
        const long long start = std::max(release, lane_free);
        lane_free = start + cost.cycles;
        intervals.push_back(CommInterval{start, lane_free});
        iter.comm_busy_cycles += cost.cycles;
        iter.comm_done = std::max(iter.comm_done, lane_free);
        out.total_flits += cost.flits;
        out.replayed_elements += cost.replayed;
        out.values_correct = out.values_correct && cost.correct;
      }
    }

    iter.comm_done = std::max(iter.comm_done, iter.start);
    close_iteration(&iter, &out, intervals);
    clock = iter.finish;

    if constexpr (obsv::kTraceCompiled) {
      if (recorder != nullptr) {
        recorder->metrics.add("workload.iterations");
        recorder->metrics.add("workload.buckets",
                              static_cast<long long>(out.buckets.size()));
        recorder->metrics.add("workload.compute_cycles",
                              iter.compute_done - iter.start);
        recorder->metrics.add("workload.comm_wall_cycles",
                              iter.comm_wall_cycles);
        recorder->metrics.add("workload.exposed_comm_cycles",
                              iter.exposed_comm_cycles);
        recorder->trace.complete(
            iter.start, iter.compute_done - iter.start,
            recorder->trace.intern("iter " + std::to_string(k) + " compute"),
            obsv::kTrackWorkload, {"iteration", k},
            {"slow_permille", out.slow_permille});
        if (iter.comm_wall_cycles > 0) {
          recorder->trace.complete(
              iter.start, iter.comm_done - iter.start,
              recorder->trace.intern("iter " + std::to_string(k) + " comm"),
              obsv::kTrackWorkload,
              {"buckets", static_cast<long long>(out.buckets.size())},
              {"exposed", iter.exposed_comm_cycles});
        }
        recorder->trace.instant(
            iter.finish, recorder->trace.intern("barrier"),
            obsv::kTrackWorkload, {"iteration", k});
      }
    }
  }

  if (config.mode == CommMode::kService) {
    const service::ServiceStats stats = svc->stats();
    out.total_flits += stats.total_flits;
    out.replayed_elements += stats.replayed_elements;
    out.values_correct = out.values_correct && stats.values_correct;
  }
  out.time_to_epoch = clock;
  out.overlap_efficiency =
      out.comm_wall_cycles > 0
          ? 1.0 - static_cast<double>(out.exposed_comm_cycles) /
                      static_cast<double>(out.comm_wall_cycles)
          : 1.0;
  if constexpr (obsv::kTraceCompiled) {
    if (recorder != nullptr) {
      recorder->metrics.hwm("workload.time_to_epoch", out.time_to_epoch);
    }
  }
  PFAR_ENSURE(out.time_to_epoch >= compute_total * config.trace.iterations,
              out.time_to_epoch, compute_total);
  PFAR_ENSURE(out.exposed_comm_cycles <= out.comm_wall_cycles,
              out.exposed_comm_cycles, out.comm_wall_cycles);
  PFAR_ENSURE(out.overlap_efficiency >= 0.0 && out.overlap_efficiency <= 1.0,
              out.overlap_efficiency);
  return out;
}

}  // namespace pfar::workload
