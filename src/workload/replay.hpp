#pragma once

#include <cstdint>
#include <vector>

#include "adapt/controller.hpp"
#include "collectives/resilient.hpp"
#include "core/planner.hpp"
#include "service/job.hpp"
#include "simnet/config.hpp"
#include "workload/trace.hpp"

namespace pfar::workload {

/// How the replayed iteration's gradient buckets reach the fabric
/// (docs/training_replay.md, "Communication backends").
enum class CommMode {
  /// Buckets become jobs of a persistent service::AllreduceService: one
  /// job per bucket, arrival = release cycle, scheduled onto the plan's
  /// link-disjoint lanes. The multi-lane path — buckets of one iteration
  /// reduce concurrently, and background traffic flows through every lane
  /// run.
  kService,
  /// Buckets run back-to-back on the full tree set via
  /// collectives::run_bucketed_allreduce — the single-job pipeline every
  /// bench before this layer measured. The mode that composes with the
  /// fault-injection layer (run_resilient_allreduce when a FaultScript is
  /// present) and the congestion controller (`adaptive`).
  kSingle,
};

/// Per-node compute heterogeneity. Replay is bulk-synchronous: every node
/// starts an iteration's compute together and a gradient bucket is only
/// released once the SLOWEST node has produced it, so the effective
/// slowdown of an iteration is the maximum node multiplier.
struct SkewSpec {
  /// Every node's compute is scaled by a seeded multiplier drawn uniformly
  /// from [1000, 1000 + skew_permille] permille. 0 = homogeneous nodes.
  int skew_permille = 0;
  /// `straggler_nodes` seeded distinct nodes additionally run at
  /// `straggler_permille` (>= 1000; 1000 = disabled). A straggler is a
  /// slow node the way a dead link is a FaultScript — the two compose.
  int straggler_nodes = 0;
  int straggler_permille = 1000;
  std::uint64_t seed = 7;
};

/// Full configuration of one training replay.
struct ReplayConfig {
  /// The trace to replay (synthesize_trace / parse_trace_json).
  TrainingTrace trace;
  /// Gradient bucket granularity (see bucketize).
  long long min_bucket_elements = 2048;
  /// true: a bucket's allreduce is scheduled the moment backprop releases
  /// it, overlapping communication with the rest of the backward pass.
  /// false: every bucket waits for the iteration's full compute phase —
  /// the no-overlap baseline the bench compares against.
  bool overlap = true;
  CommMode mode = CommMode::kService;
  /// Lane policy for kService (kSerial collapses to one full-tree lane).
  service::SchedulerPolicy policy = service::SchedulerPolicy::kPartitioned;
  /// Engine, link model, background traffic, faults, recorder. The
  /// recorder observes the WORKLOAD timeline (workload.* metrics, the
  /// kTrackWorkload track, and — in kService mode — the service's lane
  /// spans); inner simulator runs are never instrumented. Fault scripts
  /// require kSingle mode, where each bucket runs under
  /// run_resilient_allreduce; kService passes background traffic through
  /// to every lane run but rejects faults.
  simnet::SimConfig sim;
  SkewSpec skew;
  /// kSingle only: probe the congested fabric once per epoch and run every
  /// bucket on the adapted plan/split (src/adapt). The probe window is
  /// charged to the communication timeline ahead of iteration 0.
  bool adaptive = false;
  adapt::ControllerConfig adapt_ctrl;
  /// kSingle + faults: retry/backoff knobs of the resilient driver.
  collectives::ResilienceConfig resilience;
};

/// Timeline of one replayed SGD iteration, in global virtual cycles.
struct IterationRecord {
  long long start = 0;
  /// Slowest node finishes forward + backward compute.
  long long compute_done = 0;
  /// Last gradient bucket fully reduced (may precede compute_done when
  /// overlap hides communication entirely).
  long long comm_done = 0;
  /// max(compute_done, comm_done) — the BSP barrier; next iteration starts
  /// here.
  long long finish = 0;
  /// Union length of the iteration's collective intervals (wall cycles in
  /// which at least one bucket allreduce was in flight).
  long long comm_wall_cycles = 0;
  /// Lane-busy integral: sum of every batch's duration (>= wall when lanes
  /// run concurrently).
  long long comm_busy_cycles = 0;
  /// Wall cycles of communication NOT hidden behind compute:
  /// max(0, finish - compute_done).
  long long exposed_comm_cycles = 0;
};

/// Everything one replay measures. All fields except nothing are integer
/// virtual-cycle arithmetic over deterministic simulator results —
/// bit-identical across runs, engines' shard counts and PFAR_THREADS.
struct ReplayResult {
  std::vector<IterationRecord> iterations;
  /// The bucketization applied to every iteration.
  std::vector<Bucket> buckets;
  /// Finish cycle of the last iteration — the headline metric.
  long long time_to_epoch = 0;
  /// Sums over iterations.
  long long compute_cycles = 0;
  long long comm_wall_cycles = 0;
  long long comm_busy_cycles = 0;
  long long exposed_comm_cycles = 0;
  /// 1 - exposed/wall: the fraction of communication wall time hidden
  /// behind compute (1.0 when the epoch moved no gradient). The bench's
  /// "collective-overlap efficiency".
  double overlap_efficiency = 1.0;
  /// Fabric work across every collective run of the epoch.
  long long total_flits = 0;
  /// kSingle + faults: elements replayed by the resilient driver.
  long long replayed_elements = 0;
  /// Adaptive probe window charged before iteration 0 (0 unless adaptive).
  long long probe_cycles = 0;
  /// The iteration-gating node and its effective permille multiplier.
  int slowest_node = 0;
  int slow_permille = 1000;
  bool values_correct = true;
};

/// Per-node compute multipliers (permille) under `skew` for `num_nodes`
/// nodes: the seeded uniform jitter with the straggler override applied.
/// Exposed for tests and the bench's straggler reporting.
std::vector<int> node_multipliers(const SkewSpec& skew, int num_nodes);

/// Replays `config.trace.iterations` bulk-synchronous SGD iterations of
/// the traced model over the planned fabric: per-iteration compute phases
/// scaled by the seeded node skew, gradient buckets released back-to-front
/// as backprop finishes them, and bucket allreduces overlapped with the
/// remaining compute (config.overlap) through the configured backend.
/// Deterministic end to end; see docs/training_replay.md for the model.
ReplayResult replay_training(const core::AllreducePlan& plan,
                             const ReplayConfig& config);

}  // namespace pfar::workload
