#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pfar::workload {

/// One layer of the trained model, as the replay engine sees it: how many
/// cycles one (unskewed) node spends in its forward and backward pass, and
/// how many gradient elements backprop emits for it. All quantities are
/// virtual cycles / elements — the workload layer never touches wall time.
struct LayerSpec {
  long long forward_cycles = 0;
  long long backward_cycles = 0;
  long long gradient_elements = 0;
};

/// A training trace: the per-layer structure plus how many SGD iterations
/// one replayed epoch runs. Obtained either from synthesize_trace (the
/// built-in parameterized model) or parse_trace_json (replay of a recorded
/// trace file) — the replay engine does not care which.
struct TrainingTrace {
  std::vector<LayerSpec> layers;  // index 0 = input layer (first forward)
  int iterations = 1;             // SGD steps per replayed epoch

  long long total_forward_cycles() const;
  long long total_backward_cycles() const;
  long long total_compute_cycles() const;
  long long total_gradient_elements() const;
};

/// Knobs of the built-in parameterized model (docs/training_replay.md).
/// Layer shapes get a deterministic seeded jitter so buckets and compute
/// phases are irregular the way real models are; the same params always
/// synthesize the same trace.
struct ModelParams {
  int layers = 12;
  int iterations = 2;
  /// Mean gradient elements per layer (jittered +/- 50%).
  long long layer_elements = 2048;
  /// Mean forward compute cycles per layer (jittered +/- 50%).
  long long forward_cycles = 2000;
  /// backward_cycles = backward_permille/1000 * forward_cycles: backprop
  /// costs roughly twice the forward pass in real frameworks.
  int backward_permille = 2000;
  std::uint64_t seed = 1;
};

/// Deterministically synthesizes a TrainingTrace from the model params.
TrainingTrace synthesize_trace(const ModelParams& params);

/// Parses the JSON trace schema of docs/training_replay.md:
///   {"iterations": N, "layers": [{"forward_cycles": ..,
///    "backward_cycles": .., "gradient_elements": ..}, ...]}
/// Throws std::invalid_argument on schema violations (missing members,
/// negative quantities, empty layer list, non-positive iterations).
TrainingTrace parse_trace_json(std::string_view text);

/// Serializes a trace back into the schema parse_trace_json accepts
/// (byte-deterministic; round-trips exactly — integers only).
std::string trace_to_json(const TrainingTrace& trace);

/// One gradient bucket: a contiguous back-to-front run of layers whose
/// gradients are fused into a single allreduce, DDP-style.
struct Bucket {
  /// Layer index range [first, last] covered by the bucket, in model
  /// order; buckets are emitted back-to-front, so the FIRST bucket of an
  /// iteration covers the HIGHEST layer indices.
  int first_layer = 0;
  int last_layer = 0;
  long long elements = 0;
  /// Unskewed cycles from the start of the iteration's compute until the
  /// bucket's last gradient exists (full forward pass + backward through
  /// first_layer). Per-node skew scales this at replay time.
  long long ready_offset = 0;
};

/// Groups the trace's layers into gradient buckets of at least
/// `min_bucket_elements` (the last bucket of an iteration may be smaller),
/// walking the layers in backward order — exactly the back-to-front bucket
/// release of a gradient-bucketed data-parallel step. Zero-gradient layers
/// fold into the enclosing bucket. min_bucket_elements <= 0 puts every
/// gradient-bearing layer in its own bucket.
std::vector<Bucket> bucketize(const TrainingTrace& trace,
                              long long min_bucket_elements);

}  // namespace pfar::workload
