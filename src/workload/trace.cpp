#include "workload/trace.hpp"

#include <sstream>
#include <stdexcept>

#include "obsv/report.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace pfar::workload {

namespace {

long long sum_layers(const std::vector<LayerSpec>& layers,
                     long long LayerSpec::*field) {
  long long total = 0;
  for (const LayerSpec& layer : layers) total += layer.*field;
  return total;
}

/// +/- 50% multiplicative jitter around `mean`, floored at 1: the jitter
/// factor is an integer permille in [500, 1500] drawn from the rng, so the
/// synthesized trace is identical on every platform.
long long jitter(long long mean, util::Rng& rng) {
  const long long permille = 500 + static_cast<long long>(rng.next_below(1001));
  return std::max(1LL, mean * permille / 1000);
}

}  // namespace

long long TrainingTrace::total_forward_cycles() const {
  return sum_layers(layers, &LayerSpec::forward_cycles);
}

long long TrainingTrace::total_backward_cycles() const {
  return sum_layers(layers, &LayerSpec::backward_cycles);
}

long long TrainingTrace::total_compute_cycles() const {
  return total_forward_cycles() + total_backward_cycles();
}

long long TrainingTrace::total_gradient_elements() const {
  return sum_layers(layers, &LayerSpec::gradient_elements);
}

TrainingTrace synthesize_trace(const ModelParams& params) {
  PFAR_REQUIRE(params.layers >= 1, params.layers);
  PFAR_REQUIRE(params.iterations >= 1, params.iterations);
  PFAR_REQUIRE(params.layer_elements >= 1, params.layer_elements);
  PFAR_REQUIRE(params.forward_cycles >= 1, params.forward_cycles);
  PFAR_REQUIRE(params.backward_permille >= 0, params.backward_permille);
  util::Rng rng(params.seed);
  TrainingTrace trace;
  trace.iterations = params.iterations;
  trace.layers.reserve(static_cast<std::size_t>(params.layers));
  for (int i = 0; i < params.layers; ++i) {
    LayerSpec layer;
    layer.forward_cycles = jitter(params.forward_cycles, rng);
    layer.backward_cycles =
        std::max(1LL, layer.forward_cycles * params.backward_permille / 1000);
    layer.gradient_elements = jitter(params.layer_elements, rng);
    trace.layers.push_back(layer);
  }
  PFAR_ENSURE(trace.layers.size() == static_cast<std::size_t>(params.layers),
              trace.layers.size());
  return trace;
}

TrainingTrace parse_trace_json(std::string_view text) {
  obsv::JsonValue doc;
  try {
    doc = obsv::parse_json(text);
  } catch (const std::runtime_error& e) {
    throw std::invalid_argument(std::string("training trace: ") + e.what());
  }
  if (!doc.is_object()) {
    throw std::invalid_argument("training trace: top level must be an object");
  }
  TrainingTrace trace;
  trace.iterations = static_cast<int>(doc.num("iterations", 1));
  if (trace.iterations < 1) {
    throw std::invalid_argument("training trace: iterations must be >= 1");
  }
  const obsv::JsonValue* layers = doc.get("layers");
  if (layers == nullptr || !layers->is_array() || layers->array.empty()) {
    throw std::invalid_argument(
        "training trace: 'layers' must be a non-empty array");
  }
  for (const obsv::JsonValue& entry : layers->array) {
    if (!entry.is_object()) {
      throw std::invalid_argument("training trace: each layer is an object");
    }
    for (const char* field :
         {"forward_cycles", "backward_cycles", "gradient_elements"}) {
      if (entry.get(field) == nullptr) {
        throw std::invalid_argument(
            std::string("training trace: layer missing '") + field + "'");
      }
    }
    LayerSpec layer;
    layer.forward_cycles = static_cast<long long>(entry.num("forward_cycles"));
    layer.backward_cycles =
        static_cast<long long>(entry.num("backward_cycles"));
    layer.gradient_elements =
        static_cast<long long>(entry.num("gradient_elements"));
    if (layer.forward_cycles < 0 || layer.backward_cycles < 0 ||
        layer.gradient_elements < 0) {
      throw std::invalid_argument(
          "training trace: layer quantities must be non-negative");
    }
    trace.layers.push_back(layer);
  }
  PFAR_ENSURE(!trace.layers.empty() && trace.iterations >= 1,
              trace.layers.size(), trace.iterations);
  return trace;
}

std::string trace_to_json(const TrainingTrace& trace) {
  PFAR_REQUIRE(!trace.layers.empty() && trace.iterations >= 1,
               trace.layers.size(), trace.iterations);
  std::ostringstream os;
  os << "{\n  \"iterations\": " << trace.iterations << ",\n  \"layers\": [\n";
  for (std::size_t i = 0; i < trace.layers.size(); ++i) {
    const LayerSpec& layer = trace.layers[i];
    os << "    {\"forward_cycles\": " << layer.forward_cycles
       << ", \"backward_cycles\": " << layer.backward_cycles
       << ", \"gradient_elements\": " << layer.gradient_elements << "}"
       << (i + 1 < trace.layers.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::vector<Bucket> bucketize(const TrainingTrace& trace,
                              long long min_bucket_elements) {
  PFAR_REQUIRE(!trace.layers.empty(), trace.layers.size());
  const long long forward_total = trace.total_forward_cycles();
  std::vector<Bucket> buckets;
  long long backward_so_far = 0;
  Bucket current;
  bool open = false;
  // Backward order: layer L-1 first, layer 0 last — the bucket that covers
  // the LAST backward layer closes last and release offsets are
  // monotonically non-decreasing across the emitted sequence.
  for (int l = static_cast<int>(trace.layers.size()) - 1; l >= 0; --l) {
    const LayerSpec& layer = trace.layers[static_cast<std::size_t>(l)];
    backward_so_far += layer.backward_cycles;
    if (!open) {
      current = Bucket{};
      current.last_layer = l;
      open = true;
    }
    current.first_layer = l;
    current.elements += layer.gradient_elements;
    current.ready_offset = forward_total + backward_so_far;
    if (current.elements >= std::max(1LL, min_bucket_elements)) {
      buckets.push_back(current);
      open = false;
    }
  }
  if (open) {
    // Trailing partial bucket: fold into the previous one when it exists
    // and carries nothing (pure-compute tail layers), else emit it.
    if (current.elements == 0 && !buckets.empty()) {
      buckets.back().first_layer = current.first_layer;
      buckets.back().ready_offset = current.ready_offset;
    } else {
      buckets.push_back(current);
    }
  }
  PFAR_ENSURE(!buckets.empty() && buckets.front().last_layer ==
                                      static_cast<int>(trace.layers.size()) - 1,
              buckets.size());
  PFAR_ENSURE(buckets.back().first_layer == 0, buckets.back().first_layer);
  long long covered = 0;
  for (const Bucket& b : buckets) covered += b.elements;
  PFAR_ENSURE(covered == trace.total_gradient_elements(), covered);
  return buckets;
}

}  // namespace pfar::workload
