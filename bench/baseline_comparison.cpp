// The paper's positioning experiment (Sections 1 and 8): multi-tree
// in-network Allreduce versus (a) a single-tree in-network offload
// (SHARP-like, capped at one link bandwidth) and (b) host-based ring,
// recursive-doubling and recursive-halving+doubling, all on the same
// PolarFly with identical link parameters.

#include <cstdio>
#include <iostream>
#include <numeric>

#include "bench_json.hpp"
#include "collectives/host_allreduce.hpp"
#include "core/planner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  simnet::SimConfig sim_config;
  sim_config.engine = bench::engine_arg(args);
  const int q = 7;
  const auto low_depth =
      core::AllreducePlanner(q).solution(core::Solution::kLowDepth).build();
  const auto disjoint =
      core::AllreducePlanner(q).solution(core::Solution::kEdgeDisjoint).build();
  const auto single =
      core::AllreducePlanner(q).solution(core::Solution::kSingleTree).build();

  const collectives::RoutedNetwork routed(low_depth.topology());
  std::vector<int> placement(static_cast<std::size_t>(low_depth.num_nodes()));
  std::iota(placement.begin(), placement.end(), 0);
  const double alpha = simnet::SimConfig{}.link_latency;

  std::printf("Allreduce time (cycles) on PolarFly q=%d, N=%d, radix %d\n\n",
              q, low_depth.num_nodes(), q + 1);

  util::Table table({"m", "low-depth", "edge-disj.", "single-tree",
                     "ring", "rec-dbl", "halv-dbl",
                     "multi/single speedup", "multi/ring speedup"});
  for (long long m : {100LL, 1000LL, 10000LL, 50000LL}) {
    const auto ld = low_depth.simulate(m, sim_config);
    const auto ed = disjoint.simulate(m, sim_config);
    const auto st = single.simulate(m, sim_config);
    const auto ring = collectives::run_host_baseline(
        collectives::HostAlgorithm::kRing, routed, placement, m, alpha, 1.0);
    const auto rdbl = collectives::run_host_baseline(
        collectives::HostAlgorithm::kRecursiveDoubling, routed, placement, m,
        alpha, 1.0);
    const auto hd = collectives::run_host_baseline(
        collectives::HostAlgorithm::kHalvingDoubling, routed, placement, m,
        alpha, 1.0);
    if (!ld.sim.values_correct || !ed.sim.values_correct ||
        !st.sim.values_correct || !ring.correct || !rdbl.correct ||
        !hd.correct) {
      std::fprintf(stderr, "correctness check failed\n");
      return 1;
    }
    const long long best_multi = std::min(ld.sim.cycles, ed.sim.cycles);
    table.add(m, ld.sim.cycles, ed.sim.cycles, st.sim.cycles,
              ring.cost.total_time, rdbl.cost.total_time, hd.cost.total_time,
              static_cast<double>(st.sim.cycles) / static_cast<double>(best_multi),
              ring.cost.total_time / static_cast<double>(best_multi));
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: for large m the multi-tree solutions beat the\n"
      "single-tree offload by ~q/2 = %.1fx (Cor 7.7) and beat host-based\n"
      "schemes by an even larger margin (no multi-round traffic).\n",
      q / 2.0);
  return 0;
}
