// The paper's positioning claim (Sections 1.2-1.3): direct networks can
// multiply Allreduce bandwidth via concurrent spanning trees, and
// PolarFly's structure yields *provably optimal* sets where generic
// topologies rely on heuristics. This bench compares design points of
// similar size/radix: spanning-tree packing bound, trees actually found
// (greedy DFS packing for generic topologies vs the paper's constructions
// for PolarFly), Algorithm 1 aggregate bandwidth, and simulated bandwidth.

#include <cstdio>
#include <iostream>

#include "bench_json.hpp"
#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "model/congestion_model.hpp"
#include "topo/topologies.hpp"
#include "trees/exact_packing.hpp"
#include "trees/packing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace pfar;

void add_generic(util::Table& table, const std::string& name,
                 const graph::Graph& g, const simnet::SimConfig& sim_config) {
  const auto stats = topo::describe(name, g);
  // Exact Tutte/Nash-Williams packing (matroid union); greedy shown for
  // contrast with what a cheap heuristic would find.
  const auto greedy = trees::greedy_tree_packing(g);
  const auto trees = trees::exact_tree_packing(g);
  const auto bw = model::compute_tree_bandwidths(g, trees, 1.0);
  const auto res =
      collectives::run_innetwork_allreduce(g, trees, 20000, sim_config);
  table.add(name, stats.nodes, stats.radix, stats.diameter,
            stats.packing_bound, static_cast<int>(greedy.size()),
            static_cast<int>(trees.size()), bw.aggregate,
            res.sim.aggregate_bandwidth, res.sim.values_correct);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  simnet::SimConfig sim_config;
  sim_config.engine = bench::engine_arg(args);
  std::printf("Multi-tree Allreduce potential across direct topologies\n"
              "(trees for generic topologies: greedy heuristic; for "
              "PolarFly: the paper's constructions)\n\n");

  util::Table table({"topology", "nodes", "radix", "diam", "pack bound",
                     "greedy", "exact", "Alg.1 BW xB", "sim BW", "correct"});

  add_generic(table, "torus 6x6", topo::torus({6, 6}), sim_config);
  add_generic(table, "torus 4x4x4", topo::torus({4, 4, 4}), sim_config);
  add_generic(table, "hypercube d=6", topo::hypercube(6), sim_config);
  add_generic(table, "hyperx 6x6", topo::hyperx({6, 6}), sim_config);
  add_generic(table, "slimfly q=5", topo::slimfly(5), sim_config);

  // PolarFly q = 7 (57 nodes, radix 8) with the paper's two tree sets.
  for (const auto solution :
       {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint}) {
    const auto plan = core::AllreducePlanner(7).solution(solution).build();
    const auto res = plan.simulate(20000, sim_config);
    table.add(std::string("PolarFly q=7 ") + core::to_string(solution),
              plan.num_nodes(), 8, 2,
              topo::tree_packing_bound(plan.topology()), "-",
              plan.num_trees(), plan.aggregate_bandwidth(),
              res.sim.aggregate_bandwidth, res.sim.values_correct);
  }

  table.print(std::cout);
  std::printf(
      "\nShape check: low-radix tori/hypercubes cap at 2-3 concurrent\n"
      "trees; high-radix direct networks (HyperX, PolarFly) support many.\n"
      "PolarFly additionally reaches its packing bound *constructively*\n"
      "with guaranteed congestion <= 2 or 0 (Sections 7.1-7.2), while the\n"
      "generic greedy makes no such guarantee.\n");
  return 0;
}
