// Reproduces Figure 3: the level-by-level structure of one depth-3
// Allreduce spanning tree T_i from Algorithm 3, showing which vertex
// classes land at each level.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "polarfly/layout.hpp"
#include "trees/low_depth.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  const int q = 11;
  const polarfly::PolarFly pf(q);
  const auto layout = polarfly::build_layout(pf);
  const auto ts = trees::build_low_depth_trees(pf, layout);
  const auto& t = ts[0];

  std::printf("Figure 3: structure of low-depth tree T_0 on PolarFly q = %d\n",
              q);
  std::printf("root = center v_0 = %d of cluster C_0\n\n", t.root());

  util::Table table({"level", "total", "quadrics", "cluster centers",
                     "C_0 members", "other non-centers"});
  for (int level = 0; level <= t.depth(); ++level) {
    int total = 0, quadrics = 0, centers = 0, own = 0, other = 0;
    for (int v = 0; v < pf.n(); ++v) {
      if (t.level(v) != level) continue;
      ++total;
      const bool is_center =
          std::find(layout.centers.begin(), layout.centers.end(), v) !=
          layout.centers.end();
      if (pf.is_quadric(v)) {
        ++quadrics;
      } else if (is_center && v != t.root()) {
        ++centers;
      } else if (layout.cluster_of[static_cast<std::size_t>(v)] == 0) {
        ++own;
      } else {
        ++other;
      }
    }
    table.add(level, total, quadrics, centers, own, other);
  }
  table.print(std::cout);

  std::printf(
      "\nExpected shape (Figure 3): level 0 = root; level 1 = q-1 cluster\n"
      "mates + starter quadric w + non-starter w_0 (= %d vertices);\n"
      "level 2 = remaining quadrics and non-center vertices of other\n"
      "clusters; level 3 = the q-1 = %d other cluster centers.\n",
      q + 1, q - 1);
  return 0;
}
