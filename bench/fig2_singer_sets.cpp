// Reproduces Figure 2: the Singer difference sets and graphs for q = 3 and
// q = 4 — the difference set, the reflection points, and the difference
// table showing every value 1..q^2+q generated exactly once.

#include <cstdio>
#include <iostream>

#include "singer/difference_set.hpp"
#include "singer/singer_graph.hpp"
#include "util/table.hpp"

namespace {

void report(int q) {
  using namespace pfar;
  const auto d = singer::build_difference_set(q);
  std::printf("-- Singer difference set for q = %d (N = %lld) --\n", q, d.n);
  std::printf("D = {");
  for (std::size_t i = 0; i < d.elements.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", d.elements[i]);
  }
  std::printf("}\nreflection points (quadrics): {");
  const auto refl = singer::reflection_points(d);
  for (std::size_t i = 0; i < refl.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", refl[i]);
  }
  std::printf("}\n\nDifference table ((d_i - d_j) mod N; diagonal = set "
              "elements):\n");

  util::Table table([&] {
    std::vector<std::string> h{"d_i \\ d_j"};
    for (long long e : d.elements) h.push_back(std::to_string(e));
    return h;
  }());
  for (long long di : d.elements) {
    std::vector<std::string> row{std::to_string(di)};
    for (long long dj : d.elements) {
      const long long diff = ((di - dj) % d.n + d.n) % d.n;
      if (di == dj) {
        std::string cell = "[";
        cell += std::to_string(di);
        cell += ']';
        row.push_back(std::move(cell));
      } else {
        row.push_back(std::to_string(diff));
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);

  const singer::SingerGraph s(d);
  std::printf("\ngraph: %d vertices, %d edges, degrees %d (reflection) / %d\n\n",
              s.graph().num_vertices(), s.graph().num_edges(), q, q + 1);
}

}  // namespace

int main() {
  std::printf("Figure 2: Singer difference sets and graphs\n\n");
  report(3);  // paper: D = {0,1,3,9}, reflection {0,7,8,11}
  report(4);  // paper: D = {0,1,4,14,16}, reflection {0,2,7,8,11}
  return 0;
}
