// Shared provenance stamp for the BENCH_*.json artifacts. Every bench
// binary opens its JSON with write_meta(json, kSchemaVersion) so a stored
// result identifies the commit, schema and time it came from — the CI
// bench-regression gate and ad-hoc archaeology both lean on this.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "simnet/config.hpp"
#include "util/args.hpp"

namespace pfar::bench {

/// Shared `--engine reference|horizon|flow` flag for the simulation
/// benches (EXPERIMENTS.md): every bench that runs AllreduceSimulator
/// resolves its engine here instead of hard-coding one. Defaults to the
/// fast-forward (horizon) engine. Throws std::invalid_argument on an
/// unknown name; benches whose scenario a tier cannot honor (e.g. fault
/// injection on the flow tier) surface the simulator's own error.
inline simnet::SimEngine engine_arg(const util::Args& args) {
  return simnet::engine_from_string(args.get_string("engine", "horizon"));
}

/// Best-effort commit id of the tree the benchmark ran in: $GITHUB_SHA if
/// set (CI), else `git rev-parse HEAD`, else "unknown". Sanitized to a
/// 40-char hex string so it can be embedded in JSON verbatim.
inline std::string git_sha() {
  std::string sha;
  if (const char* env = std::getenv("GITHUB_SHA")) {
    sha = env;
  } else if (FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  if (sha.size() != 40) return "unknown";
  for (char c : sha) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return "unknown";
  }
  return sha;
}

/// Current UTC time as ISO 8601 (e.g. "2026-08-07T12:34:56Z").
inline std::string utc_timestamp() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Writes the `"_meta"` member (with trailing comma) right after the
/// opening `{` of a BENCH_*.json. The underscore prefix keeps it visually
/// apart from the measured payload; tools/check_bench_regression.py
/// ignores it when diffing against baselines.
inline void write_meta(FILE* json, int schema_version) {
  std::fprintf(json,
               "  \"_meta\": {\"schema_version\": %d, \"git_sha\": \"%s\", "
               "\"timestamp\": \"%s\"},\n",
               schema_version, git_sha().c_str(), utc_timestamp().c_str());
}

}  // namespace pfar::bench
