// Ablation: packet framing overhead. The paper's model assumes streaming
// at link rate; real devices frame streams into packets with header flits
// (Section 5.1's per-tree state is carried in those headers). This bench
// sweeps packet payload sizes and shows (a) the efficiency loss
// payload/(payload+header) and (b) that the multi-tree bandwidth advantage
// is preserved under framing. The (payload, scheme) grid fans out across
// a core::SweepRunner (--threads N).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const simnet::SimEngine engine = bench::engine_arg(args);
  const int q = 7;
  const auto plan = core::AllreducePlanner(q).build();
  const auto single =
      core::AllreducePlanner(q).solution(core::Solution::kSingleTree).build();
  const long long m = 20000;

  std::printf("Packet-framing ablation on PolarFly q=%d, m=%lld "
              "(header = 2 flits)\n\n", q, m);

  const std::vector<int> payloads = {1, 2, 4, 8, 16, 32};

  struct PointResult {
    double bw = 0.0;
    bool correct = false;
  };
  // Even indices simulate the multi-tree plan, odd the single-tree one.
  core::SweepRunner runner(args.threads());
  const auto results = runner.map<PointResult>(
      static_cast<int>(payloads.size()) * 2,
      [&](const core::SweepTask& task) {
        simnet::SimConfig cfg;
        cfg.engine = engine;
        cfg.packet_payload = payloads[static_cast<std::size_t>(task.index / 2)];
        cfg.packet_header_flits = 2;
        const auto& target = task.index % 2 == 0 ? plan : single;
        const auto res = target.simulate(m, cfg);
        return PointResult{res.sim.aggregate_bandwidth,
                           res.sim.values_correct};
      });

  util::Table table({"payload (elems)", "ideal efficiency",
                     "multi-tree BW", "single-tree BW", "multi/single"});
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const auto& multi = results[i * 2];
    const auto& one = results[i * 2 + 1];
    if (!multi.correct || !one.correct) {
      std::fprintf(stderr, "correctness check failed\n");
      return 1;
    }
    table.add(payloads[i],
              static_cast<double>(payloads[i]) / (payloads[i] + 2),
              multi.bw, one.bw, multi.bw / one.bw);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: bandwidth tracks payload/(payload+header) for both\n"
      "schemes, so the ~q/2 multi-tree advantage is framing-invariant.\n");
  return 0;
}
