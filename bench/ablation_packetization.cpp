// Ablation: packet framing overhead. The paper's model assumes streaming
// at link rate; real devices frame streams into packets with header flits
// (Section 5.1's per-tree state is carried in those headers). This bench
// sweeps packet payload sizes and shows (a) the efficiency loss
// payload/(payload+header) and (b) that the multi-tree bandwidth advantage
// is preserved under framing.

#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  const int q = 7;
  const auto plan = core::AllreducePlanner(q).build();
  const auto single =
      core::AllreducePlanner(q).solution(core::Solution::kSingleTree).build();
  const long long m = 20000;

  std::printf("Packet-framing ablation on PolarFly q=%d, m=%lld "
              "(header = 2 flits)\n\n", q, m);

  util::Table table({"payload (elems)", "ideal efficiency",
                     "multi-tree BW", "single-tree BW", "multi/single"});
  for (int payload : {1, 2, 4, 8, 16, 32}) {
    simnet::SimConfig cfg;
    cfg.packet_payload = payload;
    cfg.packet_header_flits = 2;
    const auto multi = plan.simulate(m, cfg);
    const auto one = single.simulate(m, cfg);
    if (!multi.sim.values_correct || !one.sim.values_correct) {
      std::fprintf(stderr, "correctness check failed\n");
      return 1;
    }
    table.add(payload,
              static_cast<double>(payload) / (payload + 2),
              multi.sim.aggregate_bandwidth, one.sim.aggregate_bandwidth,
              multi.sim.aggregate_bandwidth / one.sim.aggregate_bandwidth);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: bandwidth tracks payload/(payload+header) for both\n"
      "schemes, so the ~q/2 multi-tree advantage is framing-invariant.\n");
  return 0;
}
