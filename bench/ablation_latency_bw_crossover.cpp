// Ablation of the paper's central design trade-off (Section 7.3): the
// depth-3 congestion-2 trees versus the deep congestion-free Hamiltonian
// trees. Sweeps the vector size to locate the crossover and reports the
// in-network resource cost (VC state per link) of each solution.

#include <cstdio>
#include <iostream>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  simnet::SimConfig sim_config;
  sim_config.engine = bench::engine_arg(args);
  std::printf("Ablation: latency (depth) vs bandwidth (congestion) "
              "trade-off\n\n");

  util::Table res({"q", "solution", "trees", "depth", "max VCs/link",
                   "agg BW xB"});
  util::Table cross({"q", "m", "low-depth cycles", "edge-disjoint cycles",
                     "winner"});
  for (int q : {5, 9, 13}) {
    const auto ld =
        core::AllreducePlanner(q).solution(core::Solution::kLowDepth).build();
    const auto ed = core::AllreducePlanner(q)
                        .solution(core::Solution::kEdgeDisjoint)
                        .build();
    // Resource requirements come out of the simulator's VC accounting.
    const auto ld_probe = ld.simulate(64, sim_config);
    const auto ed_probe = ed.simulate(64, sim_config);
    res.add(q, "low-depth", ld.num_trees(), ld.max_depth(),
            ld_probe.sim.max_vcs_per_link, ld.aggregate_bandwidth());
    res.add(q, "edge-disjoint", ed.num_trees(), ed.max_depth(),
            ed_probe.sim.max_vcs_per_link, ed.aggregate_bandwidth());

    for (long long m : {64LL, 1024LL, 8192LL, 32768LL}) {
      const auto a = ld.simulate(m, sim_config);
      const auto b = ed.simulate(m, sim_config);
      cross.add(q, m, a.sim.cycles, b.sim.cycles,
                a.sim.cycles <= b.sim.cycles ? "low-depth" : "edge-disjoint");
    }
  }
  res.print(std::cout);
  std::printf("\nCrossover sweep:\n");
  cross.print(std::cout);
  std::printf(
      "\nShape check: the low-depth solution needs 2 VCs on shared links\n"
      "(congestion 2) but wins at small m; the edge-disjoint solution needs\n"
      "only 1 VC per link and wins once m amortizes its (N-1)/2 depth.\n");
  return 0;
}
