// Reproduces Figure 5a: aggregate Allreduce bandwidth of the two
// solutions, normalized against the optimal (q+1)B/2 (Corollary 7.1), for
// every prime-power q with radix q+1 in [3, 129].
//
// The Hamiltonian series is obtained constructively for every q (difference
// set + maximum matching on the element graph); the low-depth series is
// obtained by running Algorithm 1 on the actual Algorithm 3 trees for odd
// q (the paper's published layout covers odd q only).

#include <cstdio>
#include <iostream>

#include "model/congestion_model.hpp"
#include "polarfly/layout.hpp"
#include "singer/disjoint.hpp"
#include "trees/low_depth.hpp"
#include "util/args.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const pfar::util::Args args(argc, argv);
  using namespace pfar;
  std::printf("Figure 5a: Allreduce bandwidth normalized to optimal "
              "(q+1)B/2\n\n");

  util::Table table({"radix q+1", "q", "optimal xB", "Ham. trees",
                     "Ham. norm.", "low-depth xB", "low-depth norm."});
  bool all_ham_optimal_odd = true;
  for (int q : util::prime_powers_in(2, 128)) {
    const double optimal = (q + 1) / 2.0;

    // Edge-disjoint Hamiltonian solution: constructive, all q.
    const auto d = singer::build_difference_set(q);
    const auto set = singer::find_disjoint_hamiltonians(d);
    const double ham_bw = set.size();  // Theorem 7.19: t * B
    if (q % 2 == 1 && set.size() != (q + 1) / 2) all_ham_optimal_odd = false;

    // Low-depth solution: Algorithm 3 for odd q; our reconstruction of
    // the paper's unpublished even-q analogue otherwise (marked with *).
    std::string ld = "-", ld_norm = "-";
    {
      const polarfly::PolarFly pf(q);
      const auto ts =
          q % 2 == 1
              ? trees::build_low_depth_trees(pf, polarfly::build_layout(pf))
              : trees::build_low_depth_trees_even(pf);
      const auto bw = model::compute_tree_bandwidths(pf.graph(), ts, 1.0);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f%s", bw.aggregate,
                    q % 2 == 0 ? "*" : "");
      ld = buf;
      std::snprintf(buf, sizeof(buf), "%.4f", bw.aggregate / optimal);
      ld_norm = buf;
    }
    char norm[32];
    std::snprintf(norm, sizeof(norm), "%.4f", ham_bw / optimal);
    table.add(q + 1, q, optimal, set.size(), norm, ld, ld_norm);
  }
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::printf(
      "\nShape check (paper): Hamiltonian solution is optimal (1.0) for all\n"
      "odd q — %s; the low-depth solution is q/(q+1), approaching 1.0 for\n"
      "high-radix routers. Rows marked * use this library's reconstruction\n"
      "of the paper's unpublished even-q low-depth solution ((q-1)/2 x B).\n",
      all_ham_optimal_odd ? "confirmed" : "VIOLATED");
  return 0;
}
