// Trace-driven training replay over the multi-tree Allreduce fabric
// (docs/training_replay.md): each design point replays a bulk-synchronous
// SGD epoch of the built-in parameterized model — per-iteration compute
// phases with seeded node skew, gradient buckets released back-to-front as
// backprop finishes layers, bucket allreduces scheduled through the
// service layer's link-disjoint lanes — and reports time-to-epoch plus
// collective-overlap efficiency (1 - exposed comm / comm wall cycles).
//
// Grid: q in {7, 11} x overlap {on, off} x straggler severity {none, mild
// ~2x, severe ~4x}. The headline shape: at every (q, straggler) pair the
// overlapped replay finishes the epoch STRICTLY earlier than the
// serialized one (the bench exits 1 otherwise), and a straggler stretches
// time-to-epoch without touching the fabric-side fields. All point fields
// are integer virtual-cycle arithmetic over deterministic simulator runs —
// bit-identical across machines and thread counts — so the CI gate
// compares them exactly against bench/baselines/.
//
// --trace-file PATH replays a recorded JSON trace (schema in
// docs/training_replay.md) instead of the synthesized model for the
// human-readable table; the JSON artifact always covers the synthesized
// grid so the baseline stays comparable.
//
// Observability (PFAR_TRACE=on builds): --trace/--metrics/--report PATH
// re-run the headline point with a Recorder attached; the rendered report
// includes the training-replay timeline section (per-iteration compute and
// comm spans, barrier instants, workload.* counters).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/replay.hpp"

namespace {

struct Severity {
  const char* name;
  int straggler_nodes;
  int straggler_permille;
};

struct Point {
  int q;
  bool overlap;
  Severity severity;
};

struct PointResult {
  long long time_to_epoch = 0;
  double overlap_eff = 0.0;
  long long exposed = 0;
  long long wall = 0;
  long long busy = 0;
  long long buckets = 0;
  long long flits = 0;
  long long slow_permille = 0;
  bool correct = false;
  double wall_ms = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

pfar::workload::ReplayConfig make_config(const Point& p,
                                         const pfar::workload::TrainingTrace&
                                             trace,
                                         pfar::simnet::SimEngine engine,
                                         int shard_threads) {
  pfar::workload::ReplayConfig cfg;
  cfg.trace = trace;
  cfg.overlap = p.overlap;
  cfg.mode = pfar::workload::CommMode::kService;
  cfg.sim.engine = engine;
  cfg.sim.shard_threads = shard_threads;
  cfg.skew.skew_permille = 200;  // +/- mild seeded heterogeneity
  cfg.skew.straggler_nodes = p.severity.straggler_nodes;
  cfg.skew.straggler_permille = p.severity.straggler_permille;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const int threads = args.threads();
  const simnet::SimEngine engine = bench::engine_arg(args);
  const int shard_threads = static_cast<int>(args.get_int("shard-threads", 1));

  // The replayed model: either the built-in parameterized one (seeded
  // layer jitter; see ModelParams) or a recorded trace file.
  workload::ModelParams params;
  params.layers = static_cast<int>(args.get_int("layers", 12));
  params.iterations = static_cast<int>(args.get_int("iterations", 3));
  params.layer_elements = args.get_int("layer-elements", 3000);
  params.forward_cycles = args.get_int("forward-cycles", 2500);
  workload::TrainingTrace trace;
  const std::string trace_file = args.get_string("trace-file", "");
  if (!trace_file.empty()) {
    std::ifstream in(trace_file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open trace file %s\n",
                   trace_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      trace = workload::parse_trace_json(text.str());
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    trace = workload::synthesize_trace(params);
  }

  std::printf(
      "Trace-driven training replay: time-to-epoch and overlap efficiency\n"
      "(%zu layers, %d iterations, %lld gradient elements/iter, engine = "
      "%s%s)\n\n",
      trace.layers.size(), trace.iterations, trace.total_gradient_elements(),
      simnet::to_string(engine),
      trace_file.empty() ? "" : (", trace " + trace_file).c_str());

  const Severity severities[] = {
      {"none", 0, 1000},
      {"mild", 1, 2000},
      {"severe", 1, 4000},
  };
  const int max_q = static_cast<int>(args.get_int("max-q", 11));
  std::vector<Point> grid;
  for (int q : {7, 11}) {
    if (q > max_q) continue;
    for (const Severity& severity : severities) {
      for (bool overlap : {true, false}) {
        grid.push_back({q, overlap, severity});
      }
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  core::SweepRunner runner(threads);
  const auto results = runner.map<PointResult>(
      static_cast<int>(grid.size()), [&](const core::SweepTask& task) {
        const Point& p = grid[static_cast<std::size_t>(task.index)];
        const auto point_start = std::chrono::steady_clock::now();
        const auto plan = core::AllreducePlanner(p.q)
                              .solution(core::Solution::kLowDepth)
                              .build();
        const auto res = workload::replay_training(
            plan, make_config(p, trace, engine, shard_threads));
        PointResult out;
        out.time_to_epoch = res.time_to_epoch;
        out.overlap_eff = res.overlap_efficiency;
        out.exposed = res.exposed_comm_cycles;
        out.wall = res.comm_wall_cycles;
        out.busy = res.comm_busy_cycles;
        out.buckets = static_cast<long long>(res.buckets.size());
        out.flits = res.total_flits;
        out.slow_permille = res.slow_permille;
        out.correct = res.values_correct;
        out.wall_ms = ms_since(point_start);
        return out;
      });
  const double total_ms = ms_since(sweep_start);

  util::Table table({"q", "straggler", "overlap", "epoch cycles",
                     "overlap eff", "exposed", "comm wall", "buckets",
                     "correct"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add(grid[i].q, grid[i].severity.name,
              grid[i].overlap ? "on" : "off", results[i].time_to_epoch,
              results[i].overlap_eff, results[i].exposed, results[i].wall,
              results[i].buckets, results[i].correct);
  }
  table.print(std::cout);

  // Headline shape check: overlapping communication with backprop must
  // strictly shorten the epoch at every (q, straggler) pair, and every
  // replay must deliver correct values. A violation is a bench failure.
  bool shape_ok = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!results[i].correct) {
      std::fprintf(stderr, "shape FAIL: q=%d straggler=%s overlap=%s "
                           "delivered wrong values\n",
                   grid[i].q, grid[i].severity.name,
                   grid[i].overlap ? "on" : "off");
      shape_ok = false;
    }
    if (!grid[i].overlap) continue;
    for (std::size_t j = 0; j < grid.size(); ++j) {
      if (grid[j].overlap || grid[j].q != grid[i].q ||
          std::string(grid[j].severity.name) != grid[i].severity.name) {
        continue;
      }
      if (results[i].time_to_epoch >= results[j].time_to_epoch) {
        std::fprintf(stderr,
                     "shape FAIL: q=%d straggler=%s overlap-on epoch %lld "
                     ">= overlap-off %lld\n",
                     grid[i].q, grid[i].severity.name,
                     results[i].time_to_epoch, results[j].time_to_epoch);
        shape_ok = false;
      }
    }
  }
  std::printf(
      "\nShape check: %s — overlap-on strictly beats overlap-off at every\n"
      "(q, straggler) pair; stragglers stretch the epoch, not the fabric.\n",
      shape_ok ? "OK" : "FAIL");

  const std::string json_path =
      args.get_string("json", "BENCH_training_replay.json");
  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    bench::write_meta(json, 1);
    std::fprintf(json,
                 "  \"threads\": %d,\n  \"total_wall_ms\": %.1f,\n"
                 "  \"layers\": %zu,\n  \"iterations\": %d,\n",
                 threads, total_ms, trace.layers.size(), trace.iterations);
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::fprintf(
          json,
          "    {\"engine\": \"%s\", \"q\": %d, \"solution\": \"low-depth\", "
          "\"overlap\": \"%s\", \"straggler\": \"%s\", "
          "\"time_to_epoch\": %lld, \"overlap_eff\": %.4f, "
          "\"exposed_comm_cycles\": %lld, \"comm_wall_cycles\": %lld, "
          "\"comm_busy_cycles\": %lld, \"buckets\": %lld, "
          "\"total_flits\": %lld, \"slow_permille\": %lld, "
          "\"correct\": %s, \"wall_ms\": %.1f}%s\n",
          simnet::to_string(engine), grid[i].q,
          grid[i].overlap ? "on" : "off", grid[i].severity.name,
          results[i].time_to_epoch, results[i].overlap_eff,
          results[i].exposed, results[i].wall, results[i].busy,
          results[i].buckets, results[i].flits, results[i].slow_permille,
          results[i].correct ? "true" : "false", results[i].wall_ms,
          i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s (%zu points, %d threads, %.1f ms)\n",
                 json_path.c_str(), grid.size(), threads, total_ms);
  } else {
    std::fprintf(stderr, "warning: could not open %s for writing\n",
                 json_path.c_str());
  }

  // Observability artifacts: re-run the headline point (largest q, severe
  // straggler, overlap on) with a Recorder attached so the rendered report
  // exercises the training-replay timeline (compute/comm spans, barrier
  // instants, workload.* counters + service lane spans). No-op unless a
  // flag is given; empty in PFAR_TRACE=off builds by design.
  if (args.has("trace") || args.has("metrics") || args.has("report")) {
    Point p{max_q >= 11 ? 11 : 7, true, severities[2]};
    obsv::Recorder recorder(1u << 20);
    const auto plan = core::AllreducePlanner(p.q)
                          .solution(core::Solution::kLowDepth)
                          .build();
    workload::ReplayConfig config =
        make_config(p, trace, engine, shard_threads);
    config.sim.recorder = &recorder;
    workload::replay_training(plan, config);
    recorder.write_files(args.get_string("trace", ""),
                         args.get_string("metrics", ""));
    std::fprintf(stderr,
                 "observability: q=%d straggler=%s overlap=on -> %zu trace "
                 "events, %zu metrics\n",
                 p.q, p.severity.name, recorder.trace.size(),
                 recorder.metrics.size());
    if (args.has("report")) {
      std::ostringstream trace_json, metrics_jsonl;
      recorder.trace.write_chrome_json(trace_json);
      recorder.metrics.write_jsonl(metrics_jsonl);
      const auto report =
          obsv::build_report(trace_json.str(), metrics_jsonl.str());
      const std::string report_path = args.get_string("report", "");
      std::ofstream out(report_path);
      if (out) {
        obsv::render_report(report, out);
        std::fprintf(stderr, "wrote %s\n", report_path.c_str());
      } else {
        std::fprintf(stderr, "warning: could not open %s for writing\n",
                     report_path.c_str());
      }
    }
  }
  return shape_ok ? 0 : 1;
}
