// Section 4.4 ablation: the paper argues that logically defined trees
// (SHARP-style: parent/child declared per router, physical paths chosen by
// the routing algorithm at runtime) "can incur path conflicts and are
// difficult to analytically reason about", while its physically embedded
// trees carry congestion guarantees. This bench quantifies the gap on the
// same PolarFly: aggregate bandwidth and per-link state of topology-
// oblivious logical trees versus the paper's two constructions.

#include <cstdio>
#include <iostream>

#include "collectives/logical.hpp"
#include "core/planner.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  std::printf("Logical (runtime-routed) vs physical (embedded) Allreduce "
              "trees on PolarFly\n\n");

  util::Table table({"q", "scheme", "trees", "agg BW xB", "BW vs optimal",
                     "max flows/link", "depth (hops)"});
  util::Rng rng(2023);
  for (int q : {7, 11}) {
    const auto low_depth =
        core::AllreducePlanner(q).solution(core::Solution::kLowDepth).build();
    const auto disjoint = core::AllreducePlanner(q)
                              .solution(core::Solution::kEdgeDisjoint)
                              .build();
    const double optimal = low_depth.optimal_bandwidth();
    const collectives::RoutedNetwork net(low_depth.topology());

    table.add(q, "physical low-depth", low_depth.num_trees(),
              low_depth.aggregate_bandwidth(),
              low_depth.aggregate_bandwidth() / optimal, 2, 3);
    table.add(q, "physical edge-disjoint", disjoint.num_trees(),
              disjoint.aggregate_bandwidth(),
              disjoint.aggregate_bandwidth() / optimal, 1,
              disjoint.max_depth());

    // SHARP-style: q logical aggregation trees with the router radix as
    // arity, oblivious to the topology; average over a few seeds.
    double agg = 0.0;
    int flows = 0, depth = 0;
    const int seeds = 5;
    for (int s = 0; s < seeds; ++s) {
      const auto logical = collectives::random_logical_trees(
          low_depth.num_nodes(), q, q + 1, rng);
      const auto bw = collectives::logical_tree_bandwidths(net, logical, 1.0);
      agg += bw.aggregate;
      flows = std::max(flows, bw.max_link_flows);
      for (const auto& t : logical) {
        depth = std::max(depth, collectives::logical_depth(net, t));
      }
    }
    char label[64];
    std::snprintf(label, sizeof(label), "logical random (avg of %d)", seeds);
    table.add(q, label, q, agg / seeds, agg / seeds / optimal, flows, depth);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: runtime-routed logical trees lose a large fraction of\n"
      "the achievable bandwidth to path conflicts and need an order of\n"
      "magnitude more per-link flow state, supporting the paper's case for\n"
      "physically embedded trees with provable congestion.\n");
  return 0;
}
