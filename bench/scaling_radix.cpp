// The paper's headline scaling claim (Sections 2 and 8): multi-tree
// in-network Allreduce boosts bandwidth proportionally to the network
// radix — "more than an order of magnitude for high-radix networks". This
// bench sweeps PolarFly design points and reports the simulated speedup of
// both solutions over the single-link-bound single-tree offload. The
// (q, solution) grid fans out across a core::SweepRunner (--threads N).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct Point {
  int q;
  pfar::core::Solution solution;
};

struct PointResult {
  int nodes = 0;
  double bw = 0.0;
  bool correct = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  simnet::SimConfig sim_config;
  sim_config.engine = bench::engine_arg(args);
  std::printf("Radix scaling of simulated Allreduce bandwidth "
              "(m = 20000 elements)\n\n");

  const std::vector<int> qs = {3, 5, 7, 9, 11, 13};
  const std::vector<core::Solution> solutions = {
      core::Solution::kSingleTree, core::Solution::kLowDepth,
      core::Solution::kEdgeDisjoint};
  const long long m = 20000;

  std::vector<Point> grid;
  for (int q : qs) {
    for (const auto solution : solutions) grid.push_back({q, solution});
  }

  core::SweepRunner runner(args.threads());
  const auto results = runner.map<PointResult>(
      static_cast<int>(grid.size()), [&](const core::SweepTask& task) {
        const Point& p = grid[static_cast<std::size_t>(task.index)];
        const auto plan =
            core::AllreducePlanner(p.q).solution(p.solution).build();
        const auto res = plan.simulate(m, sim_config);
        return PointResult{plan.num_nodes(), res.sim.aggregate_bandwidth,
                           res.sim.values_correct};
      });

  util::Table table({"q", "radix", "nodes", "single-tree BW",
                     "low-depth BW", "edge-disjoint BW",
                     "best speedup", "q/2 (theory)"});
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto& rs = results[i * 3];      // kSingleTree
    const auto& rl = results[i * 3 + 1];  // kLowDepth
    const auto& re = results[i * 3 + 2];  // kEdgeDisjoint
    if (!rs.correct || !rl.correct || !re.correct) {
      std::fprintf(stderr, "correctness check failed\n");
      return 1;
    }
    const double best = std::max(rl.bw, re.bw);
    table.add(qs[i], qs[i] + 1, rs.nodes, rs.bw, rl.bw, re.bw, best / rs.bw,
              qs[i] / 2.0);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: the speedup over single-tree grows linearly with the\n"
      "radix (~q/2 for low-depth, (q+1)/2 for edge-disjoint at large m),\n"
      "extrapolating to >30x for the q=64..127 design points of Fig. 5.\n");
  return 0;
}
