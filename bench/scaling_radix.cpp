// The paper's headline scaling claim (Sections 2 and 8): multi-tree
// in-network Allreduce boosts bandwidth proportionally to the network
// radix — "more than an order of magnitude for high-radix networks". This
// bench sweeps PolarFly design points and reports the simulated speedup of
// both solutions over the single-link-bound single-tree offload.

#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  std::printf("Radix scaling of simulated Allreduce bandwidth "
              "(m = 20000 elements)\n\n");

  util::Table table({"q", "radix", "nodes", "single-tree BW",
                     "low-depth BW", "edge-disjoint BW",
                     "best speedup", "q/2 (theory)"});
  for (int q : {3, 5, 7, 9, 11, 13}) {
    const long long m = 20000;
    const auto single =
        core::AllreducePlanner(q).solution(core::Solution::kSingleTree).build();
    const auto ld =
        core::AllreducePlanner(q).solution(core::Solution::kLowDepth).build();
    const auto ed = core::AllreducePlanner(q)
                        .solution(core::Solution::kEdgeDisjoint)
                        .build();
    const auto rs = single.simulate(m);
    const auto rl = ld.simulate(m);
    const auto re = ed.simulate(m);
    if (!rs.sim.values_correct || !rl.sim.values_correct ||
        !re.sim.values_correct) {
      std::fprintf(stderr, "correctness check failed\n");
      return 1;
    }
    const double best = std::max(rl.sim.aggregate_bandwidth,
                                 re.sim.aggregate_bandwidth);
    table.add(q, q + 1, single.num_nodes(), rs.sim.aggregate_bandwidth,
              rl.sim.aggregate_bandwidth, re.sim.aggregate_bandwidth,
              best / rs.sim.aggregate_bandwidth, q / 2.0);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: the speedup over single-tree grows linearly with the\n"
      "radix (~q/2 for low-depth, (q+1)/2 for edge-disjoint at large m),\n"
      "extrapolating to >30x for the q=64..127 design points of Fig. 5.\n");
  return 0;
}
