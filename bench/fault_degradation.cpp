// Fault degradation curves for the resilient Allreduce (docs/resilience.md):
//
//  * static: aggregate bandwidth of the repacked plan as scripted link
//    failures accumulate (how gracefully Algorithm 1 capacity decays on the
//    residual topology), versus the keep-surviving policy;
//  * runtime: end-to-end cost of a mid-collective single-link failure —
//    detection latency, chunks replayed, recovery cycles, and the slowdown
//    relative to a healthy run — measured by run_resilient_allreduce on the
//    cycle-level simulator.
//
// The grid fans out across a core::SweepRunner (--threads N / PFAR_THREADS)
// and results land in BENCH_fault_degradation.json.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "bench_json.hpp"
#include "collectives/resilient.hpp"
#include "core/planner.hpp"
#include "core/resilience.hpp"
#include "core/sweep_runner.hpp"
#include "graph/graph.hpp"
#include "simnet/config.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct Point {
  int q;
  int failures;  // accumulated failed links (static curve), 1 for runtime
};

struct PointResult {
  // Static curve.
  double healthy_bw = 0.0;
  double repack_bw = 0.0;
  double keep_bw = 0.0;
  int repack_trees = 0;
  int keep_trees = 0;
  // Runtime recovery (failures == 1 only; zeros otherwise).
  long long healthy_cycles = 0;
  long long recovery_cycles = 0;
  long long detection_cycle = 0;
  long long chunks_replayed = 0;
  double slowdown = 0.0;
  double wall_ms = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Deterministic scattered failure set, same stride the resilience tests use.
std::vector<pfar::graph::Edge> failure_set(const pfar::graph::Graph& g,
                                           int count) {
  std::vector<pfar::graph::Edge> failed;
  for (int i = 0; i < count; ++i) {
    const pfar::graph::Edge e = g.edge((i * 23 + 5) % g.num_edges());
    bool dup = false;
    for (const auto& f : failed) dup = dup || f == e;
    if (!dup) failed.push_back(e);
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const int threads = args.threads();
  const long long m = args.get_int("m", 1500);
  // Engine for the cycle-level runs. The flow tier rejects fault scripts,
  // so --engine flow fails the runtime-recovery points by design.
  const simnet::SimEngine engine = bench::engine_arg(args);

  std::printf("Fault degradation: static repack curve + runtime recovery "
              "(link B = 1)\n\n");

  std::vector<Point> grid;
  for (int q : {5, 7, 11}) {
    for (int failures : {1, 2, 4, 8}) grid.push_back({q, failures});
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  core::SweepRunner runner(threads);
  const auto results = runner.map<PointResult>(
      static_cast<int>(grid.size()), [&](const core::SweepTask& task) {
        const Point& p = grid[static_cast<std::size_t>(task.index)];
        const auto point_start = std::chrono::steady_clock::now();
        const auto plan = core::AllreducePlanner(p.q).build();
        const graph::Graph& g = plan.topology();

        PointResult out;
        out.healthy_bw = plan.aggregate_bandwidth();

        // Static degradation: both replan policies on the same failure set.
        const auto failed = failure_set(g, p.failures);
        const auto repack = core::degrade_repack(g, failed);
        out.repack_bw = repack.bandwidths.aggregate;
        out.repack_trees = static_cast<int>(repack.trees.size());
        try {
          const auto keep =
              core::degrade_keep_surviving(g, plan.trees(), failed);
          out.keep_bw = keep.bandwidths.aggregate;
          out.keep_trees = static_cast<int>(keep.trees.size());
        } catch (const std::runtime_error&) {
          // Every tree touched a failed link: keep-surviving has nothing
          // left (bandwidth 0); only repack survives this point.
        }

        // Runtime recovery cost of one mid-collective failure.
        if (p.failures == 1) {
          simnet::SimConfig healthy_cfg;
          healthy_cfg.engine = engine;
          out.healthy_cycles = plan.simulate(m, healthy_cfg).sim.cycles;
          simnet::SimConfig cfg;
          cfg.engine = engine;
          cfg.progress_timeout = 800;
          // Down an uplink tree 0 actually uses, mid-collective.
          const auto& parents = plan.trees()[0].parents();
          for (int v = 0; v < static_cast<int>(parents.size()); ++v) {
            const int pa = parents[static_cast<std::size_t>(v)];
            if (pa >= 0) {
              cfg.faults.events.push_back(
                  {200, v, pa, simnet::FaultType::kLinkDown});
              break;
            }
          }
          const auto stats =
              collectives::run_resilient_allreduce(g, plan.trees(), m, cfg);
          out.recovery_cycles = stats.total_cycles;
          out.detection_cycle = stats.detection_cycle;
          out.chunks_replayed = stats.chunks_replayed;
          out.slowdown = out.healthy_cycles > 0
                             ? static_cast<double>(stats.total_cycles) /
                                   static_cast<double>(out.healthy_cycles)
                             : 0.0;
        }
        out.wall_ms = ms_since(point_start);
        return out;
      });
  const double total_ms = ms_since(sweep_start);

  util::Table table({"q", "fails", "healthy BW", "repack BW", "keep BW",
                     "repack trees", "recovery cyc", "slowdown"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add(grid[i].q, grid[i].failures, results[i].healthy_bw,
              results[i].repack_bw, results[i].keep_bw,
              results[i].repack_trees, results[i].recovery_cycles,
              results[i].slowdown);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: keep BW is non-increasing in the failure count and\n"
      "decays toward 0; greedy repack holds a positive floor within\n"
      "(0, healthy] throughout. Single-link recovery slowdown stays a small\n"
      "multiple of the healthy run (detection timeout + replay of lost\n"
      "chunks).\n");

  const std::string json_path =
      args.get_string("json", "BENCH_fault_degradation.json");
  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    bench::write_meta(json, 1);
    std::fprintf(json, "  \"threads\": %d,\n  \"m\": %lld,\n", threads, m);
    std::fprintf(json, "  \"total_wall_ms\": %.1f,\n  \"points\": [\n",
                 total_ms);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::fprintf(
          json,
          "    {\"q\": %d, \"failures\": %d, \"healthy_bw\": %.4f, "
          "\"repack_bw\": %.4f, \"keep_bw\": %.4f, \"repack_trees\": %d, "
          "\"keep_trees\": %d, \"healthy_cycles\": %lld, "
          "\"recovery_cycles\": %lld, \"detection_cycle\": %lld, "
          "\"chunks_replayed\": %lld, \"slowdown\": %.4f, "
          "\"wall_ms\": %.1f}%s\n",
          grid[i].q, grid[i].failures, results[i].healthy_bw,
          results[i].repack_bw, results[i].keep_bw, results[i].repack_trees,
          results[i].keep_trees, results[i].healthy_cycles,
          results[i].recovery_cycles, results[i].detection_cycle,
          results[i].chunks_replayed, results[i].slowdown, results[i].wall_ms,
          i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s (%zu points, %d threads, %.1f ms)\n",
                 json_path.c_str(), grid.size(), threads, total_ms);
  } else {
    std::fprintf(stderr, "warning: could not open %s for writing\n",
                 json_path.c_str());
  }
  return 0;
}
