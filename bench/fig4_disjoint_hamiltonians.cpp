// Reproduces Figure 4: maximal sets of floor((q+1)/2) edge-disjoint
// Hamiltonian paths for q = 3 and q = 4, printing each path's color pair,
// endpoints and vertex sequence, and the edge coverage of S_q.

#include <cstdio>
#include <iostream>

#include "singer/disjoint.hpp"
#include "singer/singer_graph.hpp"

namespace {

void report(int q) {
  using namespace pfar;
  const singer::SingerGraph s(q);
  const auto& d = s.difference_set();
  const auto set = singer::find_disjoint_hamiltonians(d);

  std::printf("-- q = %d: %d edge-disjoint Hamiltonian paths "
              "(bound floor((q+1)/2) = %d) --\n",
              q, set.size(), singer::disjoint_hamiltonian_upper_bound(q));
  long long covered = 0;
  for (const auto& path : set.paths) {
    std::printf("colors (%lld, %lld): ", path.d0, path.d1);
    for (std::size_t i = 0; i < path.vertices.size(); ++i) {
      std::printf("%s%lld", i ? "-" : "", path.vertices[i]);
    }
    std::printf("\n");
    covered += path.length();
  }
  std::printf("edges covered: %lld of %d (%s)\n\n", covered,
              s.graph().num_edges(),
              covered == s.graph().num_edges()
                  ? "all edges used"
                  : "one color class unused, as Figure 4b notes for q = 4");
}

}  // namespace

int main() {
  std::printf("Figure 4: maximal sets of edge-disjoint Hamiltonian paths\n\n");
  report(3);
  report(4);
  return 0;
}
