// Reproduces Figure 5b: tree depth (the latency proxy) of the two
// solutions across radixes — constant 3 for the low-depth trees versus
// (N-1)/2 (quadratic in q) for midpoint-rooted Hamiltonian paths.
// Depths are verified constructively for moderate q and by formula beyond.

#include <cstdio>
#include <iostream>

#include "polarfly/layout.hpp"
#include "singer/disjoint.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"
#include "util/args.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const pfar::util::Args args(argc, argv);
  using namespace pfar;
  std::printf("Figure 5b: tree depth comparison (latency is proportional "
              "to depth)\n\n");

  constexpr int kConstructiveLimit = 27;

  util::Table table({"radix q+1", "q", "N", "low-depth", "Hamiltonian depth",
                     "(N-1)/2", "source"});
  for (int q : util::prime_powers_in(2, 128)) {
    const int n = q * q + q + 1;
    std::string ld = q % 2 == 1 ? "3" : "-";
    long long ham_depth = (n - 1) / 2;
    std::string source = "formula";
    if (q <= kConstructiveLimit) {
      source = "constructed";
      const auto d = singer::build_difference_set(q);
      const auto set = singer::find_disjoint_hamiltonians(d);
      const auto ham = trees::hamiltonian_trees(set);
      ham_depth = ham.front().depth();
      if (q % 2 == 1) {
        const polarfly::PolarFly pf(q);
        const auto ts =
            trees::build_low_depth_trees(pf, polarfly::build_layout(pf));
        int depth = 0;
        for (const auto& t : ts) depth = std::max(depth, t.depth());
        ld = std::to_string(depth);
      }
    }
    table.add(q + 1, q, n, ld, ham_depth, (n - 1) / 2, source);
  }
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::printf(
      "\nShape check (paper): low-depth solution has constant depth 3;\n"
      "Hamiltonian depth grows quadratically with the radix.\n");
  return 0;
}
