// Ablation: credit sizing vs the bandwidth-delay product. Section 5.1
// notes that VC buffering is a first-order router cost; this bench shows
// the classic trade-off on the low-depth embedding: throughput ramps with
// per-VC credits until they cover the credit round trip
// (2 * link_latency), after which more buffering buys nothing. The
// (latency, credits) grid fans out across a core::SweepRunner
// (--threads N).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const simnet::SimEngine engine = bench::engine_arg(args);
  const auto plan = core::AllreducePlanner(7).build();
  const long long m = 20000;

  std::printf("Flow-control sizing on PolarFly q=7 low-depth trees, "
              "m=%lld\n\n", m);

  struct Point {
    int latency;
    int credits;
  };
  std::vector<Point> grid;
  for (int latency : {2, 8}) {
    for (int credits : {1, 2, 4, 8, 16, 32}) grid.push_back({latency, credits});
  }

  struct PointResult {
    double bw = 0.0;
    bool correct = false;
  };
  core::SweepRunner runner(args.threads());
  const auto results = runner.map<PointResult>(
      static_cast<int>(grid.size()), [&](const core::SweepTask& task) {
        const Point& p = grid[static_cast<std::size_t>(task.index)];
        simnet::SimConfig cfg;
        cfg.engine = engine;
        cfg.link_latency = p.latency;
        cfg.vc_credits = p.credits;
        const auto res = plan.simulate(m, cfg);
        return PointResult{res.sim.aggregate_bandwidth,
                           res.sim.values_correct};
      });

  util::Table table({"link latency", "VC credits", "round trip", "sim BW",
                     "fraction of Alg.1"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!results[i].correct) {
      std::fprintf(stderr, "correctness check failed\n");
      return 1;
    }
    table.add(grid[i].latency, grid[i].credits, 2 * grid[i].latency,
              results[i].bw, results[i].bw / plan.aggregate_bandwidth());
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: bandwidth saturates once credits >= ~2*latency (the\n"
      "round trip); undersized buffers throttle throughput to\n"
      "credits/round-trip but never break correctness.\n");
  return 0;
}
