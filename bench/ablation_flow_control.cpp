// Ablation: credit sizing vs the bandwidth-delay product. Section 5.1
// notes that VC buffering is a first-order router cost; this bench shows
// the classic trade-off on the low-depth embedding: throughput ramps with
// per-VC credits until they cover the credit round trip
// (2 * link_latency), after which more buffering buys nothing.

#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  const auto plan = core::AllreducePlanner(7).build();
  const long long m = 20000;

  std::printf("Flow-control sizing on PolarFly q=7 low-depth trees, "
              "m=%lld\n\n", m);

  util::Table table({"link latency", "VC credits", "round trip", "sim BW",
                     "fraction of Alg.1"});
  for (int latency : {2, 8}) {
    for (int credits : {1, 2, 4, 8, 16, 32}) {
      simnet::SimConfig cfg;
      cfg.link_latency = latency;
      cfg.vc_credits = credits;
      const auto res = plan.simulate(m, cfg);
      if (!res.sim.values_correct) {
        std::fprintf(stderr, "correctness check failed\n");
        return 1;
      }
      table.add(latency, credits, 2 * latency, res.sim.aggregate_bandwidth,
                res.sim.aggregate_bandwidth / plan.aggregate_bandwidth());
    }
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: bandwidth saturates once credits >= ~2*latency (the\n"
      "round trip); undersized buffers throttle throughput to\n"
      "credits/round-trip but never break correctness.\n");
  return 0;
}
