// Validates Theorem 5.1 / Corollaries 7.1 and 7.7 end-to-end on the
// cycle-level simulator: for each design point, the measured aggregate
// Allreduce bandwidth of both solutions must converge to the Algorithm 1
// prediction (q/2 for low-depth, floor((q+1)/2) for edge-disjoint) as the
// vector grows.
//
// The grid fans out across a core::SweepRunner (--threads N /
// PFAR_THREADS), and per-point results land in BENCH_sim_allreduce.json so
// the perf trajectory of the simulator is tracked release over release.
//
// Observability (PFAR_TRACE=on builds): --trace/--metrics/--report PATH
// re-run the largest design point with a Recorder attached and write the
// trace JSON, metrics JSONL and rendered run report (docs/observability.md).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct Point {
  int q;
  pfar::core::Solution solution;
  long long m;
};

struct PointResult {
  double alg1_bw = 0.0;
  double sim_bw = 0.0;
  double efficiency = 0.0;
  bool correct = false;
  double wall_ms = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const int threads = args.threads();
  const simnet::SimEngine engine = bench::engine_arg(args);
  const int shard_threads = static_cast<int>(args.get_int("shard-threads", 1));
  simnet::SimConfig sim_config;
  sim_config.engine = engine;
  sim_config.shard_threads = shard_threads;

  std::printf("Simulated vs analytic Allreduce bandwidth (elements/cycle, "
              "link B = 1, engine = %s)\n\n",
              simnet::to_string(engine));

  const int max_q = static_cast<int>(args.get_int("max-q", 11));
  std::vector<Point> grid;
  for (int q : {3, 5, 7, 9, 11}) {
    if (q > max_q) continue;
    for (const auto solution :
         {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint}) {
      for (long long m : {2000LL, 20000LL}) {
        grid.push_back({q, solution, m});
      }
    }
  }
  // The flow tier never builds the per-VC fabric, so it scales to radices
  // the cycle engines cannot reach. Extend the grid past the cycle-feasible
  // range only on that tier; m grows with q so the fluid measure phase
  // dominates warmup/drain (docs/simulation_engine.md).
  if (engine == simnet::SimEngine::kFlow) {
    for (const auto& [q, m] : std::initializer_list<std::pair<int, long long>>{
             {27, 100'000'000LL},
             {81, 300'000'000LL},
             {243, 2'000'000'000LL}}) {
      if (q > max_q) continue;
      grid.push_back({q, core::Solution::kEdgeDisjoint, m});
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  core::SweepRunner runner(threads);
  const auto results = runner.map<PointResult>(
      static_cast<int>(grid.size()), [&](const core::SweepTask& task) {
        const Point& p = grid[static_cast<std::size_t>(task.index)];
        const auto point_start = std::chrono::steady_clock::now();
        const auto plan =
            core::AllreducePlanner(p.q).solution(p.solution).build();
        const auto res = plan.simulate(p.m, sim_config);
        PointResult out;
        out.alg1_bw = plan.aggregate_bandwidth();
        out.sim_bw = res.sim.aggregate_bandwidth;
        out.efficiency = res.efficiency_vs_model;
        out.correct = res.sim.values_correct;
        out.wall_ms = ms_since(point_start);
        return out;
      });
  const double total_ms = ms_since(sweep_start);

  util::Table table({"q", "solution", "m", "Alg.1 BW", "sim BW",
                     "efficiency", "correct"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add(grid[i].q, core::to_string(grid[i].solution), grid[i].m,
              results[i].alg1_bw, results[i].sim_bw, results[i].efficiency,
              results[i].correct);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: efficiency -> 1.0 as m grows; every run reduces\n"
      "exactly (integer-checked at all N nodes).\n");

  const std::string json_path =
      args.get_string("json", "BENCH_sim_allreduce.json");
  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    bench::write_meta(json, 1);
    std::fprintf(json, "  \"threads\": %d,\n  \"total_wall_ms\": %.1f,\n",
                 threads, total_ms);
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::fprintf(
          json,
          "    {\"engine\": \"%s\", \"q\": %d, \"solution\": \"%s\", "
          "\"m\": %lld, "
          "\"alg1_bw\": %.4f, \"sim_bw\": %.4f, \"efficiency\": %.4f, "
          "\"correct\": %s, \"wall_ms\": %.1f}%s\n",
          simnet::to_string(engine), grid[i].q,
          core::to_string(grid[i].solution).c_str(), grid[i].m,
          results[i].alg1_bw, results[i].sim_bw, results[i].efficiency,
          results[i].correct ? "true" : "false", results[i].wall_ms,
          i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s (%zu points, %d threads, %.1f ms)\n",
                 json_path.c_str(), grid.size(), threads, total_ms);
  } else {
    std::fprintf(stderr, "warning: could not open %s for writing\n",
                 json_path.c_str());
  }

  // Observability artifacts: re-run the largest design point of the grid
  // with a Recorder attached (planner phase timers + full simulation
  // trace/metrics). No-op unless one of the flags is given; in a
  // PFAR_TRACE=off build the artifacts come out empty by design.
  if (args.has("trace") || args.has("metrics") || args.has("report")) {
    const Point& p = grid.back();
    obsv::Recorder recorder(1u << 20);
    const auto plan = core::AllreducePlanner(p.q)
                          .solution(p.solution)
                          .observer(&recorder)
                          .build();
    simnet::SimConfig config = sim_config;
    config.recorder = &recorder;
    plan.simulate(p.m, config);
    recorder.write_files(args.get_string("trace", ""),
                         args.get_string("metrics", ""));
    std::fprintf(stderr, "observability: q=%d %s m=%lld -> %zu trace "
                 "events, %zu metrics\n",
                 p.q, core::to_string(p.solution).c_str(), p.m,
                 recorder.trace.size(), recorder.metrics.size());
    if (args.has("report")) {
      std::ostringstream trace_json, metrics_jsonl;
      recorder.trace.write_chrome_json(trace_json);
      recorder.metrics.write_jsonl(metrics_jsonl);
      const auto report =
          obsv::build_report(trace_json.str(), metrics_jsonl.str());
      const std::string report_path = args.get_string("report", "");
      std::ofstream out(report_path);
      if (out) {
        obsv::render_report(report, out);
        std::fprintf(stderr, "wrote %s\n", report_path.c_str());
      } else {
        std::fprintf(stderr, "warning: could not open %s for writing\n",
                     report_path.c_str());
      }
    }
  }
  return 0;
}
