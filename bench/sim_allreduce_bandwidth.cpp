// Validates Theorem 5.1 / Corollaries 7.1 and 7.7 end-to-end on the
// cycle-level simulator: for each design point, the measured aggregate
// Allreduce bandwidth of both solutions must converge to the Algorithm 1
// prediction (q/2 for low-depth, floor((q+1)/2) for edge-disjoint) as the
// vector grows.

#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  std::printf("Simulated vs analytic Allreduce bandwidth (elements/cycle, "
              "link B = 1)\n\n");

  util::Table table({"q", "solution", "m", "Alg.1 BW", "sim BW",
                     "efficiency", "correct"});
  for (int q : {3, 5, 7, 9, 11}) {
    for (const auto solution :
         {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint}) {
      const auto plan =
          core::AllreducePlanner(q).solution(solution).build();
      for (long long m : {2000LL, 20000LL}) {
        const auto res = plan.simulate(m);
        table.add(q, core::to_string(solution), m,
                  plan.aggregate_bandwidth(), res.sim.aggregate_bandwidth,
                  res.efficiency_vs_model, res.sim.values_correct);
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: efficiency -> 1.0 as m grows; every run reduces\n"
      "exactly (integer-checked at all N nodes).\n");
  return 0;
}
