// Multi-tenant service throughput (docs/service_layer.md): replay one
// seeded open-loop arrival stream of heterogeneous small-message-heavy
// allreduce jobs through the three scheduler policies — serial (one job at
// a time on the full tree set), partitioned (one lane per link-disjoint
// tree group), and partitioned+batched (same lanes plus same-(group, op)
// coalescing into fused runs) — across a grid of offered loads.
//
// Per point: jobs per kilocycle, p50/p99 completion latency, fabric
// utilization up to the makespan, and the admission drop count. All of it
// is integer virtual-cycle arithmetic over deterministic simulator results,
// so every field except wall_ms is bit-identical run to run and across
// --threads / PFAR_THREADS values; BENCH_service_throughput.json is gated
// exactly by tools/check_bench_regression.py.
//
// Offered load is calibrated in units of the serial service rate: load 1.0
// spaces arrivals (on average) one serial small-job service time apart, so
// load 2.0 oversubscribes the serial policy by design and the headroom the
// lanes add shows up directly as throughput instead of queueing.
//
// Observability (PFAR_TRACE=on builds): --trace/--metrics/--report PATH
// re-run the batched policy at the highest load with a Recorder attached —
// the trace shows per-lane batch spans on the service virtual timeline
// (tracks 200000+), rendered by tools/pfar_report.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_json.hpp"
#include "collectives/bucket_schedule.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "service/service.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace pfar;

struct Point {
  service::SchedulerPolicy policy;
  double load;
  long long mean_gap;
};

struct PointResult {
  service::ServiceStats stats;
  double wall_ms = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Seeded open-loop arrival stream: ~4 tenants, small-message-heavy mix
/// (85% m in [64, 512], 13% in [1024, 4096], 2% m = 8192 — small by count
/// AND by volume, the regime where per-job pipeline fill dominates
/// streaming and scheduling policy matters; aggregate streaming bandwidth
/// is partition-invariant, so an element-heavy mix would flatten every
/// policy to the same number), mostly kSum with an eighth kMax (operator
/// diversity limits coalescing, as real mixed tenants would), priorities
/// 0-2, uniform inter-arrival gaps with the requested mean. Integer-only:
/// the same seed yields the same stream on every platform.
std::vector<service::JobSpec> make_workload(int jobs, int tenants,
                                            long long mean_gap,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<service::JobSpec> out;
  out.reserve(static_cast<std::size_t>(jobs));
  long long t = 0;
  for (int i = 0; i < jobs; ++i) {
    t += 1 + static_cast<long long>(
                 rng.next_below(static_cast<std::uint64_t>(2 * mean_gap)));
    service::JobSpec spec;
    spec.tenant = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(tenants)));
    const std::uint64_t bucket = rng.next_below(100);
    if (bucket < 85) {
      spec.elements = 64 + static_cast<long long>(rng.next_below(449));
    } else if (bucket < 98) {
      spec.elements = 1024 + static_cast<long long>(rng.next_below(3073));
    } else {
      spec.elements = 8192;
    }
    spec.op = rng.next_below(8) == 0 ? service::ReduceOp::kMax
                                     : service::ReduceOp::kSum;
    spec.priority = static_cast<int>(rng.next_below(3));
    spec.arrival_cycle = t;
    out.push_back(spec);
  }
  return out;
}

service::ServiceStats run_point(const core::AllreducePlan& plan,
                                const service::ServiceConfig& config,
                                const std::vector<service::JobSpec>& jobs) {
  service::AllreduceService svc(plan, config);
  for (const auto& spec : jobs) svc.submit(spec);
  svc.drain();
  return svc.stats();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int threads = args.threads();
  const int q = static_cast<int>(args.get_int("q", 11));
  const int jobs = static_cast<int>(args.get_int("jobs", 400));
  const int tenants = static_cast<int>(args.get_int("tenants", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto solution = core::Solution::kEdgeDisjoint;

  service::ServiceConfig base_config;
  base_config.sim.engine = bench::engine_arg(args);
  base_config.max_queue_jobs =
      static_cast<int>(args.get_int("max-queue", 64));
  base_config.batch_max_jobs =
      static_cast<int>(args.get_int("batch-max-jobs", 16));

  const auto plan = core::AllreducePlanner(q).solution(solution).build();

  // Calibrate the load axis: one serial service time of the mix's mean job
  // size (~768 elements) on the full tree set. Deterministic — it is
  // itself a simulator result.
  const auto calib = collectives::run_bucketed_allreduce(
      plan.topology(), plan.trees(), {768}, base_config.sim,
      collectives::BucketStrategy::kFused);
  const long long serial_cost = calib.total_cycles;

  std::printf(
      "Multi-tenant allreduce service throughput (q = %d, %s, %d trees, "
      "engine = %s)\n%d jobs, %d tenants, seed %llu; load 1.0 = one "
      "arrival per %lld cycles (serial mean-job service time)\n\n",
      q, core::to_string(solution).c_str(), plan.num_trees(),
      simnet::to_string(base_config.sim.engine), jobs, tenants,
      static_cast<unsigned long long>(seed), serial_cost);

  // 4.0 deliberately oversubscribes even the partitioned capacity: with
  // every policy workload-bound, throughput ratios become pure capacity
  // ratios (and admission control finally has something to reject).
  const std::vector<double> loads{0.5, 1.0, 2.0, 4.0};
  const std::vector<service::SchedulerPolicy> policies{
      service::SchedulerPolicy::kSerial,
      service::SchedulerPolicy::kPartitioned,
      service::SchedulerPolicy::kPartitionedBatched};

  std::vector<Point> grid;
  std::vector<std::vector<service::JobSpec>> workloads;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    const long long mean_gap = std::max<long long>(
        1, static_cast<long long>(static_cast<double>(serial_cost) /
                                  loads[li]));
    workloads.push_back(
        make_workload(jobs, tenants, mean_gap, seed + 1000003 * li));
    for (const auto policy : policies) {
      grid.push_back({policy, loads[li], mean_gap});
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  core::SweepRunner runner(threads);
  const auto results = runner.map<PointResult>(
      static_cast<int>(grid.size()), [&](const core::SweepTask& task) {
        const Point& p = grid[static_cast<std::size_t>(task.index)];
        const auto point_start = std::chrono::steady_clock::now();
        service::ServiceConfig config = base_config;
        config.policy = p.policy;
        PointResult out;
        out.stats = run_point(
            plan, config,
            workloads[static_cast<std::size_t>(task.index) /
                      policies.size()]);
        out.wall_ms = ms_since(point_start);
        return out;
      });
  const double total_ms = ms_since(sweep_start);

  util::Table table({"load", "policy", "jobs/kcycle", "p50", "p99",
                     "util", "done", "rej", "batches"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& s = results[i].stats;
    table.add(grid[i].load, service::to_string(grid[i].policy),
              s.jobs_per_kcycle, s.p50_cycles, s.p99_cycles, s.utilization,
              s.completed, s.rejected, s.batches);
  }
  table.print(std::cout);

  // Headline: the tentpole acceptance ratio at the highest offered load.
  const auto& serial_top = results[grid.size() - 3].stats;
  const auto& batched_top = results[grid.size() - 1].stats;
  const double speedup = serial_top.jobs_per_kcycle > 0
                             ? batched_top.jobs_per_kcycle /
                                   serial_top.jobs_per_kcycle
                             : 0.0;
  std::printf(
      "\nAt load %.1f: partitioned+batched sustains %.2fx the serial "
      "throughput\n(%.3f vs %.3f jobs/kcycle across %d lanes).\n",
      loads.back(), speedup, batched_top.jobs_per_kcycle,
      serial_top.jobs_per_kcycle, static_cast<int>(
          plan.link_disjoint_tree_groups().size()));

  bool all_correct = true;
  for (const auto& r : results) all_correct &= r.stats.values_correct;
  if (!all_correct) {
    std::fprintf(stderr, "ERROR: a simulated run reduced incorrectly\n");
    return 1;
  }

  const std::string json_path =
      args.get_string("json", "BENCH_service_throughput.json");
  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    bench::write_meta(json, 1);
    std::fprintf(json,
                 "  \"threads\": %d,\n  \"total_wall_ms\": %.1f,\n"
                 "  \"serial_cost_cycles\": %lld,\n  \"points\": [\n",
                 threads, total_ms, serial_cost);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& s = results[i].stats;
      std::fprintf(
          json,
          "    {\"engine\": \"%s\", \"q\": %d, \"policy\": \"%s\", "
          "\"load\": %.2f, \"jobs\": %d, "
          "\"jobs_per_kcycle\": %.4f, \"p50_cycles\": %lld, "
          "\"p99_cycles\": %lld, \"makespan_cycles\": %lld, "
          "\"utilization\": %.4f, \"completed\": %d, \"rejected\": %d, "
          "\"batches\": %d, \"coalesced_jobs\": %d, \"correct\": %s, "
          "\"wall_ms\": %.1f}%s\n",
          simnet::to_string(base_config.sim.engine), q,
          service::to_string(grid[i].policy), grid[i].load, jobs,
          s.jobs_per_kcycle, s.p50_cycles, s.p99_cycles, s.makespan_cycles,
          s.utilization, s.completed, s.rejected, s.batches,
          s.coalesced_jobs, s.values_correct ? "true" : "false",
          results[i].wall_ms, i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s (%zu points, %d threads, %.1f ms)\n",
                 json_path.c_str(), grid.size(), threads, total_ms);
  } else {
    std::fprintf(stderr, "warning: could not open %s for writing\n",
                 json_path.c_str());
  }

  // Observability artifacts: re-run the batched policy at the highest load
  // with the service recorder attached (per-lane batch spans, queue-depth
  // gauge, job counters on the service virtual timeline).
  if (args.has("trace") || args.has("metrics") || args.has("report")) {
    obsv::Recorder recorder(1u << 20);
    service::ServiceConfig config = base_config;
    config.policy = service::SchedulerPolicy::kPartitionedBatched;
    config.sim.recorder = &recorder;
    run_point(plan, config, workloads.back());
    recorder.write_files(args.get_string("trace", ""),
                         args.get_string("metrics", ""));
    std::fprintf(stderr,
                 "observability: batched at load %.1f -> %zu trace events, "
                 "%zu metrics\n",
                 loads.back(), recorder.trace.size(),
                 recorder.metrics.size());
    if (args.has("report")) {
      std::ostringstream trace_json, metrics_jsonl;
      recorder.trace.write_chrome_json(trace_json);
      recorder.metrics.write_jsonl(metrics_jsonl);
      const auto report =
          obsv::build_report(trace_json.str(), metrics_jsonl.str());
      const std::string report_path = args.get_string("report", "");
      std::ofstream out(report_path);
      if (out) {
        obsv::render_report(report, out);
        std::fprintf(stderr, "wrote %s\n", report_path.c_str());
      } else {
        std::fprintf(stderr, "warning: could not open %s for writing\n",
                     report_path.c_str());
      }
    }
  }
  return 0;
}
