// Latency-vs-offered-load curves of the underlying network fabric:
// PolarFly against a 2D torus and a hypercube of comparable node count
// under uniform traffic. Supports the Section 1.3 positioning ("PolarFly
// has been shown to outperform previous networks ... in scaling
// efficiency, bisection width, and performance per cost") with the same
// virtual cut-through router model used throughout this library. Every
// (topology, rate) point is independent, so the whole grid fans out
// across a core::SweepRunner (--threads N).

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep_runner.hpp"
#include "polarfly/erq.hpp"
#include "simnet/traffic_sim.hpp"
#include "topo/topologies.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace pfar;

struct Curve {
  std::string name;
  graph::Graph graph;
  simnet::Routing routing;
};

constexpr double kRates[] = {0.02, 0.05, 0.10, 0.20, 0.30, 0.45};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  std::printf("Uniform-traffic latency/throughput, virtual cut-through "
              "routers (4-flit packets)\n\n");

  const polarfly::PolarFly pf(7);  // 57 nodes, radix 8, diameter 2
  std::vector<Curve> curves;
  curves.push_back(
      {"PolarFly q=7 (57n)", pf.graph(), simnet::Routing::kMinimal});
  curves.push_back(
      {"PolarFly q=7 Valiant", pf.graph(), simnet::Routing::kValiant});
  curves.push_back(
      {"SlimFly q=5 (50n)", topo::slimfly(5), simnet::Routing::kMinimal});
  curves.push_back(
      {"torus 8x7 (56n)", topo::torus({8, 7}), simnet::Routing::kMinimal});
  curves.push_back(
      {"hypercube d=6 (64n)", topo::hypercube(6), simnet::Routing::kMinimal});

  // Share one simulator (and its BFS routing tables) per topology; run()
  // is const and every design point carries its own RNG stream.
  std::vector<std::unique_ptr<simnet::TrafficSimulator>> sims;
  sims.reserve(curves.size());
  for (const auto& curve : curves) {
    sims.push_back(std::make_unique<simnet::TrafficSimulator>(curve.graph));
  }

  const int rates = static_cast<int>(sizeof(kRates) / sizeof(kRates[0]));
  core::SweepRunner runner(args.threads());
  const auto results = runner.map<simnet::TrafficResult>(
      static_cast<int>(curves.size()) * rates,
      [&](const core::SweepTask& task) {
        const int c = task.index / rates;
        simnet::TrafficConfig cfg;
        cfg.routing = curves[static_cast<std::size_t>(c)].routing;
        cfg.injection_rate = kRates[task.index % rates];
        cfg.warmup_cycles = 2000;
        cfg.measure_packets = 15000;
        cfg.max_cycles = 400'000;
        return sims[static_cast<std::size_t>(c)]->run(cfg);
      });

  util::Table table({"topology", "offered load", "avg latency", "p99",
                     "avg hops", "throughput"});
  for (std::size_t c = 0; c < curves.size(); ++c) {
    for (int i = 0; i < rates; ++i) {
      const auto& r = results[c * rates + static_cast<std::size_t>(i)];
      if (r.saturated) {
        table.add(curves[c].name, kRates[i], "saturated", "-", "-", "-");
      } else {
        table.add(curves[c].name, kRates[i], r.avg_latency, r.p99_latency,
                  r.avg_hops, r.throughput);
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: PolarFly's diameter-2 paths give the lowest zero-load\n"
      "latency and it sustains higher injection rates than the equal-size\n"
      "torus before saturating (more links + shorter paths).\n");
  return 0;
}
