// Latency-vs-offered-load curves of the underlying network fabric:
// PolarFly against a 2D torus and a hypercube of comparable node count
// under uniform traffic. Supports the Section 1.3 positioning ("PolarFly
// has been shown to outperform previous networks ... in scaling
// efficiency, bisection width, and performance per cost") with the same
// virtual cut-through router model used throughout this library.

#include <cstdio>
#include <iostream>

#include "polarfly/erq.hpp"
#include "simnet/traffic_sim.hpp"
#include "topo/topologies.hpp"
#include "util/table.hpp"

namespace {

using namespace pfar;

void sweep(util::Table& table, const std::string& name,
           const graph::Graph& g,
           simnet::Routing routing = simnet::Routing::kMinimal) {
  const simnet::TrafficSimulator sim(g);
  for (double rate : {0.02, 0.05, 0.10, 0.20, 0.30, 0.45}) {
    simnet::TrafficConfig cfg;
    cfg.routing = routing;
    cfg.injection_rate = rate;
    cfg.warmup_cycles = 2000;
    cfg.measure_packets = 15000;
    cfg.max_cycles = 400'000;
    const auto r = sim.run(cfg);
    if (r.saturated) {
      table.add(name, rate, "saturated", "-", "-", "-");
    } else {
      table.add(name, rate, r.avg_latency, r.p99_latency, r.avg_hops,
                r.throughput);
    }
  }
}

}  // namespace

int main() {
  std::printf("Uniform-traffic latency/throughput, virtual cut-through "
              "routers (4-flit packets)\n\n");
  util::Table table({"topology", "offered load", "avg latency", "p99",
                     "avg hops", "throughput"});
  const polarfly::PolarFly pf(7);  // 57 nodes, radix 8, diameter 2
  sweep(table, "PolarFly q=7 (57n)", pf.graph());
  sweep(table, "PolarFly q=7 Valiant", pf.graph(), simnet::Routing::kValiant);
  sweep(table, "SlimFly q=5 (50n)", topo::slimfly(5));
  sweep(table, "torus 8x7 (56n)", topo::torus({8, 7}));
  sweep(table, "hypercube d=6 (64n)", topo::hypercube(6));
  table.print(std::cout);
  std::printf(
      "\nShape check: PolarFly's diameter-2 paths give the lowest zero-load\n"
      "latency and it sustains higher injection rates than the equal-size\n"
      "torus before saturating (more links + shorter paths).\n");
  return 0;
}
