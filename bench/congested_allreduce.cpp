// Congestion-aware adaptive Allreduce under live background traffic
// (docs/congestion_adaptation.md): for each design point the static plan
// (Theorem 5.1 split over the paper's trees, oblivious to traffic) and the
// adaptive plan (probe window -> congestion map -> capacitated Algorithm 1
// re-weighting + hot-link re-planning) execute the same m-element
// collective through the same deterministic background load, and the
// bandwidth ratio is reported.
//
// The headline rows are the permutation patterns at >= 25% load: background
// flows concentrate on a few links there, the static split keeps feeding
// the strangled trees, and the controller's re-weighting recovers most of
// the gap. Uniform background degrades every link alike, so adaptation is
// correctly (and verifiably) a no-op. All fields are deterministic — the
// cycle engines replay background drains bit-identically — so the CI gate
// compares them exactly against bench/baselines/.
//
// Observability (PFAR_TRACE=on builds): --trace/--metrics/--report PATH
// re-run the largest design point with a Recorder attached; the rendered
// report includes the congestion-adaptation timeline section.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "bench_json.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct Pattern {
  const char* name;
  pfar::simnet::TrafficPattern pattern;
};

struct Point {
  int q;
  double load;
  Pattern pattern;
  long long m;
};

struct PointResult {
  double static_bw = 0.0;
  double adaptive_bw = 0.0;
  double win = 0.0;  // adaptive_bw / static_bw
  long long hot_links = 0;
  long long replanned_trees = 0;
  long long probe_cycles = 0;
  bool correct = false;
  double wall_ms = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

pfar::simnet::SimConfig make_config(const Point& p,
                                    pfar::simnet::SimEngine engine,
                                    int shard_threads) {
  pfar::simnet::SimConfig cfg;
  cfg.engine = engine;
  cfg.shard_threads = shard_threads;
  cfg.background.pattern = p.pattern.pattern;
  cfg.background.load = p.load;
  // A fixed permutation with structure (seed 7 concentrates several flows
  // through shared links on both benched radices) and a mild hotspot; the
  // defaults would also work but these keep the headline rows interesting.
  cfg.background.seed = 7;
  cfg.background.hotspot_fraction = 0.2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const int threads = args.threads();
  const simnet::SimEngine engine = bench::engine_arg(args);
  const int shard_threads = static_cast<int>(args.get_int("shard-threads", 1));

  std::printf(
      "Static vs congestion-adaptive Allreduce under background traffic\n"
      "(elements/cycle, link B = 1, low-depth trees, engine = %s)\n\n",
      simnet::to_string(engine));

  const Pattern patterns[] = {
      {"uniform", simnet::TrafficPattern::kUniform},
      {"permutation", simnet::TrafficPattern::kPermutation},
      {"hotspot", simnet::TrafficPattern::kHotspot},
  };
  const int max_q = static_cast<int>(args.get_int("max-q", 11));
  std::vector<Point> grid;
  for (int q : {7, 11}) {
    if (q > max_q) continue;
    for (double load : {0.10, 0.25, 0.50}) {
      for (const Pattern& pattern : patterns) {
        grid.push_back({q, load, pattern, 20000});
      }
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  core::SweepRunner runner(threads);
  const auto results = runner.map<PointResult>(
      static_cast<int>(grid.size()), [&](const core::SweepTask& task) {
        const Point& p = grid[static_cast<std::size_t>(task.index)];
        const auto point_start = std::chrono::steady_clock::now();
        const auto plan = core::AllreducePlanner(p.q)
                              .solution(core::Solution::kLowDepth)
                              .build();
        const auto res = adapt::run_adaptive_allreduce(
            plan.topology(), plan.trees(), p.m,
            make_config(p, engine, shard_threads), adapt::ControllerConfig{},
            /*compare_static=*/true);
        PointResult out;
        out.static_bw = res.static_run.sim.aggregate_bandwidth;
        out.adaptive_bw = res.adaptive.sim.aggregate_bandwidth;
        out.win = out.static_bw > 0.0 ? out.adaptive_bw / out.static_bw : 0.0;
        out.hot_links = static_cast<long long>(res.plan.hot_links.size());
        out.replanned_trees =
            static_cast<long long>(res.plan.replanned.size());
        out.probe_cycles = res.probe.cycles;
        out.correct = res.adaptive.sim.values_correct &&
                      res.static_run.sim.values_correct;
        out.wall_ms = ms_since(point_start);
        return out;
      });
  const double total_ms = ms_since(sweep_start);

  util::Table table({"q", "load", "pattern", "static BW", "adaptive BW",
                     "win", "hot", "replanned", "correct"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add(grid[i].q, grid[i].load, grid[i].pattern.name,
              results[i].static_bw, results[i].adaptive_bw, results[i].win,
              results[i].hot_links, results[i].replanned_trees,
              results[i].correct);
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: win >= 1.0 everywhere (the controller never commits a\n"
      "predictably worse plan); permutation rows at >= 25%% load show the\n"
      "re-weighting recovering bandwidth the static split leaves behind.\n");

  const std::string json_path =
      args.get_string("json", "BENCH_congested_allreduce.json");
  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    bench::write_meta(json, 1);
    std::fprintf(json, "  \"threads\": %d,\n  \"total_wall_ms\": %.1f,\n",
                 threads, total_ms);
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::fprintf(
          json,
          "    {\"engine\": \"%s\", \"q\": %d, \"solution\": \"low-depth\", "
          "\"m\": %lld, \"load\": %.2f, \"pattern\": \"%s\", "
          "\"static_bw\": %.4f, \"adaptive_bw\": %.4f, \"win\": %.4f, "
          "\"hot_links\": %lld, \"replanned_trees\": %lld, "
          "\"probe_cycles\": %lld, \"correct\": %s, \"wall_ms\": %.1f}%s\n",
          simnet::to_string(engine), grid[i].q, grid[i].m, grid[i].load,
          grid[i].pattern.name, results[i].static_bw, results[i].adaptive_bw,
          results[i].win, results[i].hot_links, results[i].replanned_trees,
          results[i].probe_cycles, results[i].correct ? "true" : "false",
          results[i].wall_ms, i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s (%zu points, %d threads, %.1f ms)\n",
                 json_path.c_str(), grid.size(), threads, total_ms);
  } else {
    std::fprintf(stderr, "warning: could not open %s for writing\n",
                 json_path.c_str());
  }

  // Observability artifacts: re-run the highest-contrast design point with
  // a Recorder attached so the rendered report exercises the congestion-
  // adaptation timeline (probe window span + replan instant + adapt.*
  // counters). No-op unless a flag is given; empty in PFAR_TRACE=off
  // builds by design.
  if (args.has("trace") || args.has("metrics") || args.has("report")) {
    Point p = grid.back();
    p.pattern = patterns[1];  // permutation: hot links + replans
    p.load = 0.50;
    obsv::Recorder recorder(1u << 20);
    const auto plan = core::AllreducePlanner(p.q)
                          .solution(core::Solution::kLowDepth)
                          .build();
    simnet::SimConfig config = make_config(p, engine, shard_threads);
    config.recorder = &recorder;
    adapt::run_adaptive_allreduce(plan.topology(), plan.trees(), p.m, config,
                                  adapt::ControllerConfig{},
                                  /*compare_static=*/false);
    recorder.write_files(args.get_string("trace", ""),
                         args.get_string("metrics", ""));
    std::fprintf(stderr,
                 "observability: q=%d load=%.2f %s -> %zu trace events, %zu "
                 "metrics\n",
                 p.q, p.load, p.pattern.name, recorder.trace.size(),
                 recorder.metrics.size());
    if (args.has("report")) {
      std::ostringstream trace_json, metrics_jsonl;
      recorder.trace.write_chrome_json(trace_json);
      recorder.metrics.write_jsonl(metrics_jsonl);
      const auto report =
          obsv::build_report(trace_json.str(), metrics_jsonl.str());
      const std::string report_path = args.get_string("report", "");
      std::ofstream out(report_path);
      if (out) {
        obsv::render_report(report, out);
        std::fprintf(stderr, "wrote %s\n", report_path.c_str());
      } else {
        std::fprintf(stderr, "warning: could not open %s for writing\n",
                     report_path.c_str());
      }
    }
  }
  return 0;
}
