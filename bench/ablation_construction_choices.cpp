// Ablations of two construction choices:
//  (1) Section 7.3's randomized maximal-independent-set selection of
//      disjoint Hamiltonian pairs (paper's method, 30 attempts) versus the
//      exact maximum-matching formulation in this library.
//  (2) Starter-quadric choice in Algorithm 2/3: the layout theorem holds
//      for any starter, so bandwidth and depth must be invariant.
// Also reports the optimal-vs-uniform vector split of Theorem 5.1 on an
// asymmetric tree set.

#include <cstdio>
#include <iostream>

#include "bench_json.hpp"
#include "collectives/innetwork.hpp"
#include "model/congestion_model.hpp"
#include "polarfly/layout.hpp"
#include "singer/disjoint.hpp"
#include "trees/low_depth.hpp"
#include "util/args.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  simnet::SimConfig sim_config;
  sim_config.engine = bench::engine_arg(args);

  std::printf("Ablation 1: random-MIS (paper Sec. 7.3) vs maximum matching\n\n");
  util::Table mis({"q", "bound", "matching", "random(1)", "random(5)",
                   "random(30)"});
  util::Rng rng(7);
  for (int q : {5, 9, 13, 17, 25, 27, 31}) {
    const auto d = singer::build_difference_set(q);
    const int exact = singer::find_disjoint_hamiltonians(d).size();
    const int r1 = singer::find_disjoint_hamiltonians_random(d, rng, 1).size();
    const int r5 = singer::find_disjoint_hamiltonians_random(d, rng, 5).size();
    const int r30 =
        singer::find_disjoint_hamiltonians_random(d, rng, 30).size();
    mis.add(q, singer::disjoint_hamiltonian_upper_bound(q), exact, r1, r5,
            r30);
  }
  mis.print(std::cout);
  std::printf("\n(The paper found the maximum within 30 random instances for "
              "all q < 128;\n the matching method is exact by construction.)\n");

  std::printf("\nAblation 2: starter-quadric invariance of Algorithm 3\n\n");
  util::Table starters({"q", "starter index", "agg BW xB", "max depth",
                        "congestion"});
  for (int q : {5, 9}) {
    const polarfly::PolarFly pf(q);
    for (int s = 0; s <= q; s += (q + 1) / 3) {
      const auto layout = polarfly::build_layout(pf, s);
      const auto ts = trees::build_low_depth_trees(pf, layout);
      const auto bw = model::compute_tree_bandwidths(pf.graph(), ts, 1.0);
      int depth = 0;
      for (const auto& t : ts) depth = std::max(depth, t.depth());
      starters.add(q, s, bw.aggregate, depth,
                   trees::max_congestion(pf.graph(), ts));
    }
  }
  starters.print(std::cout);

  std::printf("\nAblation 3: Theorem 5.1 optimal split vs uniform split\n\n");
  // Asymmetric set on K4: two trees sharing a chain (B=1/2 each) plus one
  // disjoint tree (B=1): uniform splitting starves the fast tree.
  graph::Graph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j);
  }
  g.finalize();
  const std::vector<trees::SpanningTree> ts{
      trees::SpanningTree(0, {-1, 0, 1, 2}),
      trees::SpanningTree(0, {-1, 0, 1, 2}),
      trees::SpanningTree(0, {-1, 3, 0, 0}),
  };
  util::Table split({"m", "optimal cycles", "uniform cycles", "penalty"});
  for (long long m : {6000LL, 24000LL}) {
    const auto opt = collectives::run_innetwork_allreduce(
        g, ts, m, sim_config, collectives::SplitPolicy::kOptimal);
    const auto uni = collectives::run_innetwork_allreduce(
        g, ts, m, sim_config, collectives::SplitPolicy::kUniform);
    split.add(m, opt.sim.cycles, uni.sim.cycles,
              static_cast<double>(uni.sim.cycles) /
                  static_cast<double>(opt.sim.cycles));
  }
  split.print(std::cout);
  return 0;
}
