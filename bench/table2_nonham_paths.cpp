// Reproduces Table 2: all non-Hamiltonian maximal alternating-sum
// non-repeating paths in S_4 with difference set {0, 1, 4, 14, 16}
// (reversals excluded, as in the paper).

#include <cstdio>
#include <iostream>

#include "singer/paths.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  const auto d = singer::build_difference_set(4);
  std::printf("Table 2: non-Hamiltonian maximal alternating-sum paths in "
              "S_4, D = {");
  for (std::size_t i = 0; i < d.elements.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", d.elements[i]);
  }
  std::printf("}, N = %lld\n\n", d.n);

  util::Table table({"d0", "d1", "gcd(d0-d1, N)", "# vertices k", "b1",
                     "bk"});
  for (std::size_t i = 0; i < d.elements.size(); ++i) {
    for (std::size_t j = 0; j < d.elements.size(); ++j) {
      if (i == j) continue;
      const long long d0 = d.elements[i], d1 = d.elements[j];
      if (d0 > d1) continue;  // exclude reversals
      const long long g = util::gcd_ll(d0 - d1, d.n);
      if (g == 1) continue;  // Hamiltonian: not in this table
      const auto path = singer::build_alternating_path(d, d0, d1);
      table.add(d0, d1, g, static_cast<long long>(path.vertices.size()),
                path.vertices.front(), path.vertices.back());
    }
  }
  table.print(std::cout);
  std::printf("\nPaper's rows: (0,14,k=3,7,0) (1,4,k=7,2,11) "
              "(1,16,k=7,8,11) (4,16,k=7,8,2)\n");
  return 0;
}
