// End-to-end planning cost of the library, per design point: finite
// field, PolarFly/Singer graph construction, both tree solutions and the
// Algorithm 1 congestion model. Construction happens once per job, not
// per Allreduce — but a design sweep builds hundreds of points, so the
// planning fast path (CSR graph + parallel builders + core::PlanCache)
// is benchmarked against the preserved reference implementations.
//
// Three pipelines per q (min over --reps repetitions):
//   seed: fresh gf::Field + reference tree builders + reference
//         congestion solve — the pre-fast-path planning cost.
//   cold: AllreducePlanner through an empty PlanCache (fast builders,
//         memoized field, incidence-based congestion solve).
//   warm: the same PlanCache lookups again — a pure memoization hit.
//
// Each pipeline plans BOTH paper solutions (low-depth Algorithm 3 and
// edge-disjoint Hamiltonian) end to end. Results land in
// BENCH_construction.json (per-phase wall times, cache hit/miss counts,
// speedup_cold and speedup_warm) so the planning-cost trajectory is
// tracked release over release.
//
//   --reps N      repetitions, min taken (default 3)
//   --max-q Q     truncate the q grid (default 101)
//   --threads N   construction workers (PFAR_THREADS; default hardware)
//   --json PATH   output path (default BENCH_construction.json)

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "gf/field.hpp"
#include "model/congestion_model.hpp"
#include "polarfly/layout.hpp"
#include "singer/disjoint.hpp"
#include "singer/singer_graph.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace pfar;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Wall time of one call, in ms.
template <typename Fn>
double timed(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return ms_since(start);
}

struct Phases {
  // Seed pipeline (reference builders, fresh field).
  double field = 0.0;        // fresh gf::Field(q), as the seed built per use
  double polarfly = 0.0;     // ER_q construction (shared by both pipelines)
  double layout = 0.0;       // cluster layout
  double lowdepth_ref = 0.0; // Algorithm 3, reference
  double bw_ref = 0.0;       // Algorithm 1 on low-depth trees, reference
  double diffset = 0.0;      // Singer difference set
  double singer = 0.0;       // Singer graph
  double hamtrees_ref = 0.0; // matching + paths + trees (shared impl)
  double bw2_ref = 0.0;      // Algorithm 1 on Hamiltonian trees, reference
  // Fast pipeline.
  double cold = 0.0;         // both solutions via PlanCache, all misses
  double warm = 0.0;         // both solutions via PlanCache, all hits

  double seed_total() const {
    return field + polarfly + layout + lowdepth_ref + bw_ref + diffset +
           singer + hamtrees_ref + bw2_ref;
  }
};

Phases min_phases(const Phases& a, const Phases& b) {
  Phases m;
  m.field = std::min(a.field, b.field);
  m.polarfly = std::min(a.polarfly, b.polarfly);
  m.layout = std::min(a.layout, b.layout);
  m.lowdepth_ref = std::min(a.lowdepth_ref, b.lowdepth_ref);
  m.bw_ref = std::min(a.bw_ref, b.bw_ref);
  m.diffset = std::min(a.diffset, b.diffset);
  m.singer = std::min(a.singer, b.singer);
  m.hamtrees_ref = std::min(a.hamtrees_ref, b.hamtrees_ref);
  m.bw2_ref = std::min(a.bw2_ref, b.bw2_ref);
  m.cold = std::min(a.cold, b.cold);
  m.warm = std::min(a.warm, b.warm);
  return m;
}

Phases run_point(int q, int threads) {
  Phases p;

  // --- Seed pipeline: reference builders, per-use field construction. ---
  p.field = timed([&] {
    gf::Field f(q);
    volatile auto sink = f.generator();
    (void)sink;
  });
  const polarfly::PolarFly* pf_ptr = nullptr;
  static std::vector<polarfly::PolarFly> keep_alive;  // stable addresses
  p.polarfly = timed([&] {
    keep_alive.emplace_back(q);
    pf_ptr = &keep_alive.back();
  });
  const polarfly::PolarFly& pf = *pf_ptr;
  polarfly::Layout layout;
  p.layout = timed([&] { layout = polarfly::build_layout(pf); });
  std::vector<trees::SpanningTree> lowdepth;
  p.lowdepth_ref = timed(
      [&] { lowdepth = trees::build_low_depth_trees_reference(pf, layout); });
  p.bw_ref = timed([&] {
    auto bw = model::compute_tree_bandwidths_reference(pf.graph(), lowdepth, 1.0);
    volatile double sink = bw.aggregate;
    (void)sink;
  });
  singer::DifferenceSet d;
  p.diffset = timed([&] { d = singer::build_difference_set(q); });
  const singer::SingerGraph* sg_ptr = nullptr;
  static std::vector<singer::SingerGraph> keep_alive_sg;
  p.singer = timed([&] {
    keep_alive_sg.emplace_back(d);
    sg_ptr = &keep_alive_sg.back();
  });
  std::vector<trees::SpanningTree> hams;
  p.hamtrees_ref = timed([&] {
    const auto set = singer::find_disjoint_hamiltonians(d, 1);
    hams = trees::hamiltonian_trees(set, 1);
  });
  p.bw2_ref = timed([&] {
    auto bw =
        model::compute_tree_bandwidths_reference(sg_ptr->graph(), hams, 1.0);
    volatile double sink = bw.aggregate;
    (void)sink;
  });

  // --- Fast pipeline: PlanCache cold (miss) then warm (hit). ---
  core::PlanCache cache;  // memory-only; disk behavior is covered by tests
  const core::PlanKey low{q, core::Solution::kLowDepth, 0};
  const core::PlanKey ham{q, core::Solution::kEdgeDisjoint, 0};
  p.cold = timed([&] {
    cache.get_or_build(low, threads);
    cache.get_or_build(ham, threads);
  });
  p.warm = timed([&] {
    cache.get_or_build(low, threads);
    cache.get_or_build(ham, threads);
  });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const int max_q = static_cast<int>(args.get_int("max-q", 101));
  const int threads = args.threads();

  std::printf("Construction cost per design point (both solutions, ms, "
              "min of %d reps)\n\n", reps);

  std::vector<int> grid;
  for (int q : {7, 13, 27, 49, 53, 81, 101}) {
    if (q <= max_q) grid.push_back(q);
  }

  // Warm the process-wide field cache deliberately OUTSIDE the timers for
  // the fast pipeline and INSIDE for the seed pipeline: the seed built a
  // field per construction, the fast path builds one per process.
  std::vector<Phases> results;
  core::PlanCache::Stats cache_stats;
  for (int q : grid) {
    Phases best = run_point(q, threads);
    for (int r = 1; r < reps; ++r) best = min_phases(best, run_point(q, threads));
    results.push_back(best);
  }
  {
    // Aggregate hit/miss behavior of one representative sweep: every grid
    // point twice through a fresh cache (first pass misses, second hits).
    core::PlanCache cache;
    for (int pass = 0; pass < 2; ++pass) {
      for (int q : grid) {
        cache.get_or_build({q, core::Solution::kLowDepth, 0}, threads);
        cache.get_or_build({q, core::Solution::kEdgeDisjoint, 0}, threads);
      }
    }
    cache_stats = cache.stats();
  }

  // A design sweep evaluates each (q, solution) point at many vector
  // sizes / configs, planning each time (the repo's sweep benches do
  // exactly this). With the cache only the first plan is built; the seed
  // path rebuilds all K times.
  constexpr int kSweepPlans = 10;
  const auto sweep_speedup = [](const Phases& p) {
    return kSweepPlans * p.seed_total() /
           (p.cold + (kSweepPlans - 1) * p.warm);
  };

  util::Table table({"q", "seed", "cold", "warm", "speedup_cold",
                     "speedup_warm", "speedup_sweep10"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Phases& p = results[i];
    table.add(grid[i], p.seed_total(), p.cold, p.warm,
              p.seed_total() / p.cold, p.seed_total() / p.warm,
              sweep_speedup(p));
  }
  table.print(std::cout);
  std::printf(
      "\nseed = fresh field + reference builders + reference congestion\n"
      "solve; cold = PlanCache miss (CSR graph, memoized field, parallel\n"
      "builders, incidence congestion solve); warm = PlanCache hit.\n"
      "speedup_sweep10 = end-to-end planning speedup of a sweep that\n"
      "plans each design point %d times (plan once, reuse thereafter).\n",
      kSweepPlans);

  const std::string json_path =
      args.get_string("json", "BENCH_construction.json");
  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json, "{\n");
    bench::write_meta(json, 1);
    std::fprintf(json, "  \"threads\": %d,\n  \"reps\": %d,\n", threads,
                 reps);
    std::fprintf(json,
                 "  \"cache\": {\"memory_hits\": %llu, \"disk_hits\": %llu, "
                 "\"misses\": %llu, \"stores\": %llu},\n",
                 static_cast<unsigned long long>(cache_stats.memory_hits),
                 static_cast<unsigned long long>(cache_stats.disk_hits),
                 static_cast<unsigned long long>(cache_stats.misses),
                 static_cast<unsigned long long>(cache_stats.stores));
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const Phases& p = results[i];
      std::fprintf(
          json,
          "    {\"q\": %d, \"phases_ms\": {\"field\": %.3f, "
          "\"polarfly\": %.3f, \"layout\": %.3f, \"lowdepth_ref\": %.3f, "
          "\"bw_ref\": %.3f, \"diffset\": %.3f, \"singer\": %.3f, "
          "\"hamtrees_ref\": %.3f, \"bw2_ref\": %.3f}, "
          "\"seed_ms\": %.3f, \"cold_ms\": %.3f, \"warm_ms\": %.3f, "
          "\"speedup_cold\": %.2f, \"speedup_warm\": %.2f, "
          "\"speedup_sweep10\": %.2f}%s\n",
          grid[i], p.field, p.polarfly, p.layout, p.lowdepth_ref, p.bw_ref,
          p.diffset, p.singer, p.hamtrees_ref, p.bw2_ref, p.seed_total(),
          p.cold, p.warm, p.seed_total() / p.cold, p.seed_total() / p.warm,
          sweep_speedup(p), i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s (%zu points)\n", json_path.c_str(),
                 grid.size());
  } else {
    std::fprintf(stderr, "warning: could not open %s for writing\n",
                 json_path.c_str());
  }
  return 0;
}
