// google-benchmark microbenchmarks of every construction stage: finite
// fields, both graph constructions, difference sets, both tree solutions
// and the congestion model. These bound the offline planning cost of the
// library (tree construction happens once per job, not per Allreduce).

#include <benchmark/benchmark.h>

#include "gf/field.hpp"
#include "model/congestion_model.hpp"
#include "polarfly/layout.hpp"
#include "singer/disjoint.hpp"
#include "singer/singer_graph.hpp"
#include "trees/exact_packing.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"

namespace {

using namespace pfar;

void BM_FieldConstruction(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gf::Field f(q);
    benchmark::DoNotOptimize(f.generator());
  }
}
BENCHMARK(BM_FieldConstruction)->Arg(9)->Arg(27)->Arg(49)->Arg(128);

void BM_FieldMultiply(benchmark::State& state) {
  const gf::Field f(static_cast<int>(state.range(0)));
  gf::Elem x = 1;
  for (auto _ : state) {
    x = f.mul(x, f.generator());
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FieldMultiply)->Arg(13)->Arg(128);

void BM_PolarFlyConstruction(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  for (auto _ : state) {
    polarfly::PolarFly pf(q);
    benchmark::DoNotOptimize(pf.n());
  }
}
BENCHMARK(BM_PolarFlyConstruction)->Arg(7)->Arg(13)->Arg(27)->Arg(49);

void BM_DifferenceSet(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto d = singer::build_difference_set(q);
    benchmark::DoNotOptimize(d.elements.size());
  }
}
BENCHMARK(BM_DifferenceSet)->Arg(7)->Arg(13)->Arg(27)->Arg(49);

void BM_SingerGraph(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const auto d = singer::build_difference_set(q);
  for (auto _ : state) {
    singer::SingerGraph s(d);
    benchmark::DoNotOptimize(s.graph().num_edges());
  }
}
BENCHMARK(BM_SingerGraph)->Arg(7)->Arg(13)->Arg(27);

void BM_LowDepthTrees(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const polarfly::PolarFly pf(q);
  const auto layout = polarfly::build_layout(pf);
  for (auto _ : state) {
    auto ts = trees::build_low_depth_trees(pf, layout);
    benchmark::DoNotOptimize(ts.size());
  }
}
BENCHMARK(BM_LowDepthTrees)->Arg(7)->Arg(13)->Arg(27);

void BM_DisjointHamiltonians(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const auto d = singer::build_difference_set(q);
  for (auto _ : state) {
    auto set = singer::find_disjoint_hamiltonians(d);
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_DisjointHamiltonians)->Arg(7)->Arg(13)->Arg(27);

void BM_ExactTreePacking(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const polarfly::PolarFly pf(q);
  for (auto _ : state) {
    auto ts = trees::exact_tree_packing(pf.graph());
    benchmark::DoNotOptimize(ts.size());
  }
}
BENCHMARK(BM_ExactTreePacking)->Arg(3)->Arg(5)->Arg(7);

void BM_CongestionModel(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const polarfly::PolarFly pf(q);
  const auto ts = trees::build_low_depth_trees(pf, polarfly::build_layout(pf));
  for (auto _ : state) {
    auto bw = model::compute_tree_bandwidths(pf.graph(), ts, 1.0);
    benchmark::DoNotOptimize(bw.aggregate);
  }
}
BENCHMARK(BM_CongestionModel)->Arg(7)->Arg(13)->Arg(27);

}  // namespace

BENCHMARK_MAIN();
