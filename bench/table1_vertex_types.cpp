// Reproduces Table 1: vertex counts of each type (W, V1, V2) in ER_q and
// in the neighborhood of a vertex of each type, verified constructively
// for every odd prime power radix in the paper's range.

#include <cstdio>
#include <iostream>

#include "polarfly/erq.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  std::printf("Table 1: vertex-type counts in ER_q (constructed vs formula)\n\n");

  util::Table table({"q", "|W|", "q+1", "|V1|", "q(q+1)/2", "|V2|",
                     "q(q-1)/2", "match"});
  for (int q : util::prime_powers_in(3, 49)) {
    if (q % 2 == 0) continue;  // Table 1 covers odd q
    const polarfly::PolarFly pf(q);
    const int w = pf.count(polarfly::VertexType::kQuadric);
    const int v1 = pf.count(polarfly::VertexType::kV1);
    const int v2 = pf.count(polarfly::VertexType::kV2);
    const bool match = w == q + 1 && v1 == q * (q + 1) / 2 &&
                       v2 == q * (q - 1) / 2;
    table.add(q, w, q + 1, v1, q * (q + 1) / 2, v2, q * (q - 1) / 2, match);
  }
  table.print(std::cout);

  // Per-neighborhood half of Table 1, checked at a representative q.
  const int q = 11;
  const polarfly::PolarFly pf(q);
  std::printf("\nNeighborhood composition for q = %d "
              "(rows: vertex type; columns: neighbor type):\n\n", q);
  util::Table nbr({"type of v", "W nbrs", "V1 nbrs", "V2 nbrs", "expected"});
  const char* names[] = {"W", "V1", "V2"};
  for (int t = 0; t < 3; ++t) {
    // Find one vertex of this type; Table 1 says the counts are uniform
    // per type (the test suite verifies uniformity for all vertices).
    int v = -1;
    for (int u = 0; u < pf.n(); ++u) {
      if (static_cast<int>(pf.type(u)) == t) {
        v = u;
        break;
      }
    }
    int nw = 0, nv1 = 0, nv2 = 0;
    for (int u : pf.graph().neighbors(v)) {
      switch (pf.type(u)) {
        case polarfly::VertexType::kQuadric: ++nw; break;
        case polarfly::VertexType::kV1: ++nv1; break;
        case polarfly::VertexType::kV2: ++nv2; break;
      }
    }
    char expected[64];
    if (t == 0) {
      std::snprintf(expected, sizeof(expected), "0 / q / 0");
    } else if (t == 1) {
      std::snprintf(expected, sizeof(expected), "2 / (q-1)/2 / (q-1)/2");
    } else {
      std::snprintf(expected, sizeof(expected), "0 / (q+1)/2 / (q+1)/2");
    }
    nbr.add(names[t], nw, nv1, nv2, expected);
  }
  nbr.print(std::cout);
  return 0;
}
