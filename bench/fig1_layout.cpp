// Reproduces Figure 1: the PolarFly layout for q = 11 — cluster contents
// and the intra-/inter-cluster edge counts that "match up with Properties
// 1-3" (the figure's caption).

#include <cstdio>
#include <iostream>

#include "polarfly/layout.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfar;
  const int q = 11;
  const polarfly::PolarFly pf(q);
  const auto layout = polarfly::build_layout(pf);
  const auto& g = pf.graph();

  std::printf("Figure 1: PolarFly layout for q = %d (N = %d)\n", q, pf.n());
  std::printf("starter quadric: vertex %d; quadric cluster |W| = %zu\n\n",
              layout.starter_quadric, layout.quadric_cluster.size());

  util::Table prop1({"cluster", "size", "center", "center deg in cluster",
                     "intra-cluster edges"});
  for (std::size_t i = 0; i < layout.clusters.size(); ++i) {
    const auto& c = layout.clusters[i];
    int center_deg = 0;
    for (int v : c) {
      if (v != layout.centers[i] && g.has_edge(layout.centers[i], v)) {
        ++center_deg;
      }
    }
    prop1.add(static_cast<int>(i), static_cast<int>(c.size()),
              layout.centers[i], center_deg,
              polarfly::edges_within(g, c));
  }
  prop1.print(std::cout);

  std::printf("\nProperty 2: edges between W and each C_i (expected q+1 = %d):\n",
              q + 1);
  util::Table prop2({"cluster i", "edges(W, C_i)"});
  for (std::size_t i = 0; i < layout.clusters.size(); ++i) {
    prop2.add(static_cast<int>(i),
              polarfly::edges_between(g, layout.quadric_cluster,
                                      layout.clusters[i]));
  }
  prop2.print(std::cout);

  std::printf("\nProperty 3: edges between distinct clusters "
              "(expected q-2 = %d), sample pairs:\n", q - 2);
  util::Table prop3({"i", "j", "edges(C_i, C_j)"});
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      prop3.add(i, j,
                polarfly::edges_between(g, layout.clusters[static_cast<std::size_t>(i)],
                                        layout.clusters[static_cast<std::size_t>(j)]));
    }
  }
  prop3.print(std::cout);
  return 0;
}
