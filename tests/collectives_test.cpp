#include <gtest/gtest.h>

#include <numeric>

#include "collectives/host_allreduce.hpp"
#include "collectives/innetwork.hpp"
#include "collectives/routed.hpp"
#include "polarfly/layout.hpp"
#include "singer/disjoint.hpp"
#include "singer/singer_graph.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"

namespace pfar::collectives {
namespace {

TEST(BfsTreeTest, SpansAndIsShallow) {
  const polarfly::PolarFly pf(7);
  const auto t = bfs_tree(pf.graph(), 0);
  EXPECT_TRUE(t.is_spanning_tree_of(pf.graph()));
  EXPECT_LE(t.depth(), 2);  // diameter-2 topology
}

TEST(InNetworkTest, LowDepthSimulationMatchesAlgorithmOne) {
  // Cor 7.7 / Theorem 5.1 end-to-end: simulated aggregate bandwidth of the
  // low-depth solution approaches the Algorithm 1 prediction (q/2).
  const int q = 5;
  const polarfly::PolarFly pf(q);
  const auto ts = trees::build_low_depth_trees(pf, polarfly::build_layout(pf));
  const auto res =
      run_innetwork_allreduce(pf.graph(), ts, 40000, simnet::SimConfig{});
  EXPECT_TRUE(res.sim.values_correct);
  EXPECT_NEAR(res.predicted.aggregate, q / 2.0, 1e-9);
  EXPECT_GT(res.efficiency_vs_model, 0.9);
  EXPECT_LE(res.efficiency_vs_model, 1.02);
  EXPECT_EQ(std::accumulate(res.split.begin(), res.split.end(), 0LL), 40000);
}

TEST(InNetworkTest, EdgeDisjointSimulationHitsOptimal) {
  const int q = 5;
  const singer::SingerGraph sg(q);
  const auto set = singer::find_disjoint_hamiltonians(sg.difference_set());
  const auto ts = trees::hamiltonian_trees(set);
  const auto res =
      run_innetwork_allreduce(sg.graph(), ts, 60000, simnet::SimConfig{});
  EXPECT_TRUE(res.sim.values_correct);
  EXPECT_NEAR(res.predicted.aggregate, (q + 1) / 2.0, 1e-9);
  EXPECT_GT(res.efficiency_vs_model, 0.9);
  // Zero congestion: exactly one tree's reduce+bcast VC pair per link
  // direction pair.
  EXPECT_LE(res.sim.max_vcs_per_link, 2);
}

TEST(InNetworkTest, UniformSplitIsSlowerUnderAsymmetricBandwidth) {
  // With symmetric trees the split doesn't matter; build an asymmetric
  // case: low-depth trees where Algorithm 1 can assign unequal B_i... for
  // PolarFly all trees get B/2, so instead compare optimal vs uniform on a
  // mixed set (one congested pair + one disjoint tree) on K4.
  graph::Graph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j);
  }
  g.finalize();
  const trees::SpanningTree a(0, {-1, 0, 1, 2});  // chain
  const trees::SpanningTree b(0, {-1, 0, 1, 2});  // same chain: congested
  const trees::SpanningTree c(0, {-1, 3, 0, 0});  // disjoint from a, b
  const std::vector<trees::SpanningTree> ts{a, b, c};
  const long long m = 30000;
  const auto opt =
      run_innetwork_allreduce(g, ts, m, simnet::SimConfig{},
                              SplitPolicy::kOptimal);
  const auto uni =
      run_innetwork_allreduce(g, ts, m, simnet::SimConfig{},
                              SplitPolicy::kUniform);
  EXPECT_TRUE(opt.sim.values_correct);
  EXPECT_TRUE(uni.sim.values_correct);
  // a and b get 1/2 each, c gets 1: optimal split loads c twice as much.
  EXPECT_LT(opt.sim.cycles, uni.sim.cycles);
}

TEST(RoutedNetworkTest, PathsAreShortest) {
  const polarfly::PolarFly pf(5);
  const RoutedNetwork net(pf.graph());
  const auto dist0 = pf.graph().bfs_distances(0);
  for (int v = 0; v < pf.n(); ++v) {
    EXPECT_EQ(net.hops(0, v), dist0[static_cast<std::size_t>(v)]);
    const auto path = net.path(0, v);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, dist0[static_cast<std::size_t>(v)]);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), v);
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_TRUE(pf.graph().has_edge(path[i - 1], path[i]));
    }
  }
}

TEST(RoutedNetworkTest, DiameterTwoPathsOnPolarFly) {
  const polarfly::PolarFly pf(7);
  const RoutedNetwork net(pf.graph());
  for (int u = 0; u < pf.n(); u += 7) {
    for (int v = 0; v < pf.n(); v += 5) {
      if (u != v) {
        EXPECT_LE(net.hops(u, v), 2);
      }
    }
  }
}

TEST(ScheduleCostTest, SingleMessage) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  const RoutedNetwork net(g);
  const std::vector<Round> sched{{Message{0, 2, 10}}};
  const auto cost = schedule_cost(net, sched, 2.0, 0.5);
  // 2 hops, 10 elements on each of two links -> max load 10.
  EXPECT_DOUBLE_EQ(cost.total_time, 2.0 * 2 + 0.5 * 10);
  EXPECT_EQ(cost.rounds, 1);
  EXPECT_EQ(cost.max_link_elements, 10);
}

TEST(ScheduleCostTest, ContentionAddsUp) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  const RoutedNetwork net(g);
  // Two messages crossing link 1->2 in the same round contend.
  const std::vector<Round> sched{
      {Message{0, 2, 10}, Message{1, 2, 20}}};
  const auto cost = schedule_cost(net, sched, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(cost.total_time, 30.0);
}

class HostAlgorithms
    : public ::testing::TestWithParam<std::tuple<HostAlgorithm, int>> {};

TEST_P(HostAlgorithms, DataCorrectness) {
  const auto [algo, p] = GetParam();
  DataExecutor exec(p, 37);  // awkward vector size to stress chunking
  run_host_allreduce(algo, p, 37, exec);
  EXPECT_TRUE(exec.verify());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndSizes, HostAlgorithms,
    ::testing::Combine(::testing::Values(HostAlgorithm::kRing,
                                         HostAlgorithm::kRecursiveDoubling,
                                         HostAlgorithm::kHalvingDoubling),
                       // powers of two, odd, prime, and PolarFly sizes
                       ::testing::Values(2, 3, 4, 5, 7, 8, 13, 16, 21, 31)));

TEST(HostBaselineTest, RingOnPolarFlyIsCorrectAndCosted) {
  const polarfly::PolarFly pf(3);  // N = 13
  const RoutedNetwork net(pf.graph());
  std::vector<int> placement(static_cast<std::size_t>(pf.n()));
  std::iota(placement.begin(), placement.end(), 0);
  const auto res = run_host_baseline(HostAlgorithm::kRing, net, placement,
                                     13000, 1.0, 1.0);
  EXPECT_TRUE(res.correct);
  EXPECT_EQ(res.cost.rounds, 2 * (13 - 1));
  EXPECT_GT(res.cost.total_time, 0.0);
}

TEST(HostBaselineTest, RecursiveDoublingRoundCount) {
  const polarfly::PolarFly pf(3);
  const RoutedNetwork net(pf.graph());
  std::vector<int> placement(static_cast<std::size_t>(pf.n()));
  std::iota(placement.begin(), placement.end(), 0);
  const auto res = run_host_baseline(HostAlgorithm::kRecursiveDoubling, net,
                                     placement, 1000, 1.0, 1.0);
  EXPECT_TRUE(res.correct);
  // N = 13: fold-in + 3 exchange rounds + fold-out.
  EXPECT_EQ(res.cost.rounds, 1 + 3 + 1);
}

TEST(HostBaselineTest, InNetworkBeatsHostRingOnBandwidth) {
  // The paper's headline: multi-tree in-network Allreduce moves far less
  // data per link and wins by ~radix/2 over host-based schemes.
  const int q = 5;
  const polarfly::PolarFly pf(q);
  const RoutedNetwork net(pf.graph());
  std::vector<int> placement(static_cast<std::size_t>(pf.n()));
  std::iota(placement.begin(), placement.end(), 0);
  const long long m = 31000;
  // Host ring: alpha=0 beta=1 time (pure bandwidth).
  const auto ring = run_host_baseline(HostAlgorithm::kRing, net, placement,
                                      m, 0.0, 1.0);
  // In-network low-depth: time = m / (q/2) cycles at beta=1 per element.
  const auto ts = trees::build_low_depth_trees(pf, polarfly::build_layout(pf));
  const auto innet =
      run_innetwork_allreduce(pf.graph(), ts, m, simnet::SimConfig{});
  EXPECT_TRUE(innet.sim.values_correct);
  EXPECT_LT(innet.sim.cycles, ring.cost.total_time);
}

}  // namespace
}  // namespace pfar::collectives
