#include <gtest/gtest.h>

#include <numeric>

#include "collectives/bucket_schedule.hpp"
#include "core/planner.hpp"

namespace pfar::collectives {
namespace {

TEST(BucketScheduleTest, FusedBeatsSerialized) {
  // Fusing buckets into one stream pays the tree pipeline fill once
  // instead of once per bucket.
  const auto plan = core::AllreducePlanner(5).build();
  const std::vector<long long> buckets{500, 500, 500, 500};
  const auto serialized = run_bucketed_allreduce(
      plan.topology(), plan.trees(), buckets, simnet::SimConfig{},
      BucketStrategy::kSerialized);
  const auto fused = run_bucketed_allreduce(
      plan.topology(), plan.trees(), buckets, simnet::SimConfig{},
      BucketStrategy::kFused);
  EXPECT_TRUE(serialized.correct);
  EXPECT_TRUE(fused.correct);
  EXPECT_LT(fused.total_cycles, serialized.total_cycles);
  EXPECT_EQ(serialized.bucket_finish.size(), buckets.size());
  EXPECT_EQ(fused.bucket_finish.size(), 1u);
}

TEST(BucketScheduleTest, FusionGainLargerForDeepTrees) {
  // Hamiltonian trees have a (N-1)/2 pipeline fill, so fusing matters far
  // more there than for depth-3 trees.
  const auto shallow = core::AllreducePlanner(5).build();
  const auto deep =
      core::AllreducePlanner(5).solution(core::Solution::kEdgeDisjoint).build();
  const std::vector<long long> buckets(8, 200);
  const auto gain = [&](const core::AllreducePlan& plan) {
    const auto s = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                          buckets, simnet::SimConfig{},
                                          BucketStrategy::kSerialized);
    const auto f = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                          buckets, simnet::SimConfig{},
                                          BucketStrategy::kFused);
    return static_cast<double>(s.total_cycles) /
           static_cast<double>(f.total_cycles);
  };
  EXPECT_GT(gain(deep), gain(shallow));
}

TEST(BucketScheduleTest, SerializedFinishTimesAreMonotone) {
  const auto plan = core::AllreducePlanner(3).build();
  const std::vector<long long> buckets{100, 300, 50};
  const auto r = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                        buckets, simnet::SimConfig{},
                                        BucketStrategy::kSerialized);
  ASSERT_EQ(r.bucket_finish.size(), 3u);
  EXPECT_LT(r.bucket_finish[0], r.bucket_finish[1]);
  EXPECT_LT(r.bucket_finish[1], r.bucket_finish[2]);
  EXPECT_EQ(r.bucket_finish.back(), r.total_cycles);
}

TEST(BucketScheduleTest, RejectsEmptyBucketList) {
  const auto plan = core::AllreducePlanner(3).build();
  EXPECT_THROW(run_bucketed_allreduce(plan.topology(), plan.trees(), {},
                                      simnet::SimConfig{},
                                      BucketStrategy::kFused),
               std::invalid_argument);
}

TEST(MultiJobTest, PartitionedTreesServeTwoJobsConcurrently) {
  // Tenancy: split the q low-depth trees between two jobs; both streams
  // run concurrently on disjoint tree subsets of the same fabric, and
  // every element of both jobs reduces exactly.
  const auto plan = core::AllreducePlanner(7).build();
  std::vector<simnet::TreeEmbedding> embeddings;
  for (const auto& t : plan.trees()) {
    embeddings.push_back(simnet::TreeEmbedding{t.root(), t.parents()});
  }
  simnet::AllreduceSimulator sim(plan.topology(), embeddings,
                                 simnet::SimConfig{});
  // Job A on trees 0..3, job B on trees 4..6 (element counts differ).
  std::vector<long long> elements(static_cast<std::size_t>(plan.num_trees()), 0);
  for (int t = 0; t < 4; ++t) elements[static_cast<std::size_t>(t)] = 2000;
  for (int t = 4; t < plan.num_trees(); ++t) elements[static_cast<std::size_t>(t)] = 1000;
  const auto r = sim.run(elements);
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.total_elements,
            std::accumulate(elements.begin(), elements.end(), 0LL));
  // Job B's smaller streams finish earlier.
  EXPECT_LT(r.tree_finish_cycle[5], r.tree_finish_cycle[0]);
}

}  // namespace
}  // namespace pfar::collectives
