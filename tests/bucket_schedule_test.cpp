#include <gtest/gtest.h>

#include <numeric>

#include "collectives/bucket_schedule.hpp"
#include "core/planner.hpp"

namespace pfar::collectives {
namespace {

TEST(BucketScheduleTest, FusedBeatsSerialized) {
  // Fusing buckets into one stream pays the tree pipeline fill once
  // instead of once per bucket.
  const auto plan = core::AllreducePlanner(5).build();
  const std::vector<long long> buckets{500, 500, 500, 500};
  const auto serialized = run_bucketed_allreduce(
      plan.topology(), plan.trees(), buckets, simnet::SimConfig{},
      BucketStrategy::kSerialized);
  const auto fused = run_bucketed_allreduce(
      plan.topology(), plan.trees(), buckets, simnet::SimConfig{},
      BucketStrategy::kFused);
  EXPECT_TRUE(serialized.correct);
  EXPECT_TRUE(fused.correct);
  EXPECT_LT(fused.total_cycles, serialized.total_cycles);
  EXPECT_EQ(serialized.bucket_finish.size(), buckets.size());
  EXPECT_EQ(fused.bucket_finish.size(), 1u);
}

TEST(BucketScheduleTest, FusionGainLargerForDeepTrees) {
  // Hamiltonian trees have a (N-1)/2 pipeline fill, so fusing matters far
  // more there than for depth-3 trees.
  const auto shallow = core::AllreducePlanner(5).build();
  const auto deep =
      core::AllreducePlanner(5).solution(core::Solution::kEdgeDisjoint).build();
  const std::vector<long long> buckets(8, 200);
  const auto gain = [&](const core::AllreducePlan& plan) {
    const auto s = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                          buckets, simnet::SimConfig{},
                                          BucketStrategy::kSerialized);
    const auto f = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                          buckets, simnet::SimConfig{},
                                          BucketStrategy::kFused);
    return static_cast<double>(s.total_cycles) /
           static_cast<double>(f.total_cycles);
  };
  EXPECT_GT(gain(deep), gain(shallow));
}

TEST(BucketScheduleTest, SerializedFinishTimesAreMonotone) {
  const auto plan = core::AllreducePlanner(3).build();
  const std::vector<long long> buckets{100, 300, 50};
  const auto r = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                        buckets, simnet::SimConfig{},
                                        BucketStrategy::kSerialized);
  ASSERT_EQ(r.bucket_finish.size(), 3u);
  EXPECT_LT(r.bucket_finish[0], r.bucket_finish[1]);
  EXPECT_LT(r.bucket_finish[1], r.bucket_finish[2]);
  EXPECT_EQ(r.bucket_finish.back(), r.total_cycles);
}

TEST(BucketScheduleTest, RejectsEmptyBucketList) {
  const auto plan = core::AllreducePlanner(3).build();
  EXPECT_THROW(run_bucketed_allreduce(plan.topology(), plan.trees(), {},
                                      simnet::SimConfig{},
                                      BucketStrategy::kFused),
               std::invalid_argument);
}

TEST(BucketScheduleTest, RejectsNegativeBucket) {
  const auto plan = core::AllreducePlanner(3).build();
  EXPECT_THROW(run_bucketed_allreduce(plan.topology(), plan.trees(),
                                      {100, -1}, simnet::SimConfig{},
                                      BucketStrategy::kSerialized),
               std::invalid_argument);
}

TEST(BucketScheduleTest, ZeroLengthBucketsAreFree) {
  // The service coalescer can emit zero-length buckets (e.g. a replayed
  // job whose remainder vanished); they must cost no cycles and no flits.
  const auto plan = core::AllreducePlanner(3).build();
  const simnet::SimConfig cfg;
  const auto with_zeros =
      run_bucketed_allreduce(plan.topology(), plan.trees(), {0, 500, 0},
                             cfg, BucketStrategy::kSerialized);
  const auto just_payload = run_bucketed_allreduce(
      plan.topology(), plan.trees(), {500}, cfg, BucketStrategy::kSerialized);
  EXPECT_TRUE(with_zeros.correct);
  EXPECT_EQ(with_zeros.total_cycles, just_payload.total_cycles);
  EXPECT_EQ(with_zeros.total_flits, just_payload.total_flits);
  ASSERT_EQ(with_zeros.bucket_finish.size(), 3u);
  EXPECT_EQ(with_zeros.bucket_finish[0], 0);  // nothing ran yet
  EXPECT_EQ(with_zeros.bucket_finish[1], with_zeros.bucket_finish[2]);
}

TEST(BucketScheduleTest, AllZeroBucketsCompleteInstantly) {
  const auto plan = core::AllreducePlanner(3).build();
  for (const auto strategy :
       {BucketStrategy::kSerialized, BucketStrategy::kFused}) {
    const auto r = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                          {0, 0, 0}, simnet::SimConfig{},
                                          strategy);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(r.total_cycles, 0);
    EXPECT_EQ(r.total_flits, 0);
    for (const long long finish : r.bucket_finish) EXPECT_EQ(finish, 0);
  }
}

TEST(BucketScheduleTest, SingleTreeHandlesAnyBucketCount) {
  // Buckets partition the time axis, not the tree axis: a single-tree
  // (SHARP-like) plan takes any bucket count, including more buckets than
  // trees by far.
  const auto plan = core::AllreducePlanner(3)
                        .solution(core::Solution::kSingleTree)
                        .build();
  ASSERT_EQ(plan.num_trees(), 1);
  const std::vector<long long> buckets{50, 0, 120, 70, 200, 30, 90};
  const auto r =
      run_bucketed_allreduce(plan.topology(), plan.trees(), buckets,
                             simnet::SimConfig{}, BucketStrategy::kSerialized);
  EXPECT_TRUE(r.correct);
  ASSERT_EQ(r.bucket_finish.size(), buckets.size());
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LE(r.bucket_finish[i - 1], r.bucket_finish[i]);
  }
  EXPECT_EQ(r.bucket_finish.back(), r.total_cycles);
}

TEST(BucketScheduleTest, MoreBucketsThanTreesFuseToOneRun) {
  // 7 buckets over the 2 edge-disjoint trees of q=3: fused must equal one
  // run of the summed vector, in both cycles and flits.
  const auto plan = core::AllreducePlanner(3)
                        .solution(core::Solution::kEdgeDisjoint)
                        .build();
  ASSERT_LT(plan.num_trees(), 7);
  const std::vector<long long> buckets{100, 40, 0, 260, 10, 90, 500};
  const simnet::SimConfig cfg;
  const auto fused = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                            buckets, cfg,
                                            BucketStrategy::kFused);
  const auto one = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                          {1000}, cfg,
                                          BucketStrategy::kFused);
  EXPECT_TRUE(fused.correct);
  EXPECT_EQ(fused.bucket_finish.size(), 1u);
  EXPECT_EQ(fused.total_cycles, one.total_cycles);
  EXPECT_EQ(fused.total_flits, one.total_flits);
}

TEST(BucketScheduleTest, SerializedFlitsAreSumOfPerBucketRuns) {
  const auto plan = core::AllreducePlanner(3).build();
  const simnet::SimConfig cfg;
  const auto both = run_bucketed_allreduce(plan.topology(), plan.trees(),
                                           {300, 700}, cfg,
                                           BucketStrategy::kSerialized);
  long long expected = 0;
  for (const long long m : {300LL, 700LL}) {
    expected += run_bucketed_allreduce(plan.topology(), plan.trees(), {m},
                                       cfg, BucketStrategy::kSerialized)
                    .total_flits;
  }
  EXPECT_GT(both.total_flits, 0);
  EXPECT_EQ(both.total_flits, expected);
}

TEST(MultiJobTest, PartitionedTreesServeTwoJobsConcurrently) {
  // Tenancy: split the q low-depth trees between two jobs; both streams
  // run concurrently on disjoint tree subsets of the same fabric, and
  // every element of both jobs reduces exactly.
  const auto plan = core::AllreducePlanner(7).build();
  std::vector<simnet::TreeEmbedding> embeddings;
  for (const auto& t : plan.trees()) {
    embeddings.push_back(simnet::TreeEmbedding{t.root(), t.parents()});
  }
  simnet::AllreduceSimulator sim(plan.topology(), embeddings,
                                 simnet::SimConfig{});
  // Job A on trees 0..3, job B on trees 4..6 (element counts differ).
  std::vector<long long> elements(static_cast<std::size_t>(plan.num_trees()), 0);
  for (int t = 0; t < 4; ++t) elements[static_cast<std::size_t>(t)] = 2000;
  for (int t = 4; t < plan.num_trees(); ++t) elements[static_cast<std::size_t>(t)] = 1000;
  const auto r = sim.run(elements);
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.total_elements,
            std::accumulate(elements.begin(), elements.end(), 0LL));
  // Job B's smaller streams finish earlier.
  EXPECT_LT(r.tree_finish_cycle[5], r.tree_finish_cycle[0]);
}

}  // namespace
}  // namespace pfar::collectives
