#include <gtest/gtest.h>

#include "polarfly/erq.hpp"
#include "topo/topologies.hpp"
#include "trees/exact_packing.hpp"
#include "trees/packing.hpp"

namespace pfar::trees {
namespace {

void expect_valid_packing(const graph::Graph& g,
                          const std::vector<SpanningTree>& trees) {
  for (const auto& t : trees) {
    EXPECT_TRUE(t.is_spanning_tree_of(g));
  }
  EXPECT_TRUE(edge_disjoint(g, trees));
}

TEST(ExactPackingTest, CompleteGraphs) {
  // K_{2k} packs exactly k spanning trees; K_{2k+1} packs k as well
  // (floor(E/(N-1)) = floor((2k+1)/2) = k, attained).
  for (int n : {4, 5, 6, 7, 8}) {
    const auto g = topo::complete(n);
    const auto trees = exact_tree_packing(g);
    EXPECT_EQ(static_cast<int>(trees.size()), n / 2) << "K_" << n;
    expect_valid_packing(g, trees);
  }
}

TEST(ExactPackingTest, TorusAndHypercube) {
  // 2d torus (4-regular, 2N edges): Nash-Williams number 2.
  const auto t44 = topo::torus({4, 4});
  const auto torus_trees = exact_tree_packing(t44);
  EXPECT_EQ(torus_trees.size(), 2u);
  expect_valid_packing(t44, torus_trees);
  // Hypercube d=4: E = 32, N-1 = 15 -> exact 2.
  const auto h4 = topo::hypercube(4);
  const auto cube_trees = exact_tree_packing(h4);
  EXPECT_EQ(cube_trees.size(), 2u);
  expect_valid_packing(h4, cube_trees);
}

TEST(ExactPackingTest, SparseGraphs) {
  graph::Graph path(5);
  for (int i = 0; i + 1 < 5; ++i) path.add_edge(i, i + 1);
  path.finalize();
  EXPECT_EQ(exact_tree_packing(path).size(), 1u);

  graph::Graph cycle(5);
  for (int i = 0; i < 5; ++i) cycle.add_edge(i, (i + 1) % 5);
  cycle.finalize();
  EXPECT_EQ(exact_tree_packing(cycle).size(), 1u);

  graph::Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.finalize();
  EXPECT_TRUE(exact_tree_packing(disconnected).empty());
}

TEST(ExactPackingTest, PolarFlyMatchesSectionSevenThree) {
  // Independent confirmation of the paper's Section 7.3: the exact
  // Tutte/Nash-Williams packing number of ER_q equals floor((q+1)/2), the
  // count the Hamiltonian construction achieves.
  for (int q : {3, 4, 5, 7}) {
    const polarfly::PolarFly pf(q);
    const auto trees = exact_tree_packing(pf.graph());
    EXPECT_EQ(static_cast<int>(trees.size()), (q + 1) / 2) << "q=" << q;
    expect_valid_packing(pf.graph(), trees);
  }
}

TEST(ExactPackingTest, GreedyNeverBeatsExact) {
  for (const auto& g : {topo::complete(7), topo::torus({4, 4}),
                        topo::hyperx({3, 4}), topo::hypercube(4)}) {
    const auto greedy = greedy_tree_packing(g);
    const auto exact = exact_tree_packing(g);
    EXPECT_LE(greedy.size(), exact.size());
  }
}

TEST(ExactPackingTest, HasKDisjointPredicate) {
  const auto g = topo::complete(6);
  EXPECT_TRUE(has_k_disjoint_spanning_trees(g, 0));
  EXPECT_TRUE(has_k_disjoint_spanning_trees(g, 3));
  EXPECT_FALSE(has_k_disjoint_spanning_trees(g, 4));
  const auto sparse = topo::mesh({3, 3});
  EXPECT_TRUE(has_k_disjoint_spanning_trees(sparse, 1));
  EXPECT_FALSE(has_k_disjoint_spanning_trees(sparse, 2));
}

}  // namespace
}  // namespace pfar::trees
