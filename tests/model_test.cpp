#include <gtest/gtest.h>

#include <numeric>

#include "model/alpha_beta.hpp"
#include "model/congestion_model.hpp"
#include "polarfly/layout.hpp"
#include "singer/singer_graph.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"

namespace pfar::model {
namespace {

using trees::SpanningTree;

TEST(CongestionModelTest, SingleTreeGetsFullLink) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  const SpanningTree t(0, {-1, 0, 1});
  const auto bw = compute_tree_bandwidths(g, {t}, 4.0);
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 4.0);
  EXPECT_DOUBLE_EQ(bw.aggregate, 4.0);
}

TEST(CongestionModelTest, TwoTreesSharingEveryEdgeSplitEvenly) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  const SpanningTree a(0, {-1, 0, 1});
  const SpanningTree b(2, {1, 2, -1});  // same undirected edges
  const auto bw = compute_tree_bandwidths(g, {a, b}, 1.0);
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 0.5);
  EXPECT_DOUBLE_EQ(bw.per_tree[1], 0.5);
  EXPECT_DOUBLE_EQ(bw.aggregate, 1.0);
}

TEST(CongestionModelTest, DisjointTreesGetFullBandwidthEach) {
  // K4 has two edge-disjoint spanning trees.
  graph::Graph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j);
  }
  g.finalize();
  const SpanningTree a(0, {-1, 0, 1, 2});       // chain 0-1-2-3
  const SpanningTree b(0, {-1, 3, 0, 0});       // 0-2, 0-3, 1-3
  const std::vector<SpanningTree> ts{a, b};
  ASSERT_TRUE(trees::edge_disjoint(g, ts));
  const auto bw = compute_tree_bandwidths(g, ts, 2.5);
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 2.5);
  EXPECT_DOUBLE_EQ(bw.per_tree[1], 2.5);
  EXPECT_DOUBLE_EQ(bw.aggregate, 5.0);
}

TEST(CongestionModelTest, AsymmetricCongestion) {
  // Path 0-1-2-3 plus chord 0-3 and 1-3: tree A uses {01,12,23}, tree B
  // uses {01,13,03}: only edge 01 is shared.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.finalize();
  const SpanningTree a(0, {-1, 0, 1, 2});
  const SpanningTree b(0, {-1, 0, 3, 1});  // parents: 1<-0, 2<-3, 3<-1
  const auto bw = compute_tree_bandwidths(g, {a, b}, 1.0);
  // Edge 01 congestion 2 is the single bottleneck: both trees get 1/2.
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 0.5);
  EXPECT_DOUBLE_EQ(bw.per_tree[1], 0.5);
}

TEST(CongestionModelTest, LateTreesGetResidualBandwidth) {
  // Trees A and B share edge (0,1); once A and B are fixed at 1/2 each,
  // tree C (which avoids (0,1)) is limited by the residual 1/2 left on the
  // links it shares with A. Checks the iterative residual logic of
  // Algorithm 1.
  graph::Graph g(4);
  g.add_edge(0, 1);  // A, B
  g.add_edge(1, 2);  // A, C
  g.add_edge(2, 3);  // A, C
  g.add_edge(0, 2);  // B, C
  g.add_edge(1, 3);  // B
  g.add_edge(0, 3);  // unused
  g.finalize();
  const SpanningTree a(0, {-1, 0, 1, 2});       // 01, 12, 23
  const SpanningTree b(0, {-1, 0, 0, 1});       // 01, 02, 13
  const SpanningTree c(1, {2, -1, 1, 2});       // 02, 12, 23
  const auto bw = compute_tree_bandwidths(g, {a, b, c}, 1.0);
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 0.5);
  EXPECT_DOUBLE_EQ(bw.per_tree[1], 0.5);
  EXPECT_DOUBLE_EQ(bw.per_tree[2], 0.5);
  EXPECT_DOUBLE_EQ(bw.aggregate, 1.5);
}

TEST(CongestionModelTest, ConservationPerLink) {
  // Sum over trees of B_i on each link never exceeds link bandwidth.
  const polarfly::PolarFly pf(7);
  const auto ts = trees::build_low_depth_trees(pf, polarfly::build_layout(pf));
  const double B = 3.0;
  const auto bw = compute_tree_bandwidths(pf.graph(), ts, B);
  std::vector<double> load(static_cast<std::size_t>(pf.graph().num_edges()), 0.0);
  for (std::size_t t = 0; t < ts.size(); ++t) {
    for (const auto& e : ts[t].edges()) {
      load[static_cast<std::size_t>(pf.graph().edge_id(e.u, e.v))] += bw.per_tree[t];
    }
  }
  for (double l : load) EXPECT_LE(l, B + 1e-9);
}

TEST(CongestionModelTest, LowDepthTreesMeetCorollarySevenSeven) {
  // Corollary 7.7: aggregate >= q B / 2 for the low-depth set.
  for (int q : {3, 5, 7, 9, 11, 13}) {
    const polarfly::PolarFly pf(q);
    const auto ts =
        trees::build_low_depth_trees(pf, polarfly::build_layout(pf));
    const auto bw = compute_tree_bandwidths(pf.graph(), ts, 1.0);
    EXPECT_GE(bw.aggregate, q / 2.0 - 1e-9) << "q=" << q;
    EXPECT_LE(bw.aggregate, optimal_polarfly_bandwidth(q, 1.0) + 1e-9);
  }
}

TEST(CongestionModelTest, HamiltonianTreesAreOptimalForOddQ) {
  // Theorem 7.19: aggregate == floor((q+1)/2) B; optimal for odd q.
  for (int q : {3, 5, 7, 9, 11}) {
    const singer::SingerGraph s(q);
    const auto set = singer::find_disjoint_hamiltonians(s.difference_set());
    const auto ts = trees::hamiltonian_trees(set);
    const auto bw = compute_tree_bandwidths(s.graph(), ts, 1.0);
    EXPECT_DOUBLE_EQ(bw.aggregate, (q + 1) / 2.0) << "q=" << q;
    EXPECT_DOUBLE_EQ(bw.aggregate, optimal_polarfly_bandwidth(q, 1.0));
  }
}

TEST(CongestionModelTest, RejectsForeignTreeEdges) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  graph::Graph other(3);
  other.add_edge(0, 1);
  other.add_edge(0, 2);
  other.finalize();
  const SpanningTree t(0, {-1, 0, 0});  // uses edge (0,2), absent from g
  EXPECT_THROW(compute_tree_bandwidths(g, {t}, 1.0), std::invalid_argument);
}

TEST(OptimalSplitTest, ProportionalAndExact) {
  TreeBandwidths bw;
  bw.per_tree = {1.0, 1.0, 2.0};
  bw.aggregate = 4.0;
  const auto split = optimal_split(100, bw);
  EXPECT_EQ(split[0], 25);
  EXPECT_EQ(split[1], 25);
  EXPECT_EQ(split[2], 50);
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), 0LL), 100);
}

TEST(OptimalSplitTest, EqualizesTreeTimes) {
  // Theorem 5.1: with m_i = m B_i / sum(B), all trees take (almost) equal
  // time m_i / B_i.
  TreeBandwidths bw;
  bw.per_tree = {0.5, 1.0, 1.5};
  bw.aggregate = 3.0;
  const long long m = 300000;
  const auto split = optimal_split(m, bw);
  const double t0 = static_cast<double>(split[0]) / bw.per_tree[0];
  for (std::size_t i = 1; i < split.size(); ++i) {
    const double ti = static_cast<double>(split[i]) / bw.per_tree[i];
    EXPECT_NEAR(ti, t0, 2.0 / bw.per_tree[i] + 2.0 / bw.per_tree[0]);
  }
  EXPECT_NEAR(predicted_allreduce_time(m, 0.0, bw), m / 3.0, 1.0);
}

TEST(AlphaBetaTest, RingModel) {
  const AlphaBeta c{2.0, 0.5};
  EXPECT_DOUBLE_EQ(ring_allreduce_time(1, 100, c), 0.0);
  // 2(p-1) alpha + 2 m (p-1)/p beta for p=4, m=100:
  EXPECT_DOUBLE_EQ(ring_allreduce_time(4, 100, c),
                   2 * 3 * 2.0 + 2 * 100 * 0.75 * 0.5);
}

TEST(AlphaBetaTest, RecursiveDoublingPowersOfTwo) {
  const AlphaBeta c{1.0, 1.0};
  EXPECT_DOUBLE_EQ(recursive_doubling_time(8, 10, c), 3 * (1.0 + 10.0));
  // Non-power-of-two adds a full extra exchange.
  EXPECT_DOUBLE_EQ(recursive_doubling_time(9, 10, c),
                   3 * (1.0 + 10.0) + 2 * (1.0 + 10.0));
}

TEST(AlphaBetaTest, BandwidthOptimalBeatsLatencyOptimalForLargeM) {
  const AlphaBeta c{10.0, 0.01};
  const int p = 16;
  EXPECT_LT(ring_allreduce_time(p, 1 << 20, c),
            recursive_doubling_time(p, 1 << 20, c));
  EXPECT_LT(recursive_doubling_time(p, 8, c), ring_allreduce_time(p, 8, c));
}

TEST(AlphaBetaTest, MultiTreeBeatsSingleTreeByAggregateFactor) {
  const AlphaBeta c{1.0, 1.0};
  const long long m = 1 << 20;
  const double single = single_tree_innetwork_time(2, m, c);
  const double multi = multi_tree_innetwork_time(3, m, 1.0, 6.0);
  EXPECT_NEAR(single / multi, 6.0, 0.01);
}

TEST(RateUpperBoundTest, PathAndCliqueAndPolarFly) {
  // Path 0-1-2: deg_min = 1 and E/(N-1) = 1, so the bound is B.
  graph::Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.finalize();
  EXPECT_DOUBLE_EQ(allreduce_rate_upper_bound(path, 2.0), 2.0);

  // K4: deg_min = 3, E/(N-1) = 6/3 = 2 — the spanning term binds.
  graph::Graph k4(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) k4.add_edge(i, j);
  }
  k4.finalize();
  EXPECT_DOUBLE_EQ(allreduce_rate_upper_bound(k4, 1.0), 2.0);

  // PolarFly q=7: the bound must dominate Algorithm 1's aggregate for
  // both constructions (q/2 and (q+1)/2), and the spanning term
  // (q+1)/2 * N/(N-1) is what binds.
  const singer::SingerGraph sg(7);
  const auto& g = sg.graph();
  const double bound = allreduce_rate_upper_bound(g, 1.0);
  EXPECT_GE(bound, (7 + 1) / 2.0);
  EXPECT_DOUBLE_EQ(
      bound, static_cast<double>(g.num_edges()) / (g.num_vertices() - 1));
}

TEST(RateUpperBoundTest, InputValidation) {
  graph::Graph tiny(1);
  tiny.finalize();
  EXPECT_THROW(allreduce_rate_upper_bound(tiny, 1.0), std::invalid_argument);

  graph::Graph isolated(3);
  isolated.add_edge(0, 1);
  isolated.finalize();  // vertex 2 has no edge
  EXPECT_THROW(allreduce_rate_upper_bound(isolated, 1.0),
               std::invalid_argument);

  graph::Graph ok(2);
  ok.add_edge(0, 1);
  ok.finalize();
  EXPECT_THROW(allreduce_rate_upper_bound(ok, 0.0), std::invalid_argument);
}

TEST(AlphaBetaTest, InputValidation) {
  const AlphaBeta c{1.0, 1.0};
  EXPECT_THROW(ring_allreduce_time(0, 1, c), std::invalid_argument);
  EXPECT_THROW(single_tree_innetwork_time(-1, 1, c), std::invalid_argument);
  EXPECT_THROW(multi_tree_innetwork_time(1, 1, 1.0, 0.0),
               std::invalid_argument);
  TreeBandwidths empty;
  EXPECT_THROW(predicted_allreduce_time(10, 0.0, empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfar::model
