// Tests for the contract layer (src/util/contracts.hpp): level selection,
// failure-message formatting, the throwing test hook, and the annotated
// seams in the library proper.

#include "util/contracts.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "core/serialize.hpp"

namespace contracts = pfar::util::contracts;
using contracts::ContractViolation;
using contracts::ScopedThrowHandler;

namespace {

TEST(Contracts, PassingContractIsSilent) {
  ScopedThrowHandler guard;
  int evaluations = 0;
  EXPECT_NO_THROW(PFAR_REQUIRE(++evaluations > 0));
  EXPECT_NO_THROW(PFAR_ENSURE(true));
#if PFAR_CHECKS_LEVEL >= 1
  EXPECT_EQ(evaluations, 1);  // condition evaluated exactly once
#else
  EXPECT_EQ(evaluations, 0);  // compiled out: never evaluated
#endif
}

#if PFAR_CHECKS_LEVEL >= 1
TEST(Contracts, RequireThrowsWithKindAndExpression) {
  ScopedThrowHandler guard;
  try {
    const int q = 1;
    PFAR_REQUIRE(q >= 2, q);
    FAIL() << "PFAR_REQUIRE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "REQUIRE");
    EXPECT_EQ(v.expr(), "q >= 2");
    const std::string msg = v.what();
    EXPECT_NE(msg.find("pfar contract violation: REQUIRE(q >= 2)"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("contracts_test.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("q = 1"), std::string::npos) << msg;
  }
}

TEST(Contracts, EnsureFormatsEveryOperand) {
  ScopedThrowHandler guard;
  try {
    const int lhs = 3;
    const long long rhs = -7;
    const std::string name = "tree";
    PFAR_ENSURE(lhs == rhs, lhs, rhs, name);
    FAIL() << "PFAR_ENSURE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "ENSURE");
    const std::string msg = v.what();
    EXPECT_NE(msg.find("lhs = 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rhs = -7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("name = tree"), std::string::npos) << msg;
  }
}

TEST(Contracts, UnprintableOperandsAreMarked) {
  ScopedThrowHandler guard;
  struct Opaque {
    int x = 0;
  };
  try {
    const Opaque state;
    PFAR_REQUIRE(state.x == 1, state);
    FAIL() << "PFAR_REQUIRE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_NE(std::string(v.what()).find("state = <unprintable>"),
              std::string::npos)
        << v.what();
  }
}
#endif  // PFAR_CHECKS_LEVEL >= 1

TEST(Contracts, LevelSelectionMatchesBuildConfiguration) {
#if PFAR_CHECKS_LEVEL >= 1
  {
    ScopedThrowHandler guard;
    EXPECT_THROW(PFAR_REQUIRE(false), ContractViolation);
    EXPECT_THROW(PFAR_ENSURE(false), ContractViolation);
  }
#else
  // Everything is compiled out: nothing throws, nothing is evaluated.
  int evaluations = 0;
  PFAR_REQUIRE(++evaluations > 0);
  PFAR_ENSURE(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
#endif

#if PFAR_AUDIT_ENABLED
  {
    ScopedThrowHandler guard;
    EXPECT_THROW(PFAR_INVARIANT(false), ContractViolation);
  }
#else
  // PFAR_INVARIANT is dead below audit level: the condition and operands
  // must not be evaluated at all.
  int invariant_evaluations = 0;
  PFAR_INVARIANT(++invariant_evaluations > 0, ++invariant_evaluations);
  EXPECT_EQ(invariant_evaluations, 0);
#endif
}

TEST(Contracts, HandlerRestoredAfterScopeExit) {
  contracts::FailHandler before = contracts::set_fail_handler(nullptr);
  contracts::set_fail_handler(before);
  {
    ScopedThrowHandler guard;
    contracts::FailHandler inside = contracts::set_fail_handler(nullptr);
    EXPECT_NE(inside, before);
    contracts::set_fail_handler(inside);
  }
  contracts::FailHandler after = contracts::set_fail_handler(nullptr);
  contracts::set_fail_handler(after);
  EXPECT_EQ(after, before);
}

#if PFAR_CHECKS_LEVEL >= 1
TEST(Contracts, NestedScopedHandlersUnwindInOrder) {
  ScopedThrowHandler outer;
  {
    ScopedThrowHandler inner;
    EXPECT_THROW(PFAR_REQUIRE(false), ContractViolation);
  }
  // The outer handler is still in force after the inner scope ends.
  EXPECT_THROW(PFAR_REQUIRE(false), ContractViolation);
}
#endif  // PFAR_CHECKS_LEVEL >= 1

#if PFAR_CHECKS_LEVEL >= 1
// Real seam: serializing a default-constructed (never built) plan violates
// PlanIO::write's preconditions and must fail as a structured contract
// violation, not as garbage output.
TEST(Contracts, SerializeUnbuiltPlanViolatesPrecondition) {
  ScopedThrowHandler guard;
  try {
    const pfar::core::AllreducePlan empty;
    pfar::core::serialize_plan(empty, 0);
    FAIL() << "precondition did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "REQUIRE");
    EXPECT_NE(std::string(v.what()).find("topology_"), std::string::npos)
        << v.what();
  }
}
#endif

#if PFAR_AUDIT_ENABLED
// Audit-level sweep: building every solution for a small design point runs
// the expensive whole-structure invariants (spanning trees, congestion,
// disjointness) without firing.
TEST(Contracts, AuditLevelBuildPassesAllInvariants) {
  ScopedThrowHandler guard;
  for (const auto solution :
       {pfar::core::Solution::kLowDepth, pfar::core::Solution::kEdgeDisjoint,
        pfar::core::Solution::kSingleTree}) {
    EXPECT_NO_THROW(static_cast<void>(pfar::core::AllreducePlanner(7)
                                          .solution(solution)
                                          .build()));
  }
}
#endif

}  // namespace
