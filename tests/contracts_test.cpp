// Tests for the contract layer (src/util/contracts.hpp): level selection,
// failure-message formatting, the throwing test hook, and the annotated
// seams in the library proper.

#include "util/contracts.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collectives/innetwork.hpp"
#include "collectives/resilient.hpp"
#include "core/planner.hpp"
#include "core/serialize.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"

namespace contracts = pfar::util::contracts;
using contracts::ContractViolation;
using contracts::ScopedThrowHandler;

namespace {

TEST(Contracts, PassingContractIsSilent) {
  ScopedThrowHandler guard;
  int evaluations = 0;
  EXPECT_NO_THROW(PFAR_REQUIRE(++evaluations > 0));
  EXPECT_NO_THROW(PFAR_ENSURE(true));
#if PFAR_CHECKS_LEVEL >= 1
  EXPECT_EQ(evaluations, 1);  // condition evaluated exactly once
#else
  EXPECT_EQ(evaluations, 0);  // compiled out: never evaluated
#endif
}

#if PFAR_CHECKS_LEVEL >= 1
TEST(Contracts, RequireThrowsWithKindAndExpression) {
  ScopedThrowHandler guard;
  try {
    const int q = 1;
    PFAR_REQUIRE(q >= 2, q);
    FAIL() << "PFAR_REQUIRE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "REQUIRE");
    EXPECT_EQ(v.expr(), "q >= 2");
    const std::string msg = v.what();
    EXPECT_NE(msg.find("pfar contract violation: REQUIRE(q >= 2)"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("contracts_test.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("q = 1"), std::string::npos) << msg;
  }
}

TEST(Contracts, EnsureFormatsEveryOperand) {
  ScopedThrowHandler guard;
  try {
    const int lhs = 3;
    const long long rhs = -7;
    const std::string name = "tree";
    PFAR_ENSURE(lhs == rhs, lhs, rhs, name);
    FAIL() << "PFAR_ENSURE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "ENSURE");
    const std::string msg = v.what();
    EXPECT_NE(msg.find("lhs = 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rhs = -7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("name = tree"), std::string::npos) << msg;
  }
}

TEST(Contracts, UnprintableOperandsAreMarked) {
  ScopedThrowHandler guard;
  struct Opaque {
    int x = 0;
  };
  try {
    const Opaque state;
    PFAR_REQUIRE(state.x == 1, state);
    FAIL() << "PFAR_REQUIRE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_NE(std::string(v.what()).find("state = <unprintable>"),
              std::string::npos)
        << v.what();
  }
}
#endif  // PFAR_CHECKS_LEVEL >= 1

TEST(Contracts, LevelSelectionMatchesBuildConfiguration) {
#if PFAR_CHECKS_LEVEL >= 1
  {
    ScopedThrowHandler guard;
    EXPECT_THROW(PFAR_REQUIRE(false), ContractViolation);
    EXPECT_THROW(PFAR_ENSURE(false), ContractViolation);
  }
#else
  // Everything is compiled out: nothing throws, nothing is evaluated.
  int evaluations = 0;
  PFAR_REQUIRE(++evaluations > 0);
  PFAR_ENSURE(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
#endif

#if PFAR_AUDIT_ENABLED
  {
    ScopedThrowHandler guard;
    EXPECT_THROW(PFAR_INVARIANT(false), ContractViolation);
  }
#else
  // PFAR_INVARIANT is dead below audit level: the condition and operands
  // must not be evaluated at all.
  int invariant_evaluations = 0;
  PFAR_INVARIANT(++invariant_evaluations > 0, ++invariant_evaluations);
  EXPECT_EQ(invariant_evaluations, 0);
#endif
}

TEST(Contracts, HandlerRestoredAfterScopeExit) {
  contracts::FailHandler before = contracts::set_fail_handler(nullptr);
  contracts::set_fail_handler(before);
  {
    ScopedThrowHandler guard;
    contracts::FailHandler inside = contracts::set_fail_handler(nullptr);
    EXPECT_NE(inside, before);
    contracts::set_fail_handler(inside);
  }
  contracts::FailHandler after = contracts::set_fail_handler(nullptr);
  contracts::set_fail_handler(after);
  EXPECT_EQ(after, before);
}

#if PFAR_CHECKS_LEVEL >= 1
TEST(Contracts, NestedScopedHandlersUnwindInOrder) {
  ScopedThrowHandler outer;
  {
    ScopedThrowHandler inner;
    EXPECT_THROW(PFAR_REQUIRE(false), ContractViolation);
  }
  // The outer handler is still in force after the inner scope ends.
  EXPECT_THROW(PFAR_REQUIRE(false), ContractViolation);
}
#endif  // PFAR_CHECKS_LEVEL >= 1

#if PFAR_CHECKS_LEVEL >= 1
// Real seam: serializing a default-constructed (never built) plan violates
// PlanIO::write's preconditions and must fail as a structured contract
// violation, not as garbage output.
TEST(Contracts, SerializeUnbuiltPlanViolatesPrecondition) {
  ScopedThrowHandler guard;
  try {
    const pfar::core::AllreducePlan empty;
    pfar::core::serialize_plan(empty, 0);
    FAIL() << "precondition did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), "REQUIRE");
    EXPECT_NE(std::string(v.what()).find("topology_"), std::string::npos)
        << v.what();
  }
}
#endif

#if PFAR_CHECKS_LEVEL >= 1
// Conservation at the moment a link dies: drop_edge asserts (PFAR_ENSURE)
// that credits + in-flight credits + in-flight data + queued flits equal the
// VC budget immediately before the drop, and that credits + queued flits
// equal it immediately after. Running a faulted simulation under the
// throwing handler exercises those seams on every killed link; a violation
// would surface here as a ContractViolation instead of silent flit loss.
TEST(Contracts, LinkDeathPreservesCreditConservation) {
  ScopedThrowHandler guard;
  const auto plan = pfar::core::AllreducePlanner(7).build();

  // An uplink each victim tree actually uses, so the drop happens with data
  // genuinely in flight.
  const auto uplink = [&plan](int tree_index) {
    const auto& parents =
        plan.trees()[static_cast<std::size_t>(tree_index)].parents();
    for (int v = 0; v < static_cast<int>(parents.size()); ++v) {
      const int p = parents[static_cast<std::size_t>(v)];
      if (p >= 0) return pfar::graph::Edge(v, p);
    }
    throw std::logic_error("tree has no edges");
  };

  pfar::simnet::SimConfig cfg;
  cfg.progress_timeout = 800;
  // Kill a used link plus run a flaky one, mid-collective, so both the
  // scripted-drop and the grant-time-drop paths run their conservation
  // checks (drop_edge's pre/post PFAR_ENSUREs) with queues occupied.
  const pfar::graph::Edge victim = uplink(0);
  cfg.faults.events.push_back(
      {200, victim.u, victim.v, pfar::simnet::FaultType::kLinkDown});
  const pfar::graph::Edge flaky = uplink(1);
  cfg.faults.flaky_links.push_back({flaky.u, flaky.v});
  cfg.faults.flaky_seed = 99;
  cfg.faults.flaky_drop_permille = 25;

  for (const auto engine : {pfar::simnet::SimEngine::kReference,
                            pfar::simnet::SimEngine::kFastForward}) {
    cfg.engine = engine;
    pfar::simnet::AllreduceSimulator sim(
        plan.topology(), pfar::collectives::to_embeddings(plan.trees()), cfg);
    pfar::simnet::SimResult res;
    EXPECT_NO_THROW(res = sim.run(plan.split(2000)))
        << "engine " << static_cast<int>(engine);

    // The modeled in-flight losses are accounted, not vanished: every
    // dropped flit is attributed to a specific directed link.
    long long per_link = 0;
    for (const long long d : res.link_dropped_flits) {
      EXPECT_GE(d, 0);
      per_link += d;
    }
    EXPECT_EQ(per_link, res.dropped_flits);
    EXPECT_GT(res.dropped_flits, 0);
    EXPECT_GE(res.dropped_packets, 1);
    EXPECT_GE(res.canceled_flits, 0);
    // Nothing corrupt ever reached a root: losses degrade progress, never
    // correctness.
    EXPECT_TRUE(res.values_correct);
  }
}

// The resilient driver must surface those same in-flight losses in its
// RecoveryStats: chunks replayed on the degraded plan are exactly the
// elements the faulted attempts failed to finish, and the per-attempt log
// reconciles with the totals.
TEST(Contracts, RecoveryStatsAccountForInFlightLosses) {
  ScopedThrowHandler guard;
  const auto plan = pfar::core::AllreducePlanner(7).build();

  const auto& parents = plan.trees()[0].parents();
  pfar::graph::Edge victim(0, 0);
  for (int v = 0; v < static_cast<int>(parents.size()); ++v) {
    const int p = parents[static_cast<std::size_t>(v)];
    if (p >= 0) {
      victim = pfar::graph::Edge(v, p);
      break;
    }
  }

  pfar::simnet::SimConfig cfg;
  cfg.progress_timeout = 800;
  cfg.faults.events.push_back(
      {200, victim.u, victim.v, pfar::simnet::FaultType::kLinkDown});

  const auto stats = pfar::collectives::run_resilient_allreduce(
      plan.topology(), plan.trees(), 1500, cfg);
  ASSERT_TRUE(stats.recovered);
  EXPECT_TRUE(stats.values_correct);
  ASSERT_GE(stats.attempt_log.size(), 2u);

  long long lost = 0;
  long long cycles = 0;
  for (const auto& attempt : stats.attempt_log) {
    EXPECT_GE(attempt.elements_lost, 0);
    lost += attempt.elements_lost;
    cycles += attempt.cycles;
  }
  // Every lost element was replayed exactly once per failing attempt...
  EXPECT_EQ(stats.chunks_replayed, lost);
  EXPECT_GT(stats.chunks_replayed, 0);
  // ...and the final attempt lost nothing.
  EXPECT_EQ(stats.attempt_log.back().elements_lost, 0);
  // Total cycles cover all attempts (plus backoff between them).
  EXPECT_GE(stats.total_cycles, cycles);
  EXPECT_GE(stats.detection_cycle, 200);
  ASSERT_EQ(stats.failed_links.size(), 1u);
  EXPECT_EQ(stats.failed_links[0], victim);
}
#endif  // PFAR_CHECKS_LEVEL >= 1

#if PFAR_AUDIT_ENABLED
// Audit-level sweep: building every solution for a small design point runs
// the expensive whole-structure invariants (spanning trees, congestion,
// disjointness) without firing.
TEST(Contracts, AuditLevelBuildPassesAllInvariants) {
  ScopedThrowHandler guard;
  for (const auto solution :
       {pfar::core::Solution::kLowDepth, pfar::core::Solution::kEdgeDisjoint,
        pfar::core::Solution::kSingleTree}) {
    EXPECT_NO_THROW(static_cast<void>(pfar::core::AllreducePlanner(7)
                                          .solution(solution)
                                          .build()));
  }
}
#endif

}  // namespace
