// Determinism contract of the parallel construction fast paths: every
// parallelized builder must produce output bit-identical to its preserved
// single-threaded reference implementation, for every thread count. This
// is the test that lets callers treat `threads` as a pure performance
// knob — plans, benches and caches all assume it.

#include <gtest/gtest.h>

#include <vector>

#include "core/planner.hpp"
#include "model/congestion_model.hpp"
#include "polarfly/erq.hpp"
#include "polarfly/layout.hpp"
#include "singer/difference_set.hpp"
#include "singer/disjoint.hpp"
#include "singer/singer_graph.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar {
namespace {

const int kThreadCounts[] = {1, 2, 5};

void expect_same_trees(const std::vector<trees::SpanningTree>& a,
                       const std::vector<trees::SpanningTree>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].root(), b[t].root()) << "tree " << t;
    EXPECT_EQ(a[t].parents(), b[t].parents()) << "tree " << t;
  }
}

class OddQParallelBuild : public ::testing::TestWithParam<int> {};

TEST_P(OddQParallelBuild, LowDepthMatchesReferenceForEveryThreadCount) {
  const polarfly::PolarFly pf(GetParam());
  const polarfly::Layout layout = polarfly::build_layout(pf);
  const auto reference = trees::build_low_depth_trees_reference(pf, layout);
  for (int threads : kThreadCounts) {
    expect_same_trees(reference,
                      trees::build_low_depth_trees(pf, layout, threads));
  }
}

TEST_P(OddQParallelBuild, HamiltoniansMatchAcrossThreadCounts) {
  const auto d = singer::build_difference_set(GetParam());
  const auto reference = singer::find_disjoint_hamiltonians(d, 1);
  const auto reference_trees = trees::hamiltonian_trees(reference, 1);
  for (int threads : kThreadCounts) {
    const auto set = singer::find_disjoint_hamiltonians(d, threads);
    ASSERT_EQ(set.pairs, reference.pairs);
    ASSERT_EQ(set.size(), reference.size());
    for (int i = 0; i < set.size(); ++i) {
      EXPECT_EQ(set.paths[static_cast<std::size_t>(i)].vertices, reference.paths[static_cast<std::size_t>(i)].vertices);
    }
    expect_same_trees(reference_trees, trees::hamiltonian_trees(set, threads));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallOddQ, OddQParallelBuild,
                         ::testing::Values(5, 7, 9, 11, 13));

class EvenQParallelBuild : public ::testing::TestWithParam<int> {};

TEST_P(EvenQParallelBuild, EvenLowDepthMatchesReferenceForEveryThreadCount) {
  const polarfly::PolarFly pf(GetParam());
  for (int starter : {0, 1}) {
    const auto reference =
        trees::build_low_depth_trees_even_reference(pf, starter);
    for (int threads : kThreadCounts) {
      expect_same_trees(
          reference, trees::build_low_depth_trees_even(pf, starter, threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallEvenQ, EvenQParallelBuild,
                         ::testing::Values(4, 8));

// Algorithm 1 fast path (incidence CSR + bottleneck segment tree) against
// the seed per-edge-scan implementation: EXPECT_EQ on doubles on purpose —
// the contract is bit-identity, not tolerance.
TEST(CongestionFastPath, BitIdenticalToReferenceOnLowDepthTrees) {
  for (int q : {5, 7, 9, 11, 13}) {
    const polarfly::PolarFly pf(q);
    const auto layout = polarfly::build_layout(pf);
    const auto ts = trees::build_low_depth_trees_reference(pf, layout);
    const auto fast = model::compute_tree_bandwidths(pf.graph(), ts, 1.0);
    const auto ref =
        model::compute_tree_bandwidths_reference(pf.graph(), ts, 1.0);
    EXPECT_EQ(fast.aggregate, ref.aggregate) << "q=" << q;
    EXPECT_EQ(fast.per_tree, ref.per_tree) << "q=" << q;
  }
}

TEST(CongestionFastPath, BitIdenticalToReferenceOnHamiltonianTrees) {
  for (int q : {5, 7, 9, 11}) {
    const singer::SingerGraph sg(q);
    const auto set = singer::find_disjoint_hamiltonians(sg.difference_set());
    const auto ts = trees::hamiltonian_trees(set);
    const auto fast = model::compute_tree_bandwidths(sg.graph(), ts, 1.0);
    const auto ref =
        model::compute_tree_bandwidths_reference(sg.graph(), ts, 1.0);
    EXPECT_EQ(fast.aggregate, ref.aggregate) << "q=" << q;
    EXPECT_EQ(fast.per_tree, ref.per_tree) << "q=" << q;
  }
}

TEST(CongestionFastPath, NonUniformLinkBandwidth) {
  const polarfly::PolarFly pf(7);
  const auto layout = polarfly::build_layout(pf);
  const auto ts = trees::build_low_depth_trees_reference(pf, layout);
  for (double b : {0.5, 2.0, 12.5}) {
    const auto fast = model::compute_tree_bandwidths(pf.graph(), ts, b);
    const auto ref =
        model::compute_tree_bandwidths_reference(pf.graph(), ts, b);
    EXPECT_EQ(fast.aggregate, ref.aggregate) << "B=" << b;
    EXPECT_EQ(fast.per_tree, ref.per_tree) << "B=" << b;
  }
}

// Full front door: AllreducePlanner with an explicit thread count must be
// indistinguishable from the default, for both paper solutions.
TEST(PlannerThreads, PlansIdenticalAcrossThreadCounts) {
  for (const core::Solution s :
       {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint}) {
    const auto base = core::AllreducePlanner(7).solution(s).threads(1).build();
    for (int threads : {2, 5}) {
      const auto plan =
          core::AllreducePlanner(7).solution(s).threads(threads).build();
      ASSERT_EQ(plan.num_trees(), base.num_trees());
      for (int t = 0; t < plan.num_trees(); ++t) {
        EXPECT_EQ(plan.trees()[static_cast<std::size_t>(t)].root(), base.trees()[static_cast<std::size_t>(t)].root());
        EXPECT_EQ(plan.trees()[static_cast<std::size_t>(t)].parents(), base.trees()[static_cast<std::size_t>(t)].parents());
      }
      EXPECT_EQ(plan.aggregate_bandwidth(), base.aggregate_bandwidth());
      EXPECT_EQ(plan.bandwidths().per_tree, base.bandwidths().per_tree);
    }
  }
}

}  // namespace
}  // namespace pfar
