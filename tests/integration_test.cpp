// Cross-module integration tests: the two independent constructions of the
// same mathematical object must agree on every computable invariant, and
// the full pipeline (construction -> trees -> model -> simulator) must be
// self-consistent across design points and simulator configurations.

#include <gtest/gtest.h>

#include <algorithm>

#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "polarfly/erq.hpp"
#include "singer/singer_graph.hpp"
#include "util/numeric.hpp"

namespace pfar {
namespace {

class ConstructionAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ConstructionAgreement, ProjectiveAndSingerInvariantsMatch) {
  // Theorem 6.6: S_q is isomorphic to ER_q. Full isomorphism testing is
  // unnecessary — compare the complete invariant set the paper relies on.
  const int q = GetParam();
  const polarfly::PolarFly pf(q);
  const singer::SingerGraph sg(q);

  EXPECT_EQ(pf.n(), sg.graph().num_vertices());
  EXPECT_EQ(pf.graph().num_edges(), sg.graph().num_edges());
  EXPECT_EQ(pf.quadrics().size(), sg.reflection().size());

  // Degree sequences must be identical multisets.
  std::vector<int> deg_pf, deg_sg;
  for (int v = 0; v < pf.n(); ++v) {
    deg_pf.push_back(pf.graph().degree(v));
    deg_sg.push_back(sg.graph().degree(v));
  }
  std::sort(deg_pf.begin(), deg_pf.end());
  std::sort(deg_sg.begin(), deg_sg.end());
  EXPECT_EQ(deg_pf, deg_sg);

  // Quadrics/reflection points have degree q in both.
  for (int w : pf.quadrics()) EXPECT_EQ(pf.graph().degree(w), q);
  for (long long r : sg.reflection()) {
    EXPECT_EQ(sg.graph().degree(static_cast<int>(r)), q);
  }

  // Triangle counts agree (another isomorphism invariant): count via
  // common neighbors of adjacent pairs.
  if (pf.n() <= 200) {
    auto triangles = [](const graph::Graph& g) {
      long long count = 0;
      for (const auto& e : g.edges()) {
        count += g.common_neighbor_count(e.u, e.v);
      }
      return count / 3;
    };
    EXPECT_EQ(triangles(pf.graph()), triangles(sg.graph()));
  }
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, ConstructionAgreement,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13));

class PipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSweep, SimulatedBandwidthTracksModelAcrossConfigs) {
  const int q = GetParam();
  const auto plan = core::AllreducePlanner(q).build();
  // Sweep link latencies and buffer sizes: the steady-state bandwidth must
  // track Algorithm 1 whenever credits cover the round trip.
  for (int latency : {1, 4, 8}) {
    simnet::SimConfig cfg;
    cfg.link_latency = latency;
    cfg.vc_credits = 4 * latency + 4;
    const auto res = plan.simulate(20000, cfg);
    EXPECT_TRUE(res.sim.values_correct) << "latency=" << latency;
    EXPECT_GT(res.efficiency_vs_model, 0.85) << "latency=" << latency;
    EXPECT_LE(res.sim.max_vc_occupancy, cfg.vc_credits);
  }
}

INSTANTIATE_TEST_SUITE_P(OddPrimePowers, PipelineSweep,
                         ::testing::Values(3, 5, 7, 9));

TEST(IntegrationTest, EdgeDisjointUsesEveryLinkForOddQ) {
  // For odd q the (q+1)/2 Hamiltonian trees use q(q+1)^2/2 edges total =
  // every link of the network exactly once: the embedding saturates the
  // bisection. Check via simulator link stats: every directed link moves
  // flits.
  const auto plan =
      core::AllreducePlanner(5).solution(core::Solution::kEdgeDisjoint).build();
  const auto res = plan.simulate(600);
  long long idle_links = 0;
  for (long long f : res.sim.link_flits) {
    if (f == 0) ++idle_links;
  }
  EXPECT_EQ(idle_links, 0);
}

TEST(IntegrationTest, SingleTreeLeavesLinksIdle) {
  // Contrast: one BFS tree touches only N-1 of the q(q+1)^2/2 links.
  const auto plan =
      core::AllreducePlanner(5).solution(core::Solution::kSingleTree).build();
  const auto res = plan.simulate(600);
  long long busy = 0;
  for (long long f : res.sim.link_flits) {
    if (f > 0) ++busy;
  }
  EXPECT_EQ(busy, 2LL * (plan.num_nodes() - 1));  // both directions of tree edges
}

TEST(IntegrationTest, TreeFinishTimesNearlyEqualUnderOptimalSplit) {
  // Theorem 5.1's optimality condition: equal per-tree completion times.
  const auto plan = core::AllreducePlanner(7).build();
  const auto res = plan.simulate(50000);
  ASSERT_TRUE(res.sim.values_correct);
  const auto& finish = res.sim.tree_finish_cycle;
  const auto [lo, hi] = std::minmax_element(finish.begin(), finish.end());
  // Within 5% of each other for a bandwidth-dominated run.
  EXPECT_LT(static_cast<double>(*hi - *lo),
            0.05 * static_cast<double>(*hi));
}

}  // namespace
}  // namespace pfar
