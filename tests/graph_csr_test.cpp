// Golden/property tests for the CSR + packed-bitset graph layout: a
// finalized Graph must be observably identical to an independently built
// set-based adjacency model on random graphs and on ER_q, with the packed
// bitset resident and with it disabled (budget 0), and edge ids must stay
// the lexicographic rank of the normalized edge (the seed contract the
// congestion model and simulator index by).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "polarfly/erq.hpp"
#include "util/rng.hpp"

namespace pfar::graph {
namespace {

// Restores the process-wide bitset budget on scope exit.
class BitsetBudgetGuard {
 public:
  explicit BitsetBudgetGuard(std::size_t bytes)
      : previous_(Graph::set_max_bitset_bytes(bytes)) {}
  ~BitsetBudgetGuard() { Graph::set_max_bitset_bytes(previous_); }

 private:
  std::size_t previous_;
};

// Independent reference model: ordered edge set + per-vertex sorted
// adjacency, no shared code with Graph's CSR internals.
struct ReferenceGraph {
  int n = 0;
  std::set<std::pair<int, int>> edges;            // normalized u < v
  std::vector<std::set<int>> adj;

  explicit ReferenceGraph(int vertices) : n(vertices), adj(static_cast<std::size_t>(vertices)) {}

  void add(int u, int v) {
    edges.insert({std::min(u, v), std::max(u, v)});
    adj[static_cast<std::size_t>(u)].insert(v);
    adj[static_cast<std::size_t>(v)].insert(u);
  }
};

void expect_identical(const Graph& g, const ReferenceGraph& ref) {
  ASSERT_EQ(g.num_vertices(), ref.n);
  ASSERT_EQ(g.num_edges(), static_cast<int>(ref.edges.size()));

  // Edge ids are the lexicographic rank: std::set iterates in exactly
  // that order, so position == id.
  int id = 0;
  for (const auto& [u, v] : ref.edges) {
    EXPECT_EQ(g.edge_id(u, v), id);
    EXPECT_EQ(g.edge_id(v, u), id);  // symmetric lookup
    EXPECT_EQ(g.edge(id).u, u);
    EXPECT_EQ(g.edge(id).v, v);
    ++id;
  }

  for (int v = 0; v < ref.n; ++v) {
    const auto row = g.neighbors(v);
    const auto eids = g.neighbor_edge_ids(v);
    ASSERT_EQ(row.size(), ref.adj[static_cast<std::size_t>(v)].size())
        << "vertex " << v;
    ASSERT_EQ(eids.size(), row.size());
    EXPECT_EQ(g.degree(v), static_cast<int>(row.size()));
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
    std::size_t i = 0;
    for (int u : ref.adj[static_cast<std::size_t>(v)]) {  // set iterates ascending
      EXPECT_EQ(row[i], u);
      EXPECT_EQ(eids[i], g.edge_id(v, u));
      ++i;
    }
  }

  for (int u = 0; u < ref.n; ++u) {
    for (int v = 0; v < ref.n; ++v) {
      const bool expected = ref.adj[static_cast<std::size_t>(u)].count(v) > 0;
      EXPECT_EQ(g.has_edge(u, v), expected) << u << "-" << v;
      if (!expected && u != v) {
        EXPECT_EQ(g.edge_id(u, v), -1);
      }
      if (u < v) {
        std::vector<int> common;
        std::set_intersection(ref.adj[static_cast<std::size_t>(u)].begin(), ref.adj[static_cast<std::size_t>(u)].end(),
                              ref.adj[static_cast<std::size_t>(v)].begin(), ref.adj[static_cast<std::size_t>(v)].end(),
                              std::back_inserter(common));
        EXPECT_EQ(g.common_neighbor_count(u, v),
                  static_cast<int>(common.size()));
      }
    }
  }
}

Graph build_from(const ReferenceGraph& ref) {
  Graph g(ref.n);
  for (const auto& [u, v] : ref.edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

ReferenceGraph random_reference(int n, double p, std::uint64_t seed) {
  ReferenceGraph ref(n);
  util::Rng rng(seed);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < p) ref.add(u, v);
    }
  }
  return ref;
}

TEST(GraphCsrTest, RandomGraphsMatchReferenceWithBitset) {
  for (const auto& [n, p, seed] :
       {std::tuple{8, 0.5, 1ull}, std::tuple{33, 0.2, 2ull},
        std::tuple{64, 0.08, 3ull}, std::tuple{90, 0.5, 4ull}}) {
    const auto ref = random_reference(n, p, seed);
    const Graph g = build_from(ref);
    ASSERT_TRUE(g.has_adjacency_bitset());
    expect_identical(g, ref);
  }
}

TEST(GraphCsrTest, RandomGraphsMatchReferenceWithoutBitset) {
  BitsetBudgetGuard guard(0);  // force the merge-scan / binary-search path
  for (const auto& [n, p, seed] :
       {std::tuple{8, 0.5, 5ull}, std::tuple{33, 0.2, 6ull},
        std::tuple{64, 0.08, 7ull}}) {
    const auto ref = random_reference(n, p, seed);
    const Graph g = build_from(ref);
    ASSERT_FALSE(g.has_adjacency_bitset());
    expect_identical(g, ref);
  }
}

// ER_q golden check: rebuild the adjacency through the reference model
// from PolarFly's own edge list, then compare every observable. Covers
// both parities and prime powers (4, 8, 9 exercise non-prime fields).
class ErqCsrTest : public ::testing::TestWithParam<int> {};

TEST_P(ErqCsrTest, MatchesReferenceModel) {
  const polarfly::PolarFly pf(GetParam());
  const Graph& g = pf.graph();
  ReferenceGraph ref(pf.n());
  for (const auto& e : g.edges()) ref.add(e.u, e.v);
  expect_identical(g, ref);
}

TEST_P(ErqCsrTest, BitsetAndFallbackAgree) {
  const polarfly::PolarFly with_bits(GetParam());
  BitsetBudgetGuard guard(0);
  const polarfly::PolarFly without_bits(GetParam());
  const Graph& a = with_bits.graph();
  const Graph& b = without_bits.graph();
  ASSERT_TRUE(a.has_adjacency_bitset());
  ASSERT_FALSE(b.has_adjacency_bitset());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int id = 0; id < a.num_edges(); ++id) {
    EXPECT_EQ(a.edge(id), b.edge(id));
  }
  // The unique-2-path invariant (Theorem 6.1) through both code paths.
  const int n = a.num_vertices();
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const int c = a.common_neighbor_count(u, v);
      EXPECT_EQ(c, b.common_neighbor_count(u, v));
      EXPECT_LE(c, a.has_edge(u, v) ? 2 : 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, ErqCsrTest,
                         ::testing::Values(3, 4, 5, 7, 8, 9, 11));

TEST(GraphCsrTest, GroupedAndShuffledInsertionGiveSameIds) {
  // PolarFly/Singer emit edges grouped by ascending first endpoint (the
  // run-sort fast path); arbitrary insertion order must yield the same
  // lexicographic ids.
  const auto ref = random_reference(40, 0.3, 8ull);
  const Graph grouped = build_from(ref);

  std::vector<std::pair<int, int>> shuffled(ref.edges.begin(),
                                            ref.edges.end());
  util::Rng rng(9);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
  }
  Graph g(ref.n);
  for (const auto& [u, v] : shuffled) g.add_edge(u, v);
  g.finalize();

  ASSERT_EQ(g.num_edges(), grouped.num_edges());
  for (int id = 0; id < g.num_edges(); ++id) {
    EXPECT_EQ(g.edge(id), grouped.edge(id));
  }
  expect_identical(g, ref);
}

TEST(GraphCsrTest, DuplicateEdgeThrowsAtFinalize) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // same normalized edge
  EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(GraphCsrTest, ReserveIsObservablyInert) {
  const auto ref = random_reference(25, 0.3, 10ull);
  Graph g(ref.n);
  g.reserve(static_cast<int>(ref.edges.size()), 12);
  for (const auto& [u, v] : ref.edges) g.add_edge(u, v);
  g.finalize();
  expect_identical(g, ref);
}

}  // namespace
}  // namespace pfar::graph
