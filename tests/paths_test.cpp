#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "singer/paths.hpp"
#include "singer/singer_graph.hpp"
#include "util/numeric.hpp"

namespace pfar::singer {
namespace {

class PathTheorems : public ::testing::TestWithParam<int> {};

TEST_P(PathTheorems, VertexCountFormula) {
  // Theorem 7.13: k = N / gcd(d0 - d1, N), verified constructively.
  const DifferenceSet d = build_difference_set(GetParam());
  for (long long d0 : d.elements) {
    for (long long d1 : d.elements) {
      if (d0 == d1) continue;
      const auto path = build_alternating_path(d, d0, d1);
      EXPECT_EQ(static_cast<long long>(path.vertices.size()),
                d.n / util::gcd_ll(d0 - d1, d.n));
    }
  }
}

TEST_P(PathTheorems, PathsAreNonRepeating) {
  const DifferenceSet d = build_difference_set(GetParam());
  for (long long d0 : d.elements) {
    for (long long d1 : d.elements) {
      if (d0 == d1) continue;
      const auto path = build_alternating_path(d, d0, d1);
      std::set<long long> uniq(path.vertices.begin(), path.vertices.end());
      EXPECT_EQ(uniq.size(), path.vertices.size());
    }
  }
}

TEST_P(PathTheorems, EdgesExistInSingerGraphWithAlternatingSums) {
  // Every consecutive pair must be a Singer-graph edge, with edge sums
  // alternating d0 (even steps) and d1 (odd steps) per Definition 7.11.
  const int q = GetParam();
  const SingerGraph s(q);
  const DifferenceSet& d = s.difference_set();
  for (long long d0 : d.elements) {
    for (long long d1 : d.elements) {
      if (d0 == d1) continue;
      const auto path = build_alternating_path(d, d0, d1);
      for (std::size_t i = 1; i < path.vertices.size(); ++i) {
        const int a = static_cast<int>(path.vertices[i - 1]);
        const int b = static_cast<int>(path.vertices[i]);
        EXPECT_TRUE(s.graph().has_edge(a, b)) << a << "-" << b;
        // Step i (1-based vertex index i+1): edge (b_i, b_{i+1}) has sum
        // d0 if i+1 is even, d1 if odd.
        const long long expected = ((i + 1) % 2 == 0) ? d0 : d1;
        EXPECT_EQ(s.edge_sum(a, b), expected);
      }
    }
  }
}

TEST_P(PathTheorems, EndpointsAreReflectionPoints) {
  // Lemma 7.12: b_1 = 2^{-1} d1 and b_k = 2^{-1} d0, both reflection points.
  const DifferenceSet d = build_difference_set(GetParam());
  const long long half = util::mod_inverse(2, d.n);
  const auto refl = reflection_points(d);
  for (long long d0 : d.elements) {
    for (long long d1 : d.elements) {
      if (d0 == d1) continue;
      const auto path = build_alternating_path(d, d0, d1);
      EXPECT_EQ(path.vertices.front(), util::mod_mul(half, d1, d.n));
      EXPECT_EQ(path.vertices.back(), util::mod_mul(half, d0, d.n));
      EXPECT_TRUE(std::binary_search(refl.begin(), refl.end(),
                                     path.vertices.front()));
      EXPECT_TRUE(std::binary_search(refl.begin(), refl.end(),
                                     path.vertices.back()));
      EXPECT_EQ(path.vertices.size() % 2, 1u);  // k is odd (Lemma 7.12)
    }
  }
}

TEST_P(PathTheorems, ClosedFormMatchesIteration) {
  // Corollary 7.16.
  const DifferenceSet d = build_difference_set(GetParam());
  for (long long d0 : d.elements) {
    for (long long d1 : d.elements) {
      if (d0 == d1) continue;
      const auto path = build_alternating_path(d, d0, d1);
      for (std::size_t i = 1; i <= path.vertices.size(); ++i) {
        EXPECT_EQ(
            alternating_path_element(d, d0, d1, static_cast<long long>(i)),
            path.vertices[i - 1])
            << "i=" << i;
      }
    }
  }
}

TEST_P(PathTheorems, HamiltonianIffCoprime) {
  const DifferenceSet d = build_difference_set(GetParam());
  for (long long d0 : d.elements) {
    for (long long d1 : d.elements) {
      if (d0 == d1) continue;
      const auto path = build_alternating_path(d, d0, d1);
      EXPECT_EQ(path.hamiltonian, util::gcd_ll(d0 - d1, d.n) == 1);
      if (path.hamiltonian) {
        EXPECT_EQ(static_cast<long long>(path.vertices.size()), d.n);
      }
    }
  }
}

TEST_P(PathTheorems, HamiltonianCountIsTotient) {
  // Corollary 7.20.
  const DifferenceSet d = build_difference_set(GetParam());
  EXPECT_EQ(count_hamiltonian_paths(d), util::totient(d.n));
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, PathTheorems,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16));

TEST(PathsTest, TableTwoNonHamiltonianPathsForQ4) {
  // Table 2: all non-Hamiltonian maximal alternating-sum paths in S_4 with
  // D = {0, 1, 4, 14, 16} (up to reversal): (d0, d1, k, b1, bk).
  const DifferenceSet d = build_difference_set(4);
  struct Row {
    long long d0, d1, k, b1, bk;
  };
  const std::vector<Row> expected{
      {0, 14, 3, 7, 0},
      {1, 4, 7, 2, 11},
      {1, 16, 7, 8, 11},
      {4, 16, 7, 8, 2},
  };
  std::vector<Row> actual;
  for (std::size_t i = 0; i < d.elements.size(); ++i) {
    for (std::size_t j = 0; j < d.elements.size(); ++j) {
      if (i == j) continue;
      const long long d0 = d.elements[i], d1 = d.elements[j];
      if (util::gcd_ll(d0 - d1, d.n) == 1) continue;
      if (d0 > d1) continue;  // exclude reversals, as the table does
      const auto path = build_alternating_path(d, d0, d1);
      actual.push_back(Row{d0, d1,
                           static_cast<long long>(path.vertices.size()),
                           path.vertices.front(), path.vertices.back()});
    }
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(actual[r].d0, expected[r].d0);
    EXPECT_EQ(actual[r].d1, expected[r].d1);
    EXPECT_EQ(actual[r].k, expected[r].k);
    EXPECT_EQ(actual[r].b1, expected[r].b1);
    EXPECT_EQ(actual[r].bk, expected[r].bk);
  }
}

TEST(PathsTest, PrimeOrderMakesAllPathsHamiltonian) {
  // q = 3 => N = 13 prime: every maximal alternating-sum path spans.
  const DifferenceSet d = build_difference_set(3);
  for (long long d0 : d.elements) {
    for (long long d1 : d.elements) {
      if (d0 == d1) continue;
      EXPECT_TRUE(build_alternating_path(d, d0, d1).hamiltonian);
    }
  }
}

TEST(PathsTest, ReversedPairGivesReversedPath) {
  const DifferenceSet d = build_difference_set(5);
  const auto fwd = build_alternating_path(d, d.elements[0], d.elements[1]);
  auto rev = build_alternating_path(d, d.elements[1], d.elements[0]);
  std::reverse(rev.vertices.begin(), rev.vertices.end());
  EXPECT_EQ(fwd.vertices, rev.vertices);
}

TEST(PathsTest, RejectsEqualSums) {
  const DifferenceSet d = build_difference_set(3);
  EXPECT_THROW(build_alternating_path(d, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pfar::singer
