#include <gtest/gtest.h>

#include <set>

#include "polarfly/projective_plane.hpp"

namespace pfar::polarfly {
namespace {

class PlaneAxioms : public ::testing::TestWithParam<int> {};

TEST_P(PlaneAxioms, Cardinalities) {
  const ProjectivePlane plane(GetParam());
  const int q = plane.q();
  EXPECT_EQ(plane.size(), q * q + q + 1);
  for (int j = 0; j < plane.size(); ++j) {
    EXPECT_EQ(static_cast<int>(plane.points_on_line(j).size()), q + 1);
    EXPECT_EQ(static_cast<int>(plane.lines_through_point(j).size()), q + 1);
  }
}

TEST_P(PlaneAxioms, TwoPointsSpanExactlyOneLine) {
  const ProjectivePlane plane(GetParam());
  for (int p1 = 0; p1 < plane.size(); ++p1) {
    for (int p2 = p1 + 1; p2 < plane.size(); ++p2) {
      const int line = plane.line_through(p1, p2);
      EXPECT_TRUE(plane.incident(p1, line));
      EXPECT_TRUE(plane.incident(p2, line));
      // Uniqueness: no second common line.
      int common = 0;
      for (int l : plane.lines_through_point(p1)) {
        if (plane.incident(p2, l)) ++common;
      }
      EXPECT_EQ(common, 1);
    }
  }
}

TEST_P(PlaneAxioms, TwoLinesMeetInExactlyOnePoint) {
  const ProjectivePlane plane(GetParam());
  for (int l1 = 0; l1 < plane.size(); ++l1) {
    for (int l2 = l1 + 1; l2 < plane.size(); ++l2) {
      const int p = plane.meet(l1, l2);
      EXPECT_TRUE(plane.incident(p, l1));
      EXPECT_TRUE(plane.incident(p, l2));
    }
  }
}

TEST_P(PlaneAxioms, IncidenceIsOrthogonality) {
  const ProjectivePlane plane(GetParam());
  const auto& f = plane.field();
  for (int p = 0; p < plane.size(); ++p) {
    for (int l = 0; l < plane.size(); ++l) {
      const Point& pt = plane.point(p);
      const Point& ln = plane.line(l);
      gf::Elem dot = f.mul(pt.x, ln.x);
      dot = f.add(dot, f.mul(pt.y, ln.y));
      dot = f.add(dot, f.mul(pt.z, ln.z));
      EXPECT_EQ(plane.incident(p, l), dot == 0);
    }
  }
}

TEST_P(PlaneAxioms, AbsolutePointsAreQuadrics) {
  const int q = GetParam();
  const ProjectivePlane plane(q);
  const PolarFly pf(q);
  int absolute = 0;
  for (int p = 0; p < plane.size(); ++p) {
    EXPECT_EQ(plane.is_absolute(p), pf.is_quadric(p)) << "point " << p;
    if (plane.is_absolute(p)) ++absolute;
  }
  EXPECT_EQ(absolute, q + 1);
}

TEST_P(PlaneAxioms, PolarityGraphIsPolarFly) {
  const PolarFly pf(GetParam());
  EXPECT_TRUE(polarfly_matches_polarity_graph(pf));
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, PlaneAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11));

TEST(PlaneTest, DualityErrorsOnDegenerateArgs) {
  const ProjectivePlane plane(3);
  EXPECT_THROW(plane.line_through(2, 2), std::invalid_argument);
  EXPECT_THROW(plane.meet(5, 5), std::invalid_argument);
}

}  // namespace
}  // namespace pfar::polarfly
