// Differential fault-injection harness (the pin for docs/resilience.md):
//
//  * every fault script in the matrix — permanent link down, transient
//    down/up, seeded flaky link, double failure — must be honored
//    bit-identically by the fast-forward and reference engines across
//    q in {5, 7, 11}: cycles, per-link flit counts, occupancy maxima,
//    drop/cancel accounting, failure detection cycles;
//  * collectives::run_resilient_allreduce must recover a mid-collective
//    single-link failure (values_correct == true end to end) and its
//    RecoveryStats are pinned against golden values per q;
//  * fault-script validation and accounting identities are exercised at
//    the simulator boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "collectives/innetwork.hpp"
#include "collectives/resilient.hpp"
#include "core/planner.hpp"
#include "graph/graph.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"

namespace {

using namespace pfar;

// A link the plan actually uses: the tree-0 uplink of the smallest
// non-root vertex. Downing it is guaranteed to hurt at least one tree.
graph::Edge used_link(const core::AllreducePlan& plan, int tree_index = 0) {
  const auto& tree = plan.trees()[static_cast<std::size_t>(tree_index)];
  const auto& parents = tree.parents();
  for (int v = 0; v < static_cast<int>(parents.size()); ++v) {
    if (parents[static_cast<std::size_t>(v)] >= 0) {
      return graph::Edge(v, parents[static_cast<std::size_t>(v)]);
    }
  }
  throw std::logic_error("tree has no edges");
}

simnet::SimResult run_engine(const core::AllreducePlan& plan,
                             simnet::SimConfig cfg, long long m,
                             simnet::SimEngine engine) {
  cfg.engine = engine;
  simnet::AllreduceSimulator sim(
      plan.topology(), collectives::to_embeddings(plan.trees()), cfg);
  return sim.run(plan.split(m));
}

// Every SimResult field, including the fault-observability ones, must be
// bit-identical between the engines.
void expect_identical(const core::AllreducePlan& plan,
                      const simnet::SimConfig& cfg, long long m,
                      const char* label) {
  const auto fast =
      run_engine(plan, cfg, m, simnet::SimEngine::kFastForward);
  const auto ref = run_engine(plan, cfg, m, simnet::SimEngine::kReference);
  EXPECT_EQ(fast.cycles, ref.cycles) << label;
  EXPECT_EQ(fast.total_elements, ref.total_elements) << label;
  EXPECT_EQ(fast.values_correct, ref.values_correct) << label;
  EXPECT_EQ(fast.max_vc_occupancy, ref.max_vc_occupancy) << label;
  EXPECT_EQ(fast.link_flits, ref.link_flits) << label;
  EXPECT_EQ(fast.tree_finish_cycle, ref.tree_finish_cycle) << label;
  EXPECT_EQ(fast.tree_first_delivery, ref.tree_first_delivery) << label;
  EXPECT_EQ(fast.tree_failed, ref.tree_failed) << label;
  EXPECT_EQ(fast.tree_fail_cycle, ref.tree_fail_cycle) << label;
  EXPECT_EQ(fast.tree_completed, ref.tree_completed) << label;
  EXPECT_EQ(fast.dropped_packets, ref.dropped_packets) << label;
  EXPECT_EQ(fast.dropped_flits, ref.dropped_flits) << label;
  EXPECT_EQ(fast.link_dropped_flits, ref.link_dropped_flits) << label;
  EXPECT_EQ(fast.canceled_packets, ref.canceled_packets) << label;
  EXPECT_EQ(fast.canceled_flits, ref.canceled_flits) << label;
  ASSERT_EQ(fast.links_down.size(), ref.links_down.size()) << label;
  for (std::size_t i = 0; i < fast.links_down.size(); ++i) {
    EXPECT_EQ(fast.links_down[i], ref.links_down[i]) << label;
  }
  EXPECT_DOUBLE_EQ(fast.aggregate_bandwidth, ref.aggregate_bandwidth)
      << label;
}

class FaultDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FaultDifferential, EnginesBitIdenticalAcrossScriptMatrix) {
  const int q = GetParam();
  const auto plan = core::AllreducePlanner(q).build();
  const graph::Edge a = used_link(plan, 0);
  const graph::Edge b =
      used_link(plan, static_cast<int>(plan.trees().size()) - 1);
  const long long m = 2000;

  simnet::SimConfig base;
  base.progress_timeout = 1500;

  {
    simnet::SimConfig cfg = base;  // permanent single-link failure
    cfg.faults.events.push_back(
        {200, a.u, a.v, simnet::FaultType::kLinkDown});
    expect_identical(plan, cfg, m, "permanent_down");
  }
  {
    simnet::SimConfig cfg = base;  // transient outage, link comes back
    cfg.faults.events.push_back(
        {150, a.u, a.v, simnet::FaultType::kLinkDown});
    cfg.faults.events.push_back({400, a.u, a.v, simnet::FaultType::kLinkUp});
    expect_identical(plan, cfg, m, "transient_down_up");
  }
  {
    simnet::SimConfig cfg = base;  // seeded flaky link
    cfg.faults.flaky_links.emplace_back(a.u, a.v);
    cfg.faults.flaky_seed = 7;
    cfg.faults.flaky_drop_permille = 30;
    expect_identical(plan, cfg, m, "flaky_link");
  }
  {
    simnet::SimConfig cfg = base;  // staggered double failure
    cfg.faults.events.push_back(
        {100, a.u, a.v, simnet::FaultType::kLinkDown});
    cfg.faults.events.push_back(
        {250, b.u, b.v, simnet::FaultType::kLinkDown});
    expect_identical(plan, cfg, m, "double_down");
  }
  {
    // No detection configured: a transient hiccup early enough to lose
    // nothing (before any packet is in flight) must still match and stay
    // healthy.
    simnet::SimConfig cfg;
    cfg.faults.events.push_back({0, b.u, b.v, simnet::FaultType::kLinkDown});
    cfg.faults.events.push_back({1, b.u, b.v, simnet::FaultType::kLinkUp});
    expect_identical(plan, cfg, m, "instant_blip");
  }
}

TEST_P(FaultDifferential, FaultedRunAccountingIsConsistent) {
  const int q = GetParam();
  const auto plan = core::AllreducePlanner(q).build();
  const graph::Edge a = used_link(plan, 0);

  simnet::SimConfig cfg;
  cfg.progress_timeout = 1500;
  cfg.faults.events.push_back({200, a.u, a.v, simnet::FaultType::kLinkDown});
  const auto res =
      run_engine(plan, cfg, 2000, simnet::SimEngine::kFastForward);

  // The downed link is still down at run end; no values were corrupted
  // (losses freeze streams, they never misalign them).
  ASSERT_EQ(res.links_down.size(), 1u);
  EXPECT_EQ(res.links_down[0], graph::Edge(a.u, a.v));
  EXPECT_TRUE(res.values_correct);

  // At least one tree failed, with a sane detection cycle and a complete
  // prefix strictly below its assignment.
  const auto split = plan.split(2000);
  long long failures = 0;
  for (std::size_t t = 0; t < res.tree_failed.size(); ++t) {
    if (!res.tree_failed[t]) {
      EXPECT_EQ(res.tree_completed[t], split[t]);
      EXPECT_EQ(res.tree_fail_cycle[t], -1);
      continue;
    }
    ++failures;
    EXPECT_GT(res.tree_fail_cycle[t], 200);
    EXPECT_LE(res.tree_fail_cycle[t], res.cycles);
    EXPECT_LT(res.tree_completed[t], split[t]);
    EXPECT_GE(res.tree_completed[t], 0);
  }
  EXPECT_GE(failures, 1);

  // Per-link drop counts sum to the totals, and dropped flits are a subset
  // of the flits that crossed each link.
  long long dropped = 0;
  for (std::size_t d = 0; d < res.link_dropped_flits.size(); ++d) {
    dropped += res.link_dropped_flits[d];
    EXPECT_LE(res.link_dropped_flits[d], res.link_flits[d]);
  }
  EXPECT_EQ(dropped, res.dropped_flits);
  EXPECT_GE(res.canceled_packets, 0);
}

INSTANTIATE_TEST_SUITE_P(Quadrics, FaultDifferential,
                         ::testing::Values(5, 7, 11));

// --- Resilient driver: recovery + golden RecoveryStats --------------------

struct GoldenRecovery {
  int q;
  long long detection_cycle;
  long long chunks_replayed;
  long long total_cycles;
  int attempts;
};

TEST(ResilientAllreduce, RecoversSingleLinkFailureWithGoldenStats) {
  // One scripted mid-collective single-link failure per q; the stats are
  // pinned so recovery-path behavior cannot drift silently.
  const GoldenRecovery goldens[] = {
      {5, 1023, 420, 1734, 2},
      {7, 1027, 249, 1799, 2},
      {11, 1027, 93, 2303, 2},
  };
  for (const auto& g : goldens) {
    const auto plan = core::AllreducePlanner(g.q).build();
    const graph::Edge a = used_link(plan, 0);

    simnet::SimConfig cfg;
    cfg.progress_timeout = 800;
    cfg.faults.events.push_back(
        {200, a.u, a.v, simnet::FaultType::kLinkDown});

    collectives::ResilienceConfig rc;
    rc.policy = collectives::RecoveryPolicy::kRepack;

    const auto stats = collectives::run_resilient_allreduce(
        plan.topology(), plan.trees(), 1500, cfg, rc);

    EXPECT_TRUE(stats.recovered) << "q=" << g.q;
    EXPECT_TRUE(stats.values_correct) << "q=" << g.q;
    EXPECT_TRUE(stats.final_sim.values_correct) << "q=" << g.q;
    EXPECT_EQ(stats.attempts, g.attempts) << "q=" << g.q;
    EXPECT_EQ(stats.detection_cycle, g.detection_cycle) << "q=" << g.q;
    EXPECT_EQ(stats.chunks_replayed, g.chunks_replayed) << "q=" << g.q;
    EXPECT_EQ(stats.total_cycles, g.total_cycles) << "q=" << g.q;
    ASSERT_EQ(stats.failed_links.size(), 1u) << "q=" << g.q;
    EXPECT_EQ(stats.failed_links[0], graph::Edge(a.u, a.v)) << "q=" << g.q;
    EXPECT_GT(stats.degraded_aggregate_bandwidth, 0.0) << "q=" << g.q;
    ASSERT_EQ(stats.attempt_log.size(), 2u) << "q=" << g.q;
    EXPECT_GT(stats.attempt_log[0].elements_lost, 0) << "q=" << g.q;
    EXPECT_EQ(stats.attempt_log[1].elements_lost, 0) << "q=" << g.q;
    EXPECT_EQ(stats.attempt_log[1].elements, g.chunks_replayed)
        << "q=" << g.q;
  }
}

TEST(ResilientAllreduce, KeepSurvivingPolicyAlsoRecovers) {
  const auto plan = core::AllreducePlanner(7).build();
  const graph::Edge a = used_link(plan, 0);

  simnet::SimConfig cfg;
  cfg.progress_timeout = 800;
  cfg.faults.events.push_back({200, a.u, a.v, simnet::FaultType::kLinkDown});

  collectives::ResilienceConfig rc;
  rc.policy = collectives::RecoveryPolicy::kKeepSurviving;
  const auto stats = collectives::run_resilient_allreduce(
      plan.topology(), plan.trees(), 1500, cfg, rc);
  EXPECT_TRUE(stats.recovered);
  EXPECT_TRUE(stats.values_correct);
  // Keep-surviving drops whole trees: strictly fewer trees in the replay.
  ASSERT_EQ(stats.attempt_log.size(), 2u);
  EXPECT_LT(stats.attempt_log[1].trees, stats.attempt_log[0].trees);
  EXPECT_LT(stats.attempt_log[1].model_bandwidth,
            stats.attempt_log[0].model_bandwidth);
}

TEST(ResilientAllreduce, HealthyRunIsZeroOverhead) {
  const auto plan = core::AllreducePlanner(5).build();
  simnet::SimConfig cfg;
  cfg.progress_timeout = 800;
  const auto stats = collectives::run_resilient_allreduce(
      plan.topology(), plan.trees(), 1000, cfg);
  EXPECT_TRUE(stats.recovered);
  EXPECT_TRUE(stats.values_correct);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.detection_cycle, -1);
  EXPECT_EQ(stats.chunks_replayed, 0);
  EXPECT_TRUE(stats.failed_links.empty());
  // Identical to the plain simulation: the fault layer is inert.
  const auto res = run_engine(plan, cfg, 1000, simnet::SimEngine::kFastForward);
  EXPECT_EQ(stats.total_cycles, res.cycles);
}

// --- Script validation at the simulator boundary --------------------------

TEST(FaultScriptValidation, RejectsBadScripts) {
  const auto plan = core::AllreducePlanner(5).build();
  const auto embeddings = collectives::to_embeddings(plan.trees());

  {
    simnet::SimConfig cfg;  // non-link event
    cfg.faults.events.push_back({10, 0, 0, simnet::FaultType::kLinkDown});
    EXPECT_THROW(
        simnet::AllreduceSimulator(plan.topology(), embeddings, cfg),
        std::invalid_argument);
  }
  {
    simnet::SimConfig cfg;  // negative cycle
    const graph::Edge a = used_link(plan);
    cfg.faults.events.push_back({-1, a.u, a.v, simnet::FaultType::kLinkDown});
    EXPECT_THROW(
        simnet::AllreduceSimulator(plan.topology(), embeddings, cfg),
        std::invalid_argument);
  }
  {
    simnet::SimConfig cfg;  // permille out of range
    const graph::Edge a = used_link(plan);
    cfg.faults.flaky_links.emplace_back(a.u, a.v);
    cfg.faults.flaky_drop_permille = 1001;
    EXPECT_THROW(
        simnet::AllreduceSimulator(plan.topology(), embeddings, cfg),
        std::invalid_argument);
  }
  {
    simnet::SimConfig cfg;  // timeout must stay below the stall limit
    cfg.progress_timeout = cfg.stall_limit;
    EXPECT_THROW(
        simnet::AllreduceSimulator(plan.topology(), embeddings, cfg),
        std::invalid_argument);
  }
  {
    simnet::SimConfig cfg;  // detection disabled is rejected by the driver
    EXPECT_THROW(static_cast<void>(collectives::run_resilient_allreduce(
                     plan.topology(), plan.trees(), 100, cfg)),
                 std::invalid_argument);
  }
}

}  // namespace
