#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace pfar::util {
namespace {

TEST(NumericTest, IsPrime) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(127));
  EXPECT_FALSE(is_prime(128));
  EXPECT_TRUE(is_prime(104729));  // 10000th prime
  EXPECT_FALSE(is_prime(104730));
}

TEST(NumericTest, IsPrimePower) {
  int p = 0, a = 0;
  EXPECT_TRUE(is_prime_power(2, &p, &a));
  EXPECT_EQ(p, 2);
  EXPECT_EQ(a, 1);
  EXPECT_TRUE(is_prime_power(8, &p, &a));
  EXPECT_EQ(p, 2);
  EXPECT_EQ(a, 3);
  EXPECT_TRUE(is_prime_power(81, &p, &a));
  EXPECT_EQ(p, 3);
  EXPECT_EQ(a, 4);
  EXPECT_TRUE(is_prime_power(125, &p, &a));
  EXPECT_EQ(p, 5);
  EXPECT_EQ(a, 3);
  EXPECT_FALSE(is_prime_power(1));
  EXPECT_FALSE(is_prime_power(6));
  EXPECT_FALSE(is_prime_power(12));
  EXPECT_FALSE(is_prime_power(100));
}

TEST(NumericTest, PrimePowersInRange) {
  const auto pp = prime_powers_in(2, 32);
  const std::vector<int> expected{2,  3,  4,  5,  7,  8,  9,  11, 13,
                                  16, 17, 19, 23, 25, 27, 29, 31, 32};
  EXPECT_EQ(pp, expected);
}

TEST(NumericTest, Gcd) {
  EXPECT_EQ(gcd_ll(12, 18), 6);
  EXPECT_EQ(gcd_ll(-12, 18), 6);
  EXPECT_EQ(gcd_ll(0, 5), 5);
  EXPECT_EQ(gcd_ll(7, 13), 1);
}

TEST(NumericTest, Totient) {
  EXPECT_EQ(totient(1), 1);
  EXPECT_EQ(totient(13), 12);
  EXPECT_EQ(totient(21), 12);
  EXPECT_EQ(totient(100), 40);
  // phi(N) for N = q^2+q+1, cross-checked by brute force.
  for (long long n : {7LL, 13LL, 21LL, 31LL, 57LL, 133LL, 183LL}) {
    long long brute = 0;
    for (long long k = 1; k < n; ++k) {
      if (gcd_ll(k, n) == 1) ++brute;
    }
    EXPECT_EQ(totient(n), brute) << "n=" << n;
  }
}

TEST(NumericTest, ModInverse) {
  EXPECT_EQ(mod_inverse(2, 13), 7);
  EXPECT_EQ(mod_inverse(2, 21), 11);  // Lemma 6.7: (N+1)/2
  for (long long n : {13LL, 21LL, 57LL, 183LL}) {
    EXPECT_EQ(mod_inverse(2, n), (n + 1) / 2) << "n=" << n;
  }
  EXPECT_THROW(mod_inverse(3, 21), std::invalid_argument);
}

TEST(NumericTest, ApportionSumsToTotal) {
  const auto split = apportion(100, {1.0, 1.0, 1.0});
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), 0LL), 100);
  EXPECT_EQ(split.size(), 3u);
  for (long long s : split) EXPECT_GE(s, 33);
}

TEST(NumericTest, ApportionProportional) {
  const auto split = apportion(90, {1.0, 2.0});
  EXPECT_EQ(split[0], 30);
  EXPECT_EQ(split[1], 60);
}

TEST(NumericTest, ApportionZeroTotal) {
  const auto split = apportion(0, {3.0, 1.0});
  EXPECT_EQ(split[0], 0);
  EXPECT_EQ(split[1], 0);
}

TEST(NumericTest, ApportionUnevenWeights) {
  const auto split = apportion(10, {0.5, 0.25, 0.25});
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), 0LL), 10);
  EXPECT_EQ(split[0], 5);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(TableTest, PrintsAlignedRows) {
  Table t({"a", "bbb"});
  t.add(1, 2.5);
  t.add("x", "y");
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("2.5000"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvOutputQuotesSpecialCells) {
  Table t({"name", "value"});
  t.add("plain", 1);
  t.add("with,comma", 2);
  t.add("with\"quote", 3);
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name,value\n"), std::string::npos);
  EXPECT_NE(s.find("plain,1\n"), std::string::npos);
  EXPECT_NE(s.find("\"with,comma\",2\n"), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\",3\n"), std::string::npos);
}

TEST(TableTest, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace pfar::util
