#include <gtest/gtest.h>

#include "polarfly/erq.hpp"

namespace pfar::polarfly {
namespace {

// Structural invariants of ER_q (Section 6.1, Table 1), parameterized over
// prime powers including even characteristic.
class ErqInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ErqInvariants, VertexAndEdgeCounts) {
  const int q = GetParam();
  const PolarFly pf(q);
  EXPECT_EQ(pf.n(), q * q + q + 1);
  EXPECT_EQ(pf.graph().num_vertices(), pf.n());
  // q+1 quadrics of degree q, q^2 non-quadrics of degree q+1
  // => |E| = q (q+1)^2 / 2 (proof of Corollary 7.1).
  EXPECT_EQ(pf.graph().num_edges(), q * (q + 1) * (q + 1) / 2);
}

TEST_P(ErqInvariants, Degrees) {
  const int q = GetParam();
  const PolarFly pf(q);
  for (int v = 0; v < pf.n(); ++v) {
    if (pf.is_quadric(v)) {
      EXPECT_EQ(pf.graph().degree(v), q) << "quadric " << v;
    } else {
      EXPECT_EQ(pf.graph().degree(v), q + 1) << "non-quadric " << v;
    }
  }
  EXPECT_EQ(pf.radix(), q + 1);
}

TEST_P(ErqInvariants, QuadricCount) {
  const int q = GetParam();
  const PolarFly pf(q);
  EXPECT_EQ(static_cast<int>(pf.quadrics().size()), q + 1);
  EXPECT_EQ(pf.count(VertexType::kQuadric), q + 1);
}

TEST_P(ErqInvariants, TableOneCountsOddQ) {
  const int q = GetParam();
  if (q % 2 == 0) GTEST_SKIP() << "Table 1 covers odd q";
  const PolarFly pf(q);
  EXPECT_EQ(pf.count(VertexType::kV1), q * (q + 1) / 2);
  EXPECT_EQ(pf.count(VertexType::kV2), q * (q - 1) / 2);
}

TEST_P(ErqInvariants, TableOneNeighborhoodsOddQ) {
  const int q = GetParam();
  if (q % 2 == 0) GTEST_SKIP() << "Table 1 covers odd q";
  const PolarFly pf(q);
  const auto& g = pf.graph();
  for (int v = 0; v < pf.n(); ++v) {
    int nw = 0, nv1 = 0, nv2 = 0;
    for (int u : g.neighbors(v)) {
      switch (pf.type(u)) {
        case VertexType::kQuadric: ++nw; break;
        case VertexType::kV1: ++nv1; break;
        case VertexType::kV2: ++nv2; break;
      }
    }
    switch (pf.type(v)) {
      case VertexType::kQuadric:
        EXPECT_EQ(nw, 0);
        EXPECT_EQ(nv1, q);
        EXPECT_EQ(nv2, 0);
        break;
      case VertexType::kV1:
        EXPECT_EQ(nw, 2);
        EXPECT_EQ(nv1, (q - 1) / 2);
        EXPECT_EQ(nv2, (q - 1) / 2);
        break;
      case VertexType::kV2:
        EXPECT_EQ(nw, 0);
        EXPECT_EQ(nv1, (q + 1) / 2);
        EXPECT_EQ(nv2, (q + 1) / 2);
        break;
    }
  }
}

TEST_P(ErqInvariants, DiameterTwo) {
  const int q = GetParam();
  const PolarFly pf(q);
  if (pf.n() <= 1500) {
    EXPECT_EQ(pf.graph().diameter(), 2);
  }
}

TEST_P(ErqInvariants, AtMostOneTwoPath) {
  // Theorem 6.1: at most one length-2 path between distinct vertices.
  const int q = GetParam();
  if (q > 13) GTEST_SKIP() << "O(N^2 d) check kept to moderate q";
  const PolarFly pf(q);
  const auto& g = pf.graph();
  for (int u = 0; u < pf.n(); ++u) {
    for (int v = u + 1; v < pf.n(); ++v) {
      const int paths = g.common_neighbor_count(u, v);
      if (g.has_edge(u, v)) {
        EXPECT_LE(paths, 1);
      } else {
        // Diameter 2 and unique paths: exactly one 2-path.
        EXPECT_EQ(paths, 1) << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST_P(ErqInvariants, AdjacencyIsOrthogonality) {
  // Cross-check the analytic neighbor enumeration against the definition.
  const int q = GetParam();
  if (q > 9) GTEST_SKIP() << "brute-force cross-check kept small";
  const PolarFly pf(q);
  const auto& g = pf.graph();
  for (int u = 0; u < pf.n(); ++u) {
    for (int v = u + 1; v < pf.n(); ++v) {
      const bool orthogonal = pf.dot(pf.point(u), pf.point(v)) == 0;
      EXPECT_EQ(g.has_edge(u, v), orthogonal) << "u=" << u << " v=" << v;
    }
  }
}

TEST_P(ErqInvariants, QuadricsAreSelfOrthogonal) {
  const int q = GetParam();
  const PolarFly pf(q);
  for (int v = 0; v < pf.n(); ++v) {
    const bool selforth = pf.dot(pf.point(v), pf.point(v)) == 0;
    EXPECT_EQ(pf.is_quadric(v), selforth);
  }
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, ErqInvariants,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           17, 19, 25, 27, 32));

TEST(PolarFlyTest, NormalizeRoundTrips) {
  const PolarFly pf(5);
  const auto& f = pf.field();
  for (int v = 0; v < pf.n(); ++v) {
    const Point& pt = pf.point(v);
    // Scale by every non-zero field element; normalize must recover pt.
    for (gf::Elem s = 1; s < 5; ++s) {
      const Point back =
          pf.normalize(f.mul(s, pt.x), f.mul(s, pt.y), f.mul(s, pt.z));
      EXPECT_EQ(back, pt);
    }
    EXPECT_EQ(pf.vertex_of(pt), v);
  }
  EXPECT_THROW(pf.normalize(0, 0, 0), std::invalid_argument);
}

TEST(PolarFlyTest, ConnectedForAllSmallQ) {
  for (int q : {2, 3, 4, 5, 7, 8, 9, 11, 13}) {
    EXPECT_TRUE(PolarFly(q).graph().is_connected()) << q;
  }
}

}  // namespace
}  // namespace pfar::polarfly
