// Differential validation of the flow-level engine tier
// (SimEngine::kFlow, docs/simulation_engine.md) against the cycle-accurate
// fast-forward engine on every cycle-feasible design point:
//
//  * structural results the flow tier computes without a fabric —
//    num_vcs, per-link / per-port VC maxima, per-link flit totals,
//    total_elements — must be *exactly* the cycle engine's;
//  * the fluid timing approximation — aggregate_bandwidth — must land
//    within tolerances pinned from a measured calibration sweep (worst
//    observed error 3.4% on drain-dominated m=2000 points, 0.4% on
//    m=20000 points; pinned at 5% / 1%);
//  * behaviors the tier cannot honor (fault scripts) are rejected loudly.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"

namespace {

using namespace pfar;

simnet::SimResult run_engine(int q, core::Solution sol, simnet::SimConfig cfg,
                             long long m, simnet::SimEngine engine) {
  cfg.engine = engine;
  const auto plan = core::AllreducePlanner(q).solution(sol).build();
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  return sim.run(plan.split(m));
}

void expect_flow_matches_cycle(int q, core::Solution sol, long long m,
                               double bw_tolerance) {
  const simnet::SimConfig cfg;
  const auto flow = run_engine(q, sol, cfg, m, simnet::SimEngine::kFlow);
  const auto cyc = run_engine(q, sol, cfg, m, simnet::SimEngine::kFastForward);
  const std::string label = core::to_string(sol);

  // Exact structural agreement: same packets cross the same tree links.
  EXPECT_EQ(flow.total_elements, cyc.total_elements) << "q=" << q << " " << label;
  EXPECT_EQ(flow.num_vcs, cyc.num_vcs) << "q=" << q << " " << label;
  EXPECT_EQ(flow.max_vcs_per_link, cyc.max_vcs_per_link)
      << "q=" << q << " " << label;
  EXPECT_EQ(flow.max_reductions_per_input_port,
            cyc.max_reductions_per_input_port)
      << "q=" << q << " " << label;
  EXPECT_EQ(flow.link_flits, cyc.link_flits) << "q=" << q << " " << label;
  EXPECT_EQ(flow.tree_completed, cyc.tree_completed)
      << "q=" << q << " " << label;
  EXPECT_TRUE(flow.values_correct) << "q=" << q << " " << label;

  // Approximate timing agreement, pinned from the calibration sweep.
  ASSERT_GT(cyc.aggregate_bandwidth, 0.0);
  const double rel_err =
      (flow.aggregate_bandwidth - cyc.aggregate_bandwidth) /
      cyc.aggregate_bandwidth;
  EXPECT_NEAR(rel_err, 0.0, bw_tolerance)
      << "q=" << q << " " << label << " m=" << m
      << " flow=" << flow.aggregate_bandwidth
      << " cycle=" << cyc.aggregate_bandwidth;
}

// The full cycle-feasible matrix of BENCH_sim_allreduce. Drain-dominated
// small-m points carry the looser bound; steady-state points the tight one.
TEST(FlowEngine, DifferentialMatrixSmallVectors) {
  for (int q : {3, 5, 7, 9, 11}) {
    for (const auto sol :
         {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint}) {
      expect_flow_matches_cycle(q, sol, 2000, 0.05);
    }
  }
}

TEST(FlowEngine, DifferentialMatrixLargeVectors) {
  for (int q : {3, 5, 7, 9, 11}) {
    for (const auto sol :
         {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint}) {
      expect_flow_matches_cycle(q, sol, 20000, 0.01);
    }
  }
}

// Collective modes besides Allreduce use a shorter drain (one phase) and a
// different delivery pattern; spot-check they calibrate too.
TEST(FlowEngine, ReduceAndBroadcastModes) {
  for (const auto mode :
       {simnet::Collective::kReduce, simnet::Collective::kBroadcast}) {
    simnet::SimConfig cfg;
    cfg.collective = mode;
    const auto flow =
        run_engine(5, core::Solution::kLowDepth, cfg, 20000,
                   simnet::SimEngine::kFlow);
    const auto cyc =
        run_engine(5, core::Solution::kLowDepth, cfg, 20000,
                   simnet::SimEngine::kFastForward);
    EXPECT_EQ(flow.link_flits, cyc.link_flits);
    EXPECT_NEAR(flow.aggregate_bandwidth, cyc.aggregate_bandwidth,
                0.02 * cyc.aggregate_bandwidth);
  }
}

// Packet framing scales the fluid element rate by payload/(payload+header);
// the flit accounting already carries the headers exactly.
TEST(FlowEngine, PacketFramingCalibrates) {
  simnet::SimConfig cfg;
  cfg.packet_payload = 4;
  cfg.packet_header_flits = 2;
  const auto flow = run_engine(7, core::Solution::kEdgeDisjoint, cfg, 20000,
                               simnet::SimEngine::kFlow);
  const auto cyc = run_engine(7, core::Solution::kEdgeDisjoint, cfg, 20000,
                              simnet::SimEngine::kFastForward);
  EXPECT_EQ(flow.link_flits, cyc.link_flits);
  EXPECT_NEAR(flow.aggregate_bandwidth, cyc.aggregate_bandwidth,
              0.02 * cyc.aggregate_bandwidth);
}

// The whole point of the tier: a radix far beyond the cycle engines'
// budget. q=13 keeps the test cheap while exercising the same path the
// q>=243 bench run takes; steady state must approach Algorithm 1.
TEST(FlowEngine, LargeRadixApproachesAlgorithmOne) {
  const simnet::SimConfig cfg;
  const auto plan = core::AllreducePlanner(13)
                        .solution(core::Solution::kEdgeDisjoint)
                        .build();
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings,
                                 [] {
                                   simnet::SimConfig c;
                                   c.engine = simnet::SimEngine::kFlow;
                                   return c;
                                 }());
  const auto res = sim.run(plan.split(2'000'000));
  EXPECT_TRUE(res.values_correct);
  EXPECT_GT(res.aggregate_bandwidth, 0.97 * plan.aggregate_bandwidth());
  EXPECT_LE(res.aggregate_bandwidth, plan.aggregate_bandwidth() + 1e-9);
}

// Fault scripts are cycle-level phenomena; the tier must refuse rather
// than silently ignore them.
TEST(FlowEngine, RejectsFaultScripts) {
  const auto plan = core::AllreducePlanner(3).build();
  const auto link = plan.topology().edge(0);
  auto embeddings = collectives::to_embeddings(plan.trees());

  simnet::SimConfig cfg;
  cfg.engine = simnet::SimEngine::kFlow;
  cfg.faults.events.push_back(
      {100, link.u, link.v, simnet::FaultType::kLinkDown});
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  EXPECT_THROW(sim.run(plan.split(600)), std::invalid_argument);

  simnet::SimConfig flaky;
  flaky.engine = simnet::SimEngine::kFlow;
  flaky.faults.flaky_links.push_back({link.u, link.v});
  flaky.faults.flaky_drop_permille = 10;
  simnet::AllreduceSimulator flaky_sim(plan.topology(), embeddings, flaky);
  EXPECT_THROW(flaky_sim.run(plan.split(600)), std::invalid_argument);
}

// The rejection names exactly the offending SimConfig fields — and only
// the ones actually set — so a caller staring at a large config knows what
// to clear.
TEST(FlowEngine, RejectionNamesOffendingFaultFields) {
  const auto plan = core::AllreducePlanner(3).build();
  const auto link = plan.topology().edge(0);
  auto embeddings = collectives::to_embeddings(plan.trees());
  const auto message_of = [&](const simnet::SimConfig& cfg) {
    simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
    try {
      sim.run(plan.split(600));
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };

  simnet::SimConfig events_only;
  events_only.engine = simnet::SimEngine::kFlow;
  events_only.faults.events.push_back(
      {100, link.u, link.v, simnet::FaultType::kLinkDown});
  events_only.faults.events.push_back(
      {200, link.u, link.v, simnet::FaultType::kLinkUp});
  const std::string ev_msg = message_of(events_only);
  EXPECT_NE(ev_msg.find("faults.events (2 scheduled link events)"),
            std::string::npos)
      << ev_msg;
  EXPECT_EQ(ev_msg.find("faults.flaky_links"), std::string::npos) << ev_msg;

  simnet::SimConfig flaky_only;
  flaky_only.engine = simnet::SimEngine::kFlow;
  flaky_only.faults.flaky_links.push_back({link.u, link.v});
  flaky_only.faults.flaky_drop_permille = 25;
  const std::string fl_msg = message_of(flaky_only);
  EXPECT_NE(
      fl_msg.find("faults.flaky_links (1 link, flaky_drop_permille=25)"),
      std::string::npos)
      << fl_msg;
  EXPECT_EQ(fl_msg.find("faults.events"), std::string::npos) << fl_msg;

  simnet::SimConfig both = events_only;
  both.faults.flaky_links = flaky_only.faults.flaky_links;
  both.faults.flaky_drop_permille = 25;
  const std::string both_msg = message_of(both);
  EXPECT_NE(both_msg.find("faults.events"), std::string::npos) << both_msg;
  EXPECT_NE(both_msg.find("faults.flaky_links"), std::string::npos)
      << both_msg;
  EXPECT_NE(both_msg.find("reference or horizon engine"), std::string::npos)
      << both_msg;
}

// Engine names round-trip through the CLI parser; unknown names fail loud.
TEST(FlowEngine, EngineNameParsing) {
  EXPECT_EQ(simnet::engine_from_string("flow"), simnet::SimEngine::kFlow);
  EXPECT_EQ(simnet::engine_from_string("horizon"),
            simnet::SimEngine::kFastForward);
  EXPECT_EQ(simnet::engine_from_string("fastforward"),
            simnet::SimEngine::kFastForward);
  EXPECT_EQ(simnet::engine_from_string("reference"),
            simnet::SimEngine::kReference);
  EXPECT_THROW(simnet::engine_from_string("warp"), std::invalid_argument);
  EXPECT_STREQ(simnet::to_string(simnet::SimEngine::kFlow), "flow");
}

}  // namespace
