// pfar_lint fixture: the same uncontracted function, suppressed.

namespace fixture {

// pfar-lint: allow(contract-coverage) total function: every (value, limit) pair is valid
int clamp_positive(int value, int limit) {
  if (value < 0) {
    return 0;
  }
  if (value > limit) {
    return limit;
  }
  return value;
}

}  // namespace fixture
