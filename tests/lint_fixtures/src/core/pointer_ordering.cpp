// pfar_lint fixture: no-pointer-ordering must flag ordered containers keyed
// by raw pointer value.
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id;
};

int count_nodes(Node* a, Node* b) {
  PFAR_REQUIRE(a != b);
  std::set<Node*> seen{a, b};
  std::map<const Node*, int> rank{{a, 1}};
  return static_cast<int>(seen.size() + rank.size());
}

}  // namespace fixture
