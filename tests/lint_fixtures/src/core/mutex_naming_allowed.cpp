// pfar_lint fixture: the fixed shape — util::Mutex with PFAR_GUARDED_BY —
// plus a suppressed std::mutex for the one legitimate interop site.
#include <mutex>

namespace fixture {

struct GuardedState {
  util::Mutex mu;
  int counter PFAR_GUARDED_BY(mu) = 0;
};

struct InteropState {
  // pfar-lint: allow(mutex-naming) fixture pretends a third-party API hands us this lock
  std::mutex* borrowed = nullptr;
};

}  // namespace fixture
