// pfar_lint fixture: the same unordered walk, suppressed with a reason.
#include <unordered_map>

namespace fixture {

int sum_values(const std::unordered_map<int, int>& histogram) {
  PFAR_REQUIRE(histogram.size() < 1000);
  int sum = 0;
  // pfar-lint: allow(no-unordered-iteration) commutative sum: order cannot affect the result
  for (const auto& [key, value] : histogram) {
    sum += value + key;
  }
  return sum;
}

}  // namespace fixture
