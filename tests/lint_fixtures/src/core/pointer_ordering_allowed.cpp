// pfar_lint fixture: the same pointer-keyed containers, suppressed.
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id;
};

int count_nodes(Node* a, Node* b) {
  PFAR_REQUIRE(a != b);
  // pfar-lint: allow(no-pointer-ordering) only size() is observed, never the order
  std::set<Node*> seen{a, b};
  // pfar-lint: allow(no-pointer-ordering) only size() is observed, never the order
  std::map<const Node*, int> rank{{a, 1}};
  return static_cast<int>(seen.size() + rank.size());
}

}  // namespace fixture
