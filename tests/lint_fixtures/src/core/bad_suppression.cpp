// pfar_lint fixture: malformed allow-comments are findings themselves
// (pseudo-rule "suppression"): unknown rule id, and a missing reason.

namespace fixture {

int answer() {
  PFAR_REQUIRE(true);
  // pfar-lint: allow(not-a-real-rule) the rule id does not exist
  int a = 41;
  // pfar-lint: allow(no-wallclock-in-sim)
  int b = 1;
  return a + b;
}

}  // namespace fixture
