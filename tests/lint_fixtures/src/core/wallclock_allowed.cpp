// pfar_lint fixture: the same wall-clock sites, suppressed with reasons.
#include <chrono>
#include <cstdlib>

namespace fixture {

long long stamp() {
  PFAR_REQUIRE(true);
  // pfar-lint: allow(no-wallclock-in-sim) fixture pretends to be a sanctioned timing site
  const auto t0 = std::chrono::steady_clock::now();
  // pfar-lint: allow(no-wallclock-in-sim) fixture pretends to be a sanctioned entropy site
  const int noise = std::rand();
  return t0.time_since_epoch().count() + noise;
}

}  // namespace fixture
