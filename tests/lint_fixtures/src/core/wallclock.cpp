// pfar_lint fixture: no-wallclock-in-sim must flag both the banned
// identifier form and the direct-call form.
#include <chrono>
#include <cstdlib>

namespace fixture {

long long stamp() {
  PFAR_REQUIRE(true);
  const auto t0 = std::chrono::steady_clock::now();
  const int noise = std::rand();
  return t0.time_since_epoch().count() + noise;
}

}  // namespace fixture
