// pfar_lint fixture: mutex-naming must flag a bare std::mutex, a
// std::condition_variable, and a util::Mutex member in a file that never
// uses PFAR_GUARDED_BY.
#include <condition_variable>
#include <mutex>

namespace fixture {

struct BareState {
  std::mutex mu;
  std::condition_variable cv;
  int counter = 0;
};

struct UnguardedState {
  util::Mutex mu;
  int counter = 0;
};

}  // namespace fixture
