// pfar_lint fixture: contract-coverage must flag a namespace-scope function
// with a non-trivial body and no PFAR_REQUIRE / PFAR_ENSURE / PFAR_INVARIANT.

namespace fixture {

int clamp_positive(int value, int limit) {
  if (value < 0) {
    return 0;
  }
  if (value > limit) {
    return limit;
  }
  return value;
}

}  // namespace fixture
