// pfar_lint fixture: no-unordered-iteration must flag both the range-for
// over a declared unordered container and the explicit iterator walk.
#include <unordered_map>

namespace fixture {

int sum_values(const std::unordered_map<int, int>& histogram) {
  PFAR_REQUIRE(histogram.size() < 1000);
  int sum = 0;
  for (const auto& [key, value] : histogram) {
    sum += value + key;
  }
  for (auto it = histogram.begin(); it != histogram.end(); ++it) {
    sum -= it->first;
  }
  return sum;
}

}  // namespace fixture
