// Even-characteristic structure of ER_q. The paper's layout/low-depth
// solution covers odd q only, but its Hamiltonian solution and PolarFly
// itself exist for even q; these tests pin the even-q facts the library
// relies on (and the reason the odd-q layout does not carry over).

#include <gtest/gtest.h>

#include "polarfly/erq.hpp"
#include "model/congestion_model.hpp"
#include "polarfly/layout.hpp"
#include "trees/low_depth.hpp"

namespace pfar::polarfly {
namespace {

class EvenQ : public ::testing::TestWithParam<int> {};

TEST_P(EvenQ, QuadricsAreCollinear) {
  // In characteristic 2, x^2+y^2+z^2 = (x+y+z)^2, so the quadrics are
  // exactly the q+1 points of the line x+y+z = 0 — a completely different
  // shape from the odd-q conic, which is why Algorithm 2's properties
  // fail for even q.
  const int q = GetParam();
  const PolarFly pf(q);
  const auto& f = pf.field();
  for (int v = 0; v < pf.n(); ++v) {
    const Point& pt = pf.point(v);
    const gf::Elem s = f.add(f.add(pt.x, pt.y), pt.z);
    EXPECT_EQ(pf.is_quadric(v), s == 0) << "vertex " << v;
  }
}

TEST_P(EvenQ, NucleusSeesAllQuadricsOthersSeeOne) {
  // Even q: every non-quadric's polar line meets the quadric line in one
  // point — except the *nucleus* [1,1,1], whose polar line IS the quadric
  // line, so it neighbors all q+1 quadrics. Hence V2 is empty (unlike odd
  // q where |V2| = q(q-1)/2), which is why the odd-q layout of Algorithm 2
  // does not carry over.
  const int q = GetParam();
  const PolarFly pf(q);
  const int nucleus = pf.vertex_of(Point{1, 1, 1});
  EXPECT_FALSE(pf.is_quadric(nucleus));
  for (int v = 0; v < pf.n(); ++v) {
    if (pf.is_quadric(v)) continue;
    int quadric_neighbors = 0;
    for (int u : pf.graph().neighbors(v)) {
      if (pf.is_quadric(u)) ++quadric_neighbors;
    }
    EXPECT_EQ(quadric_neighbors, v == nucleus ? q + 1 : 1) << "vertex " << v;
  }
  EXPECT_EQ(pf.count(VertexType::kV2), 0);
  EXPECT_EQ(pf.count(VertexType::kV1), q * q);
}

TEST_P(EvenQ, QuadricsNotAdjacentToEachOther) {
  const int q = GetParam();
  const PolarFly pf(q);
  for (int w1 : pf.quadrics()) {
    for (int w2 : pf.quadrics()) {
      if (w1 < w2) {
        EXPECT_FALSE(pf.graph().has_edge(w1, w2));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EvenPrimePowers, EvenQ,
                         ::testing::Values(2, 4, 8, 16, 32));

// The reconstructed even-q low-depth solution (the paper mentions one
// exists but does not publish it): q-1 trees rooted at the starter
// quadric's non-nucleus neighbors, with the same depth/congestion/flow
// guarantees as Algorithm 3 measured empirically.
class EvenLowDepth : public ::testing::TestWithParam<int> {};

TEST_P(EvenLowDepth, SpanningDepthCongestionAndFlows) {
  const int q = GetParam();
  const PolarFly pf(q);
  const auto ts = trees::build_low_depth_trees_even(pf);
  ASSERT_EQ(static_cast<int>(ts.size()), q - 1);
  for (const auto& t : ts) {
    EXPECT_TRUE(t.is_spanning_tree_of(pf.graph()));
    EXPECT_LE(t.depth(), 3);
  }
  EXPECT_LE(trees::max_congestion(pf.graph(), ts), 2);
  EXPECT_TRUE(trees::opposite_reduction_flows(pf.graph(), ts));
}

TEST_P(EvenLowDepth, BandwidthAtLeastHalfOfTreeCount) {
  const int q = GetParam();
  const PolarFly pf(q);
  const auto ts = trees::build_low_depth_trees_even(pf);
  const auto bw = model::compute_tree_bandwidths(pf.graph(), ts, 1.0);
  EXPECT_GE(bw.aggregate, (q - 1) / 2.0 - 1e-9);
  EXPECT_LE(bw.aggregate, (q + 1) / 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(EvenPrimePowers, EvenLowDepth,
                         ::testing::Values(4, 8, 16, 32));

TEST(EvenLowDepthTest, RejectsOddQ) {
  const PolarFly pf(5);
  EXPECT_THROW(trees::build_low_depth_trees_even(pf), std::invalid_argument);
}

TEST(EvenLowDepthTest, AllStarterChoicesWork) {
  const PolarFly pf(8);
  for (int s = 0; s <= 8; s += 4) {
    const auto ts = trees::build_low_depth_trees_even(pf, s);
    EXPECT_EQ(ts.size(), 7u);
    EXPECT_LE(trees::max_congestion(pf.graph(), ts), 2);
  }
}

}  // namespace
}  // namespace pfar::polarfly
