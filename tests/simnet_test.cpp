#include <gtest/gtest.h>

#include "simnet/allreduce_sim.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::simnet {
namespace {

graph::Graph line_graph(int n) {
  graph::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  return g;
}

TEST(SimulatorTest, SingleTreeTwoNodesCorrectness) {
  graph::Graph g = line_graph(2);
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0}}}, SimConfig{});
  const auto r = sim.run({10});
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.total_elements, 10);
  EXPECT_GT(r.cycles, 0);
}

TEST(SimulatorTest, ChainPipelineReachesLinkRate) {
  // Deep chain: throughput must still approach 1 element/cycle for large m
  // thanks to pipelining (the paper's in-network streaming argument).
  graph::Graph g = line_graph(6);
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 1, 2, 3, 4}}},
                         SimConfig{});
  const long long m = 5000;
  const auto r = sim.run({m});
  EXPECT_TRUE(r.values_correct);
  // One tree, link bandwidth 1: aggregate bandwidth -> 1.
  EXPECT_GT(r.aggregate_bandwidth, 0.9);
  EXPECT_LE(r.aggregate_bandwidth, 1.0);
}

TEST(SimulatorTest, StarTreeCorrectness) {
  graph::Graph g(5);
  for (int i = 1; i < 5; ++i) g.add_edge(0, i);
  g.finalize();
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 0, 0, 0}}},
                         SimConfig{});
  const auto r = sim.run({100});
  EXPECT_TRUE(r.values_correct);
  EXPECT_GT(r.aggregate_bandwidth, 0.8);
}

TEST(SimulatorTest, TwoDisjointTreesDoubleBandwidth) {
  // Triangle: tree A = {01, 12} rooted at 0, tree B = {02, ...}. Two
  // edge-disjoint spanning trees are impossible in C3 (3 edges, need 4),
  // so use K4.
  graph::Graph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j);
  }
  g.finalize();
  // Disjoint: A = {01, 12, 23}, B = {02, 03, 13}.
  const TreeEmbedding a{0, {-1, 0, 1, 2}};
  const TreeEmbedding b{0, {-1, 3, 0, 0}};
  AllreduceSimulator sim(g, {a, b}, SimConfig{});
  const long long m = 4000;
  const auto r = sim.run({m / 2, m / 2});
  EXPECT_TRUE(r.values_correct);
  // Edge-disjoint: both trees stream at full link rate concurrently.
  EXPECT_GT(r.aggregate_bandwidth, 1.8);
  EXPECT_LE(r.aggregate_bandwidth, 2.0);
  // A tree edge puts its reduce VC on one link direction and its bcast VC
  // on the opposite one; with edge-disjoint trees no directed link carries
  // more than one VC.
  EXPECT_EQ(r.max_vcs_per_link, 1);
}

TEST(SimulatorTest, CongestedTreesShareLinkBandwidth) {
  // Two trees over the same two edges of a line: each gets half rate.
  graph::Graph g = line_graph(3);
  const TreeEmbedding a{0, {-1, 0, 1}};
  const TreeEmbedding b{2, {1, 2, -1}};
  AllreduceSimulator sim(g, {a, b}, SimConfig{});
  const long long m = 4000;
  const auto r = sim.run({m / 2, m / 2});
  EXPECT_TRUE(r.values_correct);
  EXPECT_GT(r.aggregate_bandwidth, 0.9);
  EXPECT_LT(r.aggregate_bandwidth, 1.1);  // shared: aggregate caps at ~1
}

TEST(SimulatorTest, HigherLinkBandwidthScales) {
  graph::Graph g = line_graph(3);
  SimConfig cfg;
  cfg.link_bandwidth = 2;
  cfg.vc_credits = 32;
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 1}}}, cfg);
  const auto r = sim.run({6000});
  EXPECT_TRUE(r.values_correct);
  EXPECT_GT(r.aggregate_bandwidth, 1.8);
}

TEST(SimulatorTest, FlowControlNeverOverflowsBuffers) {
  graph::Graph g = line_graph(5);
  SimConfig cfg;
  cfg.vc_credits = 3;  // tight buffers
  cfg.link_latency = 1;
  AllreduceSimulator sim(g, {TreeEmbedding{2, {1, 2, -1, 2, 3}}}, cfg);
  const auto r = sim.run({500});
  EXPECT_TRUE(r.values_correct);
  EXPECT_LE(r.max_vc_occupancy, cfg.vc_credits);
}

TEST(SimulatorTest, TightBuffersThrottleButComplete) {
  // Credits below the bandwidth-delay product: still correct, just slower.
  graph::Graph g = line_graph(4);
  SimConfig cfg;
  cfg.vc_credits = 2;
  cfg.link_latency = 8;
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 1, 2}}}, cfg);
  const auto r = sim.run({300});
  EXPECT_TRUE(r.values_correct);
  EXPECT_LT(r.aggregate_bandwidth, 0.5);  // 2 credits / 16-cycle round trip
}

TEST(SimulatorTest, ZeroElementsCompletesInstantly) {
  graph::Graph g = line_graph(2);
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0}}}, SimConfig{});
  const auto r = sim.run({0});
  EXPECT_EQ(r.cycles, 0);
  EXPECT_EQ(r.total_elements, 0);
}

TEST(SimulatorTest, UnevenSplitAcrossTrees) {
  graph::Graph g = triangle();
  const TreeEmbedding a{0, {-1, 0, 0}};
  const TreeEmbedding b{1, {1, -1, 1}};
  AllreduceSimulator sim(g, {a, b}, SimConfig{});
  const auto r = sim.run({100, 900});
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.total_elements, 1000);
  // Tree 0 finishes well before tree 1.
  EXPECT_LT(r.tree_finish_cycle[0], r.tree_finish_cycle[1]);
}

TEST(SimulatorTest, RejectsBadInputs) {
  graph::Graph g = line_graph(3);
  // Tree edge (0,2) is not a physical link.
  EXPECT_THROW(AllreduceSimulator(g, {TreeEmbedding{0, {-1, 0, 0}}},
                                  SimConfig{}),
               std::invalid_argument);
  // Root with a parent.
  EXPECT_THROW(AllreduceSimulator(g, {TreeEmbedding{0, {1, 0, 1}}},
                                  SimConfig{}),
               std::invalid_argument);
  SimConfig bad;
  bad.vc_credits = 0;
  EXPECT_THROW(AllreduceSimulator(g, {TreeEmbedding{0, {-1, 0, 1}}}, bad),
               std::invalid_argument);
  AllreduceSimulator ok(g, {TreeEmbedding{0, {-1, 0, 1}}}, SimConfig{});
  EXPECT_THROW(ok.run({1, 2}), std::invalid_argument);  // size mismatch
  EXPECT_THROW(ok.run({-5}), std::invalid_argument);
}

TEST(SimulatorTest, VcCountMatchesTreeLinkUsage) {
  // Each tree edge spawns exactly two VCs (reduce + bcast directions).
  graph::Graph g = line_graph(4);
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 1, 2}}}, SimConfig{});
  const auto r = sim.run({10});
  EXPECT_EQ(r.num_vcs, 2 * 3);
}

TEST(SimulatorTest, LatencyAffectsSmallMessagesOnly) {
  graph::Graph g = line_graph(4);
  SimConfig fast;
  fast.link_latency = 1;
  SimConfig slow;
  slow.link_latency = 20;
  slow.vc_credits = 64;
  AllreduceSimulator sim_fast(g, {TreeEmbedding{0, {-1, 0, 1, 2}}}, fast);
  AllreduceSimulator sim_slow(g, {TreeEmbedding{0, {-1, 0, 1, 2}}}, slow);
  const auto small_fast = sim_fast.run({4});
  const auto small_slow = sim_slow.run({4});
  EXPECT_LT(small_fast.cycles * 3, small_slow.cycles);  // latency dominates
  const auto big_fast = sim_fast.run({5000});
  const auto big_slow = sim_slow.run({5000});
  // Bandwidth-dominated: within ~5%.
  EXPECT_NEAR(static_cast<double>(big_slow.cycles) /
                  static_cast<double>(big_fast.cycles),
              1.0,
              0.05);
}

}  // namespace
}  // namespace pfar::simnet
