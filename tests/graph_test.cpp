#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "util/rng.hpp"

namespace pfar::graph {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

Graph cycle_graph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  g.finalize();
  return g;
}

Graph complete_graph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  return g;
}

TEST(GraphTest, BasicAccessors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.finalize();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(3, 0));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 0);
}

TEST(GraphTest, RejectsSelfLoopAndBadVertices) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
}

TEST(GraphTest, RejectsDuplicateEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(GraphTest, EdgeIdsAreDenseAndStable) {
  Graph g = complete_graph(5);
  std::vector<char> seen(static_cast<std::size_t>(g.num_edges()), 0);
  for (const auto& e : g.edges()) {
    const int id = g.edge_id(e.u, e.v);
    ASSERT_GE(id, 0);
    ASSERT_LT(id, g.num_edges());
    EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
    seen[static_cast<std::size_t>(id)] = 1;
    EXPECT_EQ(g.edge(id), e);
    EXPECT_EQ(g.edge_id(e.v, e.u), id);  // symmetric lookup
  }
  EXPECT_EQ(g.edge_id(0, 0), -1);
}

TEST(GraphTest, BfsDistancesOnPath) {
  Graph g = path_graph(5);
  const auto dist = g.bfs_distances(0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dist[static_cast<std::size_t>(i)], i);
  }
}

TEST(GraphTest, DisconnectedGraph) {
  Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.diameter(), -1);
  EXPECT_EQ(g.bfs_distances(0)[3], -1);
}

TEST(GraphTest, Diameter) {
  EXPECT_EQ(path_graph(6).diameter(), 5);
  EXPECT_EQ(cycle_graph(6).diameter(), 3);
  EXPECT_EQ(complete_graph(7).diameter(), 1);
}

TEST(GraphTest, CommonNeighborCount) {
  Graph g = complete_graph(5);
  EXPECT_EQ(g.common_neighbor_count(0, 1), 3);
  Graph p = path_graph(4);
  EXPECT_EQ(p.common_neighbor_count(0, 2), 1);
  EXPECT_EQ(p.common_neighbor_count(0, 3), 0);
}

TEST(UnionFindTest, Basics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.num_components(), 3);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
}

int matching_size(const std::vector<int>& mate) {
  int c = 0;
  for (std::size_t v = 0; v < mate.size(); ++v) {
    if (mate[v] >= 0) {
      EXPECT_EQ(mate[static_cast<std::size_t>(mate[v])], static_cast<int>(v));  // symmetric
      ++c;
    }
  }
  return c / 2;
}

TEST(MatchingTest, PathGraphs) {
  EXPECT_EQ(matching_size(maximum_matching(path_graph(2))), 1);
  EXPECT_EQ(matching_size(maximum_matching(path_graph(5))), 2);
  EXPECT_EQ(matching_size(maximum_matching(path_graph(6))), 3);
}

TEST(MatchingTest, OddCycleNeedsBlossom) {
  // C5: maximum matching 2; greedy/bipartite reasoning fails on odd cycles.
  EXPECT_EQ(matching_size(maximum_matching(cycle_graph(5))), 2);
  EXPECT_EQ(matching_size(maximum_matching(cycle_graph(9))), 4);
}

TEST(MatchingTest, CompleteGraphs) {
  EXPECT_EQ(matching_size(maximum_matching(complete_graph(6))), 3);
  EXPECT_EQ(matching_size(maximum_matching(complete_graph(7))), 3);
}

TEST(MatchingTest, PetersenGraph) {
  // The Petersen graph has a perfect matching (size 5) and plenty of odd
  // cycles, a classic blossom stress case.
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);          // outer C5
    g.add_edge(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    g.add_edge(i, 5 + i);                // spokes
  }
  g.finalize();
  EXPECT_EQ(matching_size(maximum_matching(g)), 5);
}

TEST(MatchingTest, MatchedEdgesExist) {
  Graph g = cycle_graph(7);
  const auto mate = maximum_matching(g);
  for (int v = 0; v < 7; ++v) {
    if (mate[static_cast<std::size_t>(v)] >= 0) {
      EXPECT_TRUE(g.has_edge(v, mate[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(MisTest, IndependentAndMaximal) {
  Graph g = cycle_graph(9);
  util::Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    const auto set = random_maximal_independent_set(g, rng);
    // Independence.
    for (std::size_t i = 0; i < set.size(); ++i) {
      for (std::size_t j = i + 1; j < set.size(); ++j) {
        EXPECT_FALSE(g.has_edge(set[i], set[j]));
      }
    }
    // Maximality: every vertex is in the set or adjacent to it.
    std::vector<char> covered(static_cast<std::size_t>(g.num_vertices()), 0);
    for (int v : set) {
      covered[static_cast<std::size_t>(v)] = 1;
      for (int w : g.neighbors(v)) covered[static_cast<std::size_t>(w)] = 1;
    }
    EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                            [](char c) { return c == 1; }));
  }
}

TEST(MisTest, BestOfAttemptsFindsMaximumOnC9) {
  // C9's maximum independent set is 4; a single greedy pass can get 3, but
  // 30 attempts reliably find 4 (the paper's Section 7.3 methodology).
  Graph g = cycle_graph(9);
  util::Rng rng(11);
  EXPECT_EQ(best_random_independent_set(g, rng, 30).size(), 4u);
}

}  // namespace
}  // namespace pfar::graph
