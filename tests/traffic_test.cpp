#include <gtest/gtest.h>

#include "polarfly/erq.hpp"
#include "simnet/traffic_sim.hpp"
#include "topo/topologies.hpp"
#include "util/contracts.hpp"

namespace pfar::simnet {
namespace {

TrafficConfig light_load() {
  TrafficConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 500;
  cfg.measure_packets = 3000;
  return cfg;
}

TEST(TrafficSimTest, LowLoadLatencyNearZeroLoadBound) {
  // At very light load, average latency ~ hops * (link latency +
  // serialization) plus small queueing.
  const polarfly::PolarFly pf(5);
  const TrafficSimulator sim(pf.graph());
  auto cfg = light_load();
  const auto r = sim.run(cfg);
  ASSERT_FALSE(r.saturated);
  EXPECT_GT(r.delivered, 0);
  // Diameter 2: average hops between 1 and 2.
  EXPECT_GT(r.avg_hops, 1.0);
  EXPECT_LT(r.avg_hops, 2.0);
  const double zero_load =
      r.avg_hops * (cfg.link_latency + cfg.packet_flits);
  EXPECT_GE(r.avg_latency, zero_load);
  EXPECT_LT(r.avg_latency, 3.0 * zero_load);
}

TEST(TrafficSimTest, ThroughputMatchesOfferedLoadBelowSaturation) {
  const polarfly::PolarFly pf(5);
  const TrafficSimulator sim(pf.graph());
  auto cfg = light_load();
  cfg.injection_rate = 0.05;
  cfg.measure_packets = 5000;
  const auto r = sim.run(cfg);
  ASSERT_FALSE(r.saturated);
  EXPECT_NEAR(r.throughput, 0.05, 0.01);
}

TEST(TrafficSimTest, LatencyIncreasesWithLoad) {
  const polarfly::PolarFly pf(5);
  const TrafficSimulator sim(pf.graph());
  auto low = light_load();
  auto high = light_load();
  high.injection_rate = 0.25;
  const auto a = sim.run(low);
  const auto b = sim.run(high);
  ASSERT_FALSE(a.saturated);
  ASSERT_FALSE(b.saturated);
  EXPECT_GT(b.avg_latency, a.avg_latency);
  EXPECT_GE(b.p99_latency, a.p99_latency);
}

TEST(TrafficSimTest, SaturationDetected) {
  // Far beyond capacity the run cannot deliver the quota in max_cycles.
  const polarfly::PolarFly pf(3);
  const TrafficSimulator sim(pf.graph());
  TrafficConfig cfg;
  cfg.injection_rate = 1.0;
  cfg.measure_packets = 1'000'000;
  cfg.max_cycles = 20'000;
  const auto r = sim.run(cfg);
  EXPECT_TRUE(r.saturated);
}

TEST(TrafficSimTest, HotspotSaturatesEarlierThanUniform) {
  const polarfly::PolarFly pf(5);
  const TrafficSimulator sim(pf.graph());
  auto uniform = light_load();
  uniform.injection_rate = 0.15;
  uniform.measure_packets = 4000;
  auto hotspot = uniform;
  hotspot.pattern = TrafficPattern::kHotspot;
  hotspot.hotspot_fraction = 0.5;
  hotspot.max_cycles = 300'000;
  const auto u = sim.run(uniform);
  const auto h = sim.run(hotspot);
  ASSERT_FALSE(u.saturated);
  // Node 0's ejection feeds from q+1 = 6 links; half of 31 nodes' 0.15
  // load converging on it exceeds its share: latency blows up or run
  // saturates outright.
  EXPECT_TRUE(h.saturated || h.avg_latency > 3.0 * u.avg_latency);
}

TEST(TrafficSimTest, PermutationPatternDelivers) {
  const auto g = topo::torus({4, 4});
  const TrafficSimulator sim(g);
  auto cfg = light_load();
  cfg.pattern = TrafficPattern::kPermutation;
  const auto r = sim.run(cfg);
  ASSERT_FALSE(r.saturated);
  EXPECT_GT(r.delivered, 0);
}

TEST(TrafficSimTest, LowDiameterBeatsTorusOnLatency) {
  // Section 1.3's positioning: at similar size and light load, PolarFly's
  // diameter-2 paths deliver lower latency than a 2D torus of equal node
  // count (average hops ~1.9 vs ~3).
  const polarfly::PolarFly pf(7);  // 57 nodes
  const auto torus_graph = topo::torus({8, 7});  // 56 nodes
  const TrafficSimulator pf_sim(pf.graph());
  const TrafficSimulator torus_sim(torus_graph);
  auto cfg = light_load();
  const auto a = pf_sim.run(cfg);
  const auto b = torus_sim.run(cfg);
  ASSERT_FALSE(a.saturated);
  ASSERT_FALSE(b.saturated);
  EXPECT_LT(a.avg_hops, b.avg_hops);
  EXPECT_LT(a.avg_latency, b.avg_latency);
}

TEST(TrafficSimTest, ValiantDoublesPathLengthUnderUniform) {
  const polarfly::PolarFly pf(5);
  const TrafficSimulator sim(pf.graph());
  auto minimal = light_load();
  auto valiant = light_load();
  valiant.routing = Routing::kValiant;
  const auto a = sim.run(minimal);
  const auto b = sim.run(valiant);
  ASSERT_FALSE(a.saturated);
  ASSERT_FALSE(b.saturated);
  // Valiant pays ~2x hops (two minimal phases) at light load.
  EXPECT_GT(b.avg_hops, 1.6 * a.avg_hops);
  EXPECT_LT(b.avg_hops, 2.4 * a.avg_hops);
  EXPECT_GT(b.avg_latency, a.avg_latency);
}

TEST(TrafficSimTest, ValiantSpreadsHotspotTransitLoad) {
  // Valiant cannot fix a true hotspot (the ejection port is the
  // bottleneck), but it must still deliver correctly with the indirect
  // phase active under a skewed pattern.
  const polarfly::PolarFly pf(5);
  const TrafficSimulator sim(pf.graph());
  auto cfg = light_load();
  cfg.pattern = TrafficPattern::kPermutation;
  cfg.routing = Routing::kValiant;
  cfg.injection_rate = 0.1;
  const auto r = sim.run(cfg);
  ASSERT_FALSE(r.saturated);
  EXPECT_GT(r.delivered, 0);
}

TEST(TrafficSimTest, RejectsBadConfigAndGraphs) {
  graph::Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.finalize();
  EXPECT_THROW(TrafficSimulator{disconnected}, std::invalid_argument);

  const polarfly::PolarFly pf(3);
  const TrafficSimulator sim(pf.graph());
  TrafficConfig bad;
  bad.injection_rate = 1.5;
  EXPECT_THROW(sim.run(bad), std::invalid_argument);
  bad = TrafficConfig{};
  bad.packet_flits = 0;
  EXPECT_THROW(sim.run(bad), std::invalid_argument);
}

TEST(TrafficSimTest, DeterministicForFixedSeed) {
  const polarfly::PolarFly pf(3);
  const TrafficSimulator sim(pf.graph());
  auto cfg = light_load();
  cfg.seed = 99;
  const auto a = sim.run(cfg);
  const auto b = sim.run(cfg);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
}

// Regression: a hotspot node id outside [0, N) used to index out of
// bounds; the contract layer now rejects it before the run starts.
TEST(TrafficSimTest, HotspotNodeOutOfRangeIsRejected) {
  const polarfly::PolarFly pf(3);
  const TrafficSimulator sim(pf.graph());
  util::contracts::ScopedThrowHandler guard;
  for (const int node : {-1, pf.graph().num_vertices(),
                         pf.graph().num_vertices() + 5}) {
    auto cfg = light_load();
    cfg.pattern = TrafficPattern::kHotspot;
    cfg.hotspot_node = node;
    EXPECT_THROW(static_cast<void>(sim.run(cfg)),
                 util::contracts::ContractViolation)
        << "hotspot_node=" << node;
  }
  // In-range ids still run.
  auto cfg = light_load();
  cfg.pattern = TrafficPattern::kHotspot;
  cfg.hotspot_node = 0;
  cfg.hotspot_fraction = 0.3;
  EXPECT_GT(sim.run(cfg).delivered, 0);
}

}  // namespace
}  // namespace pfar::simnet
