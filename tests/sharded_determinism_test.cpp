// Determinism of intra-run parallel sharding (SimConfig::shard_threads,
// docs/simulation_engine.md): the fast-forward engine partitions the tree
// set into link-disjoint groups and simulates them on a util::ThreadPool,
// and the merged SimResult must be bit-identical to the serial run for
// every thread count — healthy and under fault scripts alike. The suite
// name contains "Determinism" on purpose: CI's TSan job runs it to prove
// the sharded path is race-free.

#include <gtest/gtest.h>

#include <vector>

#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"

namespace {

using namespace pfar;

simnet::SimResult run_sharded(int q, core::Solution sol, simnet::SimConfig cfg,
                              long long m, int shard_threads) {
  cfg.engine = simnet::SimEngine::kFastForward;
  cfg.shard_threads = shard_threads;
  const auto plan = core::AllreducePlanner(q).solution(sol).build();
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  return sim.run(plan.split(m));
}

void expect_result_eq(const simnet::SimResult& a, const simnet::SimResult& b,
                      int threads) {
  EXPECT_EQ(a.cycles, b.cycles) << "threads=" << threads;
  EXPECT_EQ(a.total_elements, b.total_elements) << "threads=" << threads;
  EXPECT_EQ(a.values_correct, b.values_correct) << "threads=" << threads;
  EXPECT_EQ(a.max_vc_occupancy, b.max_vc_occupancy) << "threads=" << threads;
  EXPECT_EQ(a.num_vcs, b.num_vcs) << "threads=" << threads;
  EXPECT_EQ(a.max_vcs_per_link, b.max_vcs_per_link) << "threads=" << threads;
  EXPECT_EQ(a.max_reductions_per_input_port, b.max_reductions_per_input_port)
      << "threads=" << threads;
  EXPECT_EQ(a.link_flits, b.link_flits) << "threads=" << threads;
  EXPECT_EQ(a.tree_finish_cycle, b.tree_finish_cycle) << "threads=" << threads;
  EXPECT_EQ(a.tree_first_delivery, b.tree_first_delivery)
      << "threads=" << threads;
  EXPECT_EQ(a.tree_completed, b.tree_completed) << "threads=" << threads;
  EXPECT_EQ(a.tree_failed, b.tree_failed) << "threads=" << threads;
  EXPECT_EQ(a.tree_fail_cycle, b.tree_fail_cycle) << "threads=" << threads;
  EXPECT_EQ(a.dropped_packets, b.dropped_packets) << "threads=" << threads;
  EXPECT_EQ(a.dropped_flits, b.dropped_flits) << "threads=" << threads;
  EXPECT_EQ(a.canceled_packets, b.canceled_packets) << "threads=" << threads;
  EXPECT_EQ(a.canceled_flits, b.canceled_flits) << "threads=" << threads;
  EXPECT_EQ(a.link_dropped_flits, b.link_dropped_flits)
      << "threads=" << threads;
  EXPECT_EQ(a.links_down, b.links_down) << "threads=" << threads;
  EXPECT_DOUBLE_EQ(a.aggregate_bandwidth, b.aggregate_bandwidth)
      << "threads=" << threads;
}

void expect_thread_invariant(int q, core::Solution sol,
                             const simnet::SimConfig& cfg, long long m) {
  const auto serial = run_sharded(q, sol, cfg, m, 1);
  for (int threads : {2, 4, 8}) {
    expect_result_eq(run_sharded(q, sol, cfg, m, threads), serial, threads);
  }
}

// Edge-disjoint Hamiltonian trees share no physical link, so every tree is
// its own shard group — the strongest fan-out the partitioner produces.
TEST(ShardedDeterminism, EdgeDisjointHealthyBitIdentical) {
  simnet::SimConfig cfg;
  expect_thread_invariant(7, core::Solution::kEdgeDisjoint, cfg, 2000);
  cfg.packet_payload = 4;
  cfg.packet_header_flits = 1;
  expect_thread_invariant(5, core::Solution::kEdgeDisjoint, cfg, 1000);
}

// Low-depth trees overlap (congestion 2); the union-find partitioner must
// merge overlapping trees into one group and still reproduce the serial
// run no matter how the remaining groups land on threads.
TEST(ShardedDeterminism, LowDepthHealthyBitIdentical) {
  simnet::SimConfig cfg;
  expect_thread_invariant(5, core::Solution::kLowDepth, cfg, 1000);
  cfg.collective = simnet::Collective::kBroadcast;
  expect_thread_invariant(5, core::Solution::kLowDepth, cfg, 1000);
}

// Sharding must also reproduce the *unsharded* result, not just be
// self-consistent, and match the reference engine's cycle count.
TEST(ShardedDeterminism, MatchesUnshardedAndReference) {
  simnet::SimConfig cfg;
  const auto sharded = run_sharded(7, core::Solution::kEdgeDisjoint, cfg,
                                   2000, 4);
  const auto serial = run_sharded(7, core::Solution::kEdgeDisjoint, cfg,
                                  2000, 1);
  expect_result_eq(sharded, serial, 4);

  simnet::SimConfig ref_cfg;
  ref_cfg.engine = simnet::SimEngine::kReference;
  const auto plan = core::AllreducePlanner(7)
                        .solution(core::Solution::kEdgeDisjoint)
                        .build();
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator ref_sim(plan.topology(), embeddings, ref_cfg);
  const auto ref = ref_sim.run(plan.split(2000));
  EXPECT_EQ(sharded.cycles, ref.cycles);
  EXPECT_EQ(sharded.link_flits, ref.link_flits);
  EXPECT_EQ(sharded.tree_finish_cycle, ref.tree_finish_cycle);
}

// Scripted link-down/link-up faults: every shard group receives the full
// script (events on foreign links are no-ops for it), so losses, poisoned
// VCs, per-tree failure flags and links_down must all merge back
// bit-identically.
TEST(ShardedDeterminism, FaultScriptBitIdentical) {
  const auto plan =
      core::AllreducePlanner(7).solution(core::Solution::kEdgeDisjoint).build();
  simnet::SimConfig cfg;
  cfg.progress_timeout = 1500;  // let trees severed by the fault fail fast
  // Down an uplink tree 0 actually uses mid-collective, restore it later,
  // and permanently kill a link used by a different tree.
  const auto& t0 = plan.trees()[0].parents();
  for (int v = 0; v < static_cast<int>(t0.size()); ++v) {
    if (t0[static_cast<std::size_t>(v)] >= 0) {
      cfg.faults.events.push_back(
          {120, v, t0[static_cast<std::size_t>(v)], simnet::FaultType::kLinkDown});
      cfg.faults.events.push_back(
          {400, v, t0[static_cast<std::size_t>(v)], simnet::FaultType::kLinkUp});
      break;
    }
  }
  const auto& t1 = plan.trees()[1].parents();
  for (int v = 0; v < static_cast<int>(t1.size()); ++v) {
    if (t1[static_cast<std::size_t>(v)] >= 0) {
      cfg.faults.events.push_back(
          {200, v, t1[static_cast<std::size_t>(v)], simnet::FaultType::kLinkDown});
      break;
    }
  }
  expect_thread_invariant(7, core::Solution::kEdgeDisjoint, cfg, 2000);
}

// Flaky links: the drop decision hashes (seed, directed link, per-link
// packet ordinal), and each directed link's packets all belong to one
// shard group, so the dropped subset is shard-invariant.
TEST(ShardedDeterminism, FlakyLinksBitIdentical) {
  const auto plan =
      core::AllreducePlanner(5).solution(core::Solution::kEdgeDisjoint).build();
  simnet::SimConfig cfg;
  cfg.progress_timeout = 1500;
  const auto& t0 = plan.trees()[0].parents();
  for (int v = 0; v < static_cast<int>(t0.size()); ++v) {
    if (t0[static_cast<std::size_t>(v)] >= 0) {
      cfg.faults.flaky_links.push_back({v, t0[static_cast<std::size_t>(v)]});
      break;
    }
  }
  cfg.faults.flaky_seed = 99;
  cfg.faults.flaky_drop_permille = 40;
  expect_thread_invariant(5, core::Solution::kEdgeDisjoint, cfg, 1000);
}

// shard_threads = 0 means "use the pool's default width"; it must take the
// sharded path and still match serial.
TEST(ShardedDeterminism, DefaultThreadWidthBitIdentical) {
  simnet::SimConfig cfg;
  const auto serial = run_sharded(5, core::Solution::kEdgeDisjoint, cfg,
                                  1000, 1);
  expect_result_eq(run_sharded(5, core::Solution::kEdgeDisjoint, cfg, 1000, 0),
                   serial, 0);
}

}  // namespace
