// End-to-end tests for the tools/pfar_lint binary against the fixture tree
// in tests/lint_fixtures/: every seeded violation is detected with its rule
// id and file:line, every allow-comment suppresses, and configuration
// errors (bad allowlist, bad path, unknown rule) exit 2 instead of
// pretending the tree is clean.
//
// The binary path is injected by CMake as PFAR_LINT_BINARY and the fixture
// root as PFAR_LINT_FIXTURES.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace fs = std::filesystem;

namespace {

class LintToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("pfar_lint_tool_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Runs pfar_lint with `args`, captures combined stdout+stderr into
  /// `output`, returns the exit code (-1 if the invocation itself failed).
  int run_lint(const std::string& args, std::string* output) {
    const fs::path out = dir_ / "lint_output.txt";
    const std::string cmd = std::string(PFAR_LINT_BINARY) + " " + args +
                            " > " + out.string() + " 2>&1";
    const int status = std::system(cmd.c_str());
    if (output) {
      std::ifstream in(out);
      std::ostringstream buf;
      buf << in.rdbuf();
      *output = buf.str();
    }
    if (status == -1) return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  static std::string fixtures() { return PFAR_LINT_FIXTURES; }
  static std::string fixture_args() {
    return "--root " + fixtures() + " " + fixtures();
  }

  fs::path dir_;
};

TEST_F(LintToolTest, EverySeededViolationIsDetected) {
  std::string out;
  const int exit_code = run_lint(fixture_args(), &out);
  EXPECT_EQ(exit_code, 1) << out;
  // One (file:line, rule) probe per seeded violation. Paths are reported
  // relative to --root, so they are stable regardless of build location.
  const char* expected[] = {
      "src/core/unordered_iteration.cpp:10: [no-unordered-iteration]",
      "src/core/unordered_iteration.cpp:13: [no-unordered-iteration]",
      "src/core/wallclock.cpp:10: [no-wallclock-in-sim]",
      "src/core/wallclock.cpp:11: [no-wallclock-in-sim]",
      "src/core/pointer_ordering.cpp:14: [no-pointer-ordering]",
      "src/core/pointer_ordering.cpp:15: [no-pointer-ordering]",
      "src/core/contract_coverage.cpp:6: [contract-coverage]",
      "src/core/mutex_naming.cpp:10: [mutex-naming]",
      "src/core/mutex_naming.cpp:11: [mutex-naming]",
      "src/core/mutex_naming.cpp:16: [mutex-naming]",
  };
  for (const char* probe : expected) {
    EXPECT_NE(out.find(probe), std::string::npos)
        << "missing finding " << probe << " in:\n"
        << out;
  }
}

TEST_F(LintToolTest, MalformedSuppressionsAreFindings) {
  std::string out;
  const int exit_code = run_lint(fixture_args(), &out);
  EXPECT_EQ(exit_code, 1) << out;
  EXPECT_NE(out.find("src/core/bad_suppression.cpp:8: [suppression]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("src/core/bad_suppression.cpp:10: [suppression]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("unknown rule 'not-a-real-rule'"), std::string::npos)
      << out;
}

TEST_F(LintToolTest, AllowCommentsSuppressAndSuppressionsAreCounted) {
  // The *_allowed.cpp fixtures seed the same constructs as the violating
  // ones; with reasons attached the run over just those files is clean,
  // and the summary reports the suppression count rather than hiding it.
  std::string files;
  for (const char* f :
       {"unordered_iteration_allowed.cpp", "wallclock_allowed.cpp",
        "pointer_ordering_allowed.cpp", "contract_coverage_allowed.cpp",
        "mutex_naming_allowed.cpp"}) {
    files += " " + fixtures() + "/src/core/" + f;
  }
  std::string out;
  const int exit_code = run_lint("--root " + fixtures() + files, &out);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(out.find("0 finding(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("7 suppressed"), std::string::npos) << out;
}

TEST_F(LintToolTest, RuleFilterRestrictsToOneRule) {
  std::string out;
  const int exit_code =
      run_lint("--rule mutex-naming " + fixture_args(), &out);
  EXPECT_EQ(exit_code, 1) << out;
  EXPECT_NE(out.find("[mutex-naming]"), std::string::npos) << out;
  EXPECT_EQ(out.find("[no-wallclock-in-sim]"), std::string::npos) << out;
  EXPECT_EQ(out.find("[contract-coverage]"), std::string::npos) << out;
}

TEST_F(LintToolTest, AllowlistDropsMatchingFindings) {
  const fs::path allow = dir_ / "allow.txt";
  std::ofstream(allow)
      << "src/core/mutex_naming.cpp mutex-naming fixture interop file\n"
      << "src/core/ no-wallclock-in-sim fixture timing files\n";
  std::string out;
  const int exit_code = run_lint(
      "--allowlist " + allow.string() + " " + fixture_args(), &out);
  EXPECT_EQ(exit_code, 1) << out;  // other rules still fire
  EXPECT_EQ(out.find("[mutex-naming]"), std::string::npos) << out;
  EXPECT_EQ(out.find("[no-wallclock-in-sim]"), std::string::npos) << out;
  EXPECT_NE(out.find("[no-pointer-ordering]"), std::string::npos) << out;
}

TEST_F(LintToolTest, UnknownRuleInAllowlistIsAConfigError) {
  const fs::path allow = dir_ / "allow.txt";
  std::ofstream(allow) << "src/ not-a-real-rule stale entry\n";
  std::string out;
  const int exit_code = run_lint(
      "--allowlist " + allow.string() + " " + fixture_args(), &out);
  EXPECT_EQ(exit_code, 2) << out;
  EXPECT_NE(out.find("unknown rule 'not-a-real-rule'"), std::string::npos)
      << out;
}

TEST_F(LintToolTest, MissingPathIsAConfigError) {
  std::string out;
  const int exit_code = run_lint("/nonexistent/sources", &out);
  EXPECT_EQ(exit_code, 2) << out;
}

TEST_F(LintToolTest, ListRulesNamesEveryRule) {
  std::string out;
  const int exit_code = run_lint("--list-rules", &out);
  EXPECT_EQ(exit_code, 0) << out;
  for (const char* rule :
       {"no-unordered-iteration", "no-wallclock-in-sim",
        "no-pointer-ordering", "contract-coverage", "mutex-naming"}) {
    EXPECT_NE(out.find(rule), std::string::npos)
        << "missing rule " << rule << " in:\n"
        << out;
  }
}

}  // namespace
