#include <gtest/gtest.h>

#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "core/resilience.hpp"
#include "simnet/deadlock_check.hpp"

namespace pfar::simnet {
namespace {

std::vector<TreeEmbedding> embeddings_of(const core::AllreducePlan& plan) {
  std::vector<TreeEmbedding> out;
  for (const auto& t : plan.trees()) {
    out.push_back(TreeEmbedding{t.root(), t.parents()});
  }
  return out;
}

TEST(DeadlockCheckTest, PaperEmbeddingsAreDeadlockFree) {
  for (const auto solution :
       {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint,
        core::Solution::kSingleTree}) {
    for (int q : {3, 5, 7}) {
      if (solution == core::Solution::kLowDepth && q % 2 == 0) continue;
      const auto plan = core::AllreducePlanner(q).solution(solution).build();
      const auto r =
          check_deadlock_free(plan.topology(), embeddings_of(plan));
      EXPECT_TRUE(r.deadlock_free)
          << core::to_string(solution) << " q=" << q;
      EXPECT_GT(r.resources, 0);
      EXPECT_GT(r.dependencies, 0);
    }
  }
}

TEST(DeadlockCheckTest, HalfCollectivesToo) {
  const auto plan = core::AllreducePlanner(5).build();
  const auto embeddings = embeddings_of(plan);
  for (Collective mode : {Collective::kReduce, Collective::kBroadcast}) {
    const auto r = check_deadlock_free(plan.topology(), embeddings, mode);
    EXPECT_TRUE(r.deadlock_free);
  }
}

TEST(DeadlockCheckTest, DegradedPlansRemainDeadlockFree) {
  const auto plan = core::AllreducePlanner(7).build();
  const auto repack = core::degrade_repack(
      plan.topology(), {plan.topology().edge(0), plan.topology().edge(40)});
  std::vector<TreeEmbedding> embeddings;
  for (const auto& t : repack.trees) {
    embeddings.push_back(TreeEmbedding{t.root(), t.parents()});
  }
  const auto r = check_deadlock_free(*repack.topology, embeddings);
  EXPECT_TRUE(r.deadlock_free);
}

TEST(DeadlockCheckTest, DetectsArtificialCycle) {
  // Hand-craft a broken "embedding" whose parent vector forms a ring of
  // dependencies: v's parent is v+1 mod n with no true root. We emulate it
  // by lying about the root: parent[root] = -1 but another vertex points
  // into the root's subtree forming a bcast cycle... a genuine cycle needs
  // a malformed tree, which SpanningTree would reject — so feed the
  // checker raw TreeEmbedding data directly.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  // "Tree": 0 -> 1 -> 2 -> 0 plus root claim at 0 with parent -1...
  // parent: 1's parent 2, 2's parent 0, and 0 claims root. This is a
  // valid tree shape actually (path 0<-2<-1); craft a real cycle instead:
  // two "trees" where A says 1's parent is 0 and B says 0's parent is 1
  // cannot cycle either (distinct VC namespaces). The checker must report
  // deadlock only for a *within-tree* wait cycle, which a parent cycle
  // creates: parent[1] = 2, parent[2] = 1, root = 0 (vertex 0 detached).
  TreeEmbedding broken;
  broken.root = 0;
  broken.parent = {-1, 2, 1};
  const auto r = check_deadlock_free(g, {broken});
  EXPECT_FALSE(r.deadlock_free);
  EXPECT_GE(r.cycle_witness, 0);
}

}  // namespace
}  // namespace pfar::simnet
