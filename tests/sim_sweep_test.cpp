// Parameterized property sweep over the cycle-level simulator: every
// combination of (q, solution, packet payload, collective mode) must be
// exactly correct, respect flow control, and stay within the analytic
// bandwidth envelope. This is the broad-coverage harness for interactions
// between features that individual tests exercise in isolation.

#include <gtest/gtest.h>

#include <tuple>

#include "core/planner.hpp"

namespace pfar {
namespace {

using SweepParam = std::tuple<int, core::Solution, int, simnet::Collective>;

class SimSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SimSweep, CorrectSafeAndWithinEnvelope) {
  const auto [q, solution, payload, mode] = GetParam();
  if (solution == core::Solution::kLowDepth && q % 2 == 0) GTEST_SKIP();
  const auto plan = core::AllreducePlanner(q).solution(solution).build();

  simnet::SimConfig cfg;
  cfg.packet_payload = payload;
  cfg.packet_header_flits = payload > 1 ? 1 : 0;
  cfg.collective = mode;

  std::vector<simnet::TreeEmbedding> embeddings;
  for (const auto& t : plan.trees()) {
    embeddings.push_back(simnet::TreeEmbedding{t.root(), t.parents()});
  }
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  const auto split = plan.split(3000);
  const auto r = sim.run(split);

  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.total_elements, 3000);
  EXPECT_LE(r.max_vc_occupancy, cfg.vc_credits);
  // Aggregate bandwidth can never exceed the applicable envelope scaled by
  // framing efficiency (2% numeric headroom). For full Allreduce that is
  // Algorithm 1's aggregate. Reduce-only/broadcast-only use just one
  // direction of every link, and Lemma 7.8 puts the two low-depth trees
  // sharing a link on OPPOSITE reduction directions — so half-collectives
  // can legitimately reach num_trees * B, double the Allreduce envelope.
  const double efficiency =
      static_cast<double>(payload) / (payload + cfg.packet_header_flits);
  const double envelope =
      (mode == simnet::Collective::kAllreduce
           ? plan.aggregate_bandwidth()
           : static_cast<double>(plan.num_trees())) *
      efficiency;
  EXPECT_LE(r.aggregate_bandwidth, envelope * 1.02);
  EXPECT_GT(r.aggregate_bandwidth, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimSweep,
    ::testing::Combine(
        ::testing::Values(3, 4, 5, 7),
        ::testing::Values(core::Solution::kLowDepth,
                          core::Solution::kEdgeDisjoint,
                          core::Solution::kSingleTree),
        ::testing::Values(1, 4),
        ::testing::Values(simnet::Collective::kAllreduce,
                          simnet::Collective::kReduce,
                          simnet::Collective::kBroadcast)));

}  // namespace
}  // namespace pfar
