// Tests for the observability layer (src/obsv): tracer ring buffer and
// Chrome JSON export, metrics registry and JSONL snapshot, run-report
// building, and the end-to-end properties the docs promise — traces of a
// deterministic simulation are byte-identical across runs and planner
// thread counts, and the metrics agree with SimResult's own accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "simnet/config.hpp"

namespace {

using namespace pfar;

std::string trace_json_of(const obsv::Tracer& tracer) {
  std::ostringstream os;
  tracer.write_chrome_json(os);
  return os.str();
}

std::string metrics_jsonl_of(const obsv::Metrics& metrics) {
  std::ostringstream os;
  metrics.write_jsonl(os);
  return os.str();
}

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, RingBufferDropsBeyondCapacityKeepingThePrefix) {
  obsv::Tracer tracer(4);
  const std::uint32_t name = tracer.intern("ev");
  for (long long i = 0; i < 7; ++i) {
    tracer.complete(i, 1, name, obsv::kTrackSim, {"i", i});
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 3u);

  long long dropped = -1;
  const auto events = obsv::parse_trace(trace_json_of(tracer), &dropped);
  EXPECT_EQ(dropped, 3);
  ASSERT_EQ(events.size(), 4u);
  // The prefix survives, not an arbitrary subset.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, static_cast<long long>(i));
    EXPECT_EQ(events[i].args.at("i"), static_cast<long long>(i));
  }
}

TEST(Tracer, ChromeJsonRoundTripsEventsArgsAndTrackNames) {
  obsv::Tracer tracer;
  tracer.name_track(obsv::kTrackSim, "sim");
  tracer.name_track(obsv::kTrackLinkBase + 7, "link 3->4");
  const std::uint32_t busy = tracer.intern("busy");
  const std::uint32_t fault = tracer.intern("link_down");
  tracer.complete(10, 5, busy, obsv::kTrackLinkBase + 7);
  tracer.instant(12, fault, obsv::kTrackSim, {"u", 3}, {"v", 4});

  const std::string json = trace_json_of(tracer);
  const obsv::JsonValue doc = obsv::parse_json(json);  // must be valid JSON
  ASSERT_NE(doc.get("traceEvents"), nullptr);

  std::map<long long, std::string> track_names;
  const auto events = obsv::parse_trace(json, nullptr, &track_names);
  EXPECT_EQ(track_names.at(obsv::kTrackSim), "sim");
  EXPECT_EQ(track_names.at(obsv::kTrackLinkBase + 7), "link 3->4");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].name, "busy");
  EXPECT_EQ(events[0].ts, 10);
  EXPECT_EQ(events[0].dur, 5);
  EXPECT_EQ(events[1].ph, 'i');
  EXPECT_EQ(events[1].name, "link_down");
  EXPECT_EQ(events[1].args.at("u"), 3);
  EXPECT_EQ(events[1].args.at("v"), 4);
}

TEST(Tracer, TimeOffsetShiftsSubsequentTimestamps) {
  obsv::Tracer tracer;
  const std::uint32_t name = tracer.intern("attempt");
  tracer.complete(5, 2, name, obsv::kTrackRecovery);
  tracer.set_time_offset(1000);
  tracer.complete(5, 2, name, obsv::kTrackRecovery);
  const auto events = obsv::parse_trace(trace_json_of(tracer));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts, 5);
  EXPECT_EQ(events[1].ts, 1005);
}

TEST(Tracer, SerializationIsDeterministic) {
  const auto make = [] {
    obsv::Tracer tracer;
    tracer.name_track(obsv::kTrackTreeBase + 1, "tree 1");
    const std::uint32_t reduce = tracer.intern("reduce");
    tracer.complete(0, 100, reduce, obsv::kTrackTreeBase + 1, {"tree", 1});
    return trace_json_of(tracer);
  };
  EXPECT_EQ(make(), make());
}

// --- Metrics --------------------------------------------------------------

TEST(Metrics, CountersGaugesAndHistograms) {
  obsv::Metrics m;
  m.add("flits", 10);
  m.add("flits", 5);
  m.hwm("depth", 3);
  m.hwm("depth", 7);
  m.hwm("depth", 2);  // below the high-water mark: ignored
  m.observe("ms", 1.5);
  m.observe("ms", 0.5);
  EXPECT_EQ(m.counter("flits"), 15);
  EXPECT_EQ(m.gauge("depth"), 7);
  EXPECT_EQ(m.histogram_count("ms"), 2);
  EXPECT_TRUE(m.contains("flits"));
  EXPECT_FALSE(m.contains("absent"));
  EXPECT_EQ(m.size(), 3u);
}

TEST(Metrics, MixingKindsOnOneNameThrows) {
  obsv::Metrics m;
  m.add("x");
  EXPECT_THROW(m.hwm("x", 1), std::logic_error);
  EXPECT_THROW(m.observe("x", 1.0), std::logic_error);
}

TEST(Metrics, JsonlExportIsSortedValidAndTyped) {
  obsv::Metrics m;
  m.hwm("b.gauge", 4);
  m.add("a.counter", 2);
  m.observe("c.hist", 3.0);
  std::istringstream lines(metrics_jsonl_of(m));
  std::string line;
  std::vector<std::string> names, types;
  while (std::getline(lines, line)) {
    const obsv::JsonValue doc = obsv::parse_json(line);
    names.push_back(doc.str("name"));
    types.push_back(doc.str("type"));
  }
  EXPECT_EQ(names, (std::vector<std::string>{"a.counter", "b.gauge",
                                             "c.hist"}));
  EXPECT_EQ(types,
            (std::vector<std::string>{"counter", "gauge", "histogram"}));
}

// --- Run reports ----------------------------------------------------------

TEST(Report, JoinsBusySpansToLinksViaTrackNames) {
  obsv::Recorder rec;
  rec.trace.name_track(obsv::kTrackLinkBase + 0, "link 0->1");
  const std::uint32_t busy = rec.trace.intern("busy");
  rec.trace.complete(0, 40, busy, obsv::kTrackLinkBase + 0);
  rec.trace.complete(60, 20, busy, obsv::kTrackLinkBase + 0);
  rec.metrics.add("link.0->1.flits", 60);
  rec.metrics.hwm("link.0->1.queue_hwm", 2);
  rec.metrics.hwm("sim.cycles", 100);

  const auto report =
      obsv::build_report(trace_json_of(rec.trace),
                         metrics_jsonl_of(rec.metrics));
  EXPECT_EQ(report.cycles, 100);
  ASSERT_EQ(report.links.size(), 1u);
  EXPECT_EQ(report.links[0].name, "0->1");
  EXPECT_EQ(report.links[0].flits, 60);
  EXPECT_EQ(report.links[0].busy_cycles, 60);  // both spans, one link row
  EXPECT_EQ(report.links[0].queue_hwm, 2);

  std::ostringstream os;
  obsv::render_report(report, os);
  EXPECT_NE(os.str().find("pfar run report"), std::string::npos);
  EXPECT_NE(os.str().find("0->1"), std::string::npos);
}

// --- End-to-end against the simulator (PFAR_TRACE=on builds only) ---------

class ObsvIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obsv::kTraceCompiled) {
      GTEST_SKIP() << "instrumentation compiled out (PFAR_TRACE=off)";
    }
  }
};

TEST_F(ObsvIntegration, TraceIsByteIdenticalAcrossRunsAndPlannerThreads) {
  const auto run = [](int threads) {
    obsv::Recorder rec;
    const auto plan = core::AllreducePlanner(5).threads(threads).build();
    simnet::SimConfig config;
    config.recorder = &rec;
    const graph::Edge flaky = plan.topology().edge(0);
    config.faults.flaky_links = {{flaky.u, flaky.v}};
    config.faults.flaky_seed = 42;
    config.faults.flaky_drop_permille = 200;
    config.progress_timeout = 400;
    plan.simulate(512, config);
    return std::make_pair(trace_json_of(rec.trace),
                          metrics_jsonl_of(rec.metrics));
  };
  const auto a = run(1);
  const auto b = run(1);
  const auto c = run(4);
  EXPECT_EQ(a.first, b.first) << "trace differs between identical runs";
  EXPECT_EQ(a.first, c.first) << "trace depends on planner thread count";
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.second, c.second);
  EXPECT_GT(obsv::parse_trace(a.first).size(), 0u);
}

TEST_F(ObsvIntegration, MetricsAgreeWithSimResultAccounting) {
  obsv::Recorder rec;
  const auto plan = core::AllreducePlanner(5).build();
  simnet::SimConfig config;
  config.recorder = &rec;
  // Drop packets on a link tree 0 actually uses so cancellation and the
  // dropped/canceled accounting paths all fire.
  const auto& parents = plan.trees()[0].parents();
  for (int v = 0; v < static_cast<int>(parents.size()); ++v) {
    if (parents[static_cast<std::size_t>(v)] >= 0) {
      config.faults.flaky_links = {
          {v, parents[static_cast<std::size_t>(v)]}};
      break;
    }
  }
  config.faults.flaky_seed = 7;
  config.faults.flaky_drop_permille = 500;
  config.progress_timeout = 300;
  const auto res = plan.simulate(1024, config);
  const simnet::SimResult& sim = res.sim;

  ASSERT_GT(sim.dropped_packets, 0) << "fault setup produced no drops";
  EXPECT_EQ(rec.metrics.counter("sim.dropped_packets"), sim.dropped_packets);
  EXPECT_EQ(rec.metrics.counter("sim.dropped_flits"), sim.dropped_flits);
  EXPECT_EQ(rec.metrics.counter("sim.canceled_packets"),
            sim.canceled_packets);
  EXPECT_EQ(rec.metrics.counter("sim.canceled_flits"), sim.canceled_flits);
  EXPECT_EQ(rec.metrics.gauge("sim.cycles"), sim.cycles);
  EXPECT_EQ(rec.metrics.counter("sim.total_elements"), sim.total_elements);
  EXPECT_EQ(rec.metrics.gauge("sim.max_vc_occupancy"), sim.max_vc_occupancy);

  // Per-link flit metrics sum to the SimResult per-link totals.
  const long long total_flits = std::accumulate(
      sim.link_flits.begin(), sim.link_flits.end(), 0LL);
  long long metric_flits = 0;
  const graph::Graph& g = plan.topology();
  for (int e = 0; e < g.num_edges(); ++e) {
    const graph::Edge edge = g.edge(e);
    for (const auto& [u, v] : {std::pair{edge.u, edge.v},
                               std::pair{edge.v, edge.u}}) {
      metric_flits += rec.metrics.counter(
          "link." + std::to_string(u) + "->" + std::to_string(v) + ".flits");
    }
  }
  EXPECT_EQ(metric_flits, total_flits);

  // Per-tree completion metrics mirror the result vectors: healthy trees
  // report their finish cycle, failed trees the failure flag.
  for (int t = 0; t < plan.num_trees(); ++t) {
    const std::string prefix = "tree." + std::to_string(t) + ".";
    const auto ut = static_cast<std::size_t>(t);
    if (sim.tree_failed[ut] != 0) {
      EXPECT_EQ(rec.metrics.counter(prefix + "failed"), 1);
    } else {
      EXPECT_EQ(rec.metrics.gauge(prefix + "finish_cycle"),
                sim.tree_finish_cycle[ut]);
    }
  }
}

TEST_F(ObsvIntegration, EnginesAgreeOnTraceSpansAndFlitMetrics) {
  // The two engines are bit-identical in results; their traces must agree
  // on everything cycle-derived (busy spans, tree spans). Credit-stall
  // counts are engine-relative by design (docs/observability.md), so only
  // the trace and the flit/queue metrics are compared.
  const auto run = [](simnet::SimEngine engine) {
    obsv::Recorder rec;
    const auto plan = core::AllreducePlanner(5).build();
    simnet::SimConfig config;
    config.engine = engine;
    config.recorder = &rec;
    plan.simulate(256, config);
    return trace_json_of(rec.trace);
  };
  EXPECT_EQ(run(simnet::SimEngine::kFastForward),
            run(simnet::SimEngine::kReference));
}

TEST_F(ObsvIntegration, PlannerObserverRecordsPhaseTimers) {
  obsv::Recorder rec;
  core::AllreducePlanner(7)
      .solution(core::Solution::kEdgeDisjoint)
      .observer(&rec)
      .build();
  EXPECT_GE(rec.metrics.histogram_count("planner.topology_ms"), 1);
  EXPECT_GE(rec.metrics.histogram_count("planner.trees_ms"), 1);
  EXPECT_GE(rec.metrics.histogram_count("planner.bandwidths_ms"), 1);
}

TEST_F(ObsvIntegration, RecorderWritesParseableArtifactFiles) {
  obsv::Recorder rec;
  const auto plan = core::AllreducePlanner(3).build();
  simnet::SimConfig config;
  config.recorder = &rec;
  plan.simulate(64, config);

  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/obsv_test_trace.json";
  const std::string metrics_path = dir + "/obsv_test_metrics.jsonl";
  rec.write_files(trace_path, metrics_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  const std::string trace = slurp(trace_path);
  const std::string metrics = slurp(metrics_path);
  ASSERT_FALSE(trace.empty());
  ASSERT_FALSE(metrics.empty());

  const auto report = obsv::build_report(trace, metrics);
  EXPECT_GT(report.cycles, 0);
  EXPECT_GT(report.trace_events, 0);
  ASSERT_FALSE(report.links.empty());
  EXPECT_GT(report.links[0].busy_cycles, 0);
  ASSERT_FALSE(report.trees.empty());
  EXPECT_GE(report.trees[0].finish_cycle, 0);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
