// Verification of the paper's Section 7.3 claim in full: "S_q contains a
// set of floor((q+1)/2) edge-disjoint Hamiltonian paths for all prime
// powers q < 128". The paper verified this with 30 random maximal
// independent sets; here the exact matching method proves it
// constructively for every design point.

#include <gtest/gtest.h>

#include "singer/disjoint.hpp"
#include "util/numeric.hpp"

namespace pfar::singer {
namespace {

class FullRange : public ::testing::TestWithParam<int> {};

TEST_P(FullRange, DisjointHamiltonianSetAttainsBound) {
  const int q = GetParam();
  const DifferenceSet d = build_difference_set(q);
  ASSERT_TRUE(is_valid_difference_set(d.elements, d.n));
  const auto set = find_disjoint_hamiltonians(d);
  EXPECT_EQ(set.size(), disjoint_hamiltonian_upper_bound(q)) << "q=" << q;
  // Element-disjoint color pairs imply edge-disjoint paths; the pairs must
  // all be coprime-difference (Hamiltonian) pairs.
  for (const auto& [d0, d1] : set.pairs) {
    EXPECT_EQ(util::gcd_ll(d0 - d1, d.n), 1);
  }
  // Corollary 7.20 at every design point.
  EXPECT_EQ(count_hamiltonian_paths(d), util::totient(d.n));
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimePowersBelow128, FullRange,
    ::testing::ValuesIn(util::prime_powers_in(2, 127)));

}  // namespace
}  // namespace pfar::singer
