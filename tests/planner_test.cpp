#include <gtest/gtest.h>

#include <numeric>

#include "core/planner.hpp"

namespace pfar::core {
namespace {

TEST(PlannerTest, LowDepthPlanProperties) {
  const auto plan = AllreducePlanner(7).solution(Solution::kLowDepth).build();
  EXPECT_EQ(plan.q(), 7);
  EXPECT_EQ(plan.num_nodes(), 57);
  EXPECT_EQ(plan.num_trees(), 7);
  EXPECT_LE(plan.max_depth(), 3);
  EXPECT_LE(plan.max_congestion(), 2);
  EXPECT_NEAR(plan.aggregate_bandwidth(), 3.5, 1e-9);
  EXPECT_NEAR(plan.optimal_bandwidth(), 4.0, 1e-9);
}

TEST(PlannerTest, EdgeDisjointPlanProperties) {
  const auto plan =
      AllreducePlanner(7).solution(Solution::kEdgeDisjoint).build();
  EXPECT_EQ(plan.num_trees(), 4);
  EXPECT_EQ(plan.max_congestion(), 1);
  EXPECT_EQ(plan.max_depth(), (57 - 1) / 2);
  EXPECT_NEAR(plan.aggregate_bandwidth(), plan.optimal_bandwidth(), 1e-9);
}

TEST(PlannerTest, SingleTreePlanIsBandwidthCapped) {
  const auto plan =
      AllreducePlanner(7).solution(Solution::kSingleTree).build();
  EXPECT_EQ(plan.num_trees(), 1);
  EXPECT_NEAR(plan.aggregate_bandwidth(), 1.0, 1e-9);
  EXPECT_LE(plan.max_depth(), 2);
}

TEST(PlannerTest, SplitSumsToM) {
  const auto plan = AllreducePlanner(5).build();
  const auto split = plan.split(12345);
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), 0LL), 12345);
  EXPECT_EQ(split.size(), static_cast<std::size_t>(plan.num_trees()));
}

TEST(PlannerTest, SimulateEndToEnd) {
  const auto plan = AllreducePlanner(5).solution(Solution::kLowDepth).build();
  const auto res = plan.simulate(10000);
  EXPECT_TRUE(res.sim.values_correct);
  EXPECT_GT(res.efficiency_vs_model, 0.85);
}

TEST(PlannerTest, EdgeDisjointWorksForEvenQ) {
  // The Hamiltonian solution covers even prime powers too.
  const auto plan =
      AllreducePlanner(4).solution(Solution::kEdgeDisjoint).build();
  EXPECT_EQ(plan.num_trees(), 2);
  EXPECT_EQ(plan.max_congestion(), 1);
  const auto res = plan.simulate(2000);
  EXPECT_TRUE(res.sim.values_correct);
}

TEST(PlannerTest, LowDepthEvenQUsesReconstruction) {
  // The paper's even-q low-depth solution is unpublished; the planner uses
  // this library's reconstruction: q-1 trees, depth <= 3, congestion <= 2.
  const auto plan = AllreducePlanner(4).solution(Solution::kLowDepth).build();
  EXPECT_EQ(plan.num_trees(), 3);
  EXPECT_LE(plan.max_depth(), 3);
  EXPECT_LE(plan.max_congestion(), 2);
  const auto res = plan.simulate(3000);
  EXPECT_TRUE(res.sim.values_correct);
}

TEST(PlannerTest, RejectsNonPrimePower) {
  EXPECT_THROW(AllreducePlanner(6), std::invalid_argument);
  EXPECT_THROW(AllreducePlanner(1), std::invalid_argument);
}

TEST(PlannerTest, StarterQuadricSelectable) {
  const auto p0 = AllreducePlanner(5).starter_quadric(0).build();
  const auto p3 = AllreducePlanner(5).starter_quadric(3).build();
  // Different starters root the trees at different centers.
  EXPECT_NE(p0.trees()[0].root(), p3.trees()[0].root());
  EXPECT_LE(p3.max_congestion(), 2);
}

TEST(PlannerTest, SolutionNames) {
  EXPECT_FALSE(to_string(Solution::kLowDepth).empty());
  EXPECT_FALSE(to_string(Solution::kEdgeDisjoint).empty());
  EXPECT_FALSE(to_string(Solution::kSingleTree).empty());
}

}  // namespace
}  // namespace pfar::core
