#include <gtest/gtest.h>

#include "polarfly/layout.hpp"
#include "singer/singer_graph.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::trees {
namespace {

using polarfly::PolarFly;
using polarfly::build_layout;

TEST(SpanningTreeTest, BasicStructure) {
  // 0 -> {1, 2}, 1 -> {3}
  SpanningTree t(0, {-1, 0, 0, 1});
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.depth(), 2);
  EXPECT_EQ(t.level(0), 0);
  EXPECT_EQ(t.level(3), 2);
  EXPECT_EQ(t.children(0).size(), 2u);
  EXPECT_EQ(t.edges().size(), 3u);
}

TEST(SpanningTreeTest, RejectsMalformedParents) {
  EXPECT_THROW(SpanningTree(0, {0, 0}), std::invalid_argument);   // root has parent
  EXPECT_THROW(SpanningTree(0, {-1, -1}), std::invalid_argument); // orphan
  EXPECT_THROW(SpanningTree(0, {-1, 2, 1}), std::invalid_argument);  // cycle
  EXPECT_THROW(SpanningTree(5, {-1, 0}), std::invalid_argument);  // bad root
}

TEST(SpanningTreeTest, SpanningValidationAgainstGraph) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.finalize();
  const SpanningTree good(0, {-1, 0, 0, 1});
  EXPECT_TRUE(good.is_spanning_tree_of(g));
  const SpanningTree bad(0, {-1, 0, 0, 2});  // edge (2,3) not in g
  EXPECT_FALSE(bad.is_spanning_tree_of(g));
}

TEST(CongestionTest, CountsOverlaps) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  const SpanningTree a(0, {-1, 0, 1});
  const SpanningTree b(2, {1, 2, -1});
  const std::vector<SpanningTree> ts{a, b};
  const auto congestion = edge_congestion(g, ts);
  // Edge (0,1) in a and b; (1,2) in a and b.
  EXPECT_EQ(max_congestion(g, ts), 2);
  EXPECT_FALSE(edge_disjoint(g, ts));
  EXPECT_EQ(congestion[static_cast<std::size_t>(g.edge_id(0, 1))], 2);
  EXPECT_EQ(congestion[static_cast<std::size_t>(g.edge_id(0, 2))], 0);
}

// Theorems 7.4-7.6 and Lemma 7.8, across odd prime powers.
class LowDepthTheorems : public ::testing::TestWithParam<int> {};

TEST_P(LowDepthTheorems, ProducesQSpanningTrees) {
  const int q = GetParam();
  const PolarFly pf(q);
  const auto layout = build_layout(pf);
  const auto ts = build_low_depth_trees(pf, layout);
  ASSERT_EQ(static_cast<int>(ts.size()), q);
  for (const auto& t : ts) {
    EXPECT_TRUE(t.is_spanning_tree_of(pf.graph()));  // Theorem 7.4
  }
}

TEST_P(LowDepthTheorems, DepthAtMostThree) {
  const int q = GetParam();
  const PolarFly pf(q);
  const auto ts = build_low_depth_trees(pf, build_layout(pf));
  for (const auto& t : ts) {
    EXPECT_LE(t.depth(), 3);  // Theorem 7.5
  }
}

TEST_P(LowDepthTheorems, CongestionAtMostTwo) {
  const int q = GetParam();
  const PolarFly pf(q);
  const auto ts = build_low_depth_trees(pf, build_layout(pf));
  EXPECT_LE(max_congestion(pf.graph(), ts), 2);  // Theorem 7.6
}

TEST_P(LowDepthTheorems, RootsAreClusterCenters) {
  const int q = GetParam();
  const PolarFly pf(q);
  const auto layout = build_layout(pf);
  const auto ts = build_low_depth_trees(pf, layout);
  for (int i = 0; i < q; ++i) {
    EXPECT_EQ(ts[static_cast<std::size_t>(i)].root(), layout.centers[static_cast<std::size_t>(i)]);
  }
}

TEST_P(LowDepthTheorems, OppositeReductionFlowsOnSharedLinks) {
  // Lemma 7.8: any doubly-used link carries the two trees' reduction
  // traffic in opposite directions.
  const int q = GetParam();
  const PolarFly pf(q);
  const auto ts = build_low_depth_trees(pf, build_layout(pf));
  EXPECT_TRUE(opposite_reduction_flows(pf.graph(), ts));
}

TEST_P(LowDepthTheorems, WorksForEveryStarterQuadric) {
  const int q = GetParam();
  if (q > 9) GTEST_SKIP() << "starter sweep kept small";
  const PolarFly pf(q);
  for (int s = 0; s <= q; ++s) {
    const auto layout = build_layout(pf, s);
    const auto ts = build_low_depth_trees(pf, layout);
    for (const auto& t : ts) {
      EXPECT_TRUE(t.is_spanning_tree_of(pf.graph()));
      EXPECT_LE(t.depth(), 3);
    }
    EXPECT_LE(max_congestion(pf.graph(), ts), 2);
  }
}

INSTANTIATE_TEST_SUITE_P(OddPrimePowers, LowDepthTheorems,
                         ::testing::Values(3, 5, 7, 9, 11, 13, 17, 19, 25,
                                           27));

TEST(HamiltonianTreeTest, MidpointRootDepth) {
  // Lemma 7.17: depth (N-1)/2.
  const auto d = singer::build_difference_set(5);
  const auto set = singer::find_disjoint_hamiltonians(d);
  for (const auto& path : set.paths) {
    const auto tree = hamiltonian_path_tree(path);
    EXPECT_EQ(tree.depth(), (d.n - 1) / 2);
  }
}

TEST(HamiltonianTreeTest, TreesAreSpanningAndDisjoint) {
  const singer::SingerGraph s(7);
  const auto set = singer::find_disjoint_hamiltonians(s.difference_set());
  const auto ts = hamiltonian_trees(set);
  EXPECT_EQ(static_cast<int>(ts.size()), 4);  // floor((7+1)/2)
  for (const auto& t : ts) {
    EXPECT_TRUE(t.is_spanning_tree_of(s.graph()));
  }
  EXPECT_TRUE(edge_disjoint(s.graph(), ts));
  EXPECT_EQ(max_congestion(s.graph(), ts), 1);
}

TEST(HamiltonianTreeTest, RejectsNonHamiltonianPath) {
  const auto d = singer::build_difference_set(4);
  // (0, 14) is non-Hamiltonian (Table 2).
  const auto path = singer::build_alternating_path(d, 0, 14);
  EXPECT_THROW(hamiltonian_path_tree(path), std::invalid_argument);
}

}  // namespace
}  // namespace pfar::trees
