// Thread-safety analysis fixture (negative half): guarded_account_ok.cpp
// with the lock in deposit() removed. Clang's -Wthread-safety MUST reject
// this file ("writing variable 'balance_' requires holding mutex 'mu_'");
// if it compiles clean the analysis is not actually running and the CI job
// fails. Never compiled by CMake.

#include "util/thread_annotations.hpp"

namespace fixture {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // no lock: the analysis must flag this line
  }

  int balance() {
    pfar::util::MutexLock lock(mu_);
    return balance_;
  }

 private:
  pfar::util::Mutex mu_;
  int balance_ PFAR_GUARDED_BY(mu_) = 0;
};

int use() {
  Account account;
  account.deposit(42);
  return account.balance();
}

}  // namespace fixture
