// Thread-safety analysis fixture (positive half): correct locking under
// the annotations in util/thread_annotations.hpp. This file must compile
// with zero diagnostics under
//   clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror
// proving the macros expand to attributes Clang accepts.
//
// Compiled only by tools/check_thread_safety.sh and the thread-safety CI
// job, never by CMake.

#include "util/thread_annotations.hpp"

namespace fixture {

class Account {
 public:
  void deposit(int amount) {
    pfar::util::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() {
    pfar::util::MutexLock lock(mu_);
    return balance_;
  }

 private:
  pfar::util::Mutex mu_;
  int balance_ PFAR_GUARDED_BY(mu_) = 0;
};

int use() {
  Account account;
  account.deposit(42);
  return account.balance();
}

}  // namespace fixture
